# Convenience targets for the GE-SpMM reproduction.

.PHONY: install test bench microbench examples artifacts telemetry gate report corpus clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Host-executor microbenchmark: segmented-reduction engine vs. the
# preserved scatter oracles (see docs/PERFORMANCE.md "Host executor"),
# the incremental-delta bench (see "Dynamic graphs"), and the tiled
# executor's strict peak-memory + wide-N throughput floors (see "Tiled
# execution & operand batching").  Separate pytest invocations: each
# file's timings assume a fresh process heap (the rebuild loops leave
# glibc in a state that taxes later timings); the delta and tiled
# benches additionally isolate each measurement in a subprocess with
# pinned malloc thresholds.  Asserts the speedup floors and records
# timings under the gate-ignored run.host.microbench block of
# BENCH_spmm.json.
microbench:
	PYTHONPATH=src python -m pytest benchmarks/bench_delta_updates.py -q --durations=5 --override-ini "addopts=-q"
	PYTHONPATH=src python -m pytest benchmarks/bench_tiled_memory.py -q --durations=5 --override-ini "addopts=-q"
	PYTHONPATH=src python -m pytest benchmarks/bench_host_executor.py -q --durations=5 --override-ini "addopts=-q"

examples:
	@for s in examples/*.py; do echo "== $$s"; python $$s || exit 1; done

# Regenerate the machine-readable perf trajectory (see docs/OBSERVABILITY.md).
# Deterministic: rerunning on an unchanged tree reproduces the file exactly
# for any JOBS value (see docs/PERFORMANCE.md).
JOBS ?= 4
telemetry:
	PYTHONPATH=src python -m repro.cli sweep --graphs 6 --n 128 512 --jobs $(JOBS) --bench-json BENCH_spmm.json

# Benchmark regression gate: regenerate the telemetry sweep in-process
# and diff it against the committed BENCH_spmm.json.  Exits 1 on any
# cell/geomean drift without an entry in BENCH_accepted_drift.json;
# see docs/OBSERVABILITY.md for the workflow.
gate:
	PYTHONPATH=src python -m repro.cli gate --baseline BENCH_spmm.json --graphs 6 --n 128 512 --jobs $(JOBS)

# Performance report from the committed BENCH document (see
# docs/OBSERVABILITY.md "Reports & attribution").  Pure function of
# BENCH_spmm.json, so repeated runs are byte-identical.
report:
	PYTHONPATH=src python -m repro.cli report --baseline BENCH_spmm.json --out report.md --json-out report.json

# Corpus-scale streaming sweep: DLMC-style pruned-DNN + graph matrices,
# sharded with per-shard checkpoints in .corpus-cache (resumable; see
# docs/PERFORMANCE.md "Corpus sweeps").  The roll-up is deterministic.
corpus:
	PYTHONPATH=src python -m repro.cli corpus --preset mixed --limit 128 \
	  --shards 8 --jobs $(JOBS) --cache-dir .corpus-cache \
	  --rollup-json corpus_rollup.json

# The two artifact files DESIGN/EXPERIMENTS reference.
artifacts:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks .bench-cache .corpus-cache
	find . -name __pycache__ -type d -exec rm -rf {} +

# Convenience targets for the GE-SpMM reproduction.

.PHONY: install test bench examples artifacts clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for s in examples/*.py; do echo "== $$s"; python $$s || exit 1; done

# The two artifact files DESIGN/EXPERIMENTS reference.
artifacts:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

"""Ablation — why CRC helps Pascal but not Turing (L1 policy what-if).

The paper observes (Fig. 8) that CRC alone yields 1.246x on GTX 1080Ti
but only 1.011x on RTX 2080, and attributes the machine difference to
architecture.  Our model makes the cause explicit: Turing's unified L1
caches global loads and already filters Algorithm 1's broadcast
re-reads.  This ablation runs the *same* Pascal device with the L1
global-caching flag toggled: with the flag on, CRC's advantage should
collapse toward 1x — isolating the mechanism.
"""

from repro.bench import comparison, geomean, render_claims, run_sweep, speedup_series
from repro.core import CRCSpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI

N = 512


def test_ablation_l1_policy(benchmark, emit, snap_suite):
    pascal = GTX_1080TI
    pascal_l1 = GTX_1080TI.scaled(name="GTX 1080Ti (+L1 global)", l1_caches_global=True)
    kernels = [SimpleSpMM(), CRCSpMM()]
    results = benchmark.pedantic(
        run_sweep, args=(kernels, snap_suite, [N], [pascal, pascal_l1]), rounds=1, iterations=1
    )
    gains = {}
    for gpu in (pascal, pascal_l1):
        series = speedup_series(results, "crc", "simple", gpu.name, N)
        gains[gpu.name] = geomean(series.values())
    table = "\n".join(f"  {name:28s} CRC speedup (geomean) = {v:.3f}" for name, v in gains.items())
    claims = [
        comparison("CRC gain without L1 global caching", "clear gain (Pascal behaviour)",
                   f"{gains[pascal.name]:.3f}x", gains[pascal.name] > 1.08),
        comparison("CRC gain with L1 global caching", "~1.0x (Turing behaviour)",
                   f"{gains[pascal_l1.name]:.3f}x", gains[pascal_l1.name] < 1.1),
    ]
    assert gains[pascal.name] > 1.08
    assert gains[pascal_l1.name] < 1.1
    assert gains[pascal.name] > gains[pascal_l1.name] + 0.05
    emit("ablation_l1_policy", f"L1 policy ablation (N={N}):\n{table}\n\n"
         + render_claims(claims, "mechanism check"))

"""Incremental delta application vs. full CSR rebuild.

Not a paper table: this measures the reproduction's dynamic-graph path
(``repro.sparse.delta.apply_delta``) against the from-scratch rebuild it
replaces, on a 100k-edge power-law graph with mixed batches (a third
each inserts / deletes / value updates) at and below 1% of nnz.  The
incremental side patches the CSR arrays and evolves the resident
``AccessProfile`` in O(batch + touched rows); the rebuild side pays the
full COO lexsort, all four derived arrays, and a cold profile build.

Each batch size is measured in a **fresh subprocess with glibc's malloc
thresholds pinned high** (``MALLOC_MMAP_THRESHOLD_`` /
``MALLOC_TRIM_THRESHOLD_``).  By default glibc adapts its mmap threshold
to the largest freed block, so the sub-MB temporaries these paths
allocate each rep are sometimes mmap'd and returned to the OS on free —
and then every subsequent rep pays the page faults back (~2.3 ms fresh
vs. ~3.9 ms dirty on the incremental side, while the 15 ms rebuild side
barely moves).  Whether a given process falls into that mode depends on
the allocation history before the timing loop, which made the speedup
bimodal across batch sizes.  Pinning the thresholds keeps temporaries on
the brk heap for the process lifetime, which is also the steady state a
long-lived streaming host converges to.  The in-process measurement
recorded in ``BENCH_spmm.json`` (``bench_host_executor``) runs without
this control and therefore carries a softer guard.

Results are written to ``benchmarks/results/`` and the floors assert the
ISSUE contract: incremental apply + profile update at least **5x**
faster than a full rebuild for batches <=1% of nnz, with fingerprint
parity between the two sides.
"""

import json
import os
import subprocess
import sys

#: ISSUE contract: >=5x for batches <=1% of nnz (typical fresh-heap
#: measurements are 6-9x; smaller batches are faster still).
MIN_DELTA_APPLY_SPEEDUP = 5.0

#: Mixed-batch sizes: ~0.12%, ~0.41%, ~0.99% of the graph's actual
#: ~80.7k stored edges (the 100k requested nnz dedups down).
BATCH_SIZES = (100, 333, 800)

#: Ambient machine load can depress the sub-3ms incremental timing by
#: ~1ms while leaving the 15ms rebuild side untouched; one fresh
#: re-measurement absorbs such transients without softening the floor.
RETRIES = 1

#: Pin glibc's adaptive thresholds (see module docstring): temporaries
#: stay on the brk heap instead of round-tripping pages through mmap.
_MALLOC_ENV = {
    "MALLOC_MMAP_THRESHOLD_": str(64 * 1024 * 1024),
    "MALLOC_TRIM_THRESHOLD_": str(64 * 1024 * 1024),
}

_CHILD = """\
import json, sys
from repro.bench.hostbench import bench_delta_apply
r = bench_delta_apply(batch=int(sys.argv[1]))
print(json.dumps(r))
"""


def _measure_fresh(batch: int) -> dict:
    best = None
    for _ in range(1 + RETRIES):
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, str(batch)],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, **_MALLOC_ENV},
        )
        r = json.loads(proc.stdout.splitlines()[-1])
        if best is None or r["speedup"] > best["speedup"]:
            best = r
        if best["speedup"] >= MIN_DELTA_APPLY_SPEEDUP:
            break
    return best


def _format(results: dict) -> str:
    lines = [
        f"{'batch':>6}  {'pct_nnz':>7}  {'incremental':>12}  "
        f"{'rebuild':>10}  {'speedup':>8}  parity"
    ]
    for batch, r in results.items():
        pct = 100.0 * batch / r["graph"]["nnz"]
        lines.append(
            f"{batch:>6}  {pct:>6.2f}%  {r['incremental_s'] * 1e3:>10.3f}ms  "
            f"{r['rebuild_s'] * 1e3:>8.2f}ms  {r['speedup']:>7.2f}x  "
            f"{r['parity']}"
        )
    return "\n".join(lines)


def test_delta_apply_speedup_floor(benchmark, emit):
    results = benchmark.pedantic(
        lambda: {b: _measure_fresh(b) for b in BATCH_SIZES},
        rounds=1,
        iterations=1,
    )
    emit("delta_updates", _format(results))

    for batch, r in results.items():
        assert r["parity"], (
            f"batch={batch}: incremental result diverged from the rebuild "
            f"oracle (fingerprint mismatch)"
        )
        assert r["speedup"] >= MIN_DELTA_APPLY_SPEEDUP, (
            f"batch={batch} ({100.0 * batch / r['graph']['nnz']:.2f}% of "
            f"nnz): incremental apply speedup {r['speedup']:.2f}x below "
            f"the {MIN_DELTA_APPLY_SPEEDUP}x floor"
        )

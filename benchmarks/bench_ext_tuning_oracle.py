"""Extension — fixed CF=2 vs a per-matrix autotuned oracle.

The paper fixes CF=2 at runtime and reports that on only 4 (GTX 1080Ti)
resp. 1 (RTX 2080) of 64 matrices the fixed choice loses more than 15% to
the optimal CF (Section V-B2).  This benchmark reruns that analysis
through the tuner in :mod:`repro.core.tuning`, and additionally prices
what a tuning pass itself would cost — the paper's implicit reason to
avoid it for a runtime kernel.
"""

from repro.bench import comparison, format_table, geomean, render_claims
from repro.core import GESpMM, TunedSpMM, oracle_gap
from repro.gpusim import GTX_1080TI, RTX_2080

N = 512


def run(snap_suite, gpus):
    out = {}
    for gpu in gpus:
        worst, n_bad, results = oracle_gap(list(snap_suite.values()), N, gpu, fixed_cf=2)
        avg_loss = geomean(1 + r.loss_of(2) for r in results) - 1
        out[gpu.name] = (worst, n_bad, avg_loss)
    # Tuning cost on a representative matrix.
    g = list(snap_suite.values())[0]
    tuner = TunedSpMM()
    tune_cost = tuner.tuning_time(g, N, GTX_1080TI)
    one_run = GESpMM().estimate(g, N, GTX_1080TI).time_s
    return out, tune_cost / one_run


def test_ext_tuning_oracle(benchmark, emit, snap_suite, gpus):
    out, tune_ratio = benchmark.pedantic(run, args=(snap_suite, gpus), rounds=1, iterations=1)
    rows = [
        (gpu, f"{vals[1]}/64", f"{vals[0] * 100:.1f}%", f"{vals[2] * 100:.2f}%")
        for gpu, vals in out.items()
    ]
    table = format_table(
        ["GPU", ">15% loss vs oracle", "worst loss", "geomean loss"],
        rows,
        title=f"Fixed CF=2 vs per-matrix oracle (N={N}, 64 SNAP twins)",
    )
    claims = [
        comparison("CF=2 rarely far from oracle (1080Ti)", "4/64 matrices",
                   f"{out[GTX_1080TI.name][1]}/64", out[GTX_1080TI.name][1] <= 8),
        comparison("CF=2 rarely far from oracle (2080)", "1/64 matrices",
                   f"{out[RTX_2080.name][1]}/64", out[RTX_2080.name][1] <= 8),
        comparison("tuning pass costs real time", "runtime kernel avoids tuning",
                   f"{tune_ratio:.1f}x one SpMM", tune_ratio > 2),
    ]
    for gpu, (worst, n_bad, avg) in out.items():
        assert n_bad <= 8, f"fixed CF=2 should rarely lose >15% ({gpu})"
        assert avg < 0.08, f"average loss to oracle should be small ({gpu})"
    assert tune_ratio > 2  # trying 4 CFs costs several kernel runs
    emit("ext_tuning_oracle", table + "\n\n" + render_claims(claims, "design-choice check"))

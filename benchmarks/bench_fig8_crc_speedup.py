"""Figure 8 — per-matrix speedup from Coalesced Row Caching alone.

Paper setup (Section V-B1): Algorithm 2 vs Algorithm 1 across the 64
SNAP matrices, N = 512, both GPUs.

Paper result: average 1.246x on GTX 1080Ti; on RTX 2080 CRC alone is
roughly neutral (average 1.011x, some matrices below 1.0) because
Turing's unified L1 already filters the broadcast re-reads — but CRC
remains the foundation CWM builds on.
"""

from repro.bench import bar_chart, comparison, geomean, render_claims, run_sweep, speedup_series
from repro.core import CRCSpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, RTX_2080

N = 512


def test_fig8_crc_speedup(benchmark, emit, snap_suite, gpus):
    results = benchmark.pedantic(
        run_sweep, args=([SimpleSpMM(), CRCSpMM()], snap_suite, [N], gpus), rounds=1, iterations=1
    )
    out = []
    claims = []
    avgs = {}
    for gpu in gpus:
        series = speedup_series(results, "crc", "simple", gpu.name, N)
        avg = geomean(series.values())
        avgs[gpu.name] = avg
        out.append(bar_chart(series, label=f"Fig 8 ({gpu.name}, N={N}): CRC speedup over Algorithm 1", unit=2.0))
        out.append(f"  geometric mean: {avg:.3f}\n")
    claims.append(
        comparison("Fig8 avg CRC gain, GTX 1080Ti", "1.246x", f"{avgs[GTX_1080TI.name]:.3f}x",
                   1.08 < avgs[GTX_1080TI.name] < 1.45)
    )
    claims.append(
        comparison("Fig8 avg CRC gain, RTX 2080", "1.011x (neutral)", f"{avgs[RTX_2080.name]:.3f}x",
                   0.85 < avgs[RTX_2080.name] < 1.15)
    )
    # Machine ordering is the headline: Pascal benefits, Turing ~neutral.
    assert avgs[GTX_1080TI.name] > avgs[RTX_2080.name]
    assert avgs[GTX_1080TI.name] > 1.08
    assert 0.8 < avgs[RTX_2080.name] < 1.2
    emit("fig8_crc_speedup", "\n".join(out) + "\n" + render_claims(claims, "paper vs measured"))

"""Extension — sampled minibatch GraphSAGE training, end to end.

Combines the sampling substrate with the GNN engine: an actual
minibatch-training loop (fresh block per step, feature gathering, Adam)
profiled under the stock DGL backend vs the GE-SpMM swap-in.  This is
the end-to-end form of the paper's Section II-B scenario, beyond the
kernel-level pricing in ``bench_ext_sampling.py``.
"""

import numpy as np

from repro.bench import comparison, format_table, render_claims
from repro.gnn import DGLBackend, SimDevice, train_minibatch
from repro.gpusim import GTX_1080TI, RTX_2080

BATCHES = 12


def run(citation_datasets, gpus):
    rows = []
    agg_speedups = []
    for name, ds in citation_datasets.items():
        for gpu in gpus:
            results = {}
            for use_ge in (False, True):
                backend = DGLBackend(SimDevice(gpu), use_gespmm=use_ge)
                results[use_ge] = train_minibatch(
                    ds, backend, batch_size=128, fanout=10, n_batches=BATCHES, seed=3
                )
            stock, ge = results[False], results[True]
            agg = stock.profile.time("SpMM") / max(ge.profile.time("SpMM"), 1e-12)
            agg_speedups.append(agg)
            rows.append(
                (
                    name,
                    gpu.name,
                    f"{stock.profile.total_time * 1e3:.3f}",
                    f"{ge.profile.total_time * 1e3:.3f}",
                    f"{agg:.2f}x",
                    f"{ge.accuracy:.2f}",
                )
            )
            # The numerics must be identical either way.
            np.testing.assert_allclose(stock.losses, ge.losses, rtol=1e-5)
    return rows, agg_speedups


def test_ext_minibatch_training(benchmark, emit, citation_datasets, gpus):
    rows, agg_speedups = benchmark.pedantic(
        run, args=(citation_datasets, gpus), rounds=1, iterations=1
    )
    table = format_table(
        ["dataset", "GPU", "DGL total (ms)", "DGL+GE total (ms)", "agg speedup", "train acc"],
        rows,
        title=f"Sampled GraphSAGE minibatch training ({BATCHES} batches, batch=128, fanout=10)",
    )
    claims = [
        comparison("GE-SpMM speeds sampled aggregation", "CSR-native wins on fresh blocks",
                   f"aggregation speedups {min(agg_speedups):.2f}x-{max(agg_speedups):.2f}x",
                   min(agg_speedups) > 1.0),
    ]
    # Tiny sampled blocks are launch-bound, so dropping the per-call
    # cuSPARSE transpose kernel (one extra launch per aggregation) is a
    # large relative win here.
    assert min(agg_speedups) > 1.0
    emit("ext_minibatch_training", table + "\n\n" + render_claims(claims, "scenario check"))

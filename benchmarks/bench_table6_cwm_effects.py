"""Table VI — effects of Coarse-grained Warp Merging as CF varies.

Paper setup (Section V-B2): random graph M=65K nnz=650K, N=512,
GTX 1080Ti; metrics GLT, gld_throughput and achieved occupancy for
CF in {1 (w/o CWM), 2, 4, 8}.

Paper result: GLT decreases monotonically with CF (2.18e8 -> 1.74e8);
throughput peaks at CF=2 (479 -> 568 GB/s) then falls back (CF=8:
395 GB/s); occupancy decays (0.78 -> 0.75).  CRC+CWM combined average
1.65x (Pascal) / 1.53x (Turing) over Algorithm 1.
"""

from repro.bench import comparison, format_table, render_claims
from repro.core import CRCSpMM, CWMSpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, RTX_2080, profile_kernel
from repro.sparse import uniform_random

N = 512


def sweep():
    a = uniform_random(65_536, 650_000, seed=42)
    kernels = [("w/o CWM", CRCSpMM())] + [
        (f"CWM (CF={cf})", CWMSpMM(cf)) for cf in (2, 4, 8)
    ]
    reports = [(tag, profile_kernel(k, a, N, GTX_1080TI)) for tag, k in kernels]
    base = {g.name: profile_kernel(SimpleSpMM(), a, N, g) for g in (GTX_1080TI, RTX_2080)}
    combo = {g.name: profile_kernel(CWMSpMM(2), a, N, g) for g in (GTX_1080TI, RTX_2080)}
    return reports, base, combo


def test_table6_cwm_effects(benchmark, emit):
    reports, base, combo = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (tag, f"{r.gld_transactions:.3e}", f"{r.gld_throughput / 1e9:.2f}", f"{r.achieved_occupancy:.2f}")
        for tag, r in reports
    ]
    table = format_table(
        ["Method", "GLT(x32B)", "gld throughput(GB/s)", "Occ"],
        rows,
        title=f"Table VI reproduction (M=65K nnz=650K, N={N}, {GTX_1080TI.name})",
    )

    by = {tag: r for tag, r in reports}
    glts = [r.gld_transactions for _, r in reports]
    tps = {tag: r.gld_throughput for tag, r in reports}
    occ = {tag: r.achieved_occupancy for tag, r in reports}
    sp_pascal = base[GTX_1080TI.name].time_s / combo[GTX_1080TI.name].time_s
    sp_turing = base[RTX_2080.name].time_s / combo[RTX_2080.name].time_s

    claims = [
        comparison("GLT monotone decrease with CF", "2.18e8 -> 1.74e8",
                   f"{glts[0]:.2e} -> {glts[-1]:.2e}", all(a >= b for a, b in zip(glts, glts[1:]))),
        comparison("throughput peaks at CF=2", "479 -> 568 -> 479 -> 395 GB/s",
                   " -> ".join(f"{tps[t] / 1e9:.0f}" for t, _ in reports),
                   tps["CWM (CF=2)"] > tps["w/o CWM"] and tps["CWM (CF=8)"] < tps["CWM (CF=2)"]),
        comparison("occupancy decays with CF", "0.78 -> 0.75",
                   f"{occ['w/o CWM']:.2f} -> {occ['CWM (CF=8)']:.2f}",
                   occ["CWM (CF=8)"] < occ["w/o CWM"]),
        comparison("CRC+CWM vs Alg.1, GTX 1080Ti", "1.65x", f"{sp_pascal:.2f}x", 1.4 < sp_pascal < 1.9),
        comparison("CRC+CWM vs Alg.1, RTX 2080", "1.53x", f"{sp_turing:.2f}x", 1.05 < sp_turing < 1.8),
    ]
    assert all(a >= b for a, b in zip(glts, glts[1:]))
    assert tps["CWM (CF=2)"] > tps["w/o CWM"]
    assert tps["CWM (CF=8)"] < tps["CWM (CF=2)"]
    assert occ["CWM (CF=8)"] < occ["w/o CWM"]
    assert 1.3 < sp_pascal < 2.0
    assert sp_turing > 1.0
    emit("table6_cwm_effects", table + "\n\n" + render_claims(claims, "paper vs measured"))

"""Figure 12 — GE-SpMM speedup over a GunRock-based SpMM.

Paper setup (Section V-D): SpMM written with GunRock's ``advance`` on
Cora / Citeseer / Pubmed, N in {32, 64, 128}, both GPUs.

Paper result: GE-SpMM is 18.27x faster on average (bars range to ~60x)
because GunRock offers no feature-dimension parallelism — evidence that
"SpMM and GNN workloads require new primitives in graph processing
frameworks rather than SpMV".
"""

from repro.baselines import GunrockAdvanceSpMM
from repro.bench import comparison, format_table, geomean, render_claims, run_sweep, speedup_series
from repro.core import GESpMM

WIDTHS = [32, 64, 128]


def test_fig12_gunrock(benchmark, emit, citation_graphs, gpus):
    kernels = [GunrockAdvanceSpMM(), GESpMM()]
    results = benchmark.pedantic(
        run_sweep, args=(kernels, citation_graphs, WIDTHS, gpus), rounds=1, iterations=1
    )
    rows = []
    all_speedups = []
    for g in citation_graphs:
        for n in WIDTHS:
            cells = [g, f"N={n}"]
            for gpu in gpus:
                s = speedup_series(results, "GE-SpMM", "GunRock advance", gpu.name, n)[g]
                all_speedups.append(s)
                cells.append(f"{s:.2f}x")
            rows.append(tuple(cells))
    table = format_table(
        ["graph", "", *(g.name for g in gpus)],
        rows,
        title="Fig 12 reproduction: GE-SpMM speedup over GunRock-based SpMM",
    )
    avg = geomean(all_speedups)
    claims = [
        comparison("average speedup over GunRock", "18.27x", f"{avg:.2f}x", 8 < avg < 40),
        comparison("every case a large win", "all bars >> 1", f"min {min(all_speedups):.1f}x",
                   min(all_speedups) > 3),
    ]
    assert 8 < avg < 40
    assert min(all_speedups) > 3
    emit("fig12_gunrock", table + "\n\n" + render_claims(claims, "paper vs measured"))

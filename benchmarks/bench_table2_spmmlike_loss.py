"""Table II — performance loss of SpMM-like vs SpMM aggregation in DGL.

Paper setup (Section I): the same aggregation step expressed two ways —
GraphSAGE-gcn (internally standard SpMM via cuSPARSE) versus
GraphSAGE-pool (internally SpMM-like, which cuSPARSE cannot run, so DGL
falls back to its own kernel) — on GTX 1080Ti.

Paper result: the SpMM-like step loses 8.8% (Cora), 89.2% (Citeseer),
139.1% (Pubmed) against the SpMM step.  Shape: the fallback SpMM-like
aggregation is substantially slower than the cuSPARSE SpMM aggregation,
and the gap grows with graph size.
"""

import numpy as np

from repro.baselines import CusparseCsrmm2, DGLFallbackSpMMLike, cublas_transpose_time
from repro.bench import comparison, format_table, render_claims
from repro.gpusim import GTX_1080TI
from repro.semiring import MAX_TIMES

PAPER = {"cora": 8.8, "citeseer": 89.2, "pubmed": 139.1}


def run(citation_datasets):
    """Aggregation runs at each graph's raw feature width (the first
    GraphSAGE layer aggregates input features, as in DGL's examples)."""
    cusparse = CusparseCsrmm2()
    fallback = DGLFallbackSpMMLike()
    out = {}
    for name, ds in citation_datasets.items():
        adj = ds.normalized_adjacency()
        n = ds.feature_dim
        t_spmm = cusparse.estimate(adj, n, GTX_1080TI).time_s + cublas_transpose_time(
            adj.nrows, n, GTX_1080TI
        )
        t_like = fallback.estimate(adj, n, GTX_1080TI, MAX_TIMES).time_s
        out[name] = (t_spmm, t_like, (t_like - t_spmm) / t_spmm * 100)
    return out


def test_table2_spmmlike_loss(benchmark, emit, citation_datasets):
    res = benchmark.pedantic(run, args=(citation_datasets,), rounds=1, iterations=1)
    rows = [
        (g, f"{t1 * 1e6:.1f}us", f"{t2 * 1e6:.1f}us", f"{PAPER[g]:.1f}%", f"{loss:.1f}%")
        for g, (t1, t2, loss) in res.items()
    ]
    table = format_table(
        ["Graph", "SpMM step (cuSPARSE)", "SpMM-like step (DGL)", "paper loss", "measured loss"],
        rows,
        title=f"Table II reproduction: aggregation step at raw feature width, {GTX_1080TI.name}",
    )
    losses = {g: loss for g, (_, _, loss) in res.items()}
    claims = [
        comparison(f"Table II {g}", f"{PAPER[g]:.1f}%", f"{losses[g]:.1f}%", losses[g] > 0)
        for g in losses
    ]
    claims.append(
        comparison("losses are tens of percent", "8.8% - 139.1%",
                   " / ".join(f"{losses[g]:.0f}%" for g in ("cora", "citeseer", "pubmed")),
                   all(0 < l < 200 for l in losses.values()))
    )
    assert all(loss > 0 for loss in losses.values()), "SpMM-like must be slower than SpMM in stock DGL"
    assert losses["pubmed"] > 30, "the loss should be substantial on the largest graph"
    emit("table2_spmmlike_loss", table + "\n\n" + render_claims(claims, "paper vs measured"))

"""Figure 10 — kernel throughput on the GNN citation graphs.

Paper setup (Section V-C1): GraphBLAST, cuSPARSE and GE-SpMM on Cora /
Citeseer / Pubmed, N in {128, 256, 512}, both GPUs; metric GFLOPS
(2*nnz*N / time).

Paper result: GE-SpMM outperforms cuSPARSE by up to 1.62x on these
graphs and consistently beats GraphBLAST — evidence the kernel can
accelerate real GNN models.
"""

from repro.baselines import CusparseCsrmm2, GraphBlastRowSplit
from repro.bench import comparison, format_table, render_claims, run_sweep
from repro.core import GESpMM

WIDTHS = [128, 256, 512]


def test_fig10_citation_graphs(benchmark, emit, citation_graphs, gpus):
    kernels = [GraphBlastRowSplit(), CusparseCsrmm2(), GESpMM()]
    results = benchmark.pedantic(
        run_sweep, args=(kernels, citation_graphs, WIDTHS, gpus), rounds=1, iterations=1
    )
    by = {(r.gpu, r.graph, r.n, r.kernel): r for r in results}

    out = []
    max_vs_cusparse = 0.0
    ge_wins = 0
    total = 0
    claims = []
    for gpu in gpus:
        rows = []
        for n in WIDTHS:
            for g in citation_graphs:
                gb = by[(gpu.name, g, n, "GraphBLAST rowsplit")]
                cu = by[(gpu.name, g, n, "cuSPARSE csrmm2")]
                ge = by[(gpu.name, g, n, "GE-SpMM")]
                total += 1
                if ge.gflops >= max(gb.gflops, cu.gflops):
                    ge_wins += 1
                max_vs_cusparse = max(max_vs_cusparse, cu.time_s / ge.time_s)
                rows.append((f"N={n}", g, f"{gb.gflops:.1f}", f"{cu.gflops:.1f}", f"{ge.gflops:.1f}"))
        out.append(
            format_table(
                ["", "graph", "GraphBLAST", "cuSPARSE", "GE-SpMM"],
                rows,
                title=f"Fig 10 ({gpu.name}): GFLOPS on citation graphs",
            )
        )
        out.append("")
    claims.append(
        comparison("GE-SpMM fastest on citation graphs", "best in all panels",
                   f"wins {ge_wins}/{total}", ge_wins >= total - 2)
    )
    claims.append(
        comparison("max gain over cuSPARSE", "up to 1.62x", f"{max_vs_cusparse:.2f}x",
                   1.1 < max_vs_cusparse < 2.0)
    )
    assert ge_wins >= total - 2
    assert max_vs_cusparse > 1.1
    emit("fig10_citation_graphs", "\n".join(out) + "\n" + render_claims(claims, "paper vs measured"))

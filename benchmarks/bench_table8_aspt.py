"""Table VIII — GE-SpMM against ASpT, with and without preprocessing.

Paper setup (Section V-E): ASpT (the best published SpMM, preprocess-
based) on the SNAP dataset, N in {128, 256, 512}, both GPUs.  Two
comparisons: kernel-only, and one-preprocess + one-run (the GNN
inference / sampled-training scenario where preprocessing cannot be
amortized).

Paper result: kernel-only GE-SpMM reaches 0.85-1.00x of ASpT (slightly
behind, approaching parity as N grows); with preprocessing counted,
GE-SpMM is 1.43x-2.06x ahead.  Preprocess overhead averages 0.47x /
0.34x of one SpMM and ranges 0.01x-64.5x.
"""

from repro.baselines import ASpTSpMM
from repro.bench import comparison, format_table, geomean, render_claims
from repro.core import GESpMM

WIDTHS = [128, 256, 512]


def sweep(snap_suite, gpus):
    ge = GESpMM()
    aspt = ASpTSpMM()
    rows = {}
    pre_ratios = {g.name: [] for g in gpus}
    for gpu in gpus:
        for n in WIDTHS:
            kernel_only, with_pre = [], []
            for name, a in snap_suite.items():
                t_ge = ge.estimate(a, n, gpu).time_s
                t_as = aspt.estimate(a, n, gpu).time_s
                t_pre = aspt.preprocess_time(a, gpu)
                kernel_only.append(t_as / t_ge)  # GE speed relative to ASpT
                with_pre.append((t_as + t_pre) / t_ge)
                if n == WIDTHS[-1]:
                    pre_ratios[gpu.name].append(t_pre / t_as)
            rows[(gpu.name, "ASpT", n)] = geomean(kernel_only)
            rows[(gpu.name, "ASpT w/ preproc", n)] = geomean(with_pre)
    return rows, pre_ratios


def test_table8_aspt(benchmark, emit, snap_suite, gpus):
    rows, pre_ratios = benchmark.pedantic(sweep, args=(snap_suite, gpus), rounds=1, iterations=1)
    table_rows = []
    claims = []
    paper = {
        ("GTX 1080Ti", "ASpT"): (0.93, 0.97, 1.00),
        ("GTX 1080Ti", "ASpT w/ preproc"): (1.88, 1.97, 2.06),
        ("RTX 2080", "ASpT"): (0.85, 0.93, 0.98),
        ("RTX 2080", "ASpT w/ preproc"): (1.43, 1.57, 1.69),
    }
    for gpu in gpus:
        for base in ("ASpT", "ASpT w/ preproc"):
            meas = [rows[(gpu.name, base, n)] for n in WIDTHS]
            table_rows.append((gpu.name, base, *(f"{v:.2f}" for v in meas)))
            pp = paper[(gpu.name, base)]
            if base == "ASpT":
                ok = all(0.8 < v < 1.25 for v in meas)  # near parity kernel-only
                claims.append(comparison(f"T8 {gpu.name} kernel-only",
                                         "/".join(f"{p:.2f}" for p in pp),
                                         "/".join(f"{v:.2f}" for v in meas), ok))
                assert ok
            else:
                ok = all(v > 1.2 for v in meas)  # clear win once preprocess counts
                claims.append(comparison(f"T8 {gpu.name} w/ preprocess",
                                         "/".join(f"{p:.2f}" for p in pp),
                                         "/".join(f"{v:.2f}" for v in meas), ok))
                assert ok
        avg_pre = geomean(pre_ratios[gpu.name])
        lo, hi = min(pre_ratios[gpu.name]), max(pre_ratios[gpu.name])
        claims.append(
            comparison(f"preprocess overhead ({gpu.name})", "avg 0.47x/0.34x, range 0.01-64.5x",
                       f"avg {avg_pre:.2f}x, range {lo:.2f}-{hi:.2f}x", 0.05 < avg_pre < 2.0)
        )
    table = format_table(
        ["Machine", "Baseline"] + [f"N={n}" for n in WIDTHS],
        table_rows,
        title="Table VIII reproduction: GE-SpMM average speed against ASpT",
    )
    emit("table8_aspt", table + "\n\n" + render_claims(claims, "paper vs measured"))

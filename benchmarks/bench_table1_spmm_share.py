"""Table I — SpMM's share of CUDA time during GCN training.

Paper setup (Section I): DGL's GCN example with default settings on the
citation graphs, GTX 1080Ti, operator times from the PyTorch profiler.

Paper result: SpMM takes ~30% of total CUDA time (Cora 33.1%, Citeseer
29.3%, Pubmed 29.8%); dense matmuls ~10%; everything else under 10% —
the motivation for accelerating SpMM at all.
"""

import numpy as np

from repro.bench import comparison, format_table, render_claims
from repro.gnn import DGLBackend, GCN, SimDevice, train
from repro.gpusim import GTX_1080TI

PAPER = {"cora": 33.1, "citeseer": 29.3, "pubmed": 29.8}


def run(citation_datasets):
    shares = {}
    profiles = {}
    for name, ds in citation_datasets.items():
        device = SimDevice(GTX_1080TI)
        model = GCN(ds.feature_dim, 16, ds.n_classes, n_layers=1, rng=np.random.default_rng(0))
        res = train(model, DGLBackend(device), ds, epochs=5)
        shares[name] = res.spmm_share() * 100
        profiles[name] = res.profile
    return shares, profiles


def test_table1_spmm_share(benchmark, emit, citation_datasets):
    shares, profiles = benchmark.pedantic(run, args=(citation_datasets,), rounds=1, iterations=1)
    rows = [(g, f"{PAPER[g]:.1f}%", f"{shares[g]:.1f}%") for g in shares]
    table = format_table(["Graph", "paper SpMM share", "measured SpMM share"], rows,
                         title=f"Table I reproduction: GCN training on {GTX_1080TI.name} (DGL)")
    detail = "\n\n".join(f"[{g}]\n{p.format()}" for g, p in profiles.items())

    claims = [
        comparison(f"Table I {g}", f"{PAPER[g]:.1f}%", f"{shares[g]:.1f}%", 15 <= shares[g] <= 45)
        for g in shares
    ]
    for g, s in shares.items():
        # SpMM is a major but not dominant cost — the paper's point.
        assert 10 < s < 50, f"SpMM share out of band on {g}: {s:.1f}%"
    emit("table1_spmm_share", table + "\n\n" + detail + "\n\n" + render_claims(claims, "paper vs measured"))

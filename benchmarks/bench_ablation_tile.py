"""Ablation — CRC staging-tile size (beyond the paper's experiments).

DESIGN.md calls out the CRC tile size (= warp_size in the paper's
Algorithm 2) as a design choice: a larger staging tile amortizes
``__syncwarp`` and loop control over more elements but costs more shared
memory per warp, which eventually cuts occupancy.  This ablation sweeps
tile in {32, 64, 128, 256} over a suite subset to verify the paper's
implicit claim that tile = warp_size is (near-)optimal and cheapest.
"""

from repro.bench import comparison, format_table, geomean, render_claims, run_sweep
from repro.core import CRCSpMM
from repro.gpusim import GTX_1080TI

TILES = [32, 64, 128, 256]
N = 512


def test_ablation_crc_tile(benchmark, emit, snap_suite):
    subset = {k: v for k, v in list(snap_suite.items())[:16]}
    kernels = [CRCSpMM(tile=t) for t in TILES]
    results = benchmark.pedantic(run_sweep, args=(kernels, subset, [N], [GTX_1080TI]),
                                 rounds=1, iterations=1)
    base = {r.graph: r.time_s for r in results if r.kernel == "crc"}
    rows = []
    means = {}
    for t in TILES:
        name = "crc" if t == 32 else f"crc(tile={t})"
        rel = [base[r.graph] / r.time_s for r in results if r.kernel == name]
        means[t] = geomean(rel)
        rows.append((f"tile={t}", f"{means[t]:.3f}"))
    table = format_table(["variant", "speedup vs tile=32"], rows,
                         title=f"CRC tile-size ablation ({GTX_1080TI.name}, N={N}, 16 matrices)")
    best = max(means.values())
    claims = [
        comparison("tile=32 near-optimal", "paper uses tile = warp_size",
                   f"within {100 * (best - means[32]):.1f}% of best", best - means[32] < 0.03)
    ]
    assert best - means[32] < 0.03, "bigger tiles should not meaningfully beat tile=32"
    emit("ablation_crc_tile", table + "\n\n" + render_claims(claims, "design-choice check"))

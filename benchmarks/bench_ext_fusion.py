"""Extension — epilogue fusion saving (the kernel-fusion argument).

The paper credits DGL's advantage over PyG to fusing message generation
and reduction into one SpMM (Section II-C).  This ablation extends the
same principle one stage further: fusing the bias/ReLU epilogue into
GE-SpMM's store phase removes one or two bandwidth-bound elementwise
kernels per layer.  The benchmark measures the end-to-end saving across
feature widths on the canonical matrix.
"""

from repro.bench import comparison, format_table, render_claims
from repro.core import FusedGESpMM, RELU_EPILOGUE, bias_relu_epilogue
from repro.gpusim import GTX_1080TI
from repro.sparse import uniform_random

WIDTHS = [32, 128, 512]


def run():
    a = uniform_random(65_536, 650_000, seed=42)
    rows = []
    savings = []
    for epi_name, fused in (("relu", FusedGESpMM(RELU_EPILOGUE)),
                            ("bias+relu", FusedGESpMM(bias_relu_epilogue()))):
        for n in WIDTHS:
            s = fused.fusion_saving(a, n, GTX_1080TI)
            savings.append(s)
            rows.append((epi_name, f"N={n}", f"{s:.3f}x"))
    return rows, savings


def test_ext_epilogue_fusion(benchmark, emit):
    rows, savings = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(["epilogue", "width", "end-to-end saving"], rows,
                         title="Epilogue fusion saving (GE-SpMM, M=65K nnz=650K, GTX 1080Ti)")
    claims = [
        comparison("fusion always helps", "fused kernels avoid extra passes",
                   f"min {min(savings):.3f}x, max {max(savings):.3f}x", min(savings) > 1.0),
        comparison("bias+relu saves more than relu", "two stages removed vs one",
                   f"{savings[len(WIDTHS):][0]:.3f} vs {savings[0]:.3f} at N=32",
                   savings[len(WIDTHS)] >= savings[0]),
    ]
    assert min(savings) > 1.0
    assert max(savings) > 1.05
    emit("ext_epilogue_fusion", table + "\n\n" + render_claims(claims, "fusion check"))

"""Column-tiled executor: strict peak-memory and throughput floors.

Not a paper table: this measures the reproduction's tiled host executor
(``repro.sparse.segment``) — the host analogue of GE-SpMM's
Coarse-grained Warp Merging, where each loaded sparse row is reused
across feature tiles so the transient footprint is O(nnz*T) instead of
O(nnz*N).

Both measurements run in a **fresh subprocess with glibc's malloc
thresholds pinned high** (``MALLOC_MMAP_THRESHOLD_`` /
``MALLOC_TRIM_THRESHOLD_``), the same allocator discipline as
``bench_delta_updates.py``: the in-process variants recorded by
``bench_host_executor.py`` run after other benches have dirtied the
heap, so their guards are softer.  Here the floors are the ISSUE
contract, strict:

* ``tracemalloc`` transient peak of one SpMM at N=1024 on a 100k-edge
  power-law graph within **2x** of the N=64 peak (operand and output
  preallocated outside the traced window, workspace pool cleared per
  measurement so each width pays its own allocation; the untiled ratio
  on the same graph is ~16x),
* tiled vs. untiled wide-N (256) throughput at least **1.5x** (typical
  ~3-4x).
"""

import json
import os
import subprocess
import sys

#: ISSUE contract: the tiled executor's transient peak must be flat in
#: N (typical ratio ~1.0; the untiled path's is ~16x at these widths).
MAX_TILED_PEAK_RATIO = 2.0
#: ISSUE contract: >= 1.5x at N >= 256 over the untiled engine body
#: (typical fresh-heap measurements are 3-4x).
MIN_TILED_WIDE_SPEEDUP = 1.5

#: One fresh re-measurement absorbs ambient-load transients on the
#: throughput side without softening the floor (the peak-memory side is
#: deterministic, allocator noise cannot move tracemalloc's accounting).
RETRIES = 1

#: Pin glibc's adaptive thresholds (see ``bench_delta_updates.py``):
#: temporaries stay on the brk heap instead of round-tripping pages
#: through mmap between reps.
_MALLOC_ENV = {
    "MALLOC_MMAP_THRESHOLD_": str(64 * 1024 * 1024),
    "MALLOC_TRIM_THRESHOLD_": str(64 * 1024 * 1024),
}

_CHILD = """\
import json
from repro.bench.hostbench import bench_tiled_peak, bench_tiled_spmm
print(json.dumps({
    "peak": bench_tiled_peak(),
    "spmm": bench_tiled_spmm(),
}))
"""


def _measure_fresh() -> dict:
    best = None
    for _ in range(1 + RETRIES):
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, **_MALLOC_ENV},
        )
        r = json.loads(proc.stdout.splitlines()[-1])
        if best is None or r["spmm"]["speedup"] > best["spmm"]["speedup"]:
            best = r
        if best["spmm"]["speedup"] >= MIN_TILED_WIDE_SPEEDUP:
            break
    return best


def _format(r: dict) -> str:
    peak, spmm = r["peak"], r["spmm"]
    mib = lambda b: b / (1024 * 1024)
    return "\n".join(
        [
            f"peak  N {peak['narrow_n']:>4} -> {peak['wide_n']:>4}   "
            f"tiled {mib(peak['tiled']['narrow_peak_bytes']):6.1f} -> "
            f"{mib(peak['tiled']['wide_peak_bytes']):6.1f} MiB "
            f"({peak['tiled']['peak_ratio']:.2f}x)   "
            f"untiled {mib(peak['untiled']['narrow_peak_bytes']):6.1f} -> "
            f"{mib(peak['untiled']['wide_peak_bytes']):6.1f} MiB "
            f"({peak['untiled']['peak_ratio']:.2f}x)",
            f"spmm  N {spmm['n']}  tile {spmm['tile_width']}   "
            f"untiled {spmm['untiled_s'] * 1e3:8.2f} ms   "
            f"tiled {spmm['tiled_s'] * 1e3:8.2f} ms   "
            f"{spmm['speedup']:5.2f}x",
        ]
    )


def test_tiled_memory_and_throughput_floors(benchmark, emit):
    r = benchmark.pedantic(_measure_fresh, rounds=1, iterations=1)
    emit("tiled_memory", _format(r))

    peak = r["peak"]["tiled"]["peak_ratio"]
    assert peak <= MAX_TILED_PEAK_RATIO, (
        f"tiled SpMM transient peak grew {peak:.2f}x from "
        f"N={r['peak']['narrow_n']} to N={r['peak']['wide_n']} (cap "
        f"{MAX_TILED_PEAK_RATIO}x) — the workspace is no longer O(nnz*T)"
    )
    # The untiled contrast must actually show the problem being solved:
    # if it is also flat, the measurement stopped measuring anything.
    assert r["peak"]["untiled"]["peak_ratio"] >= 4.0, r["peak"]
    speedup = r["spmm"]["speedup"]
    assert speedup >= MIN_TILED_WIDE_SPEEDUP, (
        f"tiled wide-N SpMM speedup {speedup:.2f}x below the "
        f"{MIN_TILED_WIDE_SPEEDUP}x floor (N={r['spmm']['n']}, "
        f"tile={r['spmm']['tile_width']})"
    )

"""Extension — the fixed-format trap (Fastspmm / ELLPACK-R).

The paper dismisses fixed-format preprocess approaches citing Fastspmm
[21] but only benchmarks ASpT; this extension adds the measurement.
ELLPACK-R streams the padded slab, so its fate tracks the padding ratio:
competitive on regular families (road-like), catastrophic on power-law
families — exactly why SNAP-style GNN workloads need CSR-native kernels.
"""

from repro.baselines import FastSpMM
from repro.bench import comparison, format_table, render_claims
from repro.core import GESpMM
from repro.gpusim import GTX_1080TI
from repro.sparse import banded_random, power_law, to_ellpack_r, uniform_random

N = 256


def run():
    families = {
        "road-like (banded)": banded_random(30_000, 300_000, bandwidth=16, seed=9),
        "p2p-like (uniform)": uniform_random(30_000, 300_000, seed=9),
        "social-like (power law)": power_law(30_000, 300_000, seed=9),
    }
    rows = []
    ratios = {}
    ge, fs = GESpMM(), FastSpMM()
    for name, g in families.items():
        pad = to_ellpack_r(g).padding_ratio
        t_ge = ge.estimate(g, N, GTX_1080TI).time_s
        t_fs = fs.estimate(g, N, GTX_1080TI).time_s
        pre = fs.preprocess_time(g, GTX_1080TI)
        ratios[name] = t_fs / t_ge
        rows.append((name, f"{pad:.1f}x", f"{t_fs / t_ge:.2f}x", f"{(t_fs + pre) / t_ge:.2f}x"))
    return rows, ratios


def test_ext_fastspmm_padding(benchmark, emit):
    rows, ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["family", "ELLPACK padding", "Fastspmm/GE (kernel)", "w/ conversion"],
        rows,
        title=f"Fixed-format (ELLPACK-R) cost by graph family (N={N}, GTX 1080Ti)",
    )
    claims = [
        comparison("regular families near parity", "ELLPACK fine on regular rows",
                   f"banded {ratios['road-like (banded)']:.2f}x",
                   ratios["road-like (banded)"] < 1.4),
        comparison("power-law families collapse", "padding up to the max row length",
                   f"{ratios['social-like (power law)']:.1f}x slower",
                   ratios["social-like (power law)"] > 3),
    ]
    assert ratios["road-like (banded)"] < 1.4
    assert ratios["social-like (power law)"] > 3
    emit("ext_fastspmm_padding", table + "\n\n" + render_claims(claims, "fixed-format check"))

"""Figure 7(c) — adaptive method choice as a function of N.

Paper setup (Section IV-A): average performance of Algorithm 1, 2 (CRC)
and 3 (CRC+CWM) over the test dataset at N=16 and N=64, normalized to
Algorithm 1.

Paper result: at N=16, CRC helps but adding CWM does not (there is no
second warp to merge and the extra instructions only cost); at N=64 the
combination is clearly best.  Hence the runtime rule: N <= 32 -> CRC,
N > 32 -> CRC+CWM(CF=2) — which is exactly what ``GESpMM.select`` does.
"""

from repro.bench import comparison, format_table, geomean, render_claims, run_sweep, speedup_series
from repro.core import CRCSpMM, CWMSpMM, GESpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI


def test_fig7c_adaptive(benchmark, emit, snap_suite):
    kernels = [SimpleSpMM(), CRCSpMM(), CWMSpMM(2)]
    results = benchmark.pedantic(
        run_sweep, args=(kernels, snap_suite, [16, 64], [GTX_1080TI]), rounds=1, iterations=1
    )
    rows = []
    norm = {}
    for n in (16, 64):
        crc = geomean(speedup_series(results, "crc", "simple", GTX_1080TI.name, n).values())
        cwm = geomean(speedup_series(results, "crc+cwm(cf=2)", "simple", GTX_1080TI.name, n).values())
        norm[n] = (1.0, crc, cwm)
        rows.append((f"N={n}", "1.000", f"{crc:.3f}", f"{cwm:.3f}"))
    table = format_table(
        ["", "Alg.1", "Alg.2 (CRC)", "Alg.3 (CRC+CWM)"],
        rows,
        title=f"Fig 7(c) reproduction: normalized average performance ({GTX_1080TI.name})",
    )

    claims = [
        comparison("N=16: CWM not worthwhile", "Alg3 <= Alg2 at N<=32",
                   f"CRC {norm[16][1]:.2f} vs CRC+CWM {norm[16][2]:.2f}",
                   norm[16][2] <= norm[16][1] * 1.02),
        comparison("N=64: CWM clearly best", "Alg3 > Alg2",
                   f"CRC {norm[64][1]:.2f} vs CRC+CWM {norm[64][2]:.2f}",
                   norm[64][2] > norm[64][1]),
    ]
    # At N=16 a CF=2 warp would cover 64 columns for 16 outputs: CWM must
    # not win; at N=64 it must.  The adaptive kernel picks accordingly.
    assert norm[16][2] <= norm[16][1] * 1.02
    assert norm[64][2] > norm[64][1]
    ge = GESpMM()
    assert ge.select(16) is ge._crc and ge.select(64) is ge._cwm
    emit("fig7c_adaptive", table + "\n\n" + render_claims(claims, "paper vs measured"))

"""Figure 3 — profiling cuSPARSE csrmm2 while sweeping N.

Paper setup (Section I): synthetic random matrix M=65K, nnz=650K;
N swept over {8,16,32,64,128,256,512}; metrics: global load transactions
and global load throughput, on the 484 GB/s GTX 1080Ti.

Paper result: "the total number of memory transactions linearly grows
with N, but the kernel reaches near maximum bandwidth throughput after N
reaches 32" — i.e. SpMM is not starved for bandwidth utilization, it
suffers from sheer data movement, motivating data *reuse*.
"""

import numpy as np

from repro.baselines import CusparseCsrmm2
from repro.bench import comparison, format_table, render_claims
from repro.gpusim import GTX_1080TI, profile_kernel
from repro.sparse import uniform_random

WIDTHS = [8, 16, 32, 64, 128, 256, 512]


def sweep():
    a = uniform_random(65_536, 650_000, seed=42)
    kernel = CusparseCsrmm2()
    return [(n, profile_kernel(kernel, a, n, GTX_1080TI)) for n in WIDTHS]


def test_fig3_cusparse_profile(benchmark, emit):
    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (n, f"{r.gld_transactions:.3e}", f"{r.gld_throughput / 1e9:.1f}", f"{r.time_s * 1e3:.3f}")
        for n, r in reports
    ]
    table = format_table(
        ["N", "GLT(x32B)", "gld throughput (GB/s)", "time (ms)"],
        rows,
        title=f"Fig 3 reproduction: csrmm2 on M=65K nnz=650K, {GTX_1080TI.name}",
    )

    glt = {n: r.gld_transactions for n, r in reports}
    tp = {n: r.gld_throughput for n, r in reports}
    # Linear transaction growth: doubling N ~doubles GLT for large N.
    growth = glt[512] / glt[256]
    # Throughput saturates: beyond N=32 it gains little.
    sat = tp[512] / tp[32]
    early = tp[32] / tp[8]
    claims = [
        comparison("GLT growth 256->512", "~2x (linear)", f"{growth:.2f}x", 1.8 < growth < 2.2),
        comparison("throughput N=8 -> N=32", "rising", f"{early:.2f}x", early > 1.2),
        comparison("throughput N=32 -> N=512", "saturated (~1x)", f"{sat:.2f}x", 0.8 < sat < 1.4),
    ]
    assert 1.8 < growth < 2.2
    assert early > 1.2
    assert sat < 1.4
    emit("fig3_cusparse_profile", table + "\n\n" + render_claims(claims, "paper vs measured"))

"""Ablation — the adaptive dispatch threshold (N <= 32 -> CRC only).

The paper fixes the switch at N = warp_size: "CWM is not necessary for
N <= 32 since warp_size is 32, and we should directly call Algorithm 2
to dismiss the overhead of unnecessary instructions" (Section IV-A).
This ablation sweeps the threshold and checks that 32 is within noise of
the best policy across feature widths around the boundary.
"""

from repro.bench import comparison, format_table, geomean, render_claims
from repro.core import GESpMM
from repro.gpusim import GTX_1080TI

THRESHOLDS = [8, 16, 32, 64, 128]
WIDTHS = [16, 32, 48, 64, 128]


def run(snap_suite):
    subset = {k: v for k, v in list(snap_suite.items())[:16]}
    policies = {t: GESpMM(threshold=t) for t in THRESHOLDS}
    # Mean simulated time per policy, aggregated over graphs and widths,
    # normalized per (graph, width) so every cell weighs equally.
    cell_times = {t: [] for t in THRESHOLDS}
    for g in subset.values():
        for n in WIDTHS:
            times = {t: policies[t].estimate(g, n, GTX_1080TI).time_s for t in THRESHOLDS}
            best = min(times.values())
            for t in THRESHOLDS:
                cell_times[t].append(times[t] / best)
    return {t: geomean(v) for t, v in cell_times.items()}


def test_ablation_adaptive_threshold(benchmark, emit, snap_suite):
    slowdown = benchmark.pedantic(run, args=(snap_suite,), rounds=1, iterations=1)
    rows = [(f"threshold={t}", f"{slowdown[t]:.4f}") for t in THRESHOLDS]
    table = format_table(["policy", "geomean slowdown vs oracle"], rows,
                         title=f"Adaptive-threshold ablation ({GTX_1080TI.name})")
    claims = [
        comparison("threshold 32 near-oracle", "paper picks warp_size",
                   f"{(slowdown[32] - 1) * 100:.2f}% above oracle", slowdown[32] < 1.02)
    ]
    assert slowdown[32] < 1.02, "the paper's threshold should be near the oracle policy"
    assert slowdown[32] <= min(slowdown.values()) + 0.02
    emit("ablation_adaptive_threshold", table + "\n\n" + render_claims(claims, "design-choice check"))

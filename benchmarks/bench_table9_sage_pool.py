"""Table IX — GraphSAGE-pool CUDA-time reduction with GE-SpMM in DGL.

Paper setup (Section V-F2): GraphSAGE-pool (max-pooling aggregation —
the SpMM-like operation cuSPARSE does not provide) trained on Pubmed in
DGL, model grid (layers, features), both GPUs.  Two numbers per config:
speedup of the SpMM-like operator itself, and of total training time.

Paper result: the SpMM-like kernel alone speeds up 2.39x-6.15x
(1080Ti) / 3.03x-3.51x (2080); total time improves ~1.1x because
aggregation is one of several operators.
"""

import numpy as np

from repro.bench import comparison, format_table, render_claims
from repro.gnn import DGLBackend, GraphSAGE, SimDevice, train
from repro.gpusim import GTX_1080TI, RTX_2080

CONFIGS = [(1, 16), (1, 64), (1, 256), (2, 16), (2, 64), (2, 256)]
EPOCHS = 3


def run(ds, gpus):
    rows = []
    op_speedups, total_speedups = [], []
    for layers, feats in CONFIGS:
        cells = [f"({layers},{feats})"]
        for gpu in gpus:
            res = {}
            for use_ge in (False, True):
                device = SimDevice(gpu)
                model = GraphSAGE(ds.feature_dim, feats, ds.n_classes, n_layers=layers,
                                  aggregator="pool", rng=np.random.default_rng(0))
                res[use_ge] = train(model, DGLBackend(device, use_gespmm=use_ge), ds, epochs=EPOCHS)
            op = res[False].profile.time("SpMM-like") / max(res[True].profile.time("SpMM-like"), 1e-12)
            tot = res[False].total_time / res[True].total_time
            op_speedups.append(op)
            total_speedups.append(tot)
            cells += [f"{op:.2f}", f"{tot:.2f}"]
        rows.append(tuple(cells))
    return rows, op_speedups, total_speedups


def test_table9_sage_pool(benchmark, emit, citation_datasets):
    gpus = [GTX_1080TI, RTX_2080]
    ds = citation_datasets["pubmed"]
    rows, op_speedups, total_speedups = benchmark.pedantic(run, args=(ds, gpus), rounds=1, iterations=1)
    headers = ["(#layer,#feature)"]
    for gpu in gpus:
        headers += [f"{gpu.name} SpMM-like", f"{gpu.name} total"]
    table = format_table(headers, rows,
                         title=f"Table IX reproduction: GraphSAGE-pool on {ds.name} (DGL vs DGL+GE-SpMM)")

    claims = [
        comparison("SpMM-like operator speedup", "2.39x-6.15x / 3.03x-3.51x",
                   f"{min(op_speedups):.2f}x-{max(op_speedups):.2f}x",
                   min(op_speedups) > 1.5),
        comparison("total training-time speedup", "~1.09x-1.14x",
                   f"{min(total_speedups):.2f}x-{max(total_speedups):.2f}x",
                   min(total_speedups) > 1.0 and max(total_speedups) < 1.6),
    ]
    assert min(op_speedups) > 1.5, "GE-SpMM's SpMM-like must clearly beat DGL's fallback"
    assert all(t > 1.0 for t in total_speedups), "total time must improve"
    assert max(total_speedups) < 2.0, "total gain bounded: aggregation is one op among many"
    emit("table9_sage_pool", table + "\n\n" + render_claims(claims, "paper vs measured"))

"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure from the paper's
evaluation section: it prints the paper-style rows/series, writes them to
``benchmarks/results/``, asserts the qualitative shape (who wins, by
roughly what factor), and registers the run with pytest-benchmark.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline; they are always written to the results directory).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import load_citation, load_suite
from repro.gpusim import GTX_1080TI, RTX_2080

#: nonzero cap for the scaled SNAP twins used in benchmark sweeps; keeps
#: the full 64-graph x 3-N x 2-GPU sweep to seconds (see DESIGN.md §5).
SNAP_MAX_NNZ = 120_000


@pytest.fixture(scope="session")
def results_dir() -> Path:
    d = Path(__file__).parent / "results"
    d.mkdir(exist_ok=True)
    return d


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a named artifact and echo it to stdout."""

    def _emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{'=' * 70}\n{name}\n{'=' * 70}\n{text}")

    return _emit


@pytest.fixture(scope="session")
def gpus():
    return [GTX_1080TI, RTX_2080]


@pytest.fixture(scope="session")
def snap_suite():
    return load_suite(max_nnz=SNAP_MAX_NNZ)


@pytest.fixture(scope="session")
def citation_datasets():
    return {name: load_citation(name) for name in ("cora", "citeseer", "pubmed")}


@pytest.fixture(scope="session")
def citation_graphs(citation_datasets):
    """Normalized adjacencies — the actual SpMM operands in GNNs."""
    return {name: ds.normalized_adjacency() for name, ds in citation_datasets.items()}

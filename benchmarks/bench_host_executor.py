"""Host executor — segmented-reduction engine vs. the scatter oracles.

Not a paper table: this measures the *reproduction's own* host execution
engine (``repro.sparse.segment``), which every simulated kernel, sweep
cell and training epoch runs on.  Four best-of timings, each engine-off
vs. engine-on with interleaved reps:

* plus-/max-semiring ``reference_spmm_like`` (recorded, no floor — the
  raw reduction swap is a modest win on modern NumPy's fast ``ufunc.at``),
* max aggregation forward+backward, asserted **>= 3x** (the argmax
  backward replaces three ``(nnz, N)`` passes with one ``(M, N)``
  bincount),
* full-batch GCN training wall-clock, asserted **>= 2x**,
* the cold full-grid analytic ``count()`` pass, oracle array-expansion
  counters vs. the cached AccessProfile closed forms, asserted **>= 3x**
  even though the profile side pays the histogram build every rep,
* a cold-then-warm disk-cached sweep, asserted to recompute **zero**
  estimates on the warm run and reproduce every cell byte for byte,
* incremental ``apply_delta`` vs. a full CSR + profile rebuild on a
  100k-edge power-law graph (a 1% mixed batch), recorded with a soft
  regression guard — the strict 5x floor is ``bench_delta_updates.py``'s,
  which controls allocator state via subprocess isolation,
* a 1000-matrix generator-defined corpus stream in 10 shards, asserting
  the per-shard ``tracemalloc`` peak stays **flat** (later shards within
  2x of the first) — the bounded-memory contract of
  ``repro.bench.corpus.run_corpus_sweep``,
* the column-tiled executor at wide N (256): tiled vs. untiled engine
  body, asserted **>= 1.5x** (typical ~3-4x — the O(nnz*N) contributions
  temporary stops thrashing the LLC),
* the tiled executor's transient peak memory at N=64 vs. N=1024,
  asserted **flat** (wide within 2x of narrow; the untiled ratio ~16x is
  recorded alongside for contrast).  The strict subprocess-isolated
  version of this floor is ``bench_tiled_memory.py``'s.

Results are written to ``benchmarks/results/`` and recorded in
``BENCH_spmm.json`` under ``run.host.microbench``, a block the
regression gate ignores (it diffs simulated cells/geomeans only), so
host timing noise can never fail ``make gate``.
"""

from pathlib import Path

from repro.bench.hostbench import (
    format_result_line,
    run_host_microbench,
    update_bench_json_host,
)

#: Asserted floors (see ISSUE/docs): generous margin below the typical
#: measurements (~3.2-3.4x, ~2.5-2.8x, and >10x for the counting grid)
#: to absorb machine noise.
MIN_AGGREGATE_MAX_SPEEDUP = 3.0
MIN_GCN_TRAIN_SPEEDUP = 2.0
MIN_COUNT_GRID_SPEEDUP = 3.0
#: Regression guard only — the strict >=5x ISSUE floor lives in
#: ``bench_delta_updates.py``, which measures in a fresh subprocess.
#: Here ``delta_apply`` runs first inside ``run_host_microbench`` (so
#: ``make microbench`` sees a fresh heap, ~6.5x), but under
#: ``pytest benchmarks/`` earlier bench files dirty the allocator and
#: the incremental side pays a persistent page-fault tax (~3.9x).
MIN_DELTA_APPLY_GUARD = 3.0
#: Per-shard peak memory of the corpus stream must stay flat: later
#: shards within 2x of the first (typical ~1.1-1.3x from registry/label
#: growth; a matrix or memo leak across shards pushes it well past 2).
MAX_CORPUS_PEAK_RATIO = 2.0
#: Column-tiled executor at N=256 vs. the untiled engine body (typical
#: ~3-4x on the 400k-edge power-law graph; generous margin for noise).
MIN_TILED_WIDE_SPEEDUP = 1.5
#: Tiled transient peak at N=1024 vs. N=64 must stay flat (typical
#: ~1.0x: the workspace is O(nnz*T) regardless of N; the untiled ratio
#: is ~16x on the same graph).
MAX_TILED_PEAK_RATIO = 2.0

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_spmm.json"


def _format(results) -> str:
    lines = []
    for name, r in results.items():
        line = format_result_line(name, r)
        lines.append(line if line else f"{name}: {r}")
    return "\n".join(lines)


def test_host_executor_microbench(benchmark, emit):
    results = benchmark.pedantic(run_host_microbench, rounds=1, iterations=1)
    emit("host_executor", _format(results))
    update_bench_json_host(results, BENCH_JSON)

    agg = results["aggregate_max"]["speedup"]
    gcn = results["gcn_train"]["speedup"]
    grid = results["count_grid"]["speedup"]
    assert agg >= MIN_AGGREGATE_MAX_SPEEDUP, (
        f"max-aggregation path speedup {agg:.2f}x below the "
        f"{MIN_AGGREGATE_MAX_SPEEDUP}x floor"
    )
    assert gcn >= MIN_GCN_TRAIN_SPEEDUP, (
        f"GCN training speedup {gcn:.2f}x below the {MIN_GCN_TRAIN_SPEEDUP}x floor"
    )
    assert grid >= MIN_COUNT_GRID_SPEEDUP, (
        f"profile counting speedup {grid:.2f}x below the "
        f"{MIN_COUNT_GRID_SPEEDUP}x floor"
    )
    # Disk-cached sweep: the warm run must be a pure replay.
    dc = results["disk_cache"]
    assert dc["warm_memo_misses"] == 0, (
        f"warm disk-cached sweep recomputed {dc['warm_memo_misses']} cells"
    )
    assert dc["byte_identical"], "warm disk-cached sweep diverged from cold run"
    assert dc["disk_invalidations"] == 0
    # Corpus stream: >=1000 matrices, peak RSS flat across shards.
    cs = results["corpus_stream"]
    assert cs["matrices"] >= 1000, f"corpus too small: {cs['matrices']}"
    assert cs["peak_ratio"] <= MAX_CORPUS_PEAK_RATIO, (
        f"corpus-stream per-shard peak grew {cs['peak_ratio']:.2f}x over the "
        f"first shard (cap {MAX_CORPUS_PEAK_RATIO}x) — matrices, derived "
        f"caches, or memo entries are leaking across shard boundaries"
    )
    # Incremental delta application vs. full rebuild (see the guard's
    # comment; the strict 5x floor is bench_delta_updates.py's).
    da = results["delta_apply"]
    assert da["parity"], "delta_apply diverged from the rebuild oracle"
    assert da["speedup"] >= MIN_DELTA_APPLY_GUARD, (
        f"incremental delta apply speedup {da['speedup']:.2f}x below the "
        f"{MIN_DELTA_APPLY_GUARD}x regression guard"
    )
    # Column-tiled executor: wide-N throughput and flat peak memory.
    ts = results["tiled_spmm"]["speedup"]
    assert ts >= MIN_TILED_WIDE_SPEEDUP, (
        f"tiled wide-N SpMM speedup {ts:.2f}x below the "
        f"{MIN_TILED_WIDE_SPEEDUP}x floor (N={results['tiled_spmm']['n']}, "
        f"tile={results['tiled_spmm']['tile_width']})"
    )
    tp = results["tiled_peak"]
    assert tp["tiled"]["peak_ratio"] <= MAX_TILED_PEAK_RATIO, (
        f"tiled SpMM transient peak grew {tp['tiled']['peak_ratio']:.2f}x "
        f"from N={tp['narrow_n']} to N={tp['wide_n']} (cap "
        f"{MAX_TILED_PEAK_RATIO}x) — the workspace is no longer O(nnz*T)"
    )
    # The raw reduction swaps must at least not regress.
    assert results["spmm_plus"]["speedup"] >= 0.9
    assert results["spmm_max"]["speedup"] >= 0.8

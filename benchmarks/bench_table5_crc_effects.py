"""Table V — effects of Coalesced Row Caching on load metrics.

Paper setup (Section V-B1): three synthetic uniform random graphs
(M=16K/65K/262K, nnz = 10 x M, Ligra generator), N = 512, GTX 1080Ti;
metrics gld_transactions (GLT) and gld_efficiency with and without CRC.

Paper result: CRC cuts GLT by ~2.5x and lifts gld_efficiency from 68.95%
to 92.40% on all three sizes.  Shape to reproduce: a large GLT reduction
and an efficiency jump from ~70% to >90% (absolute transaction counts
use our sector accounting — DESIGN.md §5).
"""

from repro.bench import comparison, format_table, render_claims
from repro.core import CRCSpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, profile_kernel
from repro.sparse import uniform_random

MATRICES = [(16_384, 163_840), (65_536, 655_360), (262_144, 2_621_440)]
N = 512


def build_rows():
    rows = []
    reports = {}
    for m, nnz in MATRICES:
        a = uniform_random(m, nnz, seed=42)
        for kernel, tag in ((SimpleSpMM(), "w/o CRC"), (CRCSpMM(), "w/ CRC")):
            rep = profile_kernel(kernel, a, N, GTX_1080TI)
            reports[(m, tag)] = rep
            rows.append(
                (
                    f"M={m // 1024}K nnz={nnz // 1000}K",
                    tag,
                    f"{rep.gld_transactions:.3e}",
                    f"{rep.gld_efficiency * 100:.2f}%",
                )
            )
    return rows, reports


def test_table5_crc_effects(benchmark, emit):
    rows, reports = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(["Matrix", "Method", "GLT(x32B)", "GLT effi"], rows,
                         title=f"Table V reproduction (N={N}, {GTX_1080TI.name})")

    claims = []
    for m, nnz in MATRICES:
        without = reports[(m, "w/o CRC")]
        with_crc = reports[(m, "w/ CRC")]
        ratio = without.gld_transactions / with_crc.gld_transactions
        claims.append(
            comparison(
                f"M={m // 1024}K GLT reduction", "2.44x-2.46x", f"{ratio:.2f}x",
                holds=ratio > 1.2,
            )
        )
        claims.append(
            comparison(
                f"M={m // 1024}K efficiency", "68.95% -> 92.40%",
                f"{without.gld_efficiency * 100:.1f}% -> {with_crc.gld_efficiency * 100:.1f}%",
                holds=without.gld_efficiency < 0.8 < with_crc.gld_efficiency,
            )
        )
        # The paper's efficiency numbers are size-independent; ours too.
        assert with_crc.gld_efficiency > 0.85
        assert without.gld_efficiency < 0.80
        assert ratio > 1.2
    emit("table5_crc_effects", table + "\n\n" + render_claims(claims, "paper vs measured"))

"""Figure 14 — end-to-end GCN training in PyG, with and without GE-SpMM.

Paper setup (Section V-F1): PyG's GCN example on Cora / Citeseer /
Pubmed, model grid (layers, features) in {1,2} x {16,64,256}, both GPUs.

Paper result: replacing PyG's MessagePassing with the fused GE-SpMM
operator brings up to 3.67x / 2.10x CUDA-time reduction on the two GPUs;
improvements are larger than on DGL because MessagePassing materializes
per-edge messages before reducing, while SpMM fuses both phases.
"""

import numpy as np

from repro.bench import comparison, format_table, render_claims
from repro.gnn import GCN, PyGBackend, SimDevice, train
from repro.gpusim import GTX_1080TI, RTX_2080

CONFIGS = [(1, 16), (1, 64), (1, 256), (2, 16), (2, 64), (2, 256)]
EPOCHS = 3


def run(citation_datasets, gpus):
    rows = []
    speedups = []
    for name, ds in citation_datasets.items():
        for layers, feats in CONFIGS:
            cells = [name, f"({layers},{feats})"]
            for gpu in gpus:
                times = {}
                for use_ge in (False, True):
                    device = SimDevice(gpu)
                    model = GCN(ds.feature_dim, feats, ds.n_classes, n_layers=layers,
                                rng=np.random.default_rng(0))
                    res = train(model, PyGBackend(device, use_gespmm=use_ge), ds, epochs=EPOCHS)
                    times[use_ge] = res.total_time
                cells.append(f"{times[False] * 1e3:.2f}")
                cells.append(f"{times[True] * 1e3:.2f}")
                speedups.append(times[False] / times[True])
            rows.append(tuple(cells))
    return rows, speedups


def test_fig14_pyg_e2e(benchmark, emit, citation_datasets):
    gpus = [GTX_1080TI, RTX_2080]
    rows, speedups = benchmark.pedantic(run, args=(citation_datasets, gpus), rounds=1, iterations=1)
    headers = ["graph", "(layers,feat)"]
    for gpu in gpus:
        headers += [f"{gpu.name} PyG (ms)", f"{gpu.name} PyG+GE (ms)"]
    table = format_table(headers, rows, title=f"Fig 14 reproduction: GCN training time ({EPOCHS} epochs)")

    wins = sum(1 for s in speedups if s > 1.0)
    claims = [
        comparison("PyG+GE faster everywhere", "reduction in all bars",
                   f"{wins}/{len(speedups)} faster", wins >= len(speedups) * 0.9),
        comparison("max CUDA-time reduction", "up to 3.67x", f"{max(speedups):.2f}x",
                   1.2 < max(speedups) < 5.0),
    ]
    assert wins >= len(speedups) * 0.9
    assert max(speedups) > 1.2
    emit("fig14_pyg_e2e", table + "\n\n" + render_claims(claims, "paper vs measured"))

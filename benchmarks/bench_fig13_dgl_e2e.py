"""Figure 13 — end-to-end GNN training in DGL, with and without GE-SpMM.

Paper setup (Section V-F1): GCN, GraphSAGE-gcn and GraphSAGE-pool
trained with DGL's example code; model grid (layers, features) in
{1,2} x {16,64,256}; metric total CUDA time; both GPUs (we sweep Cora,
the paper's example graph for this figure).

Paper result: GE-SpMM reduces CUDA time in most configurations; a few
small-N configurations on GTX 1080Ti show no speedup because the last
layer's SpMM width equals the class count, where GE-SpMM "is not very
competitive".
"""

import numpy as np

from repro.bench import comparison, format_table, render_claims
from repro.gnn import DGLBackend, GCN, GraphSAGE, SimDevice, train
from repro.gpusim import GTX_1080TI, RTX_2080

CONFIGS = [(1, 16), (1, 64), (1, 256), (2, 16), (2, 64), (2, 256)]
EPOCHS = 3


def make_model(kind, ds, layers, feats):
    rng = np.random.default_rng(0)
    if kind == "GCN":
        return GCN(ds.feature_dim, feats, ds.n_classes, n_layers=layers, rng=rng)
    agg = "gcn" if kind == "GraphSAGE-GCN" else "pool"
    return GraphSAGE(ds.feature_dim, feats, ds.n_classes, n_layers=layers, aggregator=agg, rng=rng)


def run(ds, gpus):
    rows = []
    speedups = []
    for kind in ("GCN", "GraphSAGE-GCN", "GraphSAGE-pooling"):
        for layers, feats in CONFIGS:
            cells = [kind, f"({layers},{feats})"]
            for gpu in gpus:
                times = {}
                for use_ge in (False, True):
                    device = SimDevice(gpu)
                    model = make_model(kind, ds, layers, feats)
                    res = train(model, DGLBackend(device, use_gespmm=use_ge), ds, epochs=EPOCHS)
                    times[use_ge] = res.total_time
                cells.append(f"{times[False] * 1e3:.2f}")
                cells.append(f"{times[True] * 1e3:.2f}")
                speedups.append(times[False] / times[True])
            rows.append(tuple(cells))
    return rows, speedups


def test_fig13_dgl_e2e(benchmark, emit, citation_datasets):
    gpus = [GTX_1080TI, RTX_2080]
    ds = citation_datasets["cora"]
    rows, speedups = benchmark.pedantic(run, args=(ds, gpus), rounds=1, iterations=1)
    headers = ["model", "(layers,feat)"]
    for gpu in gpus:
        headers += [f"{gpu.name} DGL (ms)", f"{gpu.name} DGL+GE (ms)"]
    table = format_table(headers, rows, title=f"Fig 13 reproduction: training time on {ds.name} ({EPOCHS} epochs)")

    wins = sum(1 for s in speedups if s > 1.0)
    claims = [
        comparison("GE-SpMM helps most configs", "speedup in most of 36 bars",
                   f"{wins}/{len(speedups)} faster, max {max(speedups):.2f}x", wins >= len(speedups) * 0.6),
        comparison("some small-N configs flat", "4 configs with no gain on 1080Ti",
                   f"{len(speedups) - wins} configs with no gain", (len(speedups) - wins) <= len(speedups) * 0.4),
    ]
    assert wins >= len(speedups) * 0.6
    assert max(speedups) > 1.05
    emit("fig13_dgl_e2e", table + "\n\n" + render_claims(claims, "paper vs measured"))

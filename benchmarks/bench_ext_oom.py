"""Extension — paper-scale memory limits (the omitted bars).

The paper omits FriendSter and Twitter "due to out-of-memory" and marks
several per-matrix bars "out of memory" in Figs 8/9/11 — more on the
8 GB RTX 2080 than the 11 GB GTX 1080Ti.  Using the footprint model we
re-derive which catalog matrices would OOM at *paper scale* (unscaled
sizes) for N=512, and verify the machine asymmetry.
"""

from repro.bench import comparison, format_table, render_claims
from repro.datasets import SNAP_CATALOG
from repro.gpusim import GTX_1080TI, RTX_2080, fits, spmm_footprint


class _Shell:
    """Footprints need only (nrows, ncols, nnz); avoid materializing the
    paper-scale matrices (up to 69M nonzeros)."""

    def __init__(self, entry):
        self.nrows = self.ncols = entry.m
        self.nnz = entry.nnz
        self.name = entry.name


def run():
    rows = []
    oom = {GTX_1080TI.name: [], RTX_2080.name: []}
    for entry in sorted(SNAP_CATALOG, key=lambda e: e.name):
        shell = _Shell(entry)
        fp = spmm_footprint(shell, 512)
        marks = []
        for gpu in (GTX_1080TI, RTX_2080):
            ok = fits(shell, 512, gpu)
            if not ok:
                oom[gpu.name].append(entry.name)
            marks.append("fits" if ok else "OOM")
        if "OOM" in marks:
            rows.append((entry.name, f"{fp.total / 2**30:.2f} GiB", *marks))
    return rows, oom


def test_ext_paper_scale_oom(benchmark, emit):
    rows, oom = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["matrix (paper scale)", "SpMM working set", GTX_1080TI.name, RTX_2080.name],
        rows,
        title="Out-of-memory matrices at N=512, unscaled catalog sizes",
    )
    n1080 = len(oom[GTX_1080TI.name])
    n2080 = len(oom[RTX_2080.name])
    claims = [
        comparison("some large matrices OOM", "paper marks OOM bars in Figs 8/9/11",
                   f"{n2080} on RTX 2080, {n1080} on GTX 1080Ti", n2080 > 0),
        comparison("8 GB card OOMs more than 11 GB card", "more OOM marks on RTX 2080",
                   f"{n2080} > {n1080}", n2080 > n1080),
        comparison("giants among them", "soc-LiveJournal1 et al. stress memory",
                   "soc-LiveJournal1 OOM on both", "soc-LiveJournal1" in oom[GTX_1080TI.name]),
    ]
    assert n2080 > n1080 > 0
    assert "soc-LiveJournal1" in oom[RTX_2080.name]
    assert 3 <= n2080 <= 10  # the paper shows a handful, not dozens
    emit("ext_paper_scale_oom", table + "\n\n" + render_claims(claims, "memory-limit check"))

"""Extension — the amortization argument, quantified (paper Section II-B).

The paper argues preprocess-based SpMM "cannot be amortized in GNN
frameworks" for direct inference and sampled batch training, but presents
no experiment; this extension benchmark supplies it:

1. inference on a fresh graph (one preprocess, 2 SpMM calls);
2. GraphSAGE sampled training (one preprocess *per batch*);
3. the reuse crossover: how many SpMM calls on one fixed matrix ASpT
   needs before its preprocess pays off (the "iterative algorithms"
   regime where the paper concedes preprocessing is fine).
"""

from repro.bench import comparison, format_table, render_claims
from repro.gnn.inference import (
    amortization_crossover,
    inference_scenario,
    sampled_training_scenario,
)
from repro.gpusim import GTX_1080TI
from repro.sparse import banded_random, uniform_random


def run():
    g = uniform_random(65_536, 650_000, seed=42)
    inf = inference_scenario(g, 128, GTX_1080TI)
    samp = sampled_training_scenario(g, 64, GTX_1080TI, n_batches=8)
    band = banded_random(65_536, 650_000, bandwidth=16, seed=42)
    cross_band = amortization_crossover(band, 512, GTX_1080TI, max_reuses=512)
    cross_unif = amortization_crossover(g, 512, GTX_1080TI, max_reuses=512)
    return inf, samp, cross_band, cross_unif


def test_ext_sampling_amortization(benchmark, emit):
    inf, samp, cross_band, cross_unif = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for res in (inf, samp):
        for name, t in sorted(res.times.items(), key=lambda kv: kv[1]):
            rows.append((res.scenario, name, f"{t * 1e3:.3f} ms"))
    table = format_table(["scenario", "kernel", "simulated time"], rows,
                         title="Preprocess amortization scenarios (GTX 1080Ti)")
    cross_txt = (
        f"reuse crossover: banded matrix -> {cross_band}, uniform random -> {cross_unif}"
    )
    claims = [
        comparison("inference: GE-SpMM fastest", "preprocess cannot be amortized",
                   f"GE {inf.times['GE-SpMM'] * 1e3:.2f}ms vs ASpT {inf.times['ASpT'] * 1e3:.2f}ms",
                   inf.times["GE-SpMM"] < inf.times["ASpT"]),
        comparison("sampled training: GE-SpMM fastest", "per-batch preprocess is fatal",
                   f"GE {samp.times['GE-SpMM'] * 1e3:.2f}ms vs ASpT {samp.times['ASpT'] * 1e3:.2f}ms",
                   samp.times["GE-SpMM"] < samp.times["ASpT"]),
        comparison("iterative regime exists", "preprocess tolerable when amortized",
                   cross_txt, cross_band is not None or cross_unif is None),
    ]
    assert inf.times["GE-SpMM"] < inf.times["ASpT"]
    assert samp.times["GE-SpMM"] < min(samp.times["ASpT"], samp.times["cuSPARSE csrmm2"])
    emit("ext_sampling_amortization",
         table + "\n" + cross_txt + "\n\n" + render_claims(claims, "argument check"))

"""Extension — format-conversion overhead relative to one SpMM.

Quantifies the paper's compatibility argument (Section I/II-B): "These
non-standard formats lead to extra memory space and difficulties in
software maintenance.  Moreover, preprocess time can be up to 5x actual
SpMM computation time."  For each conversion a framework might be forced
into (csr2csc, ELLPACK-R, ASpT tiling, and the cuBLAS transpose of
csrmm2's output), report its cost as a multiple of one GE-SpMM call.
"""

from repro.bench import comparison, format_table, geomean, render_claims
from repro.core import GESpMM
from repro.gpusim import GTX_1080TI
from repro.sparse import (
    csr_to_aspt_time,
    csr_to_csc_time,
    csr_to_ellpack_time,
    dense_transpose_time,
)

N = 128


def run(snap_suite):
    ge = GESpMM()
    ratios = {"csr2csc": [], "ELLPACK-R": [], "ASpT tiling": [], "dense transpose": []}
    for g in snap_suite.values():
        t_spmm = ge.estimate(g, N, GTX_1080TI).time_s
        ratios["csr2csc"].append(csr_to_csc_time(g, GTX_1080TI) / t_spmm)
        ratios["ELLPACK-R"].append(csr_to_ellpack_time(g, GTX_1080TI) / t_spmm)
        ratios["ASpT tiling"].append(csr_to_aspt_time(g, GTX_1080TI) / t_spmm)
        ratios["dense transpose"].append(dense_transpose_time(g.nrows, N, GTX_1080TI) / t_spmm)
    return {k: (geomean(v), min(v), max(v)) for k, v in ratios.items()}


def test_ext_conversion_overhead(benchmark, emit, snap_suite):
    stats = benchmark.pedantic(run, args=(snap_suite,), rounds=1, iterations=1)
    rows = [
        (name, f"{avg:.2f}x", f"{lo:.2f}x", f"{hi:.2f}x")
        for name, (avg, lo, hi) in stats.items()
    ]
    table = format_table(
        ["conversion", "geomean vs 1 SpMM", "min", "max"],
        rows,
        title=f"Format-conversion cost relative to one GE-SpMM call (N={N}, 64 SNAP twins)",
    )
    claims = [
        comparison("conversions cost a sizable SpMM fraction",
                   "preprocess up to 5x SpMM in the literature",
                   f"ASpT tiling geomean {stats['ASpT tiling'][0]:.2f}x (max {stats['ASpT tiling'][2]:.2f}x)",
                   stats["ASpT tiling"][0] > 0.1),
        comparison("csrmm2's transpose is not free", "DGL pays cuBLAS transpose per call",
                   f"geomean {stats['dense transpose'][0]:.2f}x", stats["dense transpose"][0] > 0.05),
    ]
    assert stats["ASpT tiling"][0] > 0.1
    assert stats["ELLPACK-R"][0] > 0.1
    assert stats["dense transpose"][0] > 0.05
    emit("ext_conversion_overhead", table + "\n\n" + render_claims(claims, "argument check"))

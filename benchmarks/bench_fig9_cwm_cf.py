"""Figure 9 — per-matrix speedup of CWM for CF in {2, 4, 8}.

Paper setup (Section V-B2): speedup over not using CWM (i.e. over plain
CRC) for each SNAP matrix at each coarsening factor, both GPUs.

Paper result: "CF=2 works well for most matrices, while CF>4 shows
obvious performance drop.  For rare cases (4 and 1 out of 64 on two
GPUs), choosing CF=2 causes over 15% performance loss compared to
optimal CF" — justifying the runtime's fixed CF=2.
"""

from repro.bench import comparison, format_table, geomean, render_claims, run_sweep, speedup_series
from repro.core import CRCSpMM, CWMSpMM
from repro.gpusim import GTX_1080TI, RTX_2080

N = 512
CFS = (2, 4, 8)


def test_fig9_cwm_cf(benchmark, emit, snap_suite, gpus):
    kernels = [CRCSpMM()] + [CWMSpMM(cf) for cf in CFS]
    results = benchmark.pedantic(run_sweep, args=(kernels, snap_suite, [N], gpus), rounds=1, iterations=1)

    out = []
    claims = []
    for gpu in gpus:
        series = {cf: speedup_series(results, f"crc+cwm(cf={cf})", "crc", gpu.name, N) for cf in CFS}
        rows = []
        bad_for_cf2 = 0
        for g in snap_suite:
            per_cf = {cf: series[cf].get(g, float("nan")) for cf in CFS}
            best = max(max(per_cf.values()), 1.0)  # optimal includes CF=1
            if max(per_cf[2], 1.0) < 0.85 * best:
                bad_for_cf2 += 1
            rows.append((g, *(f"{per_cf[cf]:.3f}" for cf in CFS)))
        means = {cf: geomean(series[cf].values()) for cf in CFS}
        out.append(
            format_table(
                ["matrix"] + [f"CF={cf}" for cf in CFS],
                rows,
                title=f"Fig 9 ({gpu.name}, N={N}): speedup over w/o CWM",
            )
        )
        out.append(
            "  geomeans: " + ", ".join(f"CF={cf}: {means[cf]:.3f}" for cf in CFS)
            + f"   matrices where CF=2 loses >15% to optimal: {bad_for_cf2}/64\n"
        )
        claims.append(
            comparison(f"{gpu.name}: CF=2 best overall", "CF=2 works well; CF>4 drops",
                       f"geomeans {means[2]:.2f}/{means[4]:.2f}/{means[8]:.2f}",
                       means[2] >= means[8] and means[2] > 1.0)
        )
        claims.append(
            comparison(f"{gpu.name}: CF=2 rarely far from optimal", "4 resp. 1 of 64 matrices",
                       f"{bad_for_cf2}/64", bad_for_cf2 <= 8)
        )
        assert means[2] > 1.0, "CWM (CF=2) should beat plain CRC on average"
        assert means[2] >= means[8], "CF=8 should not beat CF=2 on average"
        assert bad_for_cf2 <= 8
    emit("fig9_cwm_cf", "\n".join(out) + "\n" + render_claims(claims, "paper vs measured"))

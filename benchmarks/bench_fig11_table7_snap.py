"""Figure 11 + Table VII — overall SNAP-suite performance and geomeans.

Paper setup (Section V-C2): GraphBLAST, cuSPARSE and GE-SpMM on all 64
SNAP matrices (alphabetical matrix_id axis), N in {128, 256, 512}, both
GPUs; Fig 11 plots per-matrix GFLOPS, Table VII the average speedups.

Paper result (Table VII):

    GTX 1080Ti  vs cuSPARSE    1.18 / 1.30 / 1.37   (N=128/256/512)
                vs GraphBLAST  1.42 / 1.44 / 1.61
    RTX 2080    vs cuSPARSE    1.20 / 1.34 / 1.43
                vs GraphBLAST  1.57 / 1.73 / 1.81

Shape to reproduce: GE-SpMM ahead of both baselines at every (GPU, N),
with factors in the ~1.2-1.9 band (our model's N-trend is flatter than
the paper's; see EXPERIMENTS.md).
"""

from repro.baselines import CusparseCsrmm2, GraphBlastRowSplit
from repro.bench import comparison, format_table, geomean, render_claims, run_sweep, speedup_series
from repro.core import GESpMM

WIDTHS = [128, 256, 512]

PAPER_TABLE7 = {
    ("GTX 1080Ti", "cuSPARSE csrmm2"): {128: 1.18, 256: 1.30, 512: 1.37},
    ("GTX 1080Ti", "GraphBLAST rowsplit"): {128: 1.42, 256: 1.44, 512: 1.61},
    ("RTX 2080", "cuSPARSE csrmm2"): {128: 1.20, 256: 1.34, 512: 1.43},
    ("RTX 2080", "GraphBLAST rowsplit"): {128: 1.57, 256: 1.73, 512: 1.81},
}


def test_fig11_table7_snap(benchmark, emit, snap_suite, gpus):
    kernels = [GraphBlastRowSplit(), CusparseCsrmm2(), GESpMM()]
    results = benchmark.pedantic(
        run_sweep, args=(kernels, snap_suite, WIDTHS, gpus), rounds=1, iterations=1
    )

    # Fig 11: per-matrix GFLOPS series (textual rendering of the plot).
    out = []
    for gpu in gpus:
        rows = []
        for g in snap_suite:
            row = [g]
            for n in WIDTHS:
                vals = {
                    r.kernel: r.gflops
                    for r in results
                    if r.graph == g and r.gpu == gpu.name and r.n == n
                }
                row.append(
                    f"{vals['GraphBLAST rowsplit']:.0f}/{vals['cuSPARSE csrmm2']:.0f}/{vals['GE-SpMM']:.0f}"
                )
            rows.append(tuple(row))
        out.append(
            format_table(
                ["matrix"] + [f"N={n} (GB/cuSP/GE)" for n in WIDTHS],
                rows,
                title=f"Fig 11 ({gpu.name}): GFLOPS per SNAP matrix",
            )
        )
        out.append("")

    # Table VII: geometric-mean speedups.
    claims = []
    t7rows = []
    for gpu in gpus:
        for baseline in ("cuSPARSE csrmm2", "GraphBLAST rowsplit"):
            meas = {}
            for n in WIDTHS:
                series = speedup_series(results, "GE-SpMM", baseline, gpu.name, n)
                meas[n] = geomean(series.values())
            t7rows.append((gpu.name, baseline, *(f"{meas[n]:.2f}" for n in WIDTHS)))
            for n in WIDTHS:
                paper = PAPER_TABLE7[(gpu.name, baseline)][n]
                ok = meas[n] > 1.0 and abs(meas[n] - paper) / paper < 0.45
                claims.append(
                    comparison(f"T7 {gpu.name} vs {baseline.split()[0]} N={n}",
                               f"{paper:.2f}x", f"{meas[n]:.2f}x", ok)
                )
                assert meas[n] > 1.0, f"GE-SpMM must beat {baseline} ({gpu.name}, N={n})"
    out.append(
        format_table(
            ["Machine", "Baseline"] + [f"N={n}" for n in WIDTHS],
            t7rows,
            title="Table VII reproduction: GE-SpMM average speedup on SNAP",
        )
    )
    emit("fig11_table7_snap", "\n".join(out) + "\n" + render_claims(claims, "paper vs measured"))

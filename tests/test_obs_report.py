"""Profile trees, flamegraph exports, and the performance report.

Covers `repro.obs.report` (span aggregation, folded collapsed-stack
export, cache-rate extraction, the Markdown/JSON report) and the
`repro-bench report` CLI, including the byte-determinism contract the CI
job asserts with `make report`.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.bench import bench_document, run_sweep
from repro.baselines import CusparseCsrmm2
from repro.cli import main as cli_main
from repro.core import GESpMM
from repro.gpusim import GTX_1080TI
from repro.obs.report import (
    build_profile,
    cache_hit_rates,
    load_metrics_jsonl,
    load_spans_jsonl,
    performance_report,
    profile_to_json,
    render_profile,
    render_report_markdown,
    to_folded,
)
from repro.sparse import uniform_random
from repro.sparse.stats import graph_regime

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def clock():
    class Tick:
        def __init__(self):
            self.t = 0.0

        def __call__(self):
            self.t += 0.001
            return self.t

    return Tick()


@pytest.fixture
def spans(clock):
    """A small span tree: sweep -> 2x graph -> 2x cell each, one error."""
    with obs.tracing(clock=clock) as tracer:
        with obs.span("sweep"):
            for g in ("g0", "g1"):
                with obs.span("graph", graph=g):
                    with obs.span("cell"):
                        obs.add_sim_time(0.010)
                    try:
                        with obs.span("cell"):
                            obs.add_sim_time(0.020)
                            if g == "g1":
                                raise RuntimeError("boom")
                    except RuntimeError:
                        pass
    return tracer.records


# -- profile trees ----------------------------------------------------------


def test_build_profile_merges_call_paths(spans):
    root = build_profile(spans)
    sweep = root.children["sweep"]
    graph = sweep.children["graph"]
    cell = graph.children["cell"]
    assert sweep.count == 1 and graph.count == 2 and cell.count == 4
    assert cell.errors == 1  # the g1 unwind kept its error status
    # totals roll up; self time excludes children
    assert sweep.wall_s >= graph.wall_s >= cell.wall_s > 0
    assert graph.self_wall_s == pytest.approx(graph.wall_s - cell.wall_s)
    assert cell.sim_s == pytest.approx(0.060)
    assert graph.sim_s == pytest.approx(0.060)
    assert graph.self_sim_s == pytest.approx(0.0)
    # the synthetic root aggregates its top-level children
    assert root.wall_s == pytest.approx(sweep.wall_s)
    assert root.count == 1


def test_build_profile_accepts_jsonl_dicts(spans):
    from_records = profile_to_json(build_profile(spans))
    from_dicts = profile_to_json(build_profile([r.as_dict() for r in spans]))
    assert from_records == from_dicts


def test_render_profile_is_deterministic_and_indented(spans):
    root = build_profile(spans)
    text = render_profile(root)
    assert text == render_profile(build_profile(spans))
    lines = text.splitlines()
    assert "span" in lines[0]  # header
    assert any(l.endswith("sweep") for l in lines)
    assert any(l.rstrip().endswith("cell [1 err]") for l in lines)


def test_to_folded_collapsed_stacks(spans):
    root = build_profile(spans)
    folded = to_folded(root)
    lines = folded.splitlines()
    assert lines == sorted(lines)  # deterministic order
    stacks = dict(l.rsplit(" ", 1) for l in lines)
    assert "sweep;graph;cell" in stacks
    # weights are integer microseconds of SELF time
    assert all(int(v) > 0 for v in stacks.values())
    # sim weighting puts all weight on the leaf cells (10+20 ms per graph)
    sim = dict(l.rsplit(" ", 1) for l in to_folded(root, weight="sim").splitlines())
    assert sim == {"sweep;graph;cell": "60000"}
    with pytest.raises(ValueError, match="weight"):
        to_folded(root, weight="bogus")


# -- loaders and cache rates ------------------------------------------------


def test_load_spans_jsonl_round_trip(tmp_path, spans, clock):
    tracer = obs.Tracer(clock=clock)
    tracer.records = list(spans)
    path = tracer.write(tmp_path / "t.jsonl")
    rows = load_spans_jsonl(path)
    assert [r["name"] for r in rows] == [r.name for r in spans]
    assert profile_to_json(build_profile(rows)) == profile_to_json(build_profile(spans))


def test_load_spans_jsonl_rejects_chrome_and_garbage(tmp_path, spans, clock):
    tracer = obs.Tracer(clock=clock)
    tracer.records = list(spans)
    chrome = tracer.write(tmp_path / "t.json")
    with pytest.raises(ValueError, match="Chrome"):
        load_spans_jsonl(chrome)
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"name": "ok", "index": 0, "parent": null}\n{oops\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        load_spans_jsonl(bad)


def test_cache_hit_rates_aggregates_label_sets():
    rows = [
        {"name": "diskcache.hits", "type": "counter", "labels": {"kind": "cell"}, "value": 6},
        {"name": "diskcache.hits", "type": "counter", "labels": {"kind": "timing"}, "value": 2},
        {"name": "diskcache.misses", "type": "counter", "labels": {"kind": "cell"}, "value": 2},
        {"name": "sweep.memo.hits", "type": "counter", "labels": {}, "value": 0},
        {"name": "sweep.memo.misses", "type": "counter", "labels": {}, "value": 36},
        # non-counters and unrelated names must be ignored
        {"name": "sweep.cell.time_ms", "type": "gauge", "labels": {}, "value": 1.0},
        {"name": "sim.timing.launches", "type": "counter", "labels": {}, "value": 9},
    ]
    rates = cache_hit_rates(rows)
    assert rates["diskcache"] == {"hits": 8.0, "misses": 2.0, "hit_rate": 0.8}
    assert rates["sweep.memo"]["hit_rate"] == 0.0
    assert set(rates) == {"diskcache", "sweep.memo"}


# -- graph regimes ----------------------------------------------------------


def test_graph_regime_labels():
    uniform_short = uniform_random(m=600, nnz=3000, seed=3)  # ~5 nnz/row
    assert graph_regime(uniform_short) == "short-rows/uniform"
    dense_rows = uniform_random(m=100, nnz=4000, seed=4)  # 40 nnz/row
    assert graph_regime(dense_rows).startswith("long-rows/")
    # threshold knobs shift the label deterministically
    assert graph_regime(uniform_short, long_row_threshold=1.0).startswith("long-rows/")
    assert graph_regime(uniform_short, skew_threshold=0.0).endswith("/skewed")


# -- performance report -----------------------------------------------------


@pytest.fixture(scope="module")
def doc():
    graphs = {
        "rand-a": uniform_random(m=400, nnz=3200, seed=21),
        "rand-b": uniform_random(m=300, nnz=3600, seed=22),
    }
    results = run_sweep([CusparseCsrmm2(), GESpMM()], graphs, [64, 128], [GTX_1080TI])
    return bench_document(
        results,
        extra_run_meta={
            "regimes": {name: graph_regime(g) for name, g in sorted(graphs.items())},
            "host": {"memo_hits": 4, "memo_misses": 4,
                     "access_profile": {"hits": 3, "misses": 1}},
        },
    )


def test_performance_report_structure(doc):
    report = performance_report(doc, source="BENCH_spmm.json")
    assert report["schema"] == "repro/perf-report/v1"
    assert report["coverage"] == {"cells": 8, "attributed": 8}
    # every (gpu, kernel, regime) bucket counts its bound_by ceilings
    assert report["bound_by"]
    for row in report["bound_by"]:
        assert row["regime"] in ("short-rows/uniform", "short-rows/skewed",
                                 "long-rows/uniform", "long-rows/skewed")
        assert sum(row["counts"].values()) >= 1
    total = sum(sum(r["counts"].values()) for r in report["bound_by"])
    assert total == 8
    # roofline rows exist for every attributed cell on a known GPU
    assert len(report["roofline"]) == 8
    for r in report["roofline"]:
        assert r["bound"] in ("memory", "compute")
        assert r["achieved_gflops"] > 0 and r["roof_gflops"] > 0
        assert 0 < r["roof_utilization"] <= 1.0
    # top cells ordered by descending time
    for rows in report["top_cells"].values():
        times = [r["time_ms"] for r in rows]
        assert times == sorted(times, reverse=True)
        assert all(0 < r["ceiling_share"] <= 1.0 for r in rows)
    # cache rates lifted from run.host
    assert report["cache"]["sweep.memo"]["hit_rate"] == 0.5
    assert report["cache"]["access_profile"]["hit_rate"] == 0.75
    assert "profile" not in report


def test_performance_report_without_attribution_degrades(doc):
    import copy

    bare = copy.deepcopy(doc)
    for cell in bare["cells"]:
        cell.pop("attribution", None)
    report = performance_report(bare)
    assert report["coverage"]["attributed"] == 0
    assert report["bound_by"] == [] and report["roofline"] == []
    assert report["top_cells"] == {}
    md = render_report_markdown(report)
    assert "Bottleneck distribution" not in md  # empty sections are omitted


def test_performance_report_metrics_and_spans(doc, spans):
    metrics = [
        {"name": "sweep.memo.hits", "type": "counter", "labels": {}, "value": 7},
        {"name": "sweep.memo.misses", "type": "counter", "labels": {}, "value": 1},
    ]
    report = performance_report(doc, spans=spans, metrics=metrics)
    # measured metrics override the run.host snapshot
    assert report["cache"] == {
        "sweep.memo": {"hits": 7.0, "misses": 1.0, "hit_rate": 0.875}
    }
    assert report["profile"]["children"][0]["name"] == "sweep"
    md = render_report_markdown(report)
    assert "## Profile" in md and "sweep" in md


def test_markdown_report_deterministic_and_escaped(doc):
    report = performance_report(doc, top=2, source="x.json")
    md1 = render_report_markdown(report)
    md2 = render_report_markdown(performance_report(doc, top=2, source="x.json"))
    assert md1 == md2
    assert json.dumps(report, sort_keys=True) == json.dumps(
        performance_report(doc, top=2, source="x.json"), sort_keys=True
    )
    # cell keys embed '|'; tables must escape them to stay valid GFM
    assert "GE-SpMM\\|rand-a\\|N=64\\|GTX 1080Ti" in md1
    assert "GE-SpMM|rand-a" not in md1  # never raw inside a table


# -- CLI --------------------------------------------------------------------


def test_cli_report_byte_identical_runs(tmp_path, doc):
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    outs = []
    for i in range(2):
        md = tmp_path / f"report{i}.md"
        js = tmp_path / f"report{i}.json"
        rc = cli_main(["report", "--baseline", str(bench),
                       "--out", str(md), "--json-out", str(js)])
        assert rc == 0
        outs.append((md.read_bytes(), js.read_bytes()))
    assert outs[0] == outs[1]
    parsed = json.loads(outs[0][1])
    assert parsed["schema"] == "repro/perf-report/v1"
    assert parsed["source"]["path"] == str(bench)


def test_cli_report_with_trace_metrics_and_folded(tmp_path, doc, spans, clock):
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps(doc))
    tracer = obs.Tracer(clock=clock)
    tracer.records = list(spans)
    trace = tracer.write(tmp_path / "t.jsonl")
    metrics = tmp_path / "m.jsonl"
    metrics.write_text(json.dumps(
        {"name": "sweep.memo.hits", "type": "counter", "labels": {}, "value": 1}
    ) + "\n")
    folded = tmp_path / "prof.folded"
    rc = cli_main(["report", "--baseline", str(bench), "--trace", str(trace),
                   "--metrics", str(metrics), "--out", str(tmp_path / "r.md"),
                   "--folded", str(folded)])
    assert rc == 0
    stacks = folded.read_text().splitlines()
    assert any(s.startswith("sweep;graph;cell ") for s in stacks)
    md = (tmp_path / "r.md").read_text()
    assert "## Profile" in md and "## Cache hit rates" in md


def test_cli_report_usage_errors(tmp_path, doc):
    assert cli_main(["report", "--baseline", str(tmp_path / "missing.json")]) == 2
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps(doc))
    # --folded without --trace is a usage error
    assert cli_main(["report", "--baseline", str(bench),
                     "--folded", str(tmp_path / "x.folded"),
                     "--out", str(tmp_path / "r.md")]) == 2
    # a Chrome-format trace is rejected with guidance, not mis-parsed
    chrome = tmp_path / "t.json"
    chrome.write_text('{"traceEvents": [], "displayTimeUnit": "ms"}')
    assert cli_main(["report", "--baseline", str(bench), "--trace", str(chrome),
                     "--out", str(tmp_path / "r.md")]) == 2


# -- the `make report` contract over the committed artifact -----------------


def test_make_report_from_committed_bench_is_deterministic(tmp_path):
    """`make report` path: the committed BENCH document renders the same
    bytes on every run (the CI job runs it twice and cmps)."""
    bench = REPO_ROOT / "BENCH_spmm.json"
    pairs = []
    for i in range(2):
        md = tmp_path / f"r{i}.md"
        js = tmp_path / f"r{i}.json"
        assert cli_main(["report", "--baseline", str(bench),
                         "--out", str(md), "--json-out", str(js)]) == 0
        pairs.append((md.read_bytes(), js.read_bytes()))
    assert pairs[0] == pairs[1]
    report = json.loads(pairs[0][1])
    # the committed document is fully attributed and regime-labelled
    # (4 kernels x 6 graphs x 2 widths since merge-path joined the sweep)
    assert report["coverage"]["cells"] == report["coverage"]["attributed"] == 48
    assert report["bound_by"] and report["roofline"]
    assert all(row["regime"] != "unknown" for row in report["bound_by"])

"""Tests for graph sampling, structural stats, and conversion costs."""

import numpy as np
import pytest

from repro.gpusim import GTX_1080TI
from repro.sparse import (
    analyze,
    neighbor_sample_layers,
    banded_random,
    batch_stream,
    csr_from_coo,
    csr_to_aspt_time,
    csr_to_csc,
    csr_to_csc_time,
    csr_to_ellpack_time,
    gini,
    induced_subgraph,
    neighbor_sample,
    power_law,
    row_length_histogram,
    uniform_random,
)


@pytest.fixture
def graph():
    return uniform_random(m=200, nnz=2400, seed=5, weighted=True)


class TestNeighborSample:
    def test_fanout_respected(self, graph, rng):
        batch = neighbor_sample(graph, np.arange(32), fanout=5, rng=rng)
        assert batch.block.row_lengths().max() <= 5
        assert batch.batch_size == 32

    def test_seeds_lead_node_list(self, graph, rng):
        seeds = np.array([7, 3, 11])
        batch = neighbor_sample(graph, seeds, fanout=4, rng=rng)
        np.testing.assert_array_equal(batch.nodes[:3], seeds)
        assert batch.n_inputs >= 3

    def test_edges_exist_in_parent(self, graph, rng):
        seeds = np.arange(20)
        batch = neighbor_sample(graph, seeds, fanout=3, rng=rng)
        dense = graph.to_dense()
        rows, cols, vals = batch.block.to_coo()
        for r, c, v in zip(rows, cols, vals):
            src = int(batch.seeds[r])
            dst = int(batch.nodes[c])
            assert dense[src, dst] != 0
            assert v == pytest.approx(dense[src, dst], rel=1e-5)

    def test_low_degree_rows_keep_all(self, rng):
        g = csr_from_coo([0, 0, 1], [1, 2, 0], [1.0, 2.0, 3.0], shape=(3, 3))
        batch = neighbor_sample(g, np.array([0, 1, 2]), fanout=10, rng=rng)
        assert batch.block.nnz == 3  # nothing dropped, fanout > degree

    def test_empty_seed_rejected(self, graph, rng):
        with pytest.raises(ValueError):
            neighbor_sample(graph, np.array([], dtype=np.int64), 2, rng)
        with pytest.raises(ValueError):
            neighbor_sample(graph, np.array([0]), 0, rng)

    def test_batch_stream_fresh_matrices(self, graph):
        batches = list(batch_stream(graph, batch_size=16, fanout=4, n_batches=5, seed=1))
        assert len(batches) == 5
        patterns = {(b.block.nnz, tuple(b.seeds[:3])) for b in batches}
        assert len(patterns) > 1  # different subgraphs per batch


class TestInducedSubgraph:
    def test_edges_within_selection(self, graph):
        nodes = np.arange(0, 60)
        sub = induced_subgraph(graph, nodes)
        assert sub.shape == (60, 60)
        dense_parent = graph.to_dense()[np.ix_(nodes, nodes)]
        np.testing.assert_allclose(sub.to_dense(), dense_parent, rtol=1e-5)

    def test_duplicate_nodes_rejected(self, graph):
        with pytest.raises(ValueError):
            induced_subgraph(graph, np.array([1, 1, 2]))


class TestStats:
    def test_gini_bounds(self):
        assert gini(np.ones(10)) == pytest.approx(0.0, abs=1e-9)
        skew = np.zeros(100)
        skew[0] = 1000
        assert gini(skew) > 0.95
        assert gini(np.array([])) == 0.0

    def test_power_law_more_imbalanced(self):
        u = analyze(uniform_random(2000, 20_000, seed=1))
        p = analyze(power_law(2000, 20_000, seed=1))
        assert p.row_gini > u.row_gini

    def test_banded_higher_tile_occupancy(self):
        b = analyze(banded_random(4000, 80_000, bandwidth=8, seed=1))
        u = analyze(uniform_random(4000, 80_000, seed=1))
        assert b.tile_occupancy > u.tile_occupancy

    def test_profile_fields(self, graph):
        p = analyze(graph)
        assert p.m == 200 and p.nnz == graph.nnz
        assert 0 <= p.short_row_fraction <= 1
        assert "nnz/row" in p.summary()

    def test_histogram_partitions_rows(self, graph):
        hist = row_length_histogram(graph)
        assert sum(hist.values()) == graph.nrows

    def test_empty_matrix_profile(self):
        p = analyze(csr_from_coo([], [], [], shape=(4, 4)))
        assert p.nnz == 0 and p.tile_occupancy == 0.0


class TestConversionCosts:
    def test_csc_is_transpose(self, graph):
        np.testing.assert_allclose(
            csr_to_csc(graph).to_dense(), graph.to_dense().T, rtol=1e-6
        )

    def test_costs_positive_and_scale_with_nnz(self):
        small = uniform_random(1000, 5000, seed=0)
        big = uniform_random(1000, 50_000, seed=0)
        for fn in (csr_to_csc_time, csr_to_ellpack_time, csr_to_aspt_time):
            t_small, t_big = fn(small, GTX_1080TI), fn(big, GTX_1080TI)
            assert 0 < t_small < t_big

    def test_ellpack_conversion_punished_by_skew(self):
        balanced = banded_random(4000, 40_000, bandwidth=8, seed=2)
        skewed = power_law(4000, 40_000, seed=2)
        assert csr_to_ellpack_time(skewed, GTX_1080TI) > csr_to_ellpack_time(balanced, GTX_1080TI)

    def test_conversion_dwarfs_spmm_on_single_use(self):
        # The paper's point: one conversion costs a sizable fraction of
        # (or more than) one SpMM.
        from repro.core import GESpMM

        g = uniform_random(20_000, 200_000, seed=3)
        t_spmm = GESpMM().estimate(g, 128, GTX_1080TI).time_s
        assert csr_to_aspt_time(g, GTX_1080TI) > 0.2 * t_spmm


class TestMultiHopSampling:
    def test_layer_chain_contract(self, graph, rng):
        seeds = np.arange(24)
        blocks = neighbor_sample_layers(graph, seeds, [6, 4], rng)
        assert len(blocks) == 2
        # Output block's rows are the seeds; first block's rows cover the
        # second block's full input set.
        np.testing.assert_array_equal(blocks[-1].seeds, seeds)
        assert blocks[0].batch_size == blocks[-1].n_inputs
        np.testing.assert_array_equal(blocks[0].seeds, blocks[-1].nodes)

    def test_fanouts_respected_per_layer(self, graph, rng):
        blocks = neighbor_sample_layers(graph, np.arange(10), [7, 3], rng)
        assert blocks[-1].block.row_lengths().max() <= 3
        assert blocks[0].block.row_lengths().max() <= 7

    def test_empty_fanouts_rejected(self, graph, rng):
        with pytest.raises(ValueError):
            neighbor_sample_layers(graph, np.arange(4), [], rng)

"""Tests for the extension subsystems: minibatch training, fused
epilogues, roofline analysis, checkpoints, and the regression harness."""

import numpy as np
import pytest

from repro.bench import capture, compare, load_baseline, save_baseline
from repro.core import CRCSpMM, FusedGESpMM, GESpMM, RELU_EPILOGUE, SimpleSpMM, bias_relu_epilogue
from repro.datasets import load_cora
from repro.gnn import (
    DGLBackend,
    GCN,
    SimDevice,
    load_checkpoint,
    save_checkpoint,
    train_minibatch,
)
from repro.gpusim import GTX_1080TI, roofline_point, roofline_report
from repro.sparse import reference_spmm, uniform_random


class TestMinibatchTraining:
    @pytest.fixture(scope="class")
    def result(self):
        ds = load_cora()
        backend = DGLBackend(SimDevice(GTX_1080TI), use_gespmm=True)
        return train_minibatch(ds, backend, batch_size=64, fanout=8, n_batches=15, seed=1)

    def test_loss_decreases(self, result):
        first = np.mean(result.losses[:3])
        last = np.mean(result.losses[-3:])
        assert last < first

    def test_profile_records_spmm(self, result):
        # Raw input features need no gradient, so only the forward
        # aggregation runs: one SpMM per batch.
        assert result.profile.calls.get("SpMM", 0) == result.batches

    def test_blocks_are_small(self, result):
        # Sampled blocks hold ~batch x fanout nonzeros, not the graph.
        assert result.avg_block_nnz < 64 * 8 * 1.2
        assert result.batches == 15

    def test_accuracy_above_chance(self, result):
        assert result.accuracy > 1.0 / 7  # 7 classes in Cora


class TestFusedEpilogue:
    @pytest.fixture(scope="class")
    def problem(self):
        a = uniform_random(2000, 20_000, seed=4)
        rng = np.random.default_rng(0)
        return a, rng.standard_normal((2000, 64)).astype(np.float32)

    def test_relu_fusion_values(self, problem):
        a, b = problem
        fused = FusedGESpMM(RELU_EPILOGUE)
        np.testing.assert_allclose(
            fused.run(a, b), np.maximum(reference_spmm(a, b), 0.0), rtol=1e-4, atol=1e-4
        )

    def test_bias_relu_values(self, problem):
        a, b = problem
        bias = np.linspace(-1, 1, 64, dtype=np.float32)
        fused = FusedGESpMM(bias_relu_epilogue())
        want = np.maximum(reference_spmm(a, b) + bias[None, :], 0.0)
        np.testing.assert_allclose(fused.run(a, b, bias=bias), want, rtol=1e-4, atol=1e-4)

    def test_bias_required(self, problem):
        a, b = problem
        with pytest.raises(ValueError):
            FusedGESpMM(bias_relu_epilogue()).run(a, b)
        with pytest.raises(ValueError):
            FusedGESpMM(bias_relu_epilogue()).run(a, b, bias=np.zeros(3, dtype=np.float32))

    def test_fusion_saves_time(self, problem):
        a, _ = problem
        fused = FusedGESpMM(RELU_EPILOGUE)
        assert fused.fusion_saving(a, 64, GTX_1080TI) > 1.0

    def test_fused_traffic_matches_inner(self, problem):
        a, _ = problem
        fused, _, _ = FusedGESpMM(RELU_EPILOGUE).count(a, 64, GTX_1080TI)
        inner, _, _ = GESpMM().count(a, 64, GTX_1080TI)
        assert fused.global_load.transactions == inner.global_load.transactions
        assert fused.flops > inner.flops


class TestRoofline:
    def test_point_fields(self):
        a = uniform_random(20_000, 200_000, seed=1)
        p = roofline_point(GESpMM(), a, 256, GTX_1080TI)
        assert p.bound == "memory"  # SpMM's AI is far below the ridge
        assert 0 < p.arithmetic_intensity < 5
        assert 0 < p.achieved_gflops < p.peak_gflops
        assert 0 < p.roof_utilization <= 1.2

    def test_crc_raises_intensity(self):
        # Fewer bytes for the same FLOPs => higher AI than Algorithm 1.
        a = uniform_random(20_000, 200_000, seed=1)
        alg1 = roofline_point(SimpleSpMM(), a, 256, GTX_1080TI)
        crc = roofline_point(CRCSpMM(), a, 256, GTX_1080TI)
        assert crc.arithmetic_intensity > alg1.arithmetic_intensity

    def test_report_text(self):
        a = uniform_random(5000, 50_000, seed=1)
        txt = roofline_report([SimpleSpMM(), GESpMM()], a, 128, GTX_1080TI)
        assert "Roofline" in txt and "GE-SpMM" in txt


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        ds = load_cora()
        model = GCN(ds.feature_dim, 8, ds.n_classes, rng=np.random.default_rng(0))
        for p in model.parameters():
            p.data = p.data + 0.5
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        fresh = GCN(ds.feature_dim, 8, ds.n_classes, rng=np.random.default_rng(99))
        load_checkpoint(fresh, path)
        for a, b in zip(model.parameters(), fresh.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_shape_mismatch_rejected(self, tmp_path):
        ds = load_cora()
        model = GCN(ds.feature_dim, 8, ds.n_classes, rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        other = GCN(ds.feature_dim, 16, ds.n_classes, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_checkpoint(other, path)

    def test_name_mismatch_rejected(self, tmp_path):
        ds = load_cora()
        model = GCN(ds.feature_dim, 8, ds.n_classes, rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        deeper = GCN(ds.feature_dim, 8, ds.n_classes, n_layers=2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="mismatch"):
            load_checkpoint(deeper, path)


class TestRegressionHarness:
    @pytest.fixture(scope="class")
    def setup(self):
        graphs = {"g": uniform_random(2000, 20_000, seed=2)}
        kernels = [SimpleSpMM(), GESpMM()]
        return kernels, graphs

    def test_capture_keys(self, setup):
        kernels, graphs = setup
        m = capture(kernels, graphs, [64], [GTX_1080TI])
        assert len(m) == 2
        assert all("N=64" in k for k in m)

    def test_roundtrip_and_stability(self, setup, tmp_path):
        kernels, graphs = setup
        m = capture(kernels, graphs, [64, 128], [GTX_1080TI])
        path = tmp_path / "baseline.json"
        save_baseline(m, path)
        again = capture(kernels, graphs, [64, 128], [GTX_1080TI])
        assert compare(load_baseline(path), again) == []  # deterministic model

    def test_drift_detected(self, setup):
        kernels, graphs = setup
        m = capture(kernels, graphs, [64], [GTX_1080TI])
        shifted = {k: v * 1.10 for k, v in m.items()}
        drifted = compare(m, shifted, tolerance=0.02)
        assert len(drifted) == len(m)
        assert all(0.09 < e.drift < 0.11 for e in drifted)
        assert "%" in drifted[0].describe()

    def test_added_and_removed_keys(self, setup):
        kernels, graphs = setup
        m = capture(kernels, graphs, [64], [GTX_1080TI])
        current = dict(m)
        removed_key = next(iter(m))
        del current[removed_key]
        current["new|key|N=1|gpu"] = 1.0
        drifted = compare(m, current)
        kinds = {e.key: e.drift for e in drifted}
        assert kinds[removed_key] == float("-inf")
        assert kinds["new|key|N=1|gpu"] == float("inf")

    def test_malformed_baseline_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"k": "not-a-number"}')
        with pytest.raises(ValueError):
            load_baseline(p)

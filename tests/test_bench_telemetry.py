"""BENCH_spmm.json writer: schema validity, determinism, geomeans."""

from __future__ import annotations

import json

import pytest

from repro.baselines import CusparseCsrmm2
from repro.bench import run_sweep, write_bench_json
from repro.bench.telemetry import (
    SCHEMA_ID,
    bench_document,
    validate_bench_document,
)
from repro.core import GESpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.sparse import uniform_random


@pytest.fixture(scope="module")
def sweep_results():
    graphs = {
        "rand-a": uniform_random(m=600, nnz=4800, seed=1),
        "rand-b": uniform_random(m=400, nnz=6400, seed=2),
    }
    kernels = [SimpleSpMM(), CusparseCsrmm2(), GESpMM()]
    return run_sweep(kernels, graphs, [64, 128], [GTX_1080TI, RTX_2080])


def test_document_shape_and_validity(sweep_results):
    doc = bench_document(sweep_results)
    assert validate_bench_document(doc) == []
    assert doc["schema"] == SCHEMA_ID
    # one cell per (kernel, graph, n, gpu)
    assert len(doc["cells"]) == 3 * 2 * 2 * 2
    assert doc["run"]["widths"] == [64, 128]
    assert set(doc["run"]["gpus"]) == {GTX_1080TI.name, RTX_2080.name}
    # GE-SpMM vs both baselines, per (gpu, n)
    assert len(doc["geomeans"]) == 2 * 2 * 2
    for g in doc["geomeans"]:
        assert g["target"] == "GE-SpMM"
        assert g["speedup"] > 0


def test_cells_sorted_and_deterministic(sweep_results):
    a = bench_document(sweep_results)
    b = bench_document(list(reversed(sweep_results)))
    assert a == b  # input order must not leak into the artifact


def test_write_round_trips_through_json(tmp_path, sweep_results):
    path = tmp_path / "BENCH_spmm.json"
    doc = write_bench_json(sweep_results, path, extra_run_meta={"command": "test"})
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(doc))
    assert validate_bench_document(loaded) == []
    assert loaded["run"]["command"] == "test"
    # rewriting produces byte-identical content (diffable across PRs)
    before = path.read_bytes()
    write_bench_json(sweep_results, path, extra_run_meta={"command": "test"})
    assert path.read_bytes() == before


def test_validator_catches_corruption(sweep_results):
    doc = bench_document(sweep_results)
    assert validate_bench_document({"schema": "nope"})  # wrong everything
    bad = json.loads(json.dumps(doc))
    bad["cells"][0].pop("gflops")
    assert any("gflops" in e for e in validate_bench_document(bad))
    bad = json.loads(json.dumps(doc))
    bad["cells"].append(dict(bad["cells"][0]))
    assert any("duplicate" in e for e in validate_bench_document(bad))
    bad = json.loads(json.dumps(doc))
    bad["cells"][0]["n"] = "128"
    assert any("cells[0].n" in e for e in validate_bench_document(bad))
    assert validate_bench_document([]) != []


def test_missing_target_yields_empty_geomeans(sweep_results):
    only_baselines = [r for r in sweep_results if r.kernel != "GE-SpMM"]
    doc = bench_document(only_baselines)
    assert doc["geomeans"] == []
    assert validate_bench_document(doc) == []

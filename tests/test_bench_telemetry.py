"""BENCH_spmm.json writer: schema validity, determinism, geomeans."""

from __future__ import annotations

import json

import pytest

from repro.baselines import CusparseCsrmm2
from repro.bench import run_sweep, write_bench_json
from repro.bench.telemetry import (
    SCHEMA_ID,
    bench_document,
    validate_bench_document,
)
from repro.core import GESpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.sparse import uniform_random


@pytest.fixture(scope="module")
def sweep_results():
    graphs = {
        "rand-a": uniform_random(m=600, nnz=4800, seed=1),
        "rand-b": uniform_random(m=400, nnz=6400, seed=2),
    }
    kernels = [SimpleSpMM(), CusparseCsrmm2(), GESpMM()]
    return run_sweep(kernels, graphs, [64, 128], [GTX_1080TI, RTX_2080])


def test_document_shape_and_validity(sweep_results):
    doc = bench_document(sweep_results)
    assert validate_bench_document(doc) == []
    assert doc["schema"] == SCHEMA_ID
    # one cell per (kernel, graph, n, gpu)
    assert len(doc["cells"]) == 3 * 2 * 2 * 2
    assert doc["run"]["widths"] == [64, 128]
    assert set(doc["run"]["gpus"]) == {GTX_1080TI.name, RTX_2080.name}
    # GE-SpMM vs both baselines, per (gpu, n)
    assert len(doc["geomeans"]) == 2 * 2 * 2
    for g in doc["geomeans"]:
        assert g["target"] == "GE-SpMM"
        assert g["speedup"] > 0


def test_cells_sorted_and_deterministic(sweep_results):
    a = bench_document(sweep_results)
    b = bench_document(list(reversed(sweep_results)))
    assert a == b  # input order must not leak into the artifact


def test_write_round_trips_through_json(tmp_path, sweep_results):
    path = tmp_path / "BENCH_spmm.json"
    doc = write_bench_json(sweep_results, path, extra_run_meta={"command": "test"})
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(doc))
    assert validate_bench_document(loaded) == []
    assert loaded["run"]["command"] == "test"
    # rewriting produces byte-identical content (diffable across PRs)
    before = path.read_bytes()
    write_bench_json(sweep_results, path, extra_run_meta={"command": "test"})
    assert path.read_bytes() == before


def test_validator_catches_corruption(sweep_results):
    doc = bench_document(sweep_results)
    assert validate_bench_document({"schema": "nope"})  # wrong everything
    bad = json.loads(json.dumps(doc))
    bad["cells"][0].pop("gflops")
    assert any("gflops" in e for e in validate_bench_document(bad))
    bad = json.loads(json.dumps(doc))
    bad["cells"].append(dict(bad["cells"][0]))
    assert any("duplicate" in e for e in validate_bench_document(bad))
    bad = json.loads(json.dumps(doc))
    bad["cells"][0]["n"] = "128"
    assert any("cells[0].n" in e for e in validate_bench_document(bad))
    assert validate_bench_document([]) != []


def test_cells_carry_attribution_blocks(sweep_results):
    doc = bench_document(sweep_results)
    assert validate_bench_document(doc) == []
    for cell in doc["cells"]:
        attr = cell["attribution"]
        assert attr["bound_by"] in attr["breakdown_ms"]
        base = {
            "dram", "l2_link", "issue", "shared", "compute", "atomics",
            "sync", "launch",
        }
        # "tail" appears only for kernels that report a drain-tail hint
        # (row-split / merge-path schedules); the core set is always there.
        assert base <= set(attr["breakdown_ms"]) <= base | {"tail"}
        assert {"f_width", "f_ilp", "f_occ", "efficiency",
                "link_bytes", "dram_bytes"} <= set(attr["factors"])
        # breakdown is consistent with the reported cell time:
        # max(parallel ceilings) + sync + launch == time_ms
        b = attr["breakdown_ms"]
        parallel = {k: v for k, v in b.items() if k not in ("sync", "launch")}
        assert max(parallel.values()) + b["sync"] + b["launch"] == pytest.approx(
            cell["time_ms"]
        )


def test_attribution_absent_for_plain_results(sweep_results):
    """Results without attribution (older pipelines) serialize without the
    block and still validate."""
    from dataclasses import replace

    stripped = [replace(r, attribution=None) for r in sweep_results]
    doc = bench_document(stripped)
    assert validate_bench_document(doc) == []
    assert all("attribution" not in c for c in doc["cells"])


def test_missing_target_yields_empty_geomeans(sweep_results):
    only_baselines = [r for r in sweep_results if r.kernel != "GE-SpMM"]
    doc = bench_document(only_baselines)
    assert doc["geomeans"] == []
    assert validate_bench_document(doc) == []


# -- malformed-document property suite --------------------------------------

# Each corruption takes a fresh valid document and breaks it one way; the
# validator must return a diagnostic mentioning the right location — never
# raise (a KeyError from the validator would mask the real problem in CI).
_CORRUPTIONS = {
    "drop-schema": lambda d: d.pop("schema"),
    "wrong-schema": lambda d: d.update(schema="repro/bench-spmm/v999"),
    "schema-not-string": lambda d: d.update(schema=7),
    "drop-run": lambda d: d.pop("run"),
    "run-not-object": lambda d: d.update(run=[1, 2]),
    "run-missing-tool": lambda d: d["run"].pop("tool"),
    "run-empty-kernels": lambda d: d["run"].update(kernels=[]),
    "drop-cells": lambda d: d.pop("cells"),
    "cells-empty": lambda d: d.update(cells=[]),
    "cells-not-list": lambda d: d.update(cells={"kernel": "x"}),
    "cell-not-object": lambda d: d["cells"].__setitem__(0, "cell"),
    "cell-missing-kernel": lambda d: d["cells"][0].pop("kernel"),
    "cell-missing-time": lambda d: d["cells"][0].pop("time_ms"),
    "cell-wrong-key-type": lambda d: d["cells"][0].update(n="128"),
    "cell-bool-n": lambda d: d["cells"][0].update(n=True),
    "cell-nan-time": lambda d: d["cells"][0].update(time_ms=float("nan")),
    "cell-inf-time": lambda d: d["cells"][0].update(time_ms=float("inf")),
    "cell-negative-time": lambda d: d["cells"][0].update(time_ms=-1.0),
    "cell-nan-gflops": lambda d: d["cells"][0].update(gflops=float("nan")),
    "cell-duplicate": lambda d: d["cells"].append(dict(d["cells"][0])),
    "drop-geomeans": lambda d: d.pop("geomeans"),
    "geomeans-not-list": lambda d: d.update(geomeans="none"),
    "geomean-missing-speedup": lambda d: d["geomeans"][0].pop("speedup"),
    "geomean-inf-speedup": lambda d: d["geomeans"][0].update(speedup=float("inf")),
    "geomean-negative-speedup": lambda d: d["geomeans"][0].update(speedup=-2.0),
    # per-cell attribution block (optional, but must be well-formed when present)
    "attr-not-object": lambda d: d["cells"][0].update(attribution="dram"),
    "attr-missing-bound": lambda d: d["cells"][0]["attribution"].pop("bound_by"),
    "attr-bound-not-string": lambda d: d["cells"][0]["attribution"].update(bound_by=3),
    "attr-missing-breakdown": lambda d: d["cells"][0]["attribution"].pop("breakdown_ms"),
    "attr-breakdown-not-dict": lambda d: d["cells"][0]["attribution"].update(
        breakdown_ms=[1.0]),
    "attr-nan-component": lambda d: d["cells"][0]["attribution"]["breakdown_ms"].update(
        dram=float("nan")),
    "attr-negative-component": lambda d: d["cells"][0]["attribution"]["breakdown_ms"].update(
        dram=-1.0),
    "attr-bool-factor": lambda d: d["cells"][0]["attribution"]["factors"].update(
        f_occ=True),
    "attr-bound-not-in-breakdown": lambda d: d["cells"][0]["attribution"].update(
        bound_by="warp-divergence"),
}


@pytest.mark.parametrize("corruption", sorted(_CORRUPTIONS))
def test_validator_rejects_each_corruption(sweep_results, corruption):
    import copy

    doc = copy.deepcopy(bench_document(sweep_results))
    _CORRUPTIONS[corruption](doc)
    errors = validate_bench_document(doc)  # must not raise
    assert errors, f"{corruption}: corruption not detected"
    assert all(isinstance(e, str) and e for e in errors)


def test_validator_random_corruption_storm(sweep_results):
    """Property-style sweep: stack 1-3 random corruptions per trial; the
    validator must flag every combination without raising."""
    import copy
    import numpy as np

    names = sorted(_CORRUPTIONS)
    rng = np.random.default_rng(20260807)
    for _ in range(60):
        doc = copy.deepcopy(bench_document(sweep_results))
        picks = rng.choice(len(names), size=int(rng.integers(1, 4)), replace=False)
        applied = []
        for p in picks:
            try:
                _CORRUPTIONS[names[p]](doc)
                applied.append(names[p])
            except (KeyError, IndexError, AttributeError, TypeError):
                # an earlier corruption already removed this target;
                # the document is corrupt either way
                pass
        errors = validate_bench_document(doc)
        assert errors, f"stacked corruption {applied} not detected"


def test_validator_rejects_non_finite_with_clear_message(sweep_results):
    import copy

    doc = copy.deepcopy(bench_document(sweep_results))
    doc["cells"][0]["time_ms"] = float("nan")
    errors = validate_bench_document(doc)
    assert any("cells[0].time_ms" in e and "non-finite" in e for e in errors)


# -- determinism (the property the regression gate rests on) ---------------


def test_sweep_document_byte_deterministic():
    """Two fully independent in-process telemetry sweeps must serialize
    byte-identically: this is the invariant that lets `make gate` treat
    any BENCH_spmm.json diff as a real model change."""

    def one_sweep():
        graphs = {
            "det-a": uniform_random(m=500, nnz=4000, seed=31),
            "det-b": uniform_random(m=350, nnz=5250, seed=32),
        }
        kernels = [SimpleSpMM(), CusparseCsrmm2(), GESpMM()]
        results = run_sweep(kernels, graphs, [32, 128], [GTX_1080TI, RTX_2080])
        return bench_document(results, extra_run_meta={"command": "sweep"})

    first = json.dumps(one_sweep(), indent=2, sort_keys=True)
    second = json.dumps(one_sweep(), indent=2, sort_keys=True)
    assert first == second

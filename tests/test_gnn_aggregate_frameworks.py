"""Tests for graph aggregation autograd and the framework backends."""

import numpy as np
import pytest

from repro.gnn import DGLBackend, GraphPair, PyGBackend, SimDevice, Tensor
from repro.gpusim import GTX_1080TI
from repro.semiring import MAX_TIMES
from repro.sparse import csr_from_coo, reference_spmm_like, uniform_random


@pytest.fixture
def graph():
    return GraphPair(uniform_random(m=60, nnz=480, seed=6, weighted=True))


@pytest.fixture
def x(graph, rng):
    return Tensor(rng.standard_normal((graph.adj.ncols, 12)).astype(np.float32),
                  requires_grad=True)


def backends(use_ge):
    dev = SimDevice(GTX_1080TI)
    return [DGLBackend(dev, use_gespmm=use_ge), PyGBackend(dev, use_gespmm=use_ge)]


class TestGraphPair:
    def test_transpose_cached(self, graph):
        assert graph.adj_t is graph.adj_t
        assert graph.adj_t.shape == graph.adj.shape[::-1]

    def test_normalized_cached(self, graph):
        assert graph.row_normalized() is graph.row_normalized()
        assert graph.sym_normalized_with_loops() is graph.sym_normalized_with_loops()


class TestAggregationValues:
    @pytest.mark.parametrize("use_ge", [False, True], ids=["stock", "gespmm"])
    def test_sum_matches_oracle(self, graph, x, use_ge):
        for backend in backends(use_ge):
            out = backend.aggregate(graph, x, op="sum")
            np.testing.assert_allclose(
                out.data, reference_spmm_like(graph.adj, x.data), rtol=1e-4, atol=1e-5
            )

    @pytest.mark.parametrize("use_ge", [False, True], ids=["stock", "gespmm"])
    def test_max_matches_oracle(self, graph, x, use_ge):
        want = reference_spmm_like(graph.adj, x.data, MAX_TIMES)
        lengths = graph.adj.row_lengths()
        want[lengths == 0] = 0.0
        for backend in backends(use_ge):
            out = backend.aggregate(graph, x, op="max")
            np.testing.assert_allclose(out.data, want, rtol=1e-4, atol=1e-5)

    def test_unknown_op_rejected(self, graph, x):
        backend = backends(False)[0]
        with pytest.raises(ValueError):
            backend.aggregate(graph, x, op="median")

    def test_max_empty_rows_are_zero(self, rng):
        adj = csr_from_coo([0, 0], [1, 2], [1.0, 1.0], shape=(3, 3))
        g = GraphPair(adj)
        x = Tensor(rng.standard_normal((3, 4)).astype(np.float32))
        out = backends(True)[0].aggregate(g, x, op="max")
        assert np.all(out.data[1] == 0) and np.all(out.data[2] == 0)
        assert np.isfinite(out.data).all()


class TestAggregationGradients:
    def test_sum_backward_is_transpose_spmm(self, graph, x):
        backend = backends(True)[0]
        out = backend.aggregate(graph, x, op="sum")
        g = np.random.default_rng(0).standard_normal(out.shape).astype(np.float32)
        out.backward(g)
        np.testing.assert_allclose(
            x.grad, reference_spmm_like(graph.adj_t, g), rtol=1e-4, atol=1e-5
        )

    def test_max_backward_numerical(self, rng):
        adj = uniform_random(m=12, nnz=50, seed=3, weighted=True)
        g = GraphPair(adj)
        data = rng.standard_normal((12, 5)).astype(np.float32)
        gout = rng.standard_normal((12, 5)).astype(np.float32)
        backend = backends(True)[0]

        x = Tensor(data.copy(), requires_grad=True)
        out = backend.aggregate(g, x, op="max")
        out.backward(gout)

        eps = 1e-3
        num = np.zeros_like(data, dtype=np.float64)
        for i in range(data.shape[0]):
            for j in range(data.shape[1]):
                for sign in (+1, -1):
                    d = data.copy()
                    d[i, j] += sign * eps
                    val = reference_spmm_like(adj, d, MAX_TIMES)
                    val[adj.row_lengths() == 0] = 0
                    num[i, j] += sign * float((val * gout).sum()) / (2 * eps)
        np.testing.assert_allclose(x.grad, num, rtol=5e-2, atol=5e-3)


class TestBackendAccounting:
    def test_dgl_stock_records_spmm(self, graph, x):
        dev = SimDevice(GTX_1080TI)
        out = DGLBackend(dev).aggregate(graph, x, op="sum")
        out.backward(np.ones_like(out.data))
        prof = dev.profile()
        assert prof.calls["SpMM"] == 2  # forward + backward

    def test_dgl_stock_max_labeled_spmm_like(self, graph, x):
        dev = SimDevice(GTX_1080TI)
        DGLBackend(dev).aggregate(graph, x, op="max")
        assert "SpMM-like" in dev.profile().totals

    def test_pyg_stock_labeled_message_passing(self, graph, x):
        dev = SimDevice(GTX_1080TI)
        PyGBackend(dev).aggregate(graph, x, op="sum")
        prof = dev.profile()
        assert "MessagePassing" in prof.totals
        assert "SpMM" not in prof.totals

    def test_gespmm_swaps_label_and_is_faster(self, x):
        big = GraphPair(uniform_random(m=20_000, nnz=200_000, seed=2))
        xx = Tensor(np.ones((big.adj.ncols, 64), dtype=np.float32))
        dev_stock = SimDevice(GTX_1080TI)
        PyGBackend(dev_stock).aggregate(big, xx, op="sum")
        dev_ge = SimDevice(GTX_1080TI)
        PyGBackend(dev_ge, use_gespmm=True).aggregate(big, xx, op="sum")
        assert dev_ge.profile().total_time < dev_stock.profile().total_time

    def test_dgl_transpose_penalty_in_stock_path(self, x):
        big = GraphPair(uniform_random(m=20_000, nnz=200_000, seed=2))
        xx = Tensor(np.ones((big.adj.ncols, 64), dtype=np.float32))
        from repro.baselines import CusparseCsrmm2

        raw = CusparseCsrmm2().estimate(big.adj, 64, GTX_1080TI).time_s
        dev = SimDevice(GTX_1080TI)
        DGLBackend(dev).aggregate(big, xx, op="sum")
        assert dev.profile().time("SpMM") > raw  # csrmm2 + cuBLAS transpose

    def test_backends_numerically_identical(self, graph, x):
        outs = []
        for use_ge in (False, True):
            for backend in backends(use_ge):
                outs.append(backend.aggregate(graph, x, op="sum").data)
        for o in outs[1:]:
            np.testing.assert_allclose(o, outs[0], rtol=1e-6)


class TestAggregateSumMulti:
    """The batched entry point: K same-graph sums through one traversal,
    byte-identical to per-request aggregate_sum with per-request costs
    and autograd."""

    def _multi(self, g, xs, device):
        from repro.gnn.aggregate import aggregate_sum_multi

        cost = lambda adj, n: float(n)  # charge = width, easy to audit
        return aggregate_sum_multi(g, xs, cost, cost, device.record)

    def test_outputs_and_grads_match_per_request_calls(self, graph, rng):
        from repro.gnn.aggregate import aggregate_sum

        widths = (3, 12, 20)
        datas = [rng.standard_normal((graph.adj.ncols, n)).astype(np.float32)
                 for n in widths]
        grads = [rng.standard_normal((graph.adj.nrows, n)).astype(np.float32)
                 for n in widths]

        xs = [Tensor(d.copy(), requires_grad=True) for d in datas]
        outs = self._multi(graph, xs, SimDevice(GTX_1080TI))
        cost = lambda adj, n: float(n)
        for data, grad, out, x in zip(datas, grads, outs, xs):
            single_x = Tensor(data.copy(), requires_grad=True)
            single = aggregate_sum(
                graph, single_x, cost, cost, SimDevice(GTX_1080TI).record
            )
            assert out.data.tobytes() == single.data.tobytes()
            out.backward(grad)
            single.backward(grad)
            np.testing.assert_array_equal(x.grad, single_x.grad)

    def test_each_request_charged_at_its_own_width(self, graph, rng):
        widths = (4, 16)
        xs = [Tensor(rng.standard_normal((graph.adj.ncols, n)).astype(np.float32))
              for n in widths]
        dev = SimDevice(GTX_1080TI)
        self._multi(graph, xs, dev)
        prof = dev.profile()
        assert prof.calls["SpMM"] == len(widths)
        assert prof.time("SpMM") == float(sum(widths))

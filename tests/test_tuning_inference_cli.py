"""Tests for the CF autotuner, the amortization scenarios, and the CLI."""

import numpy as np
import pytest

from repro.core import CWMSpMM, GESpMM, TunedSpMM, oracle_gap, tune_cf
from repro.gnn.inference import (
    amortization_crossover,
    inference_scenario,
    sampled_training_scenario,
)
from repro.gpusim import GTX_1080TI
from repro.sparse import banded_random, reference_spmm, uniform_random
from repro import cli


@pytest.fixture(scope="module")
def graphs():
    return [uniform_random(20_000, 200_000, seed=s) for s in range(3)]


class TestTuner:
    def test_tune_returns_candidate(self, graphs):
        res = tune_cf(graphs[0], 256, GTX_1080TI)
        assert res.best_cf in (1, 2, 4, 8)
        assert res.best_time == min(res.times.values())
        assert res.loss_of(res.best_cf) == 0.0

    def test_large_n_prefers_merging(self, graphs):
        res = tune_cf(graphs[0], 512, GTX_1080TI)
        assert res.best_cf >= 2  # CWM should win at wide N

    def test_small_n_prefers_plain_crc(self, graphs):
        res = tune_cf(graphs[0], 16, GTX_1080TI)
        # At N <= 32 merging cannot help; CF=1 ties or wins.
        assert res.times[1] <= min(res.times.values()) * 1.01

    def test_empty_candidates_rejected(self, graphs):
        with pytest.raises(ValueError):
            tune_cf(graphs[0], 128, GTX_1080TI, candidates=[])

    def test_oracle_gap_fixed_cf2_small(self, graphs):
        worst, n_bad, results = oracle_gap(graphs, 256, GTX_1080TI, fixed_cf=2)
        assert len(results) == 3
        assert n_bad == 0  # CF=2 within 15% of oracle on uniform graphs
        assert worst < 0.15

    def test_tuned_kernel_dispatch(self, graphs):
        k = TunedSpMM()
        t = k.estimate(graphs[0], 512, GTX_1080TI)
        best = tune_cf(graphs[0], 512, GTX_1080TI).best_time
        assert t.time_s == pytest.approx(best, rel=1e-6)

    def test_tuned_kernel_functional(self, rng):
        a = uniform_random(300, 3000, seed=1)
        b = rng.random((300, 64), dtype=np.float32)
        np.testing.assert_allclose(TunedSpMM().run(a, b), reference_spmm(a, b),
                                   rtol=1e-4, atol=1e-4)

    def test_tuning_time_positive(self, graphs):
        k = TunedSpMM()
        assert k.tuning_time(graphs[0], 256, GTX_1080TI) > 0


class TestScenarios:
    def test_inference_ge_wins(self, graphs):
        res = inference_scenario(graphs[0], 128, GTX_1080TI)
        assert res.times["GE-SpMM"] < res.times["cuSPARSE csrmm2"]
        assert res.times["GE-SpMM"] < res.times["ASpT"]  # preprocess counted

    def test_sampled_training_ge_wins(self, graphs):
        res = sampled_training_scenario(graphs[0], 64, GTX_1080TI, n_batches=3)
        assert res.spmm_calls == 6
        assert min(res.times, key=res.times.get) == "GE-SpMM"

    def test_crossover_on_tiled_matrix(self):
        # A banded matrix where ASpT's kernel is genuinely faster: the
        # preprocess amortizes after finitely many reuses.
        band = banded_random(60_000, 600_000, bandwidth=16, seed=4)
        cross = amortization_crossover(band, 512, GTX_1080TI, max_reuses=512)
        if cross is not None:
            assert cross >= 1

    def test_crossover_none_when_kernel_not_faster(self, graphs):
        # On uniform random graphs GE's kernel is >= ASpT's: never amortizes.
        assert amortization_crossover(graphs[0], 128, GTX_1080TI) is None


class TestCLI:
    def test_analyze(self, capsys):
        assert cli.main(["analyze", "--graph", "random", "--m", "500", "--nnz", "2000"]) == 0
        out = capsys.readouterr().out
        assert "row imbalance" in out

    def test_profile(self, capsys):
        assert cli.main(
            ["profile", "--graph", "random", "--m", "500", "--nnz", "2000",
             "--n", "64", "--kernels", "simple", "crc"]
        ) == 0
        out = capsys.readouterr().out
        assert "simple" in out and "crc" in out

    def test_sweep(self, capsys):
        assert cli.main(["sweep", "--graphs", "2", "--n", "64", "--max-nnz", "20000"]) == 0
        assert "GE-SpMM vs" in capsys.readouterr().out

    def test_train(self, capsys):
        assert cli.main(["train", "--dataset", "cora", "--epochs", "2", "--gespmm"]) == 0
        out = capsys.readouterr().out
        assert "test acc" in out and "SpMM" in out

    def test_scenario(self, capsys):
        assert cli.main(
            ["scenario", "--graph", "random", "--m", "2000", "--nnz", "20000",
             "--feature-dim", "32", "--batches", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "inference" in out and "sampled-training" in out

    def test_unknown_gpu_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["profile", "--gpu", "H100"])

    def test_roofline(self, capsys):
        assert cli.main(
            ["roofline", "--graph", "random", "--m", "2000", "--nnz", "20000",
             "--n", "64", "--kernels", "simple", "gespmm"]
        ) == 0
        out = capsys.readouterr().out
        assert "Roofline" in out and "bound" in out

    def test_tune(self, capsys):
        assert cli.main(
            ["tune", "--graph", "random", "--m", "5000", "--nnz", "50000", "--n", "128"]
        ) == 0
        out = capsys.readouterr().out
        assert "best" in out and "CF=2" in out

    def test_oom(self, capsys):
        assert cli.main(["oom", "--n", "512"]) == 0
        out = capsys.readouterr().out
        assert "soc-LiveJournal1" in out
        assert cli.main(["oom", "--n", "1"]) == 0
        assert "(none at this width)" in capsys.readouterr().out

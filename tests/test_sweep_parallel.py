"""Parallel + memoized sweep execution: determinism and cache contracts.

``run_sweep(jobs=N)`` must return *byte-identical* results for any N, and
the content-addressed memo cache must be invisible in the output (same
results on hit and miss) while being visible in telemetry.  These are
the acceptance criteria of the batched-replay PR; see
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.bench import (
    SweepHostStats,
    bench_document,
    clear_sweep_cache,
    csr_fingerprint,
    geomean,
    run_sweep,
    run_sweep_with_stats,
)
from repro.core import CRCSpMM, CWMSpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.sparse import uniform_random


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    prev = set_registry(fresh)
    yield fresh
    set_registry(prev)


@pytest.fixture
def sweep_args():
    clear_sweep_cache()
    graphs = {
        "g1": uniform_random(200, 2000, seed=1),
        "g2": uniform_random(300, 1500, seed=2),
    }
    kernels = [SimpleSpMM(), CRCSpMM(), CWMSpMM(2)]
    yield kernels, graphs, [32, 64], [GTX_1080TI, RTX_2080]
    clear_sweep_cache()


class TestJobsDeterminism:
    def test_any_jobs_value_is_byte_identical(self, sweep_args):
        kernels, graphs, widths, gpus = sweep_args
        baseline = run_sweep(kernels, graphs, widths, gpus, memoize=False)
        for jobs in (2, 4, 7):
            got = run_sweep(kernels, graphs, widths, gpus, jobs=jobs,
                            memoize=False)
            assert got == baseline, f"jobs={jobs} diverged from serial"

    def test_attribution_identical_across_jobs_and_memo(self, sweep_args):
        kernels, graphs, widths, gpus = sweep_args
        cold = run_sweep(kernels, graphs, widths, gpus)  # fills the memo
        warm = run_sweep(kernels, graphs, widths, gpus, jobs=4)  # all hits
        for a, b in zip(cold, warm):
            assert a.attribution is not None
            assert a.attribution == b.attribution
            assert a.attribution["bound_by"] in a.attribution["breakdown_ms"]
            assert {"f_width", "f_ilp", "f_occ", "link_bytes"} <= set(
                a.attribution["factors"]
            )
        # and the serialized documents (which embed attribution) match
        assert json.dumps(bench_document(cold), sort_keys=True) == \
            json.dumps(bench_document(warm), sort_keys=True)

    def test_result_order_is_serial_emission_order(self, sweep_args):
        kernels, graphs, widths, gpus = sweep_args
        results = run_sweep(kernels, graphs, widths, gpus, jobs=4)
        expected = [
            (k.name, gname, n, gpu.name)
            for gpu in gpus
            for gname in graphs
            for n in widths
            for k in kernels
        ]
        assert [(r.kernel, r.graph, r.n, r.gpu) for r in results] == expected


class TestMemoization:
    def test_second_pass_all_hits_same_results(self, sweep_args, registry):
        kernels, graphs, widths, gpus = sweep_args
        first, s1 = run_sweep_with_stats(kernels, graphs, widths, gpus)
        assert s1.memo_hits == 0 and s1.memo_misses == s1.cells
        # Fresh kernel instances: the cache key is config-addressed, not
        # identity-addressed.
        again, s2 = run_sweep_with_stats(
            [SimpleSpMM(), CRCSpMM(), CWMSpMM(2)], graphs, widths, gpus
        )
        assert s2.memo_hits == s2.cells and s2.memo_misses == 0
        assert again == first
        assert registry.counter("sweep.memo.hits").value == s2.cells
        assert registry.counter("sweep.memo.misses").value == s1.cells

    def test_memoized_bench_document_identical(self, sweep_args):
        kernels, graphs, widths, gpus = sweep_args
        cold = bench_document(run_sweep(kernels, graphs, widths, gpus),
                              target="crc")
        warm = bench_document(run_sweep(kernels, graphs, widths, gpus),
                              target="crc")
        assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)

    def test_different_config_misses(self, sweep_args):
        kernels, graphs, widths, gpus = sweep_args
        run_sweep(kernels, graphs, widths, gpus)
        # CWM(4) differs from CWM(2) in a public attribute: distinct key.
        _, stats = run_sweep_with_stats([CWMSpMM(4)], graphs, widths, gpus)
        assert stats.memo_misses == stats.cells

    def test_clear_sweep_cache(self, sweep_args):
        kernels, graphs, widths, gpus = sweep_args
        run_sweep(kernels, graphs, widths, gpus)
        clear_sweep_cache()
        _, stats = run_sweep_with_stats(kernels, graphs, widths, gpus)
        assert stats.memo_hits == 0

    def test_csr_fingerprint_content_addressed(self):
        a = uniform_random(50, 200, seed=3)
        b = uniform_random(50, 200, seed=3)  # same content, new identity
        c = uniform_random(50, 200, seed=4)
        assert csr_fingerprint(a) == csr_fingerprint(b)
        assert csr_fingerprint(a) != csr_fingerprint(c)


class TestHostStats:
    def test_fields_and_run_meta(self, sweep_args):
        kernels, graphs, widths, gpus = sweep_args
        _, stats = run_sweep_with_stats(kernels, graphs, widths, gpus, jobs=2)
        assert isinstance(stats, SweepHostStats)
        assert stats.cells == len(kernels) * len(graphs) * 2 * len(gpus)
        assert stats.jobs == 2
        assert stats.wall_s > 0
        assert stats.cells_per_s == pytest.approx(stats.cells / stats.wall_s)
        meta = stats.as_run_meta()
        assert meta["cells"] == stats.cells
        assert meta["jobs"] == 2
        assert set(meta) == {"wall_s", "cells", "cells_per_s", "jobs",
                             "memo_hits", "memo_misses"}
        json.dumps(meta)  # must be JSON-serializable for run.host


class TestGeomeanObservability:
    def test_drops_counted_and_evented(self, registry):
        events = []
        import repro.obs as obs
        class _Spy:
            def event(self, name, **attrs):
                events.append((name, attrs))
            def add_sim_time(self, s):
                pass
        prev = obs.set_tracer(_Spy())
        try:
            assert geomean([4.0, 0.0, -2.0, 4.0]) == pytest.approx(4.0)
        finally:
            obs.set_tracer(prev)
        assert registry.counter("bench.geomean.dropped").value == 2
        assert ("geomean.dropped_nonpositive", {"dropped": 2, "kept": 2}) in events

    def test_no_drop_no_counter(self, registry):
        geomean([1.0, 2.0])
        assert registry.counter("bench.geomean.dropped").value == 0

    def test_all_dropped_is_nan_but_counted(self, registry):
        assert math.isnan(geomean([-1.0, 0.0]))
        assert registry.counter("bench.geomean.dropped").value == 2

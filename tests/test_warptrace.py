"""Per-warp Chrome trace export (`warp_trace_events`, `trace --per-warp`).

Checks the structural contract of the exported events — metadata rows,
one tid per warp task, durations equal to modelled sector counts, no
overlap within a warp's timeline — and the CLI integration that merges
them into the ``--trace-out`` Chrome trace.
"""

from __future__ import annotations

import contextlib
import io
import json
from collections import defaultdict

import numpy as np
import pytest

from repro import obs
from repro.baselines import CusparseCsrmm2
from repro.cli import main
from repro.core import GESpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, warp_trace_events
from repro.obs.metrics import MetricsRegistry
from repro.sparse import uniform_random

SMALL_GRAPH = ["--graph", "random", "--m", "3000", "--nnz", "24000"]


@pytest.fixture(autouse=True)
def fresh_registry():
    prev = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(prev)


def run_cli(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = main(argv)
    return rc, out.getvalue()


def _small_case(n=16):
    a = uniform_random(400, 3000, seed=0, weighted=True)
    b = np.random.default_rng(1).standard_normal((a.ncols, n)).astype(np.float32)
    return a, b


def test_event_structure_and_warp_cap():
    a, b = _small_case()
    events = warp_trace_events(GESpMM(), a, b, GTX_1080TI, max_warps=8, pid=3)
    assert events, "traced kernel must yield events"
    assert all(e["pid"] == 3 for e in events)

    meta = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    assert meta[0]["name"] == "process_name"
    assert "GE-SpMM" in meta[0]["args"]["name"]

    thread_names = {e["tid"]: e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    warp_tids = {e["tid"] for e in slices}
    assert warp_tids <= set(thread_names)
    assert len(warp_tids) <= 8
    assert all(name.startswith("warp task") for name in thread_names.values())

    for e in slices:
        assert e["cat"] == "warp"
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert e["dur"] == e["args"]["sectors"]  # 1 sector = 1 tick


def test_slices_tile_each_warp_timeline_without_overlap():
    a, b = _small_case(n=8)
    events = warp_trace_events(SimpleSpMM(), a, b, GTX_1080TI, max_warps=4)
    per_warp = defaultdict(list)
    for e in events:
        if e["ph"] == "X":
            per_warp[e["tid"]].append((e["ts"], e["dur"]))
    assert per_warp
    for spans in per_warp.values():
        spans.sort()
        clock = 0.0
        for ts, dur in spans:
            assert ts == clock  # back-to-back in program order, no gaps
            clock += dur


def test_untraceable_kernel_raises_like_trace():
    a, b = _small_case()
    with pytest.raises(NotImplementedError):
        warp_trace_events(CusparseCsrmm2(), a, b, GTX_1080TI)


def test_cli_per_warp_merges_into_chrome_trace(tmp_path):
    trace = tmp_path / "t.json"
    rc, out = run_cli(
        ["trace", *SMALL_GRAPH, "--n", "64", "--per-warp", "--max-warps", "8",
         "--trace-out", str(trace)]
    )
    assert rc == 0
    assert "per-warp" in out

    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    warp_events = [e for e in events if e.get("cat") == "warp"]
    assert warp_events
    # One Chrome process per traced kernel (cuSPARSE has no trace mode
    # and is skipped with a warning on stderr).
    assert len({e["pid"] for e in warp_events}) >= 2
    # The span events from the tracer are still present alongside.
    assert any(e.get("name") == "trace.profile" for e in events)


def test_cli_per_warp_respects_max_warps(tmp_path):
    trace = tmp_path / "t.json"
    rc, _ = run_cli(
        ["trace", *SMALL_GRAPH, "--n", "64", "--per-warp", "--max-warps", "3",
         "--trace-out", str(trace)]
    )
    assert rc == 0
    doc = json.loads(trace.read_text())
    per_pid = defaultdict(set)
    for e in doc["traceEvents"]:
        if e.get("cat") == "warp":
            per_pid[e["pid"]].add(e["tid"])
    assert per_pid
    assert all(len(tids) <= 3 for tids in per_pid.values())

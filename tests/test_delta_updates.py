"""Parity suite for repro.sparse.delta — incremental CSR mutation.

The contract (docs/PERFORMANCE.md "Dynamic graphs"): a matrix built by
``apply_delta`` is **indistinguishable** from a from-scratch build of
the same edge set — identical raw arrays, identical derived arrays
(including the seeded ones), identical incrementally-evolved
:class:`AccessProfile` state, and identical content fingerprint, which
makes the effective estimate/sweep memo keys byte-equal.  Hypothesis
drives random insert/delete/update batches against a from-scratch
oracle; directed tests cover the documented failure modes (duplicate
edges, missing edges, out-of-range indices, non-canonical rows) and the
threshold-gated re-tuning / targeted-invalidation plumbing.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.access_profile import access_profile
from repro.core.tuning import RetuneThresholds, TunedSpMM
from repro.gpusim.config import GTX_1080TI
from repro.gpusim.kernel import clear_estimate_memo
from repro.obs.metrics import MetricsRegistry
from repro.sparse import (
    CSRMatrix,
    EdgeDelta,
    apply_delta,
    csr_from_coo,
    invalidate_matrix_caches,
    power_law,
    structural_drift,
)

PROFILE_ARRAYS = ("_pl_phase", "_pl_len", "_pl_count", "_colind_mod8")
PROFILE_SCALARS = ("nnz", "nrows", "ncols", "occupied_rows", "unique_b_columns")


# ----------------------------------------------------------------------
# Strategies: a random base matrix plus a random valid delta against it
# ----------------------------------------------------------------------


@st.composite
def matrix_and_delta(draw, max_m=30, max_k=30, max_nnz=150):
    m = draw(st.integers(1, max_m))
    k = draw(st.integers(1, max_k))
    nnz = draw(st.integers(0, min(max_nnz, m * k)))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=nnz)
    cols = rng.integers(0, k, size=nnz)
    vals = rng.standard_normal(nnz).astype(np.float32)
    a = csr_from_coo(rows, cols, vals, shape=(m, k), sum_duplicates=True)

    # Partition the stored edges into delete / update / keep, and draw
    # inserts from the absent slots.
    n_del = draw(st.integers(0, a.nnz))
    n_upd = draw(st.integers(0, a.nnz - n_del))
    perm = rng.permutation(a.nnz)
    del_idx, upd_idx = perm[:n_del], perm[n_del : n_del + n_upd]

    present = np.zeros(m * k, dtype=bool)
    present[a.coo_rows() * k + a.colind64()] = True
    absent = np.flatnonzero(~present)
    n_ins = draw(st.integers(0, min(absent.size, 40)))
    ins_flat = rng.choice(absent, size=n_ins, replace=False)

    delta = EdgeDelta.new(
        inserts=(
            ins_flat // k,
            ins_flat % k,
            rng.standard_normal(n_ins).astype(np.float32),
        ),
        deletes=(a.coo_rows()[del_idx], a.colind64()[del_idx]),
        updates=(
            a.coo_rows()[upd_idx],
            a.colind64()[upd_idx],
            rng.standard_normal(n_upd).astype(np.float32),
        ),
    )
    return a, delta, del_idx, upd_idx


def rebuild_oracle(a, delta, del_idx, upd_idx):
    """From-scratch build of the delta-applied edge set."""
    keep = np.ones(a.nnz, dtype=bool)
    keep[del_idx] = False
    vals = a.values.copy()
    vals[upd_idx] = delta.update_values[
        np.lexsort((a.colind64()[upd_idx], a.coo_rows()[upd_idx])).argsort()
    ]
    return csr_from_coo(
        np.concatenate([a.coo_rows()[keep], delta.insert_rows]),
        np.concatenate([a.colind64()[keep], delta.insert_cols]),
        np.concatenate([vals[keep], delta.insert_values]),
        shape=a.shape,
    )


def assert_full_parity(out, ref):
    """out (delta-built) must be indistinguishable from ref (scratch)."""
    assert np.array_equal(out.rowptr, ref.rowptr)
    assert np.array_equal(out.colind, ref.colind)
    assert np.array_equal(out.values, ref.values)
    for derived in ("rowptr64", "row_lengths", "colind64", "coo_rows"):
        assert np.array_equal(getattr(out, derived)(), getattr(ref, derived)())
    # Content fingerprint equality == effective memo-key equality: the
    # fingerprint is the only matrix-dependent key component.
    assert out.fingerprint() == ref.fingerprint()


def assert_profile_parity(out, ref):
    p_out, p_ref = access_profile(out), access_profile(ref)
    for attr in PROFILE_ARRAYS:
        assert np.array_equal(getattr(p_out, attr), getattr(p_ref, attr)), attr
    for attr in PROFILE_SCALARS:
        assert getattr(p_out, attr) == getattr(p_ref, attr), attr


# ----------------------------------------------------------------------
# Hypothesis parity: delta-applied == from-scratch, bit for bit
# ----------------------------------------------------------------------


@given(matrix_and_delta())
@settings(max_examples=60, deadline=None)
def test_delta_matches_from_scratch(case):
    a, delta, del_idx, upd_idx = case
    # Pre-warm everything the delta path patches incrementally.
    a.colind64(), a.coo_rows(), access_profile(a)
    out = apply_delta(a, delta)
    ref = rebuild_oracle(a, delta, del_idx, upd_idx)
    assert_full_parity(out, ref)
    assert_profile_parity(out, ref)


@given(matrix_and_delta())
@settings(max_examples=30, deadline=None)
def test_delta_without_prewarmed_derived_state(case):
    """Cold parents (no cached colind64/coo_rows/profile) still produce
    correct successors — the optional seeds are just skipped."""
    a, delta, del_idx, upd_idx = case
    out = apply_delta(a, delta)
    ref = rebuild_oracle(a, delta, del_idx, upd_idx)
    assert_full_parity(out, ref)
    assert_profile_parity(out, ref)  # both built from scratch here


@given(matrix_and_delta())
@settings(max_examples=30, deadline=None)
def test_delta_chain_stays_canonical(case):
    """A second delta applied on top of a delta-built matrix sees
    canonical rows (the merge must emit column-sorted segments)."""
    a, delta, del_idx, upd_idx = case
    access_profile(a)
    mid = apply_delta(a, delta)
    rng = np.random.default_rng(7)
    if mid.nnz == 0:
        return
    i = rng.integers(0, mid.nnz, size=min(3, mid.nnz))
    i = np.unique(i)
    second = EdgeDelta.new(deletes=(mid.coo_rows()[i], mid.colind64()[i]))
    out = apply_delta(mid, second)
    keep = np.ones(mid.nnz, dtype=bool)
    keep[i] = False
    ref = csr_from_coo(
        mid.coo_rows()[keep], mid.colind64()[keep], mid.values[keep],
        shape=mid.shape,
    )
    assert_full_parity(out, ref)
    assert_profile_parity(out, ref)


# ----------------------------------------------------------------------
# Directed edge cases
# ----------------------------------------------------------------------


def small_matrix():
    rows = [0, 0, 1, 3, 3, 3]
    cols = [1, 3, 0, 0, 2, 4]
    vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    return csr_from_coo(rows, cols, vals, shape=(4, 5))


def test_empty_delta_is_identity():
    a = small_matrix()
    assert apply_delta(a, EdgeDelta.new()) is a
    assert EdgeDelta.new().is_empty


def test_row_emptying_delete():
    a = small_matrix()
    access_profile(a)
    delta = EdgeDelta.new(deletes=([3, 3, 3], [0, 2, 4]))
    out = apply_delta(a, delta)
    assert out.row_lengths()[3] == 0
    ref = csr_from_coo([0, 0, 1], [1, 3, 0], [1.0, 2.0, 3.0], shape=(4, 5))
    assert_full_parity(out, ref)
    assert_profile_parity(out, ref)


def test_insert_into_empty_row_and_empty_matrix():
    a = small_matrix()
    access_profile(a)
    out = apply_delta(a, EdgeDelta.new(inserts=([2, 2], [1, 4], [7.0, 8.0])))
    assert out.row_lengths()[2] == 2
    empty = csr_from_coo([], [], [], shape=(3, 3))
    access_profile(empty)
    grown = apply_delta(empty, EdgeDelta.new(inserts=([1], [2], [9.0])))
    ref = csr_from_coo([1], [2], [9.0], shape=(3, 3))
    assert_full_parity(grown, ref)
    assert_profile_parity(grown, ref)


def test_duplicate_edge_within_batch_rejected():
    with pytest.raises(ValueError, match="more than once"):
        EdgeDelta.new(inserts=([0, 0], [1, 1], [1.0, 2.0]))
    with pytest.raises(ValueError, match="more than once"):
        EdgeDelta.new(inserts=([0], [1], [1.0]), deletes=([0], [1]))


def test_insert_colliding_with_stored_edge_rejected():
    a = small_matrix()
    with pytest.raises(ValueError, match="duplicate edge"):
        apply_delta(a, EdgeDelta.new(inserts=([0], [1], [9.0])))


def test_delete_and_update_of_missing_edge_rejected():
    a = small_matrix()
    with pytest.raises(ValueError, match="not stored"):
        apply_delta(a, EdgeDelta.new(deletes=([0], [0])))
    with pytest.raises(ValueError, match="not stored"):
        apply_delta(a, EdgeDelta.new(updates=([2], [2], [1.0])))


def test_out_of_range_indices_rejected():
    a = small_matrix()
    with pytest.raises(ValueError, match="out of range"):
        apply_delta(a, EdgeDelta.new(inserts=([4], [0], [1.0])))
    with pytest.raises(ValueError, match="out of range"):
        apply_delta(a, EdgeDelta.new(deletes=([0], [5])))
    with pytest.raises(ValueError, match="non-negative"):
        EdgeDelta.new(inserts=([-1], [0], [1.0]))


def test_non_canonical_touched_rows_rejected():
    # Duplicate column inside a touched row: the delta path cannot merge
    # against an ambiguous segment.
    a = CSRMatrix(
        (2, 4),
        np.array([0, 2, 2], dtype=np.int64),
        np.array([1, 1], dtype=np.int32),
        np.array([1.0, 2.0], dtype=np.float32),
    )
    with pytest.raises(ValueError, match="not canonical"):
        apply_delta(a, EdgeDelta.new(inserts=([0], [3], [1.0])))


def test_immutability_of_parent():
    a = small_matrix()
    before = (a.rowptr.copy(), a.colind.copy(), a.values.copy(), a.fingerprint())
    out = apply_delta(a, EdgeDelta.new(deletes=([0], [1])))
    assert out is not a
    assert np.array_equal(a.rowptr, before[0])
    assert np.array_equal(a.colind, before[1])
    assert np.array_equal(a.values, before[2])
    assert a.fingerprint() == before[3]


# ----------------------------------------------------------------------
# Counters and fingerprint caching (the _cached-path fix)
# ----------------------------------------------------------------------


def test_fingerprint_counts_as_derived_cache_traffic():
    prev = obs.set_registry(MetricsRegistry())
    try:
        a = small_matrix()
        a.fingerprint()
        a.fingerprint()
        reg = obs.get_registry()
        assert reg.counter("csr.derived_cache.misses", array="fingerprint").value == 1
        assert reg.counter("csr.derived_cache.hits", array="fingerprint").value == 1
    finally:
        obs.set_registry(prev)


def test_delta_counters_and_seeding():
    prev = obs.set_registry(MetricsRegistry())
    try:
        a = small_matrix()
        a.colind64(), a.coo_rows(), access_profile(a)
        apply_delta(
            a,
            EdgeDelta.new(
                inserts=([2], [0], [1.0]),
                deletes=([0], [1]),
                updates=([1], [0], [5.0]),
            ),
        )
        reg = obs.get_registry()
        assert reg.counter("delta.applied").value == 1
        assert reg.counter("delta.edges", kind="insert").value == 1
        assert reg.counter("delta.edges", kind="delete").value == 1
        assert reg.counter("delta.edges", kind="update").value == 1
        assert reg.counter("delta.rows_touched").value == 3
        assert reg.counter("delta.profile.updated").value == 1
        # All four derived arrays plus the evolved profile were seeded,
        # not rebuilt.
        for key in ("rowptr64", "row_lengths", "colind64", "coo_rows"):
            assert reg.counter("csr.derived_cache.seeded", array=key).value == 1
        assert reg.counter("access_profile.seeded").value == 1
    finally:
        obs.set_registry(prev)


# ----------------------------------------------------------------------
# Memo-key sharing and targeted invalidation
# ----------------------------------------------------------------------


def test_delta_built_matrix_shares_memo_with_scratch_build():
    """The estimate memo is keyed on content: a scratch rebuild of a
    delta-applied matrix must *hit* entries the delta version created."""
    from repro.core.crc import CRCSpMM

    prev = obs.set_registry(MetricsRegistry())
    try:
        clear_estimate_memo()
        a = small_matrix()
        out = apply_delta(a, EdgeDelta.new(deletes=([0], [1])))
        ref = csr_from_coo([0, 1, 3, 3, 3], [3, 0, 0, 2, 4],
                           [2.0, 3.0, 4.0, 5.0, 6.0], shape=(4, 5))
        kernel = CRCSpMM()
        kernel.estimate(out, 32, GTX_1080TI)
        kernel.estimate(ref, 32, GTX_1080TI)  # same content -> memo hit
        reg = obs.get_registry()
        assert reg.counter(
            "kernel.estimate_memo.hits", kernel=kernel.name, gpu=GTX_1080TI.name
        ).value == 1
    finally:
        clear_estimate_memo()
        obs.set_registry(prev)


def test_invalidate_matrix_caches_is_targeted():
    from repro.core.crc import CRCSpMM

    prev = obs.set_registry(MetricsRegistry())
    try:
        clear_estimate_memo()
        a = power_law(300, 1800, seed=5)
        b = power_law(300, 1800, seed=6)
        kernel = CRCSpMM()
        kernel.estimate(a, 32, GTX_1080TI)
        kernel.estimate(b, 32, GTX_1080TI)
        dropped = invalidate_matrix_caches(a)
        assert dropped["estimate_memo"] == 1
        # b's entry survived: a re-estimate is a memo hit, not a rebuild.
        kernel.estimate(b, 32, GTX_1080TI)
        reg = obs.get_registry()
        assert reg.counter(
            "kernel.estimate_memo.hits", kernel=kernel.name, gpu=GTX_1080TI.name
        ).value == 1
        assert reg.counter("delta.invalidated", store="estimate_memo").value == 1
    finally:
        clear_estimate_memo()
        obs.set_registry(prev)


# ----------------------------------------------------------------------
# Threshold-gated re-tuning
# ----------------------------------------------------------------------


def test_rekey_carries_over_below_thresholds():
    prev = obs.set_registry(MetricsRegistry())
    try:
        a = power_law(400, 3200, seed=11)
        access_profile(a)
        tuned = TunedSpMM()
        b = np.ones((a.ncols, 16), dtype=np.float32)
        tuned.run(a, b)
        rng = np.random.default_rng(3)
        i = rng.choice(a.nnz, size=4, replace=False)
        out = apply_delta(
            a, EdgeDelta.new(deletes=(a.coo_rows()[i], a.colind64()[i]))
        )
        assert tuned.rekey_after_delta(a, out) is False
        reg = obs.get_registry()
        assert reg.counter("tuning.tuned_spmm.carryovers").value == 1
        # The carried-over key serves without re-tuning.
        tuned.run(out, b)
        assert reg.counter(
            "tuning.tuned_spmm.lookups", cached=True, gpu=GTX_1080TI.name
        ).value >= 1
    finally:
        obs.set_registry(prev)


def test_rekey_reselects_on_structural_break():
    prev = obs.set_registry(MetricsRegistry())
    try:
        a = power_law(200, 1200, seed=13)
        tuned = TunedSpMM()
        b = np.ones((a.ncols, 16), dtype=np.float32)
        tuned.run(a, b)
        # Grow a hub: pile a large batch of edges onto one row.
        cols_present = set(a.colind64()[a.coo_rows() == 0].tolist())
        new_cols = [c for c in range(a.ncols) if c not in cols_present][:150]
        hub = EdgeDelta.new(
            inserts=(
                np.zeros(len(new_cols), dtype=np.int64),
                np.array(new_cols),
                np.ones(len(new_cols), dtype=np.float32),
            )
        )
        out = apply_delta(a, hub)
        drift = structural_drift(a, out)
        assert drift.max_over_mean_ratio > 1.0
        assert tuned.rekey_after_delta(
            a, out, RetuneThresholds(gini_delta=1e-6, max_over_mean_ratio=1.0001)
        ) is True
        reg = obs.get_registry()
        total = sum(
            s["value"]
            for s in reg.snapshot()
            if s["name"] == "tuning.tuned_spmm.reselections"
        )
        assert total == 1
        # Stale choices are gone: next run re-tunes under the new key.
        assert all(k[0] != a.fingerprint() for k in tuned._choice)
    finally:
        obs.set_registry(prev)


def test_rekey_is_noop_for_identical_fingerprints():
    tuned = TunedSpMM()
    a = small_matrix()
    assert tuned.rekey_after_delta(a, a) is False

"""Tests for the random-graph generators."""

import numpy as np
import pytest

from repro.sparse import banded_random, erdos_renyi_nnz, power_law, rmat, uniform_random


class TestUniformRandom:
    def test_shape_and_nnz(self):
        g = uniform_random(m=1000, nnz=10_000, seed=0)
        assert g.shape == (1000, 1000)
        # Duplicates merge, so realized nnz is close to but <= requested.
        assert 9_500 <= g.nnz <= 10_000

    def test_deterministic(self):
        a = uniform_random(500, 4000, seed=3)
        b = uniform_random(500, 4000, seed=3)
        assert a.allclose(b)

    def test_seed_changes_graph(self):
        a = uniform_random(500, 4000, seed=3)
        b = uniform_random(500, 4000, seed=4)
        assert not (a.nnz == b.nnz and a.pattern_equal(b))

    def test_rectangular(self):
        g = uniform_random(m=100, nnz=500, k=30, seed=0)
        assert g.shape == (100, 30)
        assert g.colind.max() < 30

    def test_weighted(self):
        g = uniform_random(200, 1000, seed=0, weighted=True)
        assert g.values.min() >= 0.5 and g.values.max() <= 1.5
        assert np.unique(g.values).size > 10

    def test_unweighted_ones(self):
        g = uniform_random(200, 1000, seed=0)
        assert np.all(g.values == 1.0)


class TestPowerLaw:
    def test_heavy_tail(self):
        g = power_law(2000, 20_000, seed=1)
        lengths = np.sort(g.row_lengths())[::-1]
        # A heavy-tailed distribution concentrates edges in hub rows.
        top_share = lengths[:20].sum() / g.nnz
        assert top_share > 0.15
        # ...much more so than a uniform graph.
        u = uniform_random(2000, 20_000, seed=1)
        u_top = np.sort(u.row_lengths())[::-1][:20].sum() / u.nnz
        assert top_share > 2 * u_top

    def test_column_indices_in_range(self):
        g = power_law(500, 5000, seed=2)
        assert g.colind.min() >= 0 and g.colind.max() < 500


class TestRmat:
    def test_size(self):
        g = rmat(scale=10, edge_factor=8, seed=0)
        assert g.nrows == 1024
        assert g.nnz <= 8 * 1024

    def test_clustering_vs_uniform(self):
        # RMAT's self-similar structure concentrates nonzeros in the
        # low-index quadrant given a > b,c,d.
        g = rmat(scale=10, edge_factor=8, seed=0)
        low = (g.colind < 256).sum() / g.nnz
        assert low > 0.3  # uniform would give 0.25

    def test_deterministic(self):
        assert rmat(8, 4, seed=5).allclose(rmat(8, 4, seed=5))


class TestBanded:
    def test_band_respected(self):
        g = banded_random(1000, 8000, bandwidth=5, seed=0)
        rows = np.repeat(np.arange(g.nrows), g.row_lengths())
        assert np.all(np.abs(rows - g.colind) <= 5)

    def test_square(self):
        g = banded_random(100, 300, bandwidth=2, seed=0)
        assert g.shape == (100, 100)


class TestErdosRenyi:
    def test_exact_nnz(self):
        g = erdos_renyi_nnz(40, 50, 123, seed=0)
        assert g.nnz == 123

    def test_capacity_check(self):
        with pytest.raises(ValueError):
            erdos_renyi_nnz(3, 3, 10, seed=0)

"""API-surface tests: exports, device presets, and cross-module wiring."""

import numpy as np
import pytest

import repro
from repro.gpusim import GTX_1080TI, KNOWN_GPUS, RTX_2080


class TestPackageExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module", ["sparse", "core", "gpusim", "gnn", "bench", "datasets"])
    def test_subpackage_all_resolve(self, module):
        import importlib

        mod = importlib.import_module(f"repro.{module}")
        for name in mod.__all__:
            assert getattr(mod, name, None) is not None, f"repro.{module}.{name}"

    def test_quickstart_docstring_runs(self):
        # The package docstring's quickstart must stay executable.
        from repro import GESpMM, uniform_random

        a = uniform_random(m=512, nnz=4096, seed=1)
        b = np.random.default_rng(0).random((a.ncols, 128), dtype=np.float32)
        kernel = GESpMM()
        c = kernel.run(a, b)
        t = kernel.estimate(a, 128, GTX_1080TI)
        assert c.shape == (512, 128) and t.time_s > 0


class TestDevicePresets:
    def test_known_gpus(self):
        assert set(KNOWN_GPUS) == {"GTX 1080Ti", "RTX 2080"}

    def test_published_specs(self):
        # Section V-A3 of the paper.
        assert GTX_1080TI.n_sms == 28
        assert GTX_1080TI.clock_ghz == pytest.approx(1.481)
        assert GTX_1080TI.dram_bandwidth == pytest.approx(484e9)
        assert GTX_1080TI.dram_capacity == 11 * 1024**3
        assert RTX_2080.n_sms == 46
        assert RTX_2080.clock_ghz == pytest.approx(1.515)
        assert RTX_2080.dram_bandwidth == pytest.approx(448e9)
        assert RTX_2080.dram_capacity == 8 * 1024**3

    def test_l1_policy_split(self):
        assert not GTX_1080TI.l1_caches_global  # Pascal
        assert RTX_2080.l1_caches_global  # Turing

    def test_scaled_override(self):
        variant = GTX_1080TI.scaled(n_sms=56, name="2x1080Ti")
        assert variant.n_sms == 56 and variant.name == "2x1080Ti"
        assert GTX_1080TI.n_sms == 28  # original untouched

    def test_derived_quantities(self):
        assert GTX_1080TI.peak_flops == pytest.approx(28 * 128 * 2 * 1.481e9)
        assert GTX_1080TI.max_threads_per_sm == 2048
        assert GTX_1080TI.shared_bandwidth > 0

    def test_warp_size_is_32_everywhere(self):
        # The paper's techniques assume warp_size == 32 (tile size, CWM
        # column spacing, the N <= 32 dispatch rule).
        for gpu in KNOWN_GPUS.values():
            assert gpu.warp_size == 32


class TestCrossModuleWiring:
    def test_backend_uses_gespmm_estimates(self):
        """The DGL backend's GE-SpMM cost must be the kernel's estimate."""
        from repro.core import GESpMM
        from repro.gnn import DGLBackend, GraphPair, SimDevice, Tensor
        from repro.sparse import uniform_random

        g = GraphPair(uniform_random(2000, 20_000, seed=1))
        x = Tensor(np.ones((2000, 64), dtype=np.float32))
        device = SimDevice(GTX_1080TI)
        DGLBackend(device, use_gespmm=True).aggregate(g, x, op="sum")
        recorded = device.profile().time("SpMM")
        expected = GESpMM().estimate(g.adj, 64, GTX_1080TI).time_s
        assert recorded == pytest.approx(expected, rel=1e-9)

    def test_profiler_consistent_with_estimate(self):
        from repro.core import GESpMM
        from repro.gpusim import profile_kernel
        from repro.sparse import uniform_random

        a = uniform_random(2000, 20_000, seed=1)
        k = GESpMM()
        rep = profile_kernel(k, a, 128, RTX_2080)
        assert rep.time_s == pytest.approx(k.estimate(a, 128, RTX_2080).time_s)
        assert rep.gpu == RTX_2080.name

    def test_snap_names_loadable_from_cli_path(self):
        from repro.datasets import catalog_names, load_graph

        name = catalog_names()[0]
        g = load_graph(name, max_nnz=10_000)
        assert g.nnz > 0

"""Span tracer: nesting, exception safety, export round-trips."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.trace import SpanRecord, Tracer


@pytest.fixture
def clock():
    """Deterministic 1ms-per-call clock."""

    class Tick:
        def __init__(self):
            self.t = 0.0

        def __call__(self):
            self.t += 0.001
            return self.t

    return Tick()


@pytest.fixture
def tracer(clock):
    t = Tracer(clock=clock)
    prev = obs.set_tracer(t)
    yield t
    obs.set_tracer(prev)


def test_span_is_noop_without_tracer():
    assert obs.get_tracer() is None
    with obs.span("anything", x=1) as s:
        assert s is None
    obs.add_sim_time(1.0)  # must not raise
    obs.event("nothing")  # must not raise


def test_spans_nest_with_parent_and_depth(tracer):
    with obs.span("outer", a=1):
        with obs.span("inner"):
            with obs.span("leaf"):
                pass
        with obs.span("sibling"):
            pass
    outer, inner, leaf, sibling = tracer.records
    assert [r.name for r in tracer.records] == ["outer", "inner", "leaf", "sibling"]
    assert outer.parent is None and outer.depth == 0
    assert inner.parent == outer.index and inner.depth == 1
    assert leaf.parent == inner.index and leaf.depth == 2
    assert sibling.parent == outer.index and sibling.depth == 1
    assert tracer.open_depth == 0
    assert all(r.end_s is not None for r in tracer.records)
    assert outer.duration_s >= inner.duration_s > 0


def test_spans_close_and_unwind_under_exceptions(tracer):
    with pytest.raises(ValueError):
        with obs.span("outer"):
            with obs.span("inner"):
                raise ValueError("boom")
    outer, inner = tracer.records
    assert tracer.open_depth == 0  # nothing leaked on the stack
    assert inner.status == "error" and inner.end_s is not None
    assert outer.status == "error" and outer.end_s is not None
    # The tracer is still usable afterwards.
    with obs.span("after"):
        pass
    assert tracer.records[-1].name == "after"
    assert tracer.records[-1].status == "ok"
    assert tracer.records[-1].depth == 0


def test_sim_time_attributed_to_all_open_spans(tracer):
    with obs.span("epoch"):
        with obs.span("layer0"):
            obs.add_sim_time(0.5)
        with obs.span("layer1"):
            obs.add_sim_time(0.25)
    epoch, layer0, layer1 = tracer.records
    assert layer0.sim_time_s == pytest.approx(0.5)
    assert layer1.sim_time_s == pytest.approx(0.25)
    assert epoch.sim_time_s == pytest.approx(0.75)  # rolls up to ancestors


def test_late_attrs_and_events(tracer):
    with obs.span("tune", n=128) as s:
        s.attrs["best_cf"] = 2
        obs.event("candidate", cf=4)
    rec = tracer.records[0]
    assert rec.attrs == {"n": 128, "best_cf": 2}
    assert rec.events[0]["name"] == "candidate"
    assert rec.events[0]["attrs"] == {"cf": 4}


def test_jsonl_export_parses_line_per_span(tracer):
    with obs.span("a", k="v"):
        with obs.span("b"):
            obs.add_sim_time(0.001)
    lines = tracer.to_jsonl().splitlines()
    assert len(lines) == 2
    objs = [json.loads(l) for l in lines]
    assert objs[0]["name"] == "a" and objs[0]["attrs"] == {"k": "v"}
    assert objs[1]["parent"] == 0
    assert objs[1]["sim_time_s"] == pytest.approx(0.001)


def test_chrome_trace_round_trips_through_json(tracer):
    with obs.span("outer", kernel="GE-SpMM"):
        obs.event("marker", note="hi")
        with obs.span("inner"):
            obs.add_sim_time(0.002)
    doc = json.loads(json.dumps(tracer.to_chrome()))
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert [e["name"] for e in complete] == ["outer", "inner"]
    assert [e["name"] for e in instants] == ["marker"]
    for e in complete:
        assert e["ts"] >= 0 and e["dur"] >= 0  # microseconds
        assert "sim_time_ms" in e["args"]
    assert complete[0]["args"]["kernel"] == "GE-SpMM"
    assert complete[1]["args"]["sim_time_ms"] == pytest.approx(2.0)


def test_write_selects_format_by_suffix(tracer, tmp_path):
    with obs.span("x"):
        pass
    chrome = tracer.write(tmp_path / "t.json")
    jsonl = tracer.write(tmp_path / "t.jsonl")
    assert "traceEvents" in json.loads(chrome.read_text())
    assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "x"


def test_write_explicit_fmt_overrides_suffix(tracer, tmp_path):
    with obs.span("x"):
        pass
    jsonl = tracer.write(tmp_path / "spans.trace", fmt="jsonl")
    assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "x"
    chrome = tracer.write(tmp_path / "spans.dump", fmt="chrome")
    assert "traceEvents" in json.loads(chrome.read_text())


def test_write_unrecognized_suffix_raises(tracer, tmp_path):
    with obs.span("x"):
        pass
    # no more silent Chrome output into a .txt nobody can open
    with pytest.raises(ValueError, match="suffix"):
        tracer.write(tmp_path / "trace.txt")
    assert not (tmp_path / "trace.txt").exists()
    with pytest.raises(ValueError, match="format"):
        tracer.write(tmp_path / "t.json", fmt="protobuf")


def test_chrome_export_keeps_error_status(tracer):
    """A nested unwind must survive into the Chrome export: error spans
    keep ``status: "error"`` in args and valid (non-negative) ts/dur."""
    with pytest.raises(RuntimeError):
        with obs.span("outer"):
            with obs.span("inner"):
                raise RuntimeError("boom")
    with obs.span("after"):
        pass
    doc = json.loads(json.dumps(tracer.to_chrome()))
    complete = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    assert complete["outer"]["args"]["status"] == "error"
    assert complete["inner"]["args"]["status"] == "error"
    assert "status" not in complete["after"]["args"]  # ok spans stay clean
    for e in complete.values():
        assert e["ts"] >= 0 and e["dur"] > 0
    # the error'd inner span still nests inside outer on the timeline
    assert complete["inner"]["ts"] >= complete["outer"]["ts"]
    assert (complete["inner"]["ts"] + complete["inner"]["dur"]
            <= complete["outer"]["ts"] + complete["outer"]["dur"])


def test_tracing_context_restores_previous_tracer():
    before = obs.get_tracer()
    with obs.tracing() as t:
        assert obs.get_tracer() is t
        with obs.span("inside"):
            pass
    assert obs.get_tracer() is before
    assert t.records[0].name == "inside"


def test_end_without_open_span_raises():
    t = Tracer()
    with pytest.raises(RuntimeError):
        t.end()


def test_span_record_duration_zero_while_open():
    rec = SpanRecord(name="open", index=0, parent=None, depth=0, start_s=1.0)
    assert rec.duration_s == 0.0

"""Autograd engine tests: numerical gradient checks for every operator."""

import numpy as np
import pytest

from repro.gnn import SimDevice, Tensor
from repro.gnn import functional as F
from repro.gnn.tensor import Parameter, glorot
from repro.gpusim import GTX_1080TI


@pytest.fixture
def device():
    return SimDevice(GTX_1080TI)


def numerical_grad(fn, x, eps=1e-3):
    """Central-difference gradient of scalar fn w.r.t. array x."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = fn()
        x[idx] = orig - eps
        lo = fn()
        x[idx] = orig
        g[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


class TestTensorBasics:
    def test_scalar_backward(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        t.backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_nonscalar_backward_requires_grad_arg(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()

    def test_grad_accumulates(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        t.accumulate_grad(np.ones(3))
        t.accumulate_grad(np.ones(3))
        np.testing.assert_allclose(t.grad, [2, 2, 2])
        t.zero_grad()
        assert t.grad is None

    def test_grad_shape_check(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        with pytest.raises(ValueError):
            t.accumulate_grad(np.ones(4))

    def test_detach(self):
        t = Tensor(np.ones(2), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_parameter_requires_grad(self):
        p = Parameter(np.ones(2))
        assert p.requires_grad

    def test_glorot_bounds(self, rng):
        w = glorot((64, 32), rng)
        limit = np.sqrt(6 / 96)
        assert np.abs(w).max() <= limit
        assert w.dtype == np.float32

    def test_diamond_graph_single_backward(self, device):
        # y = relu(x) used twice: gradient must accumulate once per use,
        # and each node's backward must run exactly once (topological).
        x = Tensor(np.array([[1.0, -1.0]]), requires_grad=True)
        h = F.relu(x, device)
        s = F.add_bias(h, Tensor(np.zeros(2), requires_grad=False), device)
        total = F.concat(h, s, device)
        loss = F.nll_loss(F.log_softmax(total, device), np.array([0]), device)
        loss.backward()
        assert x.grad is not None and np.isfinite(x.grad).all()


class TestOperatorGradients:
    def test_matmul_grads(self, device, rng):
        x = Tensor(rng.standard_normal((4, 5)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((5, 3)).astype(np.float32), requires_grad=True)
        out = F.matmul(x, w, device)
        g = rng.standard_normal(out.shape).astype(np.float32)
        out.backward(g)
        np.testing.assert_allclose(x.grad, g @ w.data.T, rtol=1e-4)
        np.testing.assert_allclose(w.grad, x.data.T @ g, rtol=1e-4)

    def test_matmul_shape_check(self, device):
        with pytest.raises(ValueError):
            F.matmul(Tensor(np.ones((2, 3))), Tensor(np.ones((4, 2))), device)

    @pytest.mark.parametrize("op_name", ["relu", "log_softmax"])
    def test_elementwise_numerical_grad(self, device, rng, op_name):
        data = rng.standard_normal((3, 4)).astype(np.float32) + 0.1
        op = getattr(F, op_name)
        g_out = rng.standard_normal((3, 4)).astype(np.float32)

        def forward_scalar():
            t = Tensor(data)
            return float((op(t, device).data * g_out).sum())

        t = Tensor(data.copy(), requires_grad=True)
        out = op(t, device)
        out.backward(g_out)
        num = numerical_grad(forward_scalar, data)
        np.testing.assert_allclose(t.grad, num, rtol=2e-2, atol=2e-3)

    def test_bias_grads(self, device, rng):
        x = Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal(3).astype(np.float32), requires_grad=True)
        out = F.add_bias(x, b, device)
        g = rng.standard_normal((4, 3)).astype(np.float32)
        out.backward(g)
        np.testing.assert_allclose(x.grad, g)
        np.testing.assert_allclose(b.grad, g.sum(axis=0), rtol=1e-5)

    def test_nll_loss_grad(self, device, rng):
        data = rng.standard_normal((5, 3)).astype(np.float32)
        labels = np.array([0, 2, 1, 0, 2])
        mask = np.array([True, True, False, True, False])

        def forward_scalar():
            t = Tensor(data)
            lp = F.log_softmax(t, device)
            return float(F.nll_loss(lp, labels, device, mask=mask).data)

        t = Tensor(data.copy(), requires_grad=True)
        loss = F.nll_loss(F.log_softmax(t, device), labels, device, mask=mask)
        loss.backward()
        num = numerical_grad(forward_scalar, data)
        np.testing.assert_allclose(t.grad, num, rtol=2e-2, atol=2e-3)

    def test_nll_empty_mask_rejected(self, device):
        lp = Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            F.nll_loss(lp, np.array([0, 1]), device, mask=np.zeros(2, dtype=bool))

    def test_dropout_training_scaling(self, device, rng):
        x = Tensor(np.ones((200, 50), dtype=np.float32), requires_grad=True)
        out = F.dropout(x, 0.4, device, training=True, rng=rng)
        kept = out.data != 0
        assert 0.5 < kept.mean() < 0.7  # ~60% kept
        np.testing.assert_allclose(out.data[kept], 1 / 0.6, rtol=1e-5)
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(x.grad[kept], 1 / 0.6, rtol=1e-5)
        assert np.all(x.grad[~kept] == 0)

    def test_dropout_eval_identity(self, device, rng):
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        out = F.dropout(x, 0.9, device, training=False, rng=rng)
        assert out is x

    def test_dropout_invalid_p(self, device, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(2)), 1.5, device, training=True, rng=rng)

    def test_concat_grads(self, device, rng):
        a = Tensor(rng.standard_normal((3, 2)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)
        out = F.concat(a, b, device)
        assert out.shape == (3, 6)
        g = rng.standard_normal((3, 6)).astype(np.float32)
        out.backward(g)
        np.testing.assert_allclose(a.grad, g[:, :2])
        np.testing.assert_allclose(b.grad, g[:, 2:])

    def test_device_time_recorded_both_directions(self, device, rng):
        x = Tensor(rng.standard_normal((8, 8)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((8, 8)).astype(np.float32), requires_grad=True)
        out = F.matmul(x, w, device)
        fwd_calls = device.profile().calls.get("GEMM", 0)
        out.backward(np.ones_like(out.data))
        assert device.profile().calls["GEMM"] == fwd_calls + 2  # dX and dW

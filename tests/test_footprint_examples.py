"""Tests for the memory-footprint model, plus example/CLI smoke tests."""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.gpusim import (
    DeviceOutOfMemory,
    GTX_1080TI,
    RTX_2080,
    check_fits,
    fits,
    spmm_footprint,
)
from repro.sparse import uniform_random

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


class TestFootprint:
    def test_components_sum(self):
        a = uniform_random(1000, 10_000, seed=0)
        fp = spmm_footprint(a, 64)
        assert fp.total == fp.sparse_bytes + fp.dense_in_bytes + fp.dense_out_bytes
        assert fp.sparse_bytes == 4 * 1001 + 8 * a.nnz
        assert fp.dense_in_bytes == 4 * 1000 * 64

    def test_workspace_factor(self):
        a = uniform_random(1000, 10_000, seed=0)
        assert spmm_footprint(a, 64, workspace_factor=1.0).workspace_bytes == 8 * a.nnz

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            spmm_footprint(uniform_random(10, 20, seed=0), -1)

    def test_small_fits_everywhere(self):
        a = uniform_random(1000, 10_000, seed=0)
        assert fits(a, 512, GTX_1080TI) and fits(a, 512, RTX_2080)
        assert check_fits(a, 512, RTX_2080).total < 2**30

    def test_giant_ooms_small_card_first(self):
        class Shell:
            nrows = ncols = 4_847_571  # soc-LiveJournal1
            nnz = 68_993_773

        assert not fits(Shell(), 512, RTX_2080)
        with pytest.raises(DeviceOutOfMemory) as err:
            check_fits(Shell(), 512, RTX_2080)
        assert "RTX 2080" in str(err.value)
        # ...but a narrow feature width fits even the giant.
        assert fits(Shell(), 16, GTX_1080TI)

    def test_as_dict(self):
        a = uniform_random(100, 500, seed=0)
        d = spmm_footprint(a, 8).as_dict()
        assert set(d) == {"sparse", "dense_in", "dense_out", "workspace", "total"}


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "kernel_profiling.py", "custom_reduce_pooling.py",
     "snap_sweep.py", "sampled_training.py", "gnn_node_classification.py",
     "gat_attention.py"],
)
def test_example_runs(script, monkeypatch, capsys):
    """Every shipped example must execute end to end."""
    monkeypatch.setattr(sys, "argv", [script, "2"])  # small arg where used
    # Shrink the heavy examples' work via their module-level entry points:
    ns = runpy.run_path(str(EXAMPLES / script), run_name="not_main")
    main = ns["main"]
    if script == "snap_sweep.py":
        main(2)
    elif script == "gnn_node_classification.py":
        # full example trains 2x30 epochs; smoke-run is acceptable here
        main()
    else:
        main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report

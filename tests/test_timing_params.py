"""Tests for TimingParams overrides and the estimate plumbing around them."""

import pytest

from repro.core import GESpMM
from repro.gpusim import GTX_1080TI, TimingParams
from repro.sparse import uniform_random


@pytest.fixture(scope="module")
def graph():
    return uniform_random(20_000, 200_000, seed=6)


class TestParamOverrides:
    def test_custom_params_change_result(self, graph):
        k = GESpMM()
        default = k.estimate(graph, 256, GTX_1080TI).time_s
        slow_issue = k.estimate(
            graph, 256, GTX_1080TI, params=TimingParams(ldst_issue_cycles=64.0)
        ).time_s
        assert slow_issue > default

    def test_param_cache_keyed_by_params(self, graph):
        k = GESpMM()
        p = TimingParams(ldst_issue_cycles=64.0)
        t_default = k.estimate(graph, 256, GTX_1080TI)
        t_custom = k.estimate(graph, 256, GTX_1080TI, params=p)
        assert t_custom is not t_default
        assert k.estimate(graph, 256, GTX_1080TI, params=p) is t_custom

    def test_stronger_ilp_saturation_slows_cwm(self, graph):
        from repro.core import CWMSpMM

        k1, k2 = CWMSpMM(2), CWMSpMM(2)
        default = k1.estimate(graph, 512, GTX_1080TI).time_s
        capped = k2.estimate(
            graph, 512, GTX_1080TI, params=TimingParams(mlp_sat=1.0)
        ).time_s
        assert capped > default  # ILP benefit removed

    def test_local_hit_rate_bounds_dram(self, graph):
        k1, k2 = GESpMM(), GESpMM()
        hot = k1.estimate(graph, 512, GTX_1080TI, params=TimingParams(l2_local_hit=1.0))
        cold = k2.estimate(graph, 512, GTX_1080TI, params=TimingParams(l2_local_hit=0.0))
        assert cold.breakdown["dram"] > hot.breakdown["dram"]

    def test_default_params_are_shared_constants(self):
        # Two fresh instances must agree: constants are not per-kernel.
        assert TimingParams() == TimingParams()

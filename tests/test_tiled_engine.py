"""Parity and contract suite for the column-tiled, workspace-pooled
executor.

Locks the tiling contract in ``repro.sparse.segment``'s docstring: the
tiled path must be **bit-identical** to the untiled engine body for
every tile geometry (T=1, T >= N, N % T != 0), every reduceat-capable
reduction (add / maximum / minimum, plus mean's finalize), and every
edge shape (empty rows, empty matrices, zero-width operands) — tiles
never split a row's reduction, so even float32 addition associates
identically.  Also covers the workspace pool (reuse/alloc counters,
free-list cap, clearing), the multi-operand batching primitive (byte
parity with per-operand calls, one gather's worth of allocations), the
``_sparse_nonzero`` pad path that keeps non-multiple-of-8 widths on the
uint64 prefilter, and the fused ``segment_max_with_argmax`` traversal
``aggregate_max`` runs on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.semiring import MAX_TIMES, MEAN_TIMES, MIN_TIMES, PLUS_TIMES
from repro.sparse import (
    clear_workspace_pool,
    csr_from_coo,
    power_law,
    segment_argmax,
    segment_max_with_argmax,
    segment_spmm_like,
    segment_spmm_like_multi,
    set_tile_width,
    set_tiling,
    tile_width_for,
    tiling_enabled,
    uniform_random,
    use_tile_width,
    use_tiling,
    workspace_stats,
)
from repro.sparse.ops import reference_spmm_like_multi
from repro.sparse.segment import _POOL, _sparse_nonzero

SEMIRINGS = {
    "plus": PLUS_TIMES,
    "max": MAX_TIMES,
    "min": MIN_TIMES,
    "mean": MEAN_TIMES,
}


@st.composite
def csr_matrices(draw, max_m=30, max_k=25, max_nnz=150):
    """Random CSR with deliberate empty rows (same shape family as
    ``test_segment_engine.csr_matrices``)."""
    m = draw(st.integers(1, max_m))
    k = draw(st.integers(1, max_k))
    nnz = draw(st.integers(0, min(max_nnz, m * k)))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    active = max(1, m // 2)
    rows = rng.integers(0, active, size=nnz)
    cols = rng.integers(0, k, size=nnz)
    vals = rng.standard_normal(nnz).astype(np.float32)
    return csr_from_coo(rows, cols, vals, shape=(m, k), sum_duplicates=True)


def _dense_operand(a, n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((a.ncols, n)).astype(np.float32)


# ----------------------------------------------------------------------
# tiled vs. untiled bit parity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SEMIRINGS))
@pytest.mark.parametrize("tile", [1, 7, 64])  # 1, N%7!=0 mostly, T>=N mostly
@given(a=csr_matrices(), n=st.integers(1, 40), seed=st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_tiled_bit_identical_to_untiled(name, tile, a, n, seed):
    """Bit parity for every reduction: tiles never split a row segment,
    so even the float32 add accumulates in the identical order."""
    sr = SEMIRINGS[name]
    b = _dense_operand(a, n, seed)
    with use_tiling(False):
        want = segment_spmm_like(a, b, sr)
    with use_tile_width(tile):
        got = segment_spmm_like(a, b, sr)
    np.testing.assert_array_equal(got, want)
    # Adaptive width too (covers T == N for these small operands).
    got_auto = segment_spmm_like(a, b, sr)
    np.testing.assert_array_equal(got_auto, want)


@pytest.mark.parametrize("name", sorted(SEMIRINGS))
def test_tiled_parity_on_power_law(name):
    """Fast tier-1 slice of the wide-N benchmark geometry: a power-law
    graph at N=100 (not a multiple of the tile width or of 8)."""
    sr = SEMIRINGS[name]
    a = power_law(300, 4000, seed=7, weighted=True)
    b = _dense_operand(a, 100, seed=3)
    with use_tiling(False):
        want = segment_spmm_like(a, b, sr)
    for tile in (1, 8, 33, 100, 512, None):
        with use_tile_width(tile):
            np.testing.assert_array_equal(segment_spmm_like(a, b, sr), want)


def test_tiled_empty_rows_matrices_and_widths():
    empty_rows = csr_from_coo([], [], [], shape=(5, 4))
    out = segment_spmm_like(empty_rows, np.ones((4, 9), np.float32), PLUS_TIMES)
    np.testing.assert_array_equal(out, np.zeros((5, 9), np.float32))
    out = segment_spmm_like(empty_rows, np.ones((4, 9), np.float32), MAX_TIMES)
    np.testing.assert_array_equal(out, np.full((5, 9), -np.inf, np.float32))
    degenerate = csr_from_coo([], [], [], shape=(0, 0))
    assert segment_spmm_like(degenerate, np.ones((0, 3), np.float32), PLUS_TIMES).shape == (0, 3)
    a = uniform_random(6, 12, seed=1, weighted=True)
    assert segment_spmm_like(a, np.zeros((a.ncols, 0), np.float32), PLUS_TIMES).shape == (6, 0)


def test_out_buffer_reused_and_validated():
    a = uniform_random(20, 80, seed=2, weighted=True)
    b = _dense_operand(a, 10, seed=3)
    out = np.empty((a.nrows, 10), dtype=np.float32)
    got = segment_spmm_like(a, b, PLUS_TIMES, out=out)
    assert got is out
    with use_tiling(False):
        np.testing.assert_array_equal(out, segment_spmm_like(a, b, PLUS_TIMES))
    with pytest.raises(ValueError):
        segment_spmm_like(a, b, PLUS_TIMES, out=np.empty((a.nrows, 9), np.float32))
    with pytest.raises(ValueError):
        segment_spmm_like(a, b, PLUS_TIMES, out=np.empty((a.nrows, 10), np.float64))


def test_tiling_toggles_restore_and_report():
    assert tiling_enabled()
    with use_tiling(False):
        assert not tiling_enabled()
    assert tiling_enabled()
    assert set_tiling(False) is True
    assert set_tiling(True) is False
    prev = set_tile_width(24)
    try:
        assert tile_width_for(10_000, 256) == 24
        assert tile_width_for(10_000, 16) == 16  # forced width capped at n
    finally:
        set_tile_width(prev)


def test_tile_width_heuristic_shape():
    # Small problems run untiled (one full-width tile)...
    assert tile_width_for(100, 64) == 64
    # ...large ones tile at a multiple of 8 (argmax prefilter stays
    # applicable), floored at 8, capped at n.
    big = tile_width_for(1_000_000, 4096)
    assert 8 <= big < 4096 and big % 8 == 0
    assert tile_width_for(10**9, 4096) == 8
    assert tile_width_for(0, 0) >= 1


# ----------------------------------------------------------------------
# workspace pool
# ----------------------------------------------------------------------


def test_workspace_pool_reuse_and_counters():
    prev = obs.set_registry(MetricsRegistry())
    clear_workspace_pool()
    try:
        a = power_law(200, 3000, seed=4, weighted=True)
        b = _dense_operand(a, 64, seed=5)
        with use_tile_width(8):
            segment_spmm_like(a, b, PLUS_TIMES)
            reg = obs.get_registry()
            allocs_first = reg.counter("segment.workspace.allocs").value
            assert allocs_first >= 1
            assert reg.gauge("segment.workspace.bytes_peak").value > 0
            segment_spmm_like(a, b, PLUS_TIMES)  # steady state: pool hits only
            assert reg.counter("segment.workspace.allocs").value == allocs_first
            assert reg.counter("segment.workspace.reuses").value >= 1
        stats = workspace_stats()
        assert stats["free_buffers"] >= 1
        assert clear_workspace_pool() == stats["free_buffers"]
        assert workspace_stats()["free_buffers"] == 0
    finally:
        clear_workspace_pool()
        obs.set_registry(prev)


def test_workspace_pool_free_list_capped():
    clear_workspace_pool()
    try:
        bufs = [_POOL.acquire(100 * (i + 1)) for i in range(8)]
        for buf in bufs:
            _POOL.release(buf)
        stats = workspace_stats()
        assert stats["free_buffers"] == _POOL._MAX_FREE
        # Cap policy keeps the largest buffers.
        assert min(b.size for b in _POOL._free) == 100 * 5
    finally:
        clear_workspace_pool()


# ----------------------------------------------------------------------
# multi-operand batching
# ----------------------------------------------------------------------


def test_multi_byte_identical_to_per_operand_loop():
    a = power_law(300, 5000, seed=6, weighted=True)
    bs = [_dense_operand(a, n, seed=n) for n in (3, 17, 64, 100)]
    for sr in (PLUS_TIMES, MAX_TIMES, MEAN_TIMES):
        with use_tile_width(16):
            multi = segment_spmm_like_multi(a, bs, sr)
            loop = [segment_spmm_like(a, b, sr) for b in bs]
        assert len(multi) == len(loop)
        for got, want in zip(multi, loop):
            assert got.tobytes() == want.tobytes()


def test_multi_shares_one_workspace_acquisition():
    """Coalescing K operands must cost one gather's worth of workspace
    allocations (ws + operand-tile buffer), not K."""
    a = power_law(300, 5000, seed=6, weighted=True)
    bs = [_dense_operand(a, 64, seed=n) for n in range(6)]
    prev = obs.set_registry(MetricsRegistry())
    clear_workspace_pool()
    try:
        with use_tile_width(8):
            segment_spmm_like_multi(a, bs, PLUS_TIMES)
        reg = obs.get_registry()
        assert reg.counter("segment.workspace.allocs").value <= 2
        assert reg.counter("segment.multi_calls", operands=len(bs)).value == 1
    finally:
        clear_workspace_pool()
        obs.set_registry(prev)


def test_multi_mixed_widths_empty_and_outs():
    a = uniform_random(25, 120, seed=8, weighted=True)
    bs = [_dense_operand(a, 5, seed=1), np.zeros((a.ncols, 0), np.float32)]
    outs = [np.empty((a.nrows, 5), np.float32), np.empty((a.nrows, 0), np.float32)]
    got = segment_spmm_like_multi(a, bs, PLUS_TIMES, outs=outs)
    assert got[0] is outs[0] and got[1] is outs[1]
    np.testing.assert_array_equal(got[0], segment_spmm_like(a, bs[0], PLUS_TIMES))
    assert segment_spmm_like_multi(a, [], PLUS_TIMES) == []
    with pytest.raises(ValueError):
        segment_spmm_like_multi(a, bs, PLUS_TIMES, outs=outs[:1])


def test_multi_untiled_fallback_matches():
    a = uniform_random(25, 120, seed=9, weighted=True)
    bs = [_dense_operand(a, n, seed=n) for n in (4, 11)]
    with use_tiling(False):
        off = segment_spmm_like_multi(a, bs, PLUS_TIMES)
    on = segment_spmm_like_multi(a, bs, PLUS_TIMES)
    for got, want in zip(on, off):
        np.testing.assert_array_equal(got, want)


def test_reference_multi_dispatch_matches_reference():
    from repro.sparse.ops import reference_spmm_like
    from repro.sparse.segment import use_segment_engine

    a = uniform_random(30, 150, seed=10, weighted=True)
    bs = [_dense_operand(a, n, seed=n) for n in (6, 20)]
    engine = reference_spmm_like_multi(a, bs, MAX_TIMES)
    with use_segment_engine(False):
        oracle = reference_spmm_like_multi(a, bs, MAX_TIMES)
    for got, want, b in zip(engine, oracle, bs):
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(got, reference_spmm_like(a, b, MAX_TIMES))


# ----------------------------------------------------------------------
# _sparse_nonzero pad path (satellite: widths like 100 keep the
# uint64 prefilter instead of silently falling back to np.nonzero)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [1, 5, 100])
def test_sparse_nonzero_pads_unaligned_widths(n):
    prev = obs.set_registry(MetricsRegistry())
    try:
        rng = np.random.default_rng(n)
        hits = rng.random((40, n)) < 0.05
        got = _sparse_nonzero(np.ascontiguousarray(hits))
        want = np.nonzero(hits)
        np.testing.assert_array_equal(got[0], want[0])
        np.testing.assert_array_equal(got[1], want[1])
        reg = obs.get_registry()
        assert reg.counter("segment.sparse_nonzero.pads").value == 1
        assert reg.counter("segment.sparse_nonzero.fallbacks").value == 0
    finally:
        obs.set_registry(prev)


def test_sparse_nonzero_aligned_noncontiguous_and_degenerate():
    prev = obs.set_registry(MetricsRegistry())
    try:
        reg = obs.get_registry()
        rng = np.random.default_rng(0)
        aligned = rng.random((30, 16)) < 0.1
        got = _sparse_nonzero(np.ascontiguousarray(aligned))
        np.testing.assert_array_equal(got[0], np.nonzero(aligned)[0])
        assert reg.counter("segment.sparse_nonzero.pads").value == 0
        # Non-contiguous slice of an aligned mask: padded copy, same result.
        wide = np.ascontiguousarray(rng.random((30, 32)) < 0.1)
        view = wide[:, ::2]
        got = _sparse_nonzero(view)
        np.testing.assert_array_equal(got[1], np.nonzero(view)[1])
        assert reg.counter("segment.sparse_nonzero.pads").value == 1
        # Degenerate (empty) input: plain np.nonzero, counted as fallback.
        empty = np.zeros((0, 8), dtype=np.bool_)
        assert _sparse_nonzero(empty)[0].size == 0
        assert reg.counter("segment.sparse_nonzero.fallbacks").value == 1
    finally:
        obs.set_registry(prev)


def test_argmax_unaligned_width_matches_aligned_semantics():
    """Width 100 (not a multiple of 8) must produce the same winners the
    plain np.nonzero scan would — the pad can never leak columns."""
    a = uniform_random(40, 300, seed=13, weighted=True)
    rng = np.random.default_rng(14)
    contributions = rng.integers(-3, 4, size=(a.nnz, 100)).astype(np.float32)
    am = segment_argmax(a, contributions)
    assert am.shape == (a.nrows, 100)
    # Cross-check a few columns against the 8-aligned single-column path.
    for j in (0, 37, 99):
        single = segment_argmax(a, np.ascontiguousarray(
            np.repeat(contributions[:, j : j + 1], 8, axis=1)))
        np.testing.assert_array_equal(am[:, j], single[:, 0])


# ----------------------------------------------------------------------
# fused max + argmax traversal
# ----------------------------------------------------------------------


@given(a=csr_matrices(), n=st.integers(1, 24), seed=st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_max_with_argmax_matches_untiled_two_pass(a, n, seed):
    b = _dense_operand(a, n, seed)
    with use_tiling(False):
        want_out, want_am = segment_max_with_argmax(a, b)
    with use_tile_width(3):
        got_out, got_am = segment_max_with_argmax(a, b)
    np.testing.assert_array_equal(got_out, want_out)
    np.testing.assert_array_equal(got_am, want_am)


def test_max_with_argmax_empty_rows_hold_identity_and_no_winner():
    rows = np.array([0, 0])
    cols = np.array([0, 1])
    vals = np.array([2.0, 1.0], dtype=np.float32)
    a = csr_from_coo(rows, cols, vals, shape=(3, 2), sum_duplicates=True)
    out, am = segment_max_with_argmax(a, np.ones((2, 4), np.float32))
    np.testing.assert_array_equal(out[1:], np.full((2, 4), -np.inf, np.float32))
    np.testing.assert_array_equal(am[1:], np.full((2, 4), -1, np.int32))
    np.testing.assert_array_equal(out[0], np.full(4, 2.0, np.float32))
    np.testing.assert_array_equal(am[0], np.zeros(4, np.int32))

"""Kernel-estimate memoization and TunedSpMM cache keying.

``SpMMKernel.estimate`` results are memoized process-wide, keyed on
``(kernel.cache_key(), CSRMatrix.fingerprint(), N, gpu, semiring,
params)`` — content-addressed, so equally configured kernel instances
and equal-content matrices share entries while any config difference
gets its own.  ``TunedSpMM`` keys its per-matrix kernel choice the same
way (the old ``id(a)`` keys could alias after GC id reuse).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import CRCSpMM, GESpMM, SimpleSpMM, TunedSpMM
from repro.gnn import DGLBackend, GCN, SimDevice, train
from repro.gpusim import GTX_1080TI, RTX_2080, clear_estimate_memo
from repro.obs.metrics import MetricsRegistry
from repro.semiring import MAX_TIMES, PLUS_TIMES
from repro.sparse import uniform_random


@pytest.fixture(autouse=True)
def fresh_state():
    """Isolate both the metrics registry and the estimate memo."""
    prev = obs.set_registry(MetricsRegistry())
    clear_estimate_memo()
    yield
    clear_estimate_memo()
    obs.set_registry(prev)


def _hits(gpu=GTX_1080TI, kernel="GE-SpMM"):
    return obs.get_registry().counter(
        "kernel.estimate_memo.hits", kernel=kernel, gpu=gpu.name
    ).value


def _misses(gpu=GTX_1080TI, kernel="GE-SpMM"):
    return obs.get_registry().counter(
        "kernel.estimate_memo.misses", kernel=kernel, gpu=gpu.name
    ).value


def test_memo_hit_returns_identical_timing():
    a = uniform_random(200, 1500, seed=0, weighted=True)
    k = GESpMM()
    t1 = k.estimate(a, 32, GTX_1080TI)
    t2 = k.estimate(a, 32, GTX_1080TI)
    assert t2 is t1  # the cached KernelTiming object itself
    assert _misses(kernel=k.name) == 1
    assert _hits(kernel=k.name) == 1


def test_memo_is_content_addressed_not_identity_addressed():
    a = uniform_random(200, 1500, seed=0, weighted=True)
    b = uniform_random(200, 1500, seed=0, weighted=True)  # equal content
    assert a is not b and a.fingerprint() == b.fingerprint()
    k = GESpMM()
    t1 = k.estimate(a, 32, GTX_1080TI)
    t2 = k.estimate(b, 32, GTX_1080TI)
    assert t2 is t1
    assert _hits(kernel=k.name) == 1

    # Equally configured *instances* share entries too.
    t3 = GESpMM().estimate(a, 32, GTX_1080TI)
    assert t3 is t1
    assert _hits(kernel=k.name) == 2


def test_memo_key_separates_n_gpu_semiring_and_params():
    a = uniform_random(200, 1500, seed=0, weighted=True)
    k = GESpMM()
    k.estimate(a, 32, GTX_1080TI)
    k.estimate(a, 64, GTX_1080TI)  # different N
    k.estimate(a, 32, RTX_2080)  # different GPU
    k.estimate(a, 32, GTX_1080TI, semiring=MAX_TIMES)  # different semiring
    assert _misses(kernel=k.name) == 3
    assert _misses(gpu=RTX_2080, kernel=k.name) == 1
    assert _hits(kernel=k.name) == 0

    # Different kernel config (coarsening factor) -> different cache_key.
    assert GESpMM(cf=2).cache_key() != GESpMM(cf=4).cache_key()
    t2 = GESpMM(cf=2).estimate(a, 32, GTX_1080TI)
    t4 = GESpMM(cf=4).estimate(a, 32, GTX_1080TI)
    assert t2 is not t4


def test_clear_estimate_memo_forces_recompute():
    a = uniform_random(150, 900, seed=1, weighted=True)
    k = SimpleSpMM()
    k.estimate(a, 16, GTX_1080TI)
    clear_estimate_memo()
    k.estimate(a, 16, GTX_1080TI)
    assert _misses(kernel=k.name) == 2
    assert _hits(kernel=k.name) == 0


def test_training_reuses_estimates_across_epochs():
    """The acceptance criterion: a multi-epoch full-batch train() hits the
    estimate memo (the cost model re-prices the same kernel/matrix pair
    every epoch)."""
    from repro.bench.hostbench import _synthetic_citation

    ds = _synthetic_citation(m=300, nnz=2400, feature_dim=8)
    model = GCN(ds.feature_dim, 8, ds.n_classes, rng=np.random.default_rng(0))
    backend = DGLBackend(SimDevice(GTX_1080TI), use_gespmm=True)
    train(model, backend, ds, epochs=3, warmup=0)

    hits = sum(
        row["value"]
        for row in obs.get_registry().snapshot()
        if row["name"] == "kernel.estimate_memo.hits"
    )
    assert hits > 0


# ----------------------------------------------------------------------
# TunedSpMM
# ----------------------------------------------------------------------


def test_tuned_spmm_run_defaults_and_gpu_param():
    a = uniform_random(120, 800, seed=2, weighted=True)
    b = np.random.default_rng(3).standard_normal((a.ncols, 8)).astype(np.float32)
    k = TunedSpMM()
    out_default = k.run(a, b)  # defaults: plus-times on GTX 1080 Ti
    out_gpu = k.run(a, b, semiring=PLUS_TIMES, gpu=RTX_2080)
    np.testing.assert_allclose(out_default, CRCSpMM().run(a, b), rtol=1e-5, atol=1e-5)
    np.testing.assert_allclose(out_gpu, out_default, rtol=1e-5, atol=1e-5)


def test_tuned_spmm_selection_is_fingerprint_keyed():
    a = uniform_random(120, 800, seed=2, weighted=True)
    b = uniform_random(120, 800, seed=2, weighted=True)  # equal content
    k = TunedSpMM()
    k.count(a, 16, GTX_1080TI)  # first lookup tunes
    k.count(b, 16, GTX_1080TI)  # equal content: reuses the choice
    reg = obs.get_registry()
    assert reg.counter(
        "tuning.tuned_spmm.lookups", cached=False, gpu=GTX_1080TI.name
    ).value == 1
    assert reg.counter(
        "tuning.tuned_spmm.lookups", cached=True, gpu=GTX_1080TI.name
    ).value == 1


def test_tuned_spmm_cache_key_covers_candidates():
    a = uniform_random(120, 800, seed=2, weighted=True)
    k12 = TunedSpMM(candidates=(1, 2))
    k14 = TunedSpMM(candidates=(1, 4))
    assert k12.cache_key() != k14.cache_key()
    # Different candidate sets must never share estimate memo entries even
    # when they happen to dispatch to the same underlying kernel.
    t12 = k12.estimate(a, 16, GTX_1080TI)
    t14 = k14.estimate(a, 16, GTX_1080TI)
    assert t12 is not t14
    assert TunedSpMM(candidates=(1, 2)).cache_key() == k12.cache_key()

"""Tests for repro.bench.corpus: lazy specs, DLMC generators, sharded
streaming sweeps, resumable checkpoints, roll-ups, and corpus priors."""

import json
import os

import numpy as np
import pytest

from repro.bench.corpus import (
    CORPUS_PRESETS,
    MatrixSpec,
    ROLLUP_SCHEMA,
    corpus_from_dir,
    corpus_preset,
    dlmc_corpus,
    format_rollup,
    graph_corpus,
    partition_shards,
    run_corpus_sweep,
)
from repro.bench.diskcache import CACHE_DIR_ENV, DiskCache, set_disk_cache
from repro.bench.runner import (
    clear_sweep_cache,
    get_sweep_cache_limit,
    set_sweep_cache_limit,
)
from repro.bench.telemetry import validate_corpus_rollup, write_corpus_rollup
from repro.core import GESpMM, MergePathSpMM
from repro.core.tuning import CorpusPriors, tune_cf
from repro.gpusim.config import GTX_1080TI
from repro.gpusim.kernel import (
    clear_estimate_memo,
    get_estimate_memo_limit,
    set_estimate_memo_limit,
)
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.report import render_corpus_markdown
from repro.sparse import (
    pruned_magnitude,
    pruned_random,
    pruned_structured,
    save_npz,
    uniform_random,
)

KERNELS = [GESpMM(), MergePathSpMM()]
WIDTHS = [16]
GPUS = [GTX_1080TI]


@pytest.fixture(autouse=True)
def _isolated_caches():
    prev = set_disk_cache(None)
    env = os.environ.pop(CACHE_DIR_ENV, None)
    clear_sweep_cache()
    clear_estimate_memo()
    try:
        yield
    finally:
        set_disk_cache(prev)
        if env is not None:
            os.environ[CACHE_DIR_ENV] = env
        clear_sweep_cache()
        clear_estimate_memo()


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    prev = set_registry(fresh)
    yield fresh
    set_registry(prev)


def _small_corpus(n=6):
    return corpus_preset("mixed", limit=n)


def _sweep(specs, **kw):
    kw.setdefault("shard_size", 2)
    return run_corpus_sweep(specs, KERNELS, WIDTHS, GPUS, **kw)


# ----------------------------------------------------------------------
# Pruned-DNN generators (the DLMC patterns)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("gen", [pruned_magnitude, pruned_random])
@pytest.mark.parametrize("s", [0.5, 0.9, 0.98])
def test_pruned_generators_hit_sparsity(gen, s):
    a = gen(64, 96, s, seed=3)
    assert a.shape == (64, 96)
    want = round(64 * 96 * (1.0 - s))
    assert a.nnz == want
    # deterministic in the seed
    b = gen(64, 96, s, seed=3)
    assert np.array_equal(a.rowptr, b.rowptr)
    assert np.array_equal(a.colind, b.colind)
    assert np.array_equal(a.values, b.values)
    c = gen(64, 96, s, seed=4)
    assert not (
        np.array_equal(a.colind, c.colind)
        and np.array_equal(a.values, c.values)
    )


def test_pruned_structured_is_blockwise():
    block = 4
    a = pruned_structured(64, 64, 0.75, block=block, seed=0)
    mask = np.zeros((64, 64), dtype=bool)
    for i in range(64):
        mask[i, a.colind[a.rowptr[i] : a.rowptr[i + 1]]] = True
    # every per-row run of `block` consecutive columns is kept or
    # dropped whole — the structured-pruning unit
    runs = mask.reshape(64, 64 // block, block)
    assert np.all(runs.all(axis=2) == runs.any(axis=2))
    assert 0.70 <= 1.0 - a.nnz / (64 * 64) <= 0.80


def test_pruned_generators_reject_bad_sparsity():
    with pytest.raises(ValueError):
        pruned_random(8, 8, 1.5)
    with pytest.raises(ValueError):
        pruned_magnitude(8, 8, -0.1)


# ----------------------------------------------------------------------
# Specs and corpora
# ----------------------------------------------------------------------


def test_spec_make_validates_kind_and_params():
    with pytest.raises(ValueError):
        MatrixSpec.make("x", "no-such-kind", m=8)
    with pytest.raises(TypeError):
        MatrixSpec.make("x", "uniform", m=8, nnz=[1, 2])  # non-primitive


def test_spec_build_is_deterministic_and_lazy():
    spec = MatrixSpec.make("u", "uniform", m=64, nnz=512, seed=5)
    a, b = spec.build(), spec.build()
    assert a.fingerprint() == b.fingerprint()
    # a spec is tiny and hashable; the matrix only exists when built
    assert hash(spec) == hash(MatrixSpec.make("u", "uniform", m=64, nnz=512, seed=5))
    assert spec.key() == ("u", "uniform", spec.params)


def test_spec_key_folds_in_file_state(tmp_path):
    f = tmp_path / "a.npz"
    save_npz(uniform_random(16, 64, seed=1), f)
    spec = next(corpus_from_dir(tmp_path))
    k1 = spec.key()
    assert k1[-2:] == (f.stat().st_size, f.stat().st_mtime_ns)
    save_npz(uniform_random(16, 80, seed=2), f)
    os.utime(f, ns=(f.stat().st_atime_ns, f.stat().st_mtime_ns + 1))
    assert spec.key() != k1  # edited file -> different checkpoint key
    missing = MatrixSpec.make("gone", "npz", path=str(tmp_path / "gone.npz"))
    assert missing.key()[-1] == "missing"


def test_dlmc_corpus_shape_and_names():
    specs = list(dlmc_corpus(shapes=((64, 64),), sparsities=(0.5, 0.9)))
    # 3 methods x 1 shape x 2 sparsities x 1 seed
    assert len(specs) == 6
    assert all(s.name.startswith("dlmc/") for s in specs)
    assert len({s.name for s in specs}) == 6
    structured = [s for s in specs if s.kind == "pruned_structured"]
    assert all(dict(s.params)["block"] == 4 for s in structured)


def test_corpus_preset_limit_widens_seed_range():
    specs = corpus_preset("dlmc", limit=1000)
    assert len(specs) == 1000
    assert len({s.name for s in specs}) == 1000  # all distinct
    with pytest.raises(ValueError):
        corpus_preset("nope")
    assert set(CORPUS_PRESETS) == {"dlmc", "graphs", "mixed"}


def test_graph_corpus_kinds():
    kinds = {s.kind for s in graph_corpus(ms=(128,))}
    assert kinds == {"uniform", "power_law", "rmat", "banded"}


def test_partition_shards_contract():
    specs = _small_corpus(7)
    with pytest.raises(ValueError):
        partition_shards(specs)  # neither
    with pytest.raises(ValueError):
        partition_shards(specs, shards=2, shard_size=3)  # both
    shards = partition_shards(specs, shard_size=3)
    assert [len(s) for s in shards] == [3, 3, 1]
    assert [s for shard in shards for s in shard] == specs
    assert [len(s) for s in partition_shards(specs, shards=2)] == [4, 3]
    assert partition_shards([], shard_size=3) == []
    # duplicate names with different specs are an error...
    dup = [specs[0], MatrixSpec.make(specs[0].name, "uniform", m=8, nnz=16)]
    with pytest.raises(ValueError):
        partition_shards(dup, shard_size=2)
    # ...but a literal repeat of the same spec is tolerated
    partition_shards([specs[0], specs[0]], shard_size=2)


# ----------------------------------------------------------------------
# The streaming driver + roll-up
# ----------------------------------------------------------------------


def test_corpus_sweep_rollup_is_valid_and_counts_add_up():
    specs = _small_corpus(6)
    res = _sweep(specs, shard_size=2)
    assert validate_corpus_rollup(res.rollup) == []
    assert res.rollup["schema"] == ROLLUP_SCHEMA
    assert res.rollup["corpus"]["matrices"] == 6
    assert res.rollup["corpus"]["shards"] == 3
    assert res.rollup["corpus"]["contests"] == 6  # one width x one gpu
    overall = res.rollup["overall"]
    assert overall["contests"] == 6
    assert sum(overall["wins"].values()) == 6
    assert sum(overall["win_rate"].values()) == pytest.approx(1.0)
    assert sum(b["contests"] for b in res.rollup["regimes"].values()) == 6
    assert sum(b["contests"] for b in res.rollup["sparsity_bands"].values()) == 6
    h = res.host
    assert (h.shards_total, h.shards_computed, h.shards_restored) == (3, 3, 0)
    assert h.cells_computed == 12 and h.cells_restored == 0
    assert h.matrices == 6


def test_corpus_sweep_byte_identical_across_jobs_and_sharding():
    specs = _small_corpus(6)
    base = json.dumps(_sweep(specs, shard_size=2, jobs=1).rollup, sort_keys=True)
    clear_sweep_cache(), clear_estimate_memo()
    jobs2 = json.dumps(_sweep(specs, shard_size=2, jobs=2).rollup, sort_keys=True)
    assert jobs2 == base
    clear_sweep_cache(), clear_estimate_memo()
    # shard geometry doesn't change the roll-up (only "shards" does)
    fat = _sweep(specs, shard_size=6).rollup
    fat["corpus"]["shards"] = 3
    assert json.dumps(fat, sort_keys=True) == base


def test_corpus_sweep_resume_byte_identical(tmp_path, registry):
    specs = _small_corpus(6)
    set_disk_cache(DiskCache(tmp_path))
    # interrupted: only 2 of 3 shards complete
    partial = _sweep(specs, shard_size=2, max_shards=2)
    assert partial.host.shards_computed == 2
    assert len(list(tmp_path.rglob("*.json"))) >= 2  # checkpoints on disk
    # resumed: finished shards restore with zero recomputation
    resumed = _sweep(specs, shard_size=2)
    assert resumed.host.shards_restored == 2
    assert resumed.host.shards_computed == 1
    assert resumed.host.cells_restored == partial.host.cells_computed
    assert registry.counter("corpus.shards.restored").value == 2
    # uninterrupted (no cache): byte-identical roll-up
    set_disk_cache(None)
    clear_sweep_cache(), clear_estimate_memo()
    uninterrupted = _sweep(specs, shard_size=2)
    assert json.dumps(resumed.rollup, sort_keys=True) == json.dumps(
        uninterrupted.rollup, sort_keys=True
    )
    # a third run restores everything
    set_disk_cache(DiskCache(tmp_path))
    warm = _sweep(specs, shard_size=2)
    assert warm.host.shards_computed == 0
    assert warm.host.shards_restored == 3


def test_corpus_sweep_no_resume_ignores_checkpoints(tmp_path):
    specs = _small_corpus(4)
    set_disk_cache(DiskCache(tmp_path))
    _sweep(specs, shard_size=2)
    again = _sweep(specs, shard_size=2, resume=False)
    assert again.host.shards_restored == 0
    assert again.host.shards_computed == 2


def test_corpus_sweep_restores_memo_limits_and_calls_progress():
    prev_est = set_estimate_memo_limit(None)
    prev_sweep = set_sweep_cache_limit(None)
    try:
        seen = []
        _sweep(
            _small_corpus(4),
            shard_size=2,
            memo_limit=8,
            progress=lambda i, total, restored: seen.append((i, total, restored)),
        )
        assert seen == [(0, 2, False), (1, 2, False)]
        assert get_estimate_memo_limit() is None  # restored on exit
        assert get_sweep_cache_limit() is None
    finally:
        set_estimate_memo_limit(prev_est)
        set_sweep_cache_limit(prev_sweep)


def test_corpus_sweep_rejects_empty_config():
    with pytest.raises(ValueError):
        run_corpus_sweep(_small_corpus(2), [], WIDTHS, GPUS)
    with pytest.raises(ValueError):
        run_corpus_sweep(_small_corpus(2), KERNELS, [], GPUS)


def test_format_rollup_and_markdown_deterministic():
    res = _sweep(_small_corpus(4), shard_size=2)
    text = format_rollup(res.rollup)
    assert "win rates (overall)" in text and "by sparsity band" in text
    md = render_corpus_markdown(res.rollup)
    assert md == render_corpus_markdown(json.loads(json.dumps(res.rollup)))
    assert "| bucket |" in md
    for k in res.rollup["config"]["kernels"]:
        assert k in md


def test_write_corpus_rollup_validates_and_roundtrips(tmp_path):
    res = _sweep(_small_corpus(4), shard_size=2)
    out = tmp_path / "rollup.json"
    write_corpus_rollup(res.rollup, out)
    assert json.loads(out.read_text()) == json.loads(json.dumps(res.rollup))
    bad = dict(res.rollup, schema="wrong/schema")
    assert validate_corpus_rollup(bad)
    with pytest.raises(ValueError):
        write_corpus_rollup(bad, tmp_path / "bad.json")


# ----------------------------------------------------------------------
# LRU memo caps (satellite: bounded in-process memos)
# ----------------------------------------------------------------------


def test_estimate_memo_lru_cap_and_eviction_counter(registry):
    prev = set_estimate_memo_limit(2)
    try:
        k = GESpMM()
        mats = [uniform_random(32, 128, seed=s) for s in range(4)]
        for a in mats:
            k.estimate(a, 16, GTX_1080TI)
        assert registry.counter("kernel.estimate_memo.evictions").value == 2
        # the oldest entries were evicted: re-estimating recomputes (hit
        # counter stays put), the newest is still memoized
        hit_ctr = registry.counter(
            "kernel.estimate_memo.hits", kernel=k.name, gpu=GTX_1080TI.name
        )
        hits = hit_ctr.value
        k.estimate(mats[-1], 16, GTX_1080TI)
        assert hit_ctr.value == hits + 1
    finally:
        set_estimate_memo_limit(prev)


def test_estimate_memo_limit_validates():
    with pytest.raises(ValueError):
        set_estimate_memo_limit(0)
    with pytest.raises(ValueError):
        set_sweep_cache_limit(-1)


def test_sweep_memo_lru_cap_evicts(registry):
    from repro.bench.runner import run_sweep

    prev = set_sweep_cache_limit(2)
    try:
        graphs = {f"g{s}": uniform_random(32, 128, seed=s) for s in range(3)}
        run_sweep([GESpMM()], graphs, [16], GPUS, quiet=True)
        assert registry.counter("sweep.memo.evictions").value == 1
    finally:
        set_sweep_cache_limit(prev)


def test_clear_derived_counter(registry):
    a = uniform_random(32, 128, seed=0)
    a.fingerprint()  # populate derived cache
    a.clear_derived()
    assert registry.counter("csr.derived_cache.cleared").value == 1
    b = uniform_random(32, 128, seed=0)
    assert a.fingerprint() == b.fingerprint()  # recomputed, same content


# ----------------------------------------------------------------------
# Corpus priors -> tune_cf
# ----------------------------------------------------------------------


def _rollup_with_regime_winner(regime, winner, matrices=5):
    block = {
        "matrices": matrices,
        "contests": 10,
        "wins": {winner: 10},
        "win_rate": {winner: 1.0},
        "mean_row_gini": 0.1,
        "mean_max_over_mean": 1.0,
        "mean_sparsity": 0.9,
    }
    return {"schema": ROLLUP_SCHEMA, "regimes": {regime: block}}


def test_corpus_priors_rank_and_shortlist():
    from repro.sparse.stats import graph_regime

    a = uniform_random(64, 512, seed=1)
    regime = graph_regime(a)
    priors = CorpusPriors.from_rollup(
        _rollup_with_regime_winner(regime, "mergepath"),
        candidates=(1, 2, 4, 8, "mergepath"),
    )
    short = priors.shortlist(regime, (1, 2, 4, 8, "mergepath"), top_k=1)
    assert short[0] == "mergepath"
    # unknown regime -> full candidate set
    assert priors.shortlist("no-such", (1, 2)) == (1, 2)
    # thin evidence (matrices < min_matrices) is ignored
    thin = CorpusPriors.from_rollup(
        _rollup_with_regime_winner(regime, "mergepath", matrices=1),
        candidates=(1, 2, 4, 8, "mergepath"),
    )
    assert regime not in thin.ranking


def test_tune_cf_priors_narrow_grid_default_unchanged(registry):
    from repro.sparse.stats import graph_regime

    a = uniform_random(64, 512, seed=1)
    baseline = tune_cf(a, 64, GTX_1080TI)
    assert len(baseline.times) == 4  # full DEFAULT_CF_CANDIDATES grid
    priors = CorpusPriors.from_rollup(
        _rollup_with_regime_winner(graph_regime(a), "crc")
    )
    # rank cf=1 (kernel "crc") first; grid narrows to top_k
    pruned = tune_cf(a, 64, GTX_1080TI, priors=priors, prior_top_k=1)
    assert len(pruned.times) == 1
    assert pruned.best_cf == 1
    assert registry.counter("tuning.prior.candidates_pruned").value == 3


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_corpus_roundtrip(tmp_path, capsys):
    from repro.cli import main

    rollup_path = tmp_path / "rollup.json"
    host_path = tmp_path / "host.json"
    args = [
        "corpus", "--preset", "graphs", "--limit", "8", "--shards", "2",
        "--n", "16", "--kernels", "gespmm", "mergepath",
        "--cache-dir", str(tmp_path / "cache"),
        "--rollup-json", str(rollup_path), "--host-json", str(host_path),
        "--quiet",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "win rates (overall)" in out
    doc = json.loads(rollup_path.read_text())
    assert validate_corpus_rollup(doc) == []
    host = json.loads(host_path.read_text())
    assert host["shards_computed"] == 2 and host["matrices"] == 8
    # second invocation resumes entirely from the checkpoint cache and
    # writes a byte-identical roll-up
    first_bytes = rollup_path.read_bytes()
    assert main(args) == 0
    assert rollup_path.read_bytes() == first_bytes
    assert json.loads(host_path.read_text())["shards_restored"] == 2

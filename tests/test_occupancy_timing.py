"""Tests for the occupancy calculator and timing model."""

import pytest

from repro.gpusim import (
    ExecHints,
    GTX_1080TI,
    KernelStats,
    LaunchConfig,
    RTX_2080,
    TimingParams,
    compute_occupancy,
    estimate_time,
)


class TestOccupancy:
    def test_full_occupancy(self):
        cfg = LaunchConfig(blocks=10_000, threads_per_block=128, regs_per_thread=32)
        occ = compute_occupancy(cfg, GTX_1080TI)
        assert occ.achieved == pytest.approx(1.0)
        assert occ.blocks_per_sm == 16  # 64 warps / 4 warps per block

    def test_register_limited(self):
        cfg = LaunchConfig(blocks=10_000, threads_per_block=128, regs_per_thread=128)
        occ = compute_occupancy(cfg, GTX_1080TI)
        assert occ.limiter == "registers"
        assert occ.achieved < 1.0

    def test_shared_memory_limited(self):
        cfg = LaunchConfig(blocks=10_000, threads_per_block=64,
                           regs_per_thread=16, shared_mem_per_block=48 * 1024)
        occ = compute_occupancy(cfg, GTX_1080TI)
        assert occ.limiter == "shared_memory"
        assert occ.blocks_per_sm == 2  # 96 KB / 48 KB

    def test_block_cap(self):
        cfg = LaunchConfig(blocks=10_000, threads_per_block=32, regs_per_thread=16)
        occ = compute_occupancy(cfg, GTX_1080TI)
        # 32-thread blocks: the 32-blocks/SM cap binds before warp slots.
        assert occ.blocks_per_sm == 32
        assert occ.achieved == pytest.approx(0.5)

    def test_grid_limited(self):
        cfg = LaunchConfig(blocks=14, threads_per_block=128, regs_per_thread=32)
        occ = compute_occupancy(cfg, GTX_1080TI)  # fewer blocks than SMs
        assert occ.achieved < 0.05
        assert occ.is_latency_starved

    def test_waves(self):
        cfg = LaunchConfig(blocks=28 * 16 * 2, threads_per_block=128, regs_per_thread=32)
        occ = compute_occupancy(cfg, GTX_1080TI)
        assert occ.waves == pytest.approx(2.0)

    def test_oversized_block_rejected(self):
        with pytest.raises(ValueError):
            compute_occupancy(LaunchConfig(1, 2048), GTX_1080TI)

    def test_oversized_shared_rejected(self):
        with pytest.raises(ValueError):
            compute_occupancy(
                LaunchConfig(1, 128, shared_mem_per_block=1024 * 1024), GTX_1080TI
            )

    def test_invalid_launch_rejected(self):
        with pytest.raises(ValueError):
            LaunchConfig(blocks=-1, threads_per_block=128)
        with pytest.raises(ValueError):
            LaunchConfig(blocks=1, threads_per_block=0)

    def test_turing_warp_budget(self):
        cfg = LaunchConfig(blocks=10_000, threads_per_block=128, regs_per_thread=32)
        occ = compute_occupancy(cfg, RTX_2080)
        assert occ.blocks_per_sm == 8  # 32 warps / 4 per block


def _stats(load_insts=1000, load_sectors=4000, store_sectors=500, flops=10_000):
    s = KernelStats()
    s.global_load.instructions = load_insts
    s.global_load.transactions = load_sectors
    s.global_load.requested_bytes = load_sectors * 32
    s.global_load.l1_filtered_transactions = load_sectors
    s.global_store.instructions = store_sectors // 4
    s.global_store.transactions = store_sectors
    s.flops = flops
    tb = s.traffic("B")
    tb.sectors = load_sectors
    tb.unique_bytes = load_sectors * 32
    tb.reuse_is_local = False
    return s


LAUNCH = LaunchConfig(blocks=5000, threads_per_block=128, regs_per_thread=32)


class TestTimingModel:
    def test_components_present(self):
        t = estimate_time(_stats(), LAUNCH, GTX_1080TI)
        for key in ("dram", "l2_link", "issue", "compute", "launch", "sync"):
            assert key in t.breakdown
        assert t.time_s > 0
        assert t.bound_by in t.breakdown

    def test_empty_kernel_costs_launch_overhead(self):
        t = estimate_time(KernelStats(), LaunchConfig(1, 32), GTX_1080TI)
        assert t.time_s == pytest.approx(GTX_1080TI.launch_overhead_s, rel=0.2)

    def test_more_traffic_more_time(self):
        t1 = estimate_time(_stats(load_sectors=4000), LAUNCH, GTX_1080TI)
        t2 = estimate_time(_stats(load_sectors=400_000, load_insts=100_000), LAUNCH, GTX_1080TI)
        assert t2.time_s > t1.time_s

    def test_higher_mlp_never_slower(self):
        s = _stats(load_sectors=400_000, load_insts=100_000)
        lo = estimate_time(s, LAUNCH, GTX_1080TI, ExecHints(mlp=1.0))
        hi = estimate_time(s, LAUNCH, GTX_1080TI, ExecHints(mlp=3.0))
        assert hi.time_s <= lo.time_s

    def test_efficiency_derating(self):
        s = _stats(load_sectors=400_000, load_insts=100_000)
        s.traffic("B").reuse_is_local = True  # keep DRAM off the critical path
        full = estimate_time(s, LAUNCH, GTX_1080TI, ExecHints(efficiency=1.0))
        quarter = estimate_time(s, LAUNCH, GTX_1080TI, ExecHints(efficiency=0.25))
        assert quarter.time_s > full.time_s

    def test_tiny_grid_is_slower_per_byte(self):
        s = _stats(load_sectors=100_000, load_insts=25_000)
        big = estimate_time(s, LaunchConfig(5000, 128), GTX_1080TI)
        tiny = estimate_time(s, LaunchConfig(4, 128), GTX_1080TI)
        assert tiny.time_s > big.time_s

    def test_l1_filtering_reduces_link_time(self):
        s = _stats(load_sectors=400_000, load_insts=100_000)
        s.global_load.l1_filtered_transactions = 100_000
        pascal = estimate_time(s, LAUNCH, GTX_1080TI)
        turing_like = estimate_time(s, LAUNCH, GTX_1080TI.scaled(l1_caches_global=True))
        assert turing_like.breakdown["l2_link"] < pascal.breakdown["l2_link"]

    def test_atomics_charged(self):
        s = _stats()
        s.atomic_ops = 10_000_000
        t = estimate_time(s, LAUNCH, GTX_1080TI)
        assert t.bound_by == "atomics"

    def test_block_sync_charged(self):
        s = _stats()
        base = estimate_time(s, LAUNCH, GTX_1080TI).time_s
        s2 = _stats()
        s2.block_syncs = 5_000_000
        assert estimate_time(s2, LAUNCH, GTX_1080TI).time_s > base

    def test_gld_throughput_positive(self):
        t = estimate_time(_stats(), LAUNCH, GTX_1080TI)
        assert t.gld_throughput > 0
        assert t.gflops(1_000_000) == pytest.approx(1e6 / t.time_s / 1e9)

    def test_params_immutable_defaults(self):
        p = TimingParams()
        with pytest.raises(Exception):
            p.width_exp = 0.1  # frozen dataclass

"""Parity and caching tests for repro.core.access_profile.

The contract (docs/PERFORMANCE.md): every profile-backed counter in
``repro.core._counting`` is bit-identical — exact integer equality — to
the retained ``*_oracle`` array-expansion implementation, on every
matrix and every width, aligned or not.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core import _counting as cnt
from repro.core.access_profile import (
    AccessProfile,
    access_profile,
    clear_access_profile,
)
from repro.sparse import csr_from_coo, csr_from_dense, power_law, uniform_random

# Widths straddling sector (8) and segment (32) boundaries, plus n=1.
WIDTHS = [1, 7, 8, 9, 16, 31, 32, 33, 64, 100]
TILES = [8, 32, 64, 128]


@st.composite
def random_csr(draw, max_m=40, max_k=40, max_nnz=200):
    m = draw(st.integers(1, max_m))
    k = draw(st.integers(1, max_k))
    nnz = draw(st.integers(0, min(max_nnz, m * k)))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=nnz)
    cols = rng.integers(0, k, size=nnz)
    vals = rng.standard_normal(nnz).astype(np.float32)
    return csr_from_coo(rows, cols, vals, shape=(m, k), sum_duplicates=True)


def assert_profile_matches_oracle(a, widths=WIDTHS, tiles=TILES):
    clear_access_profile(a)
    for n in widths:
        assert cnt.count_b_loads(a, n) == cnt.count_b_loads_oracle(a, n), n
        assert cnt.count_c_stores(a, n) == cnt.count_c_stores_oracle(a, n), n
    for tile in tiles:
        assert cnt.count_tile_loads(a, tile) == cnt.count_tile_loads_oracle(a, tile)
    assert cnt.broadcast_walk_sectors(a) == cnt.broadcast_walk_sectors_oracle(a)
    assert cnt.unique_b_columns(a) == cnt.unique_b_columns_oracle(a)
    assert cnt.occupied_rows(a) == cnt.occupied_rows_oracle(a)


# ----------------------------------------------------------------------
# Hypothesis parity: profile == oracle, bit for bit
# ----------------------------------------------------------------------


@given(random_csr())
@settings(max_examples=60, deadline=None)
def test_profile_matches_oracle_random(a):
    assert_profile_matches_oracle(a)


@given(st.integers(0, 2**16), st.integers(1, 400))
@settings(max_examples=25, deadline=None)
def test_profile_matches_oracle_uniform(seed, n):
    a = uniform_random(60, 300, 50, seed=seed)
    assert_profile_matches_oracle(a, widths=[n])


@given(st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_profile_matches_oracle_power_law(seed):
    a = power_law(80, 600, seed=seed)
    assert_profile_matches_oracle(a)


# ----------------------------------------------------------------------
# Edge cases (satellite 3): asserted for BOTH paths
# ----------------------------------------------------------------------


def _empty_matrix():
    return csr_from_coo([], [], [], shape=(5, 5))


def _all_empty_rows():
    # 0 x structure is impossible in this repo (shapes >= 1); the closest
    # degenerate is every row empty.
    return csr_from_coo([], [], [], shape=(7, 3))


def _single_entry():
    return csr_from_coo([0], [2], [1.0], shape=(1, 4))


@pytest.mark.parametrize(
    "make", [_empty_matrix, _all_empty_rows, _single_entry], ids=["empty", "empty-rows", "1x1nnz"]
)
@pytest.mark.parametrize("n", [1, 7, 8, 9])
def test_edge_cases_both_paths(make, n):
    a = make()
    for forced_oracle in (False, True):
        clear_access_profile(a)
        if forced_oracle:
            with cnt.use_oracle_counters():
                b = cnt.count_b_loads(a, n)
                c = cnt.count_c_stores(a, n)
                t = cnt.count_tile_loads(a, 32)
                w = cnt.broadcast_walk_sectors(a)
        else:
            b = cnt.count_b_loads(a, n)
            c = cnt.count_c_stores(a, n)
            t = cnt.count_tile_loads(a, 32)
            w = cnt.broadcast_walk_sectors(a)
        assert b == cnt.count_b_loads_oracle(a, n)
        assert c == cnt.count_c_stores_oracle(a, n)
        assert t == cnt.count_tile_loads_oracle(a, 32)
        assert w == cnt.broadcast_walk_sectors_oracle(a)
        if a.nnz == 0:
            assert b.sectors == 0 and b.instructions == 0
            assert t == cnt.count_tile_loads_oracle(a, 32)
            assert w == 0
        # C stores cover all rows regardless of occupancy.
        assert c.instructions == a.nrows * len(cnt.dense_segments(n))


def test_empty_matrix_profile_fields():
    a = _empty_matrix()
    p = access_profile(a)
    assert p.nnz == 0
    assert p.unique_b_columns == 0
    assert p.occupied_rows == 0
    assert p.broadcast_sectors() == 0
    assert p.tile_loads(32).sectors == 0


def test_known_value_aligned():
    # One dense 4x8 matrix, n=8: every row of B is exactly one sector.
    a = csr_from_dense(np.ones((4, 8), dtype=np.float32))
    b = cnt.count_b_loads(a, 8)
    assert b.sectors == a.nnz * 1
    assert b.instructions == a.nnz  # one 32-wide segment covers n=8
    c = cnt.count_c_stores(a, 8)
    assert c.sectors == 4 and c.instructions == 4


# ----------------------------------------------------------------------
# Caching, counters, toggles
# ----------------------------------------------------------------------


def test_profile_cached_on_matrix():
    a = uniform_random(20, 60, 20, seed=1)
    clear_access_profile(a)
    reg = obs.get_registry()
    misses0 = reg.counter("access_profile.misses").value
    hits0 = reg.counter("access_profile.hits").value
    p1 = access_profile(a)
    p2 = access_profile(a)
    assert p1 is p2
    assert reg.counter("access_profile.misses").value == misses0 + 1
    assert reg.counter("access_profile.hits").value == hits0 + 1
    clear_access_profile(a)
    assert access_profile(a) is not p1


def test_per_width_memoization():
    a = uniform_random(20, 60, 20, seed=2)
    p = AccessProfile(a)
    assert p.b_loads(13) is p.b_loads(13)
    assert p.c_stores(13) is p.c_stores(13)
    assert p.tile_loads(32) is p.tile_loads(32)


def test_oracle_toggle_restores():
    assert cnt.profile_counters_enabled()
    with cnt.use_oracle_counters():
        assert not cnt.profile_counters_enabled()
        with cnt.use_oracle_counters():
            assert not cnt.profile_counters_enabled()
        assert not cnt.profile_counters_enabled()
    assert cnt.profile_counters_enabled()


def test_oracle_toggle_skips_profile_build():
    a = uniform_random(15, 30, 15, seed=3)
    clear_access_profile(a)
    with cnt.use_oracle_counters():
        cnt.count_b_loads(a, 9)
        cnt.broadcast_walk_sectors(a)
    assert a._derived.get("access_profile") is None


def test_exotic_tile_falls_back_to_oracle():
    a = uniform_random(20, 80, 20, seed=4)
    # tile not a multiple of 8: profile method refuses, public API stays exact
    p = access_profile(a)
    with pytest.raises(ValueError):
        p.tile_loads(12)
    assert cnt.count_tile_loads(a, 12) == cnt.count_tile_loads_oracle(a, 12)
    assert cnt.count_tile_loads(a, 1) == cnt.count_tile_loads_oracle(a, 1)


def test_kernel_counts_unchanged_by_profile_path():
    # count() must yield identical stats under both counting paths.
    from repro.core import CRCSpMM, CWMSpMM, GESpMM, SimpleSpMM
    from repro.gpusim.config import GTX_1080TI

    a = power_law(200, 2000, seed=5)
    for kern in (SimpleSpMM(), CRCSpMM(), CWMSpMM(2), GESpMM()):
        for n in (32, 250, 7):
            clear_access_profile(a)
            stats_p, launch_p, hints_p = kern.count(a, n, GTX_1080TI)
            with cnt.use_oracle_counters():
                stats_o, launch_o, hints_o = kern.count(a, n, GTX_1080TI)
            assert stats_p == stats_o, (kern.name, n)
            assert launch_p == launch_o
            assert hints_p == hints_o

"""Unit tests for the memory-model primitives the replay engines share.

Targeted coverage for three pieces the conformance grid only exercises
indirectly: the Turing L1 recency-window filter in :class:`TraceMemory`,
:func:`bank_conflict_passes` (and its vectorized batch twin) on the
classic conflict shapes, and the ragged/stream helpers that power
``repro.gpusim.batchtrace``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import (
    BatchTraceMemory,
    TraceMemory,
    bank_conflict_passes,
    bank_conflict_passes_batch,
    l1_filtered_misses,
    ragged_arange,
)

# -- TraceMemory L1 recency-window filter -----------------------------------


def make_mem(l1=True, window=512, words=4096):
    mem = TraceMemory(l1_caches_global=l1, l1_window_sectors=window)
    mem.register("buf", np.zeros(words, dtype=np.float32))
    return mem


class TestL1Filter:
    def test_first_touch_misses_retouch_hits(self):
        mem = make_mem()
        idx = np.arange(8)  # one sector (8 x 4 B = 32 B)
        mem.load("buf", idx)
        assert mem.stats.global_load.l1_filtered_transactions == 1
        mem.load("buf", idx)  # immediate re-reference: filtered
        assert mem.stats.global_load.transactions == 2
        assert mem.stats.global_load.l1_filtered_transactions == 1

    def test_disabled_filter_passes_everything(self):
        mem = make_mem(l1=False)
        idx = np.arange(8)
        mem.load("buf", idx)
        mem.load("buf", idx)
        assert mem.stats.global_load.l1_filtered_transactions == 2

    def test_window_boundary_is_inclusive(self):
        # With window W, a sector re-seen exactly W ticks later still hits
        # (miss iff clock - last > W).  Touch sector 0, advance the clock
        # by exactly W distinct sectors, re-touch: hit.  One more sector
        # of spacing and the re-touch misses.
        w = 4
        mem = make_mem(window=w)
        mem.load("buf", np.arange(8))  # sector 0: tick 1, miss
        for s in range(1, w + 1):  # ticks 2..w+1, all misses
            mem.load("buf", np.arange(8) + 8 * s)
        mem.load("buf", np.arange(8))  # tick w+2, last=1, delta=w+1 > w: miss
        assert mem.stats.global_load.l1_filtered_transactions == w + 2

        mem2 = make_mem(window=w)
        mem2.load("buf", np.arange(8))  # tick 1, miss
        for s in range(1, w):  # ticks 2..w, misses
            mem2.load("buf", np.arange(8) + 8 * s)
        mem2.load("buf", np.arange(8))  # tick w+1, delta=w: hit
        assert mem2.stats.global_load.l1_filtered_transactions == w

    def test_stores_do_not_tick_or_filter(self):
        mem = make_mem(window=2)
        idx = np.arange(8)
        mem.load("buf", idx)
        # Stores between the two loads must not advance the L1 clock.
        for s in range(1, 6):
            mem.store("buf", np.arange(8) + 8 * s, np.ones(8, dtype=np.float32))
        mem.load("buf", idx)  # still within the window: hit
        assert mem.stats.global_load.l1_filtered_transactions == 1
        assert mem.stats.global_store.l1_filtered_transactions == 0

    def test_batch_engine_agrees_on_interleaved_stream(self):
        # The batched engine must reproduce the serial filter on a stream
        # with re-references straddling the eviction window.
        w = 3
        serial = make_mem(window=w)
        batch = BatchTraceMemory(l1_caches_global=True, l1_window_sectors=w)
        batch.register("buf", np.zeros(4096, dtype=np.float32))
        sector_seq = [0, 1, 2, 0, 3, 4, 5, 0, 1]
        for step, s in enumerate(sector_seq):
            serial.load("buf", np.arange(8) + 8 * s)
            batch.load_contiguous(
                "buf", np.array([8 * s]), 8,
                task=np.array([0]), step=np.array([step]),
            )
        got = batch.finalize().global_load.l1_filtered_transactions
        assert got == serial.stats.global_load.l1_filtered_transactions


# -- bank_conflict_passes ----------------------------------------------------


class TestBankConflicts:
    def test_broadcast_is_one_pass(self):
        assert bank_conflict_passes(np.full(32, 17)) == 1

    def test_conflict_free_stride_one(self):
        assert bank_conflict_passes(np.arange(32)) == 1

    def test_two_way_conflict_stride_two(self):
        # Stride-2 words: lanes 0..31 hit banks {0,2,..,30} twice each.
        assert bank_conflict_passes(2 * np.arange(32)) == 2

    def test_thirty_two_way_conflict_stride_32(self):
        # All 32 lanes map to bank 0 with distinct addresses: full serialize.
        assert bank_conflict_passes(32 * np.arange(32)) == 32

    def test_same_bank_broadcast_mix(self):
        # Two distinct addresses in one bank + 30 broadcast duplicates:
        # duplicates merge, distinct addresses still serialize.
        addrs = np.concatenate([np.full(30, 0), np.array([0, 32])])
        assert bank_conflict_passes(addrs) == 2

    def test_empty_request_is_zero_passes(self):
        assert bank_conflict_passes(np.array([], dtype=np.int64)) == 0

    def test_batch_matches_scalar_on_random_warps(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 256, size=(64, 32))
        mask = rng.random((64, 32)) < 0.7
        got = bank_conflict_passes_batch(addrs, mask)
        for wi in range(64):
            expect = bank_conflict_passes(addrs[wi][mask[wi]])
            assert got[wi] == expect, f"warp {wi}"

    def test_batch_masked_lanes_and_edges(self):
        addrs = np.vstack([
            np.full(32, 5),        # broadcast
            2 * np.arange(32),     # 2-way
            32 * np.arange(32),    # 32-way
            np.arange(32),         # conflict free
        ])
        mask = np.ones_like(addrs, dtype=bool)
        mask[3, 1:] = False  # single active lane
        np.testing.assert_array_equal(
            bank_conflict_passes_batch(addrs, mask), [1, 2, 32, 1]
        )
        # Fully-masked warp costs zero passes.
        none = np.zeros((1, 32), dtype=bool)
        np.testing.assert_array_equal(
            bank_conflict_passes_batch(np.arange(32)[None, :], none), [0]
        )
        # Degenerate shapes.
        assert bank_conflict_passes_batch(np.empty((0, 32), dtype=np.int64)).size == 0
        with pytest.raises(ValueError):
            bank_conflict_passes_batch(np.arange(32))  # 1-D input


# -- batchtrace helpers ------------------------------------------------------


class TestBatchHelpers:
    def test_ragged_arange(self):
        np.testing.assert_array_equal(
            ragged_arange(np.array([3, 1, 0, 2])), [0, 1, 2, 0, 0, 1]
        )
        assert ragged_arange(np.array([], dtype=np.int64)).size == 0

    def test_l1_filtered_misses_matches_serial_dict(self):
        rng = np.random.default_rng(1)
        for window in (1, 4, 512):
            sectors = rng.integers(0, 40, size=500)
            recent, clock, misses = {}, 0, 0
            for s in sectors.tolist():
                clock += 1
                last = recent.get(s)
                if last is None or clock - last > window:
                    misses += 1
                recent[s] = clock
            assert l1_filtered_misses(sectors, window) == misses, window

    def test_bounds_checked_like_trace_memory(self):
        mem = BatchTraceMemory()
        mem.register("buf", np.zeros(16, dtype=np.float32))
        with pytest.raises(IndexError):
            mem.load_contiguous("buf", np.array([12]), 8,
                                task=np.array([0]), step=np.array([0]))

"""Failure-injection and numerical-robustness tests."""

import numpy as np
import pytest

from repro.core import CRCSpMM, GESpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, TraceMemory
from repro.semiring import MAX_TIMES, PLUS_TIMES
from repro.sparse import csr_from_coo, reference_spmm_like, uniform_random


class TestNumericalEdgeCases:
    def test_nan_propagates_like_oracle(self, rng):
        a = uniform_random(50, 400, seed=1)
        b = rng.random((50, 16), dtype=np.float32)
        b[3, :] = np.nan
        out = GESpMM().run(a, b)
        ref = reference_spmm_like(a, b)
        np.testing.assert_array_equal(np.isnan(out), np.isnan(ref))

    def test_inf_values_survive_max(self, rng):
        a = csr_from_coo([0, 0], [0, 1], [1.0, 1.0], shape=(1, 2))
        b = np.array([[np.inf], [1.0]], dtype=np.float32)
        out = GESpMM().run(a, b, MAX_TIMES)
        assert out[0, 0] == np.inf

    def test_large_magnitudes_no_overflow_to_nan(self, rng):
        a = uniform_random(100, 1000, seed=2, weighted=True)
        b = np.full((100, 8), 1e30, dtype=np.float32)
        out = GESpMM().run(a, b)
        assert not np.isnan(out).any()  # may be inf, must not be nan

    def test_negative_zero_row(self):
        a = csr_from_coo([0], [0], [0.0], shape=(2, 2))  # explicit zero entry
        b = np.ones((2, 4), dtype=np.float32)
        out = GESpMM().run(a, b)
        assert not out.any()

    def test_float32_accumulation_tolerance(self, rng):
        # Long rows accumulate in different orders across kernels; results
        # must agree within float32 reduction tolerance.
        cols = np.arange(5000)
        a = csr_from_coo(np.zeros(5000, dtype=int), cols,
                         rng.standard_normal(5000), shape=(1, 5000))
        b = rng.standard_normal((5000, 4)).astype(np.float32)
        outs = [k.run(a, b) for k in (SimpleSpMM(), CRCSpMM(), GESpMM())]
        for o in outs[1:]:
            np.testing.assert_allclose(o, outs[0], rtol=1e-3, atol=1e-2)


class TestDefensiveInterfaces:
    def test_kernel_rejects_shape_mismatch(self, rng):
        a = uniform_random(30, 200, seed=1)
        with pytest.raises(ValueError):
            GESpMM().run(a, rng.random((31, 8), dtype=np.float32))

    def test_trace_memory_unknown_buffer(self):
        mem = TraceMemory()
        with pytest.raises(KeyError):
            mem.load("nope", np.zeros(32, dtype=np.int64))

    def test_estimate_semiring_independent_pattern(self):
        # Semirings share access patterns: estimates must agree.
        a = uniform_random(2000, 20_000, seed=3)
        k = GESpMM()
        t_sum = k.estimate(a, 64, GTX_1080TI, PLUS_TIMES).time_s
        t_max = k.estimate(a, 64, GTX_1080TI, MAX_TIMES).time_s
        assert t_sum == pytest.approx(t_max)

    def test_immutable_csr_inputs(self, rng):
        # Kernels must not mutate their operands.
        a = uniform_random(40, 300, seed=4, weighted=True)
        b = rng.random((40, 8), dtype=np.float32)
        vals_before = a.values.copy()
        b_before = b.copy()
        GESpMM().run(a, b)
        GESpMM().trace(a, b, GTX_1080TI)
        np.testing.assert_array_equal(a.values, vals_before)
        np.testing.assert_array_equal(b, b_before)

    def test_dataclass_frozen_csr(self, rng):
        a = uniform_random(10, 50, seed=5)
        with pytest.raises(Exception):
            a.shape = (1, 1)

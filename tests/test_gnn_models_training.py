"""Tests for layers, models, the optimizer and the training harness."""

import numpy as np
import pytest

from repro.datasets import load_citation
from repro.datasets.citation import CitationDataset
from repro.gnn import (
    Adam,
    DGLBackend,
    GCN,
    GraphPair,
    GraphSAGE,
    PyGBackend,
    SimDevice,
    Tensor,
    evaluate_accuracy,
    train,
)
from repro.gnn.layers import GCNLayer, SAGEGcnLayer, SAGEPoolLayer
from repro.gpusim import GTX_1080TI
from repro.sparse import csr_from_coo


def tiny_dataset(n_per_class=30, n_classes=3, feat_dim=12, seed=0) -> CitationDataset:
    """A trivially separable ring-of-cliques dataset for learnability tests."""
    rng = np.random.default_rng(seed)
    m = n_per_class * n_classes
    labels = np.repeat(np.arange(n_classes), n_per_class)
    # Clique edges within each class.
    rows, cols = [], []
    for c in range(n_classes):
        members = np.arange(c * n_per_class, (c + 1) * n_per_class)
        pairs = rng.integers(0, n_per_class, size=(6 * n_per_class, 2))
        rows.append(members[pairs[:, 0]])
        cols.append(members[pairs[:, 1]])
    rows, cols = np.concatenate(rows), np.concatenate(cols)
    keep = rows != cols
    graph = csr_from_coo(rows[keep], cols[keep], None, shape=(m, m), sum_duplicates=True)
    graph = graph.with_values(np.ones(graph.nnz, dtype=np.float32))
    feats = rng.standard_normal((m, feat_dim)).astype(np.float32) * 0.1
    feats[np.arange(m), labels] += 2.0  # class-indicative coordinate
    train_mask = np.zeros(m, dtype=bool)
    train_mask[rng.choice(m, size=m // 2, replace=False)] = True
    return CitationDataset(
        name="tiny", graph=graph, features=feats, labels=labels.astype(np.int64),
        train_mask=train_mask, val_mask=~train_mask, test_mask=~train_mask,
        n_classes=n_classes,
    )


@pytest.fixture(scope="module")
def tiny():
    return tiny_dataset()


class TestLayers:
    @pytest.mark.parametrize("layer_cls", [GCNLayer, SAGEGcnLayer], ids=["gcn", "sage-gcn"])
    def test_forward_shape(self, tiny, layer_cls, rng):
        layer = layer_cls(tiny.feature_dim, 8, rng)
        backend = DGLBackend(SimDevice(GTX_1080TI))
        out = layer(backend, GraphPair(tiny.graph), Tensor(tiny.features))
        assert out.shape == (tiny.n_nodes, 8)
        assert np.isfinite(out.data).all()

    def test_pool_layer_shape_and_params(self, tiny, rng):
        layer = SAGEPoolLayer(tiny.feature_dim, 8, rng)
        assert len(layer.parameters()) == 4  # w_pool, b_pool, w, b
        backend = DGLBackend(SimDevice(GTX_1080TI), use_gespmm=True)
        out = layer(backend, GraphPair(tiny.graph), Tensor(tiny.features))
        assert out.shape == (tiny.n_nodes, 8)

    def test_relu_activation_nonnegative(self, tiny, rng):
        layer = GCNLayer(tiny.feature_dim, 8, rng, activation=True)
        backend = DGLBackend(SimDevice(GTX_1080TI))
        out = layer(backend, GraphPair(tiny.graph), Tensor(tiny.features))
        assert (out.data >= 0).all()

    @pytest.mark.parametrize("out_dim", [4, 32], ids=["shrink", "widen"])
    def test_gcn_orders_projection_by_width(self, tiny, rng, out_dim):
        """A_hat (X W) == (A_hat X) W: the layer must aggregate at the
        narrower of in/out width (charging less to the device ledger)
        while staying allclose to the other ordering."""

        class _WidthRecordingBackend(DGLBackend):
            def __init__(self, device):
                super().__init__(device, use_gespmm=True)
                self.widths = []

            def aggregate(self, g, x, op="sum"):
                self.widths.append(x.data.shape[1])
                return super().aggregate(g, x, op)

        in_dim = tiny.feature_dim
        layer = GCNLayer(in_dim, out_dim, rng, activation=False)
        g = GraphPair(tiny.graph)
        backend = _WidthRecordingBackend(SimDevice(GTX_1080TI))
        out = layer(backend, g, Tensor(tiny.features))

        # The SpMM always runs at the narrower width.
        assert backend.widths == [min(in_dim, out_dim)]

        # Both orderings agree numerically (associativity of A_hat X W).
        from repro.sparse import reference_spmm_like

        a_hat = g.sym_normalized_with_loops().adj
        project_first = reference_spmm_like(a_hat, tiny.features @ layer.w.data)
        aggregate_first = reference_spmm_like(a_hat, tiny.features) @ layer.w.data
        np.testing.assert_allclose(project_first, aggregate_first, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(out.data, aggregate_first, rtol=1e-4, atol=1e-5)

    def test_gcn_shrinking_layer_charges_less_spmm_time(self, tiny, rng):
        """The width-aware ordering's ledger effect: a 12->4 layer must
        record strictly less simulated SpMM time than the same forward
        forced through the aggregate-at-input-width ordering."""
        from repro.gnn import functional as F

        layer = GCNLayer(tiny.feature_dim, 4, rng, activation=False)
        g = GraphPair(tiny.graph)

        dev_layer = SimDevice(GTX_1080TI)
        layer(DGLBackend(dev_layer, use_gespmm=True), g, Tensor(tiny.features))

        dev_wide = SimDevice(GTX_1080TI)
        wide_backend = DGLBackend(dev_wide, use_gespmm=True)
        h = wide_backend.aggregate(g.sym_normalized_with_loops(), Tensor(tiny.features))
        F.matmul(h, layer.w, dev_wide)

        assert dev_layer.profile().time("SpMM") < dev_wide.profile().time("SpMM")


class TestModels:
    def test_gcn_layer_count(self, tiny, rng):
        model = GCN(tiny.feature_dim, 16, tiny.n_classes, n_layers=2, rng=rng)
        assert len(model.layers) == 3  # 2 hidden + output
        assert len(model.parameters()) == 6

    def test_log_probs_normalized(self, tiny, rng):
        model = GCN(tiny.feature_dim, 8, tiny.n_classes, rng=rng)
        backend = DGLBackend(SimDevice(GTX_1080TI))
        model.eval()
        out = model(backend, GraphPair(tiny.graph), Tensor(tiny.features))
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0, rtol=1e-4)

    def test_bad_aggregator_rejected(self, tiny, rng):
        with pytest.raises(ValueError):
            GraphSAGE(4, 4, 2, aggregator="lstm", rng=rng)


class TestOptimizer:
    def test_adam_moves_parameters(self, rng):
        from repro.gnn.tensor import Parameter

        p = Parameter(np.ones(4, dtype=np.float32))
        p.accumulate_grad(np.full(4, 0.5, dtype=np.float32))
        opt = Adam([p], lr=0.1)
        before = p.data.copy()
        opt.step()
        assert not np.allclose(p.data, before)

    def test_adam_skips_gradless(self):
        from repro.gnn.tensor import Parameter

        p = Parameter(np.ones(4, dtype=np.float32))
        Adam([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, 1.0)

    def test_zero_grad(self):
        from repro.gnn.tensor import Parameter

        p = Parameter(np.ones(2, dtype=np.float32))
        p.accumulate_grad(np.ones(2, dtype=np.float32))
        opt = Adam([p])
        opt.zero_grad()
        assert p.grad is None


class TestTraining:
    @pytest.mark.parametrize("backend_cls", [DGLBackend, PyGBackend], ids=["dgl", "pyg"])
    def test_gcn_learns_separable_data(self, tiny, backend_cls):
        model = GCN(tiny.feature_dim, 16, tiny.n_classes, rng=np.random.default_rng(0),
                    dropout=0.2)
        res = train(model, backend_cls(SimDevice(GTX_1080TI)), tiny, epochs=40, lr=0.05)
        assert res.losses[-1] < res.losses[0] * 0.5
        assert res.test_accuracy > 0.9

    def test_sage_pool_learns(self, tiny):
        model = GraphSAGE(tiny.feature_dim, 16, tiny.n_classes, aggregator="pool",
                          rng=np.random.default_rng(0), dropout=0.0)
        res = train(model, DGLBackend(SimDevice(GTX_1080TI), use_gespmm=True),
                    tiny, epochs=40, lr=0.05)
        assert res.losses[-1] < res.losses[0]
        assert res.test_accuracy > 0.8

    def test_profile_counts_epochs_not_warmup(self, tiny):
        model = GCN(tiny.feature_dim, 8, tiny.n_classes, rng=np.random.default_rng(0))
        dev = SimDevice(GTX_1080TI)
        res = train(model, DGLBackend(dev), tiny, epochs=4, warmup=2)
        assert res.epochs == 4
        assert len(res.losses) == 4
        # SpMM calls: 2 per layer pass (fwd+bwd) x 2 layers x 4 epochs.
        assert res.profile.calls["SpMM"] == 16

    def test_spmm_share_in_sane_band(self, tiny):
        model = GCN(tiny.feature_dim, 8, tiny.n_classes, rng=np.random.default_rng(0))
        res = train(model, DGLBackend(SimDevice(GTX_1080TI)), tiny, epochs=3)
        assert 0.0 < res.spmm_share() < 1.0

    def test_evaluate_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        labels = np.array([0, 1, 1])
        assert evaluate_accuracy(logits, labels, np.array([True, True, True])) == pytest.approx(2 / 3)
        assert evaluate_accuracy(logits, labels, np.zeros(3, dtype=bool)) == 0.0

    def test_gespmm_swap_preserves_numerics(self, tiny):
        losses = []
        for use_ge in (False, True):
            model = GCN(tiny.feature_dim, 8, tiny.n_classes, rng=np.random.default_rng(0),
                        dropout=0.0)
            res = train(model, DGLBackend(SimDevice(GTX_1080TI), use_gespmm=use_ge),
                        tiny, epochs=5, seed=0)
            losses.append(res.losses)
        np.testing.assert_allclose(losses[0], losses[1], rtol=1e-5)


class TestCitationIntegration:
    def test_cora_end_to_end(self):
        ds = load_citation("cora")
        model = GCN(ds.feature_dim, 16, ds.n_classes, rng=np.random.default_rng(0))
        res = train(model, DGLBackend(SimDevice(GTX_1080TI)), ds, epochs=15)
        assert res.test_accuracy > 0.6  # community-aligned synthetic twin
        assert res.total_time > 0

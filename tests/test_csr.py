"""Unit tests for the CSR substrate."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import CSRMatrix, csr_from_coo, csr_from_dense, csr_from_scipy


class TestConstruction:
    def test_fig4_example(self, small_csr):
        # The paper's Fig. 4: rowPtr = [0,2,3,6,7], colInd = [1,2,0,1,2,3,2]
        assert small_csr.rowptr.tolist() == [0, 2, 3, 6, 7]
        assert small_csr.colind.tolist() == [1, 2, 0, 1, 2, 3, 2]
        assert small_csr.values.tolist() == [1, 2, 3, 4, 5, 6, 7]

    def test_dtypes(self, small_csr):
        assert small_csr.rowptr.dtype == np.int32
        assert small_csr.colind.dtype == np.int32
        assert small_csr.values.dtype == np.float32

    def test_nnz_and_shape(self, small_csr):
        assert small_csr.nnz == 7
        assert small_csr.shape == (4, 4)
        assert small_csr.nrows == 4 and small_csr.ncols == 4

    def test_row_lengths(self, small_csr):
        assert small_csr.row_lengths().tolist() == [2, 1, 3, 1]
        assert small_csr.mean_row_length() == pytest.approx(7 / 4)

    def test_row_slice(self, small_csr):
        cols, vals = small_csr.row_slice(2)
        assert cols.tolist() == [1, 2, 3]
        assert vals.tolist() == [4, 5, 6]

    def test_empty_matrix(self):
        m = csr_from_coo([], [], [], shape=(3, 5))
        assert m.nnz == 0
        assert m.to_dense().shape == (3, 5)
        assert not m.to_dense().any()

    def test_zero_dimension(self):
        m = csr_from_coo([], [], [], shape=(0, 0))
        assert m.nnz == 0 and m.nrows == 0

    def test_rowptr_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="rowptr"):
            CSRMatrix((3, 3), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_rowptr_not_monotone_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix((3, 2), np.array([0, 2, 1, 2]), np.array([0, 1]), np.array([1.0, 2.0]))

    def test_rowptr_nnz_mismatch_rejected(self):
        with pytest.raises(ValueError, match="nnz"):
            CSRMatrix((2, 2), np.array([0, 1, 3]), np.array([0, 1]), np.array([1.0, 2.0]))

    def test_column_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="column"):
            CSRMatrix((2, 2), np.array([0, 1, 2]), np.array([0, 5]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="column"):
            csr_from_coo([0], [9], [1.0], shape=(2, 2))

    def test_row_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="row"):
            csr_from_coo([5], [0], [1.0], shape=(2, 2))

    def test_mismatched_coo_rejected(self):
        with pytest.raises(ValueError):
            csr_from_coo([0, 1], [0], shape=(2, 2))

    def test_default_values_are_ones(self):
        m = csr_from_coo([0, 1], [1, 0], shape=(2, 2))
        assert m.values.tolist() == [1.0, 1.0]

    def test_sum_duplicates(self):
        m = csr_from_coo([0, 0, 0], [1, 1, 2], [1.0, 2.0, 5.0], shape=(2, 3), sum_duplicates=True)
        assert m.nnz == 2
        assert m.to_dense()[0].tolist() == [0.0, 3.0, 5.0]

    def test_duplicates_kept_without_flag(self):
        m = csr_from_coo([0, 0], [1, 1], [1.0, 2.0], shape=(1, 2))
        assert m.nnz == 2
        # SpMM semantics accumulate duplicates, like COO.
        assert m.to_dense()[0, 1] == 3.0


class TestConversions:
    def test_dense_roundtrip(self, rng):
        d = (rng.random((6, 9)) > 0.6) * rng.standard_normal((6, 9))
        m = csr_from_dense(d)
        np.testing.assert_allclose(m.to_dense(), d.astype(np.float32), rtol=1e-6)

    def test_dense_tolerance(self):
        d = np.array([[0.05, 1.0], [0.0, -0.01]])
        m = csr_from_dense(d, tol=0.06)
        assert m.nnz == 1

    def test_dense_requires_2d(self):
        with pytest.raises(ValueError):
            csr_from_dense(np.zeros(4))

    def test_scipy_roundtrip(self, medium_csr):
        back = csr_from_scipy(medium_csr.to_scipy())
        assert back.allclose(medium_csr)

    def test_scipy_from_coo_matrix(self):
        coo = sp.coo_matrix(([1.0, 2.0], ([0, 1], [1, 0])), shape=(2, 2))
        m = csr_from_scipy(coo)
        assert m.nnz == 2

    def test_to_coo_order(self, small_csr):
        rows, cols, vals = small_csr.to_coo()
        assert rows.tolist() == [0, 0, 1, 2, 2, 2, 3]
        assert cols.tolist() == [1, 2, 0, 1, 2, 3, 2]


class TestTransforms:
    def test_transpose_matches_scipy(self, medium_csr):
        t = medium_csr.transpose()
        np.testing.assert_allclose(
            t.to_dense(), medium_csr.to_scipy().T.toarray(), rtol=1e-6
        )

    def test_transpose_involution(self, medium_csr):
        assert medium_csr.transpose().transpose().allclose(medium_csr.sorted_rows())

    def test_transpose_shape(self):
        m = csr_from_coo([0], [4], [2.0], shape=(2, 6))
        assert m.transpose().shape == (6, 2)

    def test_with_values(self, small_csr):
        doubled = small_csr.with_values(small_csr.values * 2)
        assert doubled.pattern_equal(small_csr)
        np.testing.assert_allclose(doubled.to_dense(), small_csr.to_dense() * 2)

    def test_with_values_shape_check(self, small_csr):
        with pytest.raises(ValueError):
            small_csr.with_values(np.ones(3))

    def test_row_normalized(self, small_csr):
        n = small_csr.row_normalized()
        sums = n.to_dense().sum(axis=1)
        np.testing.assert_allclose(sums, np.ones(4), rtol=1e-5)

    def test_row_normalized_empty_row(self):
        m = csr_from_coo([0], [0], [2.0], shape=(3, 3))
        n = m.row_normalized()
        assert n.to_dense()[1].sum() == 0  # empty rows stay zero

    def test_sym_normalized(self):
        # For a k-regular symmetric graph, sym-norm entries are all 1/k.
        d = np.ones((4, 4), dtype=np.float32) - np.eye(4, dtype=np.float32)
        m = csr_from_dense(d).sym_normalized()
        vals = m.to_dense()[m.to_dense() > 0]
        np.testing.assert_allclose(vals, 1 / 3, rtol=1e-5)

    def test_add_self_loops(self, small_csr):
        looped = small_csr.add_self_loops(weight=2.0)
        d = looped.to_dense()
        np.testing.assert_allclose(np.diag(d), [2.0, 2.0, 7.0, 2.0])  # (2,2) had 5, gets +2

    def test_add_self_loops_requires_square(self):
        m = csr_from_coo([0], [1], [1.0], shape=(2, 3))
        with pytest.raises(ValueError):
            m.add_self_loops()

    def test_equality_helpers(self, small_csr):
        assert small_csr.pattern_equal(small_csr)
        assert small_csr.allclose(small_csr)
        other = small_csr.with_values(small_csr.values + 1)
        assert not small_csr.allclose(other)
        assert small_csr.pattern_equal(other)

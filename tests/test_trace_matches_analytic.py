"""Property tests: the closed-form counters equal the faithful trace.

This is the load-bearing validation of the whole memory model: for the
three core kernels, the vectorized analytic counters in ``count`` must
agree *exactly* — instruction for instruction, sector for sector — with
a warp-by-warp execution through the trace-mode coalescing model, on
randomized matrices, feature widths (including non-multiples of 32) and
semirings, on both L1 policies.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CRCSpMM, CWMSpMM, GESpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.semiring import MAX_TIMES, PLUS_TIMES
from repro.sparse import reference_spmm_like, uniform_random

KERNELS = {
    "simple": SimpleSpMM,
    "crc": CRCSpMM,
    "cwm2": lambda: CWMSpMM(2),
    "cwm3": lambda: CWMSpMM(3),
    # adaptive front-end: the sampled widths cross the CRC/CWM dispatch
    # threshold, so both paths get trace parity asserted through it
    "gespmm": GESpMM,
}


def _assert_stats_equal(traced, analytic):
    for field in ("instructions", "transactions", "requested_bytes"):
        assert getattr(traced.global_load, field) == getattr(analytic.global_load, field), field
        assert getattr(traced.global_store, field) == getattr(analytic.global_store, field), field
        assert getattr(traced.shared_load, field) == getattr(analytic.shared_load, field), field
        assert getattr(traced.shared_store, field) == getattr(analytic.shared_store, field), field
    assert traced.warp_syncs == analytic.warp_syncs


@pytest.mark.parametrize("kernel_factory", KERNELS.values(), ids=KERNELS.keys())
@given(
    m=st.integers(4, 60),
    density=st.integers(1, 12),
    n=st.sampled_from([1, 8, 24, 32, 40, 64, 72]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=12, deadline=None)
def test_trace_equals_analytic(kernel_factory, m, density, n, seed):
    a = uniform_random(m=m, nnz=m * density, seed=seed)
    rng = np.random.default_rng(seed)
    b = rng.random((a.ncols, n), dtype=np.float32)
    kernel = kernel_factory()
    c, traced = kernel.trace(a, b, GTX_1080TI)
    analytic, _, _ = kernel.count(a, n, GTX_1080TI)
    _assert_stats_equal(traced, analytic)
    np.testing.assert_allclose(c, reference_spmm_like(a, b), rtol=1e-4, atol=1e-4)


@pytest.mark.parametrize("kernel_factory", KERNELS.values(), ids=KERNELS.keys())
def test_trace_equals_analytic_on_turing_raw_counts(kernel_factory, rng):
    """Raw (pre-L1) counts are device independent; trace on the Turing
    model must still match the analytic raw counters."""
    a = uniform_random(m=40, nnz=300, seed=5)
    b = rng.random((a.ncols, 48), dtype=np.float32)
    kernel = kernel_factory()
    _, traced = kernel.trace(a, b, RTX_2080)
    analytic, _, _ = kernel.count(a, 48, RTX_2080)
    _assert_stats_equal(traced, analytic)


@pytest.mark.parametrize("kernel_factory", KERNELS.values(), ids=KERNELS.keys())
def test_trace_with_max_semiring(kernel_factory, rng):
    a = uniform_random(m=30, nnz=240, seed=8)
    b = rng.standard_normal((a.ncols, 40)).astype(np.float32)
    kernel = kernel_factory()
    c, traced = kernel.trace(a, b, GTX_1080TI, MAX_TIMES)
    np.testing.assert_allclose(c, reference_spmm_like(a, b, MAX_TIMES), rtol=1e-4, atol=1e-4)
    # Access pattern is semiring independent.
    analytic, _, _ = kernel.count(a, 40, GTX_1080TI)
    _assert_stats_equal(traced, analytic)


def test_simple_l1_filter_bounded(rng):
    """The trace's L1-filtered count on Turing is bounded by the raw
    count and (for the broadcast-heavy simple kernel) well below it."""
    a = uniform_random(m=50, nnz=1200, seed=3)
    b = rng.random((a.ncols, 64), dtype=np.float32)
    _, traced = SimpleSpMM().trace(a, b, RTX_2080)
    gl = traced.global_load
    assert 0 < gl.l1_filtered_transactions < gl.transactions
    # The analytic counter also predicts substantial filtering.  (It is
    # deliberately conservative: on tiny trace matrices the whole dense
    # operand fits in the L1 window, so the trace filters *more*.)
    analytic, _, _ = SimpleSpMM().count(a, 64, RTX_2080)
    agl = analytic.global_load
    assert 0 < agl.l1_filtered_transactions < agl.transactions
    assert agl.l1_filtered_transactions >= gl.l1_filtered_transactions

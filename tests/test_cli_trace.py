"""CLI telemetry end-to-end: --trace-out / --metrics-out / --bench-json.

Runs the real ``repro-bench`` entry point in-process against a tmpdir and
checks the acceptance contract: valid Chrome-trace JSON, a metrics JSONL
carrying the paper's four nvprof metrics for every profiled kernel, a
schema-valid BENCH artifact from ``sweep``, and byte-identical stdout
when no sink is configured.
"""

from __future__ import annotations

import contextlib
import io
import json

import pytest

from repro import obs
from repro.bench.telemetry import validate_bench_document
from repro.cli import main
from repro.obs.metrics import MetricsRegistry

NVPROF_METRICS = (
    "nvprof.gld_transactions",
    "nvprof.gld_efficiency",
    "nvprof.gld_throughput",
    "nvprof.achieved_occupancy",
)

SMALL_GRAPH = ["--graph", "random", "--m", "3000", "--nnz", "24000"]


@pytest.fixture(autouse=True)
def fresh_registry():
    prev = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(prev)


def run_cli(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = main(argv)
    return rc, out.getvalue()


def test_profile_trace_and_metrics_out(tmp_path):
    trace = tmp_path / "t.json"
    metrics = tmp_path / "m.jsonl"
    kernels = ["simple", "crc", "gespmm", "cusparse"]
    rc, _ = run_cli(
        ["profile", *SMALL_GRAPH, "--n", "64", "--kernels", *kernels,
         "--trace-out", str(trace), "--metrics-out", str(metrics)]
    )
    assert rc == 0

    doc = json.loads(trace.read_text())  # valid Chrome trace JSON
    events = doc["traceEvents"]
    assert [e["name"] for e in events].count("profile.kernel") == len(kernels)
    assert all(e["ts"] >= 0 and e.get("dur", 0) >= 0 for e in events)

    lines = [json.loads(l) for l in metrics.read_text().splitlines() if l.strip()]
    for metric in NVPROF_METRICS:
        profiled = {l["labels"]["kernel"] for l in lines if l["name"] == metric}
        assert {"simple", "crc", "GE-SpMM", "cuSPARSE csrmm2"} <= profiled


def test_trace_subcommand_writes_default_chrome_trace(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc, out = run_cli(["trace", *SMALL_GRAPH, "--n", "64"])
    assert rc == 0
    assert "traced 4 kernels" in out
    doc = json.loads((tmp_path / "trace.json").read_text())
    assert any(e["name"] == "trace.profile" for e in doc["traceEvents"])


def test_trace_out_jsonl_suffix_switches_format(tmp_path):
    trace = tmp_path / "t.jsonl"
    rc, _ = run_cli(["profile", *SMALL_GRAPH, "--n", "64", "--trace-out", str(trace)])
    assert rc == 0
    spans = [json.loads(l) for l in trace.read_text().splitlines() if l.strip()]
    assert {"name", "parent", "sim_time_s", "attrs"} <= set(spans[0])


def test_sweep_bench_json_is_schema_valid(tmp_path):
    bench = tmp_path / "BENCH_spmm.json"
    rc, _ = run_cli(
        ["sweep", "--graphs", "2", "--max-nnz", "20000", "--n", "64",
         "--bench-json", str(bench)]
    )
    assert rc == 0
    doc = json.loads(bench.read_text())
    assert validate_bench_document(doc) == []
    assert doc["run"]["command"] == "sweep"
    assert {c["kernel"] for c in doc["cells"]} == {
        "GraphBLAST rowsplit", "cuSPARSE csrmm2", "mergepath", "GE-SpMM"
    }
    assert doc["geomeans"]  # GE-SpMM vs both baselines


def test_stdout_byte_identical_with_and_without_sinks(tmp_path):
    argv = ["profile", *SMALL_GRAPH, "--n", "64"]
    _, plain = run_cli(argv)
    _, sinked = run_cli(
        argv + ["--trace-out", str(tmp_path / "t.json"),
                "--metrics-out", str(tmp_path / "m.jsonl")]
    )
    assert plain == sinked  # zero-overhead-by-default contract
    assert plain.startswith("[random] N=64")


def test_tracer_uninstalled_after_cli_run(tmp_path):
    run_cli(["profile", *SMALL_GRAPH, "--n", "64",
             "--trace-out", str(tmp_path / "t.json")])
    assert obs.get_tracer() is None

"""The benchmark regression gate (`repro.bench.gate` + `repro-bench gate`).

Covers document diffing (per-cell time/GFLOPS, geomeans, added/removed
cells), accepted-drift annotations, report determinism in both
renderings, exit codes, and the two `make gate` paths the repo relies
on: exit 0 on an unchanged tree, non-zero when a timing-model edit
shifts a BENCH_spmm.json cell without an annotation.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.baselines import CusparseCsrmm2
from repro.bench import bench_document, run_sweep
from repro.bench.gate import (
    EXIT_OK,
    EXIT_REGRESSED,
    EXIT_USAGE,
    AcceptedDrift,
    DRIFT_SCHEMA_ID,
    GateError,
    GateThresholds,
    diff_documents,
    explain_attribution_drift,
    gate_paths,
    geomean_key,
    load_accepted_drift,
    load_bench_document,
)
from repro.cli import main as cli_main
from repro.core import GESpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI
from repro.sparse import uniform_random

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def doc():
    graphs = {
        "rand-a": uniform_random(m=400, nnz=3200, seed=21),
        "rand-b": uniform_random(m=300, nnz=3600, seed=22),
    }
    kernels = [SimpleSpMM(), CusparseCsrmm2(), GESpMM()]
    results = run_sweep(kernels, graphs, [64, 128], [GTX_1080TI])
    return bench_document(results)


def _mutated(doc, **cell_updates):
    out = copy.deepcopy(doc)
    out["cells"][0].update(cell_updates)
    return out


# -- document diffing -------------------------------------------------------


def test_identical_documents_pass(doc):
    report = diff_documents(doc, copy.deepcopy(doc))
    assert report.passed
    assert report.exit_code == EXIT_OK
    assert report.regressions == [] and report.accepted == []
    assert report.cells_compared == len(doc["cells"])
    assert report.geomeans_compared == len(doc["geomeans"])
    assert "PASS" in report.format()


def test_time_drift_fails(doc):
    cur = _mutated(doc, time_ms=doc["cells"][0]["time_ms"] * 1.3)
    report = diff_documents(doc, cur)
    assert not report.passed and report.exit_code == EXIT_REGRESSED
    assert any(d.metric == "time_ms" for d in report.regressions)
    c = doc["cells"][0]
    key = f"{c['kernel']}|{c['graph']}|N={c['n']}|{c['gpu']}"
    assert any(d.key == key for d in report.regressions)
    assert "UNEXPLAINED DRIFT" in report.format() and key in report.format()


def test_gflops_drift_fails_independently(doc):
    cur = _mutated(doc, gflops=doc["cells"][0]["gflops"] * 0.5)
    report = diff_documents(doc, cur)
    assert [d.metric for d in report.regressions] == ["gflops"]


def test_drift_within_tolerance_passes(doc):
    cur = _mutated(doc, time_ms=doc["cells"][0]["time_ms"] * 1.01)
    thresholds = GateThresholds(time_rel_tol=0.05)
    assert diff_documents(doc, cur, thresholds=thresholds).passed
    # the same drift fails under the default zero tolerance
    assert not diff_documents(doc, cur).passed


def test_removed_cell_is_presence_drift(doc):
    cur = copy.deepcopy(doc)
    removed = cur["cells"].pop(0)
    report = diff_documents(doc, cur)
    presence = [d for d in report.regressions if d.metric == "presence"]
    assert len(presence) == 1 and presence[0].drift == float("-inf")
    assert removed["kernel"] in presence[0].key
    assert "removed" in presence[0].describe()
    assert report.cells_compared == len(doc["cells"]) - 1


def test_added_cell_is_presence_drift(doc):
    cur = copy.deepcopy(doc)
    extra = dict(cur["cells"][0], graph="brand-new-graph")
    cur["cells"].append(extra)
    report = diff_documents(doc, cur)
    presence = [d for d in report.regressions if d.metric == "presence"]
    assert len(presence) == 1 and presence[0].drift == float("inf")
    assert "appeared" in presence[0].describe()


def test_geomean_drift_detected(doc):
    assert doc["geomeans"], "fixture must produce geomeans"
    cur = copy.deepcopy(doc)
    cur["geomeans"][0]["speedup"] *= 1.1
    report = diff_documents(doc, cur)
    assert [d.metric for d in report.regressions] == ["speedup"]
    assert report.regressions[0].key == geomean_key(doc["geomeans"][0])
    assert report.regressions[0].key.startswith("geomean:")


def test_invalid_document_raises_gate_error(doc):
    with pytest.raises(GateError, match="schema"):
        diff_documents(doc, {"schema": "nope"})


# -- accepted drift ---------------------------------------------------------


def _key_of(cell):
    return f"{cell['kernel']}|{cell['graph']}|N={cell['n']}|{cell['gpu']}"


def test_annotation_accepts_matching_drift(doc):
    cur = _mutated(doc, time_ms=doc["cells"][0]["time_ms"] * 1.3,
                   gflops=doc["cells"][0]["gflops"] / 1.3)
    ann = AcceptedDrift(pattern=_key_of(doc["cells"][0]),
                        reason="test: intentional model change")
    report = diff_documents(doc, cur, accepted=[ann])
    assert report.passed
    assert {d.metric for d in report.accepted} == {"time_ms", "gflops"}
    assert all(d.reason == ann.reason for d in report.accepted)
    assert "accepted drift" in report.format() and ann.reason in report.format()


def test_annotation_glob_and_metric_filter(doc):
    cur = _mutated(doc, time_ms=doc["cells"][0]["time_ms"] * 1.3,
                   gflops=doc["cells"][0]["gflops"] * 1.3)
    ann = AcceptedDrift(pattern="*", reason="time only", metrics=("time_ms",))
    report = diff_documents(doc, cur, accepted=[ann])
    # the gflops drift is NOT covered, so the gate still fails
    assert not report.passed
    assert [d.metric for d in report.accepted] == ["time_ms"]
    assert [d.metric for d in report.regressions] == ["gflops"]


def test_annotation_max_drift_cap(doc):
    cur = _mutated(doc, time_ms=doc["cells"][0]["time_ms"] * 3.0)
    capped = AcceptedDrift(pattern="*", reason="small fix", max_drift=0.10)
    report = diff_documents(doc, cur, accepted=[capped])
    # +200% blows through the 10% cap: still a regression
    assert not report.passed


def test_annotation_does_not_cover_presence_by_default(doc):
    cur = copy.deepcopy(doc)
    cur["cells"].pop(0)
    ann = AcceptedDrift(pattern="*", reason="renamed kernels",
                        metrics=("time_ms", "gflops"))
    assert not diff_documents(doc, cur, accepted=[ann]).passed
    allow = AcceptedDrift(pattern="*", reason="renamed kernels")
    assert diff_documents(doc, cur, accepted=[allow]).passed


def test_load_accepted_drift_round_trip(tmp_path):
    path = tmp_path / "BENCH_accepted_drift.json"
    path.write_text(json.dumps({
        "schema": DRIFT_SCHEMA_ID,
        "entries": [
            {"pattern": "crc|*", "reason": "CRC model fix",
             "metrics": ["time_ms"], "max_drift": 0.2},
            {"pattern": "*", "reason": "catch-all"},
        ],
    }))
    anns = load_accepted_drift(path)
    assert [a.pattern for a in anns] == ["crc|*", "*"]
    assert anns[0].metrics == ("time_ms",) and anns[0].max_drift == 0.2
    assert anns[1].metrics is None


@pytest.mark.parametrize("payload,match", [
    ({"schema": "wrong"}, "schema"),
    ({"schema": DRIFT_SCHEMA_ID, "entries": {}}, "list"),
    ({"schema": DRIFT_SCHEMA_ID, "entries": [{"pattern": "x"}]}, "reason"),
    ({"schema": DRIFT_SCHEMA_ID,
      "entries": [{"pattern": "x", "reason": "  "}]}, "reason"),
    ({"schema": DRIFT_SCHEMA_ID,
      "entries": [{"pattern": "", "reason": "r"}]}, "pattern"),
    ({"schema": DRIFT_SCHEMA_ID,
      "entries": [{"pattern": "x", "reason": "r", "metrics": ["nope"]}]},
     "metrics"),
    ({"schema": DRIFT_SCHEMA_ID,
      "entries": [{"pattern": "x", "reason": "r", "max_drift": -1}]},
     "max_drift"),
    ({"schema": DRIFT_SCHEMA_ID,
      "entries": [{"pattern": "x", "reason": "r", "typo": 1}]}, "unknown"),
])
def test_load_accepted_drift_rejects_malformed(tmp_path, payload, match):
    path = tmp_path / "drift.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(GateError, match=match):
        load_accepted_drift(path)


# -- gate --explain (attribution diffs) -------------------------------------


@pytest.fixture(scope="module")
def perturbed_docs():
    """Baseline and current BENCH documents where the current side came
    from a perturbed ``TimingParams`` — the lower streaming-locality L2
    hit floor inflates DRAM traffic until it becomes the binding ceiling,
    the synthetic timing-model drift ``--explain`` must attribute."""
    from repro.bench.runner import KernelResult
    from repro.gpusim.timing import TimingParams
    from repro.sparse.ops import flops_of_spmm

    graph = uniform_random(m=65_536, nnz=650_000, seed=5)
    gpu = GTX_1080TI

    def doc_with(params):
        k = GESpMM()
        t = k.estimate(graph, 512, gpu, params=params)
        r = KernelResult(kernel=k.name, graph="rand", n=512, gpu=gpu.name,
                         time_s=t.time_s,
                         gflops=t.gflops(flops_of_spmm(graph, 512)),
                         attribution=t.attribution())
        return bench_document([r])

    return doc_with(None), doc_with(TimingParams(streaming_hit_floor=0.3))


def test_explain_names_drifted_component(perturbed_docs):
    base, cur = perturbed_docs
    report = diff_documents(base, cur, explain=True)
    assert not report.passed
    assert report.regressions, "the perturbation must drift the cell"
    for d in report.regressions:
        # the moved ceiling is named first, biggest mover first
        assert d.explanation.startswith("bound l2_link -> dram; dram +")
        assert "all else <1%" in d.explanation
        assert d.explanation in d.describe()
    assert "explain:" in report.format()


def test_explain_off_by_default(perturbed_docs):
    base, cur = perturbed_docs
    report = diff_documents(base, cur)
    assert all(d.explanation == "" for d in report.regressions)
    assert "explain:" not in report.format()


def test_explain_survives_json_round_trip(perturbed_docs):
    base, cur = perturbed_docs
    report = diff_documents(base, cur, explain=True)
    rows = report.to_json()["regressions"]
    assert all("dram" in r["explanation"] for r in rows)
    # without --explain the key is absent, keeping old reports byte-stable
    rows = diff_documents(base, cur).to_json()["regressions"]
    assert all("explanation" not in r for r in rows)


def test_explain_attribution_drift_direct(doc):
    base_cell = copy.deepcopy(doc["cells"][0])
    cur_cell = copy.deepcopy(base_cell)
    assert "attribution" in base_cell, "sweep cells must carry attribution"
    cur_cell["attribution"]["breakdown_ms"]["dram"] *= 1.312
    text = explain_attribution_drift(base_cell, cur_cell)
    assert text.startswith("dram +31.2%")
    # identical blocks explain to "nothing moved"
    same = explain_attribution_drift(base_cell, copy.deepcopy(base_cell))
    assert "no attribution component moved" in same
    # documents without attribution (older BENCH files) degrade to ""
    bare = {k: v for k, v in base_cell.items() if k != "attribution"}
    assert explain_attribution_drift(bare, cur_cell) == ""


def test_cli_gate_explain_flag(tmp_path, perturbed_docs):
    base, cur = perturbed_docs
    bpath = tmp_path / "base.json"
    bpath.write_text(json.dumps(base))
    cpath = tmp_path / "cur.json"
    cpath.write_text(json.dumps(cur))
    out = tmp_path / "report.json"
    rc = cli_main(["gate", "--baseline", str(bpath), "--current", str(cpath),
                   "--explain", "--json-out", str(out)])
    assert rc == EXIT_REGRESSED
    rows = json.loads(out.read_text())["regressions"]
    assert rows and all(
        r["explanation"].startswith("bound l2_link -> dram") for r in rows
    )


def test_cli_gate_accepts_telemetry_sinks(tmp_path, doc):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(doc))
    trace = tmp_path / "gate.jsonl"
    metrics = tmp_path / "gate-metrics.jsonl"
    rc = cli_main(["gate", "--baseline", str(base), "--current", str(base),
                   "--trace-out", str(trace), "--metrics-out", str(metrics)])
    assert rc == EXIT_OK
    # both sinks exist and are well-formed (the document-vs-document path
    # records no spans, so the JSONL trace may be empty)
    assert trace.exists() and metrics.exists()
    for path in (trace, metrics):
        for line in path.read_text().splitlines():
            if line.strip():
                json.loads(line)


# -- reports ----------------------------------------------------------------


def test_report_json_is_deterministic_and_strict(doc):
    cur = _mutated(doc, time_ms=doc["cells"][0]["time_ms"] * 1.3)
    cur["cells"].pop(1)
    report = diff_documents(doc, cur)
    blob = json.dumps(report.to_json(), sort_keys=True)
    again = json.dumps(diff_documents(doc, cur).to_json(), sort_keys=True)
    assert blob == again
    # presence drifts (inf) must survive a *strict* JSON round-trip
    parsed = json.loads(blob, parse_constant=lambda c: pytest.fail(f"non-strict JSON: {c}"))
    assert parsed["passed"] is False
    assert parsed["summary"]["regressed"] == len(report.regressions)


def test_report_lists_are_sorted_by_key(doc):
    cur = copy.deepcopy(doc)
    for cell in cur["cells"]:
        cell["time_ms"] *= 2.0
    report = diff_documents(doc, cur)
    keys = [(d.key, d.metric) for d in report.regressions]
    assert keys == sorted(keys)


# -- file-level + CLI -------------------------------------------------------


def test_gate_paths_and_cli_exit_codes(tmp_path, doc):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(doc))
    same = tmp_path / "same.json"
    same.write_text(json.dumps(doc))
    bad = tmp_path / "drifted.json"
    bad.write_text(json.dumps(_mutated(doc, time_ms=doc["cells"][0]["time_ms"] * 2)))

    assert gate_paths(base, same).passed
    assert not gate_paths(base, bad).passed

    assert cli_main(["gate", "--baseline", str(base), "--current", str(same)]) == EXIT_OK
    assert cli_main(["gate", "--baseline", str(base), "--current", str(bad)]) == EXIT_REGRESSED
    # tolerances are CLI-configurable
    assert cli_main(["gate", "--baseline", str(base), "--current", str(bad),
                     "--time-tol", "1.5"]) == EXIT_OK


def test_cli_usage_errors_exit_2(tmp_path, doc):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(doc))
    missing = tmp_path / "missing.json"
    assert cli_main(["gate", "--baseline", str(missing), "--current", str(base)]) == EXIT_USAGE
    invalid = tmp_path / "invalid.json"
    invalid.write_text("{\"schema\": \"nope\"}")
    assert cli_main(["gate", "--baseline", str(invalid), "--current", str(base)]) == EXIT_USAGE


def test_cli_picks_up_default_annotation_file(tmp_path, doc):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(doc))
    drifted = tmp_path / "drifted.json"
    drifted.write_text(json.dumps(_mutated(doc, time_ms=doc["cells"][0]["time_ms"] * 2)))
    assert cli_main(["gate", "--baseline", str(base),
                     "--current", str(drifted)]) == EXIT_REGRESSED
    # BENCH_accepted_drift.json next to the baseline is found automatically
    (tmp_path / "BENCH_accepted_drift.json").write_text(json.dumps({
        "schema": DRIFT_SCHEMA_ID,
        "entries": [{"pattern": "*", "reason": "test annotation"}],
    }))
    assert cli_main(["gate", "--baseline", str(base),
                     "--current", str(drifted)]) == EXIT_OK


def test_cli_json_out(tmp_path, doc):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(doc))
    out = tmp_path / "report.json"
    rc = cli_main(["gate", "--baseline", str(base), "--current", str(base),
                   "--json-out", str(out)])
    assert rc == EXIT_OK
    parsed = json.loads(out.read_text())
    assert parsed["schema"] == "repro/bench-gate-report/v1"
    assert parsed["passed"] is True


# -- the `make gate` contract over the committed artifact -------------------


@pytest.fixture(scope="module")
def committed_doc():
    return load_bench_document(REPO_ROOT / "BENCH_spmm.json")


def test_make_gate_green_on_unchanged_tree(committed_doc):
    """`make gate` path (a): regenerating the telemetry sweep in-process
    reproduces the committed BENCH_spmm.json exactly, so the gate exits 0."""
    rc = cli_main(["gate", "--baseline", str(REPO_ROOT / "BENCH_spmm.json"),
                   "--graphs", "6", "--n", "128", "512"])
    assert rc == EXIT_OK


def test_make_gate_red_on_model_drift(tmp_path, committed_doc):
    """`make gate` path (b): a timing-model edit that shifts any cell
    makes the same invocation exit non-zero."""
    drifted = copy.deepcopy(committed_doc)
    drifted["cells"][0]["time_ms"] *= 1.07  # a 7% model shift
    baseline = tmp_path / "BENCH_spmm.json"
    baseline.write_text(json.dumps(drifted))
    rc = cli_main(["gate", "--baseline", str(baseline),
                   "--graphs", "6", "--n", "128", "512"])
    assert rc == EXIT_REGRESSED


def test_committed_artifact_matches_writer(tmp_path, committed_doc):
    """The committed file is exactly what write_bench_json would emit —
    i.e. nobody hand-edited BENCH_spmm.json past the validator."""
    blob = json.dumps(committed_doc, indent=2, sort_keys=True) + "\n"
    assert (REPO_ROOT / "BENCH_spmm.json").read_text() == blob

"""Functional correctness of every simulated kernel against the oracle."""

import numpy as np
import pytest

from repro.baselines import (
    ASpTSpMM,
    CusparseCsrmm2,
    DGLFallbackSpMMLike,
    GraphBlastRowSplit,
    GunrockAdvanceSpMM,
    SpMVLoopSpMM,
)
from repro.core import CRCSpMM, CWMSpMM, GESpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.semiring import MAX_TIMES, MEAN_TIMES, PLUS_TIMES
from repro.sparse import csr_from_coo, reference_spmm_like, uniform_random

ALL_KERNELS = [
    SimpleSpMM(),
    CRCSpMM(),
    CWMSpMM(2),
    CWMSpMM(4),
    GESpMM(),
    CusparseCsrmm2(),
    GraphBlastRowSplit(),
    GunrockAdvanceSpMM(),
    ASpTSpMM(),
    SpMVLoopSpMM(),
    DGLFallbackSpMMLike(),
]
GENERAL_KERNELS = [k for k in ALL_KERNELS if k.supports_general_semiring]


@pytest.fixture(scope="module")
def problem():
    a = uniform_random(m=257, nnz=2100, k=181, seed=9)  # non-square, odd sizes
    rng = np.random.default_rng(2)
    b = rng.standard_normal((181, 70)).astype(np.float32)  # N not multiple of 32
    return a, b


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
def test_standard_spmm_matches_oracle(kernel, problem):
    a, b = problem
    c = kernel.run(a, b)
    np.testing.assert_allclose(c, reference_spmm_like(a, b, PLUS_TIMES), rtol=1e-4, atol=1e-4)


@pytest.mark.parametrize("kernel", GENERAL_KERNELS, ids=lambda k: k.name)
@pytest.mark.parametrize("semiring", [MAX_TIMES, MEAN_TIMES], ids=lambda s: s.name)
def test_spmm_like_matches_oracle(kernel, semiring, problem):
    a, b = problem
    c = kernel.run(a, b, semiring)
    np.testing.assert_allclose(c, reference_spmm_like(a, b, semiring), rtol=1e-4, atol=1e-4)


@pytest.mark.parametrize(
    "kernel", [k for k in ALL_KERNELS if not k.supports_general_semiring], ids=lambda k: k.name
)
def test_vendor_kernels_refuse_semirings(kernel, problem):
    a, b = problem
    with pytest.raises(NotImplementedError):
        kernel.run(a, b, MAX_TIMES)
    with pytest.raises(NotImplementedError):
        kernel.estimate(a, 32, GTX_1080TI, MAX_TIMES)


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
def test_estimate_is_positive_and_finite(kernel, problem):
    a, _ = problem
    for gpu in (GTX_1080TI, RTX_2080):
        t = kernel.estimate(a, 64, gpu)
        assert np.isfinite(t.time_s) and t.time_s > 0
        assert t.gpu_name == gpu.name


@pytest.mark.parametrize("kernel", [SimpleSpMM(), CRCSpMM(), CWMSpMM(2), GESpMM()],
                         ids=lambda k: k.name)
def test_empty_matrix(kernel):
    a = csr_from_coo([], [], [], shape=(5, 5))
    b = np.ones((5, 8), dtype=np.float32)
    c = kernel.run(a, b)
    assert c.shape == (5, 8) and not c.any()
    t = kernel.estimate(a, 8, GTX_1080TI)
    assert t.time_s > 0  # at least the launch overhead


@pytest.mark.parametrize("kernel", [SimpleSpMM(), CRCSpMM(), CWMSpMM(3)], ids=lambda k: k.name)
def test_single_dense_row(kernel, rng):
    # One long row exercises multi-tile paths.
    cols = np.arange(100)
    a = csr_from_coo(np.zeros(100, dtype=int), cols, rng.random(100), shape=(1, 100))
    b = rng.random((100, 33), dtype=np.float32)
    np.testing.assert_allclose(kernel.run(a, b), reference_spmm_like(a, b), rtol=1e-4)


@pytest.mark.parametrize("n", [1, 31, 32, 33, 64, 65])
def test_gespmm_arbitrary_widths(n, rng):
    a = uniform_random(m=64, nnz=512, seed=4)
    b = rng.random((64, n), dtype=np.float32)
    kernel = GESpMM()
    np.testing.assert_allclose(kernel.run(a, b), reference_spmm_like(a, b), rtol=1e-4, atol=1e-4)
    assert kernel.estimate(a, n, GTX_1080TI).time_s > 0


def test_adaptive_dispatch_threshold():
    ge = GESpMM()
    for n in (1, 16, 32):
        assert ge.select(n).name == "crc"
    for n in (33, 64, 512):
        assert "cwm" in ge.select(n).name


def test_cwm_rejects_bad_cf():
    with pytest.raises(ValueError):
        CWMSpMM(0)


def test_crc_rejects_bad_tile():
    with pytest.raises(ValueError):
        CRCSpMM(tile=48)


def test_estimate_caching(problem):
    a, _ = problem
    k = GESpMM()
    t1 = k.estimate(a, 64, GTX_1080TI)
    t2 = k.estimate(a, 64, GTX_1080TI)
    assert t1 is t2  # memoized
    t3 = k.estimate(a, 128, GTX_1080TI)
    assert t3 is not t1


def test_convenience_wrappers(problem):
    from repro import gespmm, gespmm_like

    a, b = problem
    np.testing.assert_allclose(gespmm(a, b), reference_spmm_like(a, b), rtol=1e-4, atol=1e-4)
    np.testing.assert_allclose(
        gespmm_like(a, b, MAX_TIMES), reference_spmm_like(a, b, MAX_TIMES), rtol=1e-4, atol=1e-4
    )

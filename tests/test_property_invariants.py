"""Hypothesis property tests on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import _counting as cnt
from repro.gpusim.memory import segment_sectors, warp_sector_count
from repro.semiring import MAX_TIMES, MEAN_TIMES, PLUS_TIMES
from repro.sparse import (
    csr_from_coo,
    csr_from_dense,
    reference_spmm,
    reference_spmm_like,
    uniform_random,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

small_dense = arrays(
    np.float32,
    st.tuples(st.integers(1, 12), st.integers(1, 12)),
    elements=st.floats(-10, 10, width=32).map(
        lambda x: np.float32(0.0) if abs(x) < 0.5 else np.float32(x)
    ),
)


@st.composite
def random_csr(draw, max_m=40, max_k=40, max_nnz=200):
    m = draw(st.integers(1, max_m))
    k = draw(st.integers(1, max_k))
    nnz = draw(st.integers(0, min(max_nnz, m * k)))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=nnz)
    cols = rng.integers(0, k, size=nnz)
    vals = rng.standard_normal(nnz).astype(np.float32)
    return csr_from_coo(rows, cols, vals, shape=(m, k), sum_duplicates=True)


# ----------------------------------------------------------------------
# CSR structure invariants
# ----------------------------------------------------------------------


@given(small_dense)
@settings(max_examples=40, deadline=None)
def test_dense_csr_roundtrip(dense):
    np.testing.assert_array_equal(csr_from_dense(dense).to_dense(), dense)


@given(random_csr())
@settings(max_examples=40, deadline=None)
def test_transpose_involution(a):
    np.testing.assert_allclose(
        a.transpose().transpose().to_dense(), a.to_dense(), rtol=1e-6
    )


@given(random_csr())
@settings(max_examples=40, deadline=None)
def test_rowptr_consistent_with_lengths(a):
    assert int(a.row_lengths().sum()) == a.nnz
    assert a.rowptr[-1] == a.nnz


@given(random_csr())
@settings(max_examples=30, deadline=None)
def test_row_normalization_rows_sum_to_one_or_zero(a):
    sums = np.abs(a.with_values(np.abs(a.values) + 0.1).row_normalized().to_dense()).sum(axis=1)
    occupied = a.row_lengths() > 0
    np.testing.assert_allclose(sums[occupied], 1.0, rtol=1e-4)
    np.testing.assert_allclose(sums[~occupied], 0.0)


# ----------------------------------------------------------------------
# SpMM algebraic invariants
# ----------------------------------------------------------------------


@given(random_csr(), st.integers(1, 9), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_spmm_linearity(a, n, seed):
    rng = np.random.default_rng(seed)
    b1 = rng.standard_normal((a.ncols, n)).astype(np.float32)
    b2 = rng.standard_normal((a.ncols, n)).astype(np.float32)
    lhs = reference_spmm(a, b1 + b2)
    rhs = reference_spmm(a, b1) + reference_spmm(a, b2)
    np.testing.assert_allclose(lhs, rhs, rtol=1e-3, atol=1e-3)


@given(random_csr(), st.integers(1, 9), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_mean_bounded_by_max(a, n, seed):
    rng = np.random.default_rng(seed)
    b = rng.random((a.ncols, n), dtype=np.float32)  # positive operands
    pos = a.with_values(np.abs(a.values) + 0.1)
    mx = reference_spmm_like(pos, b, MAX_TIMES)
    mean = reference_spmm_like(pos, b, MEAN_TIMES)
    occupied = pos.row_lengths() > 0
    assert np.all(mean[occupied] <= mx[occupied] + 1e-4)


@given(random_csr(), st.integers(1, 9), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_sum_equals_mean_times_degree(a, n, seed):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((a.ncols, n)).astype(np.float32)
    total = reference_spmm_like(a, b, PLUS_TIMES)
    mean = reference_spmm_like(a, b, MEAN_TIMES)
    lengths = a.row_lengths().astype(np.float32)
    np.testing.assert_allclose(total, mean * lengths[:, None], rtol=1e-3, atol=1e-3)


# ----------------------------------------------------------------------
# Coalescing-counter invariants
# ----------------------------------------------------------------------


@given(arrays(np.int64, st.integers(1, 32), elements=st.integers(0, 10_000)))
@settings(max_examples=50, deadline=None)
def test_sector_count_bounds(addrs):
    n = warp_sector_count(addrs * 4)
    assert 1 <= n <= addrs.size
    # Permutation invariance: coalescing ignores lane order.
    assert n == warp_sector_count(addrs[::-1] * 4)


@given(st.integers(0, 5000), st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_segment_sectors_matches_enumeration(start, length):
    got = int(segment_sectors(np.array([start]), np.array([length]))[0])
    want = warp_sector_count(4 * (start + np.arange(length)))
    assert got == want


@given(random_csr(), st.sampled_from([1, 8, 16, 31, 32, 33, 64]))
@settings(max_examples=30, deadline=None)
def test_b_load_counts_match_enumeration(a, n):
    """The closed-form dense-load counter equals per-nonzero enumeration."""
    got = cnt.count_b_loads(a, n)
    insts = sectors = req = 0
    for start, length in cnt.dense_segments(n):
        for k in a.colind:
            insts += 1
            sectors += warp_sector_count(4 * (int(k) * n + start + np.arange(length)))
            req += length * 4
    assert (got.instructions, got.sectors, got.requested_bytes) == (insts, sectors, req)


@given(random_csr())
@settings(max_examples=30, deadline=None)
def test_tile_load_counts_match_enumeration(a):
    got = cnt.count_tile_loads(a, 32)
    insts = sectors = req = 0
    for i in range(a.nrows):
        lo, hi = int(a.rowptr[i]), int(a.rowptr[i + 1])
        for p in range(lo, hi, 32):
            ln = min(32, hi - p)
            insts += 1
            sectors += warp_sector_count(4 * (p + np.arange(ln)))
            req += ln * 4
    assert (got.instructions, got.sectors, got.requested_bytes) == (insts, sectors, req)


@given(random_csr())
@settings(max_examples=30, deadline=None)
def test_broadcast_walk_never_exceeds_per_element(a):
    walk = cnt.broadcast_walk_sectors(a)
    assert walk <= a.nnz + a.nrows  # at most one sector per element + slack
    assert walk >= (a.nnz + 7) // 8  # at least the dense packing bound

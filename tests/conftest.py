"""Shared fixtures for the unit/integration test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import csr_from_coo, uniform_random


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_csr():
    """The paper's Fig. 4 example matrix (4x4, 7 nonzeros)."""
    rows = [0, 0, 1, 2, 2, 2, 3]
    cols = [1, 2, 0, 1, 2, 3, 2]
    vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
    return csr_from_coo(rows, cols, vals, shape=(4, 4))


@pytest.fixture
def medium_csr():
    return uniform_random(m=300, nnz=2400, seed=7)


@pytest.fixture
def dense_b(rng, medium_csr):
    return rng.random((medium_csr.ncols, 40), dtype=np.float32)

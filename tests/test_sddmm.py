"""Tests for the SDDMM kernel model and edge softmax."""

import numpy as np
import pytest

from repro.core.sddmm import GESDDMM, edge_softmax, reference_sddmm
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.sparse import csr_from_coo, uniform_random


@pytest.fixture
def mask():
    return uniform_random(m=120, nnz=900, k=90, seed=3)


@pytest.fixture
def xy(mask, rng):
    x = rng.standard_normal((mask.nrows, 16)).astype(np.float32)
    y = rng.standard_normal((mask.ncols, 16)).astype(np.float32)
    return x, y


class TestReferenceSDDMM:
    def test_matches_dense(self, mask, xy):
        x, y = xy
        out = reference_sddmm(mask, x, y)
        dense = (x @ y.T) * (mask.to_dense() != 0) * mask.to_dense()
        np.testing.assert_allclose(out.to_dense(), dense, rtol=1e-3, atol=1e-4)

    def test_pattern_preserved(self, mask, xy):
        out = reference_sddmm(mask, *xy)
        assert out.pattern_equal(mask)

    def test_mask_values_scale(self, mask, xy):
        x, y = xy
        doubled = mask.with_values(mask.values * 2)
        np.testing.assert_allclose(
            reference_sddmm(doubled, x, y).values,
            2 * reference_sddmm(mask, x, y).values,
            rtol=1e-5,
        )

    def test_shape_checks(self, mask, xy):
        x, y = xy
        with pytest.raises(ValueError):
            reference_sddmm(mask, x[:-1], y)
        with pytest.raises(ValueError):
            reference_sddmm(mask, x, y[:, :-1])

    def test_empty_mask(self, xy):
        x, y = xy
        empty = csr_from_coo([], [], [], shape=(120, 90))
        assert reference_sddmm(empty, x, y).nnz == 0


class TestEdgeSoftmax:
    def test_rows_sum_to_one(self, mask):
        sm = edge_softmax(mask)
        sums = np.zeros(mask.nrows)
        rows = np.repeat(np.arange(mask.nrows), mask.row_lengths())
        np.add.at(sums, rows, sm.values.astype(np.float64))
        occupied = mask.row_lengths() > 0
        np.testing.assert_allclose(sums[occupied], 1.0, rtol=1e-5)

    def test_values_positive(self, mask):
        assert (edge_softmax(mask).values > 0).all()

    def test_shift_invariance(self, mask):
        shifted = mask.with_values(mask.values + 100.0)
        np.testing.assert_allclose(
            edge_softmax(shifted).values, edge_softmax(mask).values, rtol=1e-4
        )

    def test_numerically_stable_large_logits(self):
        m = csr_from_coo([0, 0], [0, 1], [1000.0, 999.0], shape=(1, 2))
        sm = edge_softmax(m)
        assert np.isfinite(sm.values).all()
        assert sm.values.sum() == pytest.approx(1.0, rel=1e-5)


class TestSDDMMKernelModel:
    def test_run_xy(self, mask, xy):
        k = GESDDMM()
        out = k.run_xy(mask, *xy)
        np.testing.assert_allclose(out.values, reference_sddmm(mask, *xy).values, rtol=1e-5)

    def test_run_without_x_raises(self, mask, rng):
        with pytest.raises(NotImplementedError):
            GESDDMM().run(mask, rng.random((90, 8), dtype=np.float32))

    def test_estimate_positive(self, mask):
        for gpu in (GTX_1080TI, RTX_2080):
            t = GESDDMM().estimate(mask, 64, gpu)
            assert t.time_s > 0 and np.isfinite(t.time_s)

    def test_traffic_scales_with_width(self):
        big = uniform_random(20_000, 200_000, seed=1)
        k = GESDDMM()
        s32, _, _ = k.count(big, 32, GTX_1080TI)
        s256, _, _ = k.count(big, 256, GTX_1080TI)
        assert s256.global_load.transactions > 5 * s32.global_load.transactions

    def test_y_stream_dominates(self):
        # Per nonzero Y row vs per occupied X row: Y traffic dominates.
        big = uniform_random(20_000, 200_000, seed=1)
        s, _, _ = GESDDMM().count(big, 128, GTX_1080TI)
        assert s.traffic("Y").sectors > 3 * s.traffic("X").sectors

    def test_comparable_cost_to_spmm(self):
        # SDDMM moves the same dense volume as SpMM's B stream: the two
        # should land within a small factor of each other.
        from repro.core import GESpMM

        big = uniform_random(20_000, 200_000, seed=1)
        t_sddmm = GESDDMM().estimate(big, 128, GTX_1080TI).time_s
        t_spmm = GESpMM().estimate(big, 128, GTX_1080TI).time_s
        assert 0.3 < t_sddmm / t_spmm < 3.0

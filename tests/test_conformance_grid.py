"""Trace/analytic conformance grid across *every* kernel model.

The benchmark gate (`repro.bench.gate`) certifies that `BENCH_spmm.json`
did not drift — but the numbers in that document come from the analytic
counters, so the gate is only as trustworthy as `count`.  This suite
guards the gate's inputs: for every kernel model with a trace mode
(simple / CRC / CWM / adaptive GE-SpMM / fused epilogues / SDDMM), the
closed-form counters must agree instruction-for-instruction and
sector-for-sector with a faithful warp-by-warp execution, across a
seeded grid of random CSR matrices varying density, row-length skew,
feature width, and GPU spec.

The default grid keeps tier-1 fast; the `slow`-marked sweep widens every
axis and runs in CI's dedicated conformance job (see
`.github/workflows/ci.yml`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CRCSpMM,
    CWMSpMM,
    FusedGESpMM,
    GESDDMM,
    GESpMM,
    MergePathSpMM,
    SimpleSpMM,
    bias_relu_epilogue,
)
from repro.core.sddmm import reference_sddmm
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.sparse import power_law, reference_spmm_like, uniform_random

# -- the grid axes ----------------------------------------------------------

#: matrix regimes: (id, factory(seed)) — uniform at two densities plus
#: heavy-tailed row-length skew, the regime that breaks warp-per-row
#: heuristics (Yang et al., "Design Principles for Sparse Matrix
#: Multiplication on the GPU").
MATRICES = {
    "uniform-sparse": lambda seed: uniform_random(m=36, nnz=144, seed=seed),
    "uniform-dense": lambda seed: uniform_random(m=24, nnz=288, seed=seed),
    "powerlaw-skew": lambda seed: power_law(m=40, nnz=320, exponent=2.1, seed=seed),
    "powerlaw-hub": lambda seed: power_law(m=32, nnz=256, exponent=1.7, seed=seed),
}

#: SpMM-shaped kernels sharing the (a, b, gpu) trace signature.
SPMM_KERNELS = {
    "simple": SimpleSpMM,
    "crc": CRCSpMM,
    "cwm2": lambda: CWMSpMM(2),
    "cwm3": lambda: CWMSpMM(3),
    "cwm4": lambda: CWMSpMM(4),
    "gespmm": GESpMM,  # adaptive: exercises both dispatch paths via N
    "mergepath": MergePathSpMM,  # work-balanced: splits rows across warps
    "fused-relu": FusedGESpMM,
}

FAST_WIDTHS = (8, 40)  # one per adaptive-dispatch path; 40 is not 32-aligned
FAST_SEEDS = (0, 1)
SLOW_WIDTHS = (1, 24, 32, 64, 96)
SLOW_SEEDS = (2, 3, 4)


def assert_stats_equal(traced, analytic, context=""):
    """Exact parity on every access stream the timing model consumes."""
    for stream in ("global_load", "global_store", "shared_load", "shared_store"):
        for f in ("instructions", "transactions", "requested_bytes"):
            t = getattr(getattr(traced, stream), f)
            a = getattr(getattr(analytic, stream), f)
            assert t == a, f"{context} {stream}.{f}: trace={t} analytic={a}"
    assert traced.warp_syncs == analytic.warp_syncs, (
        f"{context} warp_syncs: trace={traced.warp_syncs} "
        f"analytic={analytic.warp_syncs}"
    )


def check_spmm_kernel(kernel_factory, matrix_factory, n, gpu, seed):
    a = matrix_factory(seed)
    rng = np.random.default_rng(seed + 1000)
    b = rng.random((a.ncols, n), dtype=np.float32)
    kernel = kernel_factory()
    c, traced = kernel.trace(a, b, gpu)
    analytic, _, _ = kernel.count(a, n, gpu)
    assert_stats_equal(traced, analytic, f"{kernel.name} n={n} {gpu.name}")
    ref = reference_spmm_like(a, b)
    if isinstance(kernel, FusedGESpMM):
        ref = kernel.epilogue.fn(ref, None)
    np.testing.assert_allclose(c, ref, rtol=1e-4, atol=1e-4)


def check_fused_bias_kernel(matrix_factory, n, gpu, seed):
    a = matrix_factory(seed)
    rng = np.random.default_rng(seed + 2000)
    b = rng.standard_normal((a.ncols, n)).astype(np.float32)
    bias = rng.standard_normal(n).astype(np.float32)
    kernel = FusedGESpMM(bias_relu_epilogue())
    c, traced = kernel.trace(a, b, gpu, bias=bias)
    analytic, _, _ = kernel.count(a, n, gpu)
    assert_stats_equal(traced, analytic, f"{kernel.name} n={n} {gpu.name}")
    ref = np.maximum(reference_spmm_like(a, b) + bias[None, :], 0.0)
    np.testing.assert_allclose(c, ref, rtol=1e-4, atol=1e-4)


def check_sddmm_kernel(matrix_factory, n, gpu, seed):
    # Analytic SDDMM counters assume sector-aligned dense rows (N % 8 == 0),
    # per the model's documented caveat; functional output is exact always.
    mask = matrix_factory(seed)
    rng = np.random.default_rng(seed + 3000)
    x = rng.random((mask.nrows, n), dtype=np.float32)
    y = rng.random((mask.ncols, n), dtype=np.float32)
    kernel = GESDDMM()
    e, traced = kernel.trace_xy(mask, x, y, gpu)
    ref = reference_sddmm(mask, x, y)
    np.testing.assert_allclose(e.values, ref.values, rtol=1e-4, atol=1e-5)
    if n % 8 == 0:
        analytic, _, _ = kernel.count(mask, n, gpu)
        assert_stats_equal(traced, analytic, f"sddmm n={n} {gpu.name}")


# -- fast grid (tier-1) -----------------------------------------------------


@pytest.mark.parametrize("matrix_id", MATRICES)
@pytest.mark.parametrize("kernel_id", SPMM_KERNELS)
@pytest.mark.parametrize("n", FAST_WIDTHS)
def test_grid_spmm(kernel_id, matrix_id, n):
    check_spmm_kernel(SPMM_KERNELS[kernel_id], MATRICES[matrix_id], n,
                      GTX_1080TI, seed=FAST_SEEDS[0])


@pytest.mark.parametrize("matrix_id", MATRICES)
@pytest.mark.parametrize("n", FAST_WIDTHS)
def test_grid_fused_bias(matrix_id, n):
    check_fused_bias_kernel(MATRICES[matrix_id], n, GTX_1080TI,
                            seed=FAST_SEEDS[0])


@pytest.mark.parametrize("matrix_id", MATRICES)
@pytest.mark.parametrize("n", FAST_WIDTHS)
def test_grid_sddmm(matrix_id, n):
    check_sddmm_kernel(MATRICES[matrix_id], n, GTX_1080TI, seed=FAST_SEEDS[0])


@pytest.mark.parametrize("kernel_id", sorted(SPMM_KERNELS))
def test_grid_turing_spec(kernel_id):
    """Raw (pre-L1) counters are device independent: parity must also
    hold against the Turing spec with its unified L1."""
    check_spmm_kernel(SPMM_KERNELS[kernel_id], MATRICES["powerlaw-skew"],
                      FAST_WIDTHS[1], RTX_2080, seed=FAST_SEEDS[1])


@pytest.mark.parametrize("seed", SLOW_SEEDS)
@pytest.mark.parametrize("matrix_id", ("uniform-sparse", "uniform-dense"))
@pytest.mark.parametrize("kernel_id", ("crc", "cwm2", "cwm3", "cwm4"))
@pytest.mark.parametrize("n", SLOW_WIDTHS)
def test_grid_crc_cwm_uniform(kernel_id, matrix_id, n, seed):
    """CRC/CWM x uniform-matrix slice of the full grid, promoted from the
    slow CI job into tier-1: the batched replay engine (repro.gpusim
    .batchtrace) made warp-exact traces cheap enough to run every
    shared-memory kernel variant at full width/seed coverage on every
    push, not just in the nightly conformance job."""
    check_spmm_kernel(SPMM_KERNELS[kernel_id], MATRICES[matrix_id], n,
                      GTX_1080TI, seed)


def test_grid_empty_rows_edge():
    """A matrix with guaranteed empty rows (m >> nnz) must stay in parity:
    empty rows issue no B loads yet still store the init value."""
    factory = lambda seed: uniform_random(m=48, nnz=24, seed=seed)
    for kernel_id in ("simple", "crc", "cwm2", "gespmm", "mergepath"):
        check_spmm_kernel(SPMM_KERNELS[kernel_id], factory, 40,
                          GTX_1080TI, seed=9)
    check_sddmm_kernel(factory, 16, GTX_1080TI, seed=9)


# -- slow grid (CI conformance job) -----------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
@pytest.mark.parametrize("gpu", [GTX_1080TI, RTX_2080], ids=lambda g: g.name)
@pytest.mark.parametrize("matrix_id", MATRICES)
@pytest.mark.parametrize("kernel_id", SPMM_KERNELS)
@pytest.mark.parametrize("n", SLOW_WIDTHS)
def test_grid_spmm_full(kernel_id, matrix_id, n, gpu, seed):
    check_spmm_kernel(SPMM_KERNELS[kernel_id], MATRICES[matrix_id], n, gpu, seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
@pytest.mark.parametrize("gpu", [GTX_1080TI, RTX_2080], ids=lambda g: g.name)
@pytest.mark.parametrize("matrix_id", MATRICES)
@pytest.mark.parametrize("n", SLOW_WIDTHS)
def test_grid_fused_bias_full(matrix_id, n, gpu, seed):
    check_fused_bias_kernel(MATRICES[matrix_id], n, gpu, seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
@pytest.mark.parametrize("gpu", [GTX_1080TI, RTX_2080], ids=lambda g: g.name)
@pytest.mark.parametrize("matrix_id", MATRICES)
@pytest.mark.parametrize("n", SLOW_WIDTHS)
def test_grid_sddmm_full(matrix_id, n, gpu, seed):
    check_sddmm_kernel(MATRICES[matrix_id], n, gpu, seed)

"""Tests for the Fastspmm (ELLPACK-R) baseline."""

import numpy as np
import pytest

from repro.baselines import FastSpMM
from repro.core import GESpMM
from repro.gpusim import GTX_1080TI
from repro.semiring import MAX_TIMES
from repro.sparse import (
    banded_random,
    power_law,
    reference_spmm,
    to_ellpack_r,
    uniform_random,
)


class TestFastSpMM:
    def test_functional_via_ellpack_layout(self, medium_csr, dense_b):
        out = FastSpMM().run(medium_csr, dense_b)
        np.testing.assert_allclose(out, reference_spmm(medium_csr, dense_b),
                                   rtol=1e-4, atol=1e-4)

    def test_refuses_general_semirings(self, medium_csr, dense_b):
        with pytest.raises(NotImplementedError):
            FastSpMM().run(medium_csr, dense_b, MAX_TIMES)

    def test_requires_preprocess(self):
        assert FastSpMM.requires_preprocess
        a = uniform_random(1000, 10_000, seed=0)
        assert FastSpMM().preprocess_time(a, GTX_1080TI) > 0

    def test_format_memoized(self):
        a = uniform_random(500, 5000, seed=0)
        k = FastSpMM()
        assert k.preprocess(a) is k.preprocess(a)

    def test_competitive_on_regular_matrices(self):
        g = banded_random(20_000, 200_000, bandwidth=16, seed=1)
        t_fs = FastSpMM().estimate(g, 256, GTX_1080TI).time_s
        t_ge = GESpMM().estimate(g, 256, GTX_1080TI).time_s
        assert t_fs / t_ge < 1.3  # near-regular rows: ELLPACK is fine

    def test_padding_destroys_power_law(self):
        g = power_law(20_000, 200_000, seed=1)
        assert to_ellpack_r(g).padding_ratio > 20
        t_fs = FastSpMM().estimate(g, 256, GTX_1080TI).time_s
        t_ge = GESpMM().estimate(g, 256, GTX_1080TI).time_s
        assert t_fs / t_ge > 5  # the padded slab is streamed in full

    def test_slab_traffic_scales_with_padding(self):
        g_reg = banded_random(10_000, 100_000, bandwidth=8, seed=2)
        g_skew = power_law(10_000, 100_000, seed=2)
        s_reg, _, _ = FastSpMM().count(g_reg, 128, GTX_1080TI)
        s_skew, _, _ = FastSpMM().count(g_skew, 128, GTX_1080TI)
        assert s_skew.traffic("ell_slab").sectors > 5 * s_reg.traffic("ell_slab").sectors
        # ...but dense B traffic tracks the true nonzeros, not the padding.
        per_nnz_reg = s_reg.traffic("B").sectors / g_reg.nnz
        per_nnz_skew = s_skew.traffic("B").sectors / g_skew.nnz
        assert per_nnz_skew == pytest.approx(per_nnz_reg, rel=1e-6)

"""Tests for MatrixMarket / SNAP edge-list / npz I/O."""

import gzip

import numpy as np
import pytest

from repro.sparse import (
    csr_from_coo,
    load_npz,
    read_matrix_market,
    read_snap_edgelist,
    save_npz,
    uniform_random,
    write_matrix_market,
    write_snap_edgelist,
)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path, medium_csr):
        p = tmp_path / "m.mtx"
        write_matrix_market(medium_csr, p, comment="test matrix")
        back = read_matrix_market(p)
        assert back.allclose(medium_csr, rtol=1e-4)

    def test_gzip_roundtrip(self, tmp_path, small_csr):
        p = tmp_path / "m.mtx.gz"
        write_matrix_market(small_csr, p)
        assert read_matrix_market(p).allclose(small_csr)

    def test_pattern_matrix(self, tmp_path):
        p = tmp_path / "p.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% comment\n"
            "3 3 2\n"
            "1 2\n"
            "3 1\n"
        )
        m = read_matrix_market(p)
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == 1.0 and m.to_dense()[2, 0] == 1.0

    def test_symmetric_mirrored(self, tmp_path):
        p = tmp_path / "s.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 5.0\n"
            "2 1 2.0\n"
            "3 2 4.0\n"
        )
        d = read_matrix_market(p).to_dense()
        assert d[0, 1] == d[1, 0] == 2.0
        assert d[1, 2] == d[2, 1] == 4.0
        assert d[0, 0] == 5.0  # diagonal not doubled

    def test_skew_symmetric(self, tmp_path):
        p = tmp_path / "k.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        d = read_matrix_market(p).to_dense()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0

    def test_rejects_non_mm(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("garbage\n1 1 1\n")
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_matrix_market(p)

    def test_rejects_dense_format(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(p)

    def test_rejects_truncated(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n")
        with pytest.raises(ValueError, match="truncated"):
            read_matrix_market(p)


class TestSnapEdgeList:
    def test_roundtrip(self, tmp_path, medium_csr):
        pattern = medium_csr.with_values(np.ones(medium_csr.nnz, dtype=np.float32))
        p = tmp_path / "g.txt"
        write_snap_edgelist(pattern, p, comment="synthetic")
        back = read_snap_edgelist(p, n_nodes=pattern.nrows)
        assert back.allclose(pattern)

    def test_comments_skipped(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# Directed graph\n# Nodes: 3 Edges: 2\n0\t1\n2\t0\n")
        g = read_snap_edgelist(p)
        assert g.nnz == 2 and g.nrows == 3

    def test_undirected_mirrors(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        g = read_snap_edgelist(p, undirected=True)
        assert g.to_dense()[0, 1] == 1.0 and g.to_dense()[1, 0] == 1.0

    def test_negative_id_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("-1 2\n")
        with pytest.raises(ValueError):
            read_snap_edgelist(p)

    def test_malformed_line_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("42\n")
        with pytest.raises(ValueError, match="malformed"):
            read_snap_edgelist(p)

    def test_gzip(self, tmp_path):
        p = tmp_path / "g.txt.gz"
        with gzip.open(p, "wt") as f:
            f.write("0 1\n1 2\n")
        assert read_snap_edgelist(p).nnz == 2


class TestNpz:
    def test_roundtrip(self, tmp_path):
        a = uniform_random(500, 4000, seed=3, weighted=True)
        p = tmp_path / "a.npz"
        save_npz(a, p)
        assert load_npz(p).allclose(a)

    def test_preserves_rectangular_shape(self, tmp_path):
        a = csr_from_coo([0], [7], [2.5], shape=(2, 9))
        p = tmp_path / "a.npz"
        save_npz(a, p)
        assert load_npz(p).shape == (2, 9)

"""Behavioural tests of the kernel performance models: the mechanisms the
paper attributes to each design must show up in the modelled metrics."""

import numpy as np
import pytest

from repro.baselines import (
    ASpTSpMM,
    CusparseCsrmm2,
    GraphBlastRowSplit,
    GunrockAdvanceSpMM,
    SpMVLoopSpMM,
)
from repro.core import CRCSpMM, CWMSpMM, GESpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.sparse import banded_random, uniform_random


@pytest.fixture(scope="module")
def big():
    return uniform_random(m=65_536, nnz=650_000, seed=42)


class TestCRCMechanism:
    def test_fewer_transactions_than_simple(self, big):
        s, _, _ = SimpleSpMM().count(big, 512, GTX_1080TI)
        c, _, _ = CRCSpMM().count(big, 512, GTX_1080TI)
        assert c.global_load.transactions < s.global_load.transactions

    def test_fewer_load_instructions(self, big):
        s, _, _ = SimpleSpMM().count(big, 512, GTX_1080TI)
        c, _, _ = CRCSpMM().count(big, 512, GTX_1080TI)
        assert c.global_load.instructions < 0.5 * s.global_load.instructions

    def test_efficiency_band_matches_table5(self, big):
        s, _, _ = SimpleSpMM().count(big, 512, GTX_1080TI)
        c, _, _ = CRCSpMM().count(big, 512, GTX_1080TI)
        assert s.global_load.efficiency == pytest.approx(0.6895, abs=0.02)
        assert c.global_load.efficiency == pytest.approx(0.924, abs=0.02)

    def test_uses_shared_memory_and_warp_syncs(self, big):
        c, launch, _ = CRCSpMM().count(big, 512, GTX_1080TI)
        assert c.shared_load.instructions > 0
        assert c.warp_syncs > 0
        assert c.block_syncs == 0  # the paper's whole point: warp-level only
        assert launch.shared_mem_per_block > 0

    def test_same_dense_traffic(self, big):
        # CRC only changes sparse-side loading; dense B traffic identical.
        s, _, _ = SimpleSpMM().count(big, 512, GTX_1080TI)
        c, _, _ = CRCSpMM().count(big, 512, GTX_1080TI)
        assert s.traffic("B").sectors == c.traffic("B").sectors


class TestCWMMechanism:
    def test_sparse_traffic_divided_by_cf(self, big):
        c1, _, _ = CRCSpMM().count(big, 512, GTX_1080TI)
        c4, _, _ = CWMSpMM(4).count(big, 512, GTX_1080TI)
        ratio = c1.traffic("colind").sectors / c4.traffic("colind").sectors
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_dense_traffic_unchanged(self, big):
        c1, _, _ = CRCSpMM().count(big, 512, GTX_1080TI)
        c4, _, _ = CWMSpMM(4).count(big, 512, GTX_1080TI)
        assert c1.traffic("B").sectors == c4.traffic("B").sectors

    def test_register_pressure_grows_with_cf(self):
        assert CWMSpMM(8).regs_per_thread > CWMSpMM(2).regs_per_thread

    def test_occupancy_drops_at_cf8(self, big):
        t2 = CWMSpMM(2).estimate(big, 512, GTX_1080TI)
        t8 = CWMSpMM(8).estimate(big, 512, GTX_1080TI)
        assert t8.occupancy.achieved < t2.occupancy.achieved

    def test_cf2_fastest_choice(self, big):
        times = {cf: CWMSpMM(cf).estimate(big, 512, GTX_1080TI).time_s for cf in (1, 2, 8)}
        assert times[2] < times[1]
        assert times[2] < times[8]

    def test_mlp_collapses_below_warp_width(self):
        k = CWMSpMM(4)
        assert k.mlp_for(512) > k.mlp_for(16)
        assert k.mlp_for(16) == CRCSpMM.mlp


class TestMachineDifference:
    def test_crc_gain_pascal_not_turing(self, big):
        gains = {}
        for gpu in (GTX_1080TI, RTX_2080):
            s = SimpleSpMM().estimate(big, 512, gpu).time_s
            c = CRCSpMM().estimate(big, 512, gpu).time_s
            gains[gpu.name] = s / c
        assert gains["GTX 1080Ti"] > 1.15
        assert gains["RTX 2080"] < 1.1
        assert gains["GTX 1080Ti"] > gains["RTX 2080"]

    def test_cwm_helps_both_machines(self, big):
        for gpu in (GTX_1080TI, RTX_2080):
            c = CRCSpMM().estimate(big, 512, gpu).time_s
            w = CWMSpMM(2).estimate(big, 512, gpu).time_s
            assert c / w > 1.15, gpu.name


class TestBaselineOrdering:
    """The paper's headline ordering at large N must hold per graph."""

    @pytest.mark.parametrize("gpu", [GTX_1080TI, RTX_2080], ids=lambda g: g.name)
    def test_ge_beats_cusparse_beats_graphblast(self, big, gpu):
        ge = GESpMM().estimate(big, 512, gpu).time_s
        cu = CusparseCsrmm2().estimate(big, 512, gpu).time_s
        gb = GraphBlastRowSplit().estimate(big, 512, gpu).time_s
        assert ge < cu < gb

    def test_gunrock_an_order_slower(self, big):
        ge = GESpMM().estimate(big, 128, GTX_1080TI).time_s
        gr = GunrockAdvanceSpMM().estimate(big, 128, GTX_1080TI).time_s
        assert gr / ge > 8

    def test_gunrock_uses_atomics_and_scattered_loads(self, big):
        s, _, _ = GunrockAdvanceSpMM().count(big, 64, GTX_1080TI)
        assert s.atomic_ops > 0
        assert s.global_load.efficiency < 0.3  # fully scattered

    def test_spmv_loop_pays_per_launch(self, big):
        small = uniform_random(m=256, nnz=1024, seed=1)
        k = SpMVLoopSpMM()
        t32 = k.estimate(small, 32, GTX_1080TI).time_s
        t256 = k.estimate(small, 256, GTX_1080TI).time_s
        # Launch-dominated on a tiny graph: ~linear in N.
        assert t256 / t32 > 5

    def test_spmv_loop_estimate_idempotent(self, big):
        k = SpMVLoopSpMM()
        t1 = k.estimate(big, 64, GTX_1080TI).time_s
        t2 = k.estimate(big, 64, GTX_1080TI).time_s
        assert t1 == t2  # cached result not re-inflated


class TestASpT:
    def test_preprocess_time_positive_and_scales(self):
        a_small = uniform_random(m=1000, nnz=10_000, seed=1)
        a_big = uniform_random(m=100_000, nnz=1_000_000, seed=1)
        k = ASpTSpMM()
        t_small = k.preprocess_time(a_small, GTX_1080TI)
        t_big = k.preprocess_time(a_big, GTX_1080TI)
        assert 0 < t_small < t_big

    def test_dense_fraction_drives_savings(self):
        # A banded matrix has locally-dense tiles; uniform random doesn't.
        band = banded_random(20_000, 400_000, bandwidth=16, seed=2)
        unif = uniform_random(20_000, 400_000, seed=2)
        k = ASpTSpMM()
        f_band = k.preprocess(band).dense_fraction
        f_unif = k.preprocess(unif).dense_fraction
        assert f_band > f_unif
        sb, _, _ = k.count(band, 256, GTX_1080TI)
        from repro.core import _counting as cnt

        full = cnt.count_b_loads(band, 256).sectors
        assert sb.traffic("B").sectors < full  # reuse took traffic off DRAM

    def test_kernel_only_near_parity_with_ge(self, big):
        ge = GESpMM().estimate(big, 512, GTX_1080TI).time_s
        asp = ASpTSpMM().estimate(big, 512, GTX_1080TI).time_s
        assert 0.7 < asp / ge < 1.3

    def test_requires_preprocess_flag(self):
        assert ASpTSpMM.requires_preprocess
        assert not GESpMM.requires_preprocess


class TestAdaptive:
    def test_estimates_match_selected_kernel(self, big):
        ge = GESpMM()
        assert ge.estimate(big, 16, GTX_1080TI).time_s == pytest.approx(
            CRCSpMM().estimate(big, 16, GTX_1080TI).time_s
        )
        assert ge.estimate(big, 128, GTX_1080TI).time_s == pytest.approx(
            CWMSpMM(2).estimate(big, 128, GTX_1080TI).time_s
        )

"""Tests for the preprocess-based sparse formats (ELLPACK-R, ASpT)."""

import numpy as np
import pytest

from repro.sparse import (
    banded_random,
    csr_from_coo,
    to_aspt,
    to_ellpack_r,
    uniform_random,
)


class TestEllpackR:
    def test_roundtrip_product(self, medium_csr, dense_b):
        ell = to_ellpack_r(medium_csr)
        want = medium_csr.to_scipy() @ dense_b
        np.testing.assert_allclose(ell.to_dense_product(dense_b), want, rtol=1e-4, atol=1e-5)

    def test_width_is_max_row(self, small_csr):
        ell = to_ellpack_r(small_csr)
        assert ell.width == 3
        assert ell.row_lengths.tolist() == [2, 1, 3, 1]

    def test_padding_ratio(self, small_csr):
        ell = to_ellpack_r(small_csr)
        assert ell.padding_ratio == pytest.approx(4 * 3 / 7)

    def test_padding_blows_up_on_skew(self):
        # One hub row of 100 nonzeros + 99 empty rows: ELLPACK pads hard.
        a = csr_from_coo(np.zeros(100, dtype=int), np.arange(100), np.ones(100), shape=(100, 100))
        ell = to_ellpack_r(a)
        assert ell.padding_ratio == pytest.approx(100.0)

    def test_preprocess_cost_counted(self, medium_csr):
        ell = to_ellpack_r(medium_csr)
        assert ell.preprocess_elements >= medium_csr.nnz

    def test_empty_matrix(self):
        ell = to_ellpack_r(csr_from_coo([], [], [], shape=(3, 3)))
        assert ell.width == 1  # degenerate minimum slab
        out = ell.to_dense_product(np.ones((3, 2), dtype=np.float32))
        assert not out.any()


class TestASpT:
    def test_dense_fraction_bounds(self, medium_csr):
        fmt = to_aspt(medium_csr)
        assert 0.0 <= fmt.dense_fraction <= 1.0

    def test_banded_denser_than_uniform(self):
        band = banded_random(8000, 160_000, bandwidth=8, seed=1)
        unif = uniform_random(8000, 160_000, seed=1)
        assert to_aspt(band).dense_fraction > to_aspt(unif).dense_fraction

    def test_threshold_monotonicity(self, medium_csr):
        loose = to_aspt(medium_csr, dense_threshold=1)
        strict = to_aspt(medium_csr, dense_threshold=10_000)
        assert loose.dense_fraction >= strict.dense_fraction
        assert loose.dense_fraction == 1.0  # every occupied tile qualifies
        assert strict.dense_fraction == 0.0

    def test_preprocess_elements_three_passes(self, medium_csr):
        fmt = to_aspt(medium_csr)
        assert fmt.preprocess_elements == 3 * medium_csr.nnz + medium_csr.nrows

    def test_empty_matrix(self):
        fmt = to_aspt(csr_from_coo([], [], [], shape=(4, 4)))
        assert fmt.dense_fraction == 0.0

    def test_shape_passthrough(self, medium_csr):
        assert to_aspt(medium_csr).shape == medium_csr.shape

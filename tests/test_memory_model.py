"""Tests for the warp coalescing model, shared-memory banks and
trace-mode memory accounting."""

import numpy as np
import pytest

from repro.gpusim import (
    AccessStats,
    KernelStats,
    TraceMemory,
    bank_conflict_passes,
    segment_sectors,
    warp_sector_count,
)
from repro.gpusim.memory import TraceSharedMemory


class TestWarpSectorCount:
    def test_broadcast_is_one_transaction(self):
        addrs = np.full(32, 1000)
        assert warp_sector_count(addrs) == 1

    def test_fully_coalesced_floats(self):
        # 32 consecutive 4-byte elements starting at a sector boundary:
        # 128 bytes = 4 sectors.
        addrs = 4 * np.arange(32)
        assert warp_sector_count(addrs) == 4

    def test_misaligned_adds_a_sector(self):
        addrs = 4 * np.arange(32) + 4  # shifted by one element
        assert warp_sector_count(addrs) == 5

    def test_strided_worst_case(self):
        addrs = 128 * np.arange(32)  # one sector per lane
        assert warp_sector_count(addrs) == 32

    def test_empty_access(self):
        assert warp_sector_count(np.array([], dtype=np.int64)) == 0

    def test_pairwise_sharing(self):
        addrs = 32 * (np.arange(32) // 2)  # two lanes per sector
        assert warp_sector_count(addrs) == 16


class TestSegmentSectors:
    def test_matches_brute_force(self, rng):
        starts = rng.integers(0, 1000, size=200)
        lengths = rng.integers(0, 64, size=200)
        got = segment_sectors(starts, lengths)
        for s, l, g in zip(starts, lengths, got):
            byte_addrs = 4 * (s + np.arange(l))
            assert g == warp_sector_count(byte_addrs)

    def test_zero_length(self):
        assert segment_sectors(np.array([5]), np.array([0]))[0] == 0

    def test_aligned_full_tile(self):
        assert segment_sectors(np.array([0]), np.array([32]))[0] == 4

    def test_single_element(self):
        assert segment_sectors(np.array([7]), np.array([1]))[0] == 1


class TestBankConflicts:
    def test_conflict_free_contiguous(self):
        assert bank_conflict_passes(np.arange(32)) == 1

    def test_broadcast_free(self):
        assert bank_conflict_passes(np.zeros(32, dtype=np.int64)) == 1

    def test_stride_two(self):
        assert bank_conflict_passes(2 * np.arange(32)) == 2

    def test_stride_32_worst(self):
        assert bank_conflict_passes(32 * np.arange(32)) == 32

    def test_empty(self):
        assert bank_conflict_passes(np.array([], dtype=np.int64)) == 0


class TestTraceMemory:
    def test_broadcast_load(self):
        mem = TraceMemory()
        mem.register("x", np.arange(100, dtype=np.float32))
        vals = mem.load("x", np.full(32, 7))
        assert np.all(vals == 7.0)
        assert mem.stats.global_load.instructions == 1
        assert mem.stats.global_load.transactions == 1
        assert mem.stats.global_load.requested_bytes == 4  # unique bytes

    def test_coalesced_load(self):
        mem = TraceMemory()
        mem.register("x", np.arange(100, dtype=np.float32))
        mem.load("x", np.arange(32))
        assert mem.stats.global_load.transactions == 4
        assert mem.stats.global_load.requested_bytes == 128

    def test_masked_load(self):
        mem = TraceMemory()
        mem.register("x", np.arange(100, dtype=np.float32))
        mask = np.arange(32) < 8
        vals = mem.load("x", np.arange(32), mask=mask)
        assert vals.shape == (8,)
        assert mem.stats.global_load.transactions == 1

    def test_fully_masked_load_costs_nothing(self):
        mem = TraceMemory()
        mem.register("x", np.arange(8, dtype=np.float32))
        mem.load("x", np.arange(32), mask=np.zeros(32, dtype=bool))
        assert mem.stats.global_load.transactions == 0
        assert mem.stats.global_load.instructions == 1  # predicated-off inst

    def test_out_of_bounds_raises(self):
        mem = TraceMemory()
        mem.register("x", np.arange(8, dtype=np.float32))
        with pytest.raises(IndexError):
            mem.load("x", np.arange(32))

    def test_store_updates_buffer(self):
        mem = TraceMemory()
        mem.register("x", np.zeros(64, dtype=np.float32))
        mem.store("x", np.arange(32), np.ones(32, dtype=np.float32))
        assert mem.buffer("x")[:32].sum() == 32
        assert mem.stats.global_store.transactions == 4

    def test_buffers_do_not_share_sectors(self):
        # Distinct arrays must land in distinct sectors (256 B alignment).
        mem = TraceMemory()
        mem.register("a", np.zeros(1, dtype=np.float32))
        mem.register("b", np.zeros(1, dtype=np.float32))
        mem.load("a", np.array([0]))
        mem.load("b", np.array([0]))
        assert mem.stats.global_load.transactions == 2

    def test_device_copy_isolated(self):
        host = np.zeros(4, dtype=np.float32)
        mem = TraceMemory()
        mem.register("x", host)
        mem.store("x", np.array([0]), np.array([9.0], dtype=np.float32))
        assert host[0] == 0.0  # host array untouched

    def test_l1_filter_counts_reuse(self):
        mem = TraceMemory(l1_caches_global=True)
        mem.register("x", np.arange(64, dtype=np.float32))
        for _ in range(4):
            mem.load("x", np.full(32, 3))  # same sector each time
        gl = mem.stats.global_load
        assert gl.transactions == 4
        assert gl.l1_filtered_transactions == 1  # 3 of 4 hit in L1

    def test_no_l1_filter_on_pascal(self):
        mem = TraceMemory(l1_caches_global=False)
        mem.register("x", np.arange(64, dtype=np.float32))
        for _ in range(4):
            mem.load("x", np.full(32, 3))
        gl = mem.stats.global_load
        assert gl.l1_filtered_transactions == gl.transactions


class TestStatsContainers:
    def test_access_stats_merge(self):
        a = AccessStats(1, 2, 3, 2)
        a.merge(AccessStats(10, 20, 30, 20))
        assert (a.instructions, a.transactions, a.requested_bytes) == (11, 22, 33)

    def test_efficiency(self):
        s = AccessStats(instructions=1, transactions=1, requested_bytes=4)
        assert s.efficiency == pytest.approx(4 / 32)
        assert AccessStats().efficiency == 1.0

    def test_kernel_stats_merge_and_traffic(self):
        k1 = KernelStats()
        k1.traffic("B").sectors = 10
        k1.flops = 100
        k2 = KernelStats()
        k2.traffic("B").sectors = 5
        k2.warp_syncs = 3
        k1.merge(k2)
        assert k1.traffic("B").sectors == 15
        assert k1.flops == 100 and k1.warp_syncs == 3

    def test_effective_load_sectors(self):
        k = KernelStats()
        k.global_load.transactions = 100
        k.global_load.l1_filtered_transactions = 40
        assert k.effective_load_sectors(l1_caches_global=True) == 40
        assert k.effective_load_sectors(l1_caches_global=False) == 100

    def test_shared_memory_trace(self):
        stats = KernelStats()
        shm = TraceSharedMemory(64, stats)
        shm.store(np.arange(32), np.arange(32, dtype=np.float64))
        out = shm.load(np.full(32, 5))
        assert np.all(out == 5.0)
        assert stats.shared_store.transactions == 1
        assert stats.shared_load.transactions == 1

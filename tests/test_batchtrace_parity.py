"""Byte-identity of the batched replay engine against the per-warp loops.

The tentpole contract of ``repro.gpusim.batchtrace``: every kernel's
vectorized ``trace`` must reproduce its reference ``trace_loop`` down to
the last counter — instructions, transactions, requested bytes, the
Turing L1 recency-filtered sector count, per-array traffic — *and* the
numeric output array must be bit-identical (``array_equal``, not
allclose), because both paths must execute the same floating-point
operation sequence.  docs/PERFORMANCE.md documents this contract; this
suite enforces it on a sample of the conformance grid's axes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CRCSpMM,
    CWMSpMM,
    FusedGESpMM,
    GESDDMM,
    GESpMM,
    SimpleSpMM,
    bias_relu_epilogue,
)
from repro.core.semiring import MAX_TIMES, MEAN_TIMES, MIN_TIMES, PLUS_TIMES
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.sparse import power_law, uniform_random

KERNELS = {
    "simple": SimpleSpMM,
    "crc": CRCSpMM,
    "cwm3": lambda: CWMSpMM(3),
    "gespmm": GESpMM,
    "fused-relu": FusedGESpMM,
}

MATRICES = {
    "uniform": lambda: uniform_random(m=30, nnz=180, seed=7),
    "powerlaw": lambda: power_law(m=36, nnz=288, exponent=1.9, seed=7),
    "empty-rows": lambda: uniform_random(m=48, nnz=24, seed=7),
}


def assert_stats_identical(batch, loop, context=""):
    """Every counter the timing model can see, including the L1 filter
    output and the per-array traffic ledger."""
    for stream in ("global_load", "global_store", "shared_load", "shared_store"):
        b, l = getattr(batch, stream), getattr(loop, stream)
        for f in ("instructions", "transactions", "requested_bytes",
                  "l1_filtered_transactions"):
            assert getattr(b, f) == getattr(l, f), (
                f"{context} {stream}.{f}: batch={getattr(b, f)} "
                f"loop={getattr(l, f)}"
            )
    assert set(batch.array_traffic) == set(loop.array_traffic), context
    for name in loop.array_traffic:
        bt, lt = batch.array_traffic[name], loop.array_traffic[name]
        assert bt.sectors == lt.sectors, f"{context} traffic[{name}].sectors"
        assert bt.unique_bytes == lt.unique_bytes, (
            f"{context} traffic[{name}].unique_bytes"
        )
    assert batch.warp_syncs == loop.warp_syncs, context
    assert batch.flops == loop.flops, context


@pytest.mark.parametrize("gpu", [GTX_1080TI, RTX_2080], ids=lambda g: g.name)
@pytest.mark.parametrize("matrix_id", MATRICES)
@pytest.mark.parametrize("kernel_id", KERNELS)
@pytest.mark.parametrize("n", (1, 8, 40))
def test_batch_matches_loop(kernel_id, matrix_id, n, gpu):
    a = MATRICES[matrix_id]()
    rng = np.random.default_rng(42)
    b = rng.standard_normal((a.ncols, n)).astype(np.float32)
    kernel = KERNELS[kernel_id]()
    c_batch, s_batch = kernel.trace(a, b, gpu)
    c_loop, s_loop = kernel.trace_loop(a, b, gpu)
    ctx = f"{kernel.name} {matrix_id} n={n} {gpu.name}"
    assert_stats_identical(s_batch, s_loop, ctx)
    # Bit-identity, not tolerance: same fp operation order on both paths.
    np.testing.assert_array_equal(c_batch, c_loop, err_msg=ctx)


@pytest.mark.parametrize(
    "semiring", [PLUS_TIMES, MAX_TIMES, MIN_TIMES, MEAN_TIMES],
    ids=lambda s: s.name,
)
@pytest.mark.parametrize("kernel_id", ("simple", "crc", "cwm3", "gespmm"))
def test_batch_matches_loop_semirings(kernel_id, semiring):
    """The row fold must replay the scalar accumulation order for every
    builtin semiring (plus/max/min/mean), not just plus-times."""
    a = MATRICES["powerlaw"]()
    rng = np.random.default_rng(11)
    b = rng.standard_normal((a.ncols, 24)).astype(np.float32)
    kernel = KERNELS[kernel_id]()
    c_batch, s_batch = kernel.trace(a, b, GTX_1080TI, semiring)
    c_loop, s_loop = kernel.trace_loop(a, b, GTX_1080TI, semiring)
    ctx = f"{kernel.name} {semiring.name}"
    assert_stats_identical(s_batch, s_loop, ctx)
    np.testing.assert_array_equal(c_batch, c_loop, err_msg=ctx)


@pytest.mark.parametrize("gpu", [GTX_1080TI, RTX_2080], ids=lambda g: g.name)
@pytest.mark.parametrize("n", (8, 40))
def test_batch_matches_loop_fused_bias(n, gpu):
    a = MATRICES["powerlaw"]()
    rng = np.random.default_rng(5)
    b = rng.standard_normal((a.ncols, n)).astype(np.float32)
    bias = rng.standard_normal(n).astype(np.float32)
    kernel = FusedGESpMM(bias_relu_epilogue())
    c_batch, s_batch = kernel.trace(a, b, gpu, bias=bias)
    c_loop, s_loop = kernel.trace_loop(a, b, gpu, bias=bias)
    ctx = f"fused-bias n={n} {gpu.name}"
    assert_stats_identical(s_batch, s_loop, ctx)
    np.testing.assert_array_equal(c_batch, c_loop, err_msg=ctx)


@pytest.mark.parametrize("gpu", [GTX_1080TI, RTX_2080], ids=lambda g: g.name)
@pytest.mark.parametrize("matrix_id", MATRICES)
@pytest.mark.parametrize("n", (8, 16, 40))
def test_batch_matches_loop_sddmm(matrix_id, n, gpu):
    mask = MATRICES[matrix_id]()
    rng = np.random.default_rng(3)
    x = rng.standard_normal((mask.nrows, n)).astype(np.float32)
    y = rng.standard_normal((mask.ncols, n)).astype(np.float32)
    kernel = GESDDMM()
    e_batch, s_batch = kernel.trace_xy(mask, x, y, gpu)
    e_loop, s_loop = kernel.trace_xy_loop(mask, x, y, gpu)
    ctx = f"sddmm {matrix_id} n={n} {gpu.name}"
    assert_stats_identical(s_batch, s_loop, ctx)
    np.testing.assert_array_equal(e_batch.values, e_loop.values, err_msg=ctx)


def test_sddmm_trace_stub_is_pointed():
    """GESDDMM.trace cannot honour the SpMMKernel trace signature (two
    dense operands); the stub must say so and point at trace_xy."""
    mask = MATRICES["uniform"]()
    b = np.ones((mask.ncols, 8), dtype=np.float32)
    with pytest.raises(NotImplementedError, match=r"trace_xy\(mask, x, y, gpu\)"):
        GESDDMM().trace(mask, b, GTX_1080TI)

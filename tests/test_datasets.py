"""Tests for the citation twins and the SNAP-like suite."""

import numpy as np
import pytest

from repro.datasets import (
    CITATION_STATS,
    SNAP_CATALOG,
    catalog_names,
    load_citation,
    load_cora,
    load_graph,
    load_suite,
)


class TestCitation:
    @pytest.mark.parametrize("name", ["cora", "citeseer", "pubmed"])
    def test_published_statistics(self, name):
        m, edges, classes, feat = CITATION_STATS[name]
        ds = load_citation(name)
        assert ds.n_nodes == m
        assert ds.n_classes == classes
        assert ds.feature_dim == feat
        # Directed nnz ~ 2x undirected edge count (duplicates collapse).
        assert 1.6 * edges <= ds.graph.nnz <= 2.0 * edges
        assert set(np.unique(ds.labels)) == set(range(classes))

    def test_masks_disjoint_and_sized(self):
        ds = load_cora()
        assert not (ds.train_mask & ds.val_mask).any()
        assert not (ds.train_mask & ds.test_mask).any()
        assert not (ds.val_mask & ds.test_mask).any()
        assert ds.train_mask.sum() == 20 * ds.n_classes  # Planetoid split
        assert ds.val_mask.sum() == 500
        assert ds.test_mask.sum() == 1000

    def test_features_class_correlated(self):
        ds = load_cora()
        # Same-class feature vectors overlap more than cross-class ones.
        sims = ds.features @ ds.features.T
        same = labels_eq = ds.labels[:, None] == ds.labels[None, :]
        np.fill_diagonal(labels_eq, False)
        assert sims[labels_eq].mean() > 1.5 * sims[~labels_eq].mean()

    def test_memoized(self):
        assert load_citation("cora") is load_citation("cora")
        assert load_citation("cora", seed=8) is not load_citation("cora", seed=9)

    def test_unknown_graph_rejected(self):
        with pytest.raises(KeyError):
            load_citation("reddit")

    def test_normalized_adjacency_spectral_bound(self):
        ds = load_cora()
        adj = ds.normalized_adjacency()
        # Sym-normalized adjacency with self loops has row sums <= ~1 and
        # all entries positive.
        assert adj.values.min() > 0
        assert adj.nnz == ds.graph.nnz + ds.n_nodes


class TestSnapSuite:
    def test_catalog_has_64(self):
        assert len(SNAP_CATALOG) == 64
        assert len(set(e.name for e in SNAP_CATALOG)) == 64

    def test_catalog_size_ranges_match_paper(self):
        ms = [e.m for e in SNAP_CATALOG]
        ratios = [e.nnz / e.m for e in SNAP_CATALOG]
        assert min(ms) == 1005 and max(ms) == 4_847_571
        assert 1.4 < min(ratios) < 2.0  # paper: nnz/row from 1.58
        assert 25 < max(ratios) < 40  # ... to 32.53

    def test_names_sorted(self):
        names = catalog_names()
        assert names == sorted(names)
        assert len(names) == 64

    def test_scaling_preserves_density(self):
        entry = next(e for e in SNAP_CATALOG if e.nnz > 2_000_000)
        g = load_graph(entry.name, max_nnz=100_000)
        assert g.nnz <= 105_000
        want_density = entry.nnz / entry.m
        assert g.mean_row_length() == pytest.approx(want_density, rel=0.35)

    def test_unscaled_small_graph(self):
        g = load_graph("wiki-Vote", max_nnz=300_000)
        entry = next(e for e in SNAP_CATALOG if e.name == "wiki-Vote")
        assert g.nrows == entry.m  # below the cap: full size

    def test_memoized(self):
        assert load_graph("ca-GrQc") is load_graph("ca-GrQc")

    def test_subset_loading(self):
        suite = load_suite(max_nnz=50_000, names=["ca-GrQc", "wiki-Vote"])
        assert list(suite) == ["ca-GrQc", "wiki-Vote"]

    def test_unknown_matrix_rejected(self):
        with pytest.raises(KeyError):
            load_graph("friendster")

    def test_family_structure(self):
        road = load_graph("roadNet-CA", max_nnz=60_000)
        social = load_graph("soc-Epinions1", max_nnz=60_000)
        # Road networks: near-uniform short rows.  Social: heavy tail.
        road_cv = road.row_lengths().std() / max(road.mean_row_length(), 1e-9)
        soc_cv = social.row_lengths().std() / max(social.mean_row_length(), 1e-9)
        assert soc_cv > 2 * road_cv

"""Tests for repro.bench.diskcache: the cross-process estimate/cell cache."""

import json
import os

import pytest

from repro.bench import run_sweep_with_stats
from repro.bench.diskcache import (
    CACHE_DIR_ENV,
    SCHEMA,
    DiskCache,
    get_disk_cache,
    set_disk_cache,
    timing_from_json,
    timing_to_json,
    use_disk_cache,
)
from repro.bench.runner import clear_sweep_cache
from repro.core import CRCSpMM, GESpMM, SimpleSpMM
from repro.gpusim.config import GTX_1080TI, RTX_2080
from repro.gpusim.kernel import clear_estimate_memo
from repro.sparse import power_law, uniform_random


@pytest.fixture(autouse=True)
def _isolated_caches():
    """No ambient disk cache, clean process memos, before and after."""
    prev = set_disk_cache(None)
    env = os.environ.pop(CACHE_DIR_ENV, None)
    clear_sweep_cache()
    clear_estimate_memo()
    try:
        yield
    finally:
        set_disk_cache(prev)
        if env is not None:
            os.environ[CACHE_DIR_ENV] = env
        clear_sweep_cache()
        clear_estimate_memo()


def _timing(kernel=None, a=None, n=64, gpu=GTX_1080TI):
    kernel = kernel or GESpMM()
    a = a if a is not None else power_law(50, 400, seed=7)
    return kernel.estimate(a, n, gpu), kernel, a


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


def test_timing_json_roundtrip_exact():
    t, _, _ = _timing()
    back = timing_from_json(json.loads(json.dumps(timing_to_json(t))))
    assert back == t  # dataclass equality: every field, bit for bit
    assert back.time_s == t.time_s
    assert back.stats.array_traffic == t.stats.array_traffic
    assert back.occupancy == t.occupancy
    assert back.breakdown == t.breakdown


def test_timing_cache_roundtrip(tmp_path):
    t, _, _ = _timing()
    cache = DiskCache(tmp_path)
    key = ("k", "fp", 64, "gpu", "plus_times", None)
    assert cache.get_timing(key) is None  # miss
    cache.put_timing(key, t)
    assert cache.get_timing(key) == t
    assert cache.counters() == {"hits": 1, "misses": 1, "invalidations": 0}


def test_cell_roundtrip(tmp_path):
    cache = DiskCache(tmp_path)
    key = ("k", "fp", 32, "gpu")
    assert cache.get_cell(key) is None
    cache.put_cell(key, 1.25e-4, 317.5)
    assert cache.get_cell(key) == (1.25e-4, 317.5, None)


def test_cell_roundtrip_with_attribution(tmp_path):
    cache = DiskCache(tmp_path)
    key = ("k", "fp", 32, "gpu")
    attr = {
        "bound_by": "dram",
        "breakdown_ms": {"dram": 0.12, "l2_link": 0.08},
        "factors": {"f_width": 0.5, "f_ilp": 1.0, "f_occ": 1.0},
    }
    cache.put_cell(key, 1.25e-4, 317.5, attribution=attr)
    assert cache.get_cell(key) == (1.25e-4, 317.5, attr)


def test_cell_bad_attribution_invalidated(tmp_path):
    cache = DiskCache(tmp_path)
    key = ("k", "fp", 32, "gpu")
    cache.put_cell(key, 1.0, 2.0, attribution={"bound_by": "dram"})
    path = _sole_entry(cache.root)
    doc = json.loads(path.read_text())
    doc["payload"][2] = "dram"  # not a dict or null
    path.write_text(json.dumps(doc))
    assert cache.get_cell(key) is None
    assert cache.counters()["invalidations"] == 1


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------


def _sole_entry(root):
    files = [f for f in root.rglob("*.json")]
    assert len(files) == 1
    return files[0]


def test_corrupt_entry_invalidated(tmp_path):
    cache = DiskCache(tmp_path)
    key = ("k", "fp", 32, "gpu")
    cache.put_cell(key, 1.0, 2.0)
    path = _sole_entry(cache.root)
    path.write_text("{ not json")
    assert cache.get_cell(key) is None
    assert cache.counters()["invalidations"] == 1
    assert not path.exists()  # removed best-effort
    assert cache.get_cell(key) is None  # now a clean miss
    assert cache.counters()["misses"] == 1


def test_schema_mismatch_invalidated(tmp_path):
    cache = DiskCache(tmp_path)
    key = ("k", "fp", 32, "gpu")
    cache.put_cell(key, 1.0, 2.0)
    path = _sole_entry(cache.root)
    doc = json.loads(path.read_text())
    doc["schema"] = "repro/diskcache/v0"
    path.write_text(json.dumps(doc))
    assert cache.get_cell(key) is None
    assert cache.counters()["invalidations"] == 1


def test_key_mismatch_invalidated(tmp_path):
    cache = DiskCache(tmp_path)
    key = ("k", "fp", 32, "gpu")
    cache.put_cell(key, 1.0, 2.0)
    path = _sole_entry(cache.root)
    doc = json.loads(path.read_text())
    doc["key"] = repr((SCHEMA, "cell", ("other", "fp", 32, "gpu")))
    path.write_text(json.dumps(doc))
    assert cache.get_cell(key) is None
    assert cache.counters()["invalidations"] == 1


def test_malformed_payload_invalidated(tmp_path):
    cache = DiskCache(tmp_path)
    key = ("k", "fp", 64, "gpu", "plus_times", None)
    t, _, _ = _timing()
    cache.put_timing(key, t)
    path = _sole_entry(cache.root)
    doc = json.loads(path.read_text())
    del doc["payload"]["stats"]
    path.write_text(json.dumps(doc))
    assert cache.get_timing(key) is None
    assert cache.counters()["invalidations"] == 1


# ----------------------------------------------------------------------
# Estimate integration
# ----------------------------------------------------------------------


def test_estimate_served_from_disk_across_simulated_processes(tmp_path):
    a = power_law(60, 500, seed=11)
    kern = CRCSpMM()
    with use_disk_cache(DiskCache(tmp_path)) as cache:
        t1 = kern.estimate(a, 96, RTX_2080)
        assert cache.counters()["misses"] == 1  # cold lookup
        clear_estimate_memo()  # simulate a fresh process
        t2 = kern.estimate(a, 96, RTX_2080)
        assert t2 == t1
        assert cache.counters()["hits"] == 1
        # Third call hits the refilled in-memory memo, not the disk.
        kern.estimate(a, 96, RTX_2080)
        assert cache.counters()["hits"] == 1


def test_estimate_unaffected_without_cache():
    a = uniform_random(30, 200, 30, seed=3)
    t1 = SimpleSpMM().estimate(a, 32, GTX_1080TI)
    clear_estimate_memo()
    t2 = SimpleSpMM().estimate(a, 32, GTX_1080TI)
    assert t1 == t2


# ----------------------------------------------------------------------
# Sweep integration: byte-identical warm documents
# ----------------------------------------------------------------------


def test_sweep_byte_identical_across_simulated_processes(tmp_path):
    kernels = [SimpleSpMM(), GESpMM()]
    graphs = {"pl": power_law(80, 700, seed=2)}
    widths = [32, 250]
    gpus = [GTX_1080TI]
    with use_disk_cache(DiskCache(tmp_path)) as cache:
        cold, host_cold = run_sweep_with_stats(kernels, graphs, widths, gpus)
        clear_sweep_cache()
        clear_estimate_memo()
        warm, host_warm = run_sweep_with_stats(kernels, graphs, widths, gpus)
    assert warm == cold
    assert host_warm.memo_misses == 0  # zero recomputation
    assert host_warm.memo_hits == len(cold)
    c = cache.counters()
    assert c["hits"] == len(cold) and c["invalidations"] == 0
    # Serialized cells are byte-identical (floats round-trip via repr).
    dump = lambda rs: json.dumps([r.__dict__ for r in rs], sort_keys=True)
    assert dump(warm) == dump(cold)


# ----------------------------------------------------------------------
# Activation plumbing
# ----------------------------------------------------------------------


def test_env_var_activation(tmp_path, monkeypatch):
    assert get_disk_cache() is None
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    cache = get_disk_cache()
    assert cache is not None and str(cache.root) == str(tmp_path)
    assert get_disk_cache() is cache  # memoized per root
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert get_disk_cache() is None


def test_explicit_activation_wins_over_env(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
    mine = DiskCache(tmp_path / "mine")
    with use_disk_cache(mine):
        assert get_disk_cache() is mine
    assert str(get_disk_cache().root) == str(tmp_path / "env")


# ----------------------------------------------------------------------
# Maintenance: stats / clear
# ----------------------------------------------------------------------


def test_stats_and_clear(tmp_path):
    cache = DiskCache(tmp_path)
    t, _, _ = _timing()
    cache.put_timing(("k", "fp", 64, "g", "s", None), t)
    cache.put_cell(("k", "fp", 64, "g"), 1.0, 2.0)
    cache.put_cell(("k", "fp", 128, "g"), 3.0, 4.0)
    s = cache.stats()
    assert s["entries"] == 3
    assert s["kinds"]["cell"]["entries"] == 2
    assert s["kinds"]["timing"]["entries"] == 1
    assert s["bytes"] > 0
    assert cache.clear() == 3
    assert cache.stats()["entries"] == 0
    assert cache.clear() == 0  # idempotent, empty root fine


def test_clear_missing_root(tmp_path):
    cache = DiskCache(tmp_path / "never-created")
    assert cache.clear() == 0
    assert cache.stats()["entries"] == 0


# ----------------------------------------------------------------------
# CLI: repro-bench cache / --cache-dir
# ----------------------------------------------------------------------


def test_cli_cache_stats_and_clear(tmp_path, capsys):
    from repro.cli import main

    cache = DiskCache(tmp_path)
    cache.put_cell(("k", "fp", 64, "g"), 1.0, 2.0)
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and "cell" in out
    assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
    assert "removed" in capsys.readouterr().out
    assert cache.stats()["entries"] == 0


def test_cli_cache_requires_dir(monkeypatch):
    from repro.cli import main

    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    assert main(["cache", "stats"]) == 2


def test_cli_cache_env_dir(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    DiskCache(tmp_path).put_cell(("k", "fp", 64, "g"), 1.0, 2.0)
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    assert main(["cache", "stats"]) == 0
    assert str(tmp_path) in capsys.readouterr().out


# ----------------------------------------------------------------------
# Concurrent writers (two processes racing the same key)
# ----------------------------------------------------------------------


def _race_writer(root: str, worker: int, n_keys: int) -> None:
    """Hammer the same keys from one process (module-level: picklable)."""
    cache = DiskCache(root)
    for rep in range(20):
        for i in range(n_keys):
            # Both workers write identical payloads per key — the cell
            # value is a pure function of its key, as in real sweeps.
            cache.put_cell(("k", f"fp{i}", 64, "g"), float(i), float(2 * i),
                           {"bound_by": "dram", "breakdown_ms": {"dram": 1.0},
                            "factors": {}})


def test_concurrent_writers_no_corruption(tmp_path):
    """Two processes racing the same keys through tmp+os.replace must
    never corrupt an entry, and a reader never observes a partial one."""
    import multiprocessing as mp

    n_keys = 8
    ctx = mp.get_context("fork")
    procs = [
        ctx.Process(target=_race_writer, args=(str(tmp_path), w, n_keys))
        for w in range(2)
    ]
    for p in procs:
        p.start()
    # Read concurrently while the writers race: every get is either a
    # miss (file not there yet) or the complete, valid payload.
    reader = DiskCache(tmp_path)
    seen = 0
    while any(p.is_alive() for p in procs):
        for i in range(n_keys):
            cell = reader.get_cell(("k", f"fp{i}", 64, "g"))
            if cell is not None:
                assert cell[0] == float(i) and cell[1] == float(2 * i)
                assert cell[2]["bound_by"] == "dram"
                seen += 1
    for p in procs:
        p.join()
        assert p.exitcode == 0
    assert reader.counters()["invalidations"] == 0  # no partial reads, ever
    # After the dust settles every key is present and intact.
    final = DiskCache(tmp_path)
    for i in range(n_keys):
        assert final.get_cell(("k", f"fp{i}", 64, "g")) is not None
    assert final.counters()["invalidations"] == 0
    # And no temp files were left behind by the atomic-replace protocol.
    leftovers = [f for f in tmp_path.rglob("*") if ".tmp." in f.name]
    assert leftovers == []


# ----------------------------------------------------------------------
# Per-schema stats (repro-bench cache stats)
# ----------------------------------------------------------------------


def test_stats_groups_by_schema_version(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put_cell(("k", "fp", 64, "g"), 1.0, 2.0)
    cache.put_cell(("k", "fp", 128, "g"), 3.0, 4.0)
    # Hand-craft a leftover entry from a previous schema version and a
    # corrupt file; stats must label both without touching them.
    old = tmp_path / "cell" / "zz" / "deadbeef.json"
    old.parent.mkdir(parents=True)
    old.write_text(json.dumps({"schema": "repro/diskcache/v1", "kind": "cell",
                               "key": "old", "payload": [1.0, 2.0, None]}))
    bad = tmp_path / "cell" / "zz" / "torn.json"
    bad.write_text("{not json")
    s = cache.stats()
    assert s["entries"] == 4
    assert s["schemas"][SCHEMA]["entries"] == 2
    assert s["schemas"]["repro/diskcache/v1"]["entries"] == 1
    assert s["schemas"]["(unreadable)"]["entries"] == 1
    assert sum(v["entries"] for v in s["schemas"].values()) == s["entries"]
    assert sum(v["bytes"] for v in s["schemas"].values()) == s["bytes"]


def test_cli_cache_stats_shows_schemas(tmp_path, capsys):
    from repro.cli import main

    DiskCache(tmp_path).put_cell(("k", "fp", 64, "g"), 1.0, 2.0)
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "by schema version:" in out
    assert SCHEMA in out


# ----------------------------------------------------------------------
# Shard entries (corpus checkpoints)
# ----------------------------------------------------------------------


def test_shard_roundtrip(tmp_path):
    cache = DiskCache(tmp_path)
    payload = {
        "cells": [["crc", "m0", 64, "g", 0.5, 2.0]],
        "stats": {"m0": {"regime": "short-rows/uniform", "sparsity": 0.9}},
    }
    key = ("corpus-shard", (("m0", "uniform", ()),), ("ck",), (64,), ("g",))
    assert cache.get_shard(key) is None
    cache.put_shard(key, payload)
    back = cache.get_shard(key)
    assert back == json.loads(json.dumps(payload))  # JSON-exact round-trip


def test_shard_malformed_payload_invalidated(tmp_path):
    cache = DiskCache(tmp_path)
    key = ("corpus-shard", (("m0", "uniform", ()),), ("ck",), (64,), ("g",))
    cache.put_shard(key, {"cells": [["too", "short"]], "stats": {}})
    assert cache.get_shard(key) is None  # structurally invalid -> recompute
    assert cache.counters()["invalidations"] == 1
    cache.put_shard(key, {"cells": "nope", "stats": {}})
    assert cache.get_shard(key) is None

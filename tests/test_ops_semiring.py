"""Tests for reference SpMM/SpMM-like oracles and semiring definitions."""

import numpy as np
import pytest

from repro.semiring import MAX_TIMES, MEAN_TIMES, MIN_TIMES, PLUS_TIMES, builtin_semirings
from repro.sparse import (
    csr_from_coo,
    flops_of_spmm,
    reference_spmm,
    reference_spmm_like,
    reference_spmv,
    uniform_random,
)


def brute_force_spmm_like(a, b, semiring):
    """Dead-simple per-element oracle for the oracle."""
    m, n = a.nrows, b.shape[1]
    out = np.full((m, n), semiring.init, dtype=np.float64)
    for i in range(m):
        cols, vals = a.row_slice(i)
        for k, v in zip(cols, vals):
            out[i] = semiring.reduce_pair(out[i], v * b[k].astype(np.float64))
    if semiring.mean:
        lengths = a.row_lengths()
        nz = lengths > 0
        out[nz] /= lengths[nz, None]
    return out.astype(np.float32)


class TestReferenceSpMM:
    def test_matches_scipy(self, medium_csr, dense_b):
        c = reference_spmm(medium_csr, dense_b)
        np.testing.assert_allclose(c, medium_csr.to_scipy() @ dense_b, rtol=1e-5)

    def test_matches_dense(self, small_csr, rng):
        b = rng.random((4, 3), dtype=np.float32)
        np.testing.assert_allclose(
            reference_spmm(small_csr, b), small_csr.to_dense() @ b, rtol=1e-5
        )

    def test_shape_check(self, small_csr):
        with pytest.raises(ValueError):
            reference_spmm(small_csr, np.zeros((5, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            reference_spmm(small_csr, np.zeros(4, dtype=np.float32))

    def test_spmv(self, medium_csr, rng):
        x = rng.random(medium_csr.ncols, dtype=np.float32)
        np.testing.assert_allclose(
            reference_spmv(medium_csr, x), medium_csr.to_scipy() @ x, rtol=1e-5
        )
        with pytest.raises(ValueError):
            reference_spmv(medium_csr, x[:-1])

    def test_flops(self, medium_csr):
        assert flops_of_spmm(medium_csr, 128) == 2 * medium_csr.nnz * 128


class TestReferenceSpMMLike:
    @pytest.mark.parametrize("semiring", [PLUS_TIMES, MAX_TIMES, MIN_TIMES, MEAN_TIMES],
                             ids=lambda s: s.name)
    def test_against_brute_force(self, medium_csr, dense_b, semiring):
        got = reference_spmm_like(medium_csr, dense_b, semiring)
        want = brute_force_spmm_like(medium_csr, dense_b, semiring)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_plus_equals_spmm(self, medium_csr, dense_b):
        np.testing.assert_allclose(
            reference_spmm_like(medium_csr, dense_b, PLUS_TIMES),
            reference_spmm(medium_csr, dense_b),
            rtol=1e-4,
        )

    def test_empty_rows_get_identity(self, rng):
        a = csr_from_coo([0], [1], [2.0], shape=(3, 2))
        b = rng.random((2, 4), dtype=np.float32)
        out = reference_spmm_like(a, b, MAX_TIMES)
        assert np.all(out[1] == np.float32(-np.inf))
        out_sum = reference_spmm_like(a, b, PLUS_TIMES)
        assert np.all(out_sum[1] == 0)

    def test_empty_matrix(self):
        a = csr_from_coo([], [], [], shape=(3, 3))
        out = reference_spmm_like(a, np.ones((3, 2), dtype=np.float32), PLUS_TIMES)
        assert out.shape == (3, 2) and not out.any()

    def test_mean_is_row_average(self):
        a = csr_from_coo([0, 0], [0, 1], [1.0, 1.0], shape=(1, 2))
        b = np.array([[2.0], [4.0]], dtype=np.float32)
        out = reference_spmm_like(a, b, MEAN_TIMES)
        assert out[0, 0] == pytest.approx(3.0)

    def test_negative_values_max(self, rng):
        # max-times with negative products must still pick the maximum.
        a = csr_from_coo([0, 0], [0, 1], [-1.0, 1.0], shape=(1, 2))
        b = np.array([[5.0], [-2.0]], dtype=np.float32)
        out = reference_spmm_like(a, b, MAX_TIMES)
        assert out[0, 0] == pytest.approx(-2.0)


class TestSemiring:
    def test_builtins_registry(self):
        reg = builtin_semirings()
        assert set(reg) == {"plus_times", "max_times", "min_times", "mean_times"}

    def test_is_standard(self):
        assert PLUS_TIMES.is_standard
        assert not MAX_TIMES.is_standard
        assert not MEAN_TIMES.is_standard

    def test_identities(self):
        assert PLUS_TIMES.init == 0.0
        assert MAX_TIMES.init == -np.inf
        assert MIN_TIMES.init == np.inf

    def test_reduce_pair_consistency(self, rng):
        x = rng.standard_normal(10)
        y = rng.standard_normal(10)
        for s in builtin_semirings().values():
            stacked = np.stack([x, y])
            np.testing.assert_allclose(s.reduce(stacked, axis=0), s.reduce_pair(x, y))

    def test_finalize_mean(self):
        acc = np.array([[6.0, 9.0], [0.0, 0.0]], dtype=np.float32)
        out = MEAN_TIMES.finalize(acc, np.array([3, 0]))
        np.testing.assert_allclose(out[0], [2.0, 3.0])
        np.testing.assert_allclose(out[1], [0.0, 0.0])  # empty row guarded

    def test_finalize_noop_for_sum(self):
        acc = np.ones((2, 2), dtype=np.float32)
        assert PLUS_TIMES.finalize(acc, np.array([1, 1])) is acc

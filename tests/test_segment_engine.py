"""Parity suite for the segmented-reduction host engine.

Locks the contract in ``repro.sparse.segment``'s docstring: the engine
must be bit-identical to the preserved scatter oracles for max/min
reductions on any input and for plus/mean on exact (integer-valued)
arithmetic, and within tight tolerances on arbitrary floats (where
``np.add.reduceat``'s pairing reassociates the sum).  Also covers the
derived-array caches on ``CSRMatrix``, the engine-routed
``to_dense``/normalizers, and the argmax semantics (first maximizer,
empty rows, NaN) that ``aggregate_max``'s backward depends on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.semiring import MAX_TIMES, MEAN_TIMES, MIN_TIMES, PLUS_TIMES, Semiring
from repro.sparse import (
    csr_from_coo,
    engine_enabled,
    power_law,
    scatter_oracle_segment_reduce,
    scatter_oracle_spmm_like,
    scatter_oracle_to_dense,
    segment_argmax,
    segment_reduce,
    segment_spmm_like,
    set_engine,
    uniform_random,
    use_segment_engine,
)
from repro.sparse.ops import reference_spmm_like

SEMIRINGS = {
    "plus": PLUS_TIMES,
    "max": MAX_TIMES,
    "min": MIN_TIMES,
    "mean": MEAN_TIMES,
}
BITWISE_ALWAYS = {"max", "min"}


@st.composite
def csr_matrices(draw, max_m=30, max_k=25, max_nnz=150, integer_values=False):
    """Random CSR with deliberate empty rows; optionally integer-valued
    float32 entries so plus/mean accumulation is exact."""
    m = draw(st.integers(1, max_m))
    k = draw(st.integers(1, max_k))
    nnz = draw(st.integers(0, min(max_nnz, m * k)))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    # Concentrate nonzeros on a subset of rows so some rows are empty.
    active = max(1, m // 2)
    rows = rng.integers(0, active, size=nnz)
    cols = rng.integers(0, k, size=nnz)
    if integer_values:
        vals = rng.integers(-4, 5, size=nnz).astype(np.float32)
    else:
        vals = rng.standard_normal(nnz).astype(np.float32)
    return csr_from_coo(rows, cols, vals, shape=(m, k), sum_duplicates=True)


def _dense_operand(a, n, seed, integer_values=False):
    rng = np.random.default_rng(seed)
    if integer_values:
        return rng.integers(-4, 5, size=(a.ncols, n)).astype(np.float32)
    return rng.standard_normal((a.ncols, n)).astype(np.float32)


@pytest.mark.parametrize("name", sorted(SEMIRINGS))
@pytest.mark.parametrize("n", [1, 7, 32])
@given(a=csr_matrices(), seed=st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_segment_vs_scatter_parity(name, n, a, seed):
    sr = SEMIRINGS[name]
    b = _dense_operand(a, n, seed)
    got = segment_spmm_like(a, b, sr)
    want = scatter_oracle_spmm_like(a, b, sr)
    if name in BITWISE_ALWAYS:
        np.testing.assert_array_equal(got, want)
    else:
        # reduceat reassociates the float32 sum; see the module docstring.
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-4)


@pytest.mark.parametrize("name", ["plus", "mean"])
@given(a=csr_matrices(integer_values=True), seed=st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_plus_like_bitwise_on_exact_arithmetic(name, a, seed):
    """With integer-valued operands the accumulation is exact, so the
    reduceat reassociation cannot surface: bit parity is required."""
    sr = SEMIRINGS[name]
    b = _dense_operand(a, 5, seed, integer_values=True)
    np.testing.assert_array_equal(
        segment_spmm_like(a, b, sr), scatter_oracle_spmm_like(a, b, sr)
    )


@pytest.mark.parametrize("name", sorted(SEMIRINGS))
def test_parity_on_power_law(name):
    sr = SEMIRINGS[name]
    a = power_law(300, 4000, seed=7, weighted=True)
    b = _dense_operand(a, 16, seed=3)
    got = segment_spmm_like(a, b, sr)
    want = scatter_oracle_spmm_like(a, b, sr)
    if name in BITWISE_ALWAYS:
        np.testing.assert_array_equal(got, want)
    else:
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)


def test_reference_spmm_like_dispatches_on_toggle():
    a = uniform_random(50, 400, seed=1, weighted=True)
    b = _dense_operand(a, 8, seed=2)
    with use_segment_engine(True):
        engine = reference_spmm_like(a, b, MAX_TIMES)
    with use_segment_engine(False):
        oracle = reference_spmm_like(a, b, MAX_TIMES)
    np.testing.assert_array_equal(engine, oracle)
    np.testing.assert_array_equal(engine, segment_spmm_like(a, b, MAX_TIMES))


def test_generic_semiring_falls_back_to_scatter_loop():
    """A user semiring without a reduceat-capable reduce still works
    through reference_spmm_like (per-row loop), and segment_spmm_like
    refuses it explicitly."""
    odd = Semiring(
        name="second_largest_times",
        combine=np.multiply,
        reduce=lambda x, axis=0: np.sort(x, axis=axis)[-2 if x.shape[axis] > 1 else -1],
        reduce_pair=np.maximum,
        init=-np.inf,
    )
    a = uniform_random(20, 100, seed=3, weighted=True)
    b = _dense_operand(a, 4, seed=4)
    with use_segment_engine(True):
        got = reference_spmm_like(a, b, odd)
    assert got.shape == (a.nrows, 4)
    with pytest.raises(NotImplementedError):
        segment_spmm_like(a, b, odd)


def test_engine_toggle_restores_on_exception():
    assert engine_enabled()
    with pytest.raises(RuntimeError):
        with use_segment_engine(False):
            assert not engine_enabled()
            raise RuntimeError("boom")
    assert engine_enabled()
    prev = set_engine(False)
    assert prev is True
    assert set_engine(True) is False


# ----------------------------------------------------------------------
# segment_reduce / empty segments
# ----------------------------------------------------------------------


def test_segment_reduce_empty_rows_hold_exact_identity():
    rowptr = np.array([0, 0, 3, 3, 5], dtype=np.int64)
    contributions = np.arange(10, dtype=np.float32).reshape(5, 2)
    for ufunc, init in ((np.add, 0.0), (np.maximum, -np.inf), (np.minimum, np.inf)):
        out = segment_reduce(contributions, rowptr, ufunc, init)
        oracle = scatter_oracle_segment_reduce(contributions, rowptr, ufunc, init)
        np.testing.assert_array_equal(out[0], np.full(2, init))
        np.testing.assert_array_equal(out[2], np.full(2, init))
        np.testing.assert_array_equal(out, oracle)


def test_segment_reduce_zero_rows_and_zero_nnz():
    empty = segment_reduce(np.zeros((0, 3), np.float32), np.zeros(1, np.int64), np.add, 0.0)
    assert empty.shape == (0, 3)
    allempty = segment_reduce(np.zeros((0, 2), np.float32), np.zeros(5, np.int64), np.maximum, -np.inf)
    np.testing.assert_array_equal(allempty, np.full((4, 2), -np.inf))


def test_segment_reduce_counter_increments():
    prev = obs.set_registry(MetricsRegistry())
    try:
        a = uniform_random(30, 200, seed=5, weighted=True)
        b = _dense_operand(a, 4, seed=6)
        segment_spmm_like(a, b, PLUS_TIMES)
        counter = obs.get_registry().counter("segment.reduce_calls", op="add")
        assert counter.value >= 1
    finally:
        obs.set_registry(prev)


# ----------------------------------------------------------------------
# derived-array caches
# ----------------------------------------------------------------------


def test_derived_arrays_cached_readonly_and_counted():
    prev = obs.set_registry(MetricsRegistry())
    try:
        a = uniform_random(40, 300, seed=8)
        first = a.coo_rows()
        assert a.coo_rows() is first  # cached object, not a rebuild
        assert not first.flags.writeable
        assert a.colind64() is a.colind64()
        assert not a.colind64().flags.writeable
        assert a.row_lengths() is a.row_lengths()
        reg = obs.get_registry()
        assert reg.counter("csr.derived_cache.misses", array="coo_rows").value == 1
        assert reg.counter("csr.derived_cache.hits", array="coo_rows").value >= 1
    finally:
        obs.set_registry(prev)


def test_fingerprint_content_addressing():
    a = uniform_random(30, 200, seed=9, weighted=True)
    b = uniform_random(30, 200, seed=9, weighted=True)
    c = uniform_random(30, 200, seed=10, weighted=True)
    assert a.fingerprint() == b.fingerprint()  # equal content, equal print
    assert a.fingerprint() != c.fingerprint()
    # Same pattern, different values -> different print.
    assert a.fingerprint() != a.with_values(a.values * 2).fingerprint()


def test_to_dense_engine_matches_oracle_including_duplicates():
    sorted_free = uniform_random(25, 180, seed=11, weighted=True)
    np.testing.assert_array_equal(
        sorted_free.to_dense(), scatter_oracle_to_dense(sorted_free)
    )
    # Duplicate (row, col) pattern: engine must fall back to accumulation.
    rows = np.array([0, 0, 1, 2, 2, 2])
    cols = np.array([1, 1, 0, 2, 2, 0])
    vals = np.array([1.5, 2.5, 3.0, 1.0, 1.0, 4.0], dtype=np.float32)
    dup = csr_from_coo(rows, cols, vals, shape=(3, 3), sum_duplicates=False)
    np.testing.assert_array_equal(dup.to_dense(), scatter_oracle_to_dense(dup))
    assert dup.to_dense()[0, 1] == np.float32(4.0)


def test_normalizers_parity_across_toggle():
    a = power_law(120, 1500, seed=12, weighted=True)
    with use_segment_engine(True):
        rn1, sn1 = a.row_normalized(), a.sym_normalized()
    with use_segment_engine(False):
        rn0, sn0 = a.row_normalized(), a.sym_normalized()
    np.testing.assert_allclose(rn1.values, rn0.values, rtol=1e-6)
    np.testing.assert_allclose(sn1.values, sn0.values, rtol=1e-6)


# ----------------------------------------------------------------------
# argmax semantics
# ----------------------------------------------------------------------


def _manual_argmax(a, contributions):
    m, n = a.nrows, contributions.shape[1]
    want = np.full((m, n), -1, dtype=np.int64)
    for i in range(m):
        lo, hi = int(a.rowptr[i]), int(a.rowptr[i + 1])
        for j in range(n):
            col = contributions[lo:hi, j]
            if col.size == 0 or np.isnan(col.max()):
                continue  # empty row or NaN cell: no winner
            want[i, j] = lo + int(np.argmax(col == col.max()))
    return want


def test_argmax_first_maximizer_on_ties():
    rows = np.array([0, 0, 0, 1, 1])
    cols = np.array([0, 1, 2, 0, 1])
    vals = np.ones(5, dtype=np.float32)
    a = csr_from_coo(rows, cols, vals, shape=(2, 3), sum_duplicates=True)
    # Tie in row 0 between nonzeros 0 and 2 (same contribution value).
    contributions = np.array(
        [[5.0, 1.0], [3.0, 1.0], [5.0, 0.0], [2.0, 2.0], [2.0, 7.0]], dtype=np.float32
    )
    am = segment_argmax(a, contributions)
    np.testing.assert_array_equal(am, [[0, 0], [3, 4]])


@pytest.mark.parametrize("n", [5, 8, 16])  # 5 exercises the plain-nonzero path
def test_argmax_matches_manual_loop(n):
    a = uniform_random(40, 300, seed=13, weighted=True)
    rng = np.random.default_rng(14)
    contributions = rng.integers(-3, 4, size=(a.nnz, n)).astype(np.float32)
    am = segment_argmax(a, contributions)
    np.testing.assert_array_equal(am, _manual_argmax(a, contributions))


def test_argmax_empty_rows_and_nan_cells_hold_minus_one():
    rows = np.array([0, 0, 2])
    cols = np.array([0, 1, 1])
    vals = np.ones(3, dtype=np.float32)
    a = csr_from_coo(rows, cols, vals, shape=(4, 2), sum_duplicates=True)
    contributions = np.array(
        [[1.0, np.nan], [0.5, np.nan], [2.0, 3.0]], dtype=np.float32
    )
    am = segment_argmax(a, contributions)
    assert am[1].tolist() == [-1, -1] and am[3].tolist() == [-1, -1]  # empty rows
    assert am[0, 1] == -1  # NaN cell: no winner
    assert am[0, 0] == 0 and am[2].tolist() == [2, 2]


# ----------------------------------------------------------------------
# aggregate_max: engine vs preserved scatter path
# ----------------------------------------------------------------------


def _run_aggregate(a, x_data, grad, enabled):
    from repro.gnn.aggregate import GraphPair, aggregate_max
    from repro.gnn.tensor import Tensor

    no_cost = lambda *args, **kw: 0.0
    record = lambda *args, **kw: None
    with use_segment_engine(enabled):
        x = Tensor(x_data.copy(), requires_grad=True)
        y = aggregate_max(GraphPair(a), x, no_cost, no_cost, record)
        y.backward(grad.copy())
    return y.data, x.grad


def test_aggregate_max_forward_bitwise_and_backward_close():
    a = power_law(150, 2000, seed=15, weighted=True)
    rng = np.random.default_rng(16)
    x = rng.standard_normal((a.ncols, 8)).astype(np.float32)
    grad = rng.standard_normal((a.nrows, 8)).astype(np.float32)
    y1, g1 = _run_aggregate(a, x, grad, enabled=True)
    y0, g0 = _run_aggregate(a, x, grad, enabled=False)
    np.testing.assert_array_equal(y1, y0)
    # Continuous values: ties have measure zero, so winner-takes-all and
    # tie-sharing route gradients identically (up to accumulation order).
    np.testing.assert_allclose(g1, g0, rtol=1e-5, atol=1e-5)


def test_aggregate_max_tie_gradient_goes_to_first_maximizer():
    # Row 0 aggregates two neighbors with identical contributions: the
    # engine routes the whole gradient to the first nonzero (PyTorch
    # scatter_max semantics); the legacy scatter path duplicates it to
    # every tied maximizer.  Lock both behaviors.
    rows = np.array([0, 0])
    cols = np.array([1, 2])
    vals = np.ones(2, dtype=np.float32)
    a = csr_from_coo(rows, cols, vals, shape=(1, 3), sum_duplicates=True)
    x = np.full((3, 2), 4.0, dtype=np.float32)
    grad = np.array([[1.0, 2.0]], dtype=np.float32)
    _, g_engine = _run_aggregate(a, x, grad, enabled=True)
    np.testing.assert_array_equal(
        g_engine, [[0.0, 0.0], [1.0, 2.0], [0.0, 0.0]]
    )
    _, g_scatter = _run_aggregate(a, x, grad, enabled=False)
    np.testing.assert_allclose(g_scatter, [[0, 0], [1.0, 2.0], [1.0, 2.0]])


def test_aggregate_max_empty_rows_zero_output_and_grad():
    rows = np.array([0, 0])
    cols = np.array([0, 1])
    vals = np.array([1.0, 2.0], dtype=np.float32)
    a = csr_from_coo(rows, cols, vals, shape=(3, 2), sum_duplicates=True)
    x = np.array([[1.0], [1.0]], dtype=np.float32)
    grad = np.ones((3, 1), dtype=np.float32)
    for enabled in (True, False):
        y, g = _run_aggregate(a, x, grad, enabled)
        np.testing.assert_array_equal(y[1:], np.zeros((2, 1), np.float32))
        assert y[0, 0] == np.float32(2.0)
        np.testing.assert_array_equal(g, [[0.0], [2.0]])

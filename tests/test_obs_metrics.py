"""Metrics registry: labeled series, deterministic histograms, JSONL."""

from __future__ import annotations

import json
import random

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    prev = set_registry(fresh)
    yield fresh
    set_registry(prev)


def test_counter_accumulates_and_rejects_negative():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_keeps_last_value():
    g = Gauge()
    assert g.value is None
    g.set(1.0)
    g.set(7.25)
    assert g.value == 7.25


def test_registry_get_or_create_same_object(registry):
    a = registry.counter("hits", kernel="GE-SpMM")
    b = registry.counter("hits", kernel="GE-SpMM")
    other = registry.counter("hits", kernel="cuSPARSE")
    assert a is b and a is not other
    a.inc()
    assert registry.counter("hits", kernel="GE-SpMM").value == 1


def test_labels_are_order_insensitive(registry):
    registry.counter("x", a=1, b=2).inc()
    registry.counter("x", b=2, a=1).inc()
    assert len(registry) == 1
    assert registry.counter("x", a=1, b=2).value == 2


def test_histogram_bucket_percentiles_are_exact_bounds():
    h = Histogram(buckets=(1.0, 2.0, 5.0, 10.0))
    for v in (0.5, 1.5, 1.7, 3.0, 9.0):
        h.observe(v)
    assert h.count == 5
    assert h.min == 0.5 and h.max == 9.0
    # nearest-rank on cumulative bucket counts: p50 -> rank 3 -> bucket (1,2]
    assert h.percentile(50) == 2.0
    assert h.percentile(95) == 10.0
    assert h.percentile(99) == 10.0


def test_histogram_overflow_reports_observed_max():
    h = Histogram(buckets=(1.0, 2.0))
    h.observe(100.0)
    h.observe(50.0)
    assert h.percentile(50) == 100.0
    assert h.percentile(99) == 100.0


def test_histogram_mixed_overflow_percentiles():
    """In-range samples keep bucket-edge percentiles while ranks that land
    past the last bound report the observed maximum."""
    h = Histogram(buckets=(1.0, 2.0, 5.0))
    for v in (0.5, 1.5, 1.6, 1.7, 4.0, 4.5, 4.9, 4.95, 4.99):  # 9 in range
        h.observe(v)
    h.observe(123.0)  # 1 overflow sample (p91..p100)
    assert h.count == 10
    assert h.percentile(40) == 2.0  # bucket edge, not an observed value
    assert h.percentile(90) == 5.0  # last in-range bucket
    assert h.percentile(91) == 123.0  # first overflow rank: observed max
    assert h.percentile(99) == 123.0
    snap = h.snapshot()
    assert snap["p99"] == 123.0 and snap["max"] == 123.0 and snap["p50"] == 5.0


def test_histogram_percentiles_deterministic_across_runs_and_order():
    rng = random.Random(7)
    values = [rng.uniform(0.001, 400.0) for _ in range(500)]
    snapshots = []
    for order in (values, sorted(values), list(reversed(values))):
        h = Histogram()
        for v in order:
            h.observe(v)
        snap = h.snapshot()
        snapshots.append((snap["p50"], snap["p95"], snap["p99"]))
    assert snapshots[0] == snapshots[1] == snapshots[2]
    # Percentiles are bucket upper edges: members of the fixed ladder.
    assert all(p in DEFAULT_BUCKETS for p in snapshots[0])


def test_histogram_empty_and_bad_bounds():
    h = Histogram()
    assert h.percentile(50) == 0.0
    assert h.snapshot()["count"] == 0
    with pytest.raises(ValueError):
        Histogram(buckets=())
    with pytest.raises(ValueError):
        Histogram(buckets=(2.0, 1.0))


def test_observe_shorthand_and_len(registry):
    registry.observe("time_ms", 3.0, kernel="GE-SpMM", graph="cora", n=128, gpu="P")
    registry.observe("time_ms", 4.0, kernel="GE-SpMM", graph="cora", n=128, gpu="P")
    assert len(registry) == 1
    h = registry.histogram("time_ms", kernel="GE-SpMM", graph="cora", n=128, gpu="P")
    assert h.count == 2


def test_jsonl_deterministic_for_identical_population():
    def populate(reg):
        reg.counter("launches", gpu="GTX 1080Ti").inc(3)
        reg.gauge("gflops", kernel="GE-SpMM", graph="cora", n=128, gpu="P").set(250.0)
        for v in (0.5, 2.0, 8.0):
            reg.observe("time_ms", v, gpu="P")

    a, b = MetricsRegistry(), MetricsRegistry()
    populate(a)
    populate(b)
    assert a.to_jsonl() == b.to_jsonl()
    lines = [json.loads(l) for l in a.to_jsonl().splitlines()]
    assert len(lines) == 3
    by_name = {l["name"]: l for l in lines}
    assert by_name["launches"]["value"] == 3
    assert by_name["launches"]["type"] == "counter"
    assert by_name["gflops"]["labels"]["graph"] == "cora"
    assert by_name["time_ms"]["count"] == 3
    assert {"p50", "p95", "p99"} <= set(by_name["time_ms"])


def test_jsonl_orders_mixed_label_types_without_error():
    reg = MetricsRegistry()
    reg.counter("m", key=1).inc()
    reg.counter("m", key="one").inc()
    lines = reg.to_jsonl().splitlines()
    assert len(lines) == 2  # no TypeError from comparing int/str label values


def test_global_registry_swap(registry):
    assert get_registry() is registry
    registry.counter("c").inc()
    assert get_registry().counter("c").value == 1


def test_reset_clears_series(registry):
    registry.counter("c").inc()
    registry.reset()
    assert len(registry) == 0
    assert registry.to_jsonl() == ""

"""Calibration guard: the paper's aggregate bands, pinned.

The timing model's constants (:class:`TimingParams`) are fixed once for
all kernels; this module asserts that, with those constants, the model
reproduces the paper's headline aggregates on the canonical profiling
matrix (M=65K, nnz=650K — Section V-B) and a suite sample.  If a future
change to the model or the kernels moves any of these out of band, this
file is the alarm.

Bands are deliberately wider than the paper's point estimates: we claim
shape (who wins, roughly by how much), not third-digit agreement.
EXPERIMENTS.md records the exact measured values.
"""

import pytest

from repro.baselines import ASpTSpMM, CusparseCsrmm2, GraphBlastRowSplit, GunrockAdvanceSpMM
from repro.bench import geomean
from repro.core import CRCSpMM, CWMSpMM, GESpMM, SimpleSpMM
from repro.datasets import load_suite
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.sparse import uniform_random


@pytest.fixture(scope="module")
def canon():
    return uniform_random(m=65_536, nnz=650_000, seed=42)


@pytest.fixture(scope="module")
def sample_suite():
    names = sorted(load_suite(max_nnz=1).keys())[::4]  # every 4th matrix
    return load_suite(max_nnz=100_000, names=names)


def _speedup(kernel_a, kernel_b, a, n, gpu):
    """How much faster kernel_a is than kernel_b."""
    return kernel_b.estimate(a, n, gpu).time_s / kernel_a.estimate(a, n, gpu).time_s


class TestCanonicalMatrix:
    def test_crc_band_pascal(self, canon):
        s = _speedup(CRCSpMM(), SimpleSpMM(), canon, 512, GTX_1080TI)
        assert 1.1 < s < 1.45  # paper avg 1.246

    def test_crc_band_turing(self, canon):
        s = _speedup(CRCSpMM(), SimpleSpMM(), canon, 512, RTX_2080)
        assert 0.85 < s < 1.15  # paper avg 1.011

    def test_combined_band_pascal(self, canon):
        s = _speedup(CWMSpMM(2), SimpleSpMM(), canon, 512, GTX_1080TI)
        assert 1.4 < s < 1.95  # paper avg 1.65

    def test_combined_band_turing(self, canon):
        s = _speedup(CWMSpMM(2), SimpleSpMM(), canon, 512, RTX_2080)
        assert 1.05 < s < 1.8  # paper avg 1.53 (ours lands low in band)

    def test_gld_throughput_rises_then_falls(self, canon):
        tps = [
            (CRCSpMM() if cf == 1 else CWMSpMM(cf)).estimate(canon, 512, GTX_1080TI).gld_throughput
            for cf in (1, 2, 8)
        ]
        # 479 -> 568 -> 395 in the paper: a peak at CF=2, decline by CF=8.
        assert tps[1] > tps[0] and tps[1] > tps[2]


class TestSuiteAggregates:
    @pytest.mark.parametrize("gpu", [GTX_1080TI, RTX_2080], ids=lambda g: g.name)
    def test_vs_cusparse_band(self, sample_suite, gpu):
        ge, cu = GESpMM(), CusparseCsrmm2()
        s = geomean(_speedup(ge, cu, a, 256, gpu) for a in sample_suite.values())
        assert 1.0 < s < 1.6  # paper 1.18-1.43 across N and machines

    @pytest.mark.parametrize("gpu", [GTX_1080TI, RTX_2080], ids=lambda g: g.name)
    def test_vs_graphblast_band(self, sample_suite, gpu):
        ge, gb = GESpMM(), GraphBlastRowSplit()
        s = geomean(_speedup(ge, gb, a, 256, gpu) for a in sample_suite.values())
        assert 1.2 < s < 2.1  # paper 1.42-1.81

    def test_vs_gunrock_band(self, sample_suite):
        ge, gr = GESpMM(), GunrockAdvanceSpMM()
        s = geomean(_speedup(ge, gr, a, 64, GTX_1080TI) for a in sample_suite.values())
        assert 6 < s < 45  # paper average 18.27

    def test_vs_aspt_kernel_only(self, sample_suite):
        ge, asp = GESpMM(), ASpTSpMM()
        s = geomean(_speedup(ge, asp, a, 256, GTX_1080TI) for a in sample_suite.values())
        assert 0.75 < s < 1.2  # paper 0.85-1.00 (ASpT slightly ahead)

    def test_vs_aspt_with_preprocess(self, sample_suite):
        ge, asp = GESpMM(), ASpTSpMM()
        vals = []
        for a in sample_suite.values():
            t_ge = ge.estimate(a, 256, GTX_1080TI).time_s
            t_as = asp.estimate(a, 256, GTX_1080TI).time_s + asp.preprocess_time(a, GTX_1080TI)
            vals.append(t_as / t_ge)
        s = geomean(vals)
        assert 1.2 < s < 2.6  # paper 1.43-2.06

"""The flat perf-regression harness (`repro.bench.regression`).

Covers ``capture``, baseline save/load round-trips, ``compare``
tolerance edges, the infinite-drift sentinels for appeared/disappeared
keys, and the document interop that feeds the gate.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import bench_document, run_sweep
from repro.bench.regression import (
    RegressionEntry,
    capture,
    compare,
    document_measurements,
    load_baseline,
    measurement_key,
    save_baseline,
)
from repro.core import CRCSpMM, GESpMM, SimpleSpMM
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.sparse import uniform_random


@pytest.fixture(scope="module")
def graphs():
    return {
        "rand-a": uniform_random(m=200, nnz=1600, seed=11),
        "rand-b": uniform_random(m=150, nnz=1800, seed=12),
    }


@pytest.fixture(scope="module")
def measurements(graphs):
    return capture([SimpleSpMM(), CRCSpMM()], graphs, [32, 64], [GTX_1080TI, RTX_2080])


def test_capture_covers_cross_product(measurements, graphs):
    assert len(measurements) == 2 * len(graphs) * 2 * 2
    key = measurement_key("simple", "rand-a", 32, GTX_1080TI.name)
    assert key in measurements
    assert all(v > 0 for v in measurements.values())


def test_capture_is_deterministic(measurements, graphs):
    again = capture([SimpleSpMM(), CRCSpMM()], graphs, [32, 64],
                    [GTX_1080TI, RTX_2080])
    assert again == measurements


def test_save_load_round_trip(tmp_path, measurements):
    path = tmp_path / "baseline.json"
    save_baseline(measurements, path)
    assert load_baseline(path) == measurements
    # idempotent writes: the file is byte-stable (diffable in git)
    before = path.read_bytes()
    save_baseline(measurements, path)
    assert path.read_bytes() == before


@pytest.mark.parametrize("payload", ["[1, 2]", '{"k": "not-a-number"}', '"flat"'])
def test_load_baseline_rejects_malformed(tmp_path, payload):
    path = tmp_path / "bad.json"
    path.write_text(payload)
    with pytest.raises(ValueError, match="malformed baseline"):
        load_baseline(path)


def test_compare_tolerance_edges():
    base = {"k": 1.0}
    # exactly at the tolerance boundary: not a drift (strict >).
    # 0.25 is binary-exact, so the ratio arithmetic is too.
    assert compare(base, {"k": 1.25}, tolerance=0.25) == []
    assert compare(base, {"k": 0.75}, tolerance=0.25) == []
    # just beyond, either direction: flagged
    assert len(compare(base, {"k": 1.2500001}, tolerance=0.25)) == 1
    faster = compare(base, {"k": 0.5}, tolerance=0.25)
    assert len(faster) == 1 and faster[0].drift == pytest.approx(-0.5)


def test_compare_unchanged_is_clean(measurements):
    assert compare(measurements, dict(measurements)) == []


def test_disappeared_key_is_infinite_drift():
    entries = compare({"gone": 1.0, "kept": 1.0}, {"kept": 1.0})
    assert len(entries) == 1
    e = entries[0]
    assert e.key == "gone" and e.current_s == 0.0
    assert e.drift == float("-inf")
    assert "gone" in e.describe()


def test_appeared_key_is_infinite_drift():
    entries = compare({"kept": 1.0}, {"kept": 1.0, "new": 2.0})
    assert len(entries) == 1
    e = entries[0]
    assert e.key == "new" and e.baseline_s == 0.0
    assert e.drift == float("inf")


def test_zero_baseline_entry_never_divides():
    assert RegressionEntry("k", 0.0, 1.0).drift == float("inf")
    assert RegressionEntry("k", 1.0, 0.0).drift == float("-inf")
    # a zero baseline inside compare is skipped, not crashed on
    assert compare({"k": 0.0}, {"k": 5.0}) == []


def test_document_measurements_matches_capture(graphs):
    """A BENCH document collapses to the same keys/seconds capture emits."""
    kernels = [SimpleSpMM(), GESpMM()]
    results = run_sweep(kernels, graphs, [64], [GTX_1080TI])
    doc = bench_document(results)
    flat = document_measurements(doc)
    captured = capture(kernels, graphs, [64], [GTX_1080TI])
    assert set(flat) == set(captured)
    for key, seconds in flat.items():
        assert seconds == pytest.approx(captured[key], rel=1e-12)
    # round-trips through JSON (the on-disk form the gate reads)
    assert document_measurements(json.loads(json.dumps(doc))) == flat


def test_document_measurements_rejects_non_document():
    with pytest.raises(ValueError, match="cells"):
        document_measurements({"schema": "nope"})

"""Merge-path SpMM model: partition laws, replay parity, and the headline.

Four layers of guarantees, roughly inside-out:

1. **Partition** (hypothesis): `merge_path_partition` tiles the nonzero
   range exactly once and balances path work to within one item, for
   arbitrary row-length distributions including empty rows and empty
   matrices.
2. **Functional** (hypothesis): `MergePathSpMM.run` is bit-identical to
   `reference_spmm_like` under every built-in semiring.
3. **Replay parity**: the batched trace (`repro.gpusim.batchtrace`) and
   the per-warp oracle loop agree stream-for-stream and bit-for-bit on
   output, and both match the closed-form counters — including the
   degenerate `items=1` schedule where every path item is its own
   segment and carry traffic is maximal.
4. **Headline**: on a hub-dominated matrix (`row_imbalance` skewed) the
   merge-path modeled time strictly beats row-split CRC at equal width
   and GPU, while on uniform matrices it stays within a small constant
   factor — and `TunedSpMM` reproduces that choice when "mergepath"
   joins its candidate set.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CRCSpMM,
    MergePathSpMM,
    TunedSpMM,
    builtin_semirings,
    merge_path_partition,
)
from repro.gpusim import GTX_1080TI, RTX_2080
from repro.sparse import csr_from_coo, power_law, reference_spmm_like, uniform_random
from repro.sparse.stats import graph_regime, row_imbalance

GPU = GTX_1080TI


# -- fixtures ---------------------------------------------------------------


def hub_matrix(m=2048, hub_nnz=8192, rest_nnz=8192, seed=7):
    """One hub row holding half the nonzeros: the row-split worst case.

    Large enough (2048 rows) that the launch fills the device and the
    comparison measures steady-state behavior, not launch overhead.
    """
    rng = np.random.default_rng(seed)
    rows = np.concatenate([
        np.zeros(hub_nnz, dtype=np.int64),
        rng.integers(1, m, size=rest_nnz),
    ])
    cols = np.concatenate([
        rng.integers(0, m, size=hub_nnz),
        rng.integers(0, m, size=rest_nnz),
    ])
    return csr_from_coo(rows, cols, shape=(m, m))


@st.composite
def small_csr(draw):
    """Small matrices (oracle-loop friendly) spanning uniform, skewed,
    and empty-row-heavy regimes."""
    kind = draw(st.sampled_from(["uniform", "powerlaw", "sparse-rows"]))
    seed = draw(st.integers(0, 2**16))
    if kind == "uniform":
        m = draw(st.integers(4, 40))
        return uniform_random(m=m, nnz=4 * m, seed=seed)
    if kind == "powerlaw":
        m = draw(st.integers(8, 40))
        return power_law(m=m, nnz=6 * m, exponent=1.8, seed=seed)
    m = draw(st.integers(8, 48))
    return uniform_random(m=m, nnz=m // 2, seed=seed)  # mostly empty rows


def assert_stats_equal(lhs, rhs, context=""):
    """Exact parity on every access stream the timing model consumes."""
    for stream in ("global_load", "global_store", "shared_load", "shared_store"):
        for f in ("instructions", "transactions", "requested_bytes"):
            a = getattr(getattr(lhs, stream), f)
            b = getattr(getattr(rhs, stream), f)
            assert a == b, f"{context} {stream}.{f}: {a} != {b}"
    assert lhs.warp_syncs == rhs.warp_syncs, context


# -- 1. partition laws ------------------------------------------------------


@given(
    rows=st.lists(st.integers(0, 12), min_size=0, max_size=64),
    items=st.integers(1, 48),
)
@settings(max_examples=200, deadline=None)
def test_partition_tiles_nonzeros_and_balances_work(rows, items):
    lengths = np.asarray(rows, dtype=np.int64)
    rowptr = np.concatenate([[0], np.cumsum(lengths)])
    part = merge_path_partition(rowptr, items)
    d, i, j = part.d, part.i, part.j
    total = int(rowptr[-1]) + lengths.size
    if total == 0:
        assert part.n_segments == 0
        return
    # Path boundaries: start at 0, end at T, strictly increasing (every
    # segment nonempty), sizes within one item of each other and <= items.
    assert d[0] == 0 and d[-1] == total
    sizes = np.diff(d)
    assert (sizes >= 1).all() and (sizes <= items).all()
    assert int(sizes.max()) - int(sizes.min()) <= 1
    # Two-dimensional split: i/j consistent with the key diagonal, and
    # the nonzero ranges [j_s, j_{s+1}) tile [0, nnz) exactly once.
    key = rowptr + np.arange(lengths.size + 1)
    assert (key[i] <= d).all()
    nxt = key[np.minimum(i + 1, lengths.size)]  # maximal row index
    assert ((i == lengths.size) | (nxt > d)).all()
    assert (i + j == d).all()
    assert j[0] == 0 and j[-1] == rowptr[-1]
    assert (np.diff(j) >= 0).all()


def test_partition_rejects_nonpositive_items():
    rowptr = np.array([0, 2, 5])
    with pytest.raises(ValueError):
        merge_path_partition(rowptr, 0)
    with pytest.raises(ValueError):
        MergePathSpMM(items=-3)


# -- 2. functional equivalence ----------------------------------------------


@given(small_csr(), st.integers(1, 40), st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_run_matches_reference_all_semirings(a, n, seed):
    rng = np.random.default_rng(seed)
    b = rng.random((a.ncols, n), dtype=np.float32)
    kernel = MergePathSpMM()
    for semiring in builtin_semirings().values():
        got = kernel.run(a, b, semiring)
        want = reference_spmm_like(a, b, semiring)
        assert np.array_equal(got, want), semiring.name


# -- 3. replay parity -------------------------------------------------------


@given(small_csr(), st.sampled_from([3, 8, 33, 40]),
       st.sampled_from([0, 1, 32, 48]))
@settings(max_examples=20, deadline=None)
def test_batched_trace_matches_perwarp_oracle(a, n, items):
    """The vectorized replay is a refactor of the warp loop, not a second
    model: identical stats streams, bit-identical output."""
    rng = np.random.default_rng(42)
    b = rng.random((a.ncols, n), dtype=np.float32)
    kernel = MergePathSpMM(items=items)
    c_fast, stats_fast = kernel.trace(a, b, GPU)
    c_slow, stats_slow = kernel.trace_loop(a, b, GPU)
    assert_stats_equal(stats_fast, stats_slow, f"items={items} n={n}")
    assert np.array_equal(c_fast, c_slow)


@given(small_csr(), st.sampled_from([8, 40]))
@settings(max_examples=20, deadline=None)
def test_trace_matches_analytic_counters(a, n):
    rng = np.random.default_rng(43)
    b = rng.random((a.ncols, n), dtype=np.float32)
    kernel = MergePathSpMM()
    _, traced = kernel.trace(a, b, GPU)
    analytic, _, _ = kernel.count(a, n, GPU)
    assert_stats_equal(traced, analytic, f"n={n}")


@pytest.mark.parametrize("gpu", [GTX_1080TI, RTX_2080], ids=lambda g: g.name)
def test_items_one_maximal_carries_stay_in_parity(gpu):
    """items=1 splits every multi-nonzero row across segments — the
    carry-RMW worst case — and must still agree across all three modes
    and with the reference output."""
    a = power_law(m=24, nnz=120, exponent=1.7, seed=11)
    rng = np.random.default_rng(11)
    b = rng.random((a.ncols, 40), dtype=np.float32)
    kernel = MergePathSpMM(items=1)
    c_fast, stats_fast = kernel.trace(a, b, gpu)
    c_slow, stats_slow = kernel.trace_loop(a, b, gpu)
    analytic, _, _ = kernel.count(a, 40, gpu)
    assert_stats_equal(stats_fast, stats_slow, "trace vs loop")
    assert_stats_equal(stats_fast, analytic, "trace vs count")
    assert np.array_equal(c_fast, c_slow)
    np.testing.assert_allclose(c_fast, reference_spmm_like(a, b), rtol=1e-4, atol=1e-4)
    # Sanity on the carry model itself: with the finest partition, C
    # carry loads must actually appear (split rows exist in this graph).
    assert analytic.traffic("C").sectors > 0


def test_general_semiring_trace_parity():
    """Non-plus-times semirings ride the same replay paths."""
    a = power_law(m=20, nnz=100, exponent=1.9, seed=3)
    rng = np.random.default_rng(3)
    b = rng.random((a.ncols, 33), dtype=np.float32)
    kernel = MergePathSpMM(items=48)
    for semiring in builtin_semirings().values():
        c_fast, stats_fast = kernel.trace(a, b, GPU, semiring)
        c_slow, stats_slow = kernel.trace_loop(a, b, GPU, semiring)
        assert_stats_equal(stats_fast, stats_slow, semiring.name)
        assert np.array_equal(c_fast, c_slow), semiring.name


# -- 4. the headline --------------------------------------------------------


def test_mergepath_beats_rowsplit_on_skewed_matrix():
    """The reason this kernel exists: bounded drain tail on hub rows.

    On a matrix whose row-length distribution `row_imbalance` flags as
    skewed, merge-path's modeled time is *strictly* lower than CRC
    row-split at equal width and GPU."""
    a = hub_matrix()
    assert row_imbalance(a).is_skewed()
    assert graph_regime(a).endswith("/skewed")
    for n in (64, 128):
        t_mp = MergePathSpMM().estimate(a, n, GPU).time_s
        t_crc = CRCSpMM().estimate(a, n, GPU).time_s
        assert t_mp < t_crc, f"n={n}: mergepath {t_mp} !< crc {t_crc}"


def test_mergepath_within_constant_factor_on_uniform():
    """The price of balance is bounded: on uniform matrices (searches,
    carries and the lower in-flight parallelism all charged) merge-path
    stays within a small constant factor of row-split."""
    a = uniform_random(m=2048, nnz=16384, seed=3)
    assert not row_imbalance(a).is_skewed()
    for n in (64, 128):
        t_mp = MergePathSpMM().estimate(a, n, GPU).time_s
        t_crc = CRCSpMM().estimate(a, n, GPU).time_s
        assert t_mp < 1.5 * t_crc, f"n={n}: mergepath {t_mp} vs crc {t_crc}"


def test_tuner_selects_mergepath_on_skew_only():
    """With "mergepath" in the candidate set the autotuner routes the
    hub matrix to merge-path and keeps uniform matrices on CRC/CWM."""
    candidates = (1, 2, 4, 8, "mergepath")
    tuned = TunedSpMM(candidates=candidates)
    assert tuned._select(hub_matrix(), 128, GPU).name == "mergepath"
    uniform_pick = tuned._select(uniform_random(m=2048, nnz=16384, seed=3), 128, GPU)
    assert uniform_pick.name.startswith(("crc", "crc+cwm"))


def test_cache_keys_distinguish_candidates_and_items():
    """Two TunedSpMM with different candidate sets (and two merge-path
    kernels with different segment sizes) must never share estimate-memo
    or DiskCache entries."""
    assert TunedSpMM().cache_key() != TunedSpMM(
        candidates=(1, 2, 4, 8, "mergepath")
    ).cache_key()
    assert MergePathSpMM().cache_key() != MergePathSpMM(items=64).cache_key()
    assert MergePathSpMM(items=64).cache_key() == MergePathSpMM(items=64).cache_key()


# -- row_imbalance boundary cases -------------------------------------------


def test_row_imbalance_boundaries():
    empty = csr_from_coo([], [], shape=(0, 0))
    ri = row_imbalance(empty)
    assert (ri.gini, ri.max_over_mean) == (0.0, 0.0)
    assert not ri.is_skewed()

    all_zero_rows = csr_from_coo([], [], shape=(5, 5))
    ri = row_imbalance(all_zero_rows)
    assert (ri.gini, ri.max_over_mean) == (0.0, 0.0)

    single = csr_from_coo([0, 0, 0], [0, 1, 2], shape=(1, 4))
    ri = row_imbalance(single)
    assert ri.gini == 0.0 and ri.max_over_mean == 1.0

    equal = csr_from_coo(
        np.repeat(np.arange(4), 2), np.tile([0, 1], 4), shape=(4, 4)
    )
    ri = row_imbalance(equal)
    assert ri.gini == 0.0 and ri.max_over_mean == 1.0
    assert graph_regime(equal) == "short-rows/uniform"

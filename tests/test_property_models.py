"""Hypothesis property tests on the kernel and timing models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CRCSpMM, CWMSpMM, GESpMM, SimpleSpMM
from repro.core.sddmm import edge_softmax
from repro.gpusim import GTX_1080TI, RTX_2080, spmm_footprint
from repro.sparse import neighbor_sample, uniform_random

GPUS = [GTX_1080TI, RTX_2080]


@st.composite
def graph_and_n(draw):
    m = draw(st.integers(50, 2000))
    density = draw(st.integers(1, 16))
    n = draw(st.sampled_from([8, 32, 33, 64, 128, 200]))
    seed = draw(st.integers(0, 2**16))
    return uniform_random(m=m, nnz=m * density, seed=seed), n


@given(st.integers(4000, 20_000), st.integers(4, 16),
       st.sampled_from([32, 64, 128]), st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_time_monotone_in_width(m, density, n, seed):
    """Once the launch fills the device, wider outputs can never be
    faster for a fixed kernel.  (Grid-starved launches legitimately break
    this: more columns buy more parallelism — the Fig. 3 ramp.)"""
    a = uniform_random(m=m, nnz=m * density, seed=seed)
    crc = CRCSpMM()
    assert crc.estimate(a, 4 * n, GTX_1080TI).time_s >= crc.estimate(a, n, GTX_1080TI).time_s
    ge = GESpMM()
    assert ge.estimate(a, 4 * n, GTX_1080TI).time_s >= 0.93 * ge.estimate(a, n, GTX_1080TI).time_s


@given(graph_and_n())
@settings(max_examples=15, deadline=None)
def test_transactions_monotone_in_width(gn):
    a, n = gn
    s1, _, _ = CRCSpMM().count(a, n, GTX_1080TI)
    s2, _, _ = CRCSpMM().count(a, n + 32, GTX_1080TI)
    assert s2.global_load.transactions >= s1.global_load.transactions
    assert s2.global_store.transactions >= s1.global_store.transactions


@given(graph_and_n(), st.sampled_from([2, 4, 8]))
@settings(max_examples=15, deadline=None)
def test_cwm_divides_sparse_traffic(gn, cf):
    """CWM's defining property: sparse-array traffic scales with the
    number of column-segment warps, dense traffic does not change."""
    a, _ = gn
    n = 32 * cf * 4  # guarantee full warps at both CFs
    crc, _, _ = CRCSpMM().count(a, n, GTX_1080TI)
    cwm, _, _ = CWMSpMM(cf).count(a, n, GTX_1080TI)
    assert crc.traffic("B").sectors == cwm.traffic("B").sectors
    ratio = crc.traffic("colind").sectors / max(cwm.traffic("colind").sectors, 1)
    assert ratio == pytest.approx(cf, rel=0.01)


@given(graph_and_n())
@settings(max_examples=15, deadline=None)
def test_crc_never_more_load_instructions(gn):
    a, n = gn
    s, _, _ = SimpleSpMM().count(a, n, GTX_1080TI)
    c, _, _ = CRCSpMM().count(a, n, GTX_1080TI)
    assert c.global_load.instructions <= s.global_load.instructions
    assert c.global_load.transactions <= s.global_load.transactions


@given(graph_and_n())
@settings(max_examples=15, deadline=None)
def test_efficiency_bounded(gn):
    a, n = gn
    for kernel in (SimpleSpMM(), CRCSpMM(), CWMSpMM(2)):
        s, _, _ = kernel.count(a, n, GTX_1080TI)
        assert 0.0 < s.global_load.efficiency <= 1.0
        assert s.global_load.l1_filtered_transactions <= s.global_load.transactions


@given(graph_and_n())
@settings(max_examples=10, deadline=None)
def test_estimates_finite_on_both_gpus(gn):
    a, n = gn
    for gpu in GPUS:
        for kernel in (SimpleSpMM(), GESpMM()):
            t = kernel.estimate(a, n, gpu)
            assert np.isfinite(t.time_s) and t.time_s > 0
            assert sum(t.breakdown.values()) >= t.time_s * 0.5


@given(st.integers(10, 10_000), st.integers(1, 64), st.integers(1, 512))
@settings(max_examples=30, deadline=None)
def test_footprint_monotone(m, density, n):
    a_small = type("S", (), {"nrows": m, "ncols": m, "nnz": m * density})()
    a_big = type("S", (), {"nrows": 2 * m, "ncols": 2 * m, "nnz": 2 * m * density})()
    assert spmm_footprint(a_big, n).total > spmm_footprint(a_small, n).total
    assert spmm_footprint(a_small, 2 * n).total > spmm_footprint(a_small, n).total


@given(st.integers(20, 300), st.integers(1, 10), st.integers(1, 12), st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_neighbor_sample_invariants(m, density, fanout, seed):
    g = uniform_random(m=m, nnz=m * density, seed=seed)
    rng = np.random.default_rng(seed)
    seeds = rng.choice(m, size=min(16, m), replace=False)
    batch = neighbor_sample(g, seeds, fanout, rng)
    # Row degrees bounded by min(fanout, original degree).
    orig = g.row_lengths()
    for i, s in enumerate(seeds):
        got = int(batch.block.row_lengths()[i])
        assert got <= min(fanout, int(orig[s]))
    # All referenced nodes are real and the mapping is injective.
    assert np.unique(batch.nodes).size == batch.nodes.size
    assert batch.nodes.max(initial=0) < g.ncols
    assert batch.block.shape == (seeds.size, batch.nodes.size)


@given(st.integers(5, 200), st.integers(1, 12), st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_edge_softmax_is_distribution(m, density, seed):
    g = uniform_random(m=m, nnz=m * density, seed=seed, weighted=True)
    sm = edge_softmax(g)
    rows = np.repeat(np.arange(m), g.row_lengths())
    sums = np.zeros(m)
    np.add.at(sums, rows, sm.values.astype(np.float64))
    occupied = g.row_lengths() > 0
    np.testing.assert_allclose(sums[occupied], 1.0, rtol=1e-4)
    assert (sm.values >= 0).all()

"""Tests for the benchmark harness utilities and the nvprof-style profiler."""

import math

import numpy as np
import pytest

from repro.bench import (
    bar_chart,
    comparison,
    format_series,
    format_table,
    geomean,
    render_claims,
    run_sweep,
    speedup_series,
)
from repro.core import CRCSpMM, SimpleSpMM
from repro.gnn import OpProfile, SimDevice
from repro.gpusim import GTX_1080TI, format_metric_table, profile_kernel
from repro.sparse import uniform_random


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([5]) == pytest.approx(5.0)

    def test_ignores_nonpositive(self):
        assert geomean([4, 0, -2, 4]) == pytest.approx(4.0)

    def test_empty_is_nan(self):
        assert math.isnan(geomean([]))


class TestSweep:
    @pytest.fixture(scope="class")
    def results(self):
        graphs = {"g1": uniform_random(200, 2000, seed=1), "g2": uniform_random(300, 1500, seed=2)}
        return run_sweep([SimpleSpMM(), CRCSpMM()], graphs, [64, 128], [GTX_1080TI])

    def test_cartesian_coverage(self, results):
        assert len(results) == 2 * 2 * 2
        assert {r.kernel for r in results} == {"simple", "crc"}
        assert {r.n for r in results} == {64, 128}

    def test_fields_sane(self, results):
        for r in results:
            assert r.time_s > 0 and r.gflops > 0
            assert r.gpu == GTX_1080TI.name

    def test_speedup_series(self, results):
        s = speedup_series(results, "crc", "simple", GTX_1080TI.name, 128)
        assert set(s) == {"g1", "g2"}
        assert all(v > 0 for v in s.values())


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [("x", 1), ("yy", 22)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        out = format_series("S", {"k": 1.5})
        assert "S" in out and "1.500" in out

    def test_bar_chart_scales(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        a_bar = out.splitlines()[0].count("#")
        b_bar = out.splitlines()[1].count("#")
        assert b_bar == 10 and a_bar == 5

    def test_bar_chart_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_render_claims(self):
        txt = render_claims(
            [comparison("x", "1.0", "1.1", True), comparison("y", "2.0", "0.5", False, "note")],
            title="C",
        )
        assert "OK" in txt and "DEVIATES" in txt and "(note)" in txt


class TestProfiler:
    def test_profile_kernel_fields(self):
        a = uniform_random(500, 5000, seed=0)
        rep = profile_kernel(CRCSpMM(), a, 64, GTX_1080TI)
        assert rep.gld_transactions > 0
        assert 0 < rep.gld_efficiency <= 1
        assert rep.gld_throughput > 0
        assert rep.time_s > 0 and rep.gflops > 0
        assert 0 < rep.achieved_occupancy <= 1

    def test_metric_table_contains_rows(self):
        a = uniform_random(500, 5000, seed=0)
        reps = [profile_kernel(k, a, 64, GTX_1080TI) for k in (SimpleSpMM(), CRCSpMM())]
        txt = format_metric_table(reps)
        assert "simple" in txt and "crc" in txt and "GLT" in txt

    def test_metric_table_empty(self):
        assert format_metric_table([]) == "(no data)"


class TestSimDevice:
    def test_ledger_accumulates(self):
        dev = SimDevice(GTX_1080TI)
        dev.record("SpMM", 1e-3)
        dev.record("SpMM", 2e-3)
        dev.record("GEMM", 1e-3)
        prof = dev.profile()
        assert prof.time("SpMM") == pytest.approx(3e-3)
        assert prof.calls["SpMM"] == 2
        assert prof.share("SpMM") == pytest.approx(0.75)
        assert prof.total_time == pytest.approx(4e-3)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SimDevice(GTX_1080TI).record("x", -1)

    def test_reset(self):
        dev = SimDevice(GTX_1080TI)
        dev.record("x", 1.0)
        dev.reset()
        assert dev.profile().total_time == 0

    def test_format_and_rows_sorted(self):
        prof = OpProfile({"a": 1.0, "b": 3.0}, {"a": 1, "b": 2})
        rows = prof.rows()
        assert rows[0][0] == "b"
        txt = prof.format()
        assert "TOTAL" in txt and "b" in txt

    def test_empty_profile_share(self):
        assert OpProfile().share("SpMM") == 0.0

    def test_gemm_time_monotone(self):
        dev = SimDevice(GTX_1080TI)
        assert dev.gemm_time(1000, 1000, 1000) > dev.gemm_time(100, 100, 100)
        assert dev.elementwise_time(10_000) > dev.elementwise_time(100)

"""Benchmark datasets: citation-graph twins and the SNAP-like suite."""

from repro.datasets.citation import (
    CITATION_STATS,
    CitationDataset,
    load_citation,
    load_citeseer,
    load_cora,
    load_pubmed,
)
from repro.datasets.snap import (
    SNAP_CATALOG,
    SnapEntry,
    catalog_names,
    load_graph,
    load_suite,
)

__all__ = [
    "CitationDataset",
    "CITATION_STATS",
    "load_citation",
    "load_cora",
    "load_citeseer",
    "load_pubmed",
    "SnapEntry",
    "SNAP_CATALOG",
    "catalog_names",
    "load_graph",
    "load_suite",
]

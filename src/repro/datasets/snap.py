"""The 64-matrix SNAP-like benchmark suite.

The paper's kernel sweep (Figs 8/9/11, Tables VII/VIII) uses the 64 valid
graphs of the SNAP group in the SuiteSparse Matrix Collection (sizes M
from 1005 to 4,847,571, nnz/row from 1.58 to 32.53, FriendSter/Twitter
omitted for memory).  Offline we build *name- and structure-matched
synthetic twins*: each catalog entry records the real matrix's dimensions
and its structural family, and the matching generator reproduces the
degree skew and column locality that family exhibits —

* ``social``/``web``/``comm``  -> power-law (heavy-tailed rows),
* ``road``                     -> banded (short uniform rows, high locality),
* ``p2p``                      -> uniform random,
* ``collab``/``citation``/``product`` -> RMAT-like clustered structure.

``load_suite(max_nnz=...)`` scales each twin down proportionally (default
cap 300k nonzeros) so the full 64-graph x 3-N x 2-GPU sweep runs in
seconds; pass ``max_nnz=None`` for paper-scale sizes.  Scaling preserves
nnz/row and the family structure, which is what the kernels and the
memory model respond to.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sparse.csr import CSRMatrix
from repro.sparse.generators import banded_random, power_law, rmat, uniform_random

__all__ = ["SnapEntry", "SNAP_CATALOG", "load_graph", "load_suite", "catalog_names"]


@dataclass(frozen=True)
class SnapEntry:
    """One SuiteSparse SNAP-group matrix: published size + family."""

    name: str
    m: int
    nnz: int
    family: str


# SuiteSparse SNAP group (FriendSter and Twitter omitted, as in the
# paper).  Sizes follow the collection's published matrix statistics.
SNAP_CATALOG: List[SnapEntry] = [
    SnapEntry("amazon0302", 262111, 1234877, "product"),
    SnapEntry("amazon0312", 400727, 3200440, "product"),
    SnapEntry("amazon0505", 410236, 3356824, "product"),
    SnapEntry("amazon0601", 403394, 3387388, "product"),
    SnapEntry("as-735", 7716, 26467, "p2p"),
    SnapEntry("as-Skitter", 1696415, 22190596, "web"),
    SnapEntry("as-caida", 31379, 106762, "p2p"),
    SnapEntry("ca-AstroPh", 18772, 396160, "collab"),
    SnapEntry("ca-CondMat", 23133, 186936, "collab"),
    SnapEntry("ca-GrQc", 5242, 28980, "collab"),
    SnapEntry("ca-HepPh", 12008, 237010, "collab"),
    SnapEntry("ca-HepTh", 9877, 51971, "collab"),
    SnapEntry("cit-HepPh", 34546, 421578, "citation"),
    SnapEntry("cit-HepTh", 27770, 352807, "citation"),
    SnapEntry("cit-Patents", 3774768, 16518948, "citation"),
    SnapEntry("com-Amazon", 334863, 1851744, "product"),
    SnapEntry("com-DBLP", 317080, 2099732, "collab"),
    SnapEntry("com-LiveJournal", 3997962, 69362378, "social"),
    SnapEntry("com-Youtube", 1134890, 5975248, "social"),
    SnapEntry("email-Enron", 36692, 367662, "comm"),
    SnapEntry("email-EuAll", 265214, 420045, "comm"),
    SnapEntry("email-Eu-core", 1005, 25571, "comm"),
    SnapEntry("loc-Brightkite", 58228, 428156, "social"),
    SnapEntry("loc-Gowalla", 196591, 1900654, "social"),
    SnapEntry("oregon1_010526", 11174, 46818, "p2p"),
    SnapEntry("oregon2_010526", 11461, 65460, "p2p"),
    SnapEntry("p2p-Gnutella04", 10879, 39994, "p2p"),
    SnapEntry("p2p-Gnutella05", 8846, 31839, "p2p"),
    SnapEntry("p2p-Gnutella06", 8717, 31525, "p2p"),
    SnapEntry("p2p-Gnutella08", 6301, 20777, "p2p"),
    SnapEntry("p2p-Gnutella09", 8114, 26013, "p2p"),
    SnapEntry("p2p-Gnutella24", 26518, 65369, "p2p"),
    SnapEntry("p2p-Gnutella25", 22687, 54705, "p2p"),
    SnapEntry("p2p-Gnutella30", 36682, 88328, "p2p"),
    SnapEntry("p2p-Gnutella31", 62586, 147892, "p2p"),
    SnapEntry("roadNet-CA", 1971281, 5533214, "road"),
    SnapEntry("roadNet-PA", 1088092, 3083796, "road"),
    SnapEntry("roadNet-TX", 1379917, 3843320, "road"),
    SnapEntry("soc-Epinions1", 75888, 508837, "social"),
    SnapEntry("soc-LiveJournal1", 4847571, 68993773, "social"),
    SnapEntry("soc-Pokec", 1632803, 30622564, "social"),
    SnapEntry("soc-Slashdot0811", 77360, 905468, "social"),
    SnapEntry("soc-Slashdot0902", 82168, 948464, "social"),
    SnapEntry("soc-sign-Slashdot081106", 77350, 516575, "social"),
    SnapEntry("soc-sign-Slashdot090216", 81867, 545671, "social"),
    SnapEntry("soc-sign-Slashdot090221", 82140, 549202, "social"),
    SnapEntry("soc-sign-epinions", 131828, 841372, "social"),
    SnapEntry("sx-askubuntu", 159316, 964437, "comm"),
    SnapEntry("sx-mathoverflow", 24818, 506550, "comm"),
    SnapEntry("sx-stackoverflow", 2601977, 63497050, "comm"),
    SnapEntry("sx-superuser", 194085, 1443339, "comm"),
    SnapEntry("twitter_combined", 81306, 2420766, "social"),
    SnapEntry("web-BerkStan", 685230, 7600595, "web"),
    SnapEntry("web-Google", 916428, 5105039, "web"),
    SnapEntry("web-NotreDame", 325729, 1497134, "web"),
    SnapEntry("web-Stanford", 281903, 2312497, "web"),
    SnapEntry("wiki-RfA", 11381, 189004, "social"),
    SnapEntry("wiki-Talk", 2394385, 5021410, "comm"),
    SnapEntry("wiki-Vote", 8297, 103689, "social"),
    SnapEntry("wiki-topcats", 1791489, 28511807, "web"),
    SnapEntry("cit-HepPh-dates", 30567, 347414, "citation"),
    SnapEntry("email-Eu-core-temporal", 1005, 24929, "comm"),
    SnapEntry("sx-askubuntu-a2q", 159316, 262106, "comm"),
    SnapEntry("higgs-twitter", 456626, 14855842, "social"),
]

assert len(SNAP_CATALOG) == 64, "the paper's suite has exactly 64 matrices"

_cache: Dict[Tuple[str, Optional[int], int], CSRMatrix] = {}


def catalog_names() -> List[str]:
    """Matrix names in alphabetical order — the paper's ``matrix_id``
    axis in Figs 8/9/11 is this ordering."""
    return sorted(e.name for e in SNAP_CATALOG)


def _entry(name: str) -> SnapEntry:
    for e in SNAP_CATALOG:
        if e.name == name:
            return e
    raise KeyError(f"unknown SNAP matrix {name!r}")


def load_graph(name: str, max_nnz: Optional[int] = 300_000, seed: int = 11) -> CSRMatrix:
    """Build (and memoize) the synthetic twin of one catalog matrix,
    scaled so that nnz <= ``max_nnz`` while preserving nnz/row."""
    key = (name, max_nnz, seed)
    if key in _cache:
        return _cache[key]
    e = _entry(name)
    scale = 1.0
    if max_nnz is not None and e.nnz > max_nnz:
        scale = max_nnz / e.nnz
    m = max(int(e.m * scale), 64)
    nnz = max(int(e.nnz * scale), m)
    # crc32, not hash(): str hashing is salted per process, which would
    # regenerate a *different* twin (and different simulated times) on
    # every run — breaking byte-stable benchmark artifacts.
    gseed = seed + (zlib.crc32(name.encode()) % 100003)
    if e.family in ("social", "web", "comm"):
        g = power_law(m, nnz, exponent=2.1, seed=gseed)
    elif e.family == "road":
        g = banded_random(m, nnz, bandwidth=max(m // 500, 4), seed=gseed)
    elif e.family == "p2p":
        g = uniform_random(m, nnz, seed=gseed)
    else:  # collab / citation / product: clustered, RMAT-like
        scale_bits = max(int(m - 1).bit_length(), 6)
        ef = max(nnz // (1 << scale_bits), 1)
        g = rmat(scale_bits, edge_factor=ef, seed=gseed)
    _cache[key] = g
    return g


def load_suite(
    max_nnz: Optional[int] = 300_000, seed: int = 11, names: Optional[Iterable[str]] = None
) -> Dict[str, CSRMatrix]:
    """Load the whole suite (or a named subset), alphabetically ordered."""
    selected = list(names) if names is not None else catalog_names()
    return {name: load_graph(name, max_nnz, seed) for name in selected}

"""Synthetic twins of the citation graphs (Cora, Citeseer, Pubmed).

The paper's GNN experiments (Tables I/II/IX, Figs 10/12/13/14) run on the
three Planetoid citation graphs (paper Table IV).  Offline we generate
structure-matched twins: exact vertex/edge/class counts, power-law-ish
degree mixing, and community structure aligned with the labels so that a
GCN actually separates the classes (tests assert learnability).  Features
are sparse bag-of-words-like vectors whose support is class-correlated
with noise.

What the kernel benchmarks respond to — M, nnz, degree distribution — is
matched to the published statistics; semantic content of papers obviously
is not.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix, csr_from_coo

__all__ = ["CitationDataset", "CITATION_STATS", "load_citation", "load_cora", "load_citeseer", "load_pubmed"]

#: name -> (vertices, undirected edges, classes, feature dim) — paper Table IV
CITATION_STATS: Dict[str, Tuple[int, int, int, int]] = {
    "cora": (2708, 5429, 7, 1433),
    "citeseer": (3327, 4732, 6, 3703),
    "pubmed": (19717, 44338, 3, 500),
}


@dataclass(frozen=True)
class CitationDataset:
    """A node-classification dataset in the Planetoid layout."""

    name: str
    graph: CSRMatrix  # directed adjacency (both directions of each edge)
    features: np.ndarray  # float32[M, F]
    labels: np.ndarray  # int64[M]
    train_mask: np.ndarray  # bool[M]
    val_mask: np.ndarray
    test_mask: np.ndarray
    n_classes: int

    @property
    def n_nodes(self) -> int:
        return self.graph.nrows

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    def normalized_adjacency(self) -> CSRMatrix:
        """GCN propagation matrix: sym-normalized adjacency with self
        loops, the operand of every SpMM in training."""
        return self.graph.add_self_loops().sym_normalized()


_cache: Dict[str, CitationDataset] = {}


def load_citation(name: str, seed: int = 7) -> CitationDataset:
    """Build (and memoize) the synthetic twin of ``name``."""
    key = f"{name}:{seed}"
    if key in _cache:
        return _cache[key]
    if name not in CITATION_STATS:
        raise KeyError(f"unknown citation graph {name!r}; choose from {sorted(CITATION_STATS)}")
    m, n_edges, n_classes, feat_dim = CITATION_STATS[name]
    # crc32, not hash(): str hashing is salted per process; the twin must
    # be the same graph in every run.
    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 65536)

    labels = rng.integers(0, n_classes, size=m)

    # Community-structured edges: ~80% intra-class, preferential-ish
    # endpoint choice for a heavy-ish degree tail.
    src = rng.integers(0, m, size=n_edges)
    intra = rng.random(n_edges) < 0.8
    dst = np.empty(n_edges, dtype=np.int64)
    # Intra-class edges: pick a random member of the same class.
    order = np.argsort(labels, kind="stable")
    class_starts = np.searchsorted(labels[order], np.arange(n_classes))
    class_ends = np.searchsorted(labels[order], np.arange(n_classes), side="right")
    counts = class_ends - class_starts
    lab_src = labels[src]
    offs = (rng.random(n_edges) * counts[lab_src]).astype(np.int64)
    dst_intra = order[class_starts[lab_src] + np.minimum(offs, counts[lab_src] - 1)]
    dst_inter = rng.integers(0, m, size=n_edges)
    dst = np.where(intra, dst_intra, dst_inter)
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % m

    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    graph = csr_from_coo(rows, cols, np.ones(rows.size, dtype=np.float32),
                         shape=(m, m), sum_duplicates=True)
    # Binarize: duplicate edges collapse to weight 1 like a real adjacency.
    graph = graph.with_values(np.ones(graph.nnz, dtype=np.float32))

    # Class-correlated sparse features: each class owns a slice of the
    # vocabulary; a document samples mostly from its class slice.
    feats = np.zeros((m, feat_dim), dtype=np.float32)
    words_per_doc = max(feat_dim // 50, 8)
    slice_w = feat_dim // n_classes
    for c in range(n_classes):
        members = np.nonzero(labels == c)[0]
        own = rng.integers(c * slice_w, (c + 1) * slice_w, size=(members.size, words_per_doc))
        anywhere = rng.integers(0, feat_dim, size=(members.size, words_per_doc // 2))
        idx = np.concatenate([own, anywhere], axis=1)
        feats[members[:, None], idx] = 1.0

    # Planetoid split: 20 train nodes per class, 500 val, 1000 test.
    train_mask = np.zeros(m, dtype=bool)
    for c in range(n_classes):
        members = np.nonzero(labels == c)[0]
        train_mask[rng.choice(members, size=min(20, members.size), replace=False)] = True
    rest = np.nonzero(~train_mask)[0]
    rest = rng.permutation(rest)
    val_mask = np.zeros(m, dtype=bool)
    test_mask = np.zeros(m, dtype=bool)
    val_mask[rest[:500]] = True
    test_mask[rest[500:1500]] = True

    ds = CitationDataset(
        name=name,
        graph=graph,
        features=feats,
        labels=labels.astype(np.int64),
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        n_classes=n_classes,
    )
    _cache[key] = ds
    return ds


def load_cora(seed: int = 7) -> CitationDataset:
    return load_citation("cora", seed)


def load_citeseer(seed: int = 7) -> CitationDataset:
    return load_citation("citeseer", seed)


def load_pubmed(seed: int = 7) -> CitationDataset:
    return load_citation("pubmed", seed)

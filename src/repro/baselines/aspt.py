"""ASpT (Adaptive Sparse Tiling) SpMM model — the preprocess baseline.

ASpT (Hong et al., PPoPP'19) is, per the paper, "the best SpMM
implementation publicly available" (Section V-E).  It *preprocesses* the
CSR matrix: columns are reordered within row panels so columns with many
nonzeros form locally-dense tiles; the kernel then processes dense tiles
with shared-memory reuse of the **dense** matrix (orthogonal to GE-SpMM's
sparse-side reuse) and the sparse remainder CSR-style.

The paper's comparison (Table VIII) has two rows per device: kernel-only
(GE-SpMM reaches 0.85-1.00x of ASpT — slightly behind) and one-preprocess
+one-run (GE-SpMM 1.43-2.06x ahead), because preprocessing costs
0.01x-64.5x of one SpMM (avg 0.34-0.47x) and single-shot GNN inference or
sampled training cannot amortize it.  Both effects are modelled:
``estimate`` prices the kernel alone; :meth:`preprocess_time` prices the
format construction.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core import _counting as cnt
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix
from repro.sparse.formats import ASpTFormat, to_aspt
from repro.sparse.ops import reference_spmm_like

__all__ = ["ASpTSpMM"]

_WARPS_PER_BLOCK = 4
_THREADS_PER_BLOCK = 128
_TILE = 32


class ASpTSpMM(SpMMKernel):
    """Adaptive-sparse-tiling SpMM with explicit preprocess accounting."""

    name = "ASpT"
    supports_general_semiring = False
    requires_preprocess = True

    regs_per_thread = 40
    #: two-level tiling yields deeply unrolled, independent load streams.
    mlp = 3.0
    #: fraction of a dense tile's B traffic saved by shared-memory reuse.
    dense_tile_saving = 0.5

    def __init__(self) -> None:
        super().__init__()
        self._formats: Dict[int, ASpTFormat] = {}

    def preprocess(self, a: CSRMatrix) -> ASpTFormat:
        """Build (and memoize) the tiled format for ``a``."""
        fmt = self._formats.get(id(a))
        if fmt is None:
            fmt = to_aspt(a)
            self._formats[id(a)] = fmt
        return fmt

    def preprocess_time(self, a: CSRMatrix, gpu: GPUSpec) -> float:
        """Simulated preprocessing time: three bandwidth-bound passes over
        the nonzeros (histogram, reorder gather, scatter) plus panel
        bookkeeping, in three kernel launches."""
        fmt = self.preprocess(a)
        # Histogram, segmented sort, gather/scatter reorder: effectively
        # four read+write passes at scattered-access efficiency.
        bytes_moved = fmt.preprocess_elements * 8 * 2
        return bytes_moved / (0.12 * gpu.dram_bandwidth) + 3 * gpu.launch_overhead_s

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        self.check_semiring(semiring)
        # The column reorder permutes the reduction order only; results are
        # identical up to float associativity, so delegate to the oracle.
        return reference_spmm_like(a, b, semiring)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        fmt = self.preprocess(a)
        stats = KernelStats()
        wpr = cnt.warps_per_row(n, 1)
        m, nnz = a.nrows, a.nnz

        # Dense traffic: tiles classified dense reuse B rows from shared
        # memory, saving `dense_tile_saving` of their stream.
        b_loads = cnt.count_b_loads(a, n)
        scale = 1.0 - self.dense_tile_saving * fmt.dense_fraction
        b_insts = int(round(b_loads.instructions * scale))
        b_sectors = int(round(b_loads.sectors * scale))
        b_req = int(round(b_loads.requested_bytes * scale))
        stats.global_load.instructions += b_insts
        stats.global_load.transactions += b_sectors
        stats.global_load.requested_bytes += b_req
        stats.global_load.l1_filtered_transactions += b_sectors
        # The reused share moves through shared memory instead.
        reused = b_loads.instructions - b_insts
        stats.shared_load.instructions += reused
        stats.shared_load.transactions += reused
        stats.shared_load.requested_bytes += b_loads.requested_bytes - b_req
        stats.block_syncs += (fmt.base.nrows // max(fmt.panel_height, 1)) * wpr

        tiles = cnt.count_tile_loads(a, _TILE)
        stats.global_load.instructions += 2 * wpr * tiles.instructions
        stats.global_load.transactions += 2 * wpr * tiles.sectors
        stats.global_load.requested_bytes += 2 * wpr * tiles.requested_bytes
        stats.global_load.l1_filtered_transactions += 2 * wpr * tiles.sectors

        rp_insts = 2 * m * wpr
        stats.global_load.instructions += rp_insts
        stats.global_load.transactions += rp_insts
        stats.global_load.requested_bytes += 4 * rp_insts
        stats.global_load.l1_filtered_transactions += max(rp_insts // 8, 1) if m else 0

        c_stores = cnt.count_c_stores(a, n)
        stats.global_store.instructions += c_stores.instructions
        stats.global_store.transactions += c_stores.sectors
        stats.global_store.requested_bytes += c_stores.requested_bytes

        tb = stats.traffic("B")
        tb.sectors = b_sectors
        tb.unique_bytes = cnt.unique_b_columns(a) * n * 4
        tb.reuse_is_local = False
        tr = stats.traffic("colind")
        tr.sectors = wpr * tiles.sectors
        tr.unique_bytes = 4 * nnz
        tr.reuse_is_local = True
        tv = stats.traffic("values")
        tv.sectors = wpr * tiles.sectors
        tv.unique_bytes = 4 * nnz
        tv.reuse_is_local = True

        stats.flops = 2 * nnz * n
        stats.alu_instructions = 5 * nnz * wpr + 14 * m * wpr

        tasks = m * wpr
        launch = LaunchConfig(
            blocks=(tasks + _WARPS_PER_BLOCK - 1) // _WARPS_PER_BLOCK if tasks else 0,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=8 * 1024,  # staged dense tiles
        )
        return stats, launch, ExecHints(mlp=self.mlp)

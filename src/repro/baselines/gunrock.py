"""GunRock ``advance``-based SpMM model (the graph-engine baseline).

GunRock is a frontier-centric graph processing engine; the paper builds
SpMM on its ``advance`` primitive (Section V-D).  GunRock offers *no
feature-dimension parallelism* — a vertex's value is an indivisible
scalar in the traditional graph algorithms it targets — so the SpMM
program assigns edges to threads and every thread walks the whole
feature vector serially:

* dense loads are fully uncoalesced: lanes of a warp process different
  edges, so each ``B[k, j]`` load touches 32 distinct sectors per warp
  (4 useful bytes per 32-byte transaction);
* output updates need atomics, since many edges share a destination row;
* per-edge frontier bookkeeping adds instruction overhead.

The paper reports GE-SpMM 18.27x faster on average — the argument that
GNN workloads need new primitives, not SpMV-era ones.
"""

from __future__ import annotations

import numpy as np

from repro.core import _counting as cnt
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import reference_spmm_like

__all__ = ["GunrockAdvanceSpMM"]

_THREADS_PER_BLOCK = 256


class GunrockAdvanceSpMM(SpMMKernel):
    """Edge-parallel SpMM written with GunRock's advance primitive."""

    name = "GunRock advance"
    # Atomic reduction restricts the operator to atomically-implementable
    # monoids; we model the standard sum used in the paper's comparison.
    supports_general_semiring = False

    regs_per_thread = 40
    #: the serial feature loop keeps ~1-2 scattered requests in flight.
    mlp = 1.5
    efficiency = 0.8

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        self.check_semiring(semiring)
        return reference_spmm_like(a, b, semiring)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        stats = KernelStats()
        m, nnz = a.nrows, a.nnz
        warp_steps = ((nnz + 31) // 32) * n  # warp-level feature iterations

        # Edge metadata (src, dst, weight): coalesced, once per edge.
        meta = cnt.count_tile_loads(a, 32)
        stats.global_load.instructions += 3 * meta.instructions
        stats.global_load.transactions += 3 * meta.sectors
        stats.global_load.requested_bytes += 3 * meta.requested_bytes
        stats.global_load.l1_filtered_transactions += 3 * meta.sectors

        # Dense loads: one scattered warp load per feature step — 32
        # distinct sectors, 128 useful bytes.
        stats.global_load.instructions += warp_steps
        stats.global_load.transactions += 32 * warp_steps
        stats.global_load.requested_bytes += 128 * warp_steps
        stats.global_load.l1_filtered_transactions += 32 * warp_steps

        # Atomic output updates: scattered read-modify-write per step.
        stats.global_store.instructions += warp_steps
        stats.global_store.transactions += 32 * warp_steps
        stats.global_store.requested_bytes += 128 * warp_steps
        stats.atomic_ops = warp_steps

        tb = stats.traffic("B")
        tb.sectors = 32 * warp_steps
        tb.unique_bytes = cnt.unique_b_columns(a) * n * 4
        tb.reuse_is_local = False
        tm = stats.traffic("edges")
        tm.sectors = 3 * meta.sectors
        tm.unique_bytes = 12 * nnz
        tm.reuse_is_local = True

        stats.flops = 2 * nnz * n
        # Frontier bookkeeping and loop control per edge per feature.
        stats.alu_instructions = 8 * warp_steps + 12 * ((nnz + 31) // 32)

        threads = nnz  # thread per edge
        launch = LaunchConfig(
            blocks=(threads + _THREADS_PER_BLOCK - 1) // _THREADS_PER_BLOCK if threads else 0,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=0,
        )
        return stats, launch, ExecHints(mlp=self.mlp, efficiency=self.efficiency)

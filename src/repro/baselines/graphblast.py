"""GraphBLAST ``rowsplit`` SpMM model (the open-source CSR baseline).

GraphBLAST (Yang, Buluc, Owens) generalizes the warp-per-row vector SpMV
to SpMM: one warp owns a sparse row, lanes cooperatively fetch 32
nonzeros with a coalesced load, then each fetched element is broadcast to
the warp with the ``__shfl`` intrinsic while the lanes stream the
matching 32-wide dense row segments (paper Section II-B).  Compared with
GE-SpMM it:

* never shares sparse data *between* warps and has no coarsening, so its
  dense-load stream has a single outstanding request chain (low MLP);
* pays a shuffle instruction per consumed element per column chunk;
* schedules exactly one warp per row, so the short rows that dominate
  power-law graphs leave most lanes idle (load imbalance).

The paper measures GE-SpMM at 1.42-1.81x over it, the gap widening with
``N`` and on Turing.
"""

from __future__ import annotations

import numpy as np

from repro.core import _counting as cnt
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import reference_spmm_like

__all__ = ["GraphBlastRowSplit"]

_WARPS_PER_BLOCK = 4
_THREADS_PER_BLOCK = 128
_TILE = 32


class GraphBlastRowSplit(SpMMKernel):
    """GraphBLAST row-split SpMM (warp per row, shfl broadcast)."""

    name = "GraphBLAST rowsplit"
    # GraphBLAST's semiring-generic design does allow custom monoids.
    supports_general_semiring = True

    regs_per_thread = 30
    #: single dependent dense-load chain per warp; chunk loop serializes.
    mlp = 1.0
    #: warp-per-row load imbalance on short/skewed rows.
    efficiency = 0.72

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        self.check_semiring(semiring)
        return reference_spmm_like(a, b, semiring)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        stats = KernelStats()
        wpr = cnt.warps_per_row(n, 1)  # chunks iterated inside the warp
        m, nnz = a.nrows, a.nnz
        lengths = a.row_lengths()

        b_loads = cnt.count_b_loads(a, n)
        stats.global_load.instructions += b_loads.instructions
        stats.global_load.transactions += b_loads.sectors
        stats.global_load.requested_bytes += b_loads.requested_bytes
        stats.global_load.l1_filtered_transactions += b_loads.sectors

        # Coalesced sparse tile fetch; registers hold one tile, so rows
        # longer than a tile re-stream per column chunk (as in csrmm2).
        tiles = cnt.count_tile_loads(a, _TILE)
        short_rows = int((lengths <= _TILE).sum()) if m else 0
        long_tiles = tiles.instructions - short_rows
        sp_insts = 2 * (short_rows + long_tiles * wpr)
        scale = sp_insts / max(2 * tiles.instructions, 1)
        sp_sectors = int(round(2 * tiles.sectors * scale))
        sp_requested = int(round(2 * tiles.requested_bytes * scale))
        stats.global_load.instructions += sp_insts
        stats.global_load.transactions += sp_sectors
        stats.global_load.requested_bytes += sp_requested
        stats.global_load.l1_filtered_transactions += sp_sectors

        rp_insts = 2 * m
        stats.global_load.instructions += rp_insts
        stats.global_load.transactions += rp_insts
        stats.global_load.requested_bytes += 4 * rp_insts
        stats.global_load.l1_filtered_transactions += max(rp_insts // 8, 1) if m else 0

        c_stores = cnt.count_c_stores(a, n)
        stats.global_store.instructions += c_stores.instructions
        stats.global_store.transactions += c_stores.sectors
        stats.global_store.requested_bytes += c_stores.requested_bytes

        tr = stats.traffic("colind")
        tr.sectors = sp_sectors // 2
        tr.unique_bytes = 4 * nnz
        tr.reuse_is_local = True
        tv = stats.traffic("values")
        tv.sectors = sp_sectors - sp_sectors // 2
        tv.unique_bytes = 4 * nnz
        tv.reuse_is_local = True
        tb = stats.traffic("B")
        tb.sectors = b_loads.sectors
        tb.unique_bytes = cnt.unique_b_columns(a) * n * 4
        tb.reuse_is_local = False
        tp = stats.traffic("rowptr")
        tp.sectors = rp_insts
        tp.unique_bytes = 4 * (m + 1)
        tp.reuse_is_local = True

        stats.flops = 2 * nnz * n
        # One __shfl broadcast plus loop control per consumed element per
        # chunk, plus per-row prologue.
        stats.alu_instructions = 6 * nnz * wpr + 16 * m

        launch = LaunchConfig(
            blocks=(m + _WARPS_PER_BLOCK - 1) // _WARPS_PER_BLOCK if m else 0,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=0,
        )
        return stats, launch, ExecHints(mlp=self.mlp, efficiency=self.efficiency)

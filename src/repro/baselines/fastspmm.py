"""Fastspmm (ELLPACK-R) baseline — the other preprocess-based design.

Fastspmm (Ortega, Vazquez, Garcia, Garzon; cited as the paper's [21])
computes SpMM from the ELLPACK-R format: a dense ``M x max_row`` slab of
column indices/values plus a row-length array.  The layout makes every
access perfectly regular — threads of a warp read consecutive slab
columns — at two costs the paper's compatibility argument leans on:

* **conversion**: CSR must be transposed into the padded slab
  (:func:`repro.sparse.convert.csr_to_ellpack_time`);
* **padding**: skewed graphs inflate the slab by the padding ratio; the
  kernel streams (and the device stores) the padded zeros.

On near-regular matrices it is competitive; on power-law graphs the
padded traffic sinks it — which is why adaptive designs (ASpT) replaced
it and why the paper dismisses fixed-format approaches for GNNs.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core import _counting as cnt
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix
from repro.sparse.convert import csr_to_ellpack_time
from repro.sparse.formats import EllpackR, to_ellpack_r
from repro.sparse.ops import reference_spmm_like

__all__ = ["FastSpMM"]

_WARPS_PER_BLOCK = 4
_THREADS_PER_BLOCK = 128


class FastSpMM(SpMMKernel):
    """ELLPACK-R SpMM with explicit conversion accounting."""

    name = "Fastspmm (ELLPACK-R)"
    supports_general_semiring = False
    requires_preprocess = True

    regs_per_thread = 30
    #: fully regular slab walk: deep unrolling, independent streams.
    mlp = 3.0

    def __init__(self) -> None:
        super().__init__()
        self._formats: Dict[int, EllpackR] = {}

    def preprocess(self, a: CSRMatrix) -> EllpackR:
        fmt = self._formats.get(id(a))
        if fmt is None:
            fmt = to_ellpack_r(a)
            self._formats[id(a)] = fmt
        return fmt

    def preprocess_time(self, a: CSRMatrix, gpu: GPUSpec) -> float:
        return csr_to_ellpack_time(a, gpu)

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        self.check_semiring(semiring)
        # Compute through the actual ELLPACK layout for small inputs, the
        # CSR oracle otherwise (identical semantics, bounded memory).
        if a.nrows * max(self.preprocess(a).width, 1) <= 1_000_000:
            return self.preprocess(a).to_dense_product(
                np.ascontiguousarray(b, dtype=np.float32)
            )
        return reference_spmm_like(a, b, semiring)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        fmt = self.preprocess(a)
        stats = KernelStats()
        m, nnz = a.nrows, a.nnz
        width = max(fmt.width, 1)
        slots = m * width  # padded element count — the format's tax
        wpr = cnt.warps_per_row(n, 1)
        segs = cnt.dense_segments(n)
        sec_per_row = sum((length + 7) // 8 for _, length in segs)

        # Slab loads: column-major ELLPACK-R walk is perfectly coalesced;
        # every padded slot is touched (colind + value).
        slab_loads = 2 * ((slots + 31) // 32) * wpr
        stats.global_load.instructions += slab_loads
        stats.global_load.transactions += slab_loads * 4
        stats.global_load.requested_bytes += slab_loads * 128
        stats.global_load.l1_filtered_transactions += slab_loads * 4

        # Dense loads: per *real* nonzero (padding short-circuits on the
        # row-length check before touching B).
        b_loads = cnt.count_b_loads(a, n)
        stats.global_load.instructions += b_loads.instructions
        stats.global_load.transactions += b_loads.sectors
        stats.global_load.requested_bytes += b_loads.requested_bytes
        stats.global_load.l1_filtered_transactions += b_loads.sectors

        rl_insts = ((m + 31) // 32) * wpr  # row-length array, coalesced
        stats.global_load.instructions += rl_insts
        stats.global_load.transactions += rl_insts * 4
        stats.global_load.requested_bytes += rl_insts * 128

        c_stores = cnt.count_c_stores(a, n)
        stats.global_store.instructions += c_stores.instructions
        stats.global_store.transactions += c_stores.sectors
        stats.global_store.requested_bytes += c_stores.requested_bytes

        ts = stats.traffic("ell_slab")
        ts.sectors = slab_loads * 4
        ts.unique_bytes = slots * 8
        ts.reuse_is_local = True
        tb = stats.traffic("B")
        tb.sectors = b_loads.sectors
        tb.unique_bytes = cnt.unique_b_columns(a) * n * 4
        tb.reuse_is_local = False

        stats.flops = 2 * nnz * n
        stats.alu_instructions = 4 * ((slots + 31) // 32) * wpr + 8 * m * wpr

        tasks = m * wpr
        launch = LaunchConfig(
            blocks=(tasks + _WARPS_PER_BLOCK - 1) // _WARPS_PER_BLOCK if tasks else 0,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=0,
        )
        return stats, launch, ExecHints(mlp=self.mlp)

"""DGL's own SpMM-like CUDA kernel model (the framework fallback).

DGL calls cuSPARSE for standard SpMM, but cuSPARSE has no entry point for
general reductions, so SpMM-like operations (max-pooling aggregation in
GraphSAGE-pool, user-defined reducers) fall back to DGL's generic
kernel (paper Sections I/II-C, Table II).  That kernel is written for
generality, not memory behaviour: a thread block per destination vertex
walks the incident edges with per-thread scalar loads — effectively
Algorithm 1's broadcast pattern with extra indirection for the generic
message/reduce functors and no unrolling.

Table II measures its cost: the same aggregation step runs 8.8%-139.1%
slower when expressed as SpMM-like instead of cuSPARSE SpMM, and
GE-SpMM's SpMM-like is 2.39x-6.15x faster than it (Table IX).
"""

from __future__ import annotations

import numpy as np

from repro.core.semiring import PLUS_TIMES, Semiring
from repro.core.simple import SimpleSpMM
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix

__all__ = ["DGLFallbackSpMMLike"]


class DGLFallbackSpMMLike(SimpleSpMM):
    """DGL's generic SpMM-like kernel: Algorithm-1 access pattern plus
    functor-indirection overhead and no instruction-level parallelism."""

    name = "DGL spmm-like"
    supports_general_semiring = True

    regs_per_thread = 36
    #: generic functor calls serialize the load stream.
    mlp = 1.1
    efficiency = 0.85

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        stats, launch, _ = super().count(a, n, gpu)
        # Generic message/reduce functors roughly double the per-element
        # instruction overhead relative to the fused hand-written loop.
        stats.alu_instructions = int(stats.alu_instructions * 2)
        return stats, launch, ExecHints(mlp=self.mlp, efficiency=self.efficiency)

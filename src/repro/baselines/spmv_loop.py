"""Naive SpMM as a loop of SpMV launches (the strawman generalization).

Section II-B: "a straightforward SpMM implementation is simply to
perform SpMV multiple times sequentially ... this method clearly does not
exploit parallelism along the output column dimension".  Each of the
``N`` launches runs a Bell & Garland vector SpMV (warp per row, coalesced
sparse fetch, shuffle reduction); every launch re-reads the whole sparse
matrix, and the dense-vector gather ``x[k] = B[k, j]`` is scattered.
"""

from __future__ import annotations

import numpy as np

from repro.core import _counting as cnt
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import reference_spmm_like

__all__ = ["SpMVLoopSpMM"]

_WARPS_PER_BLOCK = 4
_THREADS_PER_BLOCK = 128


class SpMVLoopSpMM(SpMMKernel):
    """N sequential vector-SpMV launches."""

    name = "SpMV loop"
    supports_general_semiring = True

    regs_per_thread = 28
    mlp = 2.0
    efficiency = 0.85

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        self.check_semiring(semiring)
        return reference_spmm_like(a, b, semiring)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        stats = KernelStats()
        m, nnz = a.nrows, a.nnz

        tiles = cnt.count_tile_loads(a, 32)
        # Per launch: coalesced colind/val tiles + scattered x gather
        # (one sector per nonzero) + rowptr; x N launches.
        stats.global_load.instructions += n * (2 * tiles.instructions + tiles.instructions + 2 * m)
        stats.global_load.transactions += n * (2 * tiles.sectors + nnz + 2 * m)
        stats.global_load.requested_bytes += n * (2 * tiles.requested_bytes + 4 * nnz + 8 * m)
        stats.global_load.l1_filtered_transactions += n * (2 * tiles.sectors + nnz + max(m // 4, 1))

        # y stores: one coalesced store per 32 rows per launch.
        st_insts = n * ((m + 31) // 32)
        stats.global_store.instructions += st_insts
        stats.global_store.transactions += st_insts * 4
        stats.global_store.requested_bytes += n * m * 4

        tsp = stats.traffic("colind+values")
        tsp.sectors = n * 2 * tiles.sectors
        tsp.unique_bytes = 8 * nnz
        tsp.reuse_is_local = False  # re-read across distant launches
        tbx = stats.traffic("B")
        tbx.sectors = n * nnz
        tbx.unique_bytes = cnt.unique_b_columns(a) * n * 4
        tbx.reuse_is_local = False

        stats.flops = 2 * nnz * n
        stats.alu_instructions = n * (5 * tiles.instructions * 1 + 3 * ((nnz + 31) // 32) + 10 * m // 32)

        launch = LaunchConfig(
            blocks=(m + _WARPS_PER_BLOCK - 1) // _WARPS_PER_BLOCK if m else 0,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=0,
        )
        return stats, launch, ExecHints(mlp=self.mlp, efficiency=self.efficiency)

    def estimate(self, a, n, gpu, semiring=PLUS_TIMES, params=None):
        """N launches pay N launch overheads; the base estimate prices the
        aggregate work with a single launch, so add the remaining N-1."""
        timing = super().estimate(a, n, gpu, semiring, params)
        if "extra_launches" not in timing.breakdown:  # cached copies mutate once
            extra = max(int(n) - 1, 0) * gpu.launch_overhead_s
            timing.time_s += extra
            timing.breakdown["extra_launches"] = extra
        return timing

"""cuSPARSE ``csrmm2`` model (the vendor baseline).

csrmm2 is closed source; the paper characterizes it externally
(Sections II-B, V-A2, Fig. 3): CSR in, *row-major* dense input, *column-
major* output, standard plus-times only, well-coalesced (near-peak load
throughput once ``N >= 32``) but without inter-warp sparse reuse or
coarsening.  We model it in the row-split family descended from
Bell & Garland's vector SpMV: one warp per sparse row, iterating the
output columns in 32-wide chunks, holding the sparse row in registers
(rows up to a tile) or re-streaming it per chunk (longer rows), and
staging the column-major output through shared memory so stores coalesce.

Two GNN-relevant externalities reproduced here:

* :func:`cublas_transpose_time` — frameworks need row-major activations,
  so every csrmm2 call in DGL is followed by a cuBLAS transpose
  (Section II-C); the framework substrate charges it.
* ``supports_general_semiring = False`` — SpMM-like operations raise,
  which is what forces DGL back onto its own slower kernel (Table II).
"""

from __future__ import annotations

import numpy as np

from repro.core import _counting as cnt
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import reference_spmm_like

__all__ = ["CusparseCsrmm2", "cublas_transpose_time"]

_WARPS_PER_BLOCK = 4
_THREADS_PER_BLOCK = 128
_TILE = 32


class CusparseCsrmm2(SpMMKernel):
    """Vendor csrmm2 kernel model (plus-times only, column-major out)."""

    name = "cuSPARSE csrmm2"
    supports_general_semiring = False

    regs_per_thread = 32
    #: the per-warp column-chunk loop serializes dense loads: each chunk
    #: walks the row again with a single outstanding stream.
    mlp = 1.15
    efficiency = 0.95  # vendor-tuned scheduling, small residual imbalance

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        self.check_semiring(semiring)
        # Functional result is layout-independent; the column-major output
        # convention only matters for the consumer (transpose cost).
        return reference_spmm_like(a, b, semiring)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        stats = KernelStats()
        wpr = cnt.warps_per_row(n, 1)  # column chunks iterated inside the warp
        m, nnz = a.nrows, a.nnz
        lengths = a.row_lengths()

        b_loads = cnt.count_b_loads(a, n)
        stats.global_load.instructions += b_loads.instructions
        stats.global_load.transactions += b_loads.sectors
        stats.global_load.requested_bytes += b_loads.requested_bytes
        stats.global_load.l1_filtered_transactions += b_loads.sectors

        # Sparse loads: rows that fit one register tile are loaded once for
        # all chunks; longer rows re-stream their tiles every chunk.
        tiles = cnt.count_tile_loads(a, _TILE)
        short_rows = int((lengths <= _TILE).sum()) if m else 0
        long_tiles = tiles.instructions - short_rows  # tiles belonging to long rows
        sp_insts = 2 * (short_rows + long_tiles * wpr)
        scale = sp_insts / max(2 * tiles.instructions, 1)
        sp_sectors = int(round(2 * tiles.sectors * scale))
        sp_requested = int(round(2 * tiles.requested_bytes * scale))
        stats.global_load.instructions += sp_insts
        stats.global_load.transactions += sp_sectors
        stats.global_load.requested_bytes += sp_requested
        stats.global_load.l1_filtered_transactions += sp_sectors

        rp_insts = 2 * m
        stats.global_load.instructions += rp_insts
        stats.global_load.transactions += rp_insts
        stats.global_load.requested_bytes += 4 * rp_insts
        stats.global_load.l1_filtered_transactions += max(rp_insts // 8, 1) if m else 0

        # Column-major output staged through shared memory so the actual
        # global stores coalesce (same byte volume as row-major).
        c_stores = cnt.count_c_stores(a, n)
        stats.global_store.instructions += c_stores.instructions
        stats.global_store.transactions += c_stores.sectors
        stats.global_store.requested_bytes += c_stores.requested_bytes
        stats.shared_store.instructions = c_stores.instructions
        stats.shared_store.transactions = c_stores.instructions
        stats.shared_store.requested_bytes = c_stores.requested_bytes
        stats.shared_load.instructions = c_stores.instructions
        stats.shared_load.transactions = c_stores.instructions
        stats.shared_load.requested_bytes = c_stores.requested_bytes
        stats.block_syncs = m  # one barrier per staged row tile

        tr = stats.traffic("colind")
        tr.sectors = sp_sectors // 2
        tr.unique_bytes = 4 * nnz
        tr.reuse_is_local = True
        tv = stats.traffic("values")
        tv.sectors = sp_sectors - sp_sectors // 2
        tv.unique_bytes = 4 * nnz
        tv.reuse_is_local = True
        tb = stats.traffic("B")
        tb.sectors = b_loads.sectors
        tb.unique_bytes = cnt.unique_b_columns(a) * n * 4
        tb.reuse_is_local = False
        tp = stats.traffic("rowptr")
        tp.sectors = rp_insts
        tp.unique_bytes = 4 * (m + 1)
        tp.reuse_is_local = True

        stats.flops = 2 * nnz * n
        # Register-shuffle broadcast plus loop control per consumed element
        # per chunk.
        stats.alu_instructions = 4 * nnz * wpr + 10 * m * wpr

        launch = LaunchConfig(
            blocks=(m + _WARPS_PER_BLOCK - 1) // _WARPS_PER_BLOCK if m else 0,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=_THREADS_PER_BLOCK * 4,
        )
        return stats, launch, ExecHints(mlp=self.mlp, efficiency=self.efficiency)


def cublas_transpose_time(m: int, n: int, gpu: GPUSpec) -> float:
    """Simulated time of the cuBLAS ``geam`` transpose DGL must run to
    turn csrmm2's column-major output row-major (paper Section II-C).

    The transpose reads and writes ``m*n`` floats; one side of the access
    is strided, costing roughly half the effective bandwidth even with
    shared-memory tiling.
    """
    nbytes = 2 * m * n * 4
    return nbytes / (0.5 * gpu.l2_bandwidth) + gpu.launch_overhead_s

"""Comparison baselines: every system the paper evaluates against,
implemented as simulated kernel models with documented access patterns."""

from repro.baselines.aspt import ASpTSpMM
from repro.baselines.cusparse import CusparseCsrmm2, cublas_transpose_time
from repro.baselines.dgl_fallback import DGLFallbackSpMMLike
from repro.baselines.fastspmm import FastSpMM
from repro.baselines.graphblast import GraphBlastRowSplit
from repro.baselines.gunrock import GunrockAdvanceSpMM
from repro.baselines.spmv_loop import SpMVLoopSpMM

__all__ = [
    "CusparseCsrmm2",
    "cublas_transpose_time",
    "GraphBlastRowSplit",
    "GunrockAdvanceSpMM",
    "ASpTSpMM",
    "FastSpMM",
    "SpMVLoopSpMM",
    "DGLFallbackSpMMLike",
]

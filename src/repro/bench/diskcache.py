"""Opt-in content-addressed on-disk cache for kernel estimates and sweep cells.

The in-process memos added in earlier PRs (``SpMMKernel.estimate``'s
``_ESTIMATE_MEMO``, ``run_sweep``'s ``_SWEEP_CACHE``) die with the
process, so CI and every CLI invocation re-derive the same deterministic
numbers.  :class:`DiskCache` persists them across processes under the
*same content-addressed keys*:

* ``timing`` entries — full :class:`~repro.gpusim.timing.KernelTiming`
  payloads keyed ``(kernel.cache_key(), fingerprint, n, gpu.name,
  semiring.name, params)``;
* ``cell`` entries — ``(time_s, gflops, attribution)`` sweep cells keyed
  ``(kernel.cache_key(), fingerprint, n, gpu.name)``; ``attribution`` is
  the per-cell bottleneck block of ``BENCH_spmm.json`` (or None);
* ``shard`` entries — one completed corpus-sweep shard (the run-ordered
  cell list plus per-matrix stats; see ``repro.bench.corpus``) keyed on
  the shard's spec keys, kernel cache keys, widths, and GPU names.
  Shard checkpoints are what make an interrupted corpus sweep resume
  with zero recomputation.

Content addressing makes invalidation automatic for *inputs*: a new
matrix, width, GPU spec, kernel configuration, or calibration constant
produces a different key, so stale entries are simply never read again.
Changes to the *timing model code* are what the ``SCHEMA`` tag guards:
bump it whenever the meaning of a payload changes and every old entry is
rejected on read (counted under ``diskcache.invalidations``) — which is
also why the cache directory is always safe to delete wholesale.

Entry files are JSON (``{"schema", "kind", "key", "payload"}``) named by
the BLAKE2b digest of ``repr((SCHEMA, kind, key))`` and written
atomically (temp file + ``os.replace``), so concurrent writers are safe
and a torn write can never be read back.  A read whose stored ``key``
repr does not match the request (digest collision, truncation, manual
tampering) is treated as an invalidation, the file removed best-effort.

Activation is opt-in: ``set_disk_cache(DiskCache(path))`` /
``use_disk_cache(...)`` programmatically, ``--cache-dir`` on
``repro-bench sweep``/``gate``, or the ``REPRO_CACHE_DIR`` environment
variable.  Hits/misses/invalidations surface per kind as the
``diskcache.*`` counters and per instance via :meth:`DiskCache.counters`.
See docs/PERFORMANCE.md "Access profiles & disk cache".
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.gpusim.memory import AccessStats, ArrayTraffic, KernelStats
from repro.gpusim.occupancy import LaunchConfig, Occupancy
from repro.gpusim.timing import KernelTiming

__all__ = [
    "SCHEMA",
    "DiskCache",
    "get_disk_cache",
    "set_disk_cache",
    "use_disk_cache",
    "CACHE_DIR_ENV",
]

PathLike = Union[str, Path]

#: Version tag baked into every entry digest *and* stored in the file.
#: Bump on any change to payload semantics (new KernelTiming fields, a
#: different cell tuple, ...) — old entries then miss cleanly.
#: v2: KernelTiming grew ``factors`` and sweep cells carry the
#: bottleneck-attribution block next to (time_s, gflops).
SCHEMA = "repro/diskcache/v2"

CACHE_DIR_ENV = "REPRO_CACHE_DIR"


# ----------------------------------------------------------------------
# KernelTiming <-> JSON
# ----------------------------------------------------------------------
def _access_to_json(s: AccessStats) -> list:
    return [s.instructions, s.transactions, s.requested_bytes,
            s.l1_filtered_transactions]


def _access_from_json(v: list) -> AccessStats:
    return AccessStats(int(v[0]), int(v[1]), int(v[2]), int(v[3]))


def timing_to_json(t: KernelTiming) -> Dict[str, Any]:
    """Serialize a :class:`KernelTiming` to a JSON-safe dict.

    Floats round-trip exactly through JSON (repr-based encoding), so a
    disk hit reproduces the in-process result bit for bit — the property
    the byte-identical-sweep CI check relies on.
    """
    st = t.stats
    return {
        "time_s": t.time_s,
        "bound_by": t.bound_by,
        "gpu_name": t.gpu_name,
        "breakdown": dict(t.breakdown),
        "factors": dict(t.factors),
        "stats": {
            "global_load": _access_to_json(st.global_load),
            "global_store": _access_to_json(st.global_store),
            "shared_load": _access_to_json(st.shared_load),
            "shared_store": _access_to_json(st.shared_store),
            "array_traffic": {
                name: [tr.sectors, tr.unique_bytes, bool(tr.reuse_is_local)]
                for name, tr in st.array_traffic.items()
            },
            "flops": st.flops,
            "alu_instructions": st.alu_instructions,
            "warp_syncs": st.warp_syncs,
            "block_syncs": st.block_syncs,
            "atomic_ops": st.atomic_ops,
        },
        "launch": [t.launch.blocks, t.launch.threads_per_block,
                   t.launch.regs_per_thread, t.launch.shared_mem_per_block],
        "occupancy": [t.occupancy.blocks_per_sm, t.occupancy.active_warps_per_sm,
                      t.occupancy.achieved, t.occupancy.limiter, t.occupancy.waves],
    }


def timing_from_json(d: Dict[str, Any]) -> KernelTiming:
    """Inverse of :func:`timing_to_json`."""
    sd = d["stats"]
    stats = KernelStats(
        global_load=_access_from_json(sd["global_load"]),
        global_store=_access_from_json(sd["global_store"]),
        shared_load=_access_from_json(sd["shared_load"]),
        shared_store=_access_from_json(sd["shared_store"]),
        array_traffic={
            name: ArrayTraffic(int(v[0]), int(v[1]), bool(v[2]))
            for name, v in sd["array_traffic"].items()
        },
        flops=int(sd["flops"]),
        alu_instructions=int(sd["alu_instructions"]),
        warp_syncs=int(sd["warp_syncs"]),
        block_syncs=int(sd["block_syncs"]),
        atomic_ops=int(sd["atomic_ops"]),
    )
    lb = d["launch"]
    ob = d["occupancy"]
    return KernelTiming(
        time_s=float(d["time_s"]),
        stats=stats,
        launch=LaunchConfig(int(lb[0]), int(lb[1]), int(lb[2]), int(lb[3])),
        occupancy=Occupancy(int(ob[0]), float(ob[1]), float(ob[2]),
                            str(ob[3]), float(ob[4])),
        breakdown={k: float(v) for k, v in d["breakdown"].items()},
        bound_by=str(d["bound_by"]),
        gpu_name=str(d["gpu_name"]),
        factors={k: float(v) for k, v in d["factors"].items()},
    )


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class DiskCache:
    """Content-addressed JSON entry store under one root directory."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- bookkeeping ---------------------------------------------------
    def _count(self, what: str, kind: str) -> None:
        from repro import obs  # late: keep import cost off the cold path

        with self._lock:
            setattr(self, what, getattr(self, what) + 1)
        obs.get_registry().counter(f"diskcache.{what}", kind=kind).inc()

    def counters(self) -> Dict[str, int]:
        """Instance-lifetime hit/miss/invalidation counts (the
        ``run.host.diskcache`` block of ``BENCH_spmm.json``)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }

    # -- entry addressing ----------------------------------------------
    @staticmethod
    def _key_repr(kind: str, key: tuple) -> str:
        return repr((SCHEMA, kind, key))

    def _path(self, kind: str, key: tuple) -> Path:
        digest = hashlib.blake2b(
            self._key_repr(kind, key).encode(), digest_size=16
        ).hexdigest()
        return self.root / kind / digest[:2] / f"{digest}.json"

    # -- raw get/put ---------------------------------------------------
    def _get(self, kind: str, key: tuple) -> Optional[Any]:
        path = self._path(kind, key)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            self._count("misses", kind)
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._invalidate(path, kind)
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("schema") != SCHEMA
            or doc.get("key") != self._key_repr(kind, key)
            or "payload" not in doc
        ):
            self._invalidate(path, kind)
            return None
        self._count("hits", kind)
        return doc["payload"]

    def _invalidate(self, path: Path, kind: str) -> None:
        self._count("invalidations", kind)
        try:
            path.unlink()
        except OSError:
            pass

    def _put(self, kind: str, key: tuple, payload: Any) -> None:
        path = self._path(kind, key)
        doc = {"schema": SCHEMA, "kind": kind,
               "key": self._key_repr(kind, key), "payload": payload}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
            tmp.write_text(json.dumps(doc, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            # A cache must never fail the computation it accelerates.
            pass

    # -- typed views ----------------------------------------------------
    def get_timing(self, key: tuple) -> Optional[KernelTiming]:
        payload = self._get("timing", key)
        if payload is None:
            return None
        try:
            return timing_from_json(payload)
        except (KeyError, TypeError, ValueError, IndexError):
            self._invalidate(self._path("timing", key), "timing")
            return None

    def put_timing(self, key: tuple, timing: KernelTiming) -> None:
        self._put("timing", key, timing_to_json(timing))

    def get_cell(
        self, key: tuple
    ) -> Optional[Tuple[float, float, Optional[Dict[str, Any]]]]:
        payload = self._get("cell", key)
        if payload is None:
            return None
        try:
            attribution = payload[2]
            if attribution is not None and not isinstance(attribution, dict):
                raise TypeError("attribution must be an object or null")
            return float(payload[0]), float(payload[1]), attribution
        except (TypeError, ValueError, IndexError):
            self._invalidate(self._path("cell", key), "cell")
            return None

    def put_cell(
        self,
        key: tuple,
        time_s: float,
        gflops: float,
        attribution: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._put("cell", key, [time_s, gflops, attribution])

    def get_shard(self, key: tuple) -> Optional[Dict[str, Any]]:
        """A completed corpus-sweep shard checkpoint, or None.

        The payload is validated structurally (``cells`` list of 6-item
        rows, ``stats`` dict) so a malformed checkpoint is invalidated
        and recomputed rather than poisoning a resumed roll-up.
        """
        payload = self._get("shard", key)
        if payload is None:
            return None
        if (
            isinstance(payload, dict)
            and isinstance(payload.get("cells"), list)
            and isinstance(payload.get("stats"), dict)
            and all(
                isinstance(c, list) and len(c) == 6 for c in payload["cells"]
            )
        ):
            return payload
        self._invalidate(self._path("shard", key), "shard")
        return None

    def put_shard(self, key: tuple, payload: Dict[str, Any]) -> None:
        self._put("shard", key, payload)

    # -- targeted invalidation -------------------------------------------
    def invalidate_matrix(self, fingerprint: str) -> int:
        """Remove every entry whose key references one matrix fingerprint.

        The dynamic-graph garbage collector (``repro.sparse.delta``):
        entry filenames are content-addressed digests, so the store is
        scanned and each entry's stored ``key`` repr is checked for the
        fingerprint (as a quoted string — fingerprints are 32-hex-char
        BLAKE2b digests, so an accidental match inside an unrelated key
        component is not a realistic collision).  Matching ``timing``
        and ``cell`` entries are unlinked; ``shard`` checkpoints whose
        spec keys embed the print are dropped too, forcing those shards
        to recompute rather than replay stale cells.  Entries for every
        other matrix are untouched.  Returns the number removed, counted
        per kind under ``diskcache.targeted_invalidations``.
        """
        from repro import obs  # late: keep import cost off the cold path

        needle = repr(str(fingerprint))
        removed = 0
        registry = obs.get_registry()
        for f in list(self._entry_files()):
            try:
                doc = json.loads(f.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue  # corrupt entries are handled by the read path
            if not isinstance(doc, dict) or needle not in str(doc.get("key", "")):
                continue
            kind = f.relative_to(self.root).parts[0]
            try:
                f.unlink()
            except OSError:
                continue
            removed += 1
            registry.counter("diskcache.targeted_invalidations", kind=kind).inc()
        return removed

    # -- maintenance ----------------------------------------------------
    def _entry_files(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for kind_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            yield from sorted(kind_dir.rglob("*.json"))

    def stats(self) -> Dict[str, Any]:
        """Entry counts and byte sizes — total, per kind, and per stored
        schema version.

        The schema breakdown reads each entry's ``"schema"`` field, so a
        directory carrying entries from before a ``SCHEMA`` bump shows
        exactly how many stale bytes a ``clear`` would reclaim.
        Unreadable or schema-less files are grouped under
        ``"(unreadable)"`` / ``"(missing)"``.
        """
        kinds: Dict[str, Dict[str, int]] = {}
        schemas: Dict[str, Dict[str, int]] = {}
        total_entries = total_bytes = 0
        for f in self._entry_files():
            kind = f.relative_to(self.root).parts[0]
            k = kinds.setdefault(kind, {"entries": 0, "bytes": 0})
            size = f.stat().st_size
            k["entries"] += 1
            k["bytes"] += size
            try:
                doc = json.loads(f.read_text())
                schema = doc.get("schema") if isinstance(doc, dict) else None
                label = str(schema) if schema is not None else "(missing)"
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                label = "(unreadable)"
            s = schemas.setdefault(label, {"entries": 0, "bytes": 0})
            s["entries"] += 1
            s["bytes"] += size
            total_entries += 1
            total_bytes += size
        return {
            "root": str(self.root),
            "entries": total_entries,
            "bytes": total_bytes,
            "kinds": kinds,
            "schemas": schemas,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed.  Only
        entry files and then-empty directories are touched, so pointing
        this at the wrong directory cannot eat unrelated data."""
        removed = 0
        for f in list(self._entry_files()):
            try:
                f.unlink()
                removed += 1
            except OSError:
                pass
        # Prune now-empty subdirectories, deepest first.
        if self.root.is_dir():
            for d in sorted((p for p in self.root.rglob("*") if p.is_dir()),
                            key=lambda p: len(p.parts), reverse=True):
                try:
                    d.rmdir()
                except OSError:
                    pass
        return removed


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
_ACTIVE: Optional[DiskCache] = None
_ENV_CACHE: Optional[DiskCache] = None
_STATE_LOCK = threading.Lock()


def set_disk_cache(cache: Optional[DiskCache]) -> Optional[DiskCache]:
    """Install ``cache`` as the process-wide disk cache (None disables
    explicit activation); returns the previous setting."""
    global _ACTIVE
    with _STATE_LOCK:
        prev = _ACTIVE
        _ACTIVE = cache
    return prev


def get_disk_cache() -> Optional[DiskCache]:
    """The active disk cache: the one installed via
    :func:`set_disk_cache`, else one rooted at ``$REPRO_CACHE_DIR`` when
    that is set, else None (caching off — the default)."""
    global _ENV_CACHE
    with _STATE_LOCK:
        if _ACTIVE is not None:
            return _ACTIVE
        root = os.environ.get(CACHE_DIR_ENV)
        if not root:
            return None
        if _ENV_CACHE is None or str(_ENV_CACHE.root) != root:
            _ENV_CACHE = DiskCache(root)
        return _ENV_CACHE


@contextmanager
def use_disk_cache(cache: Optional[DiskCache]) -> Iterator[Optional[DiskCache]]:
    """Scoped :func:`set_disk_cache` (tests, CLI commands)."""
    prev = set_disk_cache(cache)
    try:
        yield cache
    finally:
        set_disk_cache(prev)

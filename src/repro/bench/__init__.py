"""Benchmark harness: sweep runner, aggregation, and reporting helpers."""

from repro.bench.regression import (
    RegressionEntry,
    capture,
    compare,
    load_baseline,
    save_baseline,
)
from repro.bench.report import PaperClaim, comparison, render_claims
from repro.bench.telemetry import (
    SCHEMA_ID,
    bench_document,
    validate_bench_document,
    write_bench_json,
)
from repro.bench.runner import (
    KernelResult,
    bar_chart,
    format_series,
    format_table,
    geomean,
    run_sweep,
    speedup_series,
)

__all__ = [
    "geomean",
    "KernelResult",
    "run_sweep",
    "speedup_series",
    "format_table",
    "format_series",
    "bar_chart",
    "RegressionEntry",
    "capture",
    "compare",
    "save_baseline",
    "load_baseline",
    "PaperClaim",
    "comparison",
    "render_claims",
    "SCHEMA_ID",
    "bench_document",
    "validate_bench_document",
    "write_bench_json",
]

"""Benchmark harness: sweep runner, aggregation, and reporting helpers."""

from repro.bench.gate import (
    AcceptedDrift,
    Drift,
    GateError,
    GateReport,
    GateThresholds,
    diff_documents,
    gate_paths,
    load_accepted_drift,
    load_bench_document,
)
from repro.bench.regression import (
    RegressionEntry,
    capture,
    compare,
    document_measurements,
    load_baseline,
    measurement_key,
    save_baseline,
)
from repro.bench.report import PaperClaim, comparison, render_claims
from repro.bench.telemetry import (
    SCHEMA_ID,
    bench_document,
    validate_bench_document,
    write_bench_json,
)
from repro.bench.runner import (
    KernelResult,
    bar_chart,
    format_series,
    format_table,
    geomean,
    run_sweep,
    speedup_series,
)

__all__ = [
    "geomean",
    "KernelResult",
    "run_sweep",
    "speedup_series",
    "format_table",
    "format_series",
    "bar_chart",
    "RegressionEntry",
    "capture",
    "compare",
    "save_baseline",
    "load_baseline",
    "measurement_key",
    "document_measurements",
    "AcceptedDrift",
    "Drift",
    "GateError",
    "GateReport",
    "GateThresholds",
    "diff_documents",
    "gate_paths",
    "load_accepted_drift",
    "load_bench_document",
    "PaperClaim",
    "comparison",
    "render_claims",
    "SCHEMA_ID",
    "bench_document",
    "validate_bench_document",
    "write_bench_json",
]

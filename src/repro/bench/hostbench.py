"""Host-execution microbenchmark: segment engine vs. scatter oracles.

The simulator's numeric substrate *is* the host CPU, so the segmented-
reduction engine (:mod:`repro.sparse.segment`) is a genuine performance
change even though the paper's subject is a GPU kernel: every simulated
training epoch, every sweep cell and every conformance check runs
``reference_spmm_like`` on the host.  This module measures the three
paths the engine accelerates —

* plus-semiring SpMM (``np.add.at`` scatter vs. ``np.add.reduceat``),
* max aggregation forward+backward (the GraphSAGE-pool hot path, where
  the old backward closure kept an ``(nnz, N)`` array alive), and
* full-batch GCN training wall-clock end to end —

each timed best-of-``reps`` under both engine toggles, on a power-law
graph shaped so aggregation (not the dense layer matmuls) dominates.

Numbers land in ``BENCH_spmm.json`` under ``run.host.microbench`` via
:func:`update_bench_json_host` — inside the ``run`` block the regression
gate deliberately ignores (it diffs cells and geomeans only), so host
timing noise can never fail ``make gate``.

Run it via ``make microbench`` (pytest, asserts the speedup floors) or
directly::

    PYTHONPATH=src python -m repro.bench.hostbench
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.core.semiring import MAX_TIMES, PLUS_TIMES
from repro.sparse import power_law
from repro.sparse.csr import CSRMatrix
from repro.sparse.segment import use_segment_engine
from repro.sparse.ops import reference_spmm_like

__all__ = [
    "best_of",
    "bench_spmm_like",
    "bench_aggregate_max",
    "bench_gcn_training",
    "bench_count_grid",
    "bench_delta_apply",
    "bench_disk_cache_sweep",
    "bench_corpus_stream",
    "bench_tiled_spmm",
    "bench_tiled_peak",
    "format_result_line",
    "run_host_microbench",
    "update_bench_json_host",
]

PathLike = Union[str, Path]

#: Reduction benchmark graph: dense power-law (avg degree 50) with
#: narrow features, the regime where the per-row reduction dominates and
#: the scatter loop's per-duplicate cost is highest.  Feature widths
#: mirror the classic Planetoid GCN/SAGE configs (hidden 8/16), where
#: the aggregation step — not the dense layer matmuls — is the host
#: bottleneck.
_RED_M, _RED_NNZ = 12_000, 600_000
#: GCN training benchmark graph: aggregation-heavy but small enough that
#: a full multi-epoch train fits in a few hundred milliseconds.
_GCN_M, _GCN_NNZ, _GCN_FEATURES = 12_000, 160_000, 64
#: Counting benchmark graph: large enough that the O(nnz) array
#: expansions in the oracle counters dominate count() wall-clock.
_GRID_M, _GRID_NNZ = 8_000, 300_000


def best_of(fn: Callable[[], Any], reps: int = 5, warmup: int = 1) -> float:
    """Best-of-``reps`` wall time of ``fn()`` after ``warmup`` calls.

    Best (not mean) is the standard microbenchmark statistic: host noise
    is strictly additive, so the minimum is the cleanest estimate.
    """
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_graph(m: int = _RED_M, nnz: int = _RED_NNZ, seed: int = 0) -> CSRMatrix:
    return power_law(m, nnz, seed=seed, weighted=True)


def _toggle_times(fn: Callable[[], Any], reps: int) -> Dict[str, float]:
    """Time ``fn`` under both engine toggles, interleaved rep by rep so
    machine noise hits both sides equally; one warmup call per toggle
    first, which also leaves the derived-array caches equally warm."""
    best = {False: float("inf"), True: float("inf")}
    for enabled in (False, True):
        with use_segment_engine(enabled):
            fn()
    for _ in range(reps):
        for enabled in (False, True):
            with use_segment_engine(enabled):
                t0 = time.perf_counter()
                fn()
                best[enabled] = min(best[enabled], time.perf_counter() - t0)
    scatter_s, segment_s = best[False], best[True]
    return {
        "scatter_s": scatter_s,
        "segment_s": segment_s,
        "speedup": scatter_s / segment_s if segment_s > 0 else float("inf"),
    }


def bench_spmm_like(
    semiring=PLUS_TIMES,
    m: int = _RED_M,
    nnz: int = _RED_NNZ,
    n: int = 16,
    reps: int = 5,
) -> Dict[str, float]:
    """Scatter vs. segment ``reference_spmm_like`` on one semiring."""
    a = _bench_graph(m, nnz)
    b = np.random.default_rng(1).standard_normal((a.ncols, n)).astype(np.float32)
    return _toggle_times(lambda: reference_spmm_like(a, b, semiring), reps)


def bench_aggregate_max(
    m: int = _RED_M, nnz: int = _RED_NNZ, n: int = 8, reps: int = 7
) -> Dict[str, float]:
    """Max-aggregation forward+backward (the GraphSAGE-pool hot path)."""
    from repro.gnn.aggregate import GraphPair, aggregate_max
    from repro.gnn.tensor import Tensor

    g = GraphPair(_bench_graph(m, nnz))
    data = np.random.default_rng(1).standard_normal((g.adj.ncols, n)).astype(np.float32)
    grad = np.random.default_rng(2).standard_normal((g.adj.nrows, n)).astype(np.float32)
    no_cost = lambda *a, **k: 0.0
    no_record = lambda *a, **k: None

    def step():
        x = Tensor(data, requires_grad=True)
        y = aggregate_max(g, x, no_cost, no_cost, no_record)
        y.backward(grad)

    return _toggle_times(step, reps)


def _synthetic_citation(
    m: int = _GCN_M,
    nnz: int = _GCN_NNZ,
    feature_dim: int = _GCN_FEATURES,
    n_classes: int = 7,
    seed: int = 0,
):
    """An aggregation-dominant synthetic dataset in the Planetoid layout.

    Real cora has 1433-dim features, so dense layer matmuls swamp the
    aggregation step; this keeps ``feature_dim`` narrow and the graph
    nnz-heavy so the engine's target actually dominates wall-clock.
    """
    from repro.datasets.citation import CitationDataset

    rng = np.random.default_rng(seed)
    graph = _bench_graph(m, nnz, seed=seed)
    labels = rng.integers(0, n_classes, size=m)
    masks = rng.permutation(m)
    train_mask = np.zeros(m, dtype=bool)
    val_mask = np.zeros(m, dtype=bool)
    test_mask = np.zeros(m, dtype=bool)
    train_mask[masks[: m // 10]] = True
    val_mask[masks[m // 10 : 2 * m // 10]] = True
    test_mask[masks[2 * m // 10 :]] = True
    return CitationDataset(
        name="synthetic-hostbench",
        graph=graph,
        features=rng.standard_normal((m, feature_dim)).astype(np.float32),
        labels=labels.astype(np.int64),
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        n_classes=n_classes,
    )


def bench_gcn_training(
    epochs: int = 3, m: int = _GCN_M, nnz: int = _GCN_NNZ, reps: int = 3
) -> Dict[str, float]:
    """Full-batch GCN training wall-clock, engine off vs. on.

    A fresh model per call keeps the numeric work identical across reps;
    the kernel-estimate memo warms up during ``best_of``'s warmup call so
    both toggles are measured with the same memo state.
    """
    from repro.gnn import DGLBackend, GCN, SimDevice, train
    from repro.gpusim import GTX_1080TI

    ds = _synthetic_citation(m, nnz)

    def step():
        model = GCN(ds.feature_dim, 16, ds.n_classes, rng=np.random.default_rng(0))
        backend = DGLBackend(SimDevice(GTX_1080TI), use_gespmm=True)
        train(model, backend, ds, epochs=epochs, warmup=0)

    return _toggle_times(step, reps)


def bench_count_grid(reps: int = 3) -> Dict[str, Any]:
    """Cold full-grid analytic ``count()`` pass: oracle array-expansion
    counters vs. the :class:`~repro.core.access_profile.AccessProfile`
    closed forms.

    The grid spans four kernels x three widths (aligned 32 plus unaligned
    250 and 7) x both GPU presets — the shape of one sweep's analytic
    work for a single graph.  The profile is dropped before every profile
    rep, so its side *includes* the one-off O(nnz) histogram build (a
    cold sweep's true cost); reps are interleaved so machine noise hits
    both sides equally.
    """
    from repro.core import CRCSpMM, CWMSpMM, GESpMM, SimpleSpMM
    from repro.core._counting import use_oracle_counters
    from repro.core.access_profile import clear_access_profile
    from repro.gpusim import GTX_1080TI, RTX_2080

    a = _bench_graph(_GRID_M, _GRID_NNZ)
    kernels = [SimpleSpMM(), CRCSpMM(), CWMSpMM(2), GESpMM()]
    widths = [32, 250, 7]
    gpus = [GTX_1080TI, RTX_2080]

    def grid():
        for kern in kernels:
            for n in widths:
                for gpu in gpus:
                    kern.count(a, n, gpu)

    def oracle_pass():
        with use_oracle_counters():
            grid()

    def profile_pass():
        clear_access_profile(a)  # cold: pay the histogram build every rep
        grid()

    best = {"oracle": float("inf"), "profile": float("inf")}
    oracle_pass()
    profile_pass()
    for _ in range(reps):
        for name, fn in (("oracle", oracle_pass), ("profile", profile_pass)):
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    oracle_s, profile_s = best["oracle"], best["profile"]
    return {
        "grid": {"kernels": len(kernels), "widths": widths,
                 "gpus": len(gpus), "m": _GRID_M, "nnz": _GRID_NNZ},
        "oracle_s": oracle_s,
        "profile_s": profile_s,
        "speedup": oracle_s / profile_s if profile_s > 0 else float("inf"),
    }


def bench_delta_apply(
    m: int = 10_000, nnz: int = 100_000, batch: int = 1_000, reps: int = 15
) -> Dict[str, Any]:
    """Incremental :func:`~repro.sparse.delta.apply_delta` vs. the full
    from-scratch rebuild it replaces.

    A 100k-edge power-law graph takes a mixed 1% batch (third inserts,
    third deletes, third value updates).  The incremental side patches
    the CSR arrays and evolves the cached :class:`AccessProfile` in
    O(Δ + touched rows); the rebuild side is what a delta-less streaming
    host would pay per batch — ``csr_from_coo`` (the COO lexsort), all
    four derived arrays, and a cold profile build.  Both sides produce
    the identical matrix (``parity`` asserts fingerprint equality), each
    timed best-of-``reps``.
    """
    from repro.core.access_profile import access_profile
    from repro.sparse import csr_from_coo
    from repro.sparse.delta import EdgeDelta, apply_delta

    a = _bench_graph(m, nnz, seed=3)
    # Steady-state streaming host: the live version's derived state and
    # profile are resident (that is the state the delta path patches).
    a.colind64(), a.coo_rows(), access_profile(a)

    rng = np.random.default_rng(4)
    third = batch // 3
    del_idx = rng.choice(a.nnz, size=third, replace=False)
    upd_idx = rng.choice(
        np.setdiff1d(np.arange(a.nnz), del_idx), size=third, replace=False
    )
    # Absent slots for inserts: rejection-sample against the (sorted)
    # stored edge keys.
    keys = a.coo_rows() * a.ncols + a.colind64()
    cand = np.unique(
        rng.integers(0, m, size=8 * third) * a.ncols
        + rng.integers(0, a.ncols, size=8 * third)
    )
    pos = np.searchsorted(keys, cand)
    stored = (pos < keys.size) & (keys[np.minimum(pos, keys.size - 1)] == cand)
    ins_flat = rng.permutation(cand[~stored])[:third]

    delta = EdgeDelta.new(
        inserts=(
            ins_flat // a.ncols,
            ins_flat % a.ncols,
            rng.standard_normal(ins_flat.size).astype(np.float32),
        ),
        deletes=(a.coo_rows()[del_idx], a.colind64()[del_idx]),
        updates=(
            a.coo_rows()[upd_idx],
            a.colind64()[upd_idx],
            rng.standard_normal(third).astype(np.float32),
        ),
    )

    out = apply_delta(a, delta)
    rows, cols, vals = out.coo_rows(), out.colind64(), out.values

    def incremental():
        return apply_delta(a, delta)

    def rebuild():
        ref = csr_from_coo(rows, cols, vals, shape=a.shape)
        ref.row_lengths(), ref.rowptr64(), ref.colind64(), ref.coo_rows()
        access_profile(ref)
        return ref

    # The incremental side is sub-5ms, so its best-of needs more reps to
    # converge past cache/frequency warmup; the rebuild side is ~5x
    # longer per rep and settles quickly.
    incremental_s = best_of(incremental, reps=3 * reps, warmup=3)
    rebuild_s = best_of(rebuild, reps=reps)
    parity = out.fingerprint() == rebuild().fingerprint()
    return {
        "graph": {"kind": "power_law", "m": m, "nnz": int(a.nnz)},
        "batch": {"inserts": int(ins_flat.size), "deletes": third,
                  "updates": third},
        "incremental_s": incremental_s,
        "rebuild_s": rebuild_s,
        "speedup": rebuild_s / incremental_s if incremental_s > 0 else float("inf"),
        "parity": parity,
    }


def bench_disk_cache_sweep() -> Dict[str, Any]:
    """Cold vs. disk-warm sweep through a throwaway :class:`DiskCache`.

    Runs one small sweep cold, wipes the in-process memos (simulating a
    fresh process), and re-runs it against the same cache directory.  The
    warm run must recompute nothing (``memo_misses == 0``) and reproduce
    every cell byte for byte — the same contract CI asserts on the real
    ``BENCH_spmm.json`` regeneration.
    """
    import shutil
    import tempfile

    from repro.bench.diskcache import DiskCache, use_disk_cache
    from repro.bench.runner import clear_sweep_cache, run_sweep_with_stats
    from repro.core import CRCSpMM, GESpMM, SimpleSpMM
    from repro.gpusim import GTX_1080TI
    from repro.gpusim.kernel import clear_estimate_memo

    kernels = [SimpleSpMM(), CRCSpMM(), GESpMM()]
    graphs = {"pl": _bench_graph(4_000, 120_000)}
    widths = [32, 250]
    gpus = [GTX_1080TI]
    root = tempfile.mkdtemp(prefix="repro-diskcache-bench-")
    try:
        cache = DiskCache(root)
        with use_disk_cache(cache):
            clear_sweep_cache()
            clear_estimate_memo()
            t0 = time.perf_counter()
            cold, _ = run_sweep_with_stats(kernels, graphs, widths, gpus)
            cold_s = time.perf_counter() - t0
            clear_sweep_cache()
            clear_estimate_memo()  # simulate a fresh process
            t0 = time.perf_counter()
            warm, host_warm = run_sweep_with_stats(kernels, graphs, widths, gpus)
            warm_s = time.perf_counter() - t0
        dump = lambda rs: json.dumps([r.__dict__ for r in rs], sort_keys=True)
        return {
            "cells": len(cold),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_memo_misses": host_warm.memo_misses,
            "disk_hits": cache.counters()["hits"],
            "disk_invalidations": cache.counters()["invalidations"],
            "byte_identical": dump(warm) == dump(cold),
        }
    finally:
        clear_sweep_cache()
        clear_estimate_memo()
        shutil.rmtree(root, ignore_errors=True)


def bench_corpus_stream(
    n_specs: int = 1000, shards: int = 10, memo_limit: int = 256
) -> Dict[str, Any]:
    """Stream a ≥``n_specs``-matrix generator-defined corpus through
    :func:`repro.bench.corpus.run_corpus_sweep` and verify peak memory
    stays **flat across shards** — the bounded-memory contract.

    ``tracemalloc`` tracks Python-level allocations (NumPy registers its
    buffers with it), with the peak reset at every shard boundary via the
    progress callback.  If matrices, derived caches, or memo entries
    leaked across shards, later per-shard peaks would climb;
    ``peak_ratio`` is the max later-shard peak over the first shard's
    peak, and the floor asserted in ``benchmarks/bench_host_executor.py``
    requires it to stay near 1.
    """
    import tracemalloc

    from repro.bench.corpus import dlmc_corpus, run_corpus_sweep
    from repro.core import GESpMM, MergePathSpMM
    from repro.gpusim import GTX_1080TI

    # ~1000 tiny DLMC-style specs: 3 methods x 1 shape x 6 sparsities
    # x enough seeds.  Matrices are 64x64 so the whole stream runs in
    # seconds while still exercising every corpus code path.
    seeds = range(-(-n_specs // 18))  # 18 specs per seed
    specs = list(dlmc_corpus(shapes=((64, 64),), seeds=list(seeds)))[:n_specs]
    shard_size = -(-len(specs) // shards)

    peaks: list = []

    def sample(_idx: int, _total: int, _restored: bool) -> None:
        _cur, peak = tracemalloc.get_traced_memory()
        peaks.append(peak)
        tracemalloc.reset_peak()

    started = not tracemalloc.is_tracing()
    if started:
        tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        t0 = time.perf_counter()
        res = run_corpus_sweep(
            specs,
            [GESpMM(), MergePathSpMM()],
            [16],
            [GTX_1080TI],
            shard_size=shard_size,
            memo_limit=memo_limit,
            progress=sample,
        )
        wall_s = time.perf_counter() - t0
    finally:
        if started:
            tracemalloc.stop()
    first = peaks[0] if peaks else 1
    later = max(peaks[1:], default=first)
    return {
        "matrices": res.host.matrices,
        "shards": res.host.shards_total,
        "cells": res.host.cells_computed + res.host.cells_restored,
        "wall_s": wall_s,
        "first_shard_peak_bytes": first,
        "max_later_peak_bytes": later,
        "peak_ratio": later / first if first else float("inf"),
    }


#: Tiled-executor benchmark graph: wide features (N=256) on a power-law
#: graph whose (nnz, N) contributions array blows past the LLC — the
#: regime the column-tiled executor targets (the host analogue of the
#: paper's Coarse-grained Warp Merging: load the sparse row once, reuse
#: it across feature tiles).
_TILED_M, _TILED_NNZ, _TILED_N = 10_000, 400_000, 256
#: Peak-memory benchmark graph + widths: the tiled executor's transient
#: footprint is O(nnz*T) regardless of N, so the wide/narrow peak ratio
#: must stay near 1 where the untiled path's grows like wide/narrow.
_PEAK_M, _PEAK_NNZ = 10_000, 100_000
_PEAK_NARROW, _PEAK_WIDE = 64, 1024


def bench_tiled_spmm(
    m: int = _TILED_M, nnz: int = _TILED_NNZ, n: int = _TILED_N, reps: int = 5
) -> Dict[str, Any]:
    """Column-tiled vs. untiled wide-N SpMM (engine on for both sides).

    Interleaved best-of under the tiling toggle, same discipline as
    :func:`_toggle_times`; the untiled side is the pre-tiling engine body
    (one O(nnz*N) contributions temporary), the tiled side streams
    ``tile_width_for``-sized column tiles through the pooled workspace.
    """
    from repro.sparse.segment import tile_width_for, use_tiling

    a = _bench_graph(m, nnz, seed=5)
    b = np.random.default_rng(1).standard_normal((a.ncols, n)).astype(np.float32)
    fn = lambda: reference_spmm_like(a, b, PLUS_TIMES)
    best = {False: float("inf"), True: float("inf")}
    for tiled in (False, True):
        with use_tiling(tiled):
            fn()
    for _ in range(reps):
        for tiled in (False, True):
            with use_tiling(tiled):
                t0 = time.perf_counter()
                fn()
                best[tiled] = min(best[tiled], time.perf_counter() - t0)
    untiled_s, tiled_s = best[False], best[True]
    return {
        "graph": {"kind": "power_law", "m": m, "nnz": int(a.nnz)},
        "n": n,
        "tile_width": tile_width_for(a.nnz, n),
        "untiled_s": untiled_s,
        "tiled_s": tiled_s,
        "speedup": untiled_s / tiled_s if tiled_s > 0 else float("inf"),
    }


def bench_tiled_peak(
    m: int = _PEAK_M,
    nnz: int = _PEAK_NNZ,
    narrow: int = _PEAK_NARROW,
    wide: int = _PEAK_WIDE,
) -> Dict[str, Any]:
    """Transient peak memory of one SpMM at a narrow vs. a wide N.

    ``tracemalloc`` traces only the call itself: the operand and the
    output are preallocated outside the traced window (the serving-layer
    steady state ``segment_spmm_like``'s ``out=`` exists for), and the
    workspace pool is cleared before each measurement so every width pays
    its own workspace allocation.  Tiled peaks are O(nnz*T) — flat in N —
    so ``tiled.peak_ratio`` stays near 1 while ``untiled.peak_ratio``
    tracks ``wide / narrow`` (~16x at the defaults).
    """
    import tracemalloc

    from repro.sparse.segment import (
        clear_workspace_pool,
        segment_spmm_like,
        use_tiling,
    )

    a = _bench_graph(m, nnz, seed=6)
    # Derived arrays (colind64, rowptr64, row_lengths) are process-lived
    # caches, not per-call transients: build them outside the window.
    a.colind64(), a.rowptr64(), a.row_lengths(), a.coo_rows()
    rng = np.random.default_rng(2)
    operands = {
        n: (
            rng.standard_normal((a.ncols, n)).astype(np.float32),
            np.empty((a.nrows, n), dtype=np.float32),
        )
        for n in (narrow, wide)
    }

    def peak_bytes(n: int, tiled: bool) -> int:
        b, out = operands[n]
        clear_workspace_pool()
        started = not tracemalloc.is_tracing()
        if started:
            tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            with use_tiling(tiled):
                segment_spmm_like(a, b, PLUS_TIMES, out=out)
            _cur, peak = tracemalloc.get_traced_memory()
        finally:
            if started:
                tracemalloc.stop()
        clear_workspace_pool()
        return peak

    result: Dict[str, Any] = {
        "graph": {"kind": "power_law", "m": m, "nnz": int(a.nnz)},
        "narrow_n": narrow,
        "wide_n": wide,
    }
    for label, tiled in (("tiled", True), ("untiled", False)):
        lo, hi = peak_bytes(narrow, tiled), peak_bytes(wide, tiled)
        result[label] = {
            "narrow_peak_bytes": lo,
            "wide_peak_bytes": hi,
            "peak_ratio": hi / lo if lo else float("inf"),
        }
    return result


def run_host_microbench(
    reps: int = 5, train_reps: int = 3, epochs: int = 3
) -> Dict[str, Any]:
    """All host microbenchmarks; the ``run.host.microbench`` payload.

    ``delta_apply`` runs first: its incremental side is the only
    sub-5ms timing here, and the other benches' large temporary
    allocations leave the process heap in a state (memory returned to
    the OS, page-faulted back per rep) that taxes it by a constant
    ~1ms — measuring it on a fresh heap keeps the floor stable.
    """
    return {
        "reduction_graph": {"kind": "power_law", "m": _RED_M, "nnz": _RED_NNZ},
        "gcn_graph": {"kind": "power_law", "m": _GCN_M, "nnz": _GCN_NNZ,
                      "feature_dim": _GCN_FEATURES},
        "delta_apply": bench_delta_apply(),
        "spmm_plus": bench_spmm_like(PLUS_TIMES, reps=reps),
        "spmm_max": bench_spmm_like(MAX_TIMES, reps=reps),
        "tiled_spmm": bench_tiled_spmm(reps=reps),
        "tiled_peak": bench_tiled_peak(),
        "aggregate_max": bench_aggregate_max(),
        "gcn_train": bench_gcn_training(epochs=epochs, reps=train_reps),
        "count_grid": bench_count_grid(),
        "disk_cache": bench_disk_cache_sweep(),
        "corpus_stream": bench_corpus_stream(),
    }


def update_bench_json_host(
    results: Dict[str, Any], path: PathLike = "BENCH_spmm.json"
) -> Optional[Dict[str, Any]]:
    """Record microbench ``results`` under ``run.host.microbench``.

    Rewrites with the same ``indent=2, sort_keys=True`` layout as
    :func:`repro.bench.telemetry.write_bench_json`.  Returns the updated
    document, or None when ``path`` does not exist (fresh checkouts
    without telemetry artifacts: benchmarks still run, nothing to update).
    """
    p = Path(path)
    if not p.exists():
        return None
    doc = json.loads(p.read_text())
    host = doc.setdefault("run", {}).setdefault("host", {})
    host["microbench"] = results
    p.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def format_result_line(name: str, r: Dict[str, Any]) -> Optional[str]:
    """One aligned ``slow xx ms  fast xx ms  N.NNx`` line for any A/B
    microbench dict (``scatter_s``/``segment_s``, ``oracle_s``/
    ``profile_s``, ...); None when ``r`` is not such a dict."""
    if not isinstance(r, dict) or "speedup" not in r:
        return None
    sides = [k for k, v in r.items()
             if k.endswith("_s") and isinstance(v, (int, float))]
    if len(sides) != 2:
        return None
    slow, fast = sorted(sides, key=r.get, reverse=True)
    return (f"{name:15s} {slow[:-2]:8s} {r[slow] * 1e3:8.2f} ms   "
            f"{fast[:-2]:8s} {r[fast] * 1e3:8.2f} ms   {r['speedup']:5.2f}x")


def main() -> int:  # pragma: no cover - convenience entry point
    results = run_host_microbench()
    for name, r in results.items():
        line = format_result_line(name, r)
        if line:
            print(line)
    dc = results["disk_cache"]
    print(f"disk_cache      cold {dc['cold_s'] * 1e3:8.2f} ms   "
          f"warm {dc['warm_s'] * 1e3:8.2f} ms   "
          f"misses {dc['warm_memo_misses']}  identical {dc['byte_identical']}")
    tp = results["tiled_peak"]
    print(f"tiled_peak      N {tp['narrow_n']}->{tp['wide_n']}   "
          f"tiled ratio {tp['tiled']['peak_ratio']:.2f}x   "
          f"untiled ratio {tp['untiled']['peak_ratio']:.2f}x")
    cs = results["corpus_stream"]
    print(f"corpus_stream   {cs['matrices']} matrices / {cs['shards']} shards "
          f"in {cs['wall_s']:.2f}s   peak ratio {cs['peak_ratio']:.2f} "
          f"(first {cs['first_shard_peak_bytes']}, "
          f"later max {cs['max_later_peak_bytes']})")
    updated = update_bench_json_host(results)
    if updated is not None:
        print("recorded under run.host.microbench in BENCH_spmm.json")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

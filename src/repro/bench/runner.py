"""Benchmark harness utilities shared by the per-table/figure scripts.

Provides the sweep runner (kernels x graphs x feature widths x GPUs),
geometric-mean aggregation (the paper reports geometric means,
Section V-A1), and plain-text table/series rendering so each benchmark
prints rows directly comparable to the paper's artifact.
"""

from __future__ import annotations

import math
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.bench.diskcache import get_disk_cache
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import SpMMKernel
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import flops_of_spmm

__all__ = [
    "geomean",
    "KernelResult",
    "SweepHostStats",
    "run_sweep",
    "run_sweep_with_stats",
    "clear_sweep_cache",
    "invalidate_sweep_cells_for",
    "set_sweep_cache_limit",
    "get_sweep_cache_limit",
    "csr_fingerprint",
    "speedup_series",
    "format_table",
    "format_series",
    "bar_chart",
]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for per-matrix speedups).

    Non-positive values cannot enter a geometric mean and are dropped —
    but never silently: each drop bumps the ``bench.geomean.dropped``
    counter and emits a ``geomean.dropped_nonpositive`` event, so a
    pathological sweep (a zero/negative speedup) is visible in telemetry
    instead of silently skewing the gate's geomean comparison.
    """
    values = list(values)
    vals = [v for v in values if v > 0]
    dropped = len(values) - len(vals)
    if dropped:
        obs.get_registry().counter("bench.geomean.dropped").inc(dropped)
        obs.event(
            "geomean.dropped_nonpositive",
            dropped=dropped,
            kept=len(vals),
        )
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass(frozen=True)
class KernelResult:
    """One (kernel, graph, N, GPU) measurement.

    ``attribution`` carries the bottleneck-attribution block of the
    simulated launch (``KernelTiming.attribution()``: binding ceiling,
    per-ceiling breakdown in ms, efficiency factors) — the "why" behind
    ``time_s`` that ``BENCH_spmm.json`` cells and ``repro-bench report``
    surface.  None only for results built by legacy callers.
    """

    kernel: str
    graph: str
    n: int
    gpu: str
    time_s: float
    gflops: float
    attribution: Optional[Dict[str, Any]] = field(default=None, compare=True)


@dataclass(frozen=True)
class SweepHostStats:
    """Host-side (wall-clock) throughput of one ``run_sweep`` call —
    tracking the simulator's own speed, not the simulated devices'."""

    wall_s: float
    cells: int
    jobs: int
    memo_hits: int
    memo_misses: int

    @property
    def cells_per_s(self) -> float:
        return self.cells / self.wall_s if self.wall_s > 0 else float("inf")

    def as_run_meta(self) -> Dict[str, object]:
        """The ``run.host`` metadata block for ``BENCH_spmm.json`` (gate
        ignores ``run``, so this wall-clock data never trips drift)."""
        return {
            "wall_s": self.wall_s,
            "cells": self.cells,
            "cells_per_s": self.cells_per_s,
            "jobs": self.jobs,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
        }


def csr_fingerprint(a: CSRMatrix) -> str:
    """Content hash of a CSR matrix: the graph component of the sweep
    memoization key.  Two structurally identical matrices (same shape,
    structure, and values) share a fingerprint regardless of identity.

    Delegates to :meth:`CSRMatrix.fingerprint`, which caches the digest
    on the (immutable) matrix; kept as a re-export for callers keyed on
    the PR-3 sweep-memo API.
    """
    return a.fingerprint()


#: (kernel.cache_key(), csr_fingerprint, n, gpu.name)
#:   -> (time_s, gflops, attribution)
#: Recency-ordered so an optional LRU cap (corpus-scale streaming) can
#: evict the coldest cells; unbounded by default.
_SWEEP_CACHE: "OrderedDict[tuple, Tuple[float, float, Optional[Dict[str, Any]]]]" = (
    OrderedDict()
)
_SWEEP_CACHE_LOCK = threading.Lock()
#: None = unlimited — the historical default, unchanged for existing
#: sweeps.  ``repro.bench.corpus`` caps it while streaming a corpus.
_SWEEP_CACHE_LIMIT: Optional[int] = None


def clear_sweep_cache() -> None:
    """Drop all memoized sweep cells (for tests and long-lived hosts)."""
    with _SWEEP_CACHE_LOCK:
        _SWEEP_CACHE.clear()


def invalidate_sweep_cells_for(fingerprint: str) -> int:
    """Drop every memoized sweep cell keyed on one matrix fingerprint.

    The targeted alternative to :func:`clear_sweep_cache` for dynamic
    graphs (``repro.sparse.delta``): only the superseded matrix's cells
    — ``key[1]`` is the fingerprint component — are reclaimed.  Returns
    the number dropped (also counted as ``sweep.memo.invalidations``).
    """
    with _SWEEP_CACHE_LOCK:
        stale = [k for k in _SWEEP_CACHE if k[1] == fingerprint]
        for k in stale:
            del _SWEEP_CACHE[k]
    if stale:
        obs.get_registry().counter("sweep.memo.invalidations").inc(len(stale))
    return len(stale)


def set_sweep_cache_limit(limit: Optional[int]) -> Optional[int]:
    """Cap the sweep memo at ``limit`` cells, LRU-evicting beyond it
    (``sweep.memo.evictions`` counts the drops); ``None`` removes the cap
    (the default).  Returns the previous limit so callers can restore it.
    """
    global _SWEEP_CACHE_LIMIT
    if limit is not None and limit < 1:
        raise ValueError(f"limit must be a positive int or None, got {limit!r}")
    with _SWEEP_CACHE_LOCK:
        prev = _SWEEP_CACHE_LIMIT
        _SWEEP_CACHE_LIMIT = limit
        evicted = _trim_sweep_cache_locked()
    if evicted:
        obs.get_registry().counter("sweep.memo.evictions").inc(evicted)
    return prev


def get_sweep_cache_limit() -> Optional[int]:
    """The current sweep-memo cell cap (None = unlimited)."""
    with _SWEEP_CACHE_LOCK:
        return _SWEEP_CACHE_LIMIT


def _trim_sweep_cache_locked() -> int:
    """Evict LRU cells down to the cap; caller holds the lock."""
    evicted = 0
    if _SWEEP_CACHE_LIMIT is not None:
        while len(_SWEEP_CACHE) > _SWEEP_CACHE_LIMIT:
            _SWEEP_CACHE.popitem(last=False)
            evicted += 1
    return evicted


def _sweep_cache_put(
    memo_key: tuple, cell: Tuple[float, float, Optional[Dict[str, Any]]]
) -> None:
    """Insert into the sweep memo, LRU-trimming past the cap."""
    with _SWEEP_CACHE_LOCK:
        _SWEEP_CACHE[memo_key] = cell
        _SWEEP_CACHE.move_to_end(memo_key)
        evicted = _trim_sweep_cache_locked()
    if evicted:
        obs.get_registry().counter("sweep.memo.evictions").inc(evicted)


def _cell_values(
    kernel: SpMMKernel,
    graph: CSRMatrix,
    n: int,
    gpu: GPUSpec,
    memo_key: Optional[tuple],
) -> Tuple[float, float, Optional[Dict[str, Any]], bool]:
    """(time_s, gflops, attribution, was_memo_hit) for one sweep cell.

    Consults the in-process memo first, then — when a disk cache is
    active (``--cache-dir`` / ``REPRO_CACHE_DIR``) — the cross-process
    ``cell`` store under the same content-addressed key.  A disk hit
    counts as a memo hit: the cell was served, not recomputed.
    """
    disk = get_disk_cache() if memo_key is not None else None
    if memo_key is not None:
        with _SWEEP_CACHE_LOCK:
            hit = _SWEEP_CACHE.get(memo_key)
            if hit is not None:
                _SWEEP_CACHE.move_to_end(memo_key)  # refresh LRU recency
        if hit is not None:
            return hit[0], hit[1], hit[2], True
        if disk is not None:
            cell = disk.get_cell(memo_key)
            if cell is not None:
                _sweep_cache_put(memo_key, cell)
                return cell[0], cell[1], cell[2], True
    t = kernel.estimate(graph, n, gpu)
    gflops = t.gflops(flops_of_spmm(graph, n))
    attribution = t.attribution()
    if memo_key is not None:
        _sweep_cache_put(memo_key, (t.time_s, gflops, attribution))
        if disk is not None:
            disk.put_cell(memo_key, t.time_s, gflops, attribution)
    return t.time_s, gflops, attribution, False


def run_sweep_with_stats(
    kernels: Sequence[SpMMKernel],
    graphs: Dict[str, CSRMatrix],
    widths: Sequence[int],
    gpus: Sequence[GPUSpec],
    progress: Optional[Callable[[str], None]] = None,
    quiet: bool = True,
    jobs: int = 1,
    memoize: bool = True,
) -> Tuple[List[KernelResult], SweepHostStats]:
    """:func:`run_sweep` plus host-side throughput statistics.

    ``jobs > 1`` fans the cell computations out over a thread pool.  The
    result list is byte-identical to the serial one for any ``jobs``:
    cells are indexed up front in serial order, computed in any order,
    and re-assembled by index; each computation is a deterministic pure
    function of ``(kernel config, graph, n, gpu)``.  The tracer is
    detached during the parallel phase (``Tracer`` is not thread-safe)
    and every span/gauge/event is then emitted serially in exactly the
    serial order, from the computed values.

    ``memoize`` consults a process-wide content-addressed cache keyed by
    ``(kernel.cache_key(), csr_fingerprint(graph), n, gpu.name)`` — so
    repeated cells (gate regeneration, repeated benchmark scripts) hit
    memory instead of recomputing.  See ``docs/PERFORMANCE.md``.
    """
    t0 = time.perf_counter()
    registry = obs.get_registry()
    jobs = max(int(jobs), 1)

    prints: Dict[str, str] = (
        {gname: csr_fingerprint(graph) for gname, graph in graphs.items()}
        if memoize
        else {}
    )

    def memo_key(kernel: SpMMKernel, gname: str, n: int, gpu: GPUSpec):
        if not memoize:
            return None
        return (kernel.cache_key(), prints[gname], int(n), gpu.name)

    # Cell work-list in serial emission order.
    cells = [
        (gpu, gname, graph, n, kernel)
        for gpu in gpus
        for gname, graph in graphs.items()
        for n in widths
        for kernel in kernels
    ]

    values: List[Tuple[float, float, Optional[Dict[str, Any]], bool]] = (
        [None] * len(cells)  # type: ignore[list-item]
    )
    if jobs > 1 and len(cells) > 1:
        prev = obs.set_tracer(None)
        try:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    pool.submit(
                        _cell_values, kernel, graph, n, gpu,
                        memo_key(kernel, gname, n, gpu),
                    )
                    for gpu, gname, graph, n, kernel in cells
                ]
                for i, fut in enumerate(futures):
                    values[i] = fut.result()
        finally:
            obs.set_tracer(prev)

    out: List[KernelResult] = []
    hits = misses = 0
    i = 0
    for gpu in gpus:
        for gname, graph in graphs.items():
            with obs.span("sweep.graph", graph=gname, gpu=gpu.name):
                for n in widths:
                    for kernel in kernels:
                        with obs.span("sweep.cell", kernel=kernel.name, graph=gname,
                                      n=int(n), gpu=gpu.name) as cell:
                            if values[i] is None:
                                values[i] = _cell_values(
                                    kernel, graph, n, gpu,
                                    memo_key(kernel, gname, n, gpu),
                                )
                            time_s, gflops, attribution, was_hit = values[i]
                            i += 1
                            obs.add_sim_time(time_s)
                            if cell is not None:
                                cell.attrs["time_ms"] = time_s * 1e3
                                cell.attrs["gflops"] = gflops
                                if attribution is not None:
                                    cell.attrs["bound_by"] = attribution["bound_by"]
                        hits += was_hit
                        misses += not was_hit
                        labels = dict(kernel=kernel.name, graph=gname, n=int(n),
                                      gpu=gpu.name)
                        registry.gauge("sweep.cell.time_ms", **labels).set(time_s * 1e3)
                        registry.gauge("sweep.cell.gflops", **labels).set(gflops)
                        out.append(
                            KernelResult(
                                kernel=kernel.name,
                                graph=gname,
                                n=n,
                                gpu=gpu.name,
                                time_s=time_s,
                                gflops=gflops,
                                attribution=attribution,
                            )
                        )
            obs.event("sweep.graph.done", graph=gname, gpu=gpu.name)
            if progress:
                progress(gname)
            if not quiet:
                print(f"[sweep] {gname} done on {gpu.name}", file=sys.stderr)
    registry.counter("sweep.memo.hits").inc(hits)
    registry.counter("sweep.memo.misses").inc(misses)
    stats = SweepHostStats(
        wall_s=time.perf_counter() - t0,
        cells=len(cells),
        jobs=jobs,
        memo_hits=hits,
        memo_misses=misses,
    )
    return out, stats


def run_sweep(
    kernels: Sequence[SpMMKernel],
    graphs: Dict[str, CSRMatrix],
    widths: Sequence[int],
    gpus: Sequence[GPUSpec],
    progress: Optional[Callable[[str], None]] = None,
    quiet: bool = True,
    jobs: int = 1,
    memoize: bool = True,
) -> List[KernelResult]:
    """Estimate every kernel on every (graph, N, GPU) combination.

    Every cell runs inside a ``sweep.cell`` span and lands in the metrics
    registry as a series keyed by ``(kernel, graph, n, gpu)``, so a sweep
    is fully reconstructable from ``--trace-out`` / ``--metrics-out``
    dumps.  Progress reporting goes through the span layer (an event per
    finished graph) and additionally through the legacy ``progress``
    callback when one is given; pass ``quiet=False`` to also narrate
    per-graph progress on stderr.  The default is silent, keeping
    benchmark scripts' stdout byte-identical.

    ``jobs`` parallelizes the cell computations (deterministic result
    order for any value) and ``memoize`` reuses previously computed cells
    across calls; see :func:`run_sweep_with_stats` for details and for
    host-side throughput reporting.
    """
    results, _ = run_sweep_with_stats(
        kernels, graphs, widths, gpus,
        progress=progress, quiet=quiet, jobs=jobs, memoize=memoize,
    )
    return results


def speedup_series(
    results: List[KernelResult],
    numerator: str,
    denominator: str,
    gpu: str,
    n: int,
) -> Dict[str, float]:
    """Per-graph speedup of ``denominator``'s time over ``numerator``'s
    (i.e. how much faster ``numerator`` is), for one (GPU, N)."""
    num = {r.graph: r.time_s for r in results if r.kernel == numerator and r.gpu == gpu and r.n == n}
    den = {r.graph: r.time_s for r in results if r.kernel == denominator and r.gpu == gpu and r.n == n}
    return {g: den[g] / num[g] for g in num if g in den and num[g] > 0}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_series(name: str, series: Dict[str, float], fmt: str = "{:.3f}") -> str:
    """Render a named per-graph series on one line per item."""
    lines = [name]
    for k, v in series.items():
        lines.append(f"  {k:28s} {fmt.format(v)}")
    return "\n".join(lines)


def bar_chart(series: Dict[str, float], width: int = 40, unit: Optional[float] = None,
              label: str = "") -> str:
    """ASCII bar chart — the textual rendering of the paper's figures."""
    if not series:
        return "(no data)"
    top = unit or max(series.values())
    if top <= 0:
        top = 1.0
    lines = [label] if label else []
    for k, v in series.items():
        n_bar = max(int(round(width * v / top)), 0)
        lines.append(f"  {k:28s} |{'#' * n_bar}{' ' * (width - n_bar)}| {v:.3f}")
    return "\n".join(lines)

"""Benchmark harness utilities shared by the per-table/figure scripts.

Provides the sweep runner (kernels x graphs x feature widths x GPUs),
geometric-mean aggregation (the paper reports geometric means,
Section V-A1), and plain-text table/series rendering so each benchmark
prints rows directly comparable to the paper's artifact.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import SpMMKernel
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import flops_of_spmm

__all__ = [
    "geomean",
    "KernelResult",
    "run_sweep",
    "speedup_series",
    "format_table",
    "format_series",
    "bar_chart",
]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for per-matrix speedups)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass(frozen=True)
class KernelResult:
    """One (kernel, graph, N, GPU) measurement."""

    kernel: str
    graph: str
    n: int
    gpu: str
    time_s: float
    gflops: float


def run_sweep(
    kernels: Sequence[SpMMKernel],
    graphs: Dict[str, CSRMatrix],
    widths: Sequence[int],
    gpus: Sequence[GPUSpec],
    progress: Optional[Callable[[str], None]] = None,
    quiet: bool = True,
) -> List[KernelResult]:
    """Estimate every kernel on every (graph, N, GPU) combination.

    Every cell runs inside a ``sweep.cell`` span and lands in the metrics
    registry as a series keyed by ``(kernel, graph, n, gpu)``, so a sweep
    is fully reconstructable from ``--trace-out`` / ``--metrics-out``
    dumps.  Progress reporting goes through the span layer (an event per
    finished graph) and additionally through the legacy ``progress``
    callback when one is given; pass ``quiet=False`` to also narrate
    per-graph progress on stderr.  The default is silent, keeping
    benchmark scripts' stdout byte-identical.
    """
    registry = obs.get_registry()
    out: List[KernelResult] = []
    for gpu in gpus:
        for gname, graph in graphs.items():
            with obs.span("sweep.graph", graph=gname, gpu=gpu.name):
                for n in widths:
                    for kernel in kernels:
                        with obs.span("sweep.cell", kernel=kernel.name, graph=gname,
                                      n=int(n), gpu=gpu.name) as cell:
                            t = kernel.estimate(graph, n, gpu)
                            gflops = t.gflops(flops_of_spmm(graph, n))
                            obs.add_sim_time(t.time_s)
                            if cell is not None:
                                cell.attrs["time_ms"] = t.time_s * 1e3
                                cell.attrs["gflops"] = gflops
                        labels = dict(kernel=kernel.name, graph=gname, n=int(n),
                                      gpu=gpu.name)
                        registry.gauge("sweep.cell.time_ms", **labels).set(t.time_s * 1e3)
                        registry.gauge("sweep.cell.gflops", **labels).set(gflops)
                        out.append(
                            KernelResult(
                                kernel=kernel.name,
                                graph=gname,
                                n=n,
                                gpu=gpu.name,
                                time_s=t.time_s,
                                gflops=gflops,
                            )
                        )
            obs.event("sweep.graph.done", graph=gname, gpu=gpu.name)
            if progress:
                progress(gname)
            if not quiet:
                print(f"[sweep] {gname} done on {gpu.name}", file=sys.stderr)
    return out


def speedup_series(
    results: List[KernelResult],
    numerator: str,
    denominator: str,
    gpu: str,
    n: int,
) -> Dict[str, float]:
    """Per-graph speedup of ``denominator``'s time over ``numerator``'s
    (i.e. how much faster ``numerator`` is), for one (GPU, N)."""
    num = {r.graph: r.time_s for r in results if r.kernel == numerator and r.gpu == gpu and r.n == n}
    den = {r.graph: r.time_s for r in results if r.kernel == denominator and r.gpu == gpu and r.n == n}
    return {g: den[g] / num[g] for g in num if g in den and num[g] > 0}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_series(name: str, series: Dict[str, float], fmt: str = "{:.3f}") -> str:
    """Render a named per-graph series on one line per item."""
    lines = [name]
    for k, v in series.items():
        lines.append(f"  {k:28s} {fmt.format(v)}")
    return "\n".join(lines)


def bar_chart(series: Dict[str, float], width: int = 40, unit: Optional[float] = None,
              label: str = "") -> str:
    """ASCII bar chart — the textual rendering of the paper's figures."""
    if not series:
        return "(no data)"
    top = unit or max(series.values())
    if top <= 0:
        top = 1.0
    lines = [label] if label else []
    for k, v in series.items():
        n_bar = max(int(round(width * v / top)), 0)
        lines.append(f"  {k:28s} |{'#' * n_bar}{' ' * (width - n_bar)}| {v:.3f}")
    return "\n".join(lines)

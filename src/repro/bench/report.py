"""Paper-vs-measured comparison rows for EXPERIMENTS.md.

Every benchmark script declares what the paper reports for its artifact
and what the model measured; :func:`comparison` renders the standard
three-column row so EXPERIMENTS.md and benchmark stdout stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["PaperClaim", "comparison", "render_claims"]


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative claim from the paper and our measurement of it."""

    artifact: str  # e.g. "Table VII / GTX1080Ti / vs cuSPARSE / N=512"
    paper_value: str  # what the paper reports
    measured: str  # what the simulator reproduces
    holds: bool  # does the qualitative shape hold?
    note: str = ""


def comparison(artifact: str, paper_value: str, measured: str, holds: bool, note: str = "") -> PaperClaim:
    return PaperClaim(artifact, paper_value, measured, holds, note)


def render_claims(claims: List[PaperClaim], title: Optional[str] = None) -> str:
    lines = []
    if title:
        lines.append(f"== {title} ==")
    w0 = max((len(c.artifact) for c in claims), default=8)
    w1 = max((len(c.paper_value) for c in claims), default=5)
    w2 = max((len(c.measured) for c in claims), default=8)
    lines.append(f"{'artifact':{w0}s}  {'paper':{w1}s}  {'measured':{w2}s}  shape")
    for c in claims:
        mark = "OK" if c.holds else "DEVIATES"
        note = f"  ({c.note})" if c.note else ""
        lines.append(f"{c.artifact:{w0}s}  {c.paper_value:{w1}s}  {c.measured:{w2}s}  {mark}{note}")
    return "\n".join(lines)

"""Corpus-scale streaming sweeps: lazy matrix specs, sharded execution,
resumable checkpoints, and win-rate roll-ups.

The sweep runner (``repro.bench.runner``) materializes every matrix up
front in a ``Dict[str, CSRMatrix]`` — fine for the paper's dozen
benchmark graphs, hopeless for corpus-scale studies like the Deep
Learning Matrix Collection (DLMC: thousands of pruned-DNN weight
matrices at 50–98% sparsity).  This module adds the missing layer:

* :class:`MatrixSpec` — a frozen, hashable *description* of a matrix
  (generator kind + parameters, or an on-disk file).  Specs are a few
  hundred bytes; the matrix itself is built on demand inside the shard
  that needs it and dropped afterwards, so a corpus of thousands of
  matrices never lives in memory at once.
* Corpus factories — :func:`dlmc_corpus` (magnitude / random /
  structured pruning across a sparsity ladder, the DLMC taxonomy),
  :func:`graph_corpus` (the existing graph generators), and
  :func:`corpus_from_dir` (``.npz`` / MatrixMarket files), plus named
  :data:`CORPUS_PRESETS`.
* :func:`run_corpus_sweep` — partitions the corpus into shards and runs
  each through :func:`repro.bench.runner.run_sweep_with_stats` with
  bounded peak memory: per-shard matrices are built lazily, their
  derived-array caches dropped (:meth:`CSRMatrix.clear_derived`), and
  the process-wide estimate/sweep memos capped (LRU) during the run and
  cleared at shard boundaries.  When a :class:`~repro.bench.diskcache.
  DiskCache` is active each completed shard is checkpointed under a
  content-addressed key, so a killed sweep resumes with **zero
  recomputation** and a **byte-identical roll-up**: restored shards
  replay the exact cell payload the interrupted run wrote (floats
  round-trip exactly through JSON), and the roll-up accumulator
  consumes computed and restored shards through the same representation.
* The roll-up — schema ``repro/corpus-rollup/v1``: win counts and
  win-rates per kernel, overall and per structural regime
  (:func:`repro.sparse.stats.graph_regime` + mean row-imbalance) and
  per sparsity band.  Host-varying data (wall clock, restored/computed
  split) lives in :class:`CorpusHostStats`, *outside* the roll-up, so
  determinism survives interruption.

See docs/PERFORMANCE.md "Corpus sweeps".
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.bench.diskcache import get_disk_cache
from repro.bench.runner import (
    clear_sweep_cache,
    run_sweep_with_stats,
    set_sweep_cache_limit,
)
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import (
    SpMMKernel,
    clear_estimate_memo,
    set_estimate_memo_limit,
)
from repro.sparse.csr import CSRMatrix
from repro.sparse.generators import (
    banded_random,
    power_law,
    pruned_magnitude,
    pruned_random,
    pruned_structured,
    rmat,
    uniform_random,
)
from repro.sparse.io import load_npz, read_matrix_market
from repro.sparse.stats import graph_regime, row_imbalance

__all__ = [
    "ROLLUP_SCHEMA",
    "MatrixSpec",
    "dlmc_corpus",
    "graph_corpus",
    "corpus_from_dir",
    "CORPUS_PRESETS",
    "corpus_preset",
    "partition_shards",
    "CorpusHostStats",
    "CorpusSweepResult",
    "run_corpus_sweep",
    "format_rollup",
]

PathLike = Union[str, Path]

ROLLUP_SCHEMA = "repro/corpus-rollup/v1"

#: DLMC's sparsity ladder (Gale et al.; PyTorch benchmarks/sparse/dlmc).
DLMC_SPARSITIES = (0.5, 0.7, 0.8, 0.9, 0.95, 0.98)

#: sparsity-band edges for the roll-up's band axis; labels derived below.
_SPARSITY_BANDS: Tuple[Tuple[str, float, float], ...] = (
    ("s<0.70", 0.0, 0.70),
    ("0.70<=s<0.90", 0.70, 0.90),
    ("s>=0.90", 0.90, 1.01),
)


# ----------------------------------------------------------------------
# Matrix specs: lazy, hashable matrix descriptions
# ----------------------------------------------------------------------

#: kind -> builder(params dict) -> CSRMatrix.  Every builder is a pure,
#: deterministic function of its params, which is what lets a shard be
#: content-addressed by spec keys without building any matrix.
_BUILDERS: Dict[str, Callable[[Dict[str, Any]], CSRMatrix]] = {
    "uniform": lambda p: uniform_random(
        p["m"], p["nnz"], p.get("k"), seed=p.get("seed", 0)
    ),
    "power_law": lambda p: power_law(
        p["m"], p["nnz"], exponent=p.get("exponent", 2.1), seed=p.get("seed", 0)
    ),
    "rmat": lambda p: rmat(
        p["scale"], p.get("edge_factor", 16), seed=p.get("seed", 0)
    ),
    "banded": lambda p: banded_random(
        p["m"], p["nnz"], p["bandwidth"], seed=p.get("seed", 0)
    ),
    "pruned_magnitude": lambda p: pruned_magnitude(
        p["m"], p["k"], p["sparsity"], seed=p.get("seed", 0)
    ),
    "pruned_random": lambda p: pruned_random(
        p["m"], p["k"], p["sparsity"], seed=p.get("seed", 0)
    ),
    "pruned_structured": lambda p: pruned_structured(
        p["m"], p["k"], p["sparsity"], block=p.get("block", 4),
        seed=p.get("seed", 0),
    ),
    "npz": lambda p: load_npz(p["path"]),
    "mtx": lambda p: read_matrix_market(p["path"]),
}

#: kinds whose content lives on disk — their spec keys fold in the
#: file's (size, mtime_ns) so an edited file invalidates its shards.
_FILE_KINDS = frozenset({"npz", "mtx"})


@dataclass(frozen=True)
class MatrixSpec:
    """A lazy matrix description: generator kind + parameters.

    ``params`` is a sorted tuple of ``(name, value)`` pairs with
    primitive values, so specs are hashable, comparable, and reprs are
    stable — the properties the shard checkpoint key relies on.
    """

    name: str
    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, name: str, kind: str, **params: Any) -> "MatrixSpec":
        if kind not in _BUILDERS:
            raise ValueError(
                f"unknown matrix kind {kind!r}; known: {sorted(_BUILDERS)}"
            )
        for k, v in params.items():
            if v is not None and not isinstance(v, (bool, int, float, str)):
                raise TypeError(
                    f"spec param {k}={v!r} is not a primitive; specs must "
                    "stay cheap and hashable"
                )
        return cls(name=name, kind=kind, params=tuple(sorted(params.items())))

    def build(self) -> CSRMatrix:
        """Materialize the matrix (deterministic for generator kinds)."""
        return _BUILDERS[self.kind](dict(self.params))

    def key(self) -> tuple:
        """Content-addressing key for shard checkpoints.

        Generator specs are fully determined by (kind, params); on-disk
        specs additionally fold in the file's size and mtime so a
        changed file misses cleanly instead of replaying stale cells.
        """
        base = (self.name, self.kind, self.params)
        if self.kind in _FILE_KINDS:
            path = dict(self.params)["path"]
            try:
                st = os.stat(path)
                return base + (int(st.st_size), int(st.st_mtime_ns))
            except OSError:
                return base + ("missing",)
        return base


# ----------------------------------------------------------------------
# Corpus factories
# ----------------------------------------------------------------------
def dlmc_corpus(
    shapes: Sequence[Tuple[int, int]] = ((256, 256), (512, 256)),
    sparsities: Sequence[float] = DLMC_SPARSITIES,
    methods: Sequence[str] = ("magnitude", "random", "structured"),
    seeds: Sequence[int] = (0,),
    block: int = 4,
) -> Iterator[MatrixSpec]:
    """DLMC-style pruned-DNN corpus: ``methods x shapes x sparsities x
    seeds`` specs, lazily.  Mirrors the Deep Learning Matrix Collection
    taxonomy (pruning method / sparsity ladder) with synthetic twins."""
    for method in methods:
        kind = f"pruned_{method}"
        if kind not in _BUILDERS:
            raise ValueError(f"unknown pruning method {method!r}")
        for (m, k) in shapes:
            for s in sparsities:
                for seed in seeds:
                    name = f"dlmc/{method}/{m}x{k}/s{s:.2f}/r{seed}"
                    params: Dict[str, Any] = dict(
                        m=int(m), k=int(k), sparsity=float(s), seed=int(seed)
                    )
                    if method == "structured":
                        params["block"] = int(block)
                    yield MatrixSpec.make(name, kind, **params)


def graph_corpus(
    ms: Sequence[int] = (512, 2048),
    degree: int = 10,
    seeds: Sequence[int] = (0,),
) -> Iterator[MatrixSpec]:
    """Graph-structured corpus over the existing generators: uniform
    (Ligra-style), power-law (SNAP-like skew), RMAT (community
    structure), banded (mesh/road locality)."""
    for m in ms:
        nnz = degree * m
        for seed in seeds:
            yield MatrixSpec.make(
                f"graph/uniform/m{m}/r{seed}", "uniform", m=m, nnz=nnz, seed=seed
            )
            yield MatrixSpec.make(
                f"graph/power_law/m{m}/r{seed}", "power_law", m=m, nnz=nnz,
                seed=seed,
            )
            scale = max(int(m).bit_length() - 1, 4)
            yield MatrixSpec.make(
                f"graph/rmat/s{scale}/r{seed}", "rmat", scale=scale,
                edge_factor=min(degree, 16), seed=seed,
            )
            yield MatrixSpec.make(
                f"graph/banded/m{m}/r{seed}", "banded", m=m, nnz=nnz,
                bandwidth=max(degree, 2), seed=seed,
            )


def corpus_from_dir(path: PathLike) -> Iterator[MatrixSpec]:
    """Specs for every ``.npz`` and MatrixMarket file under ``path``
    (sorted, recursive) — the on-disk half of the corpus abstraction:
    point it at a real DLMC/SuiteSparse download and stream it."""
    root = Path(path)
    for f in sorted(root.rglob("*")):
        if not f.is_file():
            continue
        if f.suffix == ".npz":
            kind = "npz"
        elif f.name.endswith((".mtx", ".mtx.gz")):
            kind = "mtx"
        else:
            continue
        rel = f.relative_to(root).as_posix()
        yield MatrixSpec.make(f"file/{rel}", kind, path=str(f))


def _mixed_corpus(seeds: Sequence[int] = (0,)) -> Iterator[MatrixSpec]:
    return itertools.chain(dlmc_corpus(seeds=seeds), graph_corpus(seeds=seeds))


#: named corpora for the CLI; each factory takes ``seeds`` so ``--limit``
#: plus a widened seed range scale the corpus to thousands of specs.
CORPUS_PRESETS: Dict[str, Callable[..., Iterator[MatrixSpec]]] = {
    "dlmc": dlmc_corpus,
    "graphs": graph_corpus,
    "mixed": _mixed_corpus,
}


def corpus_preset(
    name: str, limit: Optional[int] = None, seeds: Sequence[int] = (0,)
) -> List[MatrixSpec]:
    """Materialize the *specs* (not matrices) of a named corpus.

    ``limit`` truncates; when the base grid is smaller than ``limit``
    the seed range is widened until the corpus reaches it, so
    ``corpus_preset("dlmc", 1000)`` really yields 1000 distinct specs.
    """
    if name not in CORPUS_PRESETS:
        raise ValueError(f"unknown corpus preset {name!r}; known: "
                         f"{sorted(CORPUS_PRESETS)}")
    factory = CORPUS_PRESETS[name]
    specs = list(itertools.islice(factory(seeds=seeds), limit))
    seed_hi = max(seeds) if seeds else 0
    while limit is not None and len(specs) < limit:
        seed_hi += 1
        extra = list(factory(seeds=(seed_hi,)))
        if not extra:
            break
        specs.extend(extra[: limit - len(specs)])
    return specs


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
def partition_shards(
    specs: Iterable[MatrixSpec],
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> List[List[MatrixSpec]]:
    """Split a corpus into contiguous shards.

    Exactly one of ``shards`` (partition count) or ``shard_size``
    (specs per shard) must be given.  Spec names must be unique — they
    are the graph axis of the roll-up.
    """
    if (shards is None) == (shard_size is None):
        raise ValueError("give exactly one of shards= or shard_size=")
    spec_list = list(specs)
    seen: Dict[str, MatrixSpec] = {}
    for s in spec_list:
        if s.name in seen and seen[s.name] != s:
            raise ValueError(f"duplicate corpus spec name {s.name!r}")
        seen[s.name] = s
    if not spec_list:
        return []
    if shard_size is None:
        assert shards is not None
        shard_size = -(-len(spec_list) // max(int(shards), 1))
    shard_size = max(int(shard_size), 1)
    return [
        spec_list[i : i + shard_size]
        for i in range(0, len(spec_list), shard_size)
    ]


def _shard_key(
    shard: Sequence[MatrixSpec],
    kernels: Sequence[SpMMKernel],
    widths: Sequence[int],
    gpus: Sequence[GPUSpec],
) -> tuple:
    return (
        "corpus-shard",
        tuple(s.key() for s in shard),
        tuple(k.cache_key() for k in kernels),
        tuple(int(n) for n in widths),
        tuple(g.name for g in gpus),
    )


def _matrix_stats(a: CSRMatrix) -> Dict[str, Any]:
    """The per-matrix structural descriptors the roll-up aggregates on.
    Everything here is a pure function of the matrix (deterministic)."""
    m, k = a.shape
    imb = row_imbalance(a)
    total = m * k
    return {
        "regime": graph_regime(a),
        "row_gini": imb.gini,
        "max_over_mean": imb.max_over_mean,
        "sparsity": 1.0 - (a.nnz / total) if total else 0.0,
        "m": int(m),
        "k": int(k),
        "nnz": int(a.nnz),
    }


def _sparsity_band(sparsity: float) -> str:
    for label, lo, hi in _SPARSITY_BANDS:
        if lo <= sparsity < hi:
            return label
    return _SPARSITY_BANDS[-1][0]


# ----------------------------------------------------------------------
# The streaming driver
# ----------------------------------------------------------------------
@dataclass
class CorpusHostStats:
    """Host-side corpus-sweep statistics.

    Deliberately *not* part of the roll-up: wall clock and the
    computed/restored split vary across (interrupted) runs, and the
    roll-up must stay byte-identical whether or not the sweep was
    resumed.
    """

    shards_total: int = 0
    shards_computed: int = 0
    shards_restored: int = 0
    cells_computed: int = 0
    cells_restored: int = 0
    matrices: int = 0
    wall_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "shards_total": self.shards_total,
            "shards_computed": self.shards_computed,
            "shards_restored": self.shards_restored,
            "cells_computed": self.cells_computed,
            "cells_restored": self.cells_restored,
            "matrices": self.matrices,
            "wall_s": self.wall_s,
        }


@dataclass
class CorpusSweepResult:
    """Roll-up (deterministic) plus host stats (machine-varying)."""

    rollup: Dict[str, Any]
    host: CorpusHostStats


def _run_shard(
    shard: Sequence[MatrixSpec],
    kernels: Sequence[SpMMKernel],
    widths: Sequence[int],
    gpus: Sequence[GPUSpec],
    jobs: int,
) -> Dict[str, Any]:
    """Build the shard's matrices, sweep them, and return the checkpoint
    payload — run-ordered cell rows plus per-matrix stats.  Matrices and
    their derived caches are dropped before returning, so peak memory is
    one shard's worth regardless of corpus size."""
    graphs: Dict[str, CSRMatrix] = {s.name: s.build() for s in shard}
    try:
        stats = {name: _matrix_stats(a) for name, a in graphs.items()}
        results, _ = run_sweep_with_stats(
            kernels, graphs, widths, gpus, jobs=jobs, quiet=True
        )
        cells = [
            [r.kernel, r.graph, int(r.n), r.gpu, r.time_s, r.gflops]
            for r in results
        ]
        return {"cells": cells, "stats": stats}
    finally:
        for a in graphs.values():
            a.clear_derived()
        graphs.clear()


def run_corpus_sweep(
    specs: Iterable[MatrixSpec],
    kernels: Sequence[SpMMKernel],
    widths: Sequence[int],
    gpus: Sequence[GPUSpec],
    *,
    shards: Optional[int] = None,
    shard_size: Optional[int] = 32,
    jobs: int = 1,
    resume: bool = True,
    max_shards: Optional[int] = None,
    memo_limit: Optional[int] = 4096,
    progress: Optional[Callable[[int, int, bool], None]] = None,
) -> CorpusSweepResult:
    """Stream a matrix corpus through the sweep runner, shard by shard.

    Memory stays bounded at one shard: matrices are built inside the
    shard, their derived-array caches dropped afterwards, the estimate
    and sweep memos LRU-capped at ``memo_limit`` entries during the run
    (prior limits restored on exit) and cleared at every shard boundary.

    With a :class:`~repro.bench.diskcache.DiskCache` active
    (``set_disk_cache`` / ``--cache-dir`` / ``$REPRO_CACHE_DIR``) and
    ``resume=True``, each completed shard is checkpointed; a re-run
    restores finished shards wholesale (zero recomputation) and its
    roll-up is byte-identical to an uninterrupted run's.  ``max_shards``
    stops early after N shards — the knob CI uses to simulate an
    interrupted sweep.

    ``progress`` is called after each shard as ``progress(index,
    total_shards, restored)``.
    """
    t0 = time.perf_counter()
    kernels = list(kernels)
    widths = [int(n) for n in widths]
    gpus = list(gpus)
    if not kernels or not gpus or not widths:
        raise ValueError("kernels, widths, and gpus must be non-empty")
    if shards is None and shard_size is None:
        shard_size = 32
    shard_list = partition_shards(specs, shards=shards, shard_size=shard_size)

    registry = obs.get_registry()
    host = CorpusHostStats(shards_total=len(shard_list))
    payloads: List[Dict[str, Any]] = []

    prev_est = set_estimate_memo_limit(memo_limit)
    prev_sweep = set_sweep_cache_limit(memo_limit)
    try:
        for idx, shard in enumerate(shard_list):
            if max_shards is not None and idx >= max_shards:
                break
            cache = get_disk_cache()
            key = _shard_key(shard, kernels, widths, gpus)
            payload = cache.get_shard(key) if (cache and resume) else None
            restored = payload is not None
            if payload is None:
                with obs.span("corpus.shard", index=idx,
                              matrices=len(shard)):
                    payload = _run_shard(shard, kernels, widths, gpus, jobs)
                if cache is not None:
                    cache.put_shard(key, payload)
                host.shards_computed += 1
                host.cells_computed += len(payload["cells"])
                registry.counter("corpus.shards.computed").inc()
                registry.counter("corpus.cells.computed").inc(
                    len(payload["cells"])
                )
            else:
                host.shards_restored += 1
                host.cells_restored += len(payload["cells"])
                registry.counter("corpus.shards.restored").inc()
                registry.counter("corpus.cells.restored").inc(
                    len(payload["cells"])
                )
            host.matrices += len(shard)
            payloads.append(payload)
            # Shard boundary: drop every in-process cache so the next
            # shard starts from the same (empty) state an uninterrupted
            # or resumed run would — and so memory cannot accumulate.
            clear_sweep_cache()
            clear_estimate_memo()
            obs.event(
                "corpus.shard.done", index=idx, total=len(shard_list),
                restored=restored, matrices=len(shard),
            )
            if progress is not None:
                progress(idx, len(shard_list), restored)
    finally:
        set_estimate_memo_limit(prev_est)
        set_sweep_cache_limit(prev_sweep)

    rollup = _build_rollup(payloads, kernels, widths, gpus)
    host.wall_s = time.perf_counter() - t0
    for regime, block in rollup["regimes"].items():
        for kernel, rate in block["win_rate"].items():
            registry.gauge(
                "corpus.win_rate", kernel=kernel, regime=regime
            ).set(rate)
    return CorpusSweepResult(rollup=rollup, host=host)


# ----------------------------------------------------------------------
# Roll-up
# ----------------------------------------------------------------------
def _build_rollup(
    payloads: Sequence[Dict[str, Any]],
    kernels: Sequence[SpMMKernel],
    widths: Sequence[int],
    gpus: Sequence[GPUSpec],
) -> Dict[str, Any]:
    """Aggregate shard payloads into the deterministic roll-up document.

    Consumes the *checkpoint representation* (JSON-safe cell rows), so a
    restored shard contributes bit-identical numbers to a computed one —
    the property behind the byte-identical-resume guarantee.
    """
    kernel_names = [k.name for k in kernels]
    kernel_rank = {name: i for i, name in enumerate(kernel_names)}

    stats: Dict[str, Dict[str, Any]] = {}
    contests: Dict[Tuple[str, int, str], List[Tuple[str, float]]] = {}
    order: List[Tuple[str, int, str]] = []
    for payload in payloads:
        stats.update(payload["stats"])
        for kernel, spec, n, gpu, time_s, _gflops in payload["cells"]:
            ckey = (spec, int(n), gpu)
            if ckey not in contests:
                contests[ckey] = []
                order.append(ckey)
            contests[ckey].append((kernel, float(time_s)))

    def bucket() -> Dict[str, Any]:
        return {
            "matrices": set(),
            "contests": 0,
            "wins": {name: 0 for name in kernel_names},
            "row_gini_sum": 0.0,
            "max_over_mean_sum": 0.0,
            "sparsity_sum": 0.0,
        }

    regimes: Dict[str, Dict[str, Any]] = {}
    bands: Dict[str, Dict[str, Any]] = {}
    overall = bucket()

    for ckey in order:
        spec, _n, _gpu = ckey
        entries = contests[ckey]
        winner = min(
            entries, key=lambda e: (e[1], kernel_rank.get(e[0], len(entries)))
        )[0]
        st = stats.get(spec, {})
        regime = str(st.get("regime", "unknown"))
        band = _sparsity_band(float(st.get("sparsity", 0.0)))
        for acc in (regimes.setdefault(regime, bucket()),
                    bands.setdefault(band, bucket()),
                    overall):
            acc["contests"] += 1
            if winner in acc["wins"]:
                acc["wins"][winner] += 1
            acc["matrices"].add(spec)

    # Sorted, not insertion, order: a restored shard's stats dict comes
    # back key-sorted from the JSON checkpoint while a computed shard's
    # follows shard order — float sums must not depend on which path
    # produced the payload, or byte-identical resume breaks in the ulps.
    for name in sorted(stats):
        st = stats[name]
        regime = str(st.get("regime", "unknown"))
        band = _sparsity_band(float(st.get("sparsity", 0.0)))
        for acc in (regimes.setdefault(regime, bucket()),
                    bands.setdefault(band, bucket()),
                    overall):
            if name in acc["matrices"]:
                acc["row_gini_sum"] += float(st.get("row_gini", 0.0))
                acc["max_over_mean_sum"] += float(st.get("max_over_mean", 0.0))
                acc["sparsity_sum"] += float(st.get("sparsity", 0.0))

    def finish(acc: Dict[str, Any]) -> Dict[str, Any]:
        n_mat = len(acc["matrices"])
        n_con = acc["contests"]
        return {
            "matrices": n_mat,
            "contests": n_con,
            "wins": dict(acc["wins"]),
            "win_rate": {
                name: (acc["wins"][name] / n_con if n_con else 0.0)
                for name in kernel_names
            },
            "mean_row_gini": acc["row_gini_sum"] / n_mat if n_mat else 0.0,
            "mean_max_over_mean": (
                acc["max_over_mean_sum"] / n_mat if n_mat else 0.0
            ),
            "mean_sparsity": acc["sparsity_sum"] / n_mat if n_mat else 0.0,
        }

    return {
        "schema": ROLLUP_SCHEMA,
        "config": {
            "kernels": kernel_names,
            "widths": [int(n) for n in widths],
            "gpus": [g.name for g in gpus],
        },
        "corpus": {
            "matrices": len(stats),
            "shards": len(payloads),
            "contests": len(contests),
        },
        "overall": finish(overall),
        "regimes": {r: finish(acc) for r, acc in sorted(regimes.items())},
        "sparsity_bands": {b: finish(acc) for b, acc in sorted(bands.items())},
    }


def format_rollup(rollup: Dict[str, Any]) -> str:
    """Plain-text rendering of a corpus roll-up (deterministic)."""
    lines: List[str] = []
    corp = rollup["corpus"]
    cfg = rollup["config"]
    lines.append(
        f"corpus: {corp['matrices']} matrices, {corp['shards']} shards, "
        f"{corp['contests']} contests"
    )
    lines.append(
        f"kernels: {', '.join(cfg['kernels'])} | widths: "
        f"{', '.join(str(w) for w in cfg['widths'])} | gpus: "
        f"{', '.join(cfg['gpus'])}"
    )
    for title, blocks in (
        ("overall", {"": rollup["overall"]}),
        ("by regime", rollup["regimes"]),
        ("by sparsity band", rollup["sparsity_bands"]),
    ):
        lines.append("")
        lines.append(f"win rates ({title}):")
        for label, block in blocks.items():
            prefix = f"  {label}: " if label else "  "
            rates = ", ".join(
                f"{k}={block['win_rate'][k]:.3f}" for k in cfg["kernels"]
            )
            lines.append(
                f"{prefix}{rates}  [n={block['contests']}, "
                f"gini={block['mean_row_gini']:.3f}, "
                f"sparsity={block['mean_sparsity']:.3f}]"
            )
    return "\n".join(lines)

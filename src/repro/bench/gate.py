"""Benchmark regression gate over ``repro/bench-spmm/v1`` documents.

``BENCH_spmm.json`` (written by ``make telemetry``) is byte-deterministic,
so any difference between the committed document and a freshly
regenerated one is a *real* kernel/timing-model change, not noise.  This
module turns that property into a CI gate: :func:`diff_documents`
compares two BENCH documents cell by cell (time and GFLOPS), geomean by
geomean, flags added/removed cells, and classifies every
beyond-tolerance drift as either

* **regressed** — unexplained drift; the gate fails, or
* **accepted** — covered by an entry in an *accepted-drift* annotation
  file (schema ``repro/bench-drift/v1``), so an intentional model change
  ships with a recorded explanation instead of a silently refreshed
  baseline.

The report is deterministic in both renderings (:meth:`GateReport.format`
for humans, :meth:`GateReport.to_json` for tooling), and the CLI wrapper
(``repro-bench gate``, ``make gate``) maps the outcome onto CI-friendly
exit codes: 0 pass, 1 regression, 2 unusable input.

Interop with the older flat-map harness (:mod:`repro.bench.regression`)
goes through :func:`repro.bench.regression.document_measurements`: a
BENCH document collapses to the ``{key: seconds}`` shape that
``capture``/``compare`` use, and both layers share one cell-key format.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.regression import measurement_key
from repro.bench.telemetry import validate_bench_document

__all__ = [
    "DRIFT_SCHEMA_ID",
    "REPORT_SCHEMA_ID",
    "EXIT_OK",
    "EXIT_REGRESSED",
    "EXIT_USAGE",
    "GateError",
    "GateThresholds",
    "AcceptedDrift",
    "Drift",
    "GateReport",
    "load_bench_document",
    "load_accepted_drift",
    "geomean_key",
    "diff_documents",
    "explain_attribution_drift",
    "gate_paths",
]

PathLike = Union[str, Path]

DRIFT_SCHEMA_ID = "repro/bench-drift/v1"
REPORT_SCHEMA_ID = "repro/bench-gate-report/v1"

#: CI exit codes: pass / unexplained drift / unusable input.
EXIT_OK = 0
EXIT_REGRESSED = 1
EXIT_USAGE = 2

#: metric names a drift record (and an annotation's ``metrics`` filter)
#: can carry.  ``presence`` covers added/removed cells and geomeans.
METRICS = ("time_ms", "gflops", "speedup", "presence")


class GateError(ValueError):
    """Unusable gate input (missing file, invalid document/annotation)."""


@dataclass(frozen=True)
class GateThresholds:
    """Relative tolerances, one per compared quantity.

    Simulated times are deterministic, so these guard against *model*
    drift, not measurement noise — they exist so that an intentional,
    annotated change to one kernel does not fail every downstream geomean
    by an epsilon.
    """

    time_rel_tol: float = 0.0
    gflops_rel_tol: float = 0.0
    geomean_rel_tol: float = 0.0

    def for_metric(self, metric: str) -> float:
        if metric == "time_ms":
            return self.time_rel_tol
        if metric == "gflops":
            return self.gflops_rel_tol
        if metric == "speedup":
            return self.geomean_rel_tol
        return 0.0  # presence: any change is a drift

    def to_json(self) -> Dict[str, float]:
        return {
            "time_rel_tol": self.time_rel_tol,
            "gflops_rel_tol": self.gflops_rel_tol,
            "geomean_rel_tol": self.geomean_rel_tol,
        }


@dataclass(frozen=True)
class AcceptedDrift:
    """One annotation: drift matching ``pattern`` is intentional.

    ``pattern`` is an ``fnmatch``-style glob over the drift key (cell
    keys look like ``kernel|graph|N=128|GTX 1080Ti``; geomean keys like
    ``geomean:GE-SpMM vs cuSPARSE csrmm2|N=128|GTX 1080Ti``).  ``reason``
    is mandatory — the whole point is that the explanation ships with the
    change.  ``metrics`` optionally restricts which metrics the
    annotation covers; ``max_drift`` optionally caps the accepted
    relative drift magnitude (an annotation for a +5% model fix should
    not silently absorb a 10x regression).
    """

    pattern: str
    reason: str
    metrics: Optional[Tuple[str, ...]] = None
    max_drift: Optional[float] = None

    def covers(self, key: str, metric: str, drift: float) -> bool:
        if not fnmatchcase(key, self.pattern):
            return False
        if self.metrics is not None and metric not in self.metrics:
            return False
        if self.max_drift is not None:
            if not math.isfinite(drift) or abs(drift) > self.max_drift:
                return False
        return True


@dataclass(frozen=True)
class Drift:
    """One beyond-tolerance difference between baseline and current."""

    key: str
    metric: str  # one of METRICS
    baseline: float
    current: float
    drift: float  # relative change; +/-inf for appeared/removed
    status: str  # "regressed" | "accepted"
    reason: str = ""  # annotation reason when accepted
    explanation: str = ""  # component attribution diff (gate --explain)

    def describe(self) -> str:
        if self.metric == "presence":
            what = "appeared" if self.current > self.baseline else "removed"
            text = f"{self.key}: {what}"
        else:
            sign = "+" if self.drift >= 0 else ""
            text = (
                f"{self.key} [{self.metric}]: {self.baseline:.6g} -> "
                f"{self.current:.6g} ({sign}{self.drift * 100:.2f}%)"
            )
        if self.reason:
            text += f" -- {self.reason}"
        if self.explanation:
            text += f"\n      explain: {self.explanation}"
        return text

    def to_json(self) -> Dict[str, Any]:
        out = {
            "key": self.key,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            # JSON has no Infinity; presence drifts serialize as strings.
            "drift": self.drift if math.isfinite(self.drift) else repr(self.drift),
            "status": self.status,
            "reason": self.reason,
        }
        if self.explanation:
            out["explanation"] = self.explanation
        return out


@dataclass
class GateReport:
    """Outcome of one baseline-vs-current comparison."""

    thresholds: GateThresholds
    cells_compared: int = 0
    geomeans_compared: int = 0
    regressions: List[Drift] = field(default_factory=list)
    accepted: List[Drift] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return EXIT_OK if self.passed else EXIT_REGRESSED

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_ID,
            "passed": self.passed,
            "thresholds": self.thresholds.to_json(),
            "summary": {
                "cells_compared": self.cells_compared,
                "geomeans_compared": self.geomeans_compared,
                "regressed": len(self.regressions),
                "accepted": len(self.accepted),
            },
            "regressions": [d.to_json() for d in self.regressions],
            "accepted": [d.to_json() for d in self.accepted],
        }

    def format(self) -> str:
        t = self.thresholds
        lines = [
            "benchmark regression gate",
            f"  compared: {self.cells_compared} cells, "
            f"{self.geomeans_compared} geomeans",
            f"  tolerances: time +-{t.time_rel_tol * 100:g}%, "
            f"gflops +-{t.gflops_rel_tol * 100:g}%, "
            f"geomean +-{t.geomean_rel_tol * 100:g}%",
        ]
        if self.accepted:
            lines.append(f"  accepted drift ({len(self.accepted)}):")
            lines += [f"    {d.describe()}" for d in self.accepted]
        if self.regressions:
            lines.append(f"  UNEXPLAINED DRIFT ({len(self.regressions)}):")
            lines += [f"    {d.describe()}" for d in self.regressions]
            lines.append(
                "  FAIL: timing-model drift without an accepted-drift "
                "annotation (see docs/OBSERVABILITY.md)"
            )
        else:
            lines.append("  PASS")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# loading


def load_bench_document(path: PathLike) -> Dict[str, Any]:
    """Read and validate a BENCH document; :class:`GateError` on problems."""
    p = Path(path)
    try:
        doc = json.loads(p.read_text())
    except OSError as exc:
        raise GateError(f"cannot read BENCH document {p}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise GateError(f"{p} is not valid JSON: {exc}") from exc
    errors = validate_bench_document(doc)
    if errors:
        raise GateError(f"{p} is not a valid BENCH document: " + "; ".join(errors))
    return doc


def _parse_annotation(entry: Any, where: str) -> AcceptedDrift:
    if not isinstance(entry, dict):
        raise GateError(f"{where}: expected object, got {type(entry).__name__}")
    pattern = entry.get("pattern")
    reason = entry.get("reason")
    if not isinstance(pattern, str) or not pattern:
        raise GateError(f"{where}: 'pattern' must be a non-empty string")
    if not isinstance(reason, str) or not reason.strip():
        raise GateError(
            f"{where}: 'reason' must be a non-empty string — accepted "
            "drift must ship with an explanation"
        )
    metrics = entry.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, list) or not all(m in METRICS for m in metrics):
            raise GateError(f"{where}: 'metrics' must be a list drawn from {METRICS}")
        metrics = tuple(metrics)
    max_drift = entry.get("max_drift")
    if max_drift is not None:
        if not isinstance(max_drift, (int, float)) or isinstance(max_drift, bool) or max_drift <= 0:
            raise GateError(f"{where}: 'max_drift' must be a positive number")
    unknown = set(entry) - {"pattern", "reason", "metrics", "max_drift"}
    if unknown:
        raise GateError(f"{where}: unknown fields {sorted(unknown)}")
    return AcceptedDrift(pattern=pattern, reason=reason, metrics=metrics,
                         max_drift=max_drift)


def load_accepted_drift(path: PathLike) -> List[AcceptedDrift]:
    """Read an accepted-drift annotation file (``repro/bench-drift/v1``).

    Format::

        {
          "schema": "repro/bench-drift/v1",
          "entries": [
            {"pattern": "crc|*|N=128|*", "metrics": ["time_ms", "gflops"],
             "max_drift": 0.10,
             "reason": "PR 9: CRC tile-load model now prices short rows"}
          ]
        }
    """
    p = Path(path)
    try:
        doc = json.loads(p.read_text())
    except OSError as exc:
        raise GateError(f"cannot read accepted-drift file {p}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise GateError(f"{p} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != DRIFT_SCHEMA_ID:
        raise GateError(f"{p}: schema must be {DRIFT_SCHEMA_ID!r}")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise GateError(f"{p}: 'entries' must be a list")
    return [_parse_annotation(e, f"{p}: entries[{i}]") for i, e in enumerate(entries)]


# ---------------------------------------------------------------------------
# drift explanation (gate --explain)

#: relative component change below which a mover is folded into the
#: "all else" tail — 1% separates the drifted ceiling from float noise.
EXPLAIN_MIN_REL = 0.01


def _component_movers(
    base: Dict[str, Any], cur: Dict[str, Any], threshold: float
) -> Tuple[List[Tuple[str, float]], int]:
    """Per-component relative drifts beyond ``threshold``, biggest first.

    Returns ``(movers, quiet)`` where ``movers`` is ``[(name, rel), ...]``
    sorted by descending magnitude (name as the deterministic tie-break)
    and ``quiet`` counts the components that stayed within threshold.
    """
    movers: List[Tuple[str, float]] = []
    quiet = 0
    for name in sorted(set(base) | set(cur)):
        b = float(base.get(name, 0.0))
        c = float(cur.get(name, 0.0))
        if b == c:
            quiet += 1
            continue
        rel = (c / b - 1.0) if b > 0 else float("inf")
        if abs(rel) > threshold:
            movers.append((name, rel))
        else:
            quiet += 1
    movers.sort(key=lambda m: (-abs(m[1]), m[0]))
    return movers, quiet


def _fmt_rel(rel: float) -> str:
    if not math.isfinite(rel):
        return "appeared"
    return f"{'+' if rel >= 0 else ''}{rel * 100:.1f}%"


def explain_attribution_drift(
    baseline_cell: Dict[str, Any],
    current_cell: Dict[str, Any],
    threshold: float = EXPLAIN_MIN_REL,
) -> str:
    """Name the timing-model component(s) behind one cell's drift.

    Diffs the per-cell ``attribution`` blocks (per-ceiling breakdown +
    efficiency factors — see ``docs/OBSERVABILITY.md``) of a baseline and
    a current cell and renders the movers, biggest first::

        dram +31.2%, all else <1%
        bound l2_link -> dram; dram +18.0%, f_occ -12.5%, all else <1%

    Returns "" when either side lacks an attribution block (older
    documents), so callers can append the explanation unconditionally.
    """
    base_attr = baseline_cell.get("attribution")
    cur_attr = current_cell.get("attribution")
    if not isinstance(base_attr, dict) or not isinstance(cur_attr, dict):
        return ""
    parts: List[str] = []
    bound_b = base_attr.get("bound_by")
    bound_c = cur_attr.get("bound_by")
    if bound_b != bound_c:
        parts.append(f"bound {bound_b} -> {bound_c}")
    movers: List[Tuple[str, float]] = []
    quiet = 0
    for block in ("breakdown_ms", "factors"):
        m, q = _component_movers(
            base_attr.get(block) or {}, cur_attr.get(block) or {}, threshold
        )
        movers.extend(m)
        quiet += q
    movers.sort(key=lambda m: (-abs(m[1]), m[0]))
    detail = ", ".join(f"{name} {_fmt_rel(rel)}" for name, rel in movers)
    if movers and quiet:
        detail += f", all else <{threshold * 100:g}%"
    elif not movers:
        detail = f"no attribution component moved >={threshold * 100:g}%"
    parts.append(detail)
    return "; ".join(p for p in parts if p)


def _attach_explanations(
    drifts: List[Drift],
    baseline_cells: Dict[str, Dict[str, Any]],
    current_cells: Dict[str, Dict[str, Any]],
) -> List[Drift]:
    """Return ``drifts`` with attribution explanations on cell drifts."""
    out: List[Drift] = []
    for d in drifts:
        if (
            d.metric in ("time_ms", "gflops")
            and d.key in baseline_cells
            and d.key in current_cells
        ):
            text = explain_attribution_drift(
                baseline_cells[d.key], current_cells[d.key]
            )
            if text:
                d = replace(d, explanation=text)
        out.append(d)
    return out


# ---------------------------------------------------------------------------
# comparison


def geomean_key(g: Dict[str, Any]) -> str:
    """Stable key for one geomean record, glob-matchable like cell keys."""
    return f"geomean:{g['target']} vs {g['baseline']}|N={g['n']}|{g['gpu']}"


def _cell_key(cell: Dict[str, Any]) -> str:
    return measurement_key(cell["kernel"], cell["graph"], cell["n"], cell["gpu"])


def _classify(
    key: str,
    metric: str,
    base: float,
    cur: float,
    drift: float,
    accepted: Sequence[AcceptedDrift],
) -> Drift:
    for ann in accepted:
        if ann.covers(key, metric, drift):
            return Drift(key, metric, base, cur, drift, "accepted", ann.reason)
    return Drift(key, metric, base, cur, drift, "regressed")


def _diff_keyed(
    baseline: Dict[str, Dict[str, Any]],
    current: Dict[str, Dict[str, Any]],
    metrics: Sequence[str],
    thresholds: GateThresholds,
    accepted: Sequence[AcceptedDrift],
    out: List[Drift],
) -> int:
    """Diff two key->record maps; returns how many keys exist in both."""
    compared = 0
    for key in sorted(set(baseline) | set(current)):
        if key not in current:
            out.append(_classify(key, "presence", 1.0, 0.0, float("-inf"), accepted))
            continue
        if key not in baseline:
            out.append(_classify(key, "presence", 0.0, 1.0, float("inf"), accepted))
            continue
        compared += 1
        for metric in metrics:
            base = float(baseline[key][metric])
            cur = float(current[key][metric])
            if base <= 0:
                # validate_bench_document guarantees finite values; a
                # zero baseline only drifts if the current value moved.
                drift = 0.0 if cur == base else float("inf")
            else:
                drift = cur / base - 1.0
            if abs(drift) > thresholds.for_metric(metric):
                out.append(_classify(key, metric, base, cur, drift, accepted))
    return compared


def diff_documents(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    thresholds: GateThresholds = GateThresholds(),
    accepted: Sequence[AcceptedDrift] = (),
    explain: bool = False,
) -> GateReport:
    """Compare two validated BENCH documents into a :class:`GateReport`.

    Every cell present in either document is checked: time and GFLOPS
    drift for shared cells, presence drift for added/removed ones; then
    the same for geomean records.  Drifts beyond tolerance are matched
    against ``accepted`` annotations in order (first match wins).

    ``explain`` additionally diffs the per-cell ``attribution`` blocks of
    drifted cells and names the ceiling/factor that moved (see
    :func:`explain_attribution_drift`) — ``repro-bench gate --explain``.
    """
    for name, doc in (("baseline", baseline), ("current", current)):
        errors = validate_bench_document(doc)
        if errors:
            raise GateError(f"{name} document invalid: " + "; ".join(errors))

    baseline_cells = {_cell_key(c): c for c in baseline["cells"]}
    current_cells = {_cell_key(c): c for c in current["cells"]}
    drifts: List[Drift] = []
    cells_compared = _diff_keyed(
        baseline_cells,
        current_cells,
        ("time_ms", "gflops"),
        thresholds,
        accepted,
        drifts,
    )
    geomeans_compared = _diff_keyed(
        {geomean_key(g): g for g in baseline["geomeans"]},
        {geomean_key(g): g for g in current["geomeans"]},
        ("speedup",),
        thresholds,
        accepted,
        drifts,
    )
    if explain:
        drifts = _attach_explanations(drifts, baseline_cells, current_cells)

    report = GateReport(
        thresholds=thresholds,
        cells_compared=cells_compared,
        geomeans_compared=geomeans_compared,
    )
    for d in sorted(drifts, key=lambda d: (d.key, d.metric)):
        (report.accepted if d.status == "accepted" else report.regressions).append(d)
    return report


def gate_paths(
    baseline_path: PathLike,
    current_path: PathLike,
    annotations_path: Optional[PathLike] = None,
    thresholds: GateThresholds = GateThresholds(),
    explain: bool = False,
) -> GateReport:
    """File-level convenience wrapper around :func:`diff_documents`."""
    baseline = load_bench_document(baseline_path)
    current = load_bench_document(current_path)
    accepted = load_accepted_drift(annotations_path) if annotations_path else []
    return diff_documents(baseline, current, thresholds=thresholds,
                          accepted=accepted, explain=explain)

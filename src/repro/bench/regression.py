"""Performance-regression harness over simulated kernel timings.

Simulated times are deterministic, which makes them ideal regression
sentinels: any change to the kernels, counters or timing model that
shifts a headline number shows up as a diff against a stored baseline.
``capture`` records a suite of (kernel, graph, N, GPU) timings to JSON;
``compare`` reports relative drifts beyond a tolerance.

This flat ``{key: seconds}`` layer interoperates with the richer
document-level gate (:mod:`repro.bench.gate`): both use the same cell-key
format (:func:`measurement_key`), and :func:`document_measurements`
collapses a ``repro/bench-spmm/v1`` document into the map ``compare``
consumes.  Covered by ``tests/test_regression_harness.py``; CI runs the
document-level gate via ``repro-bench gate`` / ``make gate``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import SpMMKernel
from repro.sparse.csr import CSRMatrix

__all__ = [
    "RegressionEntry",
    "measurement_key",
    "capture",
    "save_baseline",
    "load_baseline",
    "compare",
    "document_measurements",
]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RegressionEntry:
    """One drifted measurement."""

    key: str
    baseline_s: float
    current_s: float

    @property
    def drift(self) -> float:
        """Relative change (positive = slower than baseline); infinite
        for keys that appeared or disappeared."""
        if self.baseline_s <= 0:
            return float("inf")
        if self.current_s <= 0:
            return float("-inf")
        return self.current_s / self.baseline_s - 1.0

    def describe(self) -> str:
        sign = "+" if self.drift >= 0 else ""
        return f"{self.key}: {self.baseline_s:.3e}s -> {self.current_s:.3e}s ({sign}{self.drift * 100:.1f}%)"


def measurement_key(kernel: str, graph: str, n: int, gpu: str) -> str:
    """The canonical cell key shared by this harness and the document
    gate: ``kernel|graph|N=<n>|gpu``."""
    return f"{kernel}|{graph}|N={int(n)}|{gpu}"


def _key(kernel: SpMMKernel, graph_name: str, n: int, gpu: GPUSpec) -> str:
    return measurement_key(kernel.name, graph_name, n, gpu.name)


def capture(
    kernels: Sequence[SpMMKernel],
    graphs: Dict[str, CSRMatrix],
    widths: Sequence[int],
    gpus: Sequence[GPUSpec],
) -> Dict[str, float]:
    """Measure the full cross product into a {key: seconds} map."""
    out: Dict[str, float] = {}
    for gpu in gpus:
        for gname, graph in graphs.items():
            for n in widths:
                for kernel in kernels:
                    out[_key(kernel, gname, n, gpu)] = kernel.estimate(graph, n, gpu).time_s
    return out


def save_baseline(measurements: Dict[str, float], path: PathLike) -> None:
    Path(path).write_text(json.dumps(measurements, indent=2, sort_keys=True))


def load_baseline(path: PathLike) -> Dict[str, float]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or not all(isinstance(v, (int, float)) for v in data.values()):
        raise ValueError(f"malformed baseline file: {path}")
    return data


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float = 0.02,
) -> List[RegressionEntry]:
    """Entries whose timing drifted beyond ``tolerance`` (plus keys that
    appeared/disappeared, reported with a sentinel time of 0)."""
    drifted: List[RegressionEntry] = []
    for key, base in baseline.items():
        cur = current.get(key)
        if cur is None:
            drifted.append(RegressionEntry(key, base, 0.0))
            continue
        if base <= 0:
            continue
        if abs(cur / base - 1.0) > tolerance:
            drifted.append(RegressionEntry(key, base, cur))
    for key in current:
        if key not in baseline:
            drifted.append(RegressionEntry(key, 0.0, current[key]))
    return drifted


def document_measurements(doc: Dict[str, Any]) -> Dict[str, float]:
    """Collapse a ``repro/bench-spmm/v1`` document into the flat
    ``{key: seconds}`` map :func:`compare` consumes.

    The inverse direction is lossy on purpose: the document also carries
    GFLOPS and geomeans, which the flat harness does not model — use
    :func:`repro.bench.gate.diff_documents` when those matter.
    """
    cells = doc.get("cells") if isinstance(doc, dict) else None
    if not isinstance(cells, list):
        raise ValueError("not a BENCH document: missing 'cells' list")
    out: Dict[str, float] = {}
    for cell in cells:
        key = measurement_key(cell["kernel"], cell["graph"], cell["n"], cell["gpu"])
        out[key] = float(cell["time_ms"]) / 1e3
    return out

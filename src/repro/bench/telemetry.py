"""Machine-readable benchmark telemetry: the ``BENCH_spmm.json`` artifact.

The text tables under ``benchmarks/results/`` are for human eyes; this
module serializes the same sweep into one schema-versioned JSON document
so the performance trajectory of the repo becomes *diffable across
commits*: run metadata, one cell per ``(kernel, graph, n, gpu)`` point,
and the geomean speedups the paper headlines.

The document is deterministic in everything the regression gate reads —
simulated times are deterministic and no wall-clock timestamp is
embedded — so regenerating it on an unchanged tree produces identical
cells and geomeans, and any diff there is a real model or kernel change.
The one deliberate exception is the optional ``run.host`` block
(host wall-clock, cells/sec, worker count, memo hit/miss counts) written
by ``repro-bench sweep``: it describes the machine that produced the
file, varies run to run, and is ignored by ``repro.bench.gate`` — the
gate diffs only cells and geomeans (see docs/PERFORMANCE.md).

``make telemetry`` regenerates the repo-root ``BENCH_spmm.json`` via
``repro-bench sweep --bench-json``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.bench.runner import KernelResult, geomean, speedup_series

__all__ = [
    "SCHEMA_ID",
    "bench_document",
    "write_bench_json",
    "validate_bench_document",
    "validate_corpus_rollup",
    "write_corpus_rollup",
]

PathLike = Union[str, Path]

SCHEMA_ID = "repro/bench-spmm/v1"

#: required cell fields -> type checker
_CELL_FIELDS = {
    "kernel": str,
    "graph": str,
    "n": int,
    "gpu": str,
    "time_ms": (int, float),
    "gflops": (int, float),
}

#: required sub-fields of the optional per-cell ``attribution`` block
#: (the bottleneck-attribution data the gate ignores by default but
#: ``repro-bench report`` / ``gate --explain`` consume).
_ATTRIBUTION_FIELDS = {
    "bound_by": str,
    "breakdown_ms": dict,
    "factors": dict,
}

_GEOMEAN_FIELDS = {
    "target": str,
    "baseline": str,
    "gpu": str,
    "n": int,
    "speedup": (int, float),
}


def bench_document(
    results: Sequence[KernelResult],
    target: str = "GE-SpMM",
    baselines: Optional[Sequence[str]] = None,
    extra_run_meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the BENCH document from sweep results.

    ``target`` is the kernel whose geomean speedups are reported against
    every kernel in ``baselines`` (default: every other kernel in the
    sweep), per (GPU, N) — the aggregation the paper uses (§V-A1).
    """
    results = list(results)
    kernels = sorted({r.kernel for r in results})
    graphs = sorted({r.graph for r in results})
    widths = sorted({int(r.n) for r in results})
    gpus = sorted({r.gpu for r in results})
    if baselines is None:
        baselines = [k for k in kernels if k != target]

    cells: List[Dict[str, Any]] = []
    for r in sorted(results, key=lambda r: (r.gpu, r.graph, int(r.n), r.kernel)):
        cell: Dict[str, Any] = {
            "kernel": r.kernel,
            "graph": r.graph,
            "n": int(r.n),
            "gpu": r.gpu,
            "time_ms": r.time_s * 1e3,
            "gflops": r.gflops,
        }
        if getattr(r, "attribution", None) is not None:
            cell["attribution"] = r.attribution
        cells.append(cell)

    geomeans: List[Dict[str, Any]] = []
    if target in kernels:
        for gpu in gpus:
            for n in widths:
                for base in baselines:
                    series = speedup_series(results, target, base, gpu, n)
                    if not series:
                        continue
                    geomeans.append(
                        {
                            "target": target,
                            "baseline": base,
                            "gpu": gpu,
                            "n": int(n),
                            "speedup": geomean(series.values()),
                        }
                    )

    from repro import __version__  # late import: repro imports bench

    run: Dict[str, Any] = {
        "tool": "repro-bench",
        "version": __version__,
        "kernels": kernels,
        "graphs": graphs,
        "widths": widths,
        "gpus": gpus,
    }
    run.update(extra_run_meta or {})
    return {"schema": SCHEMA_ID, "run": run, "cells": cells, "geomeans": geomeans}


def write_bench_json(
    results: Sequence[KernelResult],
    path: PathLike,
    target: str = "GE-SpMM",
    baselines: Optional[Sequence[str]] = None,
    extra_run_meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Serialize sweep results to ``path`` and return the document.

    The ``run.host.microbench`` block written by ``make microbench``
    (:func:`repro.bench.hostbench.update_bench_json_host`) is carried
    over from an existing document — a sweep rewrite describes the same
    machine and must not silently drop the host-executor measurements.
    """
    doc = bench_document(results, target=target, baselines=baselines,
                         extra_run_meta=extra_run_meta)
    errors = validate_bench_document(doc)
    if errors:  # defensive: a writer bug must not silently ship bad telemetry
        raise ValueError("invalid BENCH document: " + "; ".join(errors))
    p = Path(path)
    if p.exists() and isinstance(doc["run"].get("host"), dict):
        try:
            prev_host = json.loads(p.read_text()).get("run", {}).get("host", {})
        except (OSError, json.JSONDecodeError):
            prev_host = {}
        if "microbench" in prev_host and "microbench" not in doc["run"]["host"]:
            doc["run"]["host"]["microbench"] = prev_host["microbench"]
    p.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def validate_corpus_rollup(doc: Any) -> List[str]:
    """Validate a corpus roll-up (``repro/corpus-rollup/v1``) document.

    Like :func:`validate_bench_document`: returns human-readable
    problems, empty list = valid.  Checks the invariants resume
    correctness rests on — win counts summing to contests, finite
    means, every kernel present in every win-rate block.
    """
    from repro.bench.corpus import ROLLUP_SCHEMA  # late: corpus imports runner

    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != ROLLUP_SCHEMA:
        errors.append(f"schema must be {ROLLUP_SCHEMA!r}, got {doc.get('schema')!r}")
    cfg = doc.get("config")
    kernels: List[str] = []
    if not isinstance(cfg, dict):
        errors.append("config: missing or not an object")
    else:
        for key in ("kernels", "widths", "gpus"):
            if not isinstance(cfg.get(key), list) or not cfg.get(key):
                errors.append(f"config.{key}: missing or empty list")
        kernels = [k for k in cfg.get("kernels", []) if isinstance(k, str)]
    if not isinstance(doc.get("corpus"), dict):
        errors.append("corpus: missing or not an object")

    def check_block(block: Any, where: str) -> None:
        if not isinstance(block, dict):
            errors.append(f"{where}: expected object")
            return
        wins, rates = block.get("wins"), block.get("win_rate")
        if not isinstance(wins, dict) or not isinstance(rates, dict):
            errors.append(f"{where}: missing wins/win_rate")
            return
        for k in kernels:
            if k not in wins or k not in rates:
                errors.append(f"{where}: kernel {k!r} missing")
        contests = block.get("contests")
        if isinstance(contests, int) and sum(wins.values()) != contests:
            errors.append(
                f"{where}: wins sum {sum(wins.values())} != contests {contests}"
            )
        for field in ("mean_row_gini", "mean_max_over_mean", "mean_sparsity"):
            v = block.get(field)
            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                    or not math.isfinite(v):
                errors.append(f"{where}.{field}: bad value {v!r}")

    check_block(doc.get("overall"), "overall")
    for section in ("regimes", "sparsity_bands"):
        blocks = doc.get(section)
        if not isinstance(blocks, dict):
            errors.append(f"{section}: missing or not an object")
            continue
        for label, block in blocks.items():
            check_block(block, f"{section}[{label!r}]")
    return errors


def write_corpus_rollup(rollup: Dict[str, Any], path: PathLike) -> None:
    """Serialize a corpus roll-up deterministically (sorted keys, no
    host data) — two runs over the same corpus/config produce
    byte-identical files, interrupted-and-resumed included."""
    errors = validate_corpus_rollup(rollup)
    if errors:  # defensive, same contract as write_bench_json
        raise ValueError("invalid corpus roll-up: " + "; ".join(errors))
    Path(path).write_text(json.dumps(rollup, indent=2, sort_keys=True) + "\n")


def _check_fields(obj: Any, fields: Dict[str, Any], where: str, errors: List[str]) -> None:
    if not isinstance(obj, dict):
        errors.append(f"{where}: expected object, got {type(obj).__name__}")
        return
    for name, typ in fields.items():
        if name not in obj:
            errors.append(f"{where}: missing field {name!r}")
        elif not isinstance(obj[name], typ) or isinstance(obj[name], bool):
            errors.append(f"{where}.{name}: wrong type {type(obj[name]).__name__}")
        elif isinstance(obj[name], float) and not math.isfinite(obj[name]):
            # NaN/inf would poison every downstream drift ratio and does
            # not survive strict JSON round-trips.
            errors.append(f"{where}.{name}: non-finite value {obj[name]!r}")
        elif name in ("time_ms", "gflops", "speedup") and obj[name] < 0:
            errors.append(f"{where}.{name}: negative value {obj[name]!r}")


def _check_attribution(attr: Any, where: str, errors: List[str]) -> None:
    """Validate one optional per-cell attribution block.

    The block is gate-ignored by default but must still be well-formed:
    reports and ``gate --explain`` read it blind, and a NaN smuggled in
    through it would break the byte-determinism contract of the
    document.
    """
    if not isinstance(attr, dict):
        errors.append(f"{where}: expected object, got {type(attr).__name__}")
        return
    for name, typ in _ATTRIBUTION_FIELDS.items():
        if name not in attr:
            errors.append(f"{where}: missing field {name!r}")
        elif not isinstance(attr[name], typ) or isinstance(attr[name], bool):
            errors.append(f"{where}.{name}: wrong type {type(attr[name]).__name__}")
    for block in ("breakdown_ms", "factors"):
        values = attr.get(block)
        if not isinstance(values, dict):
            continue
        for comp, value in values.items():
            w = f"{where}.{block}[{comp!r}]"
            if not isinstance(comp, str):
                errors.append(f"{w}: component names must be strings")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{w}: wrong type {type(value).__name__}")
            elif not math.isfinite(value):
                errors.append(f"{w}: non-finite value {value!r}")
            elif value < 0:
                errors.append(f"{w}: negative value {value!r}")
    bound = attr.get("bound_by")
    breakdown = attr.get("breakdown_ms")
    if (
        isinstance(bound, str)
        and isinstance(breakdown, dict)
        and bound not in breakdown
    ):
        errors.append(f"{where}.bound_by: {bound!r} not in breakdown_ms")


def validate_bench_document(doc: Any) -> List[str]:
    """Validate a BENCH document against the v1 schema.

    Returns a list of human-readable problems; an empty list means the
    document is valid.  Hand-rolled (no jsonschema dependency) but strict
    about everything downstream diff tooling relies on.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SCHEMA_ID:
        errors.append(f"schema must be {SCHEMA_ID!r}, got {doc.get('schema')!r}")

    run = doc.get("run")
    if not isinstance(run, dict):
        errors.append("run: missing or not an object")
    else:
        for key in ("tool", "version"):
            if not isinstance(run.get(key), str):
                errors.append(f"run.{key}: missing or not a string")
        for key in ("kernels", "graphs", "widths", "gpus"):
            if not isinstance(run.get(key), list) or not run.get(key):
                errors.append(f"run.{key}: missing or empty list")

    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("cells: missing or empty list")
    else:
        for i, cell in enumerate(cells):
            _check_fields(cell, _CELL_FIELDS, f"cells[{i}]", errors)
            if isinstance(cell, dict) and "attribution" in cell:
                _check_attribution(
                    cell["attribution"], f"cells[{i}].attribution", errors
                )
        seen = set()
        for cell in cells:
            if isinstance(cell, dict):
                key = (cell.get("kernel"), cell.get("graph"), cell.get("n"), cell.get("gpu"))
                if key in seen:
                    errors.append(f"cells: duplicate cell for {key}")
                seen.add(key)

    geomeans = doc.get("geomeans")
    if not isinstance(geomeans, list):
        errors.append("geomeans: missing (use [] when no baselines)")
    else:
        for i, g in enumerate(geomeans):
            _check_fields(g, _GEOMEAN_FIELDS, f"geomeans[{i}]", errors)
    return errors

"""Compressed Sparse Row (CSR) matrix substrate.

GE-SpMM (Huang et al., SC 2020) deliberately operates on plain CSR — the
format shared by cuSPARSE, SciPy and every GNN framework — so that the
kernel can be dropped into a framework with *zero* preprocessing or format
conversion.  This module is the reproduction's equivalent of that common
substrate: a validated, immutable CSR container with the conversions the
rest of the library (kernels, GNN layers, datasets, benchmarks) builds on.

Index arrays are ``int32`` and values ``float32``, matching the paper's
single-precision GPU setting; a 32-byte memory sector therefore holds 8
elements, which is what the coalescing model in :mod:`repro.gpusim.memory`
assumes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Tuple

import numpy as np

__all__ = ["CSRMatrix", "csr_from_coo", "csr_from_dense", "csr_from_scipy"]

INDEX_DTYPE = np.int32
VALUE_DTYPE = np.float32


@dataclass(frozen=True)
class CSRMatrix:
    """An ``M x K`` sparse matrix in CSR form.

    Attributes
    ----------
    shape:
        ``(M, K)`` logical dimensions.
    rowptr:
        ``int32[M + 1]``; ``rowptr[i]:rowptr[i+1]`` delimits row ``i``'s
        slice of ``colind``/``values``.
    colind:
        ``int32[nnz]`` column index of each stored element, sorted within
        each row.
    values:
        ``float32[nnz]`` stored element values.
    """

    shape: Tuple[int, int]
    rowptr: np.ndarray
    colind: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", (int(self.shape[0]), int(self.shape[1])))
        object.__setattr__(self, "rowptr", np.ascontiguousarray(self.rowptr, dtype=INDEX_DTYPE))
        object.__setattr__(self, "colind", np.ascontiguousarray(self.colind, dtype=INDEX_DTYPE))
        object.__setattr__(self, "values", np.ascontiguousarray(self.values, dtype=VALUE_DTYPE))
        # Lazy derived-array cache (row lengths, COO rows, int64 colind,
        # content fingerprint) — paid once per matrix, not per operation.
        object.__setattr__(self, "_derived", {})
        self._validate()

    # ------------------------------------------------------------------
    # Construction-time invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        m, k = self.shape
        if m < 0 or k < 0:
            raise ValueError(f"negative dimensions {self.shape!r}")
        if self.rowptr.ndim != 1 or self.rowptr.shape[0] != m + 1:
            raise ValueError(f"rowptr must have length M+1={m + 1}, got {self.rowptr.shape}")
        if self.rowptr[0] != 0:
            raise ValueError("rowptr[0] must be 0")
        if self.colind.shape != self.values.shape or self.colind.ndim != 1:
            raise ValueError("colind and values must be 1-D arrays of equal length")
        if self.rowptr[-1] != self.colind.shape[0]:
            raise ValueError(
                f"rowptr[-1]={int(self.rowptr[-1])} disagrees with nnz={self.colind.shape[0]}"
            )
        if np.any(np.diff(self.rowptr) < 0):
            raise ValueError("rowptr must be non-decreasing")
        if self.nnz:
            if self.colind.min() < 0 or self.colind.max() >= k:
                raise ValueError("column index out of range")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored elements (= directed edges of the graph)."""
        return int(self.colind.shape[0])

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def _cached(self, key: str, build: Callable[[], "np.ndarray | str"]):
        """Lazy derived-artifact cache.  Artifacts are built once (arrays
        are marked read-only — they are shared across callers) and
        re-served on every later access; hits/misses surface as
        ``csr.derived_cache.*``."""
        from repro import obs  # late: csr is the substrate everything imports

        cache = self._derived
        arr = cache.get(key)
        if arr is not None:
            obs.get_registry().counter("csr.derived_cache.hits", array=key).inc()
            return arr
        obs.get_registry().counter("csr.derived_cache.misses", array=key).inc()
        arr = build()
        if isinstance(arr, np.ndarray):
            arr.setflags(write=False)
        cache[key] = arr
        return arr

    def _seed_derived(self, key: str, value) -> None:
        """Install a derived artifact computed out-of-band (the delta
        path builds them incrementally while splicing the new matrix
        together — see :mod:`repro.sparse.delta`).  Seeded artifacts must
        be exactly what the lazy builder would produce; the parity suite
        enforces this.  Counted as ``csr.derived_cache.seeded`` so cache
        hit-rate reports can distinguish seeded from built entries."""
        from repro import obs  # late: csr is the substrate everything imports

        if isinstance(value, np.ndarray):
            value.setflags(write=False)
        self._derived[key] = value
        obs.get_registry().counter("csr.derived_cache.seeded", array=key).inc()

    def row_lengths(self) -> np.ndarray:
        """``int64[M]`` number of stored elements per row (out-degrees).
        Cached and read-only; copy before mutating."""
        return self._cached("row_lengths", lambda: np.diff(self.rowptr64()))

    def rowptr64(self) -> np.ndarray:
        """``int64[M+1]`` row pointers widened for address arithmetic
        (cached, read-only) — counters and trace replays used to rebuild
        this with ``rowptr.astype(int64)`` per call."""
        return self._cached("rowptr64", lambda: self.rowptr.astype(np.int64))

    def coo_rows(self) -> np.ndarray:
        """``int64[nnz]`` row index of each stored element (cached,
        read-only) — the expanded COO row array every scatter/gather path
        used to rebuild with ``np.repeat`` per call."""
        return self._cached(
            "coo_rows",
            lambda: np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_lengths()),
        )

    def colind64(self) -> np.ndarray:
        """``int64[nnz]`` column indices widened for fancy indexing
        (cached, read-only)."""
        return self._cached("colind64", lambda: self.colind.astype(np.int64))

    def fingerprint(self) -> str:
        """Content hash (BLAKE2b-128) over shape, structure, and values.

        Two structurally identical matrices share a fingerprint regardless
        of identity — the graph component of the sweep and kernel-estimate
        memo keys (``docs/PERFORMANCE.md``).  Cached after first use via
        the same counter discipline as the derived arrays, so fingerprint
        builds show up in ``csr.derived_cache.hits/misses``.

        Delta-applied matrices (:func:`repro.sparse.delta.apply_delta`)
        deliberately leave this lazy rather than chaining parent hashes:
        the full rehash on first use keeps the print a pure function of
        content, so a delta-built matrix shares memo/DiskCache entries
        with a content-identical from-scratch build and false sharing is
        impossible by construction (see docs/PERFORMANCE.md "Dynamic
        graphs").
        """
        return self._cached("fingerprint", self._compute_fingerprint)

    def _compute_fingerprint(self) -> str:
        h = hashlib.blake2b(digest_size=16)
        h.update(repr(self.shape).encode())
        for arr in (self.rowptr, self.colind, self.values):
            h.update(arr.tobytes())
        return h.hexdigest()

    def clear_derived(self) -> int:
        """Drop every lazily built derived artifact in one call: the
        derived arrays (``row_lengths``/``rowptr64``/``coo_rows``/
        ``colind64``), the content fingerprint, and any cached access
        profile.  Returns the number of artifacts dropped and bumps the
        ``csr.derived_cache.cleared`` counter by the same amount.

        This is the shard-boundary eviction hook of corpus-scale sweeps
        (``repro.bench.corpus``): the derived caches roughly double a
        matrix's resident footprint, so a streaming driver that keeps
        thousands of matrices flowing through one process must shed them
        once the matrix's cells are computed.  Everything rebuilds
        transparently on next use.
        """
        from repro import obs  # late: csr is the substrate everything imports

        dropped = len(self._derived)
        self._derived.clear()
        if dropped:
            obs.get_registry().counter("csr.derived_cache.cleared").inc(dropped)
        return dropped

    def row_slice(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(colind, values)`` views for row ``i``."""
        lo, hi = int(self.rowptr[i]), int(self.rowptr[i + 1])
        return self.colind[lo:hi], self.values[lo:hi]

    def mean_row_length(self) -> float:
        return self.nnz / max(self.nrows, 1)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ``float32[M, K]`` array (small inputs)."""
        from repro.sparse import segment  # late: segment imports this module

        if segment.engine_enabled() and self.nnz:
            flat = self.coo_rows() * np.int64(self.ncols) + self.colind64()
            if bool(np.all(np.diff(flat) > 0)):
                # Canonical pattern (sorted, duplicate-free): direct
                # placement, exact and scatter-free.
                out = np.zeros(self.shape, dtype=VALUE_DTYPE)
                out.ravel()[flat] = self.values
                return out
        # Duplicate or unsorted (row, col) entries accumulate in CSR
        # order, matching COO semantics.
        return segment.scatter_oracle_to_dense(self)

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csr_matrix` (oracle computations)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.values, self.colind, self.rowptr), shape=self.shape
        )

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` in row-major order."""
        return self.coo_rows().astype(INDEX_DTYPE), self.colind.copy(), self.values.copy()

    def transpose(self) -> "CSRMatrix":
        """Return :math:`A^T` as a new CSR matrix (used by autograd:
        the backward pass of ``C = A @ B`` is ``dB = A^T @ dC``)."""
        rows, cols, vals = self.to_coo()
        return csr_from_coo(cols, rows, vals, shape=(self.ncols, self.nrows))

    def with_values(self, values: np.ndarray) -> "CSRMatrix":
        """Return a matrix with the same pattern but new values."""
        values = np.asarray(values, dtype=VALUE_DTYPE)
        if values.shape != self.values.shape:
            raise ValueError("value array shape must match the sparsity pattern")
        return CSRMatrix(self.shape, self.rowptr, self.colind, values)

    def sorted_rows(self) -> "CSRMatrix":
        """Return a copy whose column indices are sorted within each row."""
        rows, cols, vals = self.to_coo()
        return csr_from_coo(rows, cols, vals, shape=self.shape)

    # ------------------------------------------------------------------
    # Graph-normalization helpers used by the GNN substrate
    # ------------------------------------------------------------------
    def _row_sums64(self) -> np.ndarray:
        """``float64[M]`` per-row value sums via the segment engine (or
        the scatter oracle when the engine is disabled)."""
        from repro.sparse import segment  # late: segment imports this module

        reduce = (
            segment.segment_reduce
            if segment.engine_enabled()
            else segment.scatter_oracle_segment_reduce
        )
        return reduce(self.values.astype(np.float64), self.rowptr, np.add, 0.0)

    def row_normalized(self) -> "CSRMatrix":
        """Divide each row by its sum (mean aggregation, GraphSAGE-GCN)."""
        sums = self._row_sums64()
        scale = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums != 0)
        return self.with_values(
            self.values * scale[self.coo_rows()].astype(VALUE_DTYPE)
        )

    def sym_normalized(self) -> "CSRMatrix":
        """Symmetric normalization ``D^{-1/2} A D^{-1/2}`` (GCN, Kipf & Welling)."""
        deg = np.zeros(max(self.nrows, self.ncols), dtype=np.float64)
        deg[: self.nrows] = self._row_sums64()
        inv_sqrt = np.divide(1.0, np.sqrt(deg), out=np.zeros_like(deg), where=deg > 0)
        scaled = self.values * (
            inv_sqrt[self.coo_rows()] * inv_sqrt[self.colind64()]
        ).astype(VALUE_DTYPE)
        return self.with_values(scaled)

    def add_self_loops(self, weight: float = 1.0) -> "CSRMatrix":
        """Return ``A + weight * I`` (square matrices only), deduplicating
        any existing diagonal entry by accumulation."""
        if self.nrows != self.ncols:
            raise ValueError("self loops require a square matrix")
        rows, cols, vals = self.to_coo()
        eye = np.arange(self.nrows, dtype=INDEX_DTYPE)
        rows = np.concatenate([rows, eye])
        cols = np.concatenate([cols, eye])
        vals = np.concatenate([vals, np.full(self.nrows, weight, dtype=VALUE_DTYPE)])
        return csr_from_coo(rows, cols, vals, shape=self.shape, sum_duplicates=True)

    # ------------------------------------------------------------------
    # Equality / repr
    # ------------------------------------------------------------------
    def pattern_equal(self, other: "CSRMatrix") -> bool:
        return (
            self.shape == other.shape
            and np.array_equal(self.rowptr, other.rowptr)
            and np.array_equal(self.colind, other.colind)
        )

    def allclose(self, other: "CSRMatrix", rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        return self.pattern_equal(other) and np.allclose(
            self.values, other.values, rtol=rtol, atol=atol
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"nnz/row={self.mean_row_length():.2f})"
        )


def csr_from_coo(
    rows: Iterable[int],
    cols: Iterable[int],
    values: Optional[Iterable[float]] = None,
    *,
    shape: Tuple[int, int],
    sum_duplicates: bool = False,
) -> CSRMatrix:
    """Build a :class:`CSRMatrix` from COO triplets.

    Entries are sorted into row-major order with column indices ascending
    within each row.  When ``sum_duplicates`` is true, repeated ``(i, j)``
    coordinates are accumulated; otherwise duplicates are kept verbatim
    (CSR permits them, and SpMM sums them naturally).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape or rows.ndim != 1:
        raise ValueError("rows and cols must be equal-length 1-D arrays")
    if values is None:
        values = np.ones(rows.shape[0], dtype=VALUE_DTYPE)
    values = np.asarray(values, dtype=VALUE_DTYPE)
    if values.shape != rows.shape:
        raise ValueError("values must match rows/cols length")
    m, k = int(shape[0]), int(shape[1])
    if rows.size:
        if rows.min() < 0 or rows.max() >= m:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= k:
            raise ValueError("column index out of range")

    order = np.lexsort((cols, rows))
    rows, cols, values = rows[order], cols[order], values[order]

    if sum_duplicates and rows.size:
        keys = rows * np.int64(k) + cols
        uniq, inverse = np.unique(keys, return_inverse=True)
        summed = np.zeros(uniq.shape[0], dtype=np.float64)
        np.add.at(summed, inverse, values.astype(np.float64))
        rows = (uniq // k).astype(np.int64)
        cols = (uniq % k).astype(np.int64)
        values = summed.astype(VALUE_DTYPE)

    rowptr = np.zeros(m + 1, dtype=np.int64)
    np.add.at(rowptr, rows + 1, 1)
    np.cumsum(rowptr, out=rowptr)
    return CSRMatrix((m, k), rowptr, cols, values)


def csr_from_dense(dense: np.ndarray, *, tol: float = 0.0) -> CSRMatrix:
    """Convert a dense 2-D array to CSR, dropping entries with
    ``|x| <= tol``."""
    dense = np.asarray(dense)
    if dense.ndim != 2:
        raise ValueError("expected a 2-D array")
    mask = np.abs(dense) > tol
    rows, cols = np.nonzero(mask)
    return csr_from_coo(rows, cols, dense[rows, cols], shape=dense.shape)


def csr_from_scipy(mat) -> CSRMatrix:
    """Convert any SciPy sparse matrix to a :class:`CSRMatrix`."""
    csr = mat.tocsr()
    csr.sort_indices()
    return CSRMatrix(csr.shape, csr.indptr, csr.indices, csr.data)

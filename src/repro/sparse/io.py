"""Sparse-matrix I/O: MatrixMarket and SNAP edge lists.

The paper's suite comes from two ecosystems — the SuiteSparse Matrix
Collection distributes MatrixMarket (``.mtx``) files and SNAP distributes
whitespace edge lists (``.txt``, ``#`` comments).  This module reads and
writes both, so the library runs on the *real* datasets when a user has
them, and the synthetic twins otherwise; plus a compact ``.npz``
container for fast local caching.

Readers are streaming-friendly (NumPy ``loadtxt``-free: manual buffered
parsing keeps memory proportional to nnz) and validate the header
contract they claim to implement (general/symmetric coordinate real or
pattern matrices for MatrixMarket).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Optional, TextIO, Tuple, Union

import numpy as np

from repro.sparse.csr import CSRMatrix, csr_from_coo

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "read_snap_edgelist",
    "write_snap_edgelist",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str = "rt") -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


# ----------------------------------------------------------------------
# MatrixMarket
# ----------------------------------------------------------------------


def read_matrix_market(path: PathLike) -> CSRMatrix:
    """Read a MatrixMarket coordinate file (real or pattern; general,
    symmetric or skew-symmetric) into CSR."""
    with _open_text(path) as f:
        header = f.readline().strip().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
            raise ValueError(f"not a MatrixMarket matrix file: {path}")
        fmt, field, symmetry = header[2], header[3], header[4]
        if fmt != "coordinate":
            raise ValueError("only coordinate (sparse) MatrixMarket is supported")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise ValueError(f"unsupported symmetry {symmetry!r}")

        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        m, k, nnz = (int(tok) for tok in line.split())

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float32)
        for i in range(nnz):
            parts = f.readline().split()
            if len(parts) < 2:
                raise ValueError(f"truncated MatrixMarket file at entry {i}")
            rows[i] = int(parts[0]) - 1  # 1-based on disk
            cols[i] = int(parts[1]) - 1
            if field != "pattern" and len(parts) > 2:
                vals[i] = float(parts[2])

    if symmetry in ("symmetric", "skew-symmetric"):
        # Mirror the strictly-off-diagonal entries.
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        all_rows = np.concatenate([rows, cols[off]])
        all_cols = np.concatenate([cols, rows[off]])
        all_vals = np.concatenate([vals, sign * vals[off]]).astype(np.float32)
        return csr_from_coo(all_rows, all_cols, all_vals, shape=(m, k), sum_duplicates=True)
    return csr_from_coo(rows, cols, vals, shape=(m, k))


def write_matrix_market(a: CSRMatrix, path: PathLike, comment: Optional[str] = None) -> None:
    """Write ``a`` as a general real coordinate MatrixMarket file."""
    rows, cols, vals = a.to_coo()
    with _open_text(path, "wt") as f:
        f.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                f.write(f"% {line}\n")
        f.write(f"{a.nrows} {a.ncols} {a.nnz}\n")
        for r, c, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
            f.write(f"{r + 1} {c + 1} {v:.7g}\n")


# ----------------------------------------------------------------------
# SNAP edge lists
# ----------------------------------------------------------------------


def read_snap_edgelist(
    path: PathLike,
    *,
    n_nodes: Optional[int] = None,
    undirected: bool = False,
) -> CSRMatrix:
    """Read a SNAP-style edge list (``src dst`` per line, ``#`` comments).

    Node ids are used verbatim (SNAP files are 0-based but sometimes
    sparse in id space); ``n_nodes`` overrides the inferred dimension.
    With ``undirected=True`` each edge is mirrored.
    """
    srcs, dsts = [], []
    with _open_text(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
    rows = np.asarray(srcs, dtype=np.int64)
    cols = np.asarray(dsts, dtype=np.int64)
    if rows.size and (rows.min() < 0 or cols.min() < 0):
        raise ValueError("negative node id in edge list")
    n = n_nodes if n_nodes is not None else (int(max(rows.max(), cols.max())) + 1 if rows.size else 0)
    if undirected:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    return csr_from_coo(rows, cols, np.ones(rows.size, dtype=np.float32),
                        shape=(n, n), sum_duplicates=True)


def write_snap_edgelist(a: CSRMatrix, path: PathLike, comment: Optional[str] = None) -> None:
    """Write the pattern of ``a`` as a SNAP edge list."""
    rows, cols, _ = a.to_coo()
    with _open_text(path, "wt") as f:
        if comment:
            for line in comment.splitlines():
                f.write(f"# {line}\n")
        f.write(f"# Nodes: {a.nrows} Edges: {a.nnz}\n")
        for r, c in zip(rows.tolist(), cols.tolist()):
            f.write(f"{r}\t{c}\n")


# ----------------------------------------------------------------------
# Fast local cache
# ----------------------------------------------------------------------


def save_npz(a: CSRMatrix, path: PathLike) -> None:
    """Compact binary container (NumPy .npz) for fast reloads."""
    np.savez_compressed(
        path,
        shape=np.asarray(a.shape, dtype=np.int64),
        rowptr=a.rowptr,
        colind=a.colind,
        values=a.values,
    )


def load_npz(path: PathLike) -> CSRMatrix:
    with np.load(path) as z:
        return CSRMatrix(tuple(z["shape"]), z["rowptr"], z["colind"], z["values"])

"""Structural analysis of sparse matrices.

The kernels' relative performance is driven by a handful of structural
quantities — row-length distribution (load balance for warp-per-row
designs), column locality (L2/ASpT tile reuse), and size regime (launch-
bound vs bandwidth-bound).  This module computes them; the analyzer is
used by examples, the CLI, and the load-balance discussion in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "MatrixProfile",
    "RowImbalance",
    "StructuralDrift",
    "analyze",
    "graph_regime",
    "row_imbalance",
    "row_length_histogram",
    "structural_drift",
    "gini",
]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (0 = perfectly
    balanced rows, -> 1 = all nonzeros in one row)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0 or v.sum() == 0:
        return 0.0
    n = v.size
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


@dataclass(frozen=True)
class RowImbalance:
    """Row-length load-imbalance summary for warp-per-row schedules.

    ``gini`` is the Gini coefficient of the row-length distribution
    (0 = all rows equal, -> 1 = all nonzeros in one row) and
    ``max_over_mean`` is the longest row divided by the mean row length
    — the factor by which the slowest warp of a row-split kernel
    overruns the average one.  Both are 0.0 for an empty matrix, and a
    matrix with all-equal rows has ``gini == 0.0`` with
    ``max_over_mean == 1.0``.
    """

    gini: float
    max_over_mean: float

    def is_skewed(self, threshold: float = 0.5) -> bool:
        """Whether the distribution is skewed at the given Gini cut.

        The default threshold is the one ``graph_regime`` uses for its
        uniform/skewed split: SNAP power-law graphs sit well above it,
        meshes and uniform-random matrices well below.
        """
        return self.gini >= threshold


def row_imbalance(a: CSRMatrix) -> RowImbalance:
    """Compute the :class:`RowImbalance` of ``a``.

    This is the routing statistic for balance-sensitive kernel choices
    (row-split vs merge-path): high values mean one-warp-per-row designs
    serialize on hub rows while a work-balanced partition does not.
    """
    lengths = a.row_lengths()
    if lengths.size == 0 or a.nnz == 0:
        return RowImbalance(gini=0.0, max_over_mean=0.0)
    mean = float(lengths.mean())
    return RowImbalance(
        gini=gini(lengths),
        max_over_mean=float(lengths.max()) / mean if mean > 0 else 0.0,
    )


@dataclass(frozen=True)
class StructuralDrift:
    """How far one matrix version moved from another, in the quantities
    that drive kernel selection (Yang–Buluç–Owens: the right kernel is a
    function of the row-length distribution).

    ``gini_delta`` is the absolute change of the row-length Gini
    coefficient, ``max_over_mean_ratio`` the factor (always >= 1) by
    which the longest-row/mean ratio moved in either direction, and
    ``regime_changed`` whether :func:`graph_regime` relabeled the
    matrix.  This is the gating statistic for
    :meth:`repro.core.tuning.TunedSpMM.rekey_after_delta`: small edge
    deltas barely move any of the three, so a previously tuned kernel
    keeps serving; a hub forming (or dissolving) crosses the thresholds
    and triggers a re-selection.
    """

    gini_delta: float
    max_over_mean_ratio: float
    regime_changed: bool


def structural_drift(old: CSRMatrix, new: CSRMatrix) -> StructuralDrift:
    """Compute the :class:`StructuralDrift` from ``old`` to ``new``.

    O(M) over the cached row-length arrays — cheap enough to run on
    every delta application.
    """
    a, b = row_imbalance(old), row_imbalance(new)
    lo = min(a.max_over_mean, b.max_over_mean)
    hi = max(a.max_over_mean, b.max_over_mean)
    return StructuralDrift(
        gini_delta=abs(b.gini - a.gini),
        max_over_mean_ratio=hi / lo if lo > 0 else (1.0 if hi == 0 else float("inf")),
        regime_changed=graph_regime(old) != graph_regime(new),
    )


def row_length_histogram(a: CSRMatrix, buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128)) -> Dict[str, int]:
    """Row counts per length bucket (the warp-utilization picture)."""
    lengths = a.row_lengths()
    edges = list(buckets) + [np.inf]
    out: Dict[str, int] = {}
    for lo, hi in zip(edges[:-1], edges[1:]):
        label = f"{lo}" if hi == lo + 1 else (f"{lo}-{int(hi) - 1}" if np.isfinite(hi) else f">={lo}")
        out[label] = int(((lengths >= lo) & (lengths < hi)).sum())
    return out


@dataclass(frozen=True)
class MatrixProfile:
    """Summary statistics a kernel engineer reads before choosing a design."""

    m: int
    k: int
    nnz: int
    mean_row: float
    max_row: int
    empty_rows: int
    row_gini: float  # load imbalance
    tile_occupancy: float  # mean fill of occupied 32-column tiles (locality)
    short_row_fraction: float  # rows shorter than a warp

    def summary(self) -> str:
        return (
            f"{self.m}x{self.k}, nnz={self.nnz} (nnz/row {self.mean_row:.2f}, "
            f"max {self.max_row}, {self.empty_rows} empty)\n"
            f"  row imbalance (gini)   {self.row_gini:.3f}\n"
            f"  short rows (<32)       {self.short_row_fraction * 100:.1f}%\n"
            f"  column-tile occupancy  {self.tile_occupancy:.2f} nnz per occupied 32-col tile"
        )


def graph_regime(a: CSRMatrix, long_row_threshold: float = 16.0,
                 skew_threshold: float = 0.5) -> str:
    """Coarse structural regime label for reporting aggregation.

    Rows are "long" when the mean row length reaches ``long_row_threshold``
    (a half-warp of work per row keeps warp-per-row designs busy), and
    the distribution is "skewed" when the row-length Gini coefficient
    reaches ``skew_threshold`` (SNAP power-law graphs sit well above it,
    meshes well below).  The four labels —
    ``short-rows/uniform``, ``short-rows/skewed``, ``long-rows/uniform``,
    ``long-rows/skewed`` — are the regime axis of ``repro-bench report``'s
    bound-by distribution tables.
    """
    length_label = "long-rows" if a.mean_row_length() >= long_row_threshold else "short-rows"
    skewed = row_imbalance(a).is_skewed(skew_threshold)
    return f"{length_label}/{'skewed' if skewed else 'uniform'}"


def analyze(a: CSRMatrix, tile_width: int = 32) -> MatrixProfile:
    """Compute the :class:`MatrixProfile` of ``a`` (vectorized)."""
    lengths = a.row_lengths()
    if a.nnz:
        rows = np.repeat(np.arange(a.nrows, dtype=np.int64), lengths)
        tiles = rows * ((a.ncols + tile_width - 1) // tile_width) + (
            a.colind.astype(np.int64) // tile_width
        )
        occupied = np.unique(tiles).size
        tile_occ = a.nnz / occupied
    else:
        tile_occ = 0.0
    return MatrixProfile(
        m=a.nrows,
        k=a.ncols,
        nnz=a.nnz,
        mean_row=a.mean_row_length(),
        max_row=int(lengths.max()) if a.nrows else 0,
        empty_rows=int((lengths == 0).sum()),
        row_gini=gini(lengths),
        tile_occupancy=float(tile_occ),
        short_row_fraction=float((lengths < 32).mean()) if a.nrows else 0.0,
    )

"""Preprocess-based sparse formats used by the comparison baselines.

GE-SpMM's central compatibility argument (Sections I-II) is that
competing fast-SpMM designs require converting CSR into a bespoke format —
ELLPACK-R for Fastspmm, adaptive tiles for ASpT — and that this
preprocessing (up to 5x the SpMM time in the literature; 0.01x-64.5x in the
paper's own measurements) cannot be amortized in GNN inference or sampled
training.  To reproduce that comparison honestly we implement the formats
and charge their construction explicitly.

Preprocess *work* is metered in units the timing model understands
(elements touched, sort passes) so the simulated preprocess time scales
with matrix structure the way the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix, VALUE_DTYPE

__all__ = ["EllpackR", "ASpTFormat", "to_ellpack_r", "to_aspt"]


@dataclass(frozen=True)
class EllpackR:
    """ELLPACK-R: dense ``M x max_row`` column/value slabs plus a row-length
    array.  Padding makes accesses regular at the cost of memory blowup on
    skewed graphs."""

    shape: Tuple[int, int]
    colind: np.ndarray  # int32[M, width], padded with 0
    values: np.ndarray  # float32[M, width], padded with 0
    row_lengths: np.ndarray  # int32[M]
    preprocess_elements: int  # elements touched building the format

    @property
    def width(self) -> int:
        return self.colind.shape[1]

    @property
    def padding_ratio(self) -> float:
        """Stored slots / true nnz — the memory overhead of padding."""
        nnz = int(self.row_lengths.sum())
        return (self.shape[0] * self.width) / max(nnz, 1)

    def to_dense_product(self, b: np.ndarray) -> np.ndarray:
        """Functional SpMM on the ELLPACK-R layout (oracle check)."""
        mask = np.arange(self.width)[None, :] < self.row_lengths[:, None]
        gathered = b[self.colind.astype(np.int64)] * self.values[..., None]
        gathered[~mask] = 0.0
        return gathered.sum(axis=1).astype(VALUE_DTYPE)


def to_ellpack_r(a: CSRMatrix) -> EllpackR:
    """Convert CSR to ELLPACK-R (Fastspmm's input format)."""
    lengths = a.row_lengths().astype(np.int32)
    width = int(lengths.max()) if a.nrows else 0
    colind = np.zeros((a.nrows, max(width, 1)), dtype=np.int32)
    values = np.zeros((a.nrows, max(width, 1)), dtype=VALUE_DTYPE)
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), lengths.astype(np.int64))
    # Position of each nonzero within its row.
    offsets = np.arange(a.nnz, dtype=np.int64) - np.repeat(
        a.rowptr[:-1].astype(np.int64), lengths.astype(np.int64)
    )
    colind[rows, offsets] = a.colind
    values[rows, offsets] = a.values
    # Building ELLPACK touches every nonzero once plus the padded slab.
    preprocess = a.nnz + a.nrows * max(width, 1)
    return EllpackR(a.shape, colind, values, lengths, preprocess)


@dataclass(frozen=True)
class ASpTFormat:
    """Adaptive Sparse Tiling (Hong et al., PPoPP'19) — CSR plus markers
    of locally-dense column panels.

    The real ASpT reorders columns inside row-panels so that columns with
    many nonzeros form dense tiles processed with shared-memory reuse of
    the *dense* matrix; the sparse remainder runs like plain CSR.  We keep
    the CSR arrays and record, per row-panel, the fraction of nonzeros
    falling in dense tiles — the quantity that drives its kernel model's
    dense-matrix traffic savings.
    """

    base: CSRMatrix
    panel_height: int
    tile_width: int
    dense_threshold: int
    dense_fraction: float  # nnz fraction inside locally-dense tiles
    preprocess_elements: int  # structure-analysis + reorder work

    @property
    def shape(self) -> Tuple[int, int]:
        return self.base.shape


def to_aspt(
    a: CSRMatrix,
    *,
    panel_height: int = 64,
    tile_width: int = 32,
    dense_threshold: int | None = None,
) -> ASpTFormat:
    """Analyze CSR structure into the ASpT tiled representation.

    ``dense_threshold`` is the minimum nonzero count for a (panel, column
    tile) to be classified dense; ASpT uses half the panel height by
    default.
    """
    if dense_threshold is None:
        dense_threshold = max(panel_height // 2, 1)
    if a.nnz == 0:
        return ASpTFormat(a, panel_height, tile_width, dense_threshold, 0.0, a.nrows)

    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    panels = rows // panel_height
    tiles = a.colind.astype(np.int64) // tile_width
    n_tiles = (a.ncols + tile_width - 1) // tile_width
    keys = panels * n_tiles + tiles
    uniq, counts = np.unique(keys, return_counts=True)
    dense_mask = counts >= dense_threshold
    dense_keys = uniq[dense_mask]
    in_dense = np.isin(keys, dense_keys, assume_unique=False)
    dense_fraction = float(in_dense.sum()) / a.nnz

    # Preprocess cost: histogram pass over all nonzeros, a column reorder
    # (gather + scatter of colind/values) and panel bookkeeping.  Three
    # passes over nnz is what ASpT's published preprocessing does.
    preprocess = 3 * a.nnz + a.nrows
    return ASpTFormat(a, panel_height, tile_width, dense_threshold, dense_fraction, preprocess)

"""Incremental dynamic-graph updates: batched edge deltas on CSR.

GE-SpMM's pitch is zero-preprocessing SpMM on plain CSR (Huang et al.,
SC 2020) — but a reproduction that treats every graph as immutable turns
a single edge insert into a full O(nnz) rebuild: re-sorting the COO
triplets, re-deriving ``row_lengths``/``rowptr64``/``coo_rows``/
``colind64``, re-hashing the BLAKE2b fingerprint, and re-running both
:class:`~repro.core.access_profile.AccessProfile` histogram passes.
This module is the streaming-graph path: :class:`EdgeDelta` batches
inserts, deletes, and value updates, and :func:`apply_delta` produces
the new (still immutable) :class:`~repro.sparse.csr.CSRMatrix` *with
its derived state already attached* by patching instead of rebuilding.

Cost model
----------
``apply_delta`` does index work proportional to ``Δ + (nnz of touched
rows) + M`` — the per-row merges, the rowptr prefix re-sum, and the
phase bookkeeping below — plus raw ``memcpy`` of the untouched
``colind``/``values`` spans into the new arrays.  What it *avoids* is
every O(nnz) or O(nnz log nnz) content pass of a from-scratch build:
the COO lexsort, the histogram scans, the ``np.unique`` over columns,
and (until first memo use) the fingerprint hash.

The :class:`AccessProfile` update exploits that both histograms are
additive: the ``colind mod 8`` residue histogram moves by exactly the
deleted/inserted columns (O(Δ)), and the ``(start mod 8, length)`` pair
histogram moves by the rows whose pair changed.  A subtlety the naive
"touched rows only" story misses: an insert in row *i* shifts
``rowptr`` — and therefore the start *phase* — of every later row by
the cumulative nnz delta, so rows in regions where that shift is
nonzero mod 8 rotate phase too.  The update handles both sets exactly;
when the net shift happens to be ≡ 0 (mod 8) past some row, those rows
drop out of the work entirely.

Fingerprint / memo-key semantics
--------------------------------
The fingerprint stays **content-addressed via lazy full rehash** rather
than a delta chain ``H(parent_fp, delta_digest)``.  A delta chain would
be O(Δ) but forks the key namespace: two different edit paths to the
same graph — or a delta-built graph and a from-scratch build of the same
edge set — would carry different prints and could never share
memo/DiskCache entries (lost sharing), while an unnoticed hash-domain
collision between chain values and content hashes could alias different
matrices (false sharing).  With lazy rehash the print *is* the content
hash, so a delta-applied matrix has byte-identical effective memo keys
to a from-scratch build (the parity suite asserts this) and false cache
sharing is impossible by construction.  The price — one O(nnz) hash on
the first estimate/sweep touching the new matrix — is paid at most once
per version and is far smaller than the rebuild it replaces.

Targeted invalidation
---------------------
Because every cache key is content-addressed, the *new* matrix can never
read the old matrix's entries — no invalidation is needed for
correctness.  What a streaming workload does need is garbage collection:
once a graph version is superseded, its entries in the process-wide
estimate memo, the sweep-cell memo, and the on-disk cache are dead
weight.  :func:`invalidate_matrix_caches` drops exactly those entries —
keyed on one fingerprint — and nothing else, so other matrices' cells
keep replaying at 100% hit rate (CI asserts this).

See docs/PERFORMANCE.md "Dynamic graphs" for the full contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sparse.csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

__all__ = ["EdgeDelta", "apply_delta", "invalidate_matrix_caches"]

_EMPTY_IDX = np.empty(0, dtype=np.int64)
_EMPTY_VAL = np.empty(0, dtype=VALUE_DTYPE)

EdgeArray = Union[Sequence[int], np.ndarray]


def _as_edges(
    rows: EdgeArray, cols: EdgeArray, what: str
) -> Tuple[np.ndarray, np.ndarray]:
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.ndim != 1 or rows.shape != cols.shape:
        raise ValueError(f"{what} rows/cols must be equal-length 1-D arrays")
    if rows.size and (rows.min() < 0 or cols.min() < 0):
        raise ValueError(f"{what} indices must be non-negative")
    return rows, cols


@dataclass(frozen=True)
class EdgeDelta:
    """One batch of edge mutations, canonicalized at construction.

    Each class of mutation is kept sorted by ``(row, col)``; an edge may
    appear at most once across the whole batch (inserting and deleting
    the same edge in one delta is rejected — split it into two batches
    if that is really the intent).  Column/row *range* validation
    happens in :func:`apply_delta`, where the target shape is known.
    """

    insert_rows: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    insert_cols: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    insert_values: np.ndarray = field(default_factory=lambda: _EMPTY_VAL)
    delete_rows: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    delete_cols: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    update_rows: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    update_cols: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    update_values: np.ndarray = field(default_factory=lambda: _EMPTY_VAL)

    @classmethod
    def new(
        cls,
        *,
        inserts: Optional[Tuple[EdgeArray, EdgeArray, EdgeArray]] = None,
        deletes: Optional[Tuple[EdgeArray, EdgeArray]] = None,
        updates: Optional[Tuple[EdgeArray, EdgeArray, EdgeArray]] = None,
    ) -> "EdgeDelta":
        """Build a delta from ``(rows, cols[, values])`` triples."""
        kw: Dict[str, np.ndarray] = {}
        if inserts is not None:
            kw["insert_rows"], kw["insert_cols"] = inserts[0], inserts[1]
            kw["insert_values"] = inserts[2]
        if deletes is not None:
            kw["delete_rows"], kw["delete_cols"] = deletes
        if updates is not None:
            kw["update_rows"], kw["update_cols"] = updates[0], updates[1]
            kw["update_values"] = updates[2]
        return cls(**kw)

    def __post_init__(self) -> None:
        for kind in ("insert", "delete", "update"):
            rows, cols = _as_edges(
                getattr(self, f"{kind}_rows"), getattr(self, f"{kind}_cols"), kind
            )
            order = np.lexsort((cols, rows))
            object.__setattr__(self, f"{kind}_rows", rows[order])
            object.__setattr__(self, f"{kind}_cols", cols[order])
            if kind != "delete":
                vals = np.asarray(
                    getattr(self, f"{kind}_values"), dtype=VALUE_DTYPE
                )
                if vals.shape != rows.shape:
                    raise ValueError(f"{kind} values must match rows/cols length")
                object.__setattr__(self, f"{kind}_values", vals[order])
        # Reject duplicate edges within and across mutation classes: the
        # semantics of "insert then delete X in one batch" are ambiguous,
        # and per-class duplicates would make the merge ill-defined.
        all_rows = np.concatenate([self.insert_rows, self.delete_rows, self.update_rows])
        all_cols = np.concatenate([self.insert_cols, self.delete_cols, self.update_cols])
        if all_rows.size:
            mult = np.int64(max(int(all_cols.max()) + 1, 1))
            keys = all_rows * mult + all_cols
            if np.unique(keys).size != keys.size:
                raise ValueError(
                    "an edge appears more than once in the delta batch "
                    "(within or across insert/delete/update)"
                )

    # -- inspection ----------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of edge mutations in the batch."""
        return int(
            self.insert_rows.size + self.delete_rows.size + self.update_rows.size
        )

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def touched_rows(self) -> np.ndarray:
        """Sorted unique rows any mutation lands in (``int64``)."""
        return np.unique(
            np.concatenate([self.insert_rows, self.delete_rows, self.update_rows])
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeDelta(+{self.insert_rows.size} -{self.delete_rows.size} "
            f"~{self.update_rows.size})"
        )


def _segment_positions(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat element positions of variable-length segments: for segment
    ``i``, the run ``starts[i] .. starts[i] + lengths[i]``, concatenated."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    excl_prefix = np.cumsum(lengths) - lengths
    return np.repeat(starts - excl_prefix, lengths) + np.arange(total, dtype=np.int64)


def _locate(
    old_keys: np.ndarray, query_keys: np.ndarray, what: str,
    rows: np.ndarray, cols: np.ndarray,
) -> np.ndarray:
    """Positions of ``query_keys`` inside sorted ``old_keys``; raises if
    any edge is missing (deletes/updates must name stored edges)."""
    pos = np.searchsorted(old_keys, query_keys)
    bad = (pos >= old_keys.size) | (old_keys[np.minimum(pos, old_keys.size - 1)] != query_keys) \
        if old_keys.size else np.ones(query_keys.size, dtype=bool)
    if np.any(bad):
        i = int(np.flatnonzero(bad)[0])
        raise ValueError(
            f"cannot {what} edge ({int(rows[i])}, {int(cols[i])}): not stored"
        )
    return pos


def apply_delta(a: CSRMatrix, delta: EdgeDelta) -> CSRMatrix:
    """Apply an :class:`EdgeDelta` to ``a``, returning the new matrix.

    ``a`` is untouched (matrices stay immutable; a "mutation" is a new
    version).  The new matrix arrives with its derived arrays seeded and
    — when ``a`` carries a cached :class:`AccessProfile` — an
    incrementally evolved profile attached, so no O(nnz) derived-state
    pass re-runs.  The fingerprint is deliberately left lazy (full
    rehash on first use; see the module docstring for why).

    Requirements and failure modes:

    * touched rows of ``a`` must be canonical (column-sorted,
      duplicate-free) — ``ValueError`` otherwise;
    * deletes and updates must name stored edges — ``ValueError``;
    * inserts must not collide with stored edges — ``ValueError``
      (duplicate-edge rejection);
    * indices must lie inside ``a.shape`` — ``ValueError``.
    """
    from repro import obs  # late: sparse is the substrate everything imports

    m, k = a.shape
    for kind in ("insert", "delete", "update"):
        rows = getattr(delta, f"{kind}_rows")
        cols = getattr(delta, f"{kind}_cols")
        if rows.size and (rows.max() >= m or cols.max() >= k):
            raise ValueError(f"{kind} index out of range for shape {(m, k)}")

    if delta.is_empty:
        return a

    registry = obs.get_registry()
    with obs.span(
        "sparse.delta.apply",
        inserts=int(delta.insert_rows.size),
        deletes=int(delta.delete_rows.size),
        updates=int(delta.update_rows.size),
    ):
        old_rowptr64 = a.rowptr64()
        old_lengths = a.row_lengths()

        touched = delta.touched_rows()
        seg_starts = old_rowptr64[touched]
        seg_lengths = old_lengths[touched]
        gather = _segment_positions(seg_starts, seg_lengths)
        old_cols = a.colind[gather].astype(np.int64)
        old_vals = a.values[gather]
        old_ranks = np.repeat(
            np.arange(touched.size, dtype=np.int64), seg_lengths
        )

        mult = np.int64(max(k, 1))
        old_keys = old_ranks * mult + old_cols
        if old_keys.size > 1 and np.any(np.diff(old_keys) <= 0):
            raise ValueError(
                "touched rows are not canonical (column-sorted, "
                "duplicate-free); sort with sorted_rows() before applying deltas"
            )

        rank_of = lambda rows: np.searchsorted(touched, rows)

        # Deletes and updates must hit stored edges.
        del_pos = _locate(
            old_keys, rank_of(delta.delete_rows) * mult + delta.delete_cols,
            "delete", delta.delete_rows, delta.delete_cols,
        )
        upd_pos = _locate(
            old_keys, rank_of(delta.update_rows) * mult + delta.update_cols,
            "update", delta.update_rows, delta.update_cols,
        )
        old_vals[upd_pos] = delta.update_values

        # Inserts must not collide with stored edges.
        ins_ranks = rank_of(delta.insert_rows)
        ins_keys = ins_ranks * mult + delta.insert_cols
        if old_keys.size:
            pos = np.searchsorted(old_keys, ins_keys)
            hit = (pos < old_keys.size) & (
                old_keys[np.minimum(pos, old_keys.size - 1)] == ins_keys
            )
            if np.any(hit):
                i = int(np.flatnonzero(hit)[0])
                raise ValueError(
                    f"cannot insert duplicate edge "
                    f"({int(delta.insert_rows[i])}, {int(delta.insert_cols[i])})"
                )

        keep = np.ones(old_keys.size, dtype=bool)
        keep[del_pos] = False

        # Merge the kept and inserted runs — both already key-sorted, so
        # a searchsorted placement replaces the O(k log k) argsort.
        kept_keys = old_keys[keep]
        total = kept_keys.size + ins_keys.size
        ins_dest = np.searchsorted(kept_keys, ins_keys) + np.arange(
            ins_keys.size, dtype=np.int64
        )
        kept_mask = np.ones(total, dtype=bool)
        kept_mask[ins_dest] = False
        merged_cols = np.empty(total, dtype=np.int64)
        merged_vals = np.empty(total, dtype=VALUE_DTYPE)
        merged_cols[kept_mask] = old_cols[keep]
        merged_cols[ins_dest] = delta.insert_cols
        merged_vals[kept_mask] = old_vals[keep]
        merged_vals[ins_dest] = delta.insert_values

        touched_new_lengths = np.bincount(
            np.concatenate([old_ranks[keep], ins_ranks]), minlength=touched.size
        ).astype(np.int64)

        # New row extents: only touched rows change length; the prefix
        # re-sum is the one unavoidable O(M) pass.
        new_lengths = old_lengths.copy()
        new_lengths[touched] = touched_new_lengths
        new_rowptr64 = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(new_lengths, out=new_rowptr64[1:])
        new_nnz = int(new_rowptr64[-1])

        new_colind = np.empty(new_nnz, dtype=INDEX_DTYPE)
        new_values = np.empty(new_nnz, dtype=VALUE_DTYPE)
        parent_colind64 = a._derived.get("colind64")
        parent_coo_rows = a._derived.get("coo_rows")

        # Untouched spans lie between runs of consecutive touched rows.
        breaks = np.flatnonzero(np.diff(touched) > 1) + 1
        run_first = touched[np.concatenate([[0], breaks])]
        run_last = touched[np.concatenate([breaks - 1, [touched.size - 1]])]
        span_rows = np.concatenate([[0], run_last + 1])  # span start rows
        span_ends = np.concatenate([run_first, [m]])  # span end rows (excl)
        # Few runs (a tiny delta on a big graph): raw slice copies of the
        # untouched spans, each shifted by its run's constant rowptr
        # offset — no index arrays over the untouched nnz.  Many runs:
        # per-span Python overhead would dominate, so build one gather/
        # scatter over the untouched elements instead; colind64/coo_rows
        # are then cheaper to regenerate with one flat cast/repeat than
        # to splice.
        bulk = span_rows.size > 64
        new_colind64 = (
            np.empty(new_nnz, dtype=np.int64)
            if parent_colind64 is not None and not bulk
            else None
        )
        new_coo_rows = (
            np.empty(new_nnz, dtype=np.int64)
            if parent_coo_rows is not None and not bulk
            else None
        )
        if not bulk:
            for lo, hi in zip(span_rows, span_ends):
                if lo >= hi:
                    continue
                os_, oe = int(old_rowptr64[lo]), int(old_rowptr64[hi])
                ns = int(new_rowptr64[lo])
                ne = ns + (oe - os_)
                new_colind[ns:ne] = a.colind[os_:oe]
                new_values[ns:ne] = a.values[os_:oe]
                if new_colind64 is not None:
                    new_colind64[ns:ne] = parent_colind64[os_:oe]
                if new_coo_rows is not None:
                    new_coo_rows[ns:ne] = parent_coo_rows[os_:oe]
        else:
            live = span_rows < span_ends
            s_rows, s_ends = span_rows[live], span_ends[live]
            s_lens = old_rowptr64[s_ends] - old_rowptr64[s_rows]
            dst = _segment_positions(new_rowptr64[s_rows], s_lens)
            src = dst + np.repeat(
                old_rowptr64[s_rows] - new_rowptr64[s_rows], s_lens
            )
            new_colind[dst] = a.colind[src]
            new_values[dst] = a.values[src]

        # Scatter the merged touched-row data into place.
        dest = _segment_positions(new_rowptr64[touched], touched_new_lengths)
        new_colind[dest] = merged_cols
        new_values[dest] = merged_vals
        if new_colind64 is not None:
            new_colind64[dest] = merged_cols
        if new_coo_rows is not None:
            new_coo_rows[dest] = np.repeat(touched, touched_new_lengths)
        if bulk:
            if parent_colind64 is not None:
                new_colind64 = new_colind.astype(np.int64)
            if parent_coo_rows is not None:
                new_coo_rows = np.repeat(
                    np.arange(m, dtype=np.int64), new_lengths
                )

        out = CSRMatrix((m, k), new_rowptr64, new_colind, new_values)
        out._seed_derived("rowptr64", new_rowptr64)
        out._seed_derived("row_lengths", new_lengths)
        if new_colind64 is not None:
            out._seed_derived("colind64", new_colind64)
        if new_coo_rows is not None:
            out._seed_derived("coo_rows", new_coo_rows)

        prof = a._derived.get("access_profile")
        if prof is not None:
            _seed_updated_profile(
                a, out, prof, touched, old_rowptr64, old_lengths,
                new_rowptr64, new_lengths, delta, new_nnz,
            )
            registry.counter("delta.profile.updated").inc()
        else:
            registry.counter("delta.profile.skipped").inc()

        registry.counter("delta.applied").inc()
        registry.counter("delta.edges", kind="insert").inc(int(delta.insert_rows.size))
        registry.counter("delta.edges", kind="delete").inc(int(delta.delete_rows.size))
        registry.counter("delta.edges", kind="update").inc(int(delta.update_rows.size))
        registry.counter("delta.rows_touched").inc(int(touched.size))
    return out


def _seed_updated_profile(
    a: CSRMatrix,
    out: CSRMatrix,
    prof,
    touched: np.ndarray,
    old_rowptr64: np.ndarray,
    old_lengths: np.ndarray,
    new_rowptr64: np.ndarray,
    new_lengths: np.ndarray,
    delta: EdgeDelta,
    new_nnz: int,
) -> None:
    """Evolve the parent's cached :class:`AccessProfile` onto ``out``.

    The changed-row set is the touched rows plus every row whose start
    phase rotated: row ``i``'s phase is ``rowptr[i] mod 8``, and inserts
    /deletes shift the rowptr of all later rows by the cumulative nnz
    delta — only where that shift is nonzero mod 8 does the pair change.
    """
    from repro.core.access_profile import ELEMS_PER_SECTOR, seed_access_profile

    m = a.nrows
    touched_mask = np.zeros(m, dtype=bool)
    touched_mask[touched] = True
    phase_shifted = (
        (new_rowptr64[:-1] - old_rowptr64[:-1]) % ELEMS_PER_SECTOR
    ) != 0
    changed = np.flatnonzero(touched_mask | phase_shifted)

    occupied = (
        prof.occupied_rows
        - int((old_lengths[touched] > 0).sum())
        + int((new_lengths[touched] > 0).sum())
    )
    evolved = prof.updated(
        nnz=new_nnz,
        removed_pairs=(
            old_rowptr64[changed] % ELEMS_PER_SECTOR, old_lengths[changed]
        ),
        added_pairs=(
            new_rowptr64[changed] % ELEMS_PER_SECTOR, new_lengths[changed]
        ),
        removed_cols=delta.delete_cols,
        added_cols=delta.insert_cols,
        occupied_rows=occupied,
        parent_colind=a.colind,
    )
    seed_access_profile(out, evolved)


def invalidate_matrix_caches(
    matrix_or_fingerprint: Union[CSRMatrix, str],
) -> Dict[str, int]:
    """Drop every memo/DiskCache entry keyed on one matrix fingerprint.

    Targeted garbage collection for streaming updates: when a graph
    version is superseded by :func:`apply_delta`, call this with the
    *old* matrix (or its fingerprint) to reclaim its entries from the
    process-wide kernel-estimate memo, the sweep-cell memo, and — when a
    disk cache is active — the on-disk store.  Entries for every other
    matrix are untouched, so their cells keep replaying at 100% hit rate
    (the CI streaming-update check asserts exactly this).  Returns the
    per-store drop counts; each is also counted under
    ``delta.invalidated`` with a ``store`` label.
    """
    from repro import obs
    from repro.bench.diskcache import get_disk_cache
    from repro.bench.runner import invalidate_sweep_cells_for
    from repro.gpusim.kernel import invalidate_estimates_for

    fp = (
        matrix_or_fingerprint
        if isinstance(matrix_or_fingerprint, str)
        else matrix_or_fingerprint.fingerprint()
    )
    disk = get_disk_cache()
    dropped = {
        "estimate_memo": invalidate_estimates_for(fp),
        "sweep_memo": invalidate_sweep_cells_for(fp),
        "disk": disk.invalidate_matrix(fp) if disk is not None else 0,
    }
    registry = obs.get_registry()
    for store, n in dropped.items():
        if n:
            registry.counter("delta.invalidated", store=store).inc(n)
    return dropped

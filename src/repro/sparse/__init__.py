"""Sparse-matrix substrate: CSR container, generators, reference ops,
and the preprocess-based formats used by comparison baselines."""

from repro.sparse.csr import CSRMatrix, csr_from_coo, csr_from_dense, csr_from_scipy
from repro.sparse.formats import ASpTFormat, EllpackR, to_aspt, to_ellpack_r
from repro.sparse.sampling import (
    SampledBatch,
    batch_stream,
    induced_subgraph,
    neighbor_sample,
    neighbor_sample_layers,
)
from repro.sparse.stats import MatrixProfile, analyze, gini, row_length_histogram
from repro.sparse.generators import (
    banded_random,
    erdos_renyi_nnz,
    power_law,
    rmat,
    uniform_random,
)
from repro.sparse.convert import (
    csr_to_aspt_time,
    csr_to_csc,
    csr_to_csc_time,
    csr_to_ellpack_time,
    dense_transpose_time,
)
from repro.sparse.io import (
    load_npz,
    read_matrix_market,
    read_snap_edgelist,
    save_npz,
    write_matrix_market,
    write_snap_edgelist,
)
from repro.sparse.ops import (
    flops_of_spmm,
    reference_spmm,
    reference_spmm_like,
    reference_spmv,
)
from repro.sparse.segment import (
    engine_enabled,
    scatter_oracle_segment_reduce,
    scatter_oracle_spmm_like,
    scatter_oracle_to_dense,
    segment_argmax,
    segment_reduce,
    segment_spmm_like,
    set_engine,
    use_segment_engine,
)

__all__ = [
    "CSRMatrix",
    "csr_from_coo",
    "csr_from_dense",
    "csr_from_scipy",
    "EllpackR",
    "ASpTFormat",
    "to_ellpack_r",
    "to_aspt",
    "uniform_random",
    "power_law",
    "rmat",
    "banded_random",
    "erdos_renyi_nnz",
    "reference_spmm",
    "reference_spmm_like",
    "reference_spmv",
    "flops_of_spmm",
    "segment_reduce",
    "segment_spmm_like",
    "segment_argmax",
    "scatter_oracle_segment_reduce",
    "scatter_oracle_spmm_like",
    "scatter_oracle_to_dense",
    "engine_enabled",
    "set_engine",
    "use_segment_engine",
    "SampledBatch",
    "neighbor_sample",
    "neighbor_sample_layers",
    "induced_subgraph",
    "batch_stream",
    "MatrixProfile",
    "analyze",
    "gini",
    "row_length_histogram",
    "csr_to_csc",
    "csr_to_csc_time",
    "csr_to_ellpack_time",
    "csr_to_aspt_time",
    "dense_transpose_time",
    "read_matrix_market",
    "write_matrix_market",
    "read_snap_edgelist",
    "write_snap_edgelist",
    "save_npz",
    "load_npz",
]

"""Format-conversion cost models.

The paper's compatibility argument prices *data format conversion
overheads in GNN frameworks* (abstract, Section I): any kernel that wants
a non-CSR input forces a conversion somewhere in the pipeline.  This
module provides the conversions together with simulated-GPU cost
estimates, so framework-level accounting can charge them explicitly:

* ``csr_to_csc`` — what a framework runs to get the transposed adjacency
  for backward passes if it doesn't cache it;
* ``csr_to_ellpack_time`` / ``csr_to_aspt_time`` — what adopting
  Fastspmm / ASpT would cost per matrix (ASpT's is also available on the
  kernel as ``preprocess_time``; kept here for symmetric accounting);
* ``dense_transpose_time`` — the cuBLAS ``geam`` cost of fixing
  column-major kernel outputs (also exported by the cuSPARSE baseline).

Conversion costs follow the same bandwidth-pass accounting as the rest
of the model: k passes over the data at a stated efficiency, plus kernel
launches.
"""

from __future__ import annotations

from repro.gpusim.config import GPUSpec
from repro.sparse.csr import CSRMatrix
from repro.sparse.formats import to_aspt, to_ellpack_r

__all__ = [
    "csr_to_csc",
    "csr_to_csc_time",
    "csr_to_ellpack_time",
    "csr_to_aspt_time",
    "dense_transpose_time",
]


def csr_to_csc(a: CSRMatrix) -> CSRMatrix:
    """CSC of ``a``, represented as the CSR of ``A^T`` (equivalent
    layouts; this is exactly what cusparseCsr2csc produces)."""
    return a.transpose()


def csr_to_csc_time(a: CSRMatrix, gpu: GPUSpec) -> float:
    """Simulated cusparseCsr2csc cost: a histogram pass plus a scattered
    permutation of (colind, values) — two reads and one scattered write
    per nonzero at ~50% effective bandwidth, over two kernels."""
    bytes_moved = a.nnz * 8 * 3 + a.nrows * 4
    return bytes_moved / (0.5 * gpu.dram_bandwidth) + 2 * gpu.launch_overhead_s


def csr_to_ellpack_time(a: CSRMatrix, gpu: GPUSpec) -> float:
    """Simulated CSR -> ELLPACK-R conversion: the padded slab must be
    zero-filled and every nonzero scattered into it."""
    ell = to_ellpack_r(a)
    slab_bytes = a.nrows * max(ell.width, 1) * 8
    bytes_moved = a.nnz * 8 + slab_bytes
    return bytes_moved / (0.6 * gpu.dram_bandwidth) + 2 * gpu.launch_overhead_s


def csr_to_aspt_time(a: CSRMatrix, gpu: GPUSpec) -> float:
    """Simulated CSR -> ASpT preprocessing (matches
    :meth:`repro.baselines.aspt.ASpTSpMM.preprocess_time`)."""
    fmt = to_aspt(a)
    bytes_moved = fmt.preprocess_elements * 8 * 2
    return bytes_moved / (0.12 * gpu.dram_bandwidth) + 3 * gpu.launch_overhead_s


def dense_transpose_time(m: int, n: int, gpu: GPUSpec) -> float:
    """cuBLAS geam out-of-place transpose of an ``m x n`` float32 array."""
    nbytes = 2 * m * n * 4
    return nbytes / (0.5 * gpu.l2_bandwidth) + gpu.launch_overhead_s

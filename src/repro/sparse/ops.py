"""Reference (oracle) implementations of SpMM and SpMM-like operations.

Every simulated kernel in :mod:`repro.core` and :mod:`repro.baselines` is
checked against these functions in the test suite.  They are written for
clarity and use vectorized segment reductions, not the GPU execution
model — they have no notion of warps, transactions or timing.
"""

from __future__ import annotations

import numpy as np

from repro.semiring import PLUS_TIMES, Semiring
from repro.sparse.csr import CSRMatrix, VALUE_DTYPE

__all__ = ["reference_spmm", "reference_spmm_like", "reference_spmv", "flops_of_spmm"]


def reference_spmm(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Standard SpMM oracle: ``C = A @ B`` via SciPy."""
    b = _check_dense(a, b)
    return np.asarray(a.to_scipy() @ b, dtype=VALUE_DTYPE)


def reference_spmv(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix-vector oracle: ``y = A @ x``."""
    x = np.asarray(x, dtype=VALUE_DTYPE)
    if x.shape != (a.ncols,):
        raise ValueError(f"vector length {x.shape} incompatible with {a.shape}")
    return np.asarray(a.to_scipy() @ x, dtype=VALUE_DTYPE)


def reference_spmm_like(
    a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES
) -> np.ndarray:
    """General SpMM-like oracle under an arbitrary semiring.

    Computes ``C[i, :] = reduce_k combine(A[i,k], B[k, :])`` with the
    semiring's identity for empty rows, via a vectorized segmented
    reduction over the gathered contributions.
    """
    b = _check_dense(a, b)
    m = a.nrows
    n = b.shape[1]
    out = np.full((m, n), semiring.init, dtype=VALUE_DTYPE)
    if a.nnz == 0:
        return semiring.finalize(out, a.row_lengths()).astype(VALUE_DTYPE)

    contributions = semiring.combine(
        a.values[:, None].astype(VALUE_DTYPE), b[a.colind.astype(np.int64)]
    )
    rows = np.repeat(np.arange(m, dtype=np.int64), a.row_lengths())
    if semiring.reduce is np.add.reduce:
        np.add.at(out, rows, contributions)
        # Rows with no nonzeros keep init; for plus-like semirings that is
        # already the additive identity folded into the accumulate above
        # only for occupied rows, so reset empty rows explicitly.
        empty = a.row_lengths() == 0
        out[empty] = semiring.init
    elif semiring.reduce is np.maximum.reduce:
        np.maximum.at(out, rows, contributions)
    elif semiring.reduce is np.minimum.reduce:
        np.minimum.at(out, rows, contributions)
    else:  # pragma: no cover - generic fallback for user semirings
        for i in range(m):
            lo, hi = int(a.rowptr[i]), int(a.rowptr[i + 1])
            if hi > lo:
                out[i] = semiring.reduce(contributions[lo:hi], axis=0)
    return semiring.finalize(out, a.row_lengths()).astype(VALUE_DTYPE)


def flops_of_spmm(a: CSRMatrix, n: int) -> int:
    """Theoretical floating-point operation count ``2 * nnz * N`` — the
    numerator of the paper's GFLOPS throughput metric (Section V-A3)."""
    return 2 * a.nnz * int(n)


def _check_dense(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    b = np.ascontiguousarray(b, dtype=VALUE_DTYPE)
    if b.ndim != 2 or b.shape[0] != a.ncols:
        raise ValueError(f"dense operand shape {b.shape} incompatible with {a.shape}")
    return b

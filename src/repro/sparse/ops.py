"""Reference (oracle) implementations of SpMM and SpMM-like operations.

Every simulated kernel in :mod:`repro.core` and :mod:`repro.baselines` is
checked against these functions in the test suite.  They are written for
clarity and use vectorized segment reductions, not the GPU execution
model — they have no notion of warps, transactions or timing.
"""

from __future__ import annotations

import numpy as np

from repro.semiring import PLUS_TIMES, Semiring
from repro.sparse import segment
from repro.sparse.csr import CSRMatrix, VALUE_DTYPE

__all__ = [
    "reference_spmm",
    "reference_spmm_like",
    "reference_spmm_like_multi",
    "reference_spmv",
    "flops_of_spmm",
]


def reference_spmm(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Standard SpMM oracle: ``C = A @ B`` via SciPy."""
    b = _check_dense(a, b)
    return np.asarray(a.to_scipy() @ b, dtype=VALUE_DTYPE)


def reference_spmv(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix-vector oracle: ``y = A @ x``."""
    x = np.asarray(x, dtype=VALUE_DTYPE)
    if x.shape != (a.ncols,):
        raise ValueError(f"vector length {x.shape} incompatible with {a.shape}")
    return np.asarray(a.to_scipy() @ x, dtype=VALUE_DTYPE)


def reference_spmm_like(
    a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES
) -> np.ndarray:
    """General SpMM-like oracle under an arbitrary semiring.

    Computes ``C[i, :] = reduce_k combine(A[i,k], B[k, :])`` with the
    semiring's identity for empty rows.  Executes through the
    segmented-reduction engine (:mod:`repro.sparse.segment`) for the
    builtin reductions; user-defined reductions — and every call while
    the engine is disabled — take the preserved scatter-oracle path.
    """
    b = _check_dense(a, b)
    if segment.engine_enabled() and segment.reduce_ufunc(semiring) is not None:
        return segment.segment_spmm_like(a, b, semiring)
    return segment.scatter_oracle_spmm_like(a, b, semiring)


def reference_spmm_like_multi(
    a: CSRMatrix, bs, semiring: Semiring = PLUS_TIMES
) -> list:
    """Batched :func:`reference_spmm_like`: K same-graph dense operands
    through one shared traversal (``segment_spmm_like_multi``) — the
    feature-width-batching primitive a serving layer coalesces
    concurrent same-graph requests onto.  Falls back to a per-operand
    loop for user-defined reductions or a disabled engine; each output
    is byte-identical to the corresponding single-operand call either
    way.
    """
    if segment.engine_enabled() and segment.reduce_ufunc(semiring) is not None:
        return segment.segment_spmm_like_multi(a, bs, semiring)
    return [segment.scatter_oracle_spmm_like(a, b, semiring) for b in bs]


def flops_of_spmm(a: CSRMatrix, n: int) -> int:
    """Theoretical floating-point operation count ``2 * nnz * N`` — the
    numerator of the paper's GFLOPS throughput metric (Section V-A3)."""
    return 2 * a.nnz * int(n)


def _check_dense(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    b = np.ascontiguousarray(b, dtype=VALUE_DTYPE)
    if b.ndim != 2 or b.shape[0] != a.ncols:
        raise ValueError(f"dense operand shape {b.shape} incompatible with {a.shape}")
    return b

"""Graph sampling: the sampled-batch training scenario.

One of the paper's core compatibility arguments (Sections I/II-B): in
*sampled batch training* "the sampled subgraphs are different for each
batch", so any kernel that needs per-matrix preprocessing (ASpT,
Fastspmm) pays it on every batch, while CSR-native GE-SpMM pays nothing.
This module implements the GraphSAGE-style samplers that produce those
per-batch subgraphs, enabling the amortization benchmark
(``benchmarks/bench_ext_sampling.py``) and the sampled-training example.

All samplers are vectorized and deterministic given a generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sparse.csr import CSRMatrix, csr_from_coo

__all__ = [
    "SampledBatch",
    "neighbor_sample",
    "neighbor_sample_layers",
    "induced_subgraph",
    "batch_stream",
]


@dataclass(frozen=True)
class SampledBatch:
    """A minibatch: seed nodes, sampled block adjacency, node mapping.

    ``block`` is the bipartite aggregation matrix: rows = output nodes
    (seeds), columns = input nodes (seeds + sampled neighbors), entries =
    sampled edges.  ``nodes`` maps block columns back to global ids.
    """

    seeds: np.ndarray  # int64[batch]
    nodes: np.ndarray  # int64[n_inputs]; nodes[:batch] == seeds
    block: CSRMatrix  # (batch, n_inputs)

    @property
    def batch_size(self) -> int:
        return int(self.seeds.size)

    @property
    def n_inputs(self) -> int:
        return int(self.nodes.size)


def neighbor_sample(
    graph: CSRMatrix,
    seeds: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
) -> SampledBatch:
    """GraphSAGE one-hop neighbor sampling.

    For each seed, keep at most ``fanout`` of its out-edges (uniformly,
    without replacement); relabel the touched nodes compactly.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        raise ValueError("empty seed set")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    src_rows: List[np.ndarray] = []
    dst_cols: List[np.ndarray] = []
    vals: List[np.ndarray] = []
    for out_row, s in enumerate(seeds):
        cols, v = graph.row_slice(int(s))
        deg = cols.size
        if deg == 0:
            continue
        if deg > fanout:
            pick = rng.choice(deg, size=fanout, replace=False)
            cols, v = cols[pick], v[pick]
        src_rows.append(np.full(cols.size, out_row, dtype=np.int64))
        dst_cols.append(cols.astype(np.int64))
        vals.append(v)
    if src_rows:
        rows = np.concatenate(src_rows)
        cols = np.concatenate(dst_cols)
        values = np.concatenate(vals)
    else:
        rows = np.zeros(0, dtype=np.int64)
        cols = np.zeros(0, dtype=np.int64)
        values = np.zeros(0, dtype=np.float32)

    # Compact relabeling: seeds first (so self features line up), then
    # newly-touched neighbors in first-seen order.
    seen = dict((int(s), i) for i, s in enumerate(seeds))
    extra: List[int] = []
    remapped = np.empty(cols.size, dtype=np.int64)
    for i, c in enumerate(cols.tolist()):
        idx = seen.get(c)
        if idx is None:
            idx = len(seeds) + len(extra)
            seen[c] = idx
            extra.append(c)
        remapped[i] = idx
    nodes = np.concatenate([seeds, np.asarray(extra, dtype=np.int64)])
    block = csr_from_coo(
        rows, remapped, values, shape=(seeds.size, nodes.size), sum_duplicates=True
    )
    return SampledBatch(seeds=seeds, nodes=nodes, block=block)


def neighbor_sample_layers(
    graph: CSRMatrix,
    seeds: np.ndarray,
    fanouts: List[int],
    rng: np.random.Generator,
) -> List[SampledBatch]:
    """Multi-hop GraphSAGE sampling: one block per layer, innermost first.

    ``fanouts[i]`` is the fanout of layer ``i`` (input side first), as in
    DGL's ``MultiLayerNeighborSampler``.  The returned list is ordered
    from the layer applied first (widest input set) to the output layer,
    whose rows are the original seeds.
    """
    if not fanouts:
        raise ValueError("need at least one fanout")
    blocks: List[SampledBatch] = []
    frontier = np.asarray(seeds, dtype=np.int64)
    # Build outward from the seeds (output layer first), then reverse.
    for fanout in reversed(fanouts):
        batch = neighbor_sample(graph, frontier, fanout, rng)
        blocks.append(batch)
        frontier = batch.nodes  # next layer must cover all inputs
    blocks.reverse()
    return blocks


def induced_subgraph(graph: CSRMatrix, nodes: np.ndarray) -> CSRMatrix:
    """Subgraph induced on ``nodes`` (relabeled 0..len-1), keeping edges
    whose both endpoints are selected."""
    nodes = np.asarray(nodes, dtype=np.int64)
    if np.unique(nodes).size != nodes.size:
        raise ValueError("duplicate nodes in selection")
    lookup = -np.ones(graph.ncols, dtype=np.int64)
    lookup[nodes] = np.arange(nodes.size)
    rows, cols, vals = graph.to_coo()
    keep = (lookup[rows] >= 0) & (lookup[cols.astype(np.int64)] >= 0)
    return csr_from_coo(
        lookup[rows[keep]],
        lookup[cols[keep].astype(np.int64)],
        vals[keep],
        shape=(nodes.size, nodes.size),
    )


def batch_stream(
    graph: CSRMatrix,
    batch_size: int,
    fanout: int,
    n_batches: int,
    seed: int = 0,
    population: Optional[np.ndarray] = None,
):
    """Yield ``n_batches`` sampled batches over shuffled seed nodes —
    the workload shape of GraphSAGE minibatch training, where *every*
    batch is a fresh sparse matrix (the preprocess-hostile regime)."""
    rng = np.random.default_rng(seed)
    pool = population if population is not None else np.arange(graph.nrows, dtype=np.int64)
    for _ in range(n_batches):
        seeds = rng.choice(pool, size=min(batch_size, pool.size), replace=False)
        yield neighbor_sample(graph, seeds, fanout, rng)

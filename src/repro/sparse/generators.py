"""Vectorized random-graph / sparse-matrix generators.

The paper evaluates on (a) synthetic uniform random matrices generated with
Ligra's random generator (Section V-B: M=16K/65K/262K with nnz = 10*M),
(b) the three citation graphs, and (c) 64 SNAP matrices.  Real traces are
not available offline, so these generators produce structure-matched
synthetic twins: what the kernels and the memory model actually respond to
is the row-length distribution, matrix scale, and column locality, all of
which are controllable here.

All generators are deterministic given ``seed`` and vectorized (no
per-edge Python loops), per the HPC-Python guidance.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix, csr_from_coo

__all__ = [
    "uniform_random",
    "power_law",
    "rmat",
    "banded_random",
    "erdos_renyi_nnz",
]


def _finish(
    rows: np.ndarray,
    cols: np.ndarray,
    m: int,
    k: int,
    seed: int,
    weighted: bool,
) -> CSRMatrix:
    # Deduplicate the pattern first, then draw values, so duplicate draws
    # never inflate weights (adjacency weights stay in their stated range).
    pattern = csr_from_coo(rows, cols, None, shape=(m, k), sum_duplicates=True)
    if weighted:
        rng = np.random.default_rng(seed + 0x9E3779B9)
        vals = rng.uniform(0.5, 1.5, size=pattern.nnz).astype(np.float32)
    else:
        vals = np.ones(pattern.nnz, dtype=np.float32)
    return pattern.with_values(vals)


def uniform_random(
    m: int, nnz: int, k: int | None = None, *, seed: int = 0, weighted: bool = False
) -> CSRMatrix:
    """Uniform random matrix à la Ligra's ``rMatGraph``-free generator:
    ``nnz`` entries with independently uniform row and column coordinates.

    This is the generator behind the paper's profiling matrices
    (M=65K, nnz=650K, ...).  Duplicate coordinates are merged, so the
    realized nnz can be marginally below the request for dense settings.
    """
    k = m if k is None else k
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=nnz, dtype=np.int64)
    cols = rng.integers(0, k, size=nnz, dtype=np.int64)
    return _finish(rows, cols, m, k, seed, weighted)


def power_law(
    m: int,
    nnz: int,
    *,
    exponent: float = 2.1,
    seed: int = 0,
    weighted: bool = False,
    k: int | None = None,
) -> CSRMatrix:
    """Chung–Lu style power-law graph: expected degree of vertex ``v`` is
    proportional to ``(v + 1) ** (-1 / (exponent - 1))``.

    Social / web graphs in SNAP have heavy-tailed degree distributions;
    this generator reproduces the load imbalance (a few very long rows,
    many short ones) that stresses warp-per-row kernels.
    """
    k = m if k is None else k
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, m + 1, dtype=np.float64)
    w = ranks ** (-1.0 / (exponent - 1.0))
    p = w / w.sum()
    rows = rng.choice(m, size=nnz, p=p)
    # Columns follow the same skew (hubs attract edges on both sides) but
    # with an independent permutation so the diagonal is not artificially
    # dense.
    perm = rng.permutation(k)
    cols = perm[rng.choice(min(m, k), size=nnz, p=p[: min(m, k)] / p[: min(m, k)].sum())]
    return _finish(rows, cols, m, k, seed, weighted)


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = False,
) -> CSRMatrix:
    """Recursive-MATrix (Graph500) generator: ``2**scale`` vertices,
    ``edge_factor * 2**scale`` edges with self-similar community structure.

    RMAT produces the clustered column locality that ASpT's locally-dense
    tiling exploits, so it is the stress generator for the preprocessing
    baseline comparison (Table VIII).
    """
    m = 1 << scale
    nnz = edge_factor * m
    rng = np.random.default_rng(seed)
    rows = np.zeros(nnz, dtype=np.int64)
    cols = np.zeros(nnz, dtype=np.int64)
    # Vectorized bit-by-bit recursive descent: at each of `scale` levels,
    # choose one of the four quadrants for every edge at once.
    pa, pb, pc = a, b, c
    for level in range(scale):
        r = rng.random(nnz)
        quad_b = (r >= pa) & (r < pa + pb)
        quad_c = (r >= pa + pb) & (r < pa + pb + pc)
        quad_d = r >= pa + pb + pc
        bit = 1 << (scale - level - 1)
        rows += bit * (quad_c | quad_d)
        cols += bit * (quad_b | quad_d)
    return _finish(rows, cols, m, m, seed, weighted)


def banded_random(
    m: int,
    nnz: int,
    bandwidth: int,
    *,
    seed: int = 0,
    weighted: bool = False,
) -> CSRMatrix:
    """Random matrix with entries confined to a diagonal band — models
    road networks and meshes (high column locality, near-uniform short
    rows)."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=nnz, dtype=np.int64)
    offsets = rng.integers(-bandwidth, bandwidth + 1, size=nnz, dtype=np.int64)
    cols = np.clip(rows + offsets, 0, m - 1)
    return _finish(rows, cols, m, m, seed, weighted)


def erdos_renyi_nnz(m: int, k: int, nnz: int, *, seed: int = 0) -> CSRMatrix:
    """Exactly-``nnz`` Erdős–Rényi matrix via sampling without replacement
    (small matrices only; used by tests that need exact counts)."""
    total = m * k
    if nnz > total:
        raise ValueError("nnz exceeds matrix capacity")
    rng = np.random.default_rng(seed)
    flat = rng.choice(total, size=nnz, replace=False)
    rows, cols = np.divmod(flat, k)
    vals = rng.standard_normal(nnz).astype(np.float32)
    return csr_from_coo(rows, cols, vals, shape=(m, k))

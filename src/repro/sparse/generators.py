"""Vectorized random-graph / sparse-matrix generators.

The paper evaluates on (a) synthetic uniform random matrices generated with
Ligra's random generator (Section V-B: M=16K/65K/262K with nnz = 10*M),
(b) the three citation graphs, and (c) 64 SNAP matrices.  Real traces are
not available offline, so these generators produce structure-matched
synthetic twins: what the kernels and the memory model actually respond to
is the row-length distribution, matrix scale, and column locality, all of
which are controllable here.

All generators are deterministic given ``seed`` and vectorized (no
per-edge Python loops), per the HPC-Python guidance.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix, csr_from_coo

__all__ = [
    "uniform_random",
    "power_law",
    "rmat",
    "banded_random",
    "erdos_renyi_nnz",
    "pruned_magnitude",
    "pruned_random",
    "pruned_structured",
]


def _finish(
    rows: np.ndarray,
    cols: np.ndarray,
    m: int,
    k: int,
    seed: int,
    weighted: bool,
) -> CSRMatrix:
    # Deduplicate the pattern first, then draw values, so duplicate draws
    # never inflate weights (adjacency weights stay in their stated range).
    pattern = csr_from_coo(rows, cols, None, shape=(m, k), sum_duplicates=True)
    if weighted:
        rng = np.random.default_rng(seed + 0x9E3779B9)
        vals = rng.uniform(0.5, 1.5, size=pattern.nnz).astype(np.float32)
    else:
        vals = np.ones(pattern.nnz, dtype=np.float32)
    return pattern.with_values(vals)


def uniform_random(
    m: int, nnz: int, k: int | None = None, *, seed: int = 0, weighted: bool = False
) -> CSRMatrix:
    """Uniform random matrix à la Ligra's ``rMatGraph``-free generator:
    ``nnz`` entries with independently uniform row and column coordinates.

    This is the generator behind the paper's profiling matrices
    (M=65K, nnz=650K, ...).  Duplicate coordinates are merged, so the
    realized nnz can be marginally below the request for dense settings.
    """
    k = m if k is None else k
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=nnz, dtype=np.int64)
    cols = rng.integers(0, k, size=nnz, dtype=np.int64)
    return _finish(rows, cols, m, k, seed, weighted)


def power_law(
    m: int,
    nnz: int,
    *,
    exponent: float = 2.1,
    seed: int = 0,
    weighted: bool = False,
    k: int | None = None,
) -> CSRMatrix:
    """Chung–Lu style power-law graph: expected degree of vertex ``v`` is
    proportional to ``(v + 1) ** (-1 / (exponent - 1))``.

    Social / web graphs in SNAP have heavy-tailed degree distributions;
    this generator reproduces the load imbalance (a few very long rows,
    many short ones) that stresses warp-per-row kernels.
    """
    k = m if k is None else k
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, m + 1, dtype=np.float64)
    w = ranks ** (-1.0 / (exponent - 1.0))
    p = w / w.sum()
    rows = rng.choice(m, size=nnz, p=p)
    # Columns follow the same skew (hubs attract edges on both sides) but
    # with an independent permutation so the diagonal is not artificially
    # dense.
    perm = rng.permutation(k)
    cols = perm[rng.choice(min(m, k), size=nnz, p=p[: min(m, k)] / p[: min(m, k)].sum())]
    return _finish(rows, cols, m, k, seed, weighted)


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = False,
) -> CSRMatrix:
    """Recursive-MATrix (Graph500) generator: ``2**scale`` vertices,
    ``edge_factor * 2**scale`` edges with self-similar community structure.

    RMAT produces the clustered column locality that ASpT's locally-dense
    tiling exploits, so it is the stress generator for the preprocessing
    baseline comparison (Table VIII).
    """
    m = 1 << scale
    nnz = edge_factor * m
    rng = np.random.default_rng(seed)
    rows = np.zeros(nnz, dtype=np.int64)
    cols = np.zeros(nnz, dtype=np.int64)
    # Vectorized bit-by-bit recursive descent: at each of `scale` levels,
    # choose one of the four quadrants for every edge at once.
    pa, pb, pc = a, b, c
    for level in range(scale):
        r = rng.random(nnz)
        quad_b = (r >= pa) & (r < pa + pb)
        quad_c = (r >= pa + pb) & (r < pa + pb + pc)
        quad_d = r >= pa + pb + pc
        bit = 1 << (scale - level - 1)
        rows += bit * (quad_c | quad_d)
        cols += bit * (quad_b | quad_d)
    return _finish(rows, cols, m, m, seed, weighted)


def banded_random(
    m: int,
    nnz: int,
    bandwidth: int,
    *,
    seed: int = 0,
    weighted: bool = False,
) -> CSRMatrix:
    """Random matrix with entries confined to a diagonal band — models
    road networks and meshes (high column locality, near-uniform short
    rows)."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=nnz, dtype=np.int64)
    offsets = rng.integers(-bandwidth, bandwidth + 1, size=nnz, dtype=np.int64)
    cols = np.clip(rows + offsets, 0, m - 1)
    return _finish(rows, cols, m, m, seed, weighted)


# ----------------------------------------------------------------------
# DLMC-style pruned-DNN sparsity patterns
#
# The Deep Learning Matrix Collection (Gale et al., the dataset behind
# PyTorch's benchmarks/sparse/dlmc suite) consists of DNN weight
# matrices pruned by different methods at sparsities 0.5-0.98.  The
# three generators below are synthetic twins of its main pattern
# families: magnitude pruning and random pruning produce unstructured
# patterns (near-uniform, but magnitude keeps the value distribution's
# heavy tail), while structured pruning removes whole column blocks per
# row, producing the clustered column locality that tiling kernels
# exploit.  All are deterministic given ``seed`` and hit the requested
# sparsity exactly (up to integer rounding of the kept-entry count).
# ----------------------------------------------------------------------


def _check_sparsity(sparsity: float) -> float:
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity!r}")
    return float(sparsity)


def _kept_count(total: int, sparsity: float) -> int:
    return total - int(round(sparsity * total))


def _csr_from_flat(flat: np.ndarray, values: np.ndarray, m: int, k: int) -> CSRMatrix:
    rows, cols = np.divmod(flat.astype(np.int64), k)
    return csr_from_coo(rows, cols, values, shape=(m, k))


def pruned_magnitude(m: int, k: int, sparsity: float, *, seed: int = 0) -> CSRMatrix:
    """Magnitude-pruned dense weight matrix (DLMC ``magnitude_pruning``):
    draw ``W ~ N(0, 1)`` and keep the largest-magnitude entries so the
    realized sparsity matches ``sparsity`` exactly.

    The surviving pattern is unstructured (near-uniform) but the value
    distribution keeps the Gaussian's tails — kept weights are the large
    ones, unlike :func:`pruned_random`'s unbiased sample.
    """
    sparsity = _check_sparsity(sparsity)
    rng = np.random.default_rng(seed)
    w = rng.standard_normal(m * k).astype(np.float32)
    keep = _kept_count(m * k, sparsity)
    if keep == 0:
        return csr_from_coo([], [], [], shape=(m, k))
    # Stable argsort (not argpartition) so tie order — and therefore the
    # matrix fingerprint — is deterministic across NumPy versions.
    order = np.argsort(-np.abs(w), kind="stable")
    flat = np.sort(order[:keep])
    return _csr_from_flat(flat, w[flat], m, k)


def pruned_random(m: int, k: int, sparsity: float, *, seed: int = 0) -> CSRMatrix:
    """Randomly pruned weight matrix (DLMC ``random_pruning``): an exact
    ``(1 - sparsity)`` fraction of positions survives, drawn uniformly
    without replacement, with Gaussian values."""
    sparsity = _check_sparsity(sparsity)
    rng = np.random.default_rng(seed)
    keep = _kept_count(m * k, sparsity)
    if keep == 0:
        return csr_from_coo([], [], [], shape=(m, k))
    flat = np.sort(rng.choice(m * k, size=keep, replace=False))
    values = rng.standard_normal(keep).astype(np.float32)
    return _csr_from_flat(flat, values, m, k)


def pruned_structured(
    m: int, k: int, sparsity: float, *, block: int = 4, seed: int = 0
) -> CSRMatrix:
    """Block-structured pruning: per-row column blocks of width ``block``
    are kept or dropped whole, by descending block L2 norm of a Gaussian
    weight draw.

    This is the structured-sparsity family of the DLMC taxonomy: the
    surviving pattern has dense runs of ``block`` consecutive columns,
    the clustered locality that locally-dense tiling (ASpT, tensor-core
    routing) exploits and that unstructured pruning destroys.
    """
    sparsity = _check_sparsity(sparsity)
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block!r}")
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((m, k)).astype(np.float32)
    n_blocks = (k + block - 1) // block
    padded = np.zeros((m, n_blocks * block), dtype=np.float64)
    padded[:, :k] = w
    norms = np.sqrt((padded.reshape(m, n_blocks, block) ** 2).sum(axis=2)).ravel()
    keep_units = _kept_count(m * n_blocks, sparsity)
    if keep_units == 0:
        return csr_from_coo([], [], [], shape=(m, k))
    order = np.argsort(-norms, kind="stable")
    units = np.sort(order[:keep_units]).astype(np.int64)
    rows = np.repeat(units // n_blocks, block)
    cols = (units % n_blocks)[:, None] * block + np.arange(block, dtype=np.int64)
    cols = cols.ravel()
    in_range = cols < k  # drop the padding tail of the last block
    rows, cols = rows[in_range], cols[in_range]
    return csr_from_coo(rows, cols, w[rows, cols], shape=(m, k))


def erdos_renyi_nnz(m: int, k: int, nnz: int, *, seed: int = 0) -> CSRMatrix:
    """Exactly-``nnz`` Erdős–Rényi matrix via sampling without replacement
    (small matrices only; used by tests that need exact counts)."""
    total = m * k
    if nnz > total:
        raise ValueError("nnz exceeds matrix capacity")
    rng = np.random.default_rng(seed)
    flat = rng.choice(total, size=nnz, replace=False)
    rows, cols = np.divmod(flat, k)
    vals = rng.standard_normal(nnz).astype(np.float32)
    return csr_from_coo(rows, cols, vals, shape=(m, k))

"""Segmented-reduction host execution engine.

Yang et al.'s *Design Principles for Sparse Matrix Multiplication on the
GPU* frames row-split SpMM as gather + segmented reduce; this module
brings the same structure to the host executor: contributions are
gathered once and reduced per CSR row with a single
``ufunc.reduceat`` call instead of the order-of-magnitude slower
``ufunc.at`` scatter loop.  Every numeric hot path —
``reference_spmm_like``, ``CSRMatrix.to_dense`` /
``row_normalized`` / ``sym_normalized``, and ``gnn.aggregate`` — routes
through here by default; the original scatter implementations are
preserved verbatim as ``scatter_oracle_*`` functions and enforced as
parity oracles by ``tests/test_segment_engine.py``.

The parity contract (see ``docs/PERFORMANCE.md``):

* ``max`` / ``min`` reductions are **bit-identical** to the scatter
  oracles on any input — the reduction is order-independent, so
  ``np.maximum.reduceat`` and ``np.maximum.at`` agree float for float.
* ``plus`` / ``mean`` reductions are bit-identical whenever the
  accumulation is exact (integer-valued float32 operands, which the
  parity suite locks in), and agree to tight ``allclose`` tolerances on
  arbitrary floats.  ``np.add.reduceat`` does *not* reduce strictly
  left-to-right (NumPy pairs segment tails), so a rounding-level
  reassociation relative to the sequential scatter is unavoidable; all
  existing kernel/oracle comparisons use ``allclose`` and are
  insensitive to it.

Empty rows never reach ``reduceat`` (whose semantics for empty segments
are not a reduction): the output is pre-filled with the semiring
identity and only non-empty rows are overwritten, so identities are
exact by construction.

``set_engine(False)`` / ``use_segment_engine(False)`` flip every routed
call site back to the scatter oracles — used by the parity suite and by
``benchmarks/bench_host_executor.py`` to measure the speedup.

Column tiling (the host analogue of GE-SpMM's coarse-grained warp
merging, which reuses each loaded sparse row across feature tiles):
``segment_spmm_like`` splits the dense operand into column tiles of
width ``T`` and gathers + combines + reduces each tile inside a
preallocated ``(nnz, T)`` workspace drawn from a per-process pool, so
peak transient memory is O(nnz·T) instead of O(nnz·N) and the working
set stays cache-resident on wide operands.  ``T`` adapts from an
LLC-size heuristic (``REPRO_LLC_BYTES``), overridable via
:func:`set_tile_width` / ``REPRO_TILE_WIDTH``.  Tiling columns never
reorders a row's reduction, so the tiled path is **bit-identical** to
the untiled one for every reduction (the parity suite asserts exact
equality); ``set_tiling(False)`` / ``use_tiling(False)`` keep the
untiled path available as the parity oracle and microbench baseline.
``segment_spmm_like_multi`` runs K same-graph operands through one
traversal sharing the pooled workspace and cached gather indices — the
feature-width-batching primitive the serving layer coalesces concurrent
requests onto.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.semiring import Semiring
from repro.sparse.csr import CSRMatrix, VALUE_DTYPE

__all__ = [
    "segment_reduce",
    "segment_spmm_like",
    "segment_spmm_like_multi",
    "segment_max_with_argmax",
    "segment_argmax",
    "scatter_oracle_segment_reduce",
    "scatter_oracle_spmm_like",
    "scatter_oracle_to_dense",
    "reduce_ufunc",
    "engine_enabled",
    "set_engine",
    "use_segment_engine",
    "tiling_enabled",
    "set_tiling",
    "use_tiling",
    "tile_width_for",
    "set_tile_width",
    "use_tile_width",
    "clear_workspace_pool",
    "workspace_stats",
]

_ENGINE_ENABLED = True


def engine_enabled() -> bool:
    """True when the segmented-reduction engine is the default executor."""
    return _ENGINE_ENABLED


def set_engine(enabled: bool) -> bool:
    """Enable/disable the engine process-wide; returns the previous state."""
    global _ENGINE_ENABLED
    prev = _ENGINE_ENABLED
    _ENGINE_ENABLED = bool(enabled)
    return prev


@contextmanager
def use_segment_engine(enabled: bool = True) -> Iterator[None]:
    """Scoped engine toggle (parity tests, microbenchmark baselines)."""
    prev = set_engine(enabled)
    try:
        yield
    finally:
        set_engine(prev)


# ----------------------------------------------------------------------
# Column-tiling controls
# ----------------------------------------------------------------------

_TILING_ENABLED = True

#: Forced tile width; None means the adaptive LLC heuristic.  Seeded
#: from ``REPRO_TILE_WIDTH`` at import, overridable at runtime.
_TILE_WIDTH: Optional[int] = None
if os.environ.get("REPRO_TILE_WIDTH"):
    _TILE_WIDTH = max(1, int(os.environ["REPRO_TILE_WIDTH"]))

#: Assumed last-level-cache size for the adaptive heuristic.  The
#: workspace budget is a quarter of it: the gather workspace shares the
#: LLC with the dense-operand tile, the reduction output, and whatever
#: else the process keeps warm.  Deliberately a fixed constant (not
#: probed) so tile choices — and therefore the bit-exact telemetry —
#: are reproducible across hosts; override via ``REPRO_LLC_BYTES``.
_LLC_BYTES = int(os.environ.get("REPRO_LLC_BYTES", 32 * 1024 * 1024))
_WORKSPACE_BUDGET = _LLC_BYTES // 4


def tiling_enabled() -> bool:
    """True when ``segment_spmm_like`` runs the column-tiled executor."""
    return _TILING_ENABLED


def set_tiling(enabled: bool) -> bool:
    """Enable/disable column tiling process-wide; returns the previous
    state.  The untiled path is the tiled executor's parity oracle."""
    global _TILING_ENABLED
    prev = _TILING_ENABLED
    _TILING_ENABLED = bool(enabled)
    return prev


@contextmanager
def use_tiling(enabled: bool = True) -> Iterator[None]:
    """Scoped tiling toggle (parity tests, microbench baselines)."""
    prev = set_tiling(enabled)
    try:
        yield
    finally:
        set_tiling(prev)


def set_tile_width(width: Optional[int]) -> Optional[int]:
    """Force the tile width (None restores the adaptive heuristic);
    returns the previous setting."""
    global _TILE_WIDTH
    prev = _TILE_WIDTH
    _TILE_WIDTH = None if width is None else max(1, int(width))
    return prev


@contextmanager
def use_tile_width(width: Optional[int]) -> Iterator[None]:
    """Scoped :func:`set_tile_width`."""
    prev = set_tile_width(width)
    try:
        yield
    finally:
        set_tile_width(prev)


def tile_width_for(nnz: int, n: int) -> int:
    """Tile width for an ``(nnz, n)`` contributions matrix.

    Forced width (:func:`set_tile_width` / ``REPRO_TILE_WIDTH``) wins;
    otherwise the width is the largest multiple of 8 (keeping the
    argmax uint64 row-prefilter applicable) whose ``(nnz, T)`` float32
    workspace fits the LLC budget, floored at 8 and capped at ``n``.
    """
    if _TILE_WIDTH is not None:
        return max(1, min(_TILE_WIDTH, n)) if n else _TILE_WIDTH
    if nnz <= 0 or n <= 0:
        return max(n, 1)
    t = _WORKSPACE_BUDGET // (4 * nnz)
    if t >= n:
        return n
    return min(n, max(8, (t // 8) * 8))


class _WorkspacePool:
    """Per-process pool of flat float32 scratch buffers.

    The tiled executor draws its ``(nnz, T)`` gather workspace and
    ``(K, T)`` operand-tile buffer from here, so steady-state SpMM calls
    allocate nothing: ``segment.workspace.reuses`` counts pool hits,
    ``.allocs`` fresh buffers, and the ``segment.workspace.bytes_peak``
    gauge tracks the high-water mark of pool-owned bytes.  Thread-safe
    (sweep workers share the process pool); the free list is capped so
    a one-off giant operand cannot pin memory forever.
    """

    _MAX_FREE = 4

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: List[np.ndarray] = []
        self._owned_bytes = 0
        self._peak_bytes = 0

    def acquire(self, n_elems: int) -> np.ndarray:
        n_elems = int(n_elems)
        reg = obs.get_registry()
        with self._lock:
            best = -1
            for i, buf in enumerate(self._free):
                if buf.size >= n_elems and (best < 0 or buf.size < self._free[best].size):
                    best = i
            if best >= 0:
                buf = self._free.pop(best)
                reg.counter("segment.workspace.reuses").inc()
                return buf
        buf = np.empty(n_elems, dtype=VALUE_DTYPE)
        with self._lock:
            self._owned_bytes += buf.nbytes
            self._peak_bytes = max(self._peak_bytes, self._owned_bytes)
            peak = self._peak_bytes
        reg.counter("segment.workspace.allocs").inc()
        reg.gauge("segment.workspace.bytes_peak").set(peak)
        return buf

    def release(self, buf: np.ndarray) -> None:
        with self._lock:
            if len(self._free) < self._MAX_FREE:
                self._free.append(buf)
                return
            # Full: keep the larger buffers, drop the smallest.
            smallest = min(range(len(self._free)), key=lambda i: self._free[i].size)
            if self._free[smallest].size < buf.size:
                self._owned_bytes -= self._free[smallest].nbytes
                self._free[smallest] = buf
            else:
                self._owned_bytes -= buf.nbytes

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._free)
            for buf in self._free:
                self._owned_bytes -= buf.nbytes
            self._free.clear()
        return dropped

    def stats(self) -> dict:
        with self._lock:
            return {
                "free_buffers": len(self._free),
                "owned_bytes": self._owned_bytes,
                "peak_bytes": self._peak_bytes,
            }


_POOL = _WorkspacePool()


def clear_workspace_pool() -> int:
    """Drop the pool's free buffers (memory-bench isolation, shard
    boundaries); returns the number dropped."""
    return _POOL.clear()


def workspace_stats() -> dict:
    """Current pool occupancy: free buffer count, owned and peak bytes."""
    return _POOL.stats()


#: semiring ``reduce`` callable -> the ufunc whose ``reduceat``/``at``
#: implements it.  Semirings outside this map (user-defined reductions)
#: fall back to the scatter oracle's generic per-row loop.
_REDUCE_UFUNCS = {
    np.add.reduce: np.add,
    np.maximum.reduce: np.maximum,
    np.minimum.reduce: np.minimum,
}


def reduce_ufunc(semiring: Semiring) -> Optional[np.ufunc]:
    """The ufunc implementing ``semiring.reduce``, or None if unknown."""
    return _REDUCE_UFUNCS.get(semiring.reduce)


def segment_reduce(
    contributions: np.ndarray,
    rowptr: np.ndarray,
    ufunc: np.ufunc,
    init: float,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Reduce ``contributions`` per CSR row with one ``ufunc.reduceat``.

    ``contributions`` is ``(nnz, ...)`` in row-major CSR order; row ``i``
    owns the slice ``rowptr[i]:rowptr[i+1]``.  Rows with no elements
    yield ``init`` exactly: only the non-empty rows' segment starts are
    passed to ``reduceat`` (consecutive non-empty starts then delimit
    exactly one row each), and the pre-filled output is left untouched
    elsewhere.
    """
    rowptr = np.asarray(rowptr, dtype=np.int64)
    contributions = np.asarray(contributions)
    m = rowptr.shape[0] - 1
    if out is None:
        out = np.full((m,) + contributions.shape[1:], init, dtype=contributions.dtype)
    obs.get_registry().counter("segment.reduce_calls", op=ufunc.__name__).inc()
    if m == 0 or contributions.shape[0] == 0:
        return out
    starts = rowptr[:-1]
    nonempty = rowptr[1:] > starts
    if nonempty.any():
        out[nonempty] = ufunc.reduceat(contributions, starts[nonempty], axis=0)
    return out


def scatter_oracle_segment_reduce(
    contributions: np.ndarray,
    rowptr: np.ndarray,
    ufunc: np.ufunc,
    init: float,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The pre-engine ``ufunc.at`` scatter path, preserved as the parity
    oracle for :func:`segment_reduce`."""
    rowptr = np.asarray(rowptr, dtype=np.int64)
    contributions = np.asarray(contributions)
    m = rowptr.shape[0] - 1
    lengths = rowptr[1:] - rowptr[:-1]
    if out is None:
        out = np.full((m,) + contributions.shape[1:], init, dtype=contributions.dtype)
    if m == 0 or contributions.shape[0] == 0:
        return out
    rows = np.repeat(np.arange(m, dtype=np.int64), lengths)
    ufunc.at(out, rows, contributions)
    if ufunc is np.add and init != 0.0:
        # add.at accumulated on top of init for occupied rows; restore the
        # identity only where nothing was accumulated.
        out[lengths == 0] = init
    return out


def _check_dense(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    b = np.ascontiguousarray(b, dtype=VALUE_DTYPE)
    if b.ndim != 2 or b.shape[0] != a.ncols:
        raise ValueError(f"dense operand shape {b.shape} incompatible with {a.shape}")
    return b


def _require_ufunc(semiring: Semiring) -> np.ufunc:
    ufunc = reduce_ufunc(semiring)
    if ufunc is None:
        raise NotImplementedError(
            f"semiring {semiring.name!r} has no reduceat-capable reduction; "
            "use scatter_oracle_spmm_like"
        )
    return ufunc


def _prepare_out(
    a: CSRMatrix, n: int, init: float, out: Optional[np.ndarray]
) -> np.ndarray:
    if out is None:
        return np.full((a.nrows, n), init, dtype=VALUE_DTYPE)
    if out.shape != (a.nrows, n) or out.dtype != VALUE_DTYPE:
        raise ValueError(
            f"out buffer must be float32[{a.nrows}, {n}], "
            f"got {out.dtype}[{out.shape}]"
        )
    out.fill(init)
    return out


def _nonempty_starts(a: CSRMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """(nonempty-row mask, their segment starts) — the shared traversal
    state every tile of every operand reuses."""
    rowptr = a.rowptr64()
    starts = rowptr[:-1]
    nonempty = rowptr[1:] > starts
    return nonempty, starts[nonempty]


def _tiled_spmm_into(
    a: CSRMatrix,
    b: np.ndarray,
    semiring: Semiring,
    ufunc: np.ufunc,
    out: np.ndarray,
    tile: int,
    ws: np.ndarray,
    bt: Optional[np.ndarray],
    nonempty: np.ndarray,
    ne_starts: np.ndarray,
) -> None:
    """One tiled gather + combine + reduceat traversal into ``out``.

    ``ws`` is the pooled ``(nnz, tile)`` workspace (flat), ``bt`` the
    pooled operand-tile buffer (flat; None when a single tile covers the
    whole operand, in which case the gather reads ``b`` directly).  Each
    tile's reduction touches only its own columns, so the result is
    bit-identical to the untiled path.
    """
    nnz = a.nnz
    n = b.shape[1]
    idx = a.colind64()
    vals = a.values[:, None]
    reg = obs.get_registry()
    reg.counter("segment.reduce_calls", op=ufunc.__name__).inc()
    if not ne_starts.size:
        return
    for lo in range(0, n, tile):
        w = min(tile, n - lo)
        if bt is None:
            src = b  # single tile spanning the full width: gather in place
        else:
            src = bt[: a.ncols * w].reshape(a.ncols, w)
            np.copyto(src, b[:, lo : lo + w])
        wsv = ws[: nnz * w].reshape(nnz, w)
        # mode="clip" keeps np.take unbuffered (indices are validated at
        # construction, so clipping never actually fires).
        np.take(src, idx, axis=0, out=wsv, mode="clip")
        semiring.combine_into(vals, wsv, wsv)
        out[nonempty, lo : lo + w] = ufunc.reduceat(wsv, ne_starts, axis=0)
        reg.counter("segment.tiles", op=ufunc.__name__).inc()


def _untiled_spmm_like(
    a: CSRMatrix,
    b: np.ndarray,
    semiring: Semiring,
    ufunc: np.ufunc,
    out: np.ndarray,
) -> np.ndarray:
    """The pre-tiling engine body: one O(nnz·N) contributions temporary,
    one full-width ``reduceat``.  Kept as the tiled executor's parity
    oracle and reachable via ``set_tiling(False)``."""
    if a.nnz:
        contributions = semiring.combine(a.values[:, None], b[a.colind64()])
        segment_reduce(contributions, a.rowptr, ufunc, semiring.init, out=out)
    return semiring.finalize_into(out, a.row_lengths())


def segment_spmm_like(
    a: CSRMatrix,
    b: np.ndarray,
    semiring: Semiring,
    out: Optional[np.ndarray] = None,
    tile_width: Optional[int] = None,
) -> np.ndarray:
    """SpMM-like execution as gather + segmented reduce.

    Runs the column-tiled, workspace-pooled executor by default (peak
    transient memory O(nnz·T), bit-identical to the untiled path); pass
    ``tile_width`` to override the adaptive width for this call, or
    disable tiling process-wide with :func:`set_tiling`.  ``out`` (a
    float32 ``(M, N)`` buffer) lets callers reuse output storage across
    calls — the serving layer's steady state.

    Requires a semiring whose ``reduce`` maps to a ufunc
    (:func:`reduce_ufunc`); callers with user-defined reductions use
    :func:`scatter_oracle_spmm_like`.
    """
    ufunc = _require_ufunc(semiring)
    b = _check_dense(a, b)
    n = b.shape[1]
    out = _prepare_out(a, n, semiring.init, out)
    if not _TILING_ENABLED:
        return _untiled_spmm_like(a, b, semiring, ufunc, out)
    if a.nnz and n:
        tile = tile_width_for(a.nnz, n) if tile_width is None else max(1, min(int(tile_width), n))
        nonempty, ne_starts = _nonempty_starts(a)
        ws = _POOL.acquire(a.nnz * tile)
        bt = _POOL.acquire(a.ncols * tile) if tile < n else None
        try:
            _tiled_spmm_into(
                a, b, semiring, ufunc, out, tile, ws, bt, nonempty, ne_starts
            )
        finally:
            if bt is not None:
                _POOL.release(bt)
            _POOL.release(ws)
    return semiring.finalize_into(out, a.row_lengths())


def segment_spmm_like_multi(
    a: CSRMatrix,
    bs: Sequence[np.ndarray],
    semiring: Semiring,
    outs: Optional[Sequence[Optional[np.ndarray]]] = None,
    tile_width: Optional[int] = None,
) -> List[np.ndarray]:
    """K same-graph SpMM-like executions through one shared traversal.

    The feature-width-batching primitive for multi-tenant serving: all
    operands share the cached gather indices, the nonempty-row segment
    starts, and **one** pooled workspace acquisition (the tile loop
    reuses the same buffers operand after operand), so coalescing K
    requests costs one gather's worth of ``segment.workspace.allocs``
    instead of K.  Operand widths may differ.  Each output is
    byte-identical to the corresponding ``segment_spmm_like`` call.
    """
    ufunc = _require_ufunc(semiring)
    bs = [_check_dense(a, b) for b in bs]
    if outs is None:
        outs = [None] * len(bs)
    if len(outs) != len(bs):
        raise ValueError(f"{len(bs)} operands but {len(outs)} output buffers")
    results = [
        _prepare_out(a, b.shape[1], semiring.init, o) for b, o in zip(bs, outs)
    ]
    if not bs:
        return results
    obs.get_registry().counter("segment.multi_calls", operands=len(bs)).inc()
    if not _TILING_ENABLED:
        for b, out in zip(bs, results):
            _untiled_spmm_like(a, b, semiring, ufunc, out)
        return results
    n_max = max(b.shape[1] for b in bs)
    if a.nnz and n_max:
        tile_max = (
            tile_width_for(a.nnz, n_max)
            if tile_width is None
            else max(1, min(int(tile_width), n_max))
        )
        nonempty, ne_starts = _nonempty_starts(a)
        ws = _POOL.acquire(a.nnz * tile_max)
        bt = _POOL.acquire(a.ncols * tile_max) if tile_max < n_max else None
        try:
            for b, out in zip(bs, results):
                n = b.shape[1]
                if not n:
                    continue
                tile = min(tile_max, n)
                # A full-width tile gathers straight from the operand.
                op_bt = bt if tile < n else None
                _tiled_spmm_into(
                    a, b, semiring, ufunc, out, tile, ws, op_bt, nonempty, ne_starts
                )
        finally:
            if bt is not None:
                _POOL.release(bt)
            _POOL.release(ws)
    for out in results:
        semiring.finalize_into(out, a.row_lengths())
    return results


def scatter_oracle_spmm_like(
    a: CSRMatrix, b: np.ndarray, semiring: Semiring
) -> np.ndarray:
    """The pre-engine ``reference_spmm_like`` body (``ufunc.at`` scatter
    with a generic per-row loop for unknown semirings), preserved as the
    parity oracle and the fallback for user-defined reductions."""
    b = _check_dense(a, b)
    m = a.nrows
    n = b.shape[1]
    out = np.full((m, n), semiring.init, dtype=VALUE_DTYPE)
    if a.nnz == 0:
        return semiring.finalize(out, a.row_lengths()).astype(VALUE_DTYPE)

    contributions = semiring.combine(
        a.values[:, None].astype(VALUE_DTYPE), b[a.colind.astype(np.int64)]
    )
    rows = np.repeat(np.arange(m, dtype=np.int64), a.row_lengths())
    if semiring.reduce is np.add.reduce:
        np.add.at(out, rows, contributions)
        # Rows with no nonzeros keep init; for plus-like semirings that is
        # already the additive identity folded into the accumulate above
        # only for occupied rows, so reset empty rows explicitly.
        empty = a.row_lengths() == 0
        out[empty] = semiring.init
    elif semiring.reduce is np.maximum.reduce:
        np.maximum.at(out, rows, contributions)
    elif semiring.reduce is np.minimum.reduce:
        np.minimum.at(out, rows, contributions)
    else:  # generic fallback for user semirings
        for i in range(m):
            lo, hi = int(a.rowptr[i]), int(a.rowptr[i + 1])
            if hi > lo:
                out[i] = semiring.reduce(contributions[lo:hi], axis=0)
    return semiring.finalize(out, a.row_lengths()).astype(VALUE_DTYPE)


def scatter_oracle_to_dense(a: CSRMatrix) -> np.ndarray:
    """The pre-engine ``CSRMatrix.to_dense`` scatter, preserved as the
    parity oracle and the fallback for duplicate/unsorted patterns."""
    out = np.zeros(a.shape, dtype=VALUE_DTYPE)
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    # Duplicate (row, col) entries accumulate, matching COO semantics.
    np.add.at(out, (rows, a.colind.astype(np.int64)), a.values)
    return out


def segment_argmax(
    a: CSRMatrix,
    contributions: np.ndarray,
    row_max: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Index of the first maximizing nonzero per output cell.

    Returns ``int32[M, N]`` of absolute positions into
    ``a.values``/``a.colind``; empty rows hold ``-1``.  Ties resolve to
    the lowest nonzero index (PyTorch ``scatter_max`` semantics).  Cells
    whose maximum is NaN also hold ``-1`` (NaN compares unequal to
    itself, so nothing ever matches) — the same no-gradient outcome the
    scatter oracle's ``contributions == out`` mask produces.  Consumers
    mask with ``argmax >= 0``.

    Implementation: one equality pass against the broadcast row maxima,
    then the *sparse* hit set (≈ one hit per output cell) is collapsed
    to first-per-cell with ``np.unique`` — an order of magnitude cheaper
    than a second dense ``(nnz, N)`` reduction, since ``np.nonzero``
    returns hits in ascending nonzero order and ``unique``'s first
    occurrence is therefore the lowest index.

    This is what lets ``aggregate_max`` keep an ``(M, N)`` int32 in its
    backward closure instead of the full ``(nnz, N)`` contributions.
    """
    m = a.nrows
    n = contributions.shape[1] if contributions.ndim == 2 else 1
    contributions = contributions.reshape(a.nnz, n)
    if row_max is None:
        row_max = segment_reduce(contributions, a.rowptr, np.maximum, -np.inf)
    argmax = np.full((m, n), -1, dtype=np.int32)
    if a.nnz == 0 or m == 0:
        return argmax
    rows = a.coo_rows()
    hits = contributions == row_max.reshape(m, n)[rows]
    hit_pos, hit_col = _sparse_nonzero(hits)
    cell = rows[hit_pos] * np.int64(n) + hit_col
    first_cell, first_idx = np.unique(cell, return_index=True)
    argmax.ravel()[first_cell] = hit_pos[first_idx].astype(np.int32)
    return argmax


def _sparse_nonzero(hits: np.ndarray):
    """``np.nonzero`` for a boolean matrix with ~one True per *row
    segment* (the argmax hit mask): prefilter rows by viewing each
    8-byte run of bools as one uint64, so the full-width scan only
    touches the ≈``M/nnz`` fraction of rows that contain a hit.
    Widths that are not a multiple of 8 (or non-contiguous masks) are
    zero-padded into an 8-aligned copy first — an O(rows·n) byte copy,
    still far cheaper than the full ``np.nonzero`` scan — so common
    widths like 100 keep the prefilter.  Only degenerate inputs fall
    back to plain ``np.nonzero``, counted as
    ``segment.sparse_nonzero.fallbacks``.  Row-major result order
    (ascending row index) is preserved — the first-occurrence semantics
    of the caller's ``np.unique`` depend on it."""
    if hits.ndim != 2 or hits.dtype != np.bool_ or 0 in hits.shape:
        obs.get_registry().counter("segment.sparse_nonzero.fallbacks").inc()
        return np.nonzero(hits)
    n = hits.shape[1]
    if not hits.flags.c_contiguous or n % 8 != 0:
        obs.get_registry().counter("segment.sparse_nonzero.pads").inc()
        aligned = np.zeros((hits.shape[0], -(-n // 8) * 8), dtype=np.bool_)
        aligned[:, :n] = hits
    else:
        aligned = hits
    words = aligned.view(np.uint64)
    if words.shape[1] == 1:
        row_any = words.ravel() != 0
    else:
        row_any = np.bitwise_or.reduce(words, axis=1) != 0
    cand = np.flatnonzero(row_any)
    # Scan the original-width mask so padded columns can never leak.
    sub_pos, sub_col = np.nonzero(hits[cand])
    return cand[sub_pos], sub_col


def segment_max_with_argmax(
    a: CSRMatrix, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Max-times forward and its argmax in one tiled traversal.

    The ``aggregate_max`` hot path: per column tile, gather + scale the
    contributions inside the pooled workspace, ``maximum.reduceat`` them
    into the output slice, and resolve that tile's first-maximizer
    indices while the workspace is still hot — so the full ``(nnz, N)``
    contributions array is never materialized.  Returns
    ``(out, argmax)`` where ``out`` is the raw max-times output (empty
    rows hold ``-inf``) and ``argmax`` the int32 winner positions of
    :func:`segment_argmax`.  Bit-identical to the untiled two-pass
    computation: tiles never split a row's reduction, and the argmax is
    resolved per column independently.
    """
    b = _check_dense(a, b)
    m, n = a.nrows, b.shape[1]
    out = np.full((m, n), -np.inf, dtype=VALUE_DTYPE)
    argmax = np.full((m, n), -1, dtype=np.int32)
    if not (a.nnz and n):
        return out, argmax
    if not _TILING_ENABLED:
        contributions = a.values[:, None] * b[a.colind64()]
        segment_reduce(contributions, a.rowptr, np.maximum, -np.inf, out=out)
        return out, segment_argmax(a, contributions, row_max=out)
    tile = tile_width_for(a.nnz, n)
    nonempty, ne_starts = _nonempty_starts(a)
    idx = a.colind64()
    vals = a.values[:, None]
    reg = obs.get_registry()
    reg.counter("segment.reduce_calls", op="maximum").inc()
    ws = _POOL.acquire(a.nnz * tile)
    bt = _POOL.acquire(a.ncols * tile) if tile < n else None
    try:
        for lo in range(0, n, tile):
            w = min(tile, n - lo)
            if bt is None:
                src = b
            else:
                src = bt[: a.ncols * w].reshape(a.ncols, w)
                np.copyto(src, b[:, lo : lo + w])
            wsv = ws[: a.nnz * w].reshape(a.nnz, w)
            np.take(src, idx, axis=0, out=wsv, mode="clip")
            np.multiply(vals, wsv, out=wsv)
            out_slice = out[:, lo : lo + w]
            if ne_starts.size:
                out_slice[nonempty] = np.maximum.reduceat(wsv, ne_starts, axis=0)
            argmax[:, lo : lo + w] = segment_argmax(a, wsv, row_max=out_slice)
            reg.counter("segment.tiles", op="maximum").inc()
    finally:
        if bt is not None:
            _POOL.release(bt)
        _POOL.release(ws)
    return out, argmax

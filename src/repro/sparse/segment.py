"""Segmented-reduction host execution engine.

Yang et al.'s *Design Principles for Sparse Matrix Multiplication on the
GPU* frames row-split SpMM as gather + segmented reduce; this module
brings the same structure to the host executor: contributions are
gathered once and reduced per CSR row with a single
``ufunc.reduceat`` call instead of the order-of-magnitude slower
``ufunc.at`` scatter loop.  Every numeric hot path —
``reference_spmm_like``, ``CSRMatrix.to_dense`` /
``row_normalized`` / ``sym_normalized``, and ``gnn.aggregate`` — routes
through here by default; the original scatter implementations are
preserved verbatim as ``scatter_oracle_*`` functions and enforced as
parity oracles by ``tests/test_segment_engine.py``.

The parity contract (see ``docs/PERFORMANCE.md``):

* ``max`` / ``min`` reductions are **bit-identical** to the scatter
  oracles on any input — the reduction is order-independent, so
  ``np.maximum.reduceat`` and ``np.maximum.at`` agree float for float.
* ``plus`` / ``mean`` reductions are bit-identical whenever the
  accumulation is exact (integer-valued float32 operands, which the
  parity suite locks in), and agree to tight ``allclose`` tolerances on
  arbitrary floats.  ``np.add.reduceat`` does *not* reduce strictly
  left-to-right (NumPy pairs segment tails), so a rounding-level
  reassociation relative to the sequential scatter is unavoidable; all
  existing kernel/oracle comparisons use ``allclose`` and are
  insensitive to it.

Empty rows never reach ``reduceat`` (whose semantics for empty segments
are not a reduction): the output is pre-filled with the semiring
identity and only non-empty rows are overwritten, so identities are
exact by construction.

``set_engine(False)`` / ``use_segment_engine(False)`` flip every routed
call site back to the scatter oracles — used by the parity suite and by
``benchmarks/bench_host_executor.py`` to measure the speedup.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

import numpy as np

from repro import obs
from repro.semiring import Semiring
from repro.sparse.csr import CSRMatrix, VALUE_DTYPE

__all__ = [
    "segment_reduce",
    "segment_spmm_like",
    "segment_argmax",
    "scatter_oracle_segment_reduce",
    "scatter_oracle_spmm_like",
    "scatter_oracle_to_dense",
    "reduce_ufunc",
    "engine_enabled",
    "set_engine",
    "use_segment_engine",
]

_ENGINE_ENABLED = True


def engine_enabled() -> bool:
    """True when the segmented-reduction engine is the default executor."""
    return _ENGINE_ENABLED


def set_engine(enabled: bool) -> bool:
    """Enable/disable the engine process-wide; returns the previous state."""
    global _ENGINE_ENABLED
    prev = _ENGINE_ENABLED
    _ENGINE_ENABLED = bool(enabled)
    return prev


@contextmanager
def use_segment_engine(enabled: bool = True) -> Iterator[None]:
    """Scoped engine toggle (parity tests, microbenchmark baselines)."""
    prev = set_engine(enabled)
    try:
        yield
    finally:
        set_engine(prev)


#: semiring ``reduce`` callable -> the ufunc whose ``reduceat``/``at``
#: implements it.  Semirings outside this map (user-defined reductions)
#: fall back to the scatter oracle's generic per-row loop.
_REDUCE_UFUNCS = {
    np.add.reduce: np.add,
    np.maximum.reduce: np.maximum,
    np.minimum.reduce: np.minimum,
}


def reduce_ufunc(semiring: Semiring) -> Optional[np.ufunc]:
    """The ufunc implementing ``semiring.reduce``, or None if unknown."""
    return _REDUCE_UFUNCS.get(semiring.reduce)


def segment_reduce(
    contributions: np.ndarray,
    rowptr: np.ndarray,
    ufunc: np.ufunc,
    init: float,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Reduce ``contributions`` per CSR row with one ``ufunc.reduceat``.

    ``contributions`` is ``(nnz, ...)`` in row-major CSR order; row ``i``
    owns the slice ``rowptr[i]:rowptr[i+1]``.  Rows with no elements
    yield ``init`` exactly: only the non-empty rows' segment starts are
    passed to ``reduceat`` (consecutive non-empty starts then delimit
    exactly one row each), and the pre-filled output is left untouched
    elsewhere.
    """
    rowptr = np.asarray(rowptr, dtype=np.int64)
    contributions = np.asarray(contributions)
    m = rowptr.shape[0] - 1
    if out is None:
        out = np.full((m,) + contributions.shape[1:], init, dtype=contributions.dtype)
    obs.get_registry().counter("segment.reduce_calls", op=ufunc.__name__).inc()
    if m == 0 or contributions.shape[0] == 0:
        return out
    starts = rowptr[:-1]
    nonempty = rowptr[1:] > starts
    if nonempty.any():
        out[nonempty] = ufunc.reduceat(contributions, starts[nonempty], axis=0)
    return out


def scatter_oracle_segment_reduce(
    contributions: np.ndarray,
    rowptr: np.ndarray,
    ufunc: np.ufunc,
    init: float,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The pre-engine ``ufunc.at`` scatter path, preserved as the parity
    oracle for :func:`segment_reduce`."""
    rowptr = np.asarray(rowptr, dtype=np.int64)
    contributions = np.asarray(contributions)
    m = rowptr.shape[0] - 1
    lengths = rowptr[1:] - rowptr[:-1]
    if out is None:
        out = np.full((m,) + contributions.shape[1:], init, dtype=contributions.dtype)
    if m == 0 or contributions.shape[0] == 0:
        return out
    rows = np.repeat(np.arange(m, dtype=np.int64), lengths)
    ufunc.at(out, rows, contributions)
    if ufunc is np.add and init != 0.0:
        # add.at accumulated on top of init for occupied rows; restore the
        # identity only where nothing was accumulated.
        out[lengths == 0] = init
    return out


def _check_dense(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    b = np.ascontiguousarray(b, dtype=VALUE_DTYPE)
    if b.ndim != 2 or b.shape[0] != a.ncols:
        raise ValueError(f"dense operand shape {b.shape} incompatible with {a.shape}")
    return b


def segment_spmm_like(
    a: CSRMatrix, b: np.ndarray, semiring: Semiring
) -> np.ndarray:
    """SpMM-like execution as gather + segmented reduce.

    Requires a semiring whose ``reduce`` maps to a ufunc
    (:func:`reduce_ufunc`); callers with user-defined reductions use
    :func:`scatter_oracle_spmm_like`.
    """
    ufunc = reduce_ufunc(semiring)
    if ufunc is None:
        raise NotImplementedError(
            f"semiring {semiring.name!r} has no reduceat-capable reduction; "
            "use scatter_oracle_spmm_like"
        )
    b = _check_dense(a, b)
    m = a.nrows
    n = b.shape[1]
    out = np.full((m, n), semiring.init, dtype=VALUE_DTYPE)
    if a.nnz:
        contributions = semiring.combine(a.values[:, None], b[a.colind64()])
        segment_reduce(contributions, a.rowptr, ufunc, semiring.init, out=out)
    return semiring.finalize(out, a.row_lengths()).astype(VALUE_DTYPE)


def scatter_oracle_spmm_like(
    a: CSRMatrix, b: np.ndarray, semiring: Semiring
) -> np.ndarray:
    """The pre-engine ``reference_spmm_like`` body (``ufunc.at`` scatter
    with a generic per-row loop for unknown semirings), preserved as the
    parity oracle and the fallback for user-defined reductions."""
    b = _check_dense(a, b)
    m = a.nrows
    n = b.shape[1]
    out = np.full((m, n), semiring.init, dtype=VALUE_DTYPE)
    if a.nnz == 0:
        return semiring.finalize(out, a.row_lengths()).astype(VALUE_DTYPE)

    contributions = semiring.combine(
        a.values[:, None].astype(VALUE_DTYPE), b[a.colind.astype(np.int64)]
    )
    rows = np.repeat(np.arange(m, dtype=np.int64), a.row_lengths())
    if semiring.reduce is np.add.reduce:
        np.add.at(out, rows, contributions)
        # Rows with no nonzeros keep init; for plus-like semirings that is
        # already the additive identity folded into the accumulate above
        # only for occupied rows, so reset empty rows explicitly.
        empty = a.row_lengths() == 0
        out[empty] = semiring.init
    elif semiring.reduce is np.maximum.reduce:
        np.maximum.at(out, rows, contributions)
    elif semiring.reduce is np.minimum.reduce:
        np.minimum.at(out, rows, contributions)
    else:  # generic fallback for user semirings
        for i in range(m):
            lo, hi = int(a.rowptr[i]), int(a.rowptr[i + 1])
            if hi > lo:
                out[i] = semiring.reduce(contributions[lo:hi], axis=0)
    return semiring.finalize(out, a.row_lengths()).astype(VALUE_DTYPE)


def scatter_oracle_to_dense(a: CSRMatrix) -> np.ndarray:
    """The pre-engine ``CSRMatrix.to_dense`` scatter, preserved as the
    parity oracle and the fallback for duplicate/unsorted patterns."""
    out = np.zeros(a.shape, dtype=VALUE_DTYPE)
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    # Duplicate (row, col) entries accumulate, matching COO semantics.
    np.add.at(out, (rows, a.colind.astype(np.int64)), a.values)
    return out


def segment_argmax(
    a: CSRMatrix,
    contributions: np.ndarray,
    row_max: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Index of the first maximizing nonzero per output cell.

    Returns ``int32[M, N]`` of absolute positions into
    ``a.values``/``a.colind``; empty rows hold ``-1``.  Ties resolve to
    the lowest nonzero index (PyTorch ``scatter_max`` semantics).  Cells
    whose maximum is NaN also hold ``-1`` (NaN compares unequal to
    itself, so nothing ever matches) — the same no-gradient outcome the
    scatter oracle's ``contributions == out`` mask produces.  Consumers
    mask with ``argmax >= 0``.

    Implementation: one equality pass against the broadcast row maxima,
    then the *sparse* hit set (≈ one hit per output cell) is collapsed
    to first-per-cell with ``np.unique`` — an order of magnitude cheaper
    than a second dense ``(nnz, N)`` reduction, since ``np.nonzero``
    returns hits in ascending nonzero order and ``unique``'s first
    occurrence is therefore the lowest index.

    This is what lets ``aggregate_max`` keep an ``(M, N)`` int32 in its
    backward closure instead of the full ``(nnz, N)`` contributions.
    """
    m = a.nrows
    n = contributions.shape[1] if contributions.ndim == 2 else 1
    contributions = contributions.reshape(a.nnz, n)
    if row_max is None:
        row_max = segment_reduce(contributions, a.rowptr, np.maximum, -np.inf)
    argmax = np.full((m, n), -1, dtype=np.int32)
    if a.nnz == 0 or m == 0:
        return argmax
    rows = a.coo_rows()
    hits = contributions == row_max.reshape(m, n)[rows]
    hit_pos, hit_col = _sparse_nonzero(hits)
    cell = rows[hit_pos] * np.int64(n) + hit_col
    first_cell, first_idx = np.unique(cell, return_index=True)
    argmax.ravel()[first_cell] = hit_pos[first_idx].astype(np.int32)
    return argmax


def _sparse_nonzero(hits: np.ndarray):
    """``np.nonzero`` for a boolean matrix with ~one True per *row
    segment* (the argmax hit mask): prefilter rows by viewing each
    8-byte run of bools as one uint64, so the full-width scan only
    touches the ≈``M/nnz`` fraction of rows that contain a hit.
    Falls back to plain ``np.nonzero`` when the view doesn't apply.
    Row-major result order (ascending row index) is preserved — the
    first-occurrence semantics of the caller's ``np.unique`` depend
    on it."""
    n = hits.shape[1]
    if not hits.flags.c_contiguous or n % 8 != 0:
        return np.nonzero(hits)
    words = hits.view(np.uint64)
    if words.shape[1] == 1:
        row_any = words.ravel() != 0
    else:
        row_any = np.bitwise_or.reduce(words, axis=1) != 0
    cand = np.flatnonzero(row_any)
    sub_pos, sub_col = np.nonzero(hits[cand])
    return cand[sub_pos], sub_col

"""Command-line interface: profile, analyze, sweep, train, scenario.

Installed as ``repro-bench`` (see pyproject).  Examples::

    repro-bench analyze --graph soc-Epinions1
    repro-bench profile --graph ca-AstroPh --n 256 --gpu "RTX 2080"
    repro-bench sweep --graphs 6 --n 128 512
    repro-bench train --dataset cora --epochs 20 --backend dgl --gespmm
    repro-bench scenario --graph web-Stanford --feature-dim 128
    repro-bench roofline --graph ca-AstroPh --n 256
    repro-bench tune --graph soc-Epinions1 --n 512
    repro-bench oom --n 512
    repro-bench trace --graph ca-AstroPh --n 128 --trace-out trace.json
    repro-bench gate --baseline BENCH_spmm.json --explain
    repro-bench report --baseline BENCH_spmm.json --out report.md

``profile``, ``sweep``, ``train``, ``trace`` and ``gate`` accept
``--trace-out`` (Chrome trace-event JSON, or JSONL with a ``.jsonl``
suffix) and ``--metrics-out`` (metrics-registry JSONL); ``sweep``
additionally takes ``--bench-json`` to write the machine-readable BENCH
artifact.  ``gate`` regenerates (or loads) a current BENCH document and
fails with exit code 1 on timing-model drift that lacks an accepted-drift
annotation; ``--explain`` names the attribution component behind each
drift.  ``report`` renders the Markdown/JSON performance report
(bottleneck distribution, roofline placement, cache hit rates, profile
trees and flamegraph exports).  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import obs

from repro.baselines import (
    ASpTSpMM,
    CusparseCsrmm2,
    DGLFallbackSpMMLike,
    GraphBlastRowSplit,
    GunrockAdvanceSpMM,
    SpMVLoopSpMM,
)
from repro.bench import format_table, geomean, run_sweep, speedup_series
from repro.core import CRCSpMM, CWMSpMM, GESpMM, MergePathSpMM, SimpleSpMM
from repro.datasets import catalog_names, load_citation, load_graph, load_suite
from repro.gnn import DGLBackend, GCN, GraphSAGE, PyGBackend, SimDevice, train
from repro.gnn.inference import (
    amortization_crossover,
    inference_scenario,
    sampled_training_scenario,
)
from repro.gpusim import KNOWN_GPUS, GTX_1080TI, format_metric_table, profile_kernel
from repro.sparse import uniform_random
from repro.sparse.stats import analyze, graph_regime, row_length_histogram

ALL_KERNELS = {
    "simple": SimpleSpMM,
    "crc": CRCSpMM,
    "cwm2": lambda: CWMSpMM(2),
    "mergepath": MergePathSpMM,
    "gespmm": GESpMM,
    "cusparse": CusparseCsrmm2,
    "graphblast": GraphBlastRowSplit,
    "gunrock": GunrockAdvanceSpMM,
    "aspt": ASpTSpMM,
    "spmv-loop": SpMVLoopSpMM,
    "dgl-fallback": DGLFallbackSpMMLike,
}


def _load_graph_arg(args):
    if args.graph == "random":
        return uniform_random(args.m, args.nnz, seed=args.seed)
    if args.graph in ("cora", "citeseer", "pubmed"):
        return load_citation(args.graph).normalized_adjacency()
    return load_graph(args.graph, max_nnz=args.max_nnz)


def _gpu_arg(name: str):
    if name not in KNOWN_GPUS:
        raise SystemExit(f"unknown GPU {name!r}; choose from {sorted(KNOWN_GPUS)}")
    return KNOWN_GPUS[name]


def cmd_analyze(args) -> int:
    g = _load_graph_arg(args)
    print(f"[{args.graph}]")
    print(analyze(g).summary())
    print("row-length histogram:")
    for bucket, count in row_length_histogram(g).items():
        print(f"  len {bucket:>6s}: {count}")
    return 0


def cmd_profile(args) -> int:
    g = _load_graph_arg(args)
    gpu = _gpu_arg(args.gpu)
    kernels = [ALL_KERNELS[k]() for k in args.kernels]
    reports = [profile_kernel(k, g, args.n, gpu, graph=args.graph) for k in kernels]
    print(f"[{args.graph}] N={args.n} on {gpu.name}")
    print(format_metric_table(reports))
    return 0


def _counter_value(name: str) -> int:
    return int(obs.get_registry().counter(name).value)


def _installed_disk_cache(cache_dir: Optional[str]):
    """Install a DiskCache for ``--cache-dir`` (None = leave the
    current/env activation alone).  Returns ``(restore, cache)`` where
    ``restore()`` undoes the installation."""
    from repro.bench.diskcache import DiskCache, get_disk_cache, set_disk_cache

    if not cache_dir:
        return (lambda: None), get_disk_cache()
    prev = set_disk_cache(DiskCache(cache_dir))
    return (lambda: set_disk_cache(prev)), get_disk_cache()


def _suite_regimes(suite) -> dict:
    """``graph -> structural regime`` map for the run metadata block.

    Rides in ``run.regimes`` of BENCH_spmm.json (the gate ignores
    ``run``) so ``repro-bench report`` can aggregate bound-by counts per
    graph regime without reloading the graphs."""
    return {name: graph_regime(suite[name]) for name in sorted(suite)}


def cmd_sweep(args) -> int:
    from repro.bench import run_sweep_with_stats

    names = catalog_names()[: args.graphs]
    suite = load_suite(max_nnz=args.max_nnz, names=names)
    gpu = _gpu_arg(args.gpu)
    kernels = [GraphBlastRowSplit(), CusparseCsrmm2(), MergePathSpMM(), GESpMM()]
    restore, cache = _installed_disk_cache(args.cache_dir)
    try:
        profile0 = {k: _counter_value(f"access_profile.{k}") for k in ("hits", "misses")}
        disk0 = cache.counters() if cache is not None else {}
        results, host = run_sweep_with_stats(kernels, suite, args.n, [gpu],
                                             jobs=args.jobs)
        host_meta = host.as_run_meta()
        host_meta["access_profile"] = {
            k: _counter_value(f"access_profile.{k}") - profile0[k]
            for k in ("hits", "misses")
        }
        if cache is not None:
            disk1 = cache.counters()
            host_meta["diskcache"] = {k: disk1[k] - disk0[k] for k in disk1}
    finally:
        restore()
    print(f"[sweep] {host.cells} cells in {host.wall_s:.3f}s "
          f"({host.cells_per_s:.0f} cells/s, jobs={host.jobs}, "
          f"memo {host.memo_hits} hit / {host.memo_misses} miss)",
          file=sys.stderr)
    if cache is not None:
        dc = host_meta["diskcache"]
        print(f"[sweep] disk cache at {cache.root}: {dc['hits']} hit / "
              f"{dc['misses']} miss / {dc['invalidations']} invalidated",
              file=sys.stderr)
    if args.bench_json:
        from repro.bench import write_bench_json

        try:
            write_bench_json(
                results,
                args.bench_json,
                extra_run_meta={
                    "command": "sweep",
                    "max_nnz": args.max_nnz,
                    "host": host_meta,
                    "regimes": _suite_regimes(suite),
                },
            )
        except OSError as exc:
            print(f"repro-bench: cannot write {args.bench_json}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"wrote {args.bench_json}", file=sys.stderr)
    rows = []
    for g in suite:
        row = [g]
        for n in args.n:
            vals = {r.kernel: r.gflops for r in results if r.graph == g and r.n == n}
            row.append("/".join(f"{vals[k.name]:.0f}" for k in kernels))
        rows.append(tuple(row))
    abbrev = {"GraphBLAST rowsplit": "GB", "cuSPARSE csrmm2": "cuSP",
              "mergepath": "MP", "GE-SpMM": "GE"}
    legend = "/".join(abbrev.get(k.name, k.name) for k in kernels)
    print(format_table(["matrix"] + [f"N={n} ({legend})" for n in args.n], rows,
                       title=f"GFLOPS on {gpu.name}"))
    for n in args.n:
        for base in ("cuSPARSE csrmm2", "GraphBLAST rowsplit"):
            s = geomean(speedup_series(results, "GE-SpMM", base, gpu.name, n).values())
            print(f"  N={n}: GE-SpMM vs {base}: {s:.2f}x")
    return 0


def cmd_train(args) -> int:
    ds = load_citation(args.dataset)
    gpu = _gpu_arg(args.gpu)
    device = SimDevice(gpu)
    backend_cls = {"dgl": DGLBackend, "pyg": PyGBackend}[args.backend]
    backend = backend_cls(device, use_gespmm=args.gespmm)
    rng = np.random.default_rng(args.seed)
    if args.model == "gcn":
        model = GCN(ds.feature_dim, args.hidden, ds.n_classes, n_layers=args.layers, rng=rng)
    else:
        model = GraphSAGE(ds.feature_dim, args.hidden, ds.n_classes, n_layers=args.layers,
                          aggregator=args.model.split("-", 1)[1], rng=rng)
    res = train(model, backend, ds, epochs=args.epochs)
    print(f"{backend.name} / {args.model} on {ds.name} ({args.epochs} epochs, {gpu.name})")
    print(f"loss {res.losses[0]:.3f} -> {res.losses[-1]:.3f}, test acc {res.test_accuracy:.2%}")
    print(res.profile.format())
    return 0


def cmd_scenario(args) -> int:
    g = _load_graph_arg(args)
    gpu = _gpu_arg(args.gpu)
    inf = inference_scenario(g, args.feature_dim, gpu)
    samp = sampled_training_scenario(g, args.feature_dim, gpu, n_batches=args.batches)
    for res in (inf, samp):
        print(f"[{res.scenario}] ({res.spmm_calls} aggregation calls)")
        for name, t in sorted(res.times.items(), key=lambda kv: kv[1]):
            print(f"  {name:22s} {t * 1e3:9.3f} ms")
    cross = amortization_crossover(g, args.feature_dim, gpu)
    if cross is None:
        print("ASpT never amortizes its preprocess on this matrix (<=64 reuses)")
    else:
        print(f"ASpT amortizes its preprocess after {cross} reuses of the same matrix")
    return 0


def cmd_roofline(args) -> int:
    from repro.gpusim import roofline_report

    g = _load_graph_arg(args)
    gpu = _gpu_arg(args.gpu)
    kernels = [ALL_KERNELS[k]() for k in args.kernels]
    print(f"[{args.graph}] N={args.n}")
    print(roofline_report(kernels, g, args.n, gpu))
    return 0


def cmd_tune(args) -> int:
    from repro.core import tune_cf

    g = _load_graph_arg(args)
    gpu = _gpu_arg(args.gpu)
    res = tune_cf(g, args.n, gpu)
    print(f"[{args.graph}] N={args.n} on {gpu.name}")
    for cf, t in sorted(res.times.items()):
        mark = "  <- best" if cf == res.best_cf else ""
        print(f"  CF={cf}: {t * 1e3:8.4f} ms{mark}")
    fixed_loss = res.loss_of(2)
    print(f"fixed CF=2 loses {fixed_loss * 100:.2f}% to the oracle here")
    return 0


def cmd_trace(args) -> int:
    """Run an observed profile pass purely to produce telemetry files."""
    from repro.gpusim import warp_trace_events

    g = _load_graph_arg(args)
    gpu = _gpu_arg(args.gpu)
    kernels = [ALL_KERNELS[k]() for k in args.kernels]
    with obs.span("trace.profile", graph=args.graph, n=int(args.n), gpu=gpu.name):
        reports = [profile_kernel(k, g, args.n, gpu, graph=args.graph) for k in kernels]
    n_warp_events = 0
    if args.per_warp:
        tracer = obs.get_tracer()
        rng = np.random.default_rng(getattr(args, "seed", 0) or 0)
        b = rng.standard_normal((g.ncols, args.n)).astype(np.float32)
        for pid, kernel in enumerate(kernels, start=1):
            try:
                events = warp_trace_events(
                    kernel, g, b, gpu, max_warps=args.max_warps, pid=pid
                )
            except NotImplementedError:
                print(f"repro-bench trace: {kernel.name} has no trace replay; "
                      f"skipping per-warp timeline", file=sys.stderr)
                continue
            n_warp_events += len(events)
            if tracer is not None:
                tracer.add_chrome_events(events)
    tracer = obs.get_tracer()
    n_spans = len(tracer.records) if tracer is not None else 0
    print(f"[{args.graph}] N={args.n} on {gpu.name}: traced {len(reports)} kernels "
          f"({n_spans} spans"
          + (f", {n_warp_events} per-warp events" if args.per_warp else "")
          + ")")
    print(f"writing trace to {args.trace_out}"
          + (f", metrics to {args.metrics_out}" if args.metrics_out else ""))
    return 0


def _regenerate_document(args):
    """Rebuild the BENCH document in-process with ``make telemetry``'s
    sweep parameters — the 'current' side of the gate when no document
    file is given."""
    from repro.bench import bench_document

    names = catalog_names()[: args.graphs]
    suite = load_suite(max_nnz=args.max_nnz, names=names)
    gpu = _gpu_arg(args.gpu)
    kernels = [GraphBlastRowSplit(), CusparseCsrmm2(), MergePathSpMM(), GESpMM()]
    results = run_sweep(kernels, suite, args.n, [gpu],
                        jobs=getattr(args, "jobs", 1))
    return bench_document(
        results,
        extra_run_meta={
            "command": "sweep",
            "max_nnz": args.max_nnz,
            "regimes": _suite_regimes(suite),
        },
    )


def cmd_gate(args) -> int:
    from repro.bench.gate import (
        EXIT_USAGE,
        GateError,
        GateThresholds,
        diff_documents,
        load_accepted_drift,
        load_bench_document,
    )

    thresholds = GateThresholds(
        time_rel_tol=args.time_tol,
        gflops_rel_tol=args.gflops_tol,
        geomean_rel_tol=args.geomean_tol,
    )
    try:
        baseline = load_bench_document(args.baseline)
        if args.current is not None:
            current = load_bench_document(args.current)
        else:
            restore, _cache = _installed_disk_cache(getattr(args, "cache_dir", None))
            try:
                current = _regenerate_document(args)
            finally:
                restore()
        accept_path = args.accept
        if accept_path is None:
            default = Path(args.baseline).parent / "BENCH_accepted_drift.json"
            accept_path = default if default.exists() else None
        accepted = load_accepted_drift(accept_path) if accept_path else []
        report = diff_documents(baseline, current, thresholds=thresholds,
                                accepted=accepted,
                                explain=getattr(args, "explain", False))
    except GateError as exc:
        print(f"repro-bench gate: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(report.format())
    if args.json_out:
        try:
            Path(args.json_out).write_text(
                json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
            )
        except OSError as exc:
            print(f"repro-bench gate: cannot write {args.json_out}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
    return report.exit_code


def cmd_report(args) -> int:
    """Render the Markdown/JSON performance report from a BENCH document."""
    from repro.bench.gate import EXIT_USAGE, GateError, load_bench_document
    from repro.obs.report import (
        build_profile,
        load_metrics_jsonl,
        load_spans_jsonl,
        performance_report,
        render_report_markdown,
        to_folded,
    )

    try:
        doc = load_bench_document(args.baseline)
    except GateError as exc:
        print(f"repro-bench report: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        spans = load_spans_jsonl(args.trace) if args.trace else None
        metrics = load_metrics_jsonl(args.metrics) if args.metrics else None
    except (OSError, ValueError) as exc:
        print(f"repro-bench report: {exc}", file=sys.stderr)
        return EXIT_USAGE
    report = performance_report(doc, spans=spans, metrics=metrics,
                                top=args.top, source=str(args.baseline))
    markdown = render_report_markdown(report)
    try:
        if args.out:
            Path(args.out).write_text(markdown)
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(markdown, end="")
        if args.json_out:
            Path(args.json_out).write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n"
            )
            print(f"wrote {args.json_out}", file=sys.stderr)
        if args.folded:
            if spans is None:
                print("repro-bench report: --folded needs --trace", file=sys.stderr)
                return EXIT_USAGE
            folded = to_folded(build_profile(spans), weight=args.folded_weight)
            Path(args.folded).write_text(folded + "\n" if folded else "")
            print(f"wrote {args.folded}", file=sys.stderr)
    except OSError as exc:
        print(f"repro-bench report: cannot write output: {exc}", file=sys.stderr)
        return EXIT_USAGE
    return 0


def cmd_cache(args) -> int:
    """Inspect or clear the on-disk estimate/sweep cache."""
    import os

    from repro.bench.diskcache import CACHE_DIR_ENV, DiskCache

    root = args.cache_dir or os.environ.get(CACHE_DIR_ENV)
    if not root:
        print(f"repro-bench cache: no cache directory (pass --cache-dir or "
              f"set {CACHE_DIR_ENV})", file=sys.stderr)
        return 2
    cache = DiskCache(root)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache root: {stats['root']}")
    print(f"entries:    {stats['entries']} ({stats['bytes']} bytes)")
    print("by kind:")
    for kind, k in sorted(stats["kinds"].items()):
        print(f"  {kind:8s} {k['entries']:6d} entries  {k['bytes']:10d} bytes")
    if not stats["kinds"]:
        print("  (empty)")
    print("by schema version:")
    for schema, s in sorted(stats["schemas"].items()):
        print(f"  {schema:24s} {s['entries']:6d} entries  {s['bytes']:10d} bytes")
    if not stats["schemas"]:
        print("  (empty)")
    return 0


def cmd_corpus(args) -> int:
    """Sharded, resumable corpus sweep with a win-rate roll-up."""
    from repro.bench.corpus import (
        corpus_preset,
        format_rollup,
        run_corpus_sweep,
    )
    from repro.bench.telemetry import write_corpus_rollup

    gpu = _gpu_arg(args.gpu)
    kernels = [ALL_KERNELS[k]() for k in args.kernels]
    specs = corpus_preset(args.preset, limit=args.limit)
    restore, cache = _installed_disk_cache(args.cache_dir)
    try:
        res = run_corpus_sweep(
            specs,
            kernels,
            args.n,
            [gpu],
            shards=args.shards,
            shard_size=None if args.shards else args.shard_size,
            jobs=args.jobs,
            resume=args.resume,
            max_shards=args.max_shards,
            memo_limit=args.memo_limit,
            progress=(
                None
                if args.quiet
                else lambda i, total, restored: print(
                    f"[corpus] shard {i + 1}/{total} "
                    f"{'restored' if restored else 'computed'}",
                    file=sys.stderr,
                )
            ),
        )
    finally:
        restore()
    h = res.host
    print(
        f"[corpus] {h.matrices} matrices / {h.shards_total} shards in "
        f"{h.wall_s:.2f}s (computed {h.shards_computed}, restored "
        f"{h.shards_restored}; cells {h.cells_computed} computed / "
        f"{h.cells_restored} restored)",
        file=sys.stderr,
    )
    if cache is not None:
        print(f"[corpus] shard checkpoints at {cache.root}", file=sys.stderr)
    if args.rollup_json:
        try:
            write_corpus_rollup(res.rollup, args.rollup_json)
        except OSError as exc:
            print(f"repro-bench corpus: cannot write {args.rollup_json}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"wrote {args.rollup_json}", file=sys.stderr)
    if args.host_json:
        try:
            Path(args.host_json).write_text(
                json.dumps(h.as_dict(), indent=2, sort_keys=True) + "\n"
            )
        except OSError as exc:
            print(f"repro-bench corpus: cannot write {args.host_json}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"wrote {args.host_json}", file=sys.stderr)
    print(format_rollup(res.rollup))
    return 0


def cmd_oom(args) -> int:
    from repro.datasets import SNAP_CATALOG
    from repro.gpusim import fits, spmm_footprint

    class Shell:
        def __init__(self, e):
            self.nrows = self.ncols = e.m
            self.nnz = e.nnz

    gpus = [KNOWN_GPUS[n] for n in sorted(KNOWN_GPUS)]
    print(f"paper-scale SNAP matrices that cannot run SpMM at N={args.n}:")
    any_oom = False
    for e in sorted(SNAP_CATALOG, key=lambda e: e.name):
        shell = Shell(e)
        marks = ["OOM" if not fits(shell, args.n, g) else "fits" for g in gpus]
        if "OOM" in marks:
            any_oom = True
            gb = spmm_footprint(shell, args.n).total / 2**30
            cells = "  ".join(f"{g.name}: {m}" for g, m in zip(gpus, marks))
            print(f"  {e.name:24s} {gb:6.2f} GiB   {cells}")
    if not any_oom:
        print("  (none at this width)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro-bench", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    def add_graph_opts(sp):
        sp.add_argument("--graph", default="random",
                        help="'random', a citation graph, or a SNAP matrix name")
        sp.add_argument("--m", type=int, default=65_536, help="rows for --graph random")
        sp.add_argument("--nnz", type=int, default=650_000, help="nonzeros for --graph random")
        sp.add_argument("--seed", type=int, default=42)
        sp.add_argument("--max-nnz", type=int, default=300_000,
                        help="scaling cap for SNAP twins")
        sp.add_argument("--gpu", default=GTX_1080TI.name, choices=sorted(KNOWN_GPUS))

    def add_telemetry_opts(sp, trace_default=None):
        sp.add_argument("--trace-out", default=trace_default, metavar="PATH",
                        help="write a span trace (Chrome trace-event JSON; "
                             "use a .jsonl suffix for JSONL)")
        sp.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the metrics registry as JSONL")

    sp = sub.add_parser("analyze", help="structural profile of a matrix")
    add_graph_opts(sp)
    sp.set_defaults(fn=cmd_analyze)

    sp = sub.add_parser("profile", help="nvprof-style kernel comparison")
    add_graph_opts(sp)
    sp.add_argument("--n", type=int, default=128, help="dense feature width")
    sp.add_argument("--kernels", nargs="+", default=["simple", "crc", "gespmm", "cusparse"],
                    choices=sorted(ALL_KERNELS))
    add_telemetry_opts(sp)
    sp.set_defaults(fn=cmd_profile)

    sp = sub.add_parser("sweep", help="mini SNAP sweep (Fig 11 style)")
    add_graph_opts(sp)
    sp.add_argument("--graphs", type=int, default=8)
    sp.add_argument("--n", type=int, nargs="+", default=[128, 512])
    sp.add_argument("--bench-json", default=None, metavar="PATH",
                    help="write machine-readable sweep telemetry (BENCH_spmm.json)")
    sp.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="parallel sweep workers (results are byte-identical "
                         "to serial for any N; see docs/PERFORMANCE.md)")
    sp.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="persist kernel estimates and sweep cells across "
                         "processes in a content-addressed cache at DIR "
                         "(also honours $REPRO_CACHE_DIR; safe to delete "
                         "any time — see docs/PERFORMANCE.md)")
    add_telemetry_opts(sp)
    sp.set_defaults(fn=cmd_sweep)

    sp = sub.add_parser("train", help="train a GNN on a citation twin")
    sp.add_argument("--dataset", default="cora", choices=["cora", "citeseer", "pubmed"])
    sp.add_argument("--model", default="gcn", choices=["gcn", "sage-gcn", "sage-pool"])
    sp.add_argument("--backend", default="dgl", choices=["dgl", "pyg"])
    sp.add_argument("--gespmm", action="store_true", help="swap in GE-SpMM")
    sp.add_argument("--epochs", type=int, default=20)
    sp.add_argument("--hidden", type=int, default=16)
    sp.add_argument("--layers", type=int, default=1)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--gpu", default=GTX_1080TI.name, choices=sorted(KNOWN_GPUS))
    add_telemetry_opts(sp)
    sp.set_defaults(fn=cmd_train)

    sp = sub.add_parser("scenario", help="inference / sampled-training amortization")
    add_graph_opts(sp)
    sp.add_argument("--feature-dim", type=int, default=128)
    sp.add_argument("--batches", type=int, default=4)
    sp.set_defaults(fn=cmd_scenario)

    sp = sub.add_parser("roofline", help="roofline placement of kernels")
    add_graph_opts(sp)
    sp.add_argument("--n", type=int, default=256)
    sp.add_argument("--kernels", nargs="+", default=["simple", "crc", "gespmm", "cusparse"],
                    choices=sorted(ALL_KERNELS))
    sp.set_defaults(fn=cmd_roofline)

    sp = sub.add_parser("tune", help="per-matrix coarsening-factor tuning")
    add_graph_opts(sp)
    sp.add_argument("--n", type=int, default=512)
    sp.set_defaults(fn=cmd_tune)

    sp = sub.add_parser(
        "gate",
        help="benchmark regression gate: diff BENCH documents, fail on drift",
    )
    sp.add_argument("--baseline", default="BENCH_spmm.json", metavar="PATH",
                    help="committed BENCH document to gate against")
    sp.add_argument("--current", default=None, metavar="PATH",
                    help="current BENCH document; omitted = regenerate the "
                         "telemetry sweep in-process")
    sp.add_argument("--accept", default=None, metavar="PATH",
                    help="accepted-drift annotation file (default: "
                         "BENCH_accepted_drift.json next to the baseline, "
                         "if present)")
    sp.add_argument("--time-tol", type=float, default=0.0, metavar="REL",
                    help="relative tolerance for per-cell time drift")
    sp.add_argument("--gflops-tol", type=float, default=0.0, metavar="REL",
                    help="relative tolerance for per-cell GFLOPS drift")
    sp.add_argument("--geomean-tol", type=float, default=0.0, metavar="REL",
                    help="relative tolerance for geomean-speedup drift")
    sp.add_argument("--json-out", default=None, metavar="PATH",
                    help="also write the machine-readable gate report")
    # Regeneration knobs; must mirror `make telemetry` for a clean tree
    # to gate green against the committed document.
    sp.add_argument("--graphs", type=int, default=6)
    sp.add_argument("--n", type=int, nargs="+", default=[128, 512])
    sp.add_argument("--max-nnz", type=int, default=300_000)
    sp.add_argument("--gpu", default=GTX_1080TI.name, choices=sorted(KNOWN_GPUS))
    sp.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="parallel workers for in-process regeneration "
                         "(deterministic for any N)")
    sp.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="disk cache for the in-process regeneration sweep "
                         "(same semantics as `sweep --cache-dir`)")
    sp.add_argument("--explain", action="store_true",
                    help="on drift, diff the per-cell attribution blocks "
                         "and name the ceiling/factor that moved")
    add_telemetry_opts(sp)
    sp.set_defaults(fn=cmd_gate)

    sp = sub.add_parser(
        "report",
        help="render a Markdown/JSON performance report from a BENCH document",
    )
    sp.add_argument("--baseline", default="BENCH_spmm.json", metavar="PATH",
                    help="BENCH document to report on")
    sp.add_argument("--trace", default=None, metavar="PATH",
                    help="span-trace JSONL to aggregate into a profile tree")
    sp.add_argument("--metrics", default=None, metavar="PATH",
                    help="metrics-registry JSONL for measured cache hit rates")
    sp.add_argument("--out", default=None, metavar="PATH",
                    help="write the Markdown report here (default: stdout)")
    sp.add_argument("--json-out", default=None, metavar="PATH",
                    help="also write the machine-readable report")
    sp.add_argument("--folded", default=None, metavar="PATH",
                    help="write a collapsed-stack flamegraph export "
                         "(requires --trace)")
    sp.add_argument("--folded-weight", default="wall", choices=["wall", "sim"],
                    help="weight folded stacks by wall or simulated time")
    sp.add_argument("--top", type=int, default=3, metavar="N",
                    help="cells listed per ceiling in 'Slowest cells'")
    sp.set_defaults(fn=cmd_report)

    sp = sub.add_parser(
        "cache",
        help="inspect (stats) or clear the on-disk estimate/sweep cache",
    )
    sp.add_argument("action", choices=["stats", "clear"])
    sp.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="cache root (default: $REPRO_CACHE_DIR)")
    sp.set_defaults(fn=cmd_cache)

    sp = sub.add_parser(
        "corpus",
        help="corpus-scale streaming sweep: shards, checkpoints, win-rate "
             "roll-up (see docs/PERFORMANCE.md 'Corpus sweeps')",
    )
    sp.add_argument("--preset", default="dlmc",
                    choices=["dlmc", "graphs", "mixed"],
                    help="which corpus to stream (DLMC-style pruned-DNN "
                         "matrices, graph generators, or both)")
    sp.add_argument("--limit", type=int, default=None, metavar="N",
                    help="corpus size (widens the seed range to reach N)")
    sp.add_argument("--shards", type=int, default=None, metavar="S",
                    help="partition the corpus into S shards")
    sp.add_argument("--shard-size", type=int, default=32, metavar="M",
                    help="matrices per shard (ignored with --shards)")
    sp.add_argument("--max-shards", type=int, default=None, metavar="S",
                    help="stop after S shards (simulates an interrupted "
                         "sweep; rerun with --cache-dir to resume)")
    sp.add_argument("--resume", action=argparse.BooleanOptionalAction,
                    default=True,
                    help="restore completed shards from the disk cache "
                         "(--no-resume recomputes but still checkpoints)")
    sp.add_argument("--n", type=int, nargs="+", default=[64])
    sp.add_argument("--gpu", default=GTX_1080TI.name, choices=sorted(KNOWN_GPUS))
    sp.add_argument("--kernels", nargs="+", default=["gespmm", "mergepath"],
                    choices=sorted(ALL_KERNELS))
    sp.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="parallel workers inside each shard (byte-identical "
                         "for any N)")
    sp.add_argument("--memo-limit", type=int, default=4096, metavar="E",
                    help="LRU cap on the estimate/sweep memos while streaming")
    sp.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="checkpoint completed shards (and estimates/cells) "
                         "here; a killed run resumes with zero recomputation")
    sp.add_argument("--rollup-json", default=None, metavar="PATH",
                    help="write the deterministic win-rate roll-up JSON")
    sp.add_argument("--host-json", default=None, metavar="PATH",
                    help="write host-side stats (computed/restored shard and "
                         "cell counts; machine-varying, kept out of the "
                         "roll-up)")
    sp.add_argument("--quiet", action="store_true",
                    help="suppress per-shard progress lines")
    add_telemetry_opts(sp)
    sp.set_defaults(fn=cmd_corpus)

    sp = sub.add_parser("oom", help="paper-scale out-of-memory report")
    sp.add_argument("--n", type=int, default=512)
    sp.set_defaults(fn=cmd_oom)

    sp = sub.add_parser("trace", help="observed profile run that dumps telemetry")
    add_graph_opts(sp)
    sp.add_argument("--n", type=int, default=128, help="dense feature width")
    sp.add_argument("--kernels", nargs="+", default=["simple", "crc", "gespmm", "cusparse"],
                    choices=sorted(ALL_KERNELS))
    sp.add_argument("--per-warp", action="store_true",
                    help="also export modelled per-warp device timelines into "
                         "the Chrome trace (one tid per warp task; kernels "
                         "without a trace replay are skipped with a warning)")
    sp.add_argument("--max-warps", type=int, default=64, metavar="W",
                    help="cap on warp timeline rows per kernel (default 64)")
    add_telemetry_opts(sp, trace_default="trace.json")
    sp.set_defaults(fn=cmd_trace)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out is None and metrics_out is None:
        return args.fn(args)
    # Telemetry sinks requested: run the command under a fresh tracer and
    # dump trace/metrics afterwards.  Sinks never touch stdout, so the
    # command's own output is unchanged.
    tracer = obs.Tracer()
    prev = obs.set_tracer(tracer)
    try:
        rc = args.fn(args)
    finally:
        obs.set_tracer(prev)
        try:
            if trace_out:
                tracer.write(trace_out)
            if metrics_out:
                Path(metrics_out).write_text(obs.get_registry().to_jsonl() + "\n")
        except (OSError, ValueError) as exc:
            # The run itself succeeded; don't bury that under a traceback.
            print(f"repro-bench: cannot write telemetry sink: {exc}", file=sys.stderr)
            rc = 1
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

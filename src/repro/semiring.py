"""SpMM-like operator definitions.

The paper generalizes SpMM to "SpMM-like" operations (Section III/IV):
the per-output computation is

    C[i, j] = reduce over nonzeros (i, k) of  combine(A[i,k], B[k,j])

with a user-supplied initialization and reduce function, both inlined at
compile time in the CUDA version.  The reduce must be associative and
commutative so warps may consume nonzeros in any order.  Standard SpMM is
the ``(init=0, combine=mul, reduce=add)`` instance; GraphSAGE-pool uses
``(init=-inf, combine=mul, reduce=max)``.

We mirror that contract with :class:`Semiring`: vectorized NumPy
``combine``/``reduce`` callables plus the algebraic identity element.  The
kernel implementations consume nonzero *tiles*, so reduction is expressed
over an extra axis — exactly the shape a warp's inner loop produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Semiring", "PLUS_TIMES", "MAX_TIMES", "MIN_TIMES", "MEAN_TIMES", "builtin_semirings"]


@dataclass(frozen=True)
class Semiring:
    """A general SpMM-like operator.

    Attributes
    ----------
    name:
        Identifier used in kernel dispatch and benchmark tables.
    init:
        Identity element of ``reduce`` (the accumulator's initial value).
    combine:
        Elementwise ``combine(a_vals, b_rows) -> contributions``; ``a_vals``
        broadcasts against ``b_rows`` (values of A against gathered rows of
        B).
    reduce:
        ``reduce(stacked, axis) -> reduced``; must be associative and
        commutative (np.add.reduce, np.maximum.reduce, ...).
    reduce_pair:
        Binary form ``reduce_pair(acc, update) -> acc`` used by streaming
        kernel execution.
    mean:
        If true, the reduction result is divided by the row length
        afterwards (mean aggregation); rows with no nonzeros yield
        ``init``.
    """

    name: str
    init: float
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray]
    reduce: Callable[..., np.ndarray]
    reduce_pair: Callable[[np.ndarray, np.ndarray], np.ndarray]
    mean: bool = False

    @property
    def is_standard(self) -> bool:
        """True for plain plus-times SpMM — the only case vendor libraries
        (cuSPARSE csrmm2) support."""
        return self.name == "plus_times"

    def combine_into(
        self, a_vals: np.ndarray, b_rows: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """``combine`` writing into ``out``.

        The tiled host executor (:mod:`repro.sparse.segment`) combines
        gathered rows inside a reused workspace; for the shared multiply
        every built-in semiring uses, this is a true in-place
        ``np.multiply`` with no temporary.  User-defined combines fall
        back to an allocate-then-copy, which stays O(workspace).
        """
        if self.combine is _mul:
            return np.multiply(a_vals, b_rows, out=out)
        res = self.combine(a_vals, b_rows)
        if res is not out:
            out[...] = res
        return out

    def finalize(self, acc: np.ndarray, row_lengths: np.ndarray) -> np.ndarray:
        """Apply the mean post-scaling (no-op for non-mean semirings)."""
        if not self.mean:
            return acc
        return acc * self._finalize_scale(acc, row_lengths)[:, None]

    def finalize_into(self, acc: np.ndarray, row_lengths: np.ndarray) -> np.ndarray:
        """In-place :meth:`finalize` — the same elementwise multiply, so
        bit-identical, but writing into ``acc`` (caller-owned output
        buffers in the tiled executor)."""
        if not self.mean:
            return acc
        acc *= self._finalize_scale(acc, row_lengths)[:, None]
        return acc

    def _finalize_scale(self, acc: np.ndarray, row_lengths: np.ndarray) -> np.ndarray:
        lengths = np.asarray(row_lengths, dtype=acc.dtype)
        return np.divide(
            1.0, lengths, out=np.zeros_like(lengths, dtype=acc.dtype), where=lengths > 0
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


def _mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a * b


PLUS_TIMES = Semiring(
    name="plus_times",
    init=0.0,
    combine=_mul,
    reduce=np.add.reduce,
    reduce_pair=np.add,
)

MAX_TIMES = Semiring(
    name="max_times",
    init=-np.inf,
    combine=_mul,
    reduce=np.maximum.reduce,
    reduce_pair=np.maximum,
)

MIN_TIMES = Semiring(
    name="min_times",
    init=np.inf,
    combine=_mul,
    reduce=np.minimum.reduce,
    reduce_pair=np.minimum,
)

# Mean aggregation: accumulate with +, divide by row degree at the end.
MEAN_TIMES = Semiring(
    name="mean_times",
    init=0.0,
    combine=_mul,
    reduce=np.add.reduce,
    reduce_pair=np.add,
    mean=True,
)


def builtin_semirings() -> dict:
    """Name -> semiring map of the built-in SpMM-like operators."""
    return {
        s.name: s for s in (PLUS_TIMES, MAX_TIMES, MIN_TIMES, MEAN_TIMES)
    }

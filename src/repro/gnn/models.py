"""GNN models used in the paper's end-to-end experiments.

Model configurations follow the paper's ``(x, y)`` convention in
Figs 13/14: ``x`` hidden graph layers of width ``y`` plus an output layer
sized to the number of classes (whose small N is why a few configurations
show no speedup — Section V-F1).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import obs
from repro.gnn import functional as F
from repro.gnn.aggregate import GraphPair
from repro.gnn.frameworks import AggregationBackend
from repro.gnn.layers import GCNLayer, SAGEGcnLayer, SAGEPoolLayer, _Layer
from repro.gnn.tensor import Parameter, Tensor

__all__ = ["GCN", "GraphSAGE"]

_LAYER_TYPES = {"gcn": GCNLayer, "sage-gcn": SAGEGcnLayer, "sage-pool": SAGEPoolLayer}


def _spmm_ledger_time(backend: AggregationBackend) -> float:
    """Simulated seconds the device ledger currently attributes to sparse
    aggregation (SpMM + SpMM-like + PyG MessagePassing)."""
    profile = backend.device.profile()
    return (
        profile.time("SpMM") + profile.time("SpMM-like") + profile.time("MessagePassing")
    )


def _run_layer(backend: AggregationBackend, g: GraphPair, h, layer, index: int):
    """One layer forward under a ``gnn.layer`` span; the span carries the
    layer's total simulated time and its sparse-aggregation share."""
    with obs.span("gnn.layer", index=index, kind=type(layer).__name__) as s:
        spmm_before = _spmm_ledger_time(backend) if s is not None else 0.0
        h = layer(backend, g, h)
        if s is not None:
            s.attrs["spmm_time_ms"] = (_spmm_ledger_time(backend) - spmm_before) * 1e3
    return h


class _Model:
    def __init__(self) -> None:
        self.layers: List[_Layer] = []
        self.dropout = 0.5
        self.training = True

    def parameters(self) -> List[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> None:
        self.training = True

    def eval(self) -> None:
        self.training = False


class GCN(_Model):
    """Multi-layer GCN for node classification (paper's GCN model)."""

    def __init__(
        self,
        in_dim: int,
        hidden: int,
        n_classes: int,
        n_layers: int = 1,
        rng: Optional[np.random.Generator] = None,
        dropout: float = 0.5,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.dropout = dropout
        dims = [in_dim] + [hidden] * n_layers
        for i in range(n_layers):
            self.layers.append(GCNLayer(dims[i], dims[i + 1], rng, activation=True))
        self.layers.append(GCNLayer(dims[-1], n_classes, rng, activation=False))

    def __call__(self, backend: AggregationBackend, g: GraphPair, x: Tensor, rng=None) -> Tensor:
        rng = rng or np.random.default_rng(1)
        h = x
        for i, layer in enumerate(self.layers):
            if i > 0:
                h = F.dropout(h, self.dropout, backend.device, self.training, rng)
            h = _run_layer(backend, g, h, layer, i)
        return F.log_softmax(h, backend.device)


class GraphSAGE(_Model):
    """GraphSAGE with selectable aggregator: 'gcn' (SpMM) or 'pool'
    (SpMM-like max pooling)."""

    def __init__(
        self,
        in_dim: int,
        hidden: int,
        n_classes: int,
        n_layers: int = 1,
        aggregator: str = "gcn",
        rng: Optional[np.random.Generator] = None,
        dropout: float = 0.5,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.dropout = dropout
        self.aggregator = aggregator
        layer_cls = {"gcn": SAGEGcnLayer, "pool": SAGEPoolLayer}.get(aggregator)
        if layer_cls is None:
            raise ValueError(f"unknown aggregator {aggregator!r} (use 'gcn' or 'pool')")
        dims = [in_dim] + [hidden] * n_layers
        for i in range(n_layers):
            self.layers.append(layer_cls(dims[i], dims[i + 1], rng, activation=True))
        self.layers.append(layer_cls(dims[-1], n_classes, rng, activation=False))

    def __call__(self, backend: AggregationBackend, g: GraphPair, x: Tensor, rng=None) -> Tensor:
        rng = rng or np.random.default_rng(1)
        h = x
        for i, layer in enumerate(self.layers):
            if i > 0:
                h = F.dropout(h, self.dropout, backend.device, self.training, rng)
            h = _run_layer(backend, g, h, layer, i)
        return F.log_softmax(h, backend.device)

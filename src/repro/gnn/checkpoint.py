"""Model checkpointing: save/load trained parameters.

Inference on new graphs — the paper's amortization scenario — assumes a
*trained* model exists; this module provides the persistence layer:
parameters are serialized to a single ``.npz`` keyed by their registered
names, with shape validation on restore.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint"]

PathLike = Union[str, Path]


def _named_parameters(model) -> dict:
    params = model.parameters()
    names = []
    for i, p in enumerate(params):
        base = p.name or f"param{i}"
        name = base
        k = 1
        while name in names:  # disambiguate repeated layer names
            name = f"{base}#{k}"
            k += 1
        names.append(name)
    return dict(zip(names, params))


def save_checkpoint(model, path: PathLike) -> None:
    """Serialize all of ``model.parameters()`` to ``path`` (.npz)."""
    named = _named_parameters(model)
    np.savez_compressed(path, **{name: p.data for name, p in named.items()})


def load_checkpoint(model, path: PathLike) -> None:
    """Restore parameters in place; shapes and names must match."""
    named = _named_parameters(model)
    with np.load(path) as z:
        missing = set(named) - set(z.files)
        extra = set(z.files) - set(named)
        if missing or extra:
            raise ValueError(
                f"checkpoint mismatch: missing={sorted(missing)}, unexpected={sorted(extra)}"
            )
        for name, p in named.items():
            data = z[name]
            if data.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint {data.shape} vs model {p.data.shape}"
                )
            p.data = data.astype(np.float32)

"""Simulated device clock and operator-time ledger.

The paper's end-to-end numbers are "CUDA time reported by the PyTorch
profiler" broken down per operator (Table I: SpMM share of GCN training;
Figs 13/14: total CUDA time; Tables II/IX: per-operator comparisons).
:class:`SimDevice` reproduces that instrument: every simulated GNN
operator records its kernel-model time under an operator label, and
:meth:`profile` renders the per-operator totals and shares.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import obs
from repro.gpusim.config import GPUSpec, GTX_1080TI

__all__ = ["SimDevice", "OpProfile"]


@dataclass
class OpProfile:
    """Per-operator simulated CUDA-time totals for one run."""

    totals: Dict[str, float] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return sum(self.totals.values())

    def share(self, op: str) -> float:
        """Fraction of total device time spent in ``op`` (0 if unused)."""
        total = self.total_time
        return self.totals.get(op, 0.0) / total if total > 0 else 0.0

    def time(self, op: str) -> float:
        return self.totals.get(op, 0.0)

    def rows(self) -> List[Tuple[str, float, int, float]]:
        """(op, seconds, calls, share) sorted by time descending."""
        total = self.total_time
        return sorted(
            (
                (op, t, self.calls.get(op, 0), t / total if total else 0.0)
                for op, t in self.totals.items()
            ),
            key=lambda r: -r[1],
        )

    def format(self) -> str:
        lines = [f"{'operator':24s} {'time(ms)':>10s} {'calls':>7s} {'share':>7s}"]
        for op, t, c, s in self.rows():
            lines.append(f"{op:24s} {t * 1e3:10.3f} {c:7d} {s * 100:6.1f}%")
        lines.append(f"{'TOTAL':24s} {self.total_time * 1e3:10.3f}")
        return "\n".join(lines)


class SimDevice:
    """A simulated GPU with an operator-time ledger.

    All GNN operators route their simulated kernel times through
    :meth:`record`; :meth:`reset` starts a fresh measurement window
    (e.g. to exclude warm-up epochs, as profilers do).
    """

    def __init__(self, gpu: GPUSpec = GTX_1080TI):
        self.gpu = gpu
        self._totals: Dict[str, float] = defaultdict(float)
        self._calls: Dict[str, int] = defaultdict(int)

    def record(self, op: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative simulated time")
        self._totals[op] += seconds
        self._calls[op] += 1
        # The ledger is the ground truth for simulated device time, so it
        # is also where spans get their sim-time attribution.
        obs.add_sim_time(seconds)
        obs.get_registry().counter("gnn.op.calls", op=op, gpu=self.gpu.name).inc()

    def reset(self) -> None:
        self._totals.clear()
        self._calls.clear()

    def profile(self) -> OpProfile:
        return OpProfile(dict(self._totals), dict(self._calls))

    # ------------------------------------------------------------------
    # Cost models for the dense/elementwise operators GNN training uses
    # (cuBLAS-style rooflines; sparse aggregation uses the kernel models).
    # ------------------------------------------------------------------
    def gemm_time(self, m: int, k: int, n: int) -> float:
        """Dense matmul (cuBLAS sgemm): compute/bandwidth roofline."""
        flops = 2.0 * m * k * n
        nbytes = 4.0 * (m * k + k * n + m * n)
        t = max(flops / (0.75 * self.gpu.peak_flops), nbytes / (0.8 * self.gpu.l2_bandwidth))
        return t + self.gpu.launch_overhead_s

    def elementwise_time(self, n_elements: int, n_arrays: int = 2) -> float:
        """Bandwidth-bound map/reduce kernels (relu, dropout, softmax...)."""
        nbytes = 4.0 * n_elements * n_arrays
        return nbytes / (0.8 * self.gpu.dram_bandwidth) + self.gpu.launch_overhead_s

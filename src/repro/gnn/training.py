"""Training loop, optimizer and profiling harness for the GNN substrate.

``train`` runs full-batch node-classification training the way DGL's
example scripts do (Adam, dropout, masked NLL loss) while the device
ledger accumulates per-operator simulated CUDA time — the measurement the
paper's Tables I/II/IX and Figs 13/14 are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.gnn import functional as F
from repro.gnn.aggregate import GraphPair
from repro.gnn.device import OpProfile, SimDevice
from repro.gnn.frameworks import AggregationBackend
from repro.gnn.tensor import Parameter, Tensor

__all__ = ["Adam", "TrainResult", "train", "evaluate_accuracy"]


class Adam:
    """Adam optimizer over the substrate's Parameters."""

    def __init__(self, params: List[Parameter], lr: float = 0.01, betas=(0.9, 0.999), eps: float = 1e-8):
        self.params = list(params)
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            self._m[i] = self.b1 * self._m[i] + (1 - self.b1) * g
            self._v[i] = self.b2 * self._v[i] + (1 - self.b2) * g * g
            mhat = self._m[i] / (1 - self.b1**self.t)
            vhat = self._v[i] / (1 - self.b2**self.t)
            p.data -= (self.lr * mhat / (np.sqrt(vhat) + self.eps)).astype(np.float32)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


@dataclass
class TrainResult:
    """Outcome of a profiled training run."""

    profile: OpProfile
    losses: List[float] = field(default_factory=list)
    train_accuracy: float = 0.0
    test_accuracy: float = 0.0
    epochs: int = 0

    @property
    def total_time(self) -> float:
        """Total simulated device time over the measured epochs."""
        return self.profile.total_time

    def spmm_share(self) -> float:
        """Fraction of device time in SpMM kernels (paper Table I)."""
        return self.profile.share("SpMM")


def evaluate_accuracy(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray) -> float:
    idx = np.nonzero(mask)[0]
    if idx.size == 0:
        return 0.0
    pred = logits[idx].argmax(axis=1)
    return float((pred == labels[idx]).mean())


def train(
    model,
    backend: AggregationBackend,
    dataset,
    epochs: int = 30,
    lr: float = 0.01,
    seed: int = 0,
    warmup: int = 1,
) -> TrainResult:
    """Full-batch training of ``model`` on ``dataset`` via ``backend``.

    The first ``warmup`` epochs are excluded from the profile (the ledger
    is reset afterwards), mirroring how profiler-based measurements skip
    initialization effects.
    """
    device = backend.device
    g = GraphPair(dataset.graph)
    x = Tensor(dataset.features)
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr)

    losses: List[float] = []
    model.train()
    registry = obs.get_registry()
    for epoch in range(epochs + warmup):
        if epoch == warmup:
            device.reset()
        with obs.span("train.epoch", epoch=epoch, warmup=epoch < warmup,
                      backend=backend.name, dataset=getattr(dataset, "name", "?")) as s:
            optimizer.zero_grad()
            log_probs = model(backend, g, x, rng=rng)
            loss = F.nll_loss(log_probs, dataset.labels, device, mask=dataset.train_mask)
            loss.backward()
            optimizer.step()
            if s is not None:
                s.attrs["loss"] = float(loss.data)
        if epoch >= warmup:
            losses.append(float(loss.data))
            registry.observe("train.epoch.loss", float(loss.data),
                             backend=backend.name, gpu=device.gpu.name)
            registry.counter("train.epochs", backend=backend.name,
                             gpu=device.gpu.name).inc()

    profile = device.profile()  # capture before the (unprofiled) eval pass
    model.eval()
    logits = model(backend, g, x, rng=rng)
    train_acc = evaluate_accuracy(logits.data, dataset.labels, dataset.train_mask)
    test_acc = evaluate_accuracy(logits.data, dataset.labels, dataset.test_mask)
    return TrainResult(
        profile=profile,
        losses=losses,
        train_accuracy=train_acc,
        test_accuracy=test_acc,
        epochs=epochs,
    )

"""Minimal reverse-mode autograd over NumPy with a simulated device clock.

This is the reproduction's stand-in for PyTorch: GNN layers are built
from :class:`Tensor` operations whose numeric semantics run in NumPy and
whose *device time* is charged to a :class:`repro.gnn.device.SimDevice`
ledger — forward and backward — so training profiles decompose the same
way the paper's PyTorch-profiler numbers do.

The op set is exactly what GCN/GraphSAGE training needs: matmul, bias
add, relu, dropout, log_softmax, masked NLL loss, concat, plus the graph
aggregation op defined in :mod:`repro.gnn.aggregate`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

import numpy as np

from repro.gnn.device import SimDevice

__all__ = ["Tensor", "Parameter", "no_grad_context"]


class Tensor:
    """A float32 array with optional gradient tracking."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Optional[List["Tensor"]] = None,
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = parents or []
        self._backward = backward
        self.name = name

    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def accumulate_grad(self, g: np.ndarray) -> None:
        g = np.asarray(g, dtype=np.float32)
        if g.shape != self.data.shape:
            raise ValueError(f"gradient shape {g.shape} != tensor shape {self.data.shape}")
        if self.grad is None:
            self.grad = g.copy()
        else:
            self.grad += g

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Reverse-mode accumulation through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without gradient requires a scalar output")
            grad = np.ones_like(self.data)
        self.accumulate_grad(grad)

        topo: List[Tensor] = []
        seen: Set[int] = set()

        def visit(t: "Tensor") -> None:
            if id(t) in seen:
                return
            seen.add(id(t))
            for p in t._parents:
                visit(p)
            topo.append(t)

        visit(self)
        for t in reversed(topo):
            if t._backward is not None and t.grad is not None:
                t._backward(t.grad)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, grad={self.requires_grad}{tag})"


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class no_grad_context:
    """Marker context: callers pass ``training=False`` to functional ops
    instead; provided for API familiarity in examples."""

    def __enter__(self):  # pragma: no cover - convenience shim
        return self

    def __exit__(self, *exc):  # pragma: no cover
        return False


def glorot(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)

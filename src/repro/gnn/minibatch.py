"""Minibatch GraphSAGE training on sampled blocks.

Full-graph training (``repro.gnn.training``) reproduces the paper's
profiler experiments; *this* module implements the sampled-batch regime
those experiments motivate (Section II-B): every step samples a fresh
bipartite block with :func:`repro.sparse.sampling.neighbor_sample`,
gathers the input features of the touched nodes, aggregates over the
block through the chosen backend, and updates the model on the seed
nodes' loss.

Because each block is a brand-new sparse matrix, this is the workload
where CSR-native kernels (GE-SpMM) structurally beat preprocess-based
designs — the extension benchmark prices exactly this loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.gnn import functional as F
from repro.gnn.aggregate import GraphPair
from repro.gnn.device import OpProfile
from repro.gnn.frameworks import AggregationBackend
from repro.gnn.tensor import Parameter, Tensor, glorot
from repro.gnn.training import Adam, evaluate_accuracy
from repro.sparse.csr import CSRMatrix
from repro.sparse.sampling import batch_stream

__all__ = ["MinibatchSAGE", "MinibatchResult", "train_minibatch"]


class MinibatchSAGE:
    """One-hop GraphSAGE encoder for block (bipartite) aggregation:
    ``h_seed = relu(W [x_seed, mean_agg(block, x_inputs)])`` followed by
    a linear classifier."""

    def __init__(self, in_dim: int, hidden: int, n_classes: int,
                 rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng(0)
        self.w_enc = Parameter(glorot((2 * in_dim, hidden), rng), name="mb.w_enc")
        self.b_enc = Parameter(np.zeros(hidden, dtype=np.float32), name="mb.b_enc")
        self.w_out = Parameter(glorot((hidden, n_classes), rng), name="mb.w_out")
        self.b_out = Parameter(np.zeros(n_classes, dtype=np.float32), name="mb.b_out")

    def parameters(self) -> List[Parameter]:
        return [self.w_enc, self.b_enc, self.w_out, self.b_out]

    def __call__(self, backend: AggregationBackend, block: CSRMatrix,
                 x_inputs: Tensor) -> Tensor:
        device = backend.device
        # Mean aggregation over sampled neighbors = sum on the
        # row-normalized block.
        agg = backend.aggregate(GraphPair(block).row_normalized(), x_inputs, op="sum")
        x_seed = Tensor(x_inputs.data[: block.nrows])
        h = F.concat(x_seed, agg, device)
        h = F.relu(F.add_bias(F.matmul(h, self.w_enc, device), self.b_enc, device), device)
        logits = F.add_bias(F.matmul(h, self.w_out, device), self.b_out, device)
        return F.log_softmax(logits, device)


@dataclass
class MinibatchResult:
    """Outcome of a sampled-training run."""

    profile: OpProfile
    losses: List[float] = field(default_factory=list)
    accuracy: float = 0.0
    batches: int = 0
    avg_block_nnz: float = 0.0


def train_minibatch(
    dataset,
    backend: AggregationBackend,
    batch_size: int = 128,
    fanout: int = 10,
    n_batches: int = 20,
    lr: float = 0.02,
    hidden: int = 32,
    seed: int = 0,
) -> MinibatchResult:
    """Run ``n_batches`` sampled GraphSAGE steps on ``dataset``.

    The dataset is any object with ``graph``, ``features``, ``labels``
    and ``train_mask`` (the citation twins qualify).
    """
    device = backend.device
    device.reset()
    rng = np.random.default_rng(seed)
    model = MinibatchSAGE(dataset.features.shape[1], hidden,
                          int(dataset.labels.max()) + 1, rng)
    optimizer = Adam(model.parameters(), lr=lr)
    train_nodes = np.nonzero(dataset.train_mask)[0]

    losses: List[float] = []
    total_nnz = 0
    correct = 0
    seen = 0
    for batch in batch_stream(dataset.graph, batch_size, fanout, n_batches,
                              seed=seed, population=train_nodes):
        x_inputs = Tensor(dataset.features[batch.nodes])
        optimizer.zero_grad()
        log_probs = model(backend, batch.block, x_inputs)
        labels = dataset.labels[batch.seeds]
        loss = F.nll_loss(log_probs, labels, device)
        loss.backward()
        optimizer.step()
        losses.append(float(loss.data))
        total_nnz += batch.block.nnz
        correct += int((log_probs.data.argmax(axis=1) == labels).sum())
        seen += labels.size

    return MinibatchResult(
        profile=device.profile(),
        losses=losses,
        accuracy=correct / max(seen, 1),
        batches=n_batches,
        avg_block_nnz=total_nnz / max(n_batches, 1),
    )

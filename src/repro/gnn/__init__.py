"""GNN framework substrate: autograd, layers, models, and the DGL/PyG
aggregation backends GE-SpMM plugs into."""

from repro.gnn.aggregate import GraphPair, aggregate_max, aggregate_sum, aggregate_sum_multi
from repro.gnn.device import OpProfile, SimDevice
from repro.gnn.inference import (
    ScenarioResult,
    amortization_crossover,
    inference_scenario,
    sampled_training_scenario,
)
from repro.gnn.checkpoint import load_checkpoint, save_checkpoint
from repro.gnn.frameworks import AggregationBackend, DGLBackend, PyGBackend
from repro.gnn.minibatch import MinibatchResult, MinibatchSAGE, train_minibatch
from repro.gnn.layers import GCNLayer, SAGEGcnLayer, SAGEPoolLayer
from repro.gnn.models import GCN, GraphSAGE
from repro.gnn.tensor import Parameter, Tensor
from repro.gnn.training import Adam, TrainResult, evaluate_accuracy, train

__all__ = [
    "GraphPair",
    "aggregate_sum",
    "aggregate_sum_multi",
    "aggregate_max",
    "SimDevice",
    "OpProfile",
    "AggregationBackend",
    "DGLBackend",
    "PyGBackend",
    "GCNLayer",
    "SAGEGcnLayer",
    "SAGEPoolLayer",
    "GCN",
    "GraphSAGE",
    "Tensor",
    "Parameter",
    "Adam",
    "TrainResult",
    "train",
    "evaluate_accuracy",
    "ScenarioResult",
    "inference_scenario",
    "sampled_training_scenario",
    "amortization_crossover",
    "save_checkpoint",
    "load_checkpoint",
    "MinibatchSAGE",
    "MinibatchResult",
    "train_minibatch",
]

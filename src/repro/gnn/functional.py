"""Differentiable operators for the GNN substrate.

Each op computes in NumPy and charges simulated device time (forward and
backward) to the :class:`SimDevice` ledger under the operator labels the
benchmark tables aggregate over: ``GEMM`` for dense matmuls,
``elementwise`` for maps/reductions.  Sparse aggregation lives in
:mod:`repro.gnn.aggregate` under the ``SpMM``/``SpMM-like`` labels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gnn.device import SimDevice
from repro.gnn.tensor import Tensor

__all__ = [
    "matmul",
    "add_bias",
    "relu",
    "dropout",
    "log_softmax",
    "nll_loss",
    "concat",
]


def matmul(x: Tensor, w: Tensor, device: SimDevice) -> Tensor:
    """Dense ``x @ w`` with cuBLAS-modelled timing."""
    m, k = x.data.shape
    k2, n = w.data.shape
    if k != k2:
        raise ValueError(f"matmul shape mismatch {x.data.shape} @ {w.data.shape}")
    device.record("GEMM", device.gemm_time(m, k, n))
    out_data = x.data @ w.data

    def backward(g: np.ndarray) -> None:
        device.record("GEMM", device.gemm_time(m, n, k))  # dX = g @ W^T
        device.record("GEMM", device.gemm_time(k, m, n))  # dW = X^T @ g
        if x.requires_grad:
            x.accumulate_grad(g @ w.data.T)
        if w.requires_grad:
            w.accumulate_grad(x.data.T @ g)

    req = x.requires_grad or w.requires_grad
    return Tensor(out_data, req, [x, w], backward if req else None, name="matmul")


def add_bias(x: Tensor, b: Tensor, device: SimDevice) -> Tensor:
    """Row-broadcast bias addition."""
    device.record("elementwise", device.elementwise_time(x.size))
    out = x.data + b.data[None, :]

    def backward(g: np.ndarray) -> None:
        device.record("elementwise", device.elementwise_time(x.size))
        if x.requires_grad:
            x.accumulate_grad(g)
        if b.requires_grad:
            b.accumulate_grad(g.sum(axis=0))

    req = x.requires_grad or b.requires_grad
    return Tensor(out, req, [x, b], backward if req else None, name="add_bias")


def relu(x: Tensor, device: SimDevice) -> Tensor:
    device.record("elementwise", device.elementwise_time(x.size))
    mask = x.data > 0
    out = x.data * mask

    def backward(g: np.ndarray) -> None:
        device.record("elementwise", device.elementwise_time(x.size))
        if x.requires_grad:
            x.accumulate_grad(g * mask)

    return Tensor(out, x.requires_grad, [x], backward if x.requires_grad else None, name="relu")


def dropout(
    x: Tensor, p: float, device: SimDevice, training: bool, rng: np.random.Generator
) -> Tensor:
    """Inverted dropout; identity when not training."""
    if not training or p <= 0:
        return x
    if not 0 <= p < 1:
        raise ValueError("dropout probability must be in [0, 1)")
    device.record("elementwise", device.elementwise_time(x.size))
    keep = (rng.random(x.data.shape) >= p).astype(np.float32) / (1.0 - p)
    out = x.data * keep

    def backward(g: np.ndarray) -> None:
        device.record("elementwise", device.elementwise_time(x.size))
        if x.requires_grad:
            x.accumulate_grad(g * keep)

    return Tensor(out, x.requires_grad, [x], backward if x.requires_grad else None, name="dropout")


def log_softmax(x: Tensor, device: SimDevice) -> Tensor:
    """Row-wise log-softmax (numerically stabilized)."""
    device.record("elementwise", device.elementwise_time(x.size, n_arrays=3))
    shifted = x.data - x.data.max(axis=1, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    out = shifted - logsum

    def backward(g: np.ndarray) -> None:
        device.record("elementwise", device.elementwise_time(x.size, n_arrays=3))
        if x.requires_grad:
            softmax = np.exp(out)
            x.accumulate_grad(g - softmax * g.sum(axis=1, keepdims=True))

    return Tensor(out, x.requires_grad, [x], backward if x.requires_grad else None, name="log_softmax")


def nll_loss(
    log_probs: Tensor, labels: np.ndarray, device: SimDevice, mask: Optional[np.ndarray] = None
) -> Tensor:
    """Masked negative log-likelihood averaged over selected rows."""
    labels = np.asarray(labels, dtype=np.int64)
    idx = np.nonzero(mask)[0] if mask is not None else np.arange(labels.shape[0])
    if idx.size == 0:
        raise ValueError("empty mask in nll_loss")
    device.record("elementwise", device.elementwise_time(log_probs.size))
    picked = log_probs.data[idx, labels[idx]]
    out = np.array(-picked.mean(), dtype=np.float32)

    def backward(g: np.ndarray) -> None:
        device.record("elementwise", device.elementwise_time(log_probs.size))
        if log_probs.requires_grad:
            grad = np.zeros_like(log_probs.data)
            grad[idx, labels[idx]] = -float(g) / idx.size
            log_probs.accumulate_grad(grad)

    return Tensor(
        out, log_probs.requires_grad, [log_probs],
        backward if log_probs.requires_grad else None, name="nll_loss",
    )


def concat(a: Tensor, b: Tensor, device: SimDevice) -> Tensor:
    """Column-wise concatenation (GraphSAGE's [self, neighborhood])."""
    if a.data.shape[0] != b.data.shape[0]:
        raise ValueError("concat row mismatch")
    device.record("elementwise", device.elementwise_time(a.size + b.size))
    out = np.concatenate([a.data, b.data], axis=1)
    na = a.data.shape[1]

    def backward(g: np.ndarray) -> None:
        device.record("elementwise", device.elementwise_time(a.size + b.size))
        if a.requires_grad:
            a.accumulate_grad(g[:, :na])
        if b.requires_grad:
            b.accumulate_grad(g[:, na:])

    req = a.requires_grad or b.requires_grad
    return Tensor(out, req, [a, b], backward if req else None, name="concat")

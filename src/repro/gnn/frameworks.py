"""GNN framework backends: DGL-style and PyG-style aggregation engines.

The paper accelerates two frameworks by swapping their aggregation
kernels for GE-SpMM (Section IV-B); this module reproduces both
integration points:

* :class:`DGLBackend` — DGL fuses aggregation into one kernel.  For
  standard sum it calls cuSPARSE ``csrmm2`` and then pays a cuBLAS
  transpose because csrmm2's output is column-major while GNN activations
  are row-major (Section II-C).  For SpMM-like reductions (max) cuSPARSE
  has no entry point, so DGL falls back to its own slow generic kernel
  (Table II).  With ``use_gespmm=True`` both paths run the adaptive
  GE-SpMM kernel: row-major output (no transpose) and native SpMM-like.
* :class:`PyGBackend` — PyTorch-Geometric's ``MessagePassing`` first
  *materializes a message per edge* (gather) and then scatter-reduces,
  two bandwidth-heavy kernels with an ``nnz x F`` intermediate (Section
  II-C).  With ``use_gespmm=True`` the MessagePassing call is replaced by
  the fused GE-SpMM operator — the paper's PyG integration — which is why
  Fig. 14's improvements exceed Fig. 13's.

Both backends produce numerically identical results; only the simulated
cost accounting differs.  Layers call :meth:`aggregate` with op ``"sum"``
or ``"max"`` (mean is sum over a row-normalized adjacency).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.baselines.cusparse import CusparseCsrmm2, cublas_transpose_time
from repro.baselines.dgl_fallback import DGLFallbackSpMMLike
from repro.core.gespmm import GESpMM
from repro.gnn.aggregate import GraphPair, aggregate_max, aggregate_sum
from repro.gnn.device import SimDevice
from repro.gnn.tensor import Tensor
from repro.semiring import MAX_TIMES, PLUS_TIMES
from repro.sparse.csr import CSRMatrix

__all__ = ["AggregationBackend", "DGLBackend", "PyGBackend"]


class AggregationBackend(ABC):
    """Strategy object deciding which kernels price graph aggregation."""

    name: str = "abstract"

    def __init__(self, device: SimDevice, use_gespmm: bool = False):
        self.device = device
        self.use_gespmm = bool(use_gespmm)
        self._gespmm = GESpMM()

    def aggregate(self, g: GraphPair, x: Tensor, op: str = "sum") -> Tensor:
        """Differentiable aggregation of ``x`` over graph ``g``."""
        if op == "sum":
            return self._sum(g, x)
        if op == "max":
            return self._max(g, x)
        raise ValueError(f"unknown aggregation op {op!r} (use 'sum' or 'max')")

    @abstractmethod
    def _sum(self, g: GraphPair, x: Tensor) -> Tensor: ...

    @abstractmethod
    def _max(self, g: GraphPair, x: Tensor) -> Tensor: ...

    # Shared GE-SpMM cost callables -------------------------------------
    def _ge_cost(self, semiring):
        def cost(adj: CSRMatrix, n: int) -> float:
            return self._gespmm.estimate(adj, n, self.device.gpu, semiring).time_s

        return cost


class DGLBackend(AggregationBackend):
    """DGL-style fused aggregation (cuSPARSE + fallback, or GE-SpMM)."""

    def __init__(self, device: SimDevice, use_gespmm: bool = False):
        super().__init__(device, use_gespmm)
        self.name = "DGL + GE-SpMM" if use_gespmm else "DGL"
        self._cusparse = CusparseCsrmm2()
        self._fallback = DGLFallbackSpMMLike()

    def _sum(self, g: GraphPair, x: Tensor) -> Tensor:
        if self.use_gespmm:
            cost = self._ge_cost(PLUS_TIMES)
            return aggregate_sum(g, x, cost, cost, self.device.record, label="SpMM")

        def cost(adj: CSRMatrix, n: int) -> float:
            # csrmm2 + the cuBLAS transpose DGL needs for row-major output.
            t = self._cusparse.estimate(adj, n, self.device.gpu).time_s
            return t + cublas_transpose_time(adj.nrows, n, self.device.gpu)

        return aggregate_sum(g, x, cost, cost, self.device.record, label="SpMM")

    def _max(self, g: GraphPair, x: Tensor) -> Tensor:
        if self.use_gespmm:
            fwd = self._ge_cost(MAX_TIMES)
            bwd = self._ge_cost(PLUS_TIMES)  # backward scatter ~ standard SpMM
            return aggregate_max(g, x, fwd, bwd, self.device.record, label="SpMM-like")

        def cost(adj: CSRMatrix, n: int) -> float:
            return self._fallback.estimate(adj, n, self.device.gpu, MAX_TIMES).time_s

        return aggregate_max(g, x, cost, cost, self.device.record, label="SpMM-like")


class PyGBackend(AggregationBackend):
    """PyG-style MessagePassing (gather + scatter-reduce, or GE-SpMM)."""

    def __init__(self, device: SimDevice, use_gespmm: bool = False):
        super().__init__(device, use_gespmm)
        self.name = "PyG + GE-SpMM" if use_gespmm else "PyG"

    # -- MessagePassing cost model --------------------------------------
    def _gather_time(self, adj: CSRMatrix, n: int) -> float:
        """Materialize a message per edge: read X[col], write nnz x n."""
        gpu = self.device.gpu
        nbytes = adj.nnz * n * 4 * 2 + adj.nnz * 4
        return nbytes / (0.6 * gpu.dram_bandwidth) + gpu.launch_overhead_s

    def _scatter_time(self, adj: CSRMatrix, n: int) -> float:
        """Scatter-reduce messages to destinations with atomics."""
        gpu = self.device.gpu
        nbytes = adj.nnz * n * 4 + adj.nrows * n * 4
        t_mem = nbytes / (0.5 * gpu.dram_bandwidth)
        atomic_warps = (adj.nnz * n + 31) // 32
        t_atomic = atomic_warps * 24.0 / (gpu.n_sms * gpu.clock_ghz * 1e9)
        return max(t_mem, t_atomic) + gpu.launch_overhead_s

    def _mp_cost(self, adj: CSRMatrix, n: int) -> float:
        return self._gather_time(adj, n) + self._scatter_time(adj, n)

    def _record_mp(self, label: str, seconds: float) -> None:
        self.device.record("MessagePassing", seconds)

    def _sum(self, g: GraphPair, x: Tensor) -> Tensor:
        if self.use_gespmm:
            cost = self._ge_cost(PLUS_TIMES)
            return aggregate_sum(g, x, cost, cost, self.device.record, label="SpMM")
        return aggregate_sum(g, x, self._mp_cost, self._mp_cost, self._record_mp)

    def _max(self, g: GraphPair, x: Tensor) -> Tensor:
        if self.use_gespmm:
            fwd = self._ge_cost(MAX_TIMES)
            bwd = self._ge_cost(PLUS_TIMES)
            return aggregate_max(g, x, fwd, bwd, self.device.record, label="SpMM-like")
        return aggregate_max(g, x, self._mp_cost, self._mp_cost, self._record_mp)

"""GNN layers: GCN and the two GraphSAGE variants the paper evaluates.

* :class:`GCNLayer` — Kipf & Welling graph convolution
  ``H' = sigma(A_hat H W)`` with ``A_hat = D^-1/2 (A+I) D^-1/2``; one
  standard SpMM per layer per direction.
* :class:`SAGEGcnLayer` — GraphSAGE with the "gcn" aggregator: mean over
  neighborhood (including self), i.e. SpMM on the row-normalized
  adjacency, then a linear map.  Internally *SpMM* (paper Table II).
* :class:`SAGEPoolLayer` — GraphSAGE with max-pooling: each neighbor's
  feature is first transformed (``relu(x W_pool + b)``), the neighborhood
  takes an elementwise **max** — the SpMM-like operation cuSPARSE cannot
  express — and the result is concatenated with the self feature before
  the output projection (paper Section V-F2, Table IX).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.gnn import functional as F
from repro.gnn.aggregate import GraphPair
from repro.gnn.frameworks import AggregationBackend
from repro.gnn.tensor import Parameter, Tensor, glorot

__all__ = ["GCNLayer", "SAGEGcnLayer", "SAGEPoolLayer"]


class _Layer:
    """Base: parameter registry."""

    def __init__(self) -> None:
        self._params: List[Parameter] = []

    def param(self, data, name: str) -> Parameter:
        p = Parameter(data, name=name)
        self._params.append(p)
        return p

    def parameters(self) -> List[Parameter]:
        return list(self._params)


class GCNLayer(_Layer):
    """Graph convolution: ``relu?(A_hat (X W) + b)``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, activation: bool = True):
        super().__init__()
        self.w = self.param(glorot((in_dim, out_dim), rng), "gcn.w")
        self.b = self.param(np.zeros(out_dim, dtype=np.float32), "gcn.b")
        self.activation = activation

    def __call__(self, backend: AggregationBackend, g: GraphPair, x: Tensor) -> Tensor:
        device = backend.device
        in_dim, out_dim = self.w.data.shape
        # A_hat (X W) == (A_hat X) W: order the projection so the SpMM
        # always runs at the narrower of the two widths.  Project first
        # when W shrinks the features (the classic input layer); widen
        # after aggregating when out_dim > in_dim (decoder-style layers),
        # so the wider width is never charged to the aggregation kernel.
        if out_dim <= in_dim:
            h = F.matmul(x, self.w, device)
            h = backend.aggregate(g.sym_normalized_with_loops(), h, op="sum")
        else:
            h = backend.aggregate(g.sym_normalized_with_loops(), x, op="sum")
            h = F.matmul(h, self.w, device)
        h = F.add_bias(h, self.b, device)
        return F.relu(h, device) if self.activation else h


class SAGEGcnLayer(_Layer):
    """GraphSAGE-gcn: mean aggregation (SpMM) + linear."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, activation: bool = True):
        super().__init__()
        self.w = self.param(glorot((in_dim, out_dim), rng), "sage_gcn.w")
        self.b = self.param(np.zeros(out_dim, dtype=np.float32), "sage_gcn.b")
        self.activation = activation

    def __call__(self, backend: AggregationBackend, g: GraphPair, x: Tensor) -> Tensor:
        device = backend.device
        # Mean over the neighborhood expressed as sum on D^-1 A.
        h = backend.aggregate(g.row_normalized(), x, op="sum")
        h = F.matmul(h, self.w, device)
        h = F.add_bias(h, self.b, device)
        return F.relu(h, device) if self.activation else h


class SAGEPoolLayer(_Layer):
    """GraphSAGE-pool: max-pooling aggregation (SpMM-like)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, activation: bool = True):
        super().__init__()
        self.w_pool = self.param(glorot((in_dim, in_dim), rng), "sage_pool.w_pool")
        self.b_pool = self.param(np.zeros(in_dim, dtype=np.float32), "sage_pool.b_pool")
        self.w = self.param(glorot((2 * in_dim, out_dim), rng), "sage_pool.w")
        self.b = self.param(np.zeros(out_dim, dtype=np.float32), "sage_pool.b")
        self.activation = activation

    def __call__(self, backend: AggregationBackend, g: GraphPair, x: Tensor) -> Tensor:
        device = backend.device
        msg = F.relu(F.add_bias(F.matmul(x, self.w_pool, device), self.b_pool, device), device)
        pooled = backend.aggregate(g, msg, op="max")  # the SpMM-like step
        h = F.concat(x, pooled, device)
        h = F.matmul(h, self.w, device)
        h = F.add_bias(h, self.b, device)
        return F.relu(h, device) if self.activation else h

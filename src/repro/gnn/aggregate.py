"""Differentiable graph aggregation (the SpMM / SpMM-like autograd op).

This is the reproduction of Section IV-B: "we wrap our kernel inside a
custom autograd function ... an atomic operator with gradient definition
in PyTorch [that] represents an aggregation step on the graph".

* **sum** aggregation is standard SpMM: forward ``C = A @ X``; backward
  ``dX = A^T @ dC`` — another SpMM on the (cached) transposed adjacency.
  Mean aggregation is sum over a row-normalized adjacency, so layers
  express it by normalizing the operand.
* **max** aggregation is the paper's flagship SpMM-like case
  (GraphSAGE-pool).  Forward takes the max-times semiring; empty rows
  produce 0 (the DGL convention) rather than the semiring identity.
  Backward routes each output gradient to the *first* nonzero whose
  contribution attained the maximum (PyTorch ``scatter_max`` semantics):
  the closure keeps only an ``(M, N)`` int32 argmax, not the full
  ``(nnz, N)`` contributions array.  The pre-engine tie-sharing scatter
  path is preserved and used when the segment engine is disabled.

Numeric execution is vectorized NumPy; the simulated kernel cost of both
directions is charged to the device ledger by the caller-supplied
``forward_cost`` / ``backward_cost`` callables, which is where the
framework backends (DGL-style fused kernels, PyG-style message passing,
GE-SpMM swap-ins) differ.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.gnn.tensor import Tensor
from repro.semiring import MAX_TIMES, PLUS_TIMES
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import reference_spmm_like, reference_spmm_like_multi
from repro.sparse.segment import engine_enabled, segment_max_with_argmax

__all__ = ["GraphPair", "aggregate_sum", "aggregate_sum_multi", "aggregate_max"]


class GraphPair:
    """An adjacency matrix with its cached transpose (for backward) and
    cached normalized variants (for GCN / mean aggregation)."""

    def __init__(self, adj: CSRMatrix):
        self.adj = adj
        self._adj_t: Optional[CSRMatrix] = None
        self._row_norm: Optional["GraphPair"] = None
        self._sym_norm: Optional["GraphPair"] = None

    @property
    def adj_t(self) -> CSRMatrix:
        if self._adj_t is None:
            self._adj_t = self.adj.transpose()
        return self._adj_t

    def row_normalized(self) -> "GraphPair":
        if self._row_norm is None:
            self._row_norm = GraphPair(self.adj.row_normalized())
        return self._row_norm

    def sym_normalized_with_loops(self) -> "GraphPair":
        if self._sym_norm is None:
            self._sym_norm = GraphPair(self.adj.add_self_loops().sym_normalized())
        return self._sym_norm

    @property
    def nnz(self) -> int:
        return self.adj.nnz


CostFn = Callable[[CSRMatrix, int], float]


def aggregate_sum(
    g: GraphPair,
    x: Tensor,
    forward_cost: CostFn,
    backward_cost: CostFn,
    record: Callable[[str, float], None],
    label: str = "SpMM",
) -> Tensor:
    """Sum aggregation ``C = A @ X`` with SpMM-costed backward."""
    n = x.data.shape[1]
    record(label, forward_cost(g.adj, n))
    out = reference_spmm_like(g.adj, x.data, PLUS_TIMES)

    def backward(grad: np.ndarray) -> None:
        record(label, backward_cost(g.adj_t, n))
        if x.requires_grad:
            x.accumulate_grad(reference_spmm_like(g.adj_t, grad, PLUS_TIMES))

    return Tensor(out, x.requires_grad, [x], backward if x.requires_grad else None, name=label)


def aggregate_sum_multi(
    g: GraphPair,
    xs: Sequence[Tensor],
    forward_cost: CostFn,
    backward_cost: CostFn,
    record: Callable[[str, float], None],
    label: str = "SpMM",
) -> List[Tensor]:
    """K same-graph sum aggregations through one batched SpMM traversal.

    The coalescing primitive for a multi-tenant serving layer: concurrent
    requests against the same graph share the gather index work and the
    pooled workspace (``segment_spmm_like_multi``), while each request
    keeps its own autograd closure and its own simulated-kernel charge.
    Outputs are byte-identical to per-request :func:`aggregate_sum`
    calls.
    """
    outs = reference_spmm_like_multi(g.adj, [x.data for x in xs], PLUS_TIMES)
    tensors: List[Tensor] = []
    for x, out in zip(xs, outs):
        n = x.data.shape[1]
        record(label, forward_cost(g.adj, n))

        def backward(grad: np.ndarray, x: Tensor = x, n: int = n) -> None:
            record(label, backward_cost(g.adj_t, n))
            if x.requires_grad:
                x.accumulate_grad(reference_spmm_like(g.adj_t, grad, PLUS_TIMES))

        tensors.append(
            Tensor(out, x.requires_grad, [x], backward if x.requires_grad else None, name=label)
        )
    return tensors


def _max_forward(adj: CSRMatrix, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Max-times forward returning (output, per-nonzero contributions).

    Gathers and scales once, then reduces those same contributions —
    the scatter path's backward closure and its forward reduction share
    one ``(nnz, N)`` array instead of materializing it twice.  The
    reduction replicates ``scatter_oracle_spmm_like``'s max branch
    verbatim (finalize is the identity for max-times), so the output is
    bit-identical to the pre-fix ``reference_spmm_like`` call.
    """
    contributions = adj.values[:, None] * x[adj.colind64()]
    out = np.full((adj.nrows, x.shape[1]), MAX_TIMES.init, dtype=x.dtype)
    if adj.nnz:
        np.maximum.at(out, adj.coo_rows(), contributions)
    return out, contributions


def _scatter_aggregate_max(
    g: GraphPair,
    x: Tensor,
    backward_cost: CostFn,
    record: Callable[[str, float], None],
    label: str,
) -> Tensor:
    """Pre-engine max aggregation: the backward closure retains the full
    ``(nnz, N)`` contributions and *shares* gradient among tied maxima.
    Kept as the scatter oracle for the argmax path."""
    n = x.data.shape[1]
    adj = g.adj
    out, contributions = _max_forward(adj, x.data)
    empty = adj.row_lengths() == 0
    out_clean = out.copy()
    out_clean[empty] = 0.0  # DGL convention: no neighbors -> zeros

    rows = adj.coo_rows()
    cols = adj.colind64()

    def backward(grad: np.ndarray) -> None:
        record(label, backward_cost(g.adj_t, n))
        if not x.requires_grad:
            return
        # Route gradients to maximizing contributions (ties share).
        is_max = contributions == out[rows]
        dx = np.zeros_like(x.data)
        scaled = grad[rows] * is_max * adj.values[:, None]
        np.add.at(dx, cols, scaled)
        x.accumulate_grad(dx)

    return Tensor(
        out_clean, x.requires_grad, [x], backward if x.requires_grad else None, name=label
    )


def aggregate_max(
    g: GraphPair,
    x: Tensor,
    forward_cost: CostFn,
    backward_cost: CostFn,
    record: Callable[[str, float], None],
    label: str = "SpMM-like",
) -> Tensor:
    """Max aggregation (SpMM-like) with argmax-routed backward."""
    n = x.data.shape[1]
    adj = g.adj
    record(label, forward_cost(adj, n))
    if not engine_enabled():
        return _scatter_aggregate_max(g, x, backward_cost, record, label)

    # One tiled traversal: gather + scale + reduce + argmax per column
    # tile inside the pooled O(nnz·T) workspace — the full (nnz, N)
    # contributions array is never materialized, and the (M, N) int32
    # winner indices are all the backward needs.
    out, argmax = segment_max_with_argmax(adj, x.data)
    out = out.astype(x.data.dtype, copy=False)
    out_clean = out.copy()
    out_clean[adj.row_lengths() == 0] = 0.0  # DGL convention

    colind = adj.colind64()
    k = x.data.shape[0]

    def backward(grad: np.ndarray) -> None:
        record(label, backward_cost(g.adj_t, n))
        if not x.requires_grad:
            return
        # Winner-takes-all: the whole gradient goes to the first nonzero
        # that attained the maximum.  Empty rows and NaN cells hold -1
        # (no winner) and are masked out.
        valid = argmax >= 0
        idx = argmax[valid]
        target_cols = np.nonzero(valid)[1]
        weighted = (grad[valid] * adj.values[idx]).astype(np.float64)
        flat = colind[idx] * np.int64(n) + target_cols
        dx = np.bincount(flat, weights=weighted, minlength=k * n)
        x.accumulate_grad(dx.reshape(k, n).astype(x.data.dtype))

    return Tensor(
        out_clean, x.requires_grad, [x], backward if x.requires_grad else None, name=label
    )

"""GNN inference and sampled-batch scenarios: where preprocessing dies.

The paper's amortization argument (Section II-B): "GNN applications
sometimes demand running SpMM only a few times for one matrix.  One
example scenario is GNN inference, where trained models are directly used
on new graphs ... Another is sampled batch training, where the sampled
subgraphs are different for each batch.  For these applications,
preprocess cannot be amortized."

This module turns that argument into measurable scenarios:

* :func:`inference_scenario` — a trained model applied once to a fresh
  graph: every kernel runs exactly once per layer; preprocess-based
  kernels pay their conversion on top.
* :func:`sampled_training_scenario` — a stream of per-batch subgraphs
  (via :mod:`repro.sparse.sampling`): preprocess-based kernels pay the
  conversion on *every batch*.

Both return per-kernel simulated totals so the amortization benchmark can
plot the crossover (how many reuses a preprocess needs to pay off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.baselines.aspt import ASpTSpMM
from repro.baselines.cusparse import CusparseCsrmm2, cublas_transpose_time
from repro.core.gespmm import GESpMM
from repro.gpusim.config import GPUSpec
from repro.sparse.csr import CSRMatrix
from repro.sparse.sampling import batch_stream

__all__ = ["ScenarioResult", "inference_scenario", "sampled_training_scenario", "amortization_crossover"]


@dataclass(frozen=True)
class ScenarioResult:
    """Per-kernel simulated device time for one scenario."""

    scenario: str
    times: Dict[str, float]  # kernel name -> total seconds
    spmm_calls: int

    def speedup_of(self, fast: str, slow: str) -> float:
        return self.times[slow] / self.times[fast]


def _kernels():
    ge = GESpMM()
    cu = CusparseCsrmm2()
    asp = ASpTSpMM()
    return ge, cu, asp


def _record_scenario(scenario: str, totals: Dict[str, float], gpu: GPUSpec, s) -> None:
    """Publish per-kernel scenario totals to the span and the registry."""
    registry = obs.get_registry()
    for name, t in totals.items():
        registry.gauge("scenario.time_ms", scenario=scenario, kernel=name,
                       gpu=gpu.name).set(t * 1e3)
    if s is not None:
        s.attrs["times_ms"] = {k: v * 1e3 for k, v in sorted(totals.items())}


def inference_scenario(
    graph: CSRMatrix, feature_dim: int, gpu: GPUSpec, n_layers: int = 2
) -> ScenarioResult:
    """One forward pass of an ``n_layers`` GNN on a *new* graph.

    GE-SpMM runs from CSR directly; cuSPARSE additionally transposes each
    output to row-major; ASpT must preprocess the never-seen matrix first.
    """
    ge, cu, asp = _kernels()
    totals = {ge.name: 0.0, cu.name: 0.0, asp.name: 0.0}
    with obs.span("scenario.inference", n=int(feature_dim), gpu=gpu.name,
                  layers=n_layers) as s:
        for layer in range(n_layers):
            with obs.span("scenario.layer", index=layer):
                totals[ge.name] += ge.estimate(graph, feature_dim, gpu).time_s
                totals[cu.name] += (
                    cu.estimate(graph, feature_dim, gpu).time_s
                    + cublas_transpose_time(graph.nrows, feature_dim, gpu)
                )
                totals[asp.name] += asp.estimate(graph, feature_dim, gpu).time_s
        totals[asp.name] += asp.preprocess_time(graph, gpu)  # paid once per graph
        _record_scenario("inference", totals, gpu, s)
    return ScenarioResult("inference", totals, spmm_calls=n_layers)


def sampled_training_scenario(
    graph: CSRMatrix,
    feature_dim: int,
    gpu: GPUSpec,
    batch_size: int = 256,
    fanout: int = 10,
    n_batches: int = 8,
    seed: int = 0,
) -> ScenarioResult:
    """GraphSAGE-style minibatch training: each batch samples a fresh
    block matrix (forward + backward = 2 SpMM calls per batch), so
    preprocess-based kernels pay conversion on every one of them."""
    ge, cu, asp = _kernels()
    totals = {ge.name: 0.0, cu.name: 0.0, asp.name: 0.0}
    calls = 0
    with obs.span("scenario.sampled-training", n=int(feature_dim), gpu=gpu.name,
                  batches=n_batches) as s:
        for i, batch in enumerate(batch_stream(graph, batch_size, fanout, n_batches,
                                               seed=seed)):
            block = batch.block
            with obs.span("scenario.batch", index=i, block_nnz=block.nnz):
                for _ in range(2):  # forward + backward aggregation
                    calls += 1
                    totals[ge.name] += ge.estimate(block, feature_dim, gpu).time_s
                    totals[cu.name] += (
                        cu.estimate(block, feature_dim, gpu).time_s
                        + cublas_transpose_time(block.nrows, feature_dim, gpu)
                    )
                    totals[asp.name] += asp.estimate(block, feature_dim, gpu).time_s
                totals[asp.name] += asp.preprocess_time(block, gpu)  # per fresh batch
        _record_scenario("sampled-training", totals, gpu, s)
    return ScenarioResult("sampled-training", totals, spmm_calls=calls)


def amortization_crossover(
    graph: CSRMatrix,
    feature_dim: int,
    gpu: GPUSpec,
    max_reuses: int = 64,
) -> Optional[int]:
    """Smallest number of SpMM reuses of one fixed matrix after which
    ASpT (kernel + one preprocess) beats GE-SpMM, or None if it never
    does within ``max_reuses`` — the quantitative form of "preprocess can
    be tolerated in iterative algorithms" (Section II-B)."""
    ge, _, asp = _kernels()
    t_ge = ge.estimate(graph, feature_dim, gpu).time_s
    t_asp = asp.estimate(graph, feature_dim, gpu).time_s
    t_pre = asp.preprocess_time(graph, gpu)
    if t_asp >= t_ge:
        return None  # kernel itself not faster: never amortizes
    for r in range(1, max_reuses + 1):
        if r * t_asp + t_pre < r * t_ge:
            return r
    return None

"""Observability layer: structured tracing + metrics, dependency-free.

``repro.obs`` is the instrument the rest of the stack records into: the
simulated-GPU hot paths (kernel estimates, nvprof-style profiling), the
adaptive/tuning decision points, the benchmark sweep runner, and the GNN
training/inference loops all emit spans and metrics through this package.
See ``docs/OBSERVABILITY.md`` for the formats and the CLI flags
(``--trace-out`` / ``--metrics-out``) that dump them.

Nothing here imports the rest of ``repro`` (so every module can safely
import it) and nothing is emitted unless a sink is asked for: with no
tracer installed and nobody calling ``to_jsonl``, instrumented code paths
produce byte-identical stdout to an uninstrumented build.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.report import (
    ProfileNode,
    build_profile,
    cache_hit_rates,
    load_metrics_jsonl,
    load_spans_jsonl,
    performance_report,
    profile_to_json,
    render_profile,
    render_report_markdown,
    to_folded,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    add_sim_time,
    event,
    get_tracer,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "event",
    "add_sim_time",
    "get_tracer",
    "set_tracer",
    "tracing",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "ProfileNode",
    "build_profile",
    "render_profile",
    "profile_to_json",
    "to_folded",
    "load_spans_jsonl",
    "load_metrics_jsonl",
    "cache_hit_rates",
    "performance_report",
    "render_report_markdown",
]

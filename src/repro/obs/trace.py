"""Structured tracing: nestable spans over wall-clock and simulated time.

The paper's evaluation is built from *observed* execution — nvprof
counters, profiler timelines — and this module gives the reproduction the
same instrument.  A :class:`Tracer` records a tree of named spans, each
carrying wall-clock duration, accumulated *simulated* kernel time
(:func:`add_sim_time`), and arbitrary attributes, and exports them as
JSONL (one span per line) or Chrome trace-event JSON loadable in
``chrome://tracing`` / Perfetto.

Zero-overhead-by-default: no tracer is installed at import time, and
:func:`span` with no active tracer is a no-op that yields ``None`` —
existing scripts' stdout stays byte-identical.  Install one with
:func:`set_tracer` or the :func:`tracing` context manager::

    from repro.obs import tracing, span

    with tracing() as tracer:
        with span("sweep.cell", kernel="GE-SpMM", n=128):
            ...
    tracer.write("trace.json")          # Chrome trace-event format
    tracer.write("trace.jsonl")         # one span per line

Simulated time flows in from the instrumented hot paths (kernel
``estimate``, the :class:`~repro.gnn.device.SimDevice` ledger) and is
attributed to **every** open span, so an epoch span sees the total of its
layers and a layer span the total of its kernels.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "event",
    "add_sim_time",
    "get_tracer",
    "set_tracer",
    "tracing",
]

PathLike = Union[str, Path]


@dataclass
class SpanRecord:
    """One finished (or still-open) span."""

    name: str
    index: int  # position in the tracer's record list (stable id)
    parent: Optional[int]  # index of the enclosing span, None at root
    depth: int  # nesting depth, 0 at root
    start_s: float  # wall-clock offset from trace start
    attrs: Dict[str, Any] = field(default_factory=dict)
    end_s: Optional[float] = None  # None while the span is open
    sim_time_s: float = 0.0  # simulated device time inside the span
    status: str = "ok"  # "ok" | "error"
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Wall-clock duration (0 while still open)."""
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def as_dict(self) -> Dict[str, Any]:
        d = {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "sim_time_s": self.sim_time_s,
            "status": self.status,
            "attrs": self.attrs,
        }
        if self.events:
            d["events"] = self.events
        return d


class Tracer:
    """Records a span tree; one per observed run.

    ``clock`` is injectable (a zero-arg callable returning seconds) so
    tests can drive deterministic timelines; the default is
    :func:`time.perf_counter`.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self._origin = self._clock()
        self.records: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []
        #: pre-built Chrome trace events appended verbatim by
        #: :meth:`to_chrome` — the carrier for simulated-device timelines
        #: (per-warp traces, one tid per warp; see
        #: ``repro.gpusim.warptrace``).  Not part of the JSONL span export.
        self.chrome_events: List[Dict[str, Any]] = []

    # -- core protocol -------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._origin

    def begin(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> SpanRecord:
        parent = self._stack[-1] if self._stack else None
        rec = SpanRecord(
            name=name,
            index=len(self.records),
            parent=parent.index if parent else None,
            depth=len(self._stack),
            start_s=self._now(),
            attrs=dict(attrs or {}),
        )
        self.records.append(rec)
        self._stack.append(rec)
        return rec

    def end(self, error: bool = False) -> SpanRecord:
        if not self._stack:
            raise RuntimeError("Tracer.end() with no open span")
        rec = self._stack.pop()
        rec.end_s = self._now()
        if error:
            rec.status = "error"
        return rec

    def add_sim_time(self, seconds: float) -> None:
        """Attribute simulated device time to every open span."""
        for rec in self._stack:
            rec.sim_time_s += seconds

    def event(self, name: str, **attrs: Any) -> None:
        """Attach an instant event to the innermost open span (or drop it
        silently at root, keeping call sites unconditional)."""
        if self._stack:
            self._stack[-1].events.append(
                {"name": name, "t_s": self._now(), "attrs": attrs}
            )

    def add_chrome_events(self, events: List[Dict[str, Any]]) -> None:
        """Append pre-built Chrome trace-event dicts (device timelines).

        Callers own the event shape (``ph``/``pid``/``tid``/``ts``...);
        the tracer just carries them into :meth:`to_chrome`.  Use distinct
        ``pid`` values per device/kernel so span rows (pid 0) stay
        separate from device rows.
        """
        self.chrome_events.extend(events)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    # -- export --------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per span, in open order."""
        return "\n".join(json.dumps(r.as_dict(), sort_keys=True) for r in self.records)

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

        Spans become complete ("X") events; span events become instant
        ("i") events.  Simulated time rides along in ``args`` so the
        visual timeline (wall-clock of the model evaluation) and the
        modelled device time are both visible.
        """
        events: List[Dict[str, Any]] = []
        for r in self.records:
            args = dict(r.attrs)
            args["sim_time_ms"] = r.sim_time_s * 1e3
            if r.status != "ok":
                args["status"] = r.status
            events.append(
                {
                    "name": r.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": r.start_s * 1e6,  # microseconds
                    "dur": r.duration_s * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": args,
                }
            )
            for ev in r.events:
                events.append(
                    {
                        "name": ev["name"],
                        "cat": "repro",
                        "ph": "i",
                        "s": "t",
                        "ts": ev["t_s"] * 1e6,
                        "pid": 0,
                        "tid": 0,
                        "args": dict(ev["attrs"]),
                    }
                )
        events.extend(self.chrome_events)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: PathLike, fmt: Optional[str] = None) -> Path:
        """Write the trace to ``path``.

        ``fmt`` selects the format explicitly: ``"jsonl"`` (one span per
        line) or ``"chrome"`` (trace-event JSON).  When ``fmt`` is None
        it is inferred from the suffix — ``.jsonl`` -> JSONL, ``.json``
        -> Chrome — and any other suffix raises :class:`ValueError`
        rather than silently emitting Chrome JSON into a file no viewer
        will recognize.
        """
        p = Path(path)
        if fmt is None:
            if p.suffix == ".jsonl":
                fmt = "jsonl"
            elif p.suffix == ".json":
                fmt = "chrome"
            else:
                raise ValueError(
                    f"cannot infer trace format from suffix {p.suffix!r} "
                    f"(expected .json or .jsonl); pass fmt='chrome' or "
                    f"fmt='jsonl'"
                )
        if fmt == "jsonl":
            p.write_text(self.to_jsonl() + "\n")
        elif fmt == "chrome":
            p.write_text(json.dumps(self.to_chrome(), sort_keys=True) + "\n")
        else:
            raise ValueError(f"unknown trace format {fmt!r} (expected 'chrome' or 'jsonl')")
        return p


# ----------------------------------------------------------------------
# Process-global tracer (None by default: tracing is opt-in)
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or None when tracing is off."""
    return _TRACER


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` (or None to disable); returns the previous one."""
    global _TRACER
    prev = _TRACER
    _TRACER = tracer
    return prev


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[SpanRecord]]:
    """Open a nested span on the active tracer; no-op when tracing is off.

    The yielded :class:`SpanRecord` (or None) can take late attributes::

        with span("tune.cf", n=n) as s:
            best = ...
            if s is not None:
                s.attrs["best_cf"] = best
    """
    t = _TRACER
    if t is None:
        yield None
        return
    rec = t.begin(name, attrs)
    try:
        yield rec
    except BaseException:
        t.end(error=True)
        raise
    else:
        t.end()


def add_sim_time(seconds: float) -> None:
    """Attribute simulated device time to all open spans (no-op untraced)."""
    t = _TRACER
    if t is not None:
        t.add_sim_time(seconds)


def event(name: str, **attrs: Any) -> None:
    """Attach an instant event to the current span (no-op untraced)."""
    t = _TRACER
    if t is not None:
        t.event(name, **attrs)


@contextmanager
def tracing(clock: Optional[Callable[[], float]] = None) -> Iterator[Tracer]:
    """Install a fresh tracer for the duration of the block."""
    tracer = Tracer(clock=clock)
    prev = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(prev)

"""Bottleneck attribution and performance reports.

This module turns the raw observability exports — span traces, the
metrics registry, and the per-cell ``attribution`` blocks of
``BENCH_spmm.json`` — into the artifacts an engineer actually reads:

* **Profile trees**: spans aggregated by call path into a tree of
  (count, total/self wall time, total/self simulated time) nodes, with a
  deterministic text rendering and a collapsed-stack ``folded`` export
  for speedscope / ``flamegraph.pl``.
* **Performance reports**: ``repro-bench report`` renders a Markdown +
  JSON document from a BENCH file — the bound-by distribution per
  kernel x graph-regime x GPU, roofline placement of every attributed
  cell, the slowest cells per ceiling, geomean speedups, and cache
  hit rates.

Everything here is deterministic: given the same inputs the Markdown and
JSON outputs are byte-identical (no timestamps, all iteration orders
sorted).  Like the rest of ``repro.obs``, importing this module pulls in
nothing from the rest of ``repro``; the roofline placement late-imports
``repro.gpusim`` only when a report is actually generated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "REPORT_SCHEMA",
    "ProfileNode",
    "build_profile",
    "render_profile",
    "profile_to_json",
    "to_folded",
    "load_spans_jsonl",
    "load_metrics_jsonl",
    "cache_hit_rates",
    "performance_report",
    "render_report_markdown",
    "render_corpus_markdown",
]

PathLike = Union[str, Path]

REPORT_SCHEMA = "repro/perf-report/v1"

#: the ceilings of the timing model, in the order report tables list them
#: (binding ceilings first, additive tail last) — see repro.gpusim.timing.
CEILING_ORDER = ("dram", "l2_link", "issue", "shared", "compute", "atomics",
                 "sync", "launch")


# ----------------------------------------------------------------------
# Profile trees
# ----------------------------------------------------------------------


@dataclass
class ProfileNode:
    """One call path's aggregate in a profile tree."""

    name: str
    path: Tuple[str, ...]
    count: int = 0
    wall_s: float = 0.0  # total wall time of spans at this path
    sim_s: float = 0.0  # total simulated device time at this path
    errors: int = 0
    children: Dict[str, "ProfileNode"] = field(default_factory=dict)

    @property
    def child_wall_s(self) -> float:
        return sum(c.wall_s for c in self.children.values())

    @property
    def child_sim_s(self) -> float:
        return sum(c.sim_s for c in self.children.values())

    @property
    def self_wall_s(self) -> float:
        """Wall time not accounted to any child path (clamped at 0)."""
        return max(self.wall_s - self.child_wall_s, 0.0)

    @property
    def self_sim_s(self) -> float:
        return max(self.sim_s - self.child_sim_s, 0.0)

    def walk(self) -> Iterable["ProfileNode"]:
        """Depth-first traversal, children in sorted-name order."""
        yield self
        for name in sorted(self.children):
            yield from self.children[name].walk()


def _span_fields(rec: Any) -> Tuple[int, Optional[int], str, float, float, str]:
    """Normalize a SpanRecord or a JSONL span dict to plain fields."""
    if isinstance(rec, dict):
        return (
            int(rec["index"]),
            rec.get("parent"),
            str(rec["name"]),
            float(rec.get("duration_s", 0.0)),
            float(rec.get("sim_time_s", 0.0)),
            str(rec.get("status", "ok")),
        )
    return (rec.index, rec.parent, rec.name, rec.duration_s,
            rec.sim_time_s, rec.status)


def build_profile(spans: Iterable[Any]) -> ProfileNode:
    """Aggregate spans (SpanRecords or JSONL dicts) into a profile tree.

    Spans with the same call path (root-to-span name chain) merge into
    one node; the synthetic root ``<root>`` holds the top-level spans.
    """
    rows = [_span_fields(rec) for rec in spans]
    by_index = {r[0]: r for r in rows}
    paths: Dict[int, Tuple[str, ...]] = {}

    def path_of(index: int) -> Tuple[str, ...]:
        cached = paths.get(index)
        if cached is not None:
            return cached
        _, parent, name, _, _, _ = by_index[index]
        if parent is None or parent not in by_index:
            p: Tuple[str, ...] = (name,)
        else:
            p = path_of(int(parent)) + (name,)
        paths[index] = p
        return p

    root = ProfileNode(name="<root>", path=())
    for index, _parent, _name, duration, sim, status in sorted(rows):
        node = root
        for part in path_of(index):
            child = node.children.get(part)
            if child is None:
                child = ProfileNode(name=part, path=node.path + (part,))
                node.children[part] = child
            node = child
        node.count += 1
        node.wall_s += duration
        node.sim_s += sim
        if status != "ok":
            node.errors += 1
    # The root totals are the sums of its top-level children so that
    # self-time at the root is zero and percentages have a denominator.
    root.count = sum(c.count for c in root.children.values())
    root.wall_s = root.child_wall_s
    root.sim_s = root.child_sim_s
    return root


def render_profile(root: ProfileNode, max_depth: Optional[int] = None) -> str:
    """Deterministic text table of a profile tree.

    Children print in descending total-wall order (name as tie-break) so
    the hottest path reads top-down.
    """
    lines = [
        f"{'count':>7s} {'wall ms':>10s} {'self ms':>10s} "
        f"{'sim ms':>10s} {'self sim':>10s}  span"
    ]

    def emit(node: ProfileNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        mark = f" [{node.errors} err]" if node.errors else ""
        lines.append(
            f"{node.count:7d} {node.wall_s * 1e3:10.3f} {node.self_wall_s * 1e3:10.3f} "
            f"{node.sim_s * 1e3:10.3f} {node.self_sim_s * 1e3:10.3f}  "
            f"{'  ' * depth}{node.name}{mark}"
        )
        for child in sorted(node.children.values(),
                            key=lambda c: (-c.wall_s, c.name)):
            emit(child, depth + 1)

    for child in sorted(root.children.values(), key=lambda c: (-c.wall_s, c.name)):
        emit(child, 0)
    return "\n".join(lines)


def profile_to_json(root: ProfileNode) -> Dict[str, Any]:
    """JSON-safe nested rendering (children sorted by name)."""
    return {
        "name": root.name,
        "count": root.count,
        "wall_ms": root.wall_s * 1e3,
        "self_wall_ms": root.self_wall_s * 1e3,
        "sim_ms": root.sim_s * 1e3,
        "self_sim_ms": root.self_sim_s * 1e3,
        "errors": root.errors,
        "children": [profile_to_json(root.children[k]) for k in sorted(root.children)],
    }


def to_folded(root: ProfileNode, weight: str = "wall") -> str:
    """Collapsed-stack flamegraph export (``flamegraph.pl`` / speedscope).

    One line per call path — ``a;b;c <microseconds>`` — weighted by
    *self* time so stacking the lines reconstructs totals exactly.
    ``weight`` selects wall-clock (``"wall"``) or simulated device time
    (``"sim"``).  Zero-weight paths are omitted; lines are sorted so the
    export is byte-deterministic.
    """
    if weight not in ("wall", "sim"):
        raise ValueError(f"unknown weight {weight!r} (expected 'wall' or 'sim')")
    lines = []
    for node in root.walk():
        if not node.path:
            continue
        self_s = node.self_wall_s if weight == "wall" else node.self_sim_s
        usec = int(round(self_s * 1e6))
        if usec > 0:
            lines.append(";".join(node.path) + f" {usec}")
    return "\n".join(sorted(lines))


# ----------------------------------------------------------------------
# Telemetry file loaders
# ----------------------------------------------------------------------


def _load_jsonl(path: PathLike, what: str) -> List[Dict[str, Any]]:
    text = Path(path).read_text()
    first = text.lstrip().split("\n", 1)[0]
    if first.startswith("{") and '"traceEvents"' in first:
        raise ValueError(
            f"{path}: looks like Chrome trace-event JSON, not {what} JSONL; "
            f"re-export with a .jsonl suffix (or fmt='jsonl')"
        )
    rows = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid JSONL: {exc}") from exc
    return rows


def load_spans_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Load a span trace written with ``Tracer.write(..., fmt='jsonl')``."""
    return _load_jsonl(path, "span")


def load_metrics_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Load a metrics dump written from ``MetricsRegistry.to_jsonl``."""
    return _load_jsonl(path, "metrics")


def cache_hit_rates(metric_rows: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Hit/miss totals per cache family from metrics-registry rows.

    Any counter pair ``<family>.hits`` / ``<family>.misses`` (summed over
    label sets) becomes one family — this covers ``sweep.memo``,
    ``access_profile``, ``csr.derived_cache`` and ``diskcache`` without a
    hard-coded list.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for row in metric_rows:
        if row.get("type") != "counter":
            continue
        name = str(row.get("name", ""))
        for suffix, slot in ((".hits", "hits"), (".misses", "misses")):
            if name.endswith(suffix):
                fam = totals.setdefault(name[: -len(suffix)],
                                        {"hits": 0.0, "misses": 0.0})
                fam[slot] += float(row.get("value", 0.0))
    out: Dict[str, Dict[str, float]] = {}
    for fam in sorted(totals):
        hits, misses = totals[fam]["hits"], totals[fam]["misses"]
        lookups = hits + misses
        out[fam] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
        }
    return out


def _host_cache_rates(host: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Cache families recorded in a BENCH document's ``run.host`` block."""
    out: Dict[str, Dict[str, float]] = {}
    pairs = {
        "sweep.memo": (host.get("memo_hits"), host.get("memo_misses")),
        "access_profile": (
            (host.get("access_profile") or {}).get("hits"),
            (host.get("access_profile") or {}).get("misses"),
        ),
        "diskcache": (
            (host.get("diskcache") or {}).get("hits"),
            (host.get("diskcache") or {}).get("misses"),
        ),
    }
    for fam in sorted(pairs):
        hits, misses = pairs[fam]
        if hits is None or misses is None:
            continue
        lookups = float(hits) + float(misses)
        out[fam] = {
            "hits": float(hits),
            "misses": float(misses),
            "hit_rate": float(hits) / lookups if lookups else 0.0,
        }
    return out


# ----------------------------------------------------------------------
# Performance report
# ----------------------------------------------------------------------


def _cell_key(cell: Dict[str, Any]) -> str:
    return f"{cell['kernel']}|{cell['graph']}|N={cell['n']}|{cell['gpu']}"


def _roofline_rows(cells: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Place every attributed cell on its GPU's roofline.

    Late-imports ``repro.gpusim`` (the only place this module touches the
    rest of the stack) and skips cells whose GPU is not in
    ``KNOWN_GPUS`` or whose attribution lacks ``factors.link_bytes``.
    """
    from repro.gpusim import KNOWN_GPUS
    from repro.gpusim.roofline import roofline_from_quantities

    rows = []
    for cell in cells:
        attr = cell.get("attribution")
        if not isinstance(attr, dict):
            continue
        gpu = KNOWN_GPUS.get(cell.get("gpu"))
        link_bytes = (attr.get("factors") or {}).get("link_bytes")
        if gpu is None or not link_bytes:
            continue
        time_s = float(cell["time_ms"]) / 1e3
        flops = float(cell["gflops"]) * 1e9 * time_s
        pt = roofline_from_quantities(cell["kernel"], gpu, flops,
                                      float(link_bytes), time_s)
        rows.append(
            {
                "cell": _cell_key(cell),
                "arithmetic_intensity": pt.arithmetic_intensity,
                "achieved_gflops": pt.achieved_gflops,
                "roof_gflops": min(pt.memory_roof_gflops, pt.peak_gflops),
                "roof_utilization": pt.roof_utilization,
                "bound": pt.bound,
            }
        )
    rows.sort(key=lambda r: r["cell"])
    return rows


def performance_report(
    doc: Dict[str, Any],
    spans: Optional[Iterable[Any]] = None,
    metrics: Optional[Iterable[Dict[str, Any]]] = None,
    top: int = 3,
    source: Optional[str] = None,
) -> Dict[str, Any]:
    """Build the JSON performance report from a BENCH document.

    ``spans`` / ``metrics`` are optional trace rows (adds a profile tree)
    and metrics rows (adds measured cache hit rates).  The output is a
    pure function of the inputs — byte-deterministic when serialized
    with ``sort_keys``.
    """
    run = doc.get("run", {}) or {}
    cells = [c for c in doc.get("cells", []) if isinstance(c, dict)]
    regimes: Dict[str, str] = dict(run.get("regimes") or {})

    # -- bound-by distribution per (gpu, kernel, regime) ----------------
    dist: Dict[Tuple[str, str, str], Dict[str, int]] = {}
    attributed = 0
    for cell in cells:
        attr = cell.get("attribution")
        if not isinstance(attr, dict):
            continue
        attributed += 1
        key = (cell["gpu"], cell["kernel"],
               regimes.get(cell["graph"], "unknown"))
        counts = dist.setdefault(key, {})
        bound = str(attr.get("bound_by", ""))
        counts[bound] = counts.get(bound, 0) + 1
    bound_by = [
        {"gpu": gpu, "kernel": kernel, "regime": regime,
         "counts": {b: counts[b] for b in sorted(counts)}}
        for (gpu, kernel, regime), counts in sorted(dist.items())
    ]

    # -- slowest cells per binding ceiling ------------------------------
    by_ceiling: Dict[str, List[Dict[str, Any]]] = {}
    for cell in cells:
        attr = cell.get("attribution")
        if not isinstance(attr, dict):
            continue
        bound = str(attr.get("bound_by", ""))
        breakdown = attr.get("breakdown_ms") or {}
        time_ms = float(cell["time_ms"])
        share = (float(breakdown.get(bound, 0.0)) / time_ms) if time_ms else 0.0
        by_ceiling.setdefault(bound, []).append(
            {"cell": _cell_key(cell), "time_ms": time_ms, "ceiling_share": share}
        )
    top_cells = {
        ceiling: sorted(rows, key=lambda r: (-r["time_ms"], r["cell"]))[:top]
        for ceiling, rows in sorted(by_ceiling.items())
    }

    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "source": {
            "path": source,
            "bench_schema": doc.get("schema"),
            "tool": run.get("tool"),
            "version": run.get("version"),
            "kernels": list(run.get("kernels") or []),
            "graphs": list(run.get("graphs") or []),
            "widths": list(run.get("widths") or []),
            "gpus": list(run.get("gpus") or []),
        },
        "coverage": {"cells": len(cells), "attributed": attributed},
        "bound_by": bound_by,
        "top_cells": top_cells,
        "roofline": _roofline_rows(cells),
        "geomeans": [dict(g) for g in doc.get("geomeans", [])
                     if isinstance(g, dict)],
        "cache": _host_cache_rates(run.get("host") or {}),
    }
    if metrics is not None:
        # Measured rates override the run.host snapshot: they describe
        # the telemetry actually handed to this report.
        report["cache"] = cache_hit_rates(metrics)
    if spans is not None:
        report["profile"] = profile_to_json(build_profile(spans))
    return report


def _md_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    def esc(cell: str) -> str:
        return cell.replace("|", "\\|")  # cell keys embed '|' separators

    lines = ["| " + " | ".join(esc(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(esc(c) for c in row) + " |" for row in rows)
    return lines


def render_report_markdown(report: Dict[str, Any]) -> str:
    """Render a performance report dict as Markdown (deterministic)."""
    src = report.get("source", {})
    cov = report.get("coverage", {})
    out: List[str] = ["# SpMM performance report", ""]
    origin = f"`{src['path']}`" if src.get("path") else "a BENCH document"
    out.append(
        f"Generated by `repro-bench report` from {origin} "
        f"(schema `{src.get('bench_schema')}`, "
        f"{src.get('tool')} {src.get('version')})."
    )
    out.append("")
    out.append(f"- kernels: {', '.join(src.get('kernels', []))}")
    out.append(f"- graphs: {len(src.get('graphs', []))} "
               f"({', '.join(src.get('graphs', []))})")
    out.append(f"- widths: {', '.join(str(w) for w in src.get('widths', []))}"
               f" on {', '.join(src.get('gpus', []))}")
    out.append(f"- cells: {cov.get('cells', 0)} "
               f"({cov.get('attributed', 0)} with attribution)")

    geomeans = report.get("geomeans", [])
    if geomeans:
        out.extend(["", "## Geomean speedups", ""])
        out.extend(_md_table(
            ["target", "baseline", "gpu", "N", "speedup"],
            [[g["target"], g["baseline"], g["gpu"], str(g["n"]),
              f"{g['speedup']:.3f}x"] for g in geomeans],
        ))

    bound_by = report.get("bound_by", [])
    if bound_by:
        ceilings = sorted(
            {b for row in bound_by for b in row["counts"]},
            key=lambda c: (CEILING_ORDER.index(c) if c in CEILING_ORDER
                           else len(CEILING_ORDER), c),
        )
        out.extend(["", "## Bottleneck distribution", ""])
        out.append("Cells per binding ceiling, by GPU, kernel and graph regime.")
        out.append("")
        out.extend(_md_table(
            ["gpu", "kernel", "regime"] + list(ceilings),
            [[row["gpu"], row["kernel"], row["regime"]]
             + [str(row["counts"].get(c, 0)) for c in ceilings]
             for row in bound_by],
        ))

    top_cells = report.get("top_cells", {})
    if top_cells:
        out.extend(["", "## Slowest cells per ceiling"])
        for ceiling in sorted(top_cells):
            out.extend(["", f"### {ceiling}", ""])
            out.extend(_md_table(
                ["cell", "time (ms)", "ceiling share"],
                [[r["cell"], f"{r['time_ms']:.4f}",
                  f"{r['ceiling_share'] * 100:.1f}%"]
                 for r in top_cells[ceiling]],
            ))

    roofline = report.get("roofline", [])
    if roofline:
        out.extend(["", "## Roofline placement", ""])
        out.extend(_md_table(
            ["cell", "AI (flop/B)", "achieved GF/s", "roof GF/s",
             "% of roof", "bound"],
            [[r["cell"], f"{r['arithmetic_intensity']:.3f}",
              f"{r['achieved_gflops']:.1f}", f"{r['roof_gflops']:.1f}",
              f"{r['roof_utilization'] * 100:.0f}%", r["bound"]]
             for r in roofline],
        ))

    cache = report.get("cache", {})
    if cache:
        out.extend(["", "## Cache hit rates", ""])
        out.extend(_md_table(
            ["cache", "hits", "misses", "hit rate"],
            [[fam, f"{c['hits']:.0f}", f"{c['misses']:.0f}",
              f"{c['hit_rate'] * 100:.1f}%"]
             for fam, c in sorted(cache.items())],
        ))

    profile = report.get("profile")
    if profile:
        out.extend(["", "## Profile", ""])
        out.append(f"Span tree: {profile['count']} spans, "
                   f"{profile['wall_ms']:.3f} ms wall, "
                   f"{profile['sim_ms']:.3f} ms simulated.")
        out.append("")
        out.append("```")
        root = _profile_from_json(profile)
        out.append(render_profile(root))
        out.append("```")

    return "\n".join(out) + "\n"


def _profile_from_json(d: Dict[str, Any], path: Tuple[str, ...] = ()) -> ProfileNode:
    """Rebuild a ProfileNode tree from its ``profile_to_json`` form."""
    node_path = path + (d["name"],) if path or d["name"] != "<root>" else ()
    node = ProfileNode(
        name=d["name"],
        path=node_path,
        count=int(d["count"]),
        wall_s=float(d["wall_ms"]) / 1e3,
        sim_s=float(d["sim_ms"]) / 1e3,
        errors=int(d.get("errors", 0)),
    )
    for child in d.get("children", []):
        node.children[child["name"]] = _profile_from_json(child, node_path)
    return node


# ----------------------------------------------------------------------
# Corpus roll-up rendering
# ----------------------------------------------------------------------
def render_corpus_markdown(rollup: Dict[str, Any]) -> str:
    """Render a corpus-sweep roll-up (``repro/corpus-rollup/v1``, see
    ``repro.bench.corpus``) as deterministic Markdown: one win-rate
    table per axis — overall, structural regime (graph_regime +
    row-imbalance means), and sparsity band."""
    cfg = rollup.get("config", {})
    corp = rollup.get("corpus", {})
    kernels: List[str] = list(cfg.get("kernels", []))
    out: List[str] = ["# Corpus sweep roll-up", ""]
    out.append(
        f"{corp.get('matrices', 0)} matrices in {corp.get('shards', 0)} "
        f"shards; {corp.get('contests', 0)} contests over "
        f"{', '.join(kernels)} at widths "
        f"{', '.join(str(w) for w in cfg.get('widths', []))} on "
        f"{', '.join(cfg.get('gpus', []))}."
    )

    def block_rows(blocks: Dict[str, Any]) -> List[List[str]]:
        rows = []
        for label in sorted(blocks):
            b = blocks[label]
            rows.append(
                [label, str(b.get("contests", 0)),
                 f"{b.get('mean_row_gini', 0.0):.3f}",
                 f"{b.get('mean_sparsity', 0.0):.3f}"]
                + [f"{b.get('win_rate', {}).get(k, 0.0):.3f}" for k in kernels]
            )
        return rows

    headers = ["bucket", "contests", "gini", "sparsity"] + kernels
    for title, blocks in (
        ("Overall", {"all": rollup.get("overall", {})}),
        ("By structural regime", rollup.get("regimes", {})),
        ("By sparsity band", rollup.get("sparsity_bands", {})),
    ):
        out.extend(["", f"## {title} win rates", ""])
        out.extend(_md_table(headers, block_rows(blocks)))
    return "\n".join(out) + "\n"

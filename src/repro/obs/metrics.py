"""Process-global metrics registry: counters, gauges, histograms.

The machine-readable counterpart of the benchmark suite's pretty tables.
Metrics are named, carry sorted key=value labels (the benchmark series
key is ``(kernel, graph, n, gpu)``), and serialize deterministically to
JSONL so two runs of the same workload diff clean.

* :class:`Counter` — monotonically increasing count (kernel launches,
  dispatch decisions, cache hits).
* :class:`Gauge` — last-written value (a sweep cell's GFLOPS, one nvprof
  metric of one profile run).
* :class:`Histogram` — fixed bucket bounds chosen once at construction,
  so p50/p95/p99 are bucket upper edges and therefore **deterministic**:
  the same samples always produce the same percentiles, independent of
  insertion order or platform.

Recording is always on (an in-memory dict update per event, no I/O, no
stdout); *emission* only happens when a caller asks for
:meth:`MetricsRegistry.to_jsonl` — e.g. via ``--metrics-out`` on the
CLI.  That keeps existing scripts byte-identical while letting any run
dump its telemetry after the fact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

LabelValue = Union[str, int, float, bool]
LabelKey = Tuple[Tuple[str, LabelValue], ...]

#: Geometric 1-2-5 ladder spanning 1e-6 .. 5e6 — wide enough for both
#: millisecond kernel times and GFLOPS rates without per-metric tuning.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 7) for m in (1.0, 2.0, 5.0)
)


def _label_key(labels: Dict[str, LabelValue]) -> LabelKey:
    return tuple(sorted((str(k), v) for k, v in labels.items()))


class Counter:
    """Monotonic event count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Last-written value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Fixed-bound bucket histogram with deterministic percentiles.

    A percentile is the upper bound of the first bucket whose cumulative
    count reaches the requested rank; samples beyond the last bound land
    in an overflow bucket whose percentile reports the (deterministic)
    observed maximum.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be non-empty and increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 = overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.sum += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def percentile(self, p: float) -> float:
        """Deterministic p-th percentile (0 < p <= 100); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        rank = max(1, -(-int(p * self.count) // 100))  # ceil(p/100 * count)
        cum = 0
        for i, bound in enumerate(self.bounds):
            cum += self.counts[i]
            if cum >= rank:
                return bound
        return float(self.max)  # overflow bucket: observed maximum

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create store of labeled metrics.

    A metric instance is identified by ``(name, kind, sorted labels)``;
    asking twice returns the same object, so call sites stay stateless::

        get_registry().counter("sim.kernel.launches", gpu=gpu.name).inc()
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, LabelKey], Metric] = {}

    def _get(self, name: str, kind: str, labels: Dict[str, LabelValue], factory) -> Metric:
        key = (name, kind, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        return self._get(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        return self._get(name, "gauge", labels, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: LabelValue
    ) -> Histogram:
        return self._get(name, "histogram", labels, lambda: Histogram(buckets))

    def observe(self, name: str, value: float, **labels: LabelValue) -> None:
        """Shorthand: record one sample into a default-bucket histogram."""
        self.histogram(name, **labels).observe(value)

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        self._metrics.clear()

    # -- export --------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """All series as dicts, sorted by (name, kind, labels)."""
        out = []
        def order(key):  # labels may mix value types; compare their JSON form
            return (key[0], key[1], json.dumps(key[2]))

        for (name, kind, labels) in sorted(self._metrics, key=order):
            metric = self._metrics[(name, kind, labels)]
            row: Dict[str, Any] = {"name": name, "type": kind, "labels": dict(labels)}
            row.update(metric.snapshot())
            out.append(row)
        return out

    def to_jsonl(self) -> str:
        """One JSON object per metric series, deterministically ordered."""
        return "\n".join(json.dumps(row, sort_keys=True) for row in self.snapshot())


# ----------------------------------------------------------------------
# Process-global registry (always recording, never emitting on its own)
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry all instrumented code records into."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests isolate with a fresh one);
    returns the previous registry."""
    global _REGISTRY
    prev = _REGISTRY
    _REGISTRY = registry
    return prev

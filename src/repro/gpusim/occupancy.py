"""CUDA occupancy calculator.

Computes how many blocks of a given launch configuration fit on one SM —
limited by warp slots, the register file, shared memory, and the hard
block cap — and from that the *achieved occupancy* (``nvprof``'s
``achieved_occupancy``: active warps / maximum warps).  Coarse-grained
Warp Merging trades exactly this quantity against memory-level
parallelism, so the paper's Table VI reports it alongside load metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.config import GPUSpec

__all__ = ["LaunchConfig", "Occupancy", "compute_occupancy"]

_REG_ALLOC_GRANULARITY = 256  # registers are allocated in warp granules


@dataclass(frozen=True)
class LaunchConfig:
    """A kernel launch: grid size plus per-block resource usage."""

    blocks: int
    threads_per_block: int
    regs_per_thread: int = 32
    shared_mem_per_block: int = 0

    def __post_init__(self) -> None:
        if self.blocks < 0 or self.threads_per_block <= 0:
            raise ValueError("invalid launch configuration")

    @property
    def warps_per_block(self) -> int:
        return (self.threads_per_block + 31) // 32

    @property
    def total_warps(self) -> int:
        return self.blocks * self.warps_per_block

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads_per_block


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation."""

    blocks_per_sm: int  # resource-limited residency
    active_warps_per_sm: float  # grid-limited average residency
    achieved: float  # active / max warps, in [0, 1]
    limiter: str  # which resource bound residency
    waves: float  # grid size / full-device residency

    @property
    def is_latency_starved(self) -> bool:
        """Heuristic flag: too few warps to hide memory latency."""
        return self.active_warps_per_sm < 8


def compute_occupancy(cfg: LaunchConfig, gpu: GPUSpec) -> Occupancy:
    """Blocks-per-SM and achieved occupancy for ``cfg`` on ``gpu``.

    Mirrors NVIDIA's occupancy calculator: the binding limit is the
    minimum over warp slots, registers (allocated per warp with
    granularity), shared memory, and the block cap.  Small grids that
    cannot fill the device reduce *achieved* occupancy below the
    resource-limited value — this is what makes tiny GNN graphs (Cora)
    launch-latency bound in the end-to-end experiments.
    """
    if cfg.threads_per_block > gpu.max_threads_per_block:
        raise ValueError(
            f"block of {cfg.threads_per_block} threads exceeds device limit "
            f"{gpu.max_threads_per_block}"
        )
    warps_per_block = cfg.warps_per_block

    by_warps = gpu.max_warps_per_sm // warps_per_block
    regs_per_warp = _round_up(cfg.regs_per_thread * 32, _REG_ALLOC_GRANULARITY)
    by_regs = gpu.registers_per_sm // max(regs_per_warp * warps_per_block, 1)
    if cfg.shared_mem_per_block > 0:
        if cfg.shared_mem_per_block > gpu.shared_mem_per_block:
            raise ValueError("shared memory request exceeds per-block limit")
        by_shared = gpu.shared_mem_per_sm // cfg.shared_mem_per_block
    else:
        by_shared = gpu.max_blocks_per_sm
    limits = {
        "warps": by_warps,
        "registers": by_regs,
        "shared_memory": by_shared,
        "blocks": gpu.max_blocks_per_sm,
    }
    limiter = min(limits, key=limits.get)
    blocks_per_sm = max(min(limits.values()), 0)
    if blocks_per_sm == 0:
        raise ValueError(f"kernel cannot launch: zero residency (limited by {limiter})")

    # Grid limitation: with fewer blocks than device residency the average
    # active warp count over the kernel's lifetime is grid-bound.
    device_residency = blocks_per_sm * gpu.n_sms
    if cfg.blocks == 0:
        return Occupancy(blocks_per_sm, 0.0, 0.0, "empty_grid", 0.0)
    waves = cfg.blocks / device_residency
    avg_blocks_per_sm = min(blocks_per_sm, cfg.blocks / gpu.n_sms)
    active_warps = avg_blocks_per_sm * warps_per_block
    achieved = min(active_warps / gpu.max_warps_per_sm, 1.0)
    return Occupancy(blocks_per_sm, active_warps, achieved, limiter, waves)


def _round_up(x: int, granularity: int) -> int:
    return int(math.ceil(x / granularity) * granularity)

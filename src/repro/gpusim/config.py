"""GPU device specifications for the simulator.

The paper evaluates on two machines (Section V-A3):

* **GTX 1080Ti** — Pascal, compute capability 6.1, 28 SMs @ 1.481 GHz,
  11 GB GDDR5X, 484 GB/s.  On Pascal, global loads bypass the L1 by
  default and are serviced in 32-byte sectors from the L2.
* **RTX 2080** — Turing, compute capability 7.5, 46 SMs @ 1.515 GHz,
  8 GB GDDR6, 448 GB/s.  Turing's unified L1 caches global loads, which
  is why plain Coalesced Row Caching barely helps there (paper Fig. 8):
  the L1 already filters the broadcast re-reads CRC eliminates.

Published figures are used where the paper states them; remaining
microarchitectural constants (latencies, L2 bandwidth, issue costs) are
calibration parameters of :mod:`repro.gpusim.timing` with values from
vendor documentation and microbenchmark literature.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUSpec", "GTX_1080TI", "RTX_2080", "KNOWN_GPUS"]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a simulated GPU."""

    name: str
    arch: str
    n_sms: int
    clock_ghz: float
    dram_bandwidth: float  # bytes/s
    dram_capacity: int  # bytes
    l2_size: int  # bytes
    l2_bandwidth: float  # bytes/s (device-wide L1<->L2 sustained)
    l1_caches_global: bool  # Turing unified L1 caches global loads
    l1_size: int  # bytes per SM available for global caching
    shared_mem_per_sm: int  # bytes
    shared_mem_per_block: int  # bytes
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    warp_size: int = 32
    max_warps_per_sm: int = 64
    max_blocks_per_sm: int = 32
    max_threads_per_block: int = 1024
    cores_per_sm: int = 128
    sector_size: int = 32  # bytes; DRAM/L2 transaction granularity
    dram_latency_cycles: int = 400
    l2_latency_cycles: int = 200
    launch_overhead_s: float = 3.5e-6

    @property
    def peak_flops(self) -> float:
        """Peak single-precision FLOP/s (2 per FMA per core per cycle)."""
        return self.n_sms * self.cores_per_sm * 2.0 * self.clock_ghz * 1e9

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * self.warp_size

    @property
    def shared_bandwidth(self) -> float:
        """Device-wide shared-memory bandwidth: 32 banks x 4 B per cycle
        per SM."""
        return self.n_sms * 32 * 4 * self.clock_ghz * 1e9

    def scaled(self, **overrides) -> "GPUSpec":
        """Return a copy with selected fields replaced (what-if studies)."""
        return replace(self, **overrides)


GTX_1080TI = GPUSpec(
    name="GTX 1080Ti",
    arch="pascal",
    n_sms=28,
    clock_ghz=1.481,
    dram_bandwidth=484e9,
    dram_capacity=11 * 1024**3,
    l2_size=2816 * 1024,
    # Pascal's L2 sustains roughly 2x DRAM bandwidth to the SMs.
    l2_bandwidth=2.0 * 484e9,
    l1_caches_global=False,
    l1_size=48 * 1024,
    shared_mem_per_sm=96 * 1024,
    shared_mem_per_block=48 * 1024,
    cores_per_sm=128,
    dram_latency_cycles=440,
    l2_latency_cycles=216,
)

RTX_2080 = GPUSpec(
    name="RTX 2080",
    arch="turing",
    n_sms=46,
    clock_ghz=1.515,
    dram_bandwidth=448e9,
    dram_capacity=8 * 1024**3,
    l2_size=4 * 1024**2,
    l2_bandwidth=2.2 * 448e9,
    l1_caches_global=True,
    l1_size=64 * 1024,
    shared_mem_per_sm=64 * 1024,
    shared_mem_per_block=64 * 1024,
    cores_per_sm=64,
    max_warps_per_sm=32,
    dram_latency_cycles=380,
    l2_latency_cycles=188,
)

KNOWN_GPUS = {g.name: g for g in (GTX_1080TI, RTX_2080)}

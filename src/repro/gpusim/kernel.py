"""Base class shared by all simulated SpMM kernels.

A kernel model couples three views of the same algorithm:

* ``run``      — functional execution (vectorized NumPy), producing the
                 numeric output; validated against the SciPy oracle.
* ``count``    — closed-form access/instruction statistics plus launch
                 shape; validated against ``trace`` where implemented.
* ``trace``    — optional faithful warp-by-warp execution through
                 :class:`repro.gpusim.memory.TraceMemory`; exact but slow,
                 used on small inputs by tests and profiling examples.

``estimate`` ties ``count`` to the timing model.  Results are memoized in
a process-wide content-addressed cache keyed on ``(kernel.cache_key(),
CSRMatrix.fingerprint(), N, gpu, semiring, params)`` — the same scheme as
the sweep memo (``docs/PERFORMANCE.md``) — because benchmark sweeps
re-time the same kernel/matrix pair at several places and full-batch
training re-evaluates the cost model every epoch.  Hits and misses
surface as the ``kernel.estimate_memo.hits`` / ``.misses`` counters;
:func:`clear_estimate_memo` resets the cache.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.config import GPUSpec
from repro.gpusim.memory import KernelStats
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints, KernelTiming, TimingParams, estimate_time
from repro.sparse.csr import CSRMatrix

__all__ = [
    "SpMMKernel",
    "KernelCounts",
    "clear_estimate_memo",
    "invalidate_estimates_for",
    "set_estimate_memo_limit",
    "get_estimate_memo_limit",
]

KernelCounts = Tuple[KernelStats, LaunchConfig, ExecHints]

#: (cache_key(), fingerprint, n, gpu.name, semiring.name, params) -> timing.
#: Content-addressed and process-wide: equally configured kernel instances
#: share entries, and GC id reuse can never alias two different matrices.
#: Insertion/recency-ordered so an optional LRU cap (corpus-scale sweeps)
#: can evict the coldest entries; unbounded by default.
_ESTIMATE_MEMO: "OrderedDict[tuple, KernelTiming]" = OrderedDict()
#: estimates run inside run_sweep's thread pool, so guard the dict.
_ESTIMATE_MEMO_LOCK = threading.Lock()
#: None = unlimited (the historical default; existing sweeps see no
#: change).  Corpus-scale drivers cap it so streaming thousands of
#: matrices through one process cannot grow the memo without bound.
_ESTIMATE_MEMO_LIMIT: Optional[int] = None


def clear_estimate_memo() -> None:
    """Reset the process-wide estimate memo (tests, long-lived hosts)."""
    with _ESTIMATE_MEMO_LOCK:
        _ESTIMATE_MEMO.clear()


def invalidate_estimates_for(fingerprint: str) -> int:
    """Drop every memoized estimate keyed on one matrix fingerprint.

    The targeted alternative to :func:`clear_estimate_memo` for dynamic
    graphs (``repro.sparse.delta``): when a matrix version is superseded,
    only its entries — ``key[1]`` is the fingerprint component — are
    reclaimed; every other matrix's estimates stay warm.  Returns the
    number dropped (also counted as ``kernel.estimate_memo.invalidations``).
    """
    with _ESTIMATE_MEMO_LOCK:
        stale = [k for k in _ESTIMATE_MEMO if k[1] == fingerprint]
        for k in stale:
            del _ESTIMATE_MEMO[k]
    if stale:
        obs.get_registry().counter("kernel.estimate_memo.invalidations").inc(
            len(stale)
        )
    return len(stale)


def set_estimate_memo_limit(limit: Optional[int]) -> Optional[int]:
    """Cap the estimate memo at ``limit`` entries, LRU-evicting beyond it
    (``kernel.estimate_memo.evictions`` counts the drops); ``None``
    removes the cap (the default).  Returns the previous limit so callers
    can restore it.
    """
    global _ESTIMATE_MEMO_LIMIT
    if limit is not None and limit < 1:
        raise ValueError(f"limit must be a positive int or None, got {limit!r}")
    with _ESTIMATE_MEMO_LOCK:
        prev = _ESTIMATE_MEMO_LIMIT
        _ESTIMATE_MEMO_LIMIT = limit
        evicted = _trim_estimate_memo_locked()
    if evicted:
        obs.get_registry().counter("kernel.estimate_memo.evictions").inc(evicted)
    return prev


def get_estimate_memo_limit() -> Optional[int]:
    """The current estimate-memo entry cap (None = unlimited)."""
    with _ESTIMATE_MEMO_LOCK:
        return _ESTIMATE_MEMO_LIMIT


def _trim_estimate_memo_locked() -> int:
    """Evict LRU entries down to the cap; caller holds the lock."""
    evicted = 0
    if _ESTIMATE_MEMO_LIMIT is not None:
        while len(_ESTIMATE_MEMO) > _ESTIMATE_MEMO_LIMIT:
            _ESTIMATE_MEMO.popitem(last=False)
            evicted += 1
    return evicted


def _memo_put(key: tuple, timing: KernelTiming) -> None:
    """Insert into the memo, LRU-trimming past the cap."""
    with _ESTIMATE_MEMO_LOCK:
        _ESTIMATE_MEMO[key] = timing
        _ESTIMATE_MEMO.move_to_end(key)
        evicted = _trim_estimate_memo_locked()
    if evicted:
        obs.get_registry().counter("kernel.estimate_memo.evictions").inc(evicted)


def _disk_cache():
    """The active cross-process estimate cache, or None (the default).
    Late import: ``repro.bench`` imports this module."""
    from repro.bench.diskcache import get_disk_cache

    return get_disk_cache()


class SpMMKernel(ABC):
    """Abstract simulated SpMM / SpMM-like kernel."""

    #: human-readable kernel name used in benchmark tables
    name: str = "abstract"
    #: whether the kernel accepts user-defined (non plus-times) semirings
    supports_general_semiring: bool = True
    #: preprocessing the kernel requires before first use (CSR is free)
    requires_preprocess: bool = False

    # -- functional ----------------------------------------------------
    @abstractmethod
    def run(
        self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES
    ) -> np.ndarray:
        """Execute functionally and return ``C`` (float32[M, N])."""

    # -- modelling -----------------------------------------------------
    @abstractmethod
    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        """Closed-form statistics and launch configuration."""

    def trace(
        self,
        a: CSRMatrix,
        b: np.ndarray,
        gpu: GPUSpec,
        semiring: Semiring = PLUS_TIMES,
    ) -> Tuple[np.ndarray, KernelStats]:
        """Faithful warp-level execution (batched replay).  Optional."""
        raise NotImplementedError(f"{self.name} has no trace-mode implementation")

    def trace_loop(
        self,
        a: CSRMatrix,
        b: np.ndarray,
        gpu: GPUSpec,
        semiring: Semiring = PLUS_TIMES,
    ) -> Tuple[np.ndarray, KernelStats]:
        """Reference per-warp loop replay, the parity oracle for
        :meth:`trace` (see ``docs/PERFORMANCE.md``).  Optional."""
        raise NotImplementedError(f"{self.name} has no trace-mode implementation")

    # -- timing ----------------------------------------------------------
    def estimate(
        self,
        a: CSRMatrix,
        n: int,
        gpu: GPUSpec,
        semiring: Semiring = PLUS_TIMES,
        params: Optional[TimingParams] = None,
    ) -> KernelTiming:
        """Simulated kernel time for ``A (MxK) @ B (KxN)`` on ``gpu``."""
        self.check_semiring(semiring)
        params = params or TimingParams()
        key = (self.cache_key(), a.fingerprint(), int(n), gpu.name, semiring.name, params)
        with _ESTIMATE_MEMO_LOCK:
            cached = _ESTIMATE_MEMO.get(key)
            if cached is not None:
                _ESTIMATE_MEMO.move_to_end(key)  # refresh LRU recency
        registry = obs.get_registry()
        if cached is not None:
            registry.counter(
                "kernel.estimate_memo.hits", kernel=self.name, gpu=gpu.name
            ).inc()
            registry.counter(
                "sim.kernel.estimates", kernel=self.name, gpu=gpu.name, cached=True
            ).inc()
            return cached
        registry.counter(
            "kernel.estimate_memo.misses", kernel=self.name, gpu=gpu.name
        ).inc()
        disk = _disk_cache()
        if disk is not None:
            timing = disk.get_timing(key)
            if timing is not None:
                _memo_put(key, timing)
                registry.counter(
                    "sim.kernel.estimates", kernel=self.name, gpu=gpu.name, cached=True
                ).inc()
                return timing
        registry.counter(
            "sim.kernel.estimates", kernel=self.name, gpu=gpu.name, cached=False
        ).inc()
        with obs.span("kernel.estimate", kernel=self.name, n=int(n), gpu=gpu.name) as s:
            stats, launch, hints = self.count(a, int(n), gpu)
            timing = estimate_time(stats, launch, gpu, hints, params)
            if s is not None:
                s.attrs["time_ms"] = timing.time_s * 1e3
                s.attrs["bound_by"] = timing.bound_by
        _memo_put(key, timing)
        if disk is not None:
            disk.put_timing(key, timing)
        return timing

    # -- misc ------------------------------------------------------------
    def cache_key(self) -> tuple:
        """Hashable description of this kernel's configuration, stable
        across instances with equal config — the kernel component of the
        sweep memoization key (``docs/PERFORMANCE.md``).  Covers the
        class plus every public primitive attribute; kernels holding
        non-primitive config (e.g. an epilogue object) should extend it.
        """
        attrs = tuple(
            sorted(
                (k, v)
                for k, v in vars(self).items()
                if not k.startswith("_") and isinstance(v, (bool, int, float, str))
            )
        )
        return (type(self).__qualname__, self.name, attrs)

    def check_semiring(self, semiring: Semiring) -> None:
        if not self.supports_general_semiring and not semiring.is_standard:
            raise NotImplementedError(
                f"{self.name} supports only standard plus-times SpMM "
                f"(got semiring {semiring.name!r}); this is the cuSPARSE "
                "limitation the paper's SpMM-like support addresses"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"

"""Warp-level memory coalescing model and access statistics.

This module defines the reproduction's equivalent of ``nvprof``'s memory
counters.  The central rule (CUDA programming guide; paper Section II-A)
is that a warp's 32 lane addresses are merged into the minimum number of
32-byte *sectors*; each distinct sector is one global transaction
(``gld_transactions`` / ``gst_transactions``).  ``gld_efficiency`` is the
ratio of bytes the program asked for to bytes the transactions moved.

Two usage modes share these definitions:

* **trace mode** — :class:`TraceMemory` holds real buffers; kernels
  executed warp-by-warp call :meth:`TraceMemory.load` /
  :meth:`TraceMemory.store` with per-lane element indices and an active
  mask.  Every call coalesces the actual addresses.  This is exact and is
  used by tests and small-input profiling.
* **analytic mode** — kernels compute the same totals in closed form with
  vectorized NumPy (see each kernel's ``count`` method).  Property tests
  assert trace == analytic on randomized small inputs.

Shared-memory accesses are modelled with the 32-bank rule: a warp request
is replayed once per additional address mapping to an already-used bank
(broadcasts of one address are conflict-free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = [
    "AccessStats",
    "KernelStats",
    "TraceMemory",
    "warp_sector_count",
    "segment_sectors",
    "bank_conflict_passes",
    "bank_conflict_passes_batch",
]

SECTOR = 32  # bytes
ELEM = 4  # float32 / int32


def warp_sector_count(byte_addresses: np.ndarray) -> int:
    """Number of 32 B sectors a warp access touches.

    ``byte_addresses`` holds the active lanes' byte addresses (inactive
    lanes excluded).  An empty access costs zero transactions — CUDA
    issues nothing when the whole warp is predicated off.
    """
    if byte_addresses.size == 0:
        return 0
    return int(np.unique(byte_addresses // SECTOR).size)


def segment_sectors(start_elem: np.ndarray, length: np.ndarray, elem_bytes: int = ELEM) -> np.ndarray:
    """Vectorized sector count for contiguous element ranges.

    For a warp loading elements ``[s, s+L)`` of a 32 B-aligned array, the
    transaction count is ``floor(((s+L)*b - 1)/32) - floor(s*b/32) + 1``
    (zero when ``L == 0``).  Used by the analytic counters.
    """
    start_elem = np.asarray(start_elem, dtype=np.int64)
    length = np.asarray(length, dtype=np.int64)
    first = (start_elem * elem_bytes) // SECTOR
    last = ((start_elem + length) * elem_bytes - 1) // SECTOR
    out = last - first + 1
    return np.where(length > 0, out, 0)


def bank_conflict_passes(word_addresses: np.ndarray) -> int:
    """Number of shared-memory passes (1 = conflict free) for a warp
    request, under the 32-bank / 4-byte-word rule with broadcast merging:
    distinct addresses mapping to the same bank serialize."""
    if word_addresses.size == 0:
        return 0
    distinct = np.unique(word_addresses)
    banks = distinct % 32
    _, counts = np.unique(banks, return_counts=True)
    return int(counts.max())


def bank_conflict_passes_batch(
    word_addresses: np.ndarray, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Vectorized :func:`bank_conflict_passes` for a whole warp batch.

    ``word_addresses`` is ``(num_warps, lanes)``; ``mask`` (same shape,
    optional) predicates lanes off per warp.  Returns an ``int64`` vector
    of one pass count per warp, each entry equal to what the scalar
    function returns for that warp's active lanes (0 for a fully-masked
    warp).  Used by the batch trace-replay engine to account shared-memory
    requests for every warp of a launch in one shot.
    """
    addrs = np.asarray(word_addresses, dtype=np.int64)
    if addrs.ndim != 2:
        raise ValueError(f"expected a (num_warps, lanes) matrix, got shape {addrs.shape}")
    w, lanes = addrs.shape
    if w == 0 or lanes == 0:
        return np.zeros(w, dtype=np.int64)
    if mask is None:
        active = np.ones((w, lanes), dtype=bool)
    else:
        active = np.asarray(mask, dtype=bool)
        if active.shape != addrs.shape:
            raise ValueError("mask shape must match word_addresses")
    # Sort each warp's addresses with inactive lanes pushed to the front
    # as a sentinel, then keep one representative per distinct address.
    sentinel = addrs.min() - 1 if active.any() else -1
    a = np.where(active, addrs, sentinel)
    a.sort(axis=1)
    valid = a != sentinel
    first = np.empty_like(valid)
    first[:, 0] = True
    first[:, 1:] = a[:, 1:] != a[:, :-1]
    keep = valid & first
    banks = a % 32
    keys = (np.arange(w, dtype=np.int64)[:, None] * 32 + banks)[keep]
    counts = np.bincount(keys, minlength=w * 32).reshape(w, 32)
    return counts.max(axis=1).astype(np.int64)


@dataclass
class AccessStats:
    """Counters for one (space, direction) access stream."""

    instructions: int = 0  # warp-level load/store instructions issued
    transactions: int = 0  # 32 B sectors moved (L1<->L2 for global)
    requested_bytes: int = 0  # bytes the active lanes asked for
    l1_filtered_transactions: int = 0  # sectors after Turing L1 filtering

    def merge(self, other: "AccessStats") -> None:
        self.instructions += other.instructions
        self.transactions += other.transactions
        self.requested_bytes += other.requested_bytes
        self.l1_filtered_transactions += other.l1_filtered_transactions

    @property
    def efficiency(self) -> float:
        """``gld_efficiency``-style metric: requested / moved bytes."""
        if self.transactions == 0:
            return 1.0
        return self.requested_bytes / (self.transactions * SECTOR)

    def scaled(self, factor: float) -> "AccessStats":
        return AccessStats(
            int(round(self.instructions * factor)),
            int(round(self.transactions * factor)),
            int(round(self.requested_bytes * factor)),
            int(round(self.l1_filtered_transactions * factor)),
        )


@dataclass
class ArrayTraffic:
    """Aggregate traffic of one logical array, for the L2 reuse model."""

    sectors: int = 0  # total sector fetches issued for this array
    unique_bytes: int = 0  # footprint actually touched
    reuse_is_local: bool = True  # re-references happen close in time


@dataclass
class KernelStats:
    """Everything the timing model needs about one kernel execution."""

    global_load: AccessStats = field(default_factory=AccessStats)
    global_store: AccessStats = field(default_factory=AccessStats)
    shared_load: AccessStats = field(default_factory=AccessStats)
    shared_store: AccessStats = field(default_factory=AccessStats)
    array_traffic: Dict[str, ArrayTraffic] = field(default_factory=dict)
    flops: int = 0
    alu_instructions: int = 0  # integer/addressing/loop overhead per warp
    warp_syncs: int = 0
    block_syncs: int = 0
    atomic_ops: int = 0

    def traffic(self, name: str) -> ArrayTraffic:
        return self.array_traffic.setdefault(name, ArrayTraffic())

    def merge(self, other: "KernelStats") -> None:
        self.global_load.merge(other.global_load)
        self.global_store.merge(other.global_store)
        self.shared_load.merge(other.shared_load)
        self.shared_store.merge(other.shared_store)
        for name, tr in other.array_traffic.items():
            mine = self.traffic(name)
            mine.sectors += tr.sectors
            mine.unique_bytes = max(mine.unique_bytes, tr.unique_bytes)
            mine.reuse_is_local = mine.reuse_is_local and tr.reuse_is_local
        self.flops += other.flops
        self.alu_instructions += other.alu_instructions
        self.warp_syncs += other.warp_syncs
        self.block_syncs += other.block_syncs
        self.atomic_ops += other.atomic_ops

    # Convenience metric accessors mirroring nvprof names -----------------
    @property
    def gld_transactions(self) -> int:
        return self.global_load.transactions

    @property
    def gld_efficiency(self) -> float:
        return self.global_load.efficiency

    @property
    def gst_transactions(self) -> int:
        return self.global_store.transactions

    def effective_load_sectors(self, l1_caches_global: bool) -> int:
        """Sectors that actually cross L1<->L2 after optional L1 filtering."""
        if l1_caches_global and self.global_load.l1_filtered_transactions:
            return self.global_load.l1_filtered_transactions
        return self.global_load.transactions


class TraceMemory:
    """Exact, trace-driven global-memory model.

    Buffers are registered by name; each gets a sector-aligned base
    address in a flat byte space so cross-array sector sharing cannot
    occur (matching ``cudaMalloc``'s 256 B alignment).  ``load``/``store``
    move real data *and* account transactions, enabling kernels to be both
    functionally executed and exactly profiled from the same code path.
    """

    def __init__(self, l1_caches_global: bool = False, l1_window_sectors: int = 512):
        self.stats = KernelStats()
        self._buffers: Dict[str, np.ndarray] = {}
        self._bases: Dict[str, int] = {}
        self._next_base = 0
        self._l1 = l1_caches_global
        # Tiny direct-history L1 filter: a sector re-referenced within the
        # window hits.  Window default ~= 16 KB of resident tags per SM.
        self._l1_window = l1_window_sectors
        self._l1_recent: Dict[int, int] = {}
        self._clock = 0

    # ------------------------------------------------------------------
    def register(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register (and copy) a device buffer; returns the live buffer."""
        buf = np.array(array)  # device copy; host array stays intact
        self._buffers[name] = buf
        self._bases[name] = self._next_base
        nbytes = buf.size * buf.itemsize
        self._next_base += ((nbytes + 255) // 256) * 256
        self.stats.traffic(name).unique_bytes = nbytes
        return buf

    def buffer(self, name: str) -> np.ndarray:
        return self._buffers[name]

    def _account(
        self, name: str, idx: np.ndarray, mask: Optional[np.ndarray], store: bool
    ) -> np.ndarray:
        buf = self._buffers[name]
        idx = np.asarray(idx, dtype=np.int64)
        if mask is None:
            active = idx
        else:
            active = idx[np.asarray(mask, dtype=bool)]
        stats = self.stats.global_store if store else self.stats.global_load
        stats.instructions += 1
        if active.size == 0:
            return active
        if np.any(active < 0) or np.any(active >= buf.size):
            raise IndexError(f"out-of-bounds access to device buffer {name!r}")
        addrs = self._bases[name] + active * buf.itemsize
        sectors = np.unique(addrs // SECTOR)
        stats.transactions += sectors.size
        # Useful bytes: distinct addresses only, so a broadcast counts its
        # 4 bytes once (this is the numerator of our gld_efficiency).
        stats.requested_bytes += int(np.unique(active).size) * buf.itemsize
        if not store:
            self.stats.traffic(name).sectors += sectors.size
            # L1 filter (Turing): count only sectors not recently seen.
            misses = sectors.size
            if self._l1:
                misses = 0
                for s in sectors.tolist():
                    self._clock += 1
                    last = self._l1_recent.get(s)
                    if last is None or self._clock - last > self._l1_window:
                        misses += 1
                    self._l1_recent[s] = self._clock
            stats.l1_filtered_transactions += misses
        return active

    # ------------------------------------------------------------------
    def load(self, name: str, idx: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Warp global load: returns values for *active* lanes in lane order."""
        active = self._account(name, idx, mask, store=False)
        return self._buffers[name][active]

    def store(
        self,
        name: str,
        idx: np.ndarray,
        values: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Warp global store."""
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values)
        if mask is not None:
            m = np.asarray(mask, dtype=bool)
            idx, values = idx[m], values[m]
        self._account(name, idx, None, store=True)
        self._buffers[name][idx] = values


class TraceSharedMemory:
    """Per-block shared memory with bank-conflict accounting."""

    def __init__(self, words: int, stats: KernelStats):
        self._mem = np.zeros(words, dtype=np.float64)
        self._stats = stats

    def store(self, idx: np.ndarray, values: np.ndarray, mask: Optional[np.ndarray] = None) -> None:
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values)
        if mask is not None:
            m = np.asarray(mask, dtype=bool)
            idx, values = idx[m], values[m]
        self._stats.shared_store.instructions += 1
        self._stats.shared_store.transactions += bank_conflict_passes(idx)
        self._stats.shared_store.requested_bytes += int(np.unique(idx).size) * ELEM
        self._mem[idx] = values

    def load(self, idx: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        if mask is not None:
            idx = idx[np.asarray(mask, dtype=bool)]
        self._stats.shared_load.instructions += 1
        self._stats.shared_load.transactions += bank_conflict_passes(idx)
        self._stats.shared_load.requested_bytes += int(np.unique(idx).size) * ELEM
        return self._mem[idx]

"""Vectorized batch trace-replay engine.

:class:`repro.gpusim.memory.TraceMemory` replays a kernel warp by warp
and instruction by instruction — exact, but a quadruple-nested Python
loop (row x column segment x tile x nonzero) whose cost is dominated by
interpreter overhead, not by the modelled work.  This module replays
*all warps of a launch at once* as NumPy batch operations and produces
**bit-identical** :class:`~repro.gpusim.memory.KernelStats`.

The key observation is that every global access the simulated kernels
issue is one of two shapes:

* a **broadcast** — all active lanes request the same element (one
  sector, 4 useful bytes), or
* a **contiguous segment** — active lanes cover elements
  ``[start, start + length)`` of one buffer (a consecutive ascending
  sector range, ``length * itemsize`` useful bytes),

so a whole kernel's accesses collapse to flat arrays of
``(buffer, start, length)`` records.  Order-independent counters
(instructions, transactions, requested bytes, per-array traffic) are
plain vectorized sums over those records.

The one *order-dependent* counter is the Turing L1 recency-window filter:
``TraceMemory`` ticks a clock once per load sector, in program order, and
counts a sector as filtered when it was seen within the last
``l1_window`` ticks.  To reproduce it exactly, every load record carries
a ``(task, step)`` sort key — ``task`` is the warp-task's position in the
serial replay order, ``step`` the instruction's position within the task.
:meth:`BatchTraceMemory.finalize` lexsorts the records, expands them into
the exact per-sector access stream the loop replay would have produced
(sectors within one instruction are ascending, matching ``np.unique``),
and computes every sector's distance to its previous occurrence in one
vectorized pass.

The engine accounts; it does not move data.  Kernels gather/scatter the
numeric values themselves with dense array operations, folding nonzeros
in CSR order with elementwise ``reduce_pair`` steps so the floating-point
result is bit-identical to the sequential per-warp accumulation (see
:func:`fold_spmm_rows`).  The parity contract is enforced by
``tests/test_batchtrace_parity.py`` and documented in
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.gpusim.memory import SECTOR, KernelStats, bank_conflict_passes_batch

__all__ = [
    "BatchTraceMemory",
    "ragged_arange",
    "l1_filtered_misses",
    "fold_spmm_rows",
    "tile_shared_accounting",
    "record_program",
]

#: Program-order record captured by :func:`record_program`:
#: ``(buffer, kind, task[], step[], sectors[])`` with one array element
#: per warp instruction.  Stores carry ``step = _STORE_STEP`` (they come
#: last in every kernel's per-task program).
ProgramRecord = Tuple[str, str, np.ndarray, np.ndarray, np.ndarray]

_STORE_STEP = np.int64(2**62)

_PROGRAM_SINK: Optional[List[ProgramRecord]] = None


@contextmanager
def record_program() -> Iterator[List[ProgramRecord]]:
    """Capture every (task, step)-stamped access of all
    :class:`BatchTraceMemory` instances created in the block.

    Used by :mod:`repro.gpusim.warptrace` to rebuild per-warp
    instruction timelines from a ``kernel.trace`` replay; accounting is
    unchanged (the sink only observes).
    """
    global _PROGRAM_SINK
    prev = _PROGRAM_SINK
    sink: List[ProgramRecord] = []
    _PROGRAM_SINK = sink
    try:
        yield sink
    finally:
        _PROGRAM_SINK = prev


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the loop."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)


def _expand_sector_ranges(first: np.ndarray, count: np.ndarray) -> np.ndarray:
    """Expand ``(first, count)`` consecutive ranges into one flat stream."""
    total = int(count.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    step = np.ones(total, dtype=np.int64)
    starts_at = np.cumsum(count) - count
    step[starts_at[0]] = first[0]
    step[starts_at[1:]] = first[1:] - (first[:-1] + count[:-1] - 1)
    return np.cumsum(step)


def l1_filtered_misses(sectors: np.ndarray, window: int) -> int:
    """Misses of the Turing L1 recency filter over a sector access stream.

    Replicates ``TraceMemory``'s filter exactly: the clock ticks once per
    stream position, and position ``i`` *hits* when the same sector was
    last accessed at position ``j`` with ``i - j <= window``.
    """
    sectors = np.asarray(sectors, dtype=np.int64)
    n = sectors.size
    if n == 0:
        return 0
    order = np.argsort(sectors, kind="stable")
    sorted_sectors = sectors[order]
    far = np.int64(-(window + 2))
    prev = np.full(n, far, dtype=np.int64)
    same = sorted_sectors[1:] == sorted_sectors[:-1]
    prev[order[1:]] = np.where(same, order[:-1], far)
    return int(np.count_nonzero(np.arange(n, dtype=np.int64) - prev > window))


class BatchTraceMemory:
    """Batch-accounting twin of :class:`~repro.gpusim.memory.TraceMemory`.

    Buffers get the same sector-aligned base layout (256 B, matching
    ``cudaMalloc``), so sector arithmetic is identical.  Accounting calls
    take *arrays* of accesses; each call covers every warp of the launch
    that issues that instruction shape.
    """

    def __init__(self, l1_caches_global: bool = False, l1_window_sectors: int = 512):
        self.stats = KernelStats()
        self._buffers: Dict[str, np.ndarray] = {}
        self._bases: Dict[str, int] = {}
        self._next_base = 0
        self._l1 = l1_caches_global
        self._l1_window = l1_window_sectors
        # Deferred L1 stream: (task, step, first_sector, sector_count)
        self._stream: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._finalized = False

    # ------------------------------------------------------------------
    def register(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register (and copy) a device buffer; returns the live buffer."""
        buf = np.array(array)
        self._buffers[name] = buf
        self._bases[name] = self._next_base
        nbytes = buf.size * buf.itemsize
        self._next_base += ((nbytes + 255) // 256) * 256
        self.stats.traffic(name).unique_bytes = nbytes
        return buf

    def buffer(self, name: str) -> np.ndarray:
        return self._buffers[name]

    # ------------------------------------------------------------------
    def _sector_range(
        self, name: str, start: np.ndarray, length: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        buf = self._buffers[name]
        base = self._bases[name]
        ib = buf.itemsize
        if start.size and (
            int(start.min()) < 0 or int((start + length).max()) > buf.size
        ):
            raise IndexError(f"out-of-bounds access to device buffer {name!r}")
        first = (base + start * ib) // SECTOR
        last = (base + (start + length) * ib - 1) // SECTOR
        return first, last - first + 1

    def load_contiguous(
        self,
        name: str,
        start: np.ndarray,
        length: np.ndarray,
        task: Optional[np.ndarray] = None,
        step: Optional[np.ndarray] = None,
    ) -> None:
        """Account a block of contiguous warp load instructions.

        One record per instruction: active lanes of the warp request
        elements ``[start, start + length)`` of ``name`` (``length == 1``
        is a broadcast).  ``task``/``step`` place each record in the
        serial replay order for the L1 filter; they broadcast against
        ``start``.
        """
        start = np.asarray(start, dtype=np.int64)
        length = np.broadcast_to(np.asarray(length, dtype=np.int64), start.shape)
        if start.size == 0:
            return
        if np.any(length <= 0):
            raise ValueError("contiguous accesses must cover at least one element")
        first, count = self._sector_range(name, start, length)
        gl = self.stats.global_load
        gl.instructions += start.size
        sectors_total = int(count.sum())
        gl.transactions += sectors_total
        gl.requested_bytes += int(length.sum()) * self._buffers[name].itemsize
        self.stats.traffic(name).sectors += sectors_total
        if _PROGRAM_SINK is not None and task is not None:
            t = np.array(np.broadcast_to(np.asarray(task, dtype=np.int64), start.shape))
            s = np.array(np.broadcast_to(np.asarray(step, dtype=np.int64), start.shape))
            _PROGRAM_SINK.append((name, "load", t, s, count.copy()))
        if self._l1:
            task = np.broadcast_to(np.asarray(task, dtype=np.int64), start.shape)
            step = np.broadcast_to(np.asarray(step, dtype=np.int64), start.shape)
            self._stream.append((task.copy(), step.copy(), first, count))
        else:
            gl.l1_filtered_transactions += sectors_total

    def store_contiguous(
        self,
        name: str,
        start: np.ndarray,
        length: np.ndarray,
        task: Optional[np.ndarray] = None,
    ) -> None:
        """Account a block of contiguous warp store instructions (stores
        do not enter the L1 stream, matching ``TraceMemory``).  ``task``
        only feeds :func:`record_program` timelines — every kernel issues
        its stores last, so they get a past-the-end step stamp."""
        start = np.asarray(start, dtype=np.int64)
        length = np.broadcast_to(np.asarray(length, dtype=np.int64), start.shape)
        if start.size == 0:
            return
        if np.any(length <= 0):
            raise ValueError("contiguous accesses must cover at least one element")
        _, count = self._sector_range(name, start, length)
        gs = self.stats.global_store
        gs.instructions += start.size
        gs.transactions += int(count.sum())
        gs.requested_bytes += int(length.sum()) * self._buffers[name].itemsize
        if _PROGRAM_SINK is not None and task is not None:
            t = np.array(np.broadcast_to(np.asarray(task, dtype=np.int64), start.shape))
            s = np.full(start.shape, _STORE_STEP, dtype=np.int64)
            _PROGRAM_SINK.append((name, "store", t, s, count.copy()))

    def add_shared(
        self,
        *,
        load_instructions: int = 0,
        load_transactions: int = 0,
        load_bytes: int = 0,
        store_instructions: int = 0,
        store_transactions: int = 0,
        store_bytes: int = 0,
    ) -> None:
        """Fold batched shared-memory accounting (pass counts from
        :func:`~repro.gpusim.memory.bank_conflict_passes_batch`) into the
        stats."""
        self.stats.shared_load.instructions += int(load_instructions)
        self.stats.shared_load.transactions += int(load_transactions)
        self.stats.shared_load.requested_bytes += int(load_bytes)
        self.stats.shared_store.instructions += int(store_instructions)
        self.stats.shared_store.transactions += int(store_transactions)
        self.stats.shared_store.requested_bytes += int(store_bytes)

    def add_warp_syncs(self, count: int) -> None:
        self.stats.warp_syncs += int(count)

    # ------------------------------------------------------------------
    def finalize(self) -> KernelStats:
        """Resolve the deferred L1 filter and return the stats."""
        if self._finalized:
            return self.stats
        self._finalized = True
        if self._l1 and self._stream:
            task = np.concatenate([r[0] for r in self._stream])
            step = np.concatenate([r[1] for r in self._stream])
            first = np.concatenate([r[2] for r in self._stream])
            count = np.concatenate([r[3] for r in self._stream])
            order = np.lexsort((step, task))
            stream = _expand_sector_ranges(first[order], count[order])
            self.stats.global_load.l1_filtered_transactions += l1_filtered_misses(
                stream, self._l1_window
            )
            self._stream = []
        return self.stats


def tile_shared_accounting(mem: "BatchTraceMemory", tile_lens: np.ndarray) -> None:
    """Shared-memory accounting for CRC-style staging tiles, whole launch
    at once.

    Per tile of length ``L`` the warp stores ``colind``/``values`` slices
    to banks ``lanes[:L]`` and ``32 + lanes[:L]`` (two instructions) and
    syncs once; per consumed element it broadcasts ``sm_k[kk]`` and
    ``sm_v[32+kk]`` back (two instructions).  Pass counts come from
    :func:`~repro.gpusim.memory.bank_conflict_passes_batch` evaluated on
    the distinct address patterns (one row per unique tile length /
    in-tile index) instead of once per warp request.
    """
    tile_lens = np.asarray(tile_lens, dtype=np.int64)
    ntiles = int(tile_lens.size)
    if ntiles == 0:
        return
    consumed = int(tile_lens.sum())
    lanes = np.arange(32, dtype=np.int64)
    uniq, counts = np.unique(tile_lens, return_counts=True)
    store_addrs = np.concatenate(
        [np.tile(lanes, (uniq.size, 1)), np.tile(32 + lanes, (uniq.size, 1))]
    )
    store_mask = np.concatenate([lanes[None, :] < uniq[:, None]] * 2)
    store_passes = bank_conflict_passes_batch(store_addrs, store_mask)
    store_transactions = int((store_passes.reshape(2, -1).sum(axis=0) * counts).sum())
    kks = np.arange(int(uniq.max()), dtype=np.int64)
    load_addrs = np.concatenate(
        [np.tile(kks[:, None], (1, 32)), np.tile(32 + kks[:, None], (1, 32))]
    )
    load_passes = bank_conflict_passes_batch(load_addrs).reshape(2, -1).sum(axis=0)
    # An element with in-tile index kk is consumed once per tile longer
    # than kk.
    elems_per_kk = ntiles - np.searchsorted(np.sort(tile_lens), kks, side="right")
    load_transactions = int((load_passes * elems_per_kk).sum())
    mem.add_shared(
        load_instructions=2 * consumed,
        load_transactions=load_transactions,
        load_bytes=8 * consumed,
        store_instructions=2 * ntiles,
        store_transactions=store_transactions,
        store_bytes=8 * consumed,
    )
    mem.add_warp_syncs(ntiles)


# ----------------------------------------------------------------------
# Numeric execution shared by the batched SpMM replays
# ----------------------------------------------------------------------


def fold_spmm_rows(
    rowptr: np.ndarray,
    colind: np.ndarray,
    values: np.ndarray,
    b: np.ndarray,
    init: float,
    reduce_pair,
    combine,
) -> np.ndarray:
    """Row-grouped SpMM-like accumulation, bit-identical to the per-warp
    sequential fold.

    Rows are grouped by length; each group folds its nonzeros position by
    position with elementwise ``reduce_pair``/``combine`` over a dense
    ``(rows_in_group, N)`` accumulator.  Because every step is
    elementwise, each output element sees exactly the same sequence of
    float64 operations as the scalar inner loop of the per-warp replay —
    the left-fold order the CUDA kernel's register accumulator has.
    Returns the float64 accumulator matrix (caller applies the
    float32 store cast and ``Semiring.finalize``).
    """
    rowptr = np.asarray(rowptr, dtype=np.int64)
    colind = np.asarray(colind, dtype=np.int64)
    vals64 = np.asarray(values, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    m = rowptr.size - 1
    n = b64.shape[1]
    lengths = rowptr[1:] - rowptr[:-1]
    acc_all = np.full((m, n), init, dtype=np.float64)
    for length in np.unique(lengths):
        if length == 0:
            continue
        rows = np.nonzero(lengths == length)[0]
        idx = rowptr[rows][:, None] + np.arange(length, dtype=np.int64)
        k = colind[idx]
        v = vals64[idx]
        acc = np.full((rows.size, n), init, dtype=np.float64)
        for t in range(int(length)):
            acc = reduce_pair(acc, combine(v[:, t][:, None], b64[k[:, t]]))
        acc_all[rows] = acc
    return acc_all

"""Kernel timing model: transactions + occupancy -> simulated time.

A simulated kernel's time is the maximum over parallel resource ceilings
(pipelines overlap) plus synchronization and launch overheads:

``t = max(t_link, t_dram, t_issue, t_shared, t_compute, t_atomic)
      + t_sync + launch``

**Memory link time** (usually binding for SpMM) models what the paper's
profiling chapter establishes: SpMM saturates neither FLOPs nor raw DRAM
— it is limited by how effectively the kernel can move global-memory
transactions across the SM<->L2 fabric.  Achievable link bandwidth is the
device's sustained maximum scaled by three multiplicative factors:

* ``f_width = (avg_request_bytes / 128) ** width_exp`` — narrow requests
  waste link cycles: Algorithm 1's broadcast loads move 32 useful bytes
  per slot where a coalesced load moves 128, which is why it cannot reach
  peak throughput (paper Fig. 2/3).  Coalesced Row Caching exists to
  raise this factor.
* ``f_ilp = (min(mlp, mlp_sat) / mlp_ref) ** ilp_exp`` — more independent
  requests per warp hide more latency; Coarse-grained Warp Merging's CF
  independent dense loads raise it, with saturation (``mlp_sat``)
  reflecting LSU queue limits — the reason CF=4 stops helping
  (paper Table VI: gld throughput 479 -> 568 -> 479 GB/s for CF 1/2/4).
* ``f_occ = min(1, active_warps / occ_warps_ref)`` — below a critical
  warp count latency can no longer be hidden; large CF and tiny grids pay
  here (Table VI's occupancy column; Cora-sized graphs).

On Turing, the unified L1 caches global loads: re-referenced sectors are
filtered before the link, and the surviving request stream is wider —
the modelled reason CRC alone gives ~1.0x on RTX 2080 but ~1.25x on
Pascal (paper Fig. 8).

**DRAM time** filters per-array traffic through an L2 capacity/reuse
model.  **Issue/compute/shared/atomic** ceilings matter for the
instruction-heavy baselines (GunRock's per-edge processing, GraphBLAST's
shuffles).

The exponents and reference constants in :class:`TimingParams` are
calibration parameters fixed once for *all* kernels and both GPUs by
``tests/test_calibration.py`` against the paper's aggregate bands;
EXPERIMENTS.md records the residual paper-vs-model deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro import obs
from repro.gpusim.config import GPUSpec
from repro.gpusim.memory import KernelStats, SECTOR
from repro.gpusim.occupancy import LaunchConfig, Occupancy, compute_occupancy

__all__ = ["ExecHints", "TimingParams", "KernelTiming", "estimate_time"]


@dataclass(frozen=True)
class ExecHints:
    """Kernel-declared execution characteristics the counters cannot carry.

    ``mlp`` is the average number of independent global requests each warp
    can keep in flight per inner-loop step: ~3 for Algorithm 1 (colind,
    val and B loads all outstanding), ~1.4 for CRC (a single dense load
    per consumed element, serialized by the shared-memory walk), and
    ``1.4 + 0.7*CF`` under warp merging (CF independent accumulator
    streams).

    ``efficiency`` is a fractional derating of achievable bandwidth for
    structural handicaps the counters cannot express — e.g. GraphBLAST's
    single-warp-per-row row-split schedule idles lanes on the short rows
    that dominate SNAP-style degree distributions.

    ``tail_sectors`` is the link traffic of the *longest serial chain* a
    single warp must move before the launch can retire (the load-balance
    tail).  Row-split kernels set it from the longest row: when one hub
    row holds a large share of the nonzeros, the whole grid drains and
    the final warp streams that row alone at single-warp bandwidth
    (``tail_bw_frac`` of the link).  Work-balanced schedules (merge-path)
    bound it by their segment size instead.  ``0.0`` (the default) means
    "no modeled tail" and changes nothing.
    """

    mlp: float = 2.0
    efficiency: float = 1.0
    tail_sectors: float = 0.0


@dataclass(frozen=True)
class TimingParams:
    """Calibration constants of the timing model (device-independent).

    Fixed by ``tests/test_calibration.py``; never tuned per kernel.
    """

    width_exp: float = 0.5  # request-width bandwidth exponent
    ilp_exp: float = 0.42  # ILP bandwidth exponent
    mlp_ref: float = 2.0  # MLP at which f_ilp == 1
    mlp_sat: float = 3.2  # LSU queue saturation point
    occ_warps_ref: float = 32.0  # warps/SM needed to hide latency
    ldst_issue_cycles: float = 2.0  # LSU occupancy per global ld/st inst
    l1_hit_issue_cycles: float = 1.0  # issue cost when the L1 serves it
    shared_issue_cycles: float = 1.2  # per shared ld/st inst (conflict-free)
    atomic_cycles: float = 24.0  # L2 atomic serialization per warp op
    block_sync_cycles: float = 64.0
    warp_sync_cycles: float = 2.0
    l2_local_hit: float = 0.92  # L2 hit rate for short-distance refetches
    l2_retention: float = 0.8  # usable L2 fraction for capacity reuse
    streaming_hit_floor: float = 0.6  # scheduling-locality hit floor
    min_request_bytes: float = 32.0
    max_request_bytes: float = 128.0
    tail_bw_frac: float = 0.0625  # single-warp share of link bw for the drain tail


@dataclass
class KernelTiming:
    """Simulated execution result for one kernel launch."""

    time_s: float
    stats: KernelStats
    launch: LaunchConfig
    occupancy: Occupancy
    breakdown: Dict[str, float] = field(default_factory=dict)
    bound_by: str = ""
    gpu_name: str = ""
    #: the multiplicative bandwidth factors (f_width / f_ilp / f_occ,
    #: paper Table VI) plus the link-traffic quantities they derive from
    #: — the "why" behind ``bound_by`` that attribution reports consume.
    factors: Dict[str, float] = field(default_factory=dict)

    @property
    def gld_throughput(self) -> float:
        """nvprof-style global load throughput (bytes/s across L1<->L2)."""
        busy = max(self.time_s - self.breakdown.get("launch", 0.0), 1e-12)
        return self.stats.global_load.transactions * SECTOR / busy

    def gflops(self, flop_count: int) -> float:
        return flop_count / self.time_s / 1e9

    def attribution(self) -> Dict[str, object]:
        """JSON-safe bottleneck-attribution block for this launch.

        This is the per-cell ``attribution`` block of ``BENCH_spmm.json``
        (``docs/OBSERVABILITY.md`` "Reports & attribution"): the binding
        ceiling, the full per-ceiling time breakdown in milliseconds, and
        the efficiency factors.  Keys are emitted sorted so the block
        serializes byte-deterministically.
        """
        return {
            "bound_by": self.bound_by,
            "breakdown_ms": {k: v * 1e3 for k, v in sorted(self.breakdown.items())},
            "factors": {k: float(v) for k, v in sorted(self.factors.items())},
        }


def estimate_time(
    stats: KernelStats,
    launch: LaunchConfig,
    gpu: GPUSpec,
    hints: ExecHints = ExecHints(),
    params: TimingParams = TimingParams(),
) -> KernelTiming:
    """Combine access statistics and launch shape into simulated time."""
    occ = compute_occupancy(launch, gpu)
    clock = gpu.clock_ghz * 1e9
    busy_sms = max(min(launch.blocks, gpu.n_sms), 1)

    # ------------------------------------------------------------------
    # Link traffic (SM <-> L2) after optional L1 filtering
    # ------------------------------------------------------------------
    load_sectors_raw = stats.global_load.transactions
    load_sectors = stats.effective_load_sectors(gpu.l1_caches_global)
    store_sectors = stats.global_store.transactions
    link_bytes = (load_sectors + store_sectors) * SECTOR

    gl_requests = stats.global_load.instructions + stats.global_store.instructions
    if gpu.l1_caches_global and load_sectors_raw > 0:
        hit_frac = 1.0 - load_sectors / load_sectors_raw
    else:
        hit_frac = 0.0
    # Requests that actually reach the link (L1 hits are filtered out).
    link_requests = max(gl_requests * (1.0 - hit_frac), 1.0)
    if link_bytes > 0:
        avg_request = link_bytes / link_requests
    else:
        avg_request = params.max_request_bytes
    avg_request = min(max(avg_request, params.min_request_bytes), params.max_request_bytes)

    f_width = (avg_request / params.max_request_bytes) ** params.width_exp
    mlp = min(max(hints.mlp, 1.0), params.mlp_sat)
    f_ilp = (mlp / params.mlp_ref) ** params.ilp_exp
    f_occ = min(occ.active_warps_per_sm / params.occ_warps_ref, 1.0)
    # Partially-filled devices cannot use the full fabric either.
    f_occ *= min(launch.blocks / gpu.n_sms, 1.0) if launch.blocks else 0.0
    eff_bw = gpu.l2_bandwidth * min(f_width * f_ilp * max(f_occ, 1e-9), 1.0)
    eff_bw *= min(max(hints.efficiency, 1e-3), 1.0)
    t_link = link_bytes / max(eff_bw, 1.0)

    # ------------------------------------------------------------------
    # DRAM traffic through the L2 capacity/reuse model
    # ------------------------------------------------------------------
    dram_bytes = 0.0
    for traffic in stats.array_traffic.values():
        total = traffic.sectors * SECTOR
        refetch = max(total - traffic.unique_bytes, 0)
        touched = min(traffic.unique_bytes, total)
        if traffic.reuse_is_local:
            hit = params.l2_local_hit
        else:
            footprint = max(traffic.unique_bytes, 1)
            capacity_hit = min(1.0, params.l2_retention * gpu.l2_size / footprint)
            # Block-scheduling locality gives concurrently-resident rows a
            # chance to share fetches even when the array vastly exceeds
            # the L2; calibrated floor.
            hit = max(capacity_hit, params.streaming_hit_floor)
        dram_bytes += touched + refetch * (1.0 - hit)
    dram_bytes += store_sectors * SECTOR  # write-back traffic
    t_dram = dram_bytes / (gpu.dram_bandwidth * max(f_occ, 1e-9))

    # ------------------------------------------------------------------
    # Instruction pipes
    # ------------------------------------------------------------------
    per_request = (
        params.ldst_issue_cycles * (1.0 - hit_frac)
        + params.l1_hit_issue_cycles * hit_frac
    )
    shared_insts = stats.shared_load.instructions + stats.shared_store.instructions
    shared_extra_passes = max(
        stats.shared_load.transactions + stats.shared_store.transactions - shared_insts, 0
    )
    issue_cycles = (
        gl_requests * per_request
        + shared_insts * params.shared_issue_cycles
        + shared_extra_passes  # bank-conflict replays, one cycle each
    )
    t_issue = issue_cycles / (busy_sms * clock)

    fma_warp_insts = stats.flops / (2.0 * gpu.warp_size)
    alu_rate = busy_sms * (gpu.cores_per_sm / gpu.warp_size) * clock
    t_compute = (fma_warp_insts + stats.alu_instructions) / alu_rate
    shared_passes = stats.shared_load.transactions + stats.shared_store.transactions
    t_shared = shared_passes / (busy_sms * clock)
    t_atomic = stats.atomic_ops * params.atomic_cycles / (busy_sms * clock)

    resident_blocks = max(occ.blocks_per_sm, 1)
    t_sync = (
        stats.block_syncs * params.block_sync_cycles
        + stats.warp_syncs * params.warp_sync_cycles
    ) / (busy_sms * clock * resident_blocks)

    components = {
        "dram": t_dram,
        "l2_link": t_link,
        "issue": t_issue,
        "shared": t_shared,
        "compute": t_compute,
        "atomics": t_atomic,
    }
    # Load-balance drain tail: the last warp streams its serial chain
    # alone, at a single warp's share of the link.  Opt-in via hints —
    # a ceiling like the others, so it only binds when the chain is long
    # relative to the whole launch's traffic (hub rows in power-law
    # graphs under row-split schedules).
    if hints.tail_sectors > 0:
        components["tail"] = hints.tail_sectors * SECTOR / (
            gpu.l2_bandwidth * params.tail_bw_frac
        )
    bound_by = max(components, key=components.get)
    time_s = max(components.values()) + t_sync + gpu.launch_overhead_s
    breakdown = dict(components)
    breakdown["sync"] = t_sync
    breakdown["launch"] = gpu.launch_overhead_s
    factors = {
        "f_width": f_width,
        "f_ilp": f_ilp,
        "f_occ": f_occ,
        "efficiency": min(max(hints.efficiency, 1e-3), 1.0),
        "avg_request_bytes": avg_request,
        "l1_hit_frac": hit_frac,
        "link_bytes": float(link_bytes),
        "dram_bytes": dram_bytes,
    }

    registry = obs.get_registry()
    registry.counter("sim.timing.launches", gpu=gpu.name).inc()
    registry.counter("sim.timing.bound_by", bound=bound_by, gpu=gpu.name).inc()
    registry.observe("sim.timing.time_ms", time_s * 1e3, gpu=gpu.name)

    return KernelTiming(
        time_s=time_s,
        stats=stats,
        launch=launch,
        occupancy=occ,
        breakdown=breakdown,
        bound_by=bound_by,
        gpu_name=gpu.name,
        factors=factors,
    )

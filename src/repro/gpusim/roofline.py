"""Roofline analysis of simulated kernels.

The paper's profiling narrative (Fig. 3) is a roofline argument: SpMM
sits far below the compute roof and — once coalesced — pins the memory
roof, so the only wins left are *moving less data* (CRC, CWM's sparse
reuse) and *raising achievable bandwidth* (CWM's ILP).  This module
computes the classic roofline quantities for any kernel/matrix pair so
examples and the CLI can show exactly where each design sits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import SpMMKernel
from repro.gpusim.memory import SECTOR
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import flops_of_spmm

__all__ = [
    "RooflinePoint",
    "roofline_from_quantities",
    "roofline_point",
    "roofline_report",
]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position in roofline space."""

    kernel: str
    gpu: str
    arithmetic_intensity: float  # FLOP per byte crossing the L2 link
    achieved_gflops: float
    peak_gflops: float
    memory_roof_gflops: float  # bandwidth * intensity
    bound: str  # "memory" | "compute"

    @property
    def roof_utilization(self) -> float:
        """Achieved / applicable roof, in [0, 1]-ish."""
        roof = min(self.memory_roof_gflops, self.peak_gflops)
        return self.achieved_gflops / roof if roof > 0 else 0.0

    def describe(self) -> str:
        return (
            f"{self.kernel:18s} AI={self.arithmetic_intensity:6.3f} flop/B  "
            f"achieved={self.achieved_gflops:7.1f} GF/s  "
            f"roof={min(self.memory_roof_gflops, self.peak_gflops):7.1f} GF/s "
            f"({self.bound}-bound, {self.roof_utilization * 100:.0f}% of roof)"
        )


def roofline_from_quantities(
    kernel_name: str, gpu: GPUSpec, flops: float, link_bytes: float, time_s: float
) -> RooflinePoint:
    """Place an execution on ``gpu``'s roofline from recorded quantities.

    This is the re-estimation-free path: ``repro-bench report`` placed
    every BENCH cell here from the cell's attribution block
    (``factors.link_bytes``) and timing, without rebuilding graphs or
    rerunning the simulator.
    """
    intensity = flops / link_bytes if link_bytes else float("inf")
    achieved = flops / time_s / 1e9 if time_s > 0 else 0.0
    peak = gpu.peak_flops / 1e9
    mem_roof = gpu.l2_bandwidth * intensity / 1e9
    bound = "memory" if mem_roof < peak else "compute"
    return RooflinePoint(
        kernel=kernel_name,
        gpu=gpu.name,
        arithmetic_intensity=intensity,
        achieved_gflops=achieved,
        peak_gflops=peak,
        memory_roof_gflops=mem_roof,
        bound=bound,
    )


def roofline_point(kernel: SpMMKernel, a: CSRMatrix, n: int, gpu: GPUSpec) -> RooflinePoint:
    """Place one kernel execution on ``gpu``'s roofline."""
    timing = kernel.estimate(a, n, gpu)
    stats = timing.stats
    flops = flops_of_spmm(a, n)
    link_bytes = (
        stats.effective_load_sectors(gpu.l1_caches_global) + stats.global_store.transactions
    ) * SECTOR
    return roofline_from_quantities(kernel.name, gpu, flops, link_bytes, timing.time_s)


def roofline_report(
    kernels: List[SpMMKernel], a: CSRMatrix, n: int, gpu: GPUSpec
) -> str:
    """Multi-kernel roofline comparison as text."""
    points = [roofline_point(k, a, n, gpu) for k in kernels]
    header = (
        f"Roofline on {gpu.name}: peak {gpu.peak_flops / 1e9:.0f} GFLOP/s, "
        f"link {gpu.l2_bandwidth / 1e9:.0f} GB/s"
    )
    return "\n".join([header] + ["  " + p.describe() for p in points])

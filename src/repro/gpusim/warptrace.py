"""Per-warp Chrome trace export (the ROADMAP timeline item).

``kernel.trace(...)`` replays warp-by-warp memory behaviour exactly, but
until now its output was aggregate counters only.  This module captures
the batched replay's ``(task, step)``-stamped access records
(:func:`repro.gpusim.batchtrace.record_program`) and rebuilds one
timeline row **per warp task** as Chrome trace events — ``tid`` = warp
task id — so coalescing pathologies are visible in ``chrome://tracing``
/ Perfetto instead of hiding inside a transaction total.

Time is modelled, not measured: within each warp the instructions are
laid out in program-step order, and every instruction's duration is its
**sector count** (one 32-byte transaction = one microsecond-tick).  A
poorly coalesced load therefore literally stretches across the timeline
— a warp whose B-row gathers each cost 4 sectors renders 4x wider than a
perfectly coalesced one, which is exactly the pathology GE-SpMM's
coalesced row caching removes.

Feed the events to a :class:`repro.obs.Tracer` via ``add_chrome_events``
(what ``repro-bench trace --per-warp`` does) or dump them standalone.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.batchtrace import record_program
from repro.gpusim.config import GPUSpec
from repro.sparse.csr import CSRMatrix

__all__ = ["warp_trace_events", "DEFAULT_MAX_WARPS"]

#: Default cap on exported warps: timelines beyond a few dozen rows stop
#: being readable and the event count scales with nnz per warp.
DEFAULT_MAX_WARPS = 64


def warp_trace_events(
    kernel,
    a: CSRMatrix,
    b: np.ndarray,
    gpu: GPUSpec,
    semiring: Semiring = PLUS_TIMES,
    max_warps: int = DEFAULT_MAX_WARPS,
    pid: int = 1,
) -> List[Dict[str, Any]]:
    """Replay ``kernel.trace(a, b, gpu)`` and return per-warp Chrome
    trace events (one ``tid`` per warp task, capped at ``max_warps``).

    Raises ``NotImplementedError`` for kernels without a trace mode,
    exactly like ``kernel.trace`` itself.
    """
    with record_program() as program:
        kernel.trace(a, b, gpu, semiring)
    if not program:
        return []

    buffers: List[str] = []
    buffer_code: Dict[str, int] = {}
    kinds: List[str] = []
    kind_code: Dict[str, int] = {}
    task_parts, step_parts, sector_parts, buf_parts, kind_parts = [], [], [], [], []
    for name, kind, task, step, sectors in program:
        if name not in buffer_code:
            buffer_code[name] = len(buffers)
            buffers.append(name)
        if kind not in kind_code:
            kind_code[kind] = len(kinds)
            kinds.append(kind)
        task_parts.append(task)
        step_parts.append(step)
        sector_parts.append(sectors)
        buf_parts.append(np.full(task.shape, buffer_code[name], dtype=np.int64))
        kind_parts.append(np.full(task.shape, kind_code[kind], dtype=np.int64))
    task = np.concatenate(task_parts)
    step = np.concatenate(step_parts)
    sectors = np.concatenate(sector_parts)
    buf = np.concatenate(buf_parts)
    kind = np.concatenate(kind_parts)

    warps = np.unique(task)
    shown = warps[: max(int(max_warps), 1)]
    keep = task <= shown[-1]
    task, step, sectors, buf, kind = (
        arr[keep] for arr in (task, step, sectors, buf, kind)
    )

    # Program order within each warp; stable so equal steps keep record
    # order.  ts = cumulative sector ticks within the warp.
    order = np.lexsort((step, task))
    task, step, sectors, buf, kind = (
        arr[order] for arr in (task, step, sectors, buf, kind)
    )
    cum = np.cumsum(sectors) - sectors
    new_task = np.r_[True, task[1:] != task[:-1]]
    warp_base = np.repeat(
        cum[new_task], np.diff(np.r_[np.nonzero(new_task)[0], task.size])
    )
    ts = cum - warp_base

    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{kernel.name} on {gpu.name} (modelled warps)"},
        }
    ]
    for w in shown:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": int(w),
                "args": {"name": f"warp task {int(w)}"},
            }
        )
    for i in range(task.size):
        events.append(
            {
                "name": f"{buffers[buf[i]]} {kinds[kind[i]]}",
                "cat": "warp",
                "ph": "X",
                "pid": pid,
                "tid": int(task[i]),
                "ts": float(ts[i]),
                "dur": float(sectors[i]),
                "args": {"sectors": int(sectors[i])},
            }
        )
    return events

"""Device-memory footprint accounting and out-of-memory detection.

The paper's evaluation carries memory limits as first-class facts:
FriendSter and Twitter are dropped from the SNAP suite for out-of-memory,
and Figs 8/9/11 annotate several bars "out of memory" on the 8 GB
RTX 2080 that fit on the 11 GB GTX 1080Ti.  This module reproduces that
boundary: :func:`spmm_footprint` prices the device allocations of one
SpMM call and :func:`check_fits` raises :class:`DeviceOutOfMemory` the
way ``cudaMalloc`` fails, so benchmark sweeps can mark the same bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.gpusim.config import GPUSpec
from repro.sparse.csr import CSRMatrix

__all__ = ["DeviceOutOfMemory", "SpmmFootprint", "spmm_footprint", "check_fits"]

#: fraction of DRAM usable by one workload (context, fragmentation, ECC)
_USABLE_FRACTION = 0.92


class DeviceOutOfMemory(MemoryError):
    """Raised when an SpMM working set exceeds the device's capacity."""

    def __init__(self, footprint: "SpmmFootprint", gpu: GPUSpec):
        self.footprint = footprint
        self.gpu = gpu
        super().__init__(
            f"SpMM working set {footprint.total / 2**30:.2f} GiB exceeds "
            f"{gpu.name}'s usable {_USABLE_FRACTION * gpu.dram_capacity / 2**30:.2f} GiB"
        )


@dataclass(frozen=True)
class SpmmFootprint:
    """Device allocations of one SpMM ``C[MxN] = A[MxK] @ B[KxN]``."""

    sparse_bytes: int  # rowptr + colind + values
    dense_in_bytes: int  # B
    dense_out_bytes: int  # C
    workspace_bytes: int  # kernel scratch (format extras, staging)

    @property
    def total(self) -> int:
        return (
            self.sparse_bytes
            + self.dense_in_bytes
            + self.dense_out_bytes
            + self.workspace_bytes
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "sparse": self.sparse_bytes,
            "dense_in": self.dense_in_bytes,
            "dense_out": self.dense_out_bytes,
            "workspace": self.workspace_bytes,
            "total": self.total,
        }


def spmm_footprint(a: CSRMatrix, n: int, workspace_factor: float = 0.0) -> SpmmFootprint:
    """Working set of one SpMM call.

    ``workspace_factor`` scales extra per-nonzero scratch: 0 for CSR-native
    kernels (GE-SpMM's no-preprocess claim), ~1.0+ for format-converting
    kernels that hold a second copy of the matrix, and up to the padding
    ratio for ELLPACK.
    """
    if n < 0:
        raise ValueError("negative feature width")
    sparse = 4 * (a.nrows + 1) + 8 * a.nnz
    dense_in = 4 * a.ncols * n
    dense_out = 4 * a.nrows * n
    workspace = int(workspace_factor * 8 * a.nnz)
    return SpmmFootprint(sparse, dense_in, dense_out, workspace)


def check_fits(
    a: CSRMatrix, n: int, gpu: GPUSpec, workspace_factor: float = 0.0
) -> SpmmFootprint:
    """Return the footprint, or raise :class:`DeviceOutOfMemory` if the
    workload cannot be allocated on ``gpu`` (the paper's omitted bars)."""
    fp = spmm_footprint(a, n, workspace_factor)
    if fp.total > _USABLE_FRACTION * gpu.dram_capacity:
        raise DeviceOutOfMemory(fp, gpu)
    return fp


def fits(a: CSRMatrix, n: int, gpu: GPUSpec, workspace_factor: float = 0.0) -> bool:
    """Predicate form of :func:`check_fits`."""
    try:
        check_fits(a, n, gpu, workspace_factor)
        return True
    except DeviceOutOfMemory:
        return False

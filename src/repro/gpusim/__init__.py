"""GPU execution & memory model: the simulated hardware substrate.

This package stands in for the two physical GPUs of the paper's testbed.
See DESIGN.md section 4 for the model definitions and calibration notes.
"""

from repro.gpusim.batchtrace import (
    BatchTraceMemory,
    fold_spmm_rows,
    l1_filtered_misses,
    ragged_arange,
    record_program,
    tile_shared_accounting,
)
from repro.gpusim.config import GPUSpec, GTX_1080TI, KNOWN_GPUS, RTX_2080
from repro.gpusim.kernel import SpMMKernel, clear_estimate_memo
from repro.gpusim.warptrace import warp_trace_events
from repro.gpusim.memory import (
    AccessStats,
    KernelStats,
    TraceMemory,
    bank_conflict_passes,
    bank_conflict_passes_batch,
    segment_sectors,
    warp_sector_count,
)
from repro.gpusim.memory_footprint import (
    DeviceOutOfMemory,
    SpmmFootprint,
    check_fits,
    fits,
    spmm_footprint,
)
from repro.gpusim.occupancy import LaunchConfig, Occupancy, compute_occupancy
from repro.gpusim.profiler import ProfileReport, format_metric_table, profile_kernel
from repro.gpusim.roofline import RooflinePoint, roofline_point, roofline_report
from repro.gpusim.timing import (
    ExecHints,
    KernelTiming,
    TimingParams,
    estimate_time,
)

__all__ = [
    "GPUSpec",
    "GTX_1080TI",
    "RTX_2080",
    "KNOWN_GPUS",
    "SpMMKernel",
    "clear_estimate_memo",
    "record_program",
    "warp_trace_events",
    "AccessStats",
    "KernelStats",
    "TraceMemory",
    "warp_sector_count",
    "segment_sectors",
    "bank_conflict_passes",
    "bank_conflict_passes_batch",
    "BatchTraceMemory",
    "fold_spmm_rows",
    "l1_filtered_misses",
    "ragged_arange",
    "tile_shared_accounting",
    "DeviceOutOfMemory",
    "SpmmFootprint",
    "spmm_footprint",
    "check_fits",
    "fits",
    "LaunchConfig",
    "Occupancy",
    "compute_occupancy",
    "ExecHints",
    "KernelTiming",
    "TimingParams",
    "estimate_time",
    "RooflinePoint",
    "roofline_point",
    "roofline_report",
    "ProfileReport",
    "profile_kernel",
    "format_metric_table",
]

"""nvprof-style profiling reports over simulated kernels.

The paper quotes four nvprof metrics (Sections V-B1/V-B2): ``gld_transactions``,
``gld_efficiency``, ``gld_throughput`` and ``achieved_occupancy``.  This
module computes the same quantities from a :class:`KernelTiming` and
formats them the way the paper's tables do, so benchmark scripts can print
directly comparable rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import SpMMKernel
from repro.gpusim.memory import SECTOR
from repro.gpusim.timing import KernelTiming
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import flops_of_spmm

__all__ = ["ProfileReport", "profile_kernel", "format_metric_table"]


@dataclass(frozen=True)
class ProfileReport:
    """Simulated nvprof metrics for one kernel launch."""

    kernel: str
    gpu: str
    gld_transactions: int  # 32-byte global load transactions
    gld_efficiency: float  # requested / moved bytes, in [0, 1]
    gld_throughput: float  # bytes/s across SM<->L2 while executing
    gst_transactions: int
    achieved_occupancy: float
    dram_bytes: float
    time_s: float
    gflops: float
    bound_by: str

    def as_row(self) -> Dict[str, str]:
        """Formatted cells in the paper's units (x32 bytes, GB/s, ratio)."""
        return {
            "kernel": self.kernel,
            "GLT(x32B)": f"{self.gld_transactions:.3e}",
            "GLT effi": f"{self.gld_efficiency * 100:.2f}%",
            "gld throughput(GB/s)": f"{self.gld_throughput / 1e9:.2f}",
            "Occ": f"{self.achieved_occupancy:.2f}",
            "time(ms)": f"{self.time_s * 1e3:.3f}",
            "GFLOPS": f"{self.gflops:.1f}",
            "bound": self.bound_by,
        }


def profile_kernel(
    kernel: SpMMKernel, a: CSRMatrix, n: int, gpu: GPUSpec, *, graph: str = ""
) -> ProfileReport:
    """Run the analytic model and package nvprof-style metrics.

    ``graph`` is an optional display label; when given it tags the
    emitted metric series so profiles of several matrices stay distinct.
    """
    with obs.span("profile.kernel", kernel=kernel.name, graph=graph, n=int(n),
                  gpu=gpu.name):
        timing = kernel.estimate(a, n, gpu)
        obs.add_sim_time(timing.time_s)
    stats = timing.stats
    report = ProfileReport(
        kernel=kernel.name,
        gpu=gpu.name,
        gld_transactions=stats.global_load.transactions,
        gld_efficiency=stats.global_load.efficiency,
        gld_throughput=timing.gld_throughput,
        gst_transactions=stats.global_store.transactions,
        achieved_occupancy=timing.occupancy.achieved,
        dram_bytes=timing.breakdown.get("dram", 0.0) * gpu.dram_bandwidth,
        time_s=timing.time_s,
        gflops=timing.gflops(flops_of_spmm(a, n)),
        bound_by=timing.bound_by,
    )
    # The four metrics the paper's evaluation quotes (§V-B1/V-B2), as
    # labeled series keyed the way the benchmark grid is.
    registry = obs.get_registry()
    labels = dict(kernel=kernel.name, graph=graph, n=int(n), gpu=gpu.name)
    registry.gauge("nvprof.gld_transactions", **labels).set(report.gld_transactions)
    registry.gauge("nvprof.gld_efficiency", **labels).set(report.gld_efficiency)
    registry.gauge("nvprof.gld_throughput", **labels).set(report.gld_throughput)
    registry.gauge("nvprof.achieved_occupancy", **labels).set(report.achieved_occupancy)
    return report


def format_metric_table(
    reports: List[ProfileReport], columns: Optional[List[str]] = None
) -> str:
    """Render reports as an aligned text table (benchmark output)."""
    if not reports:
        return "(no data)"
    rows = [r.as_row() for r in reports]
    columns = columns or list(rows[0].keys())
    widths = {c: max(len(c), *(len(r.get(c, "")) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    sep = "-" * len(header)
    lines = [header, sep]
    for r in rows:
        lines.append("  ".join(r.get(c, "").ljust(widths[c]) for c in columns))
    return "\n".join(lines)

"""GE-SpMM reproduction library.

Reimplements *GE-SpMM: General-purpose Sparse Matrix-Matrix Multiplication
on GPUs for Graph Neural Networks* (Huang et al., SC 2020) on a simulated
GPU substrate.  See README.md for a tour and DESIGN.md for the system
inventory and modelling assumptions.

Quickstart::

    import numpy as np
    from repro import GESpMM, uniform_random, GTX_1080TI

    a = uniform_random(m=4096, nnz=40960, seed=1)
    b = np.random.rand(a.ncols, 128).astype(np.float32)
    kernel = GESpMM()
    c = kernel.run(a, b)                      # functional result
    t = kernel.estimate(a, 128, GTX_1080TI)   # simulated kernel timing
    print(t.time_s, t.bound_by)
"""

from repro.core import (
    CRCSpMM,
    CWMSpMM,
    GESpMM,
    MAX_TIMES,
    MEAN_TIMES,
    MIN_TIMES,
    PLUS_TIMES,
    Semiring,
    SimpleSpMM,
    gespmm,
    gespmm_like,
)
from repro.gpusim import GTX_1080TI, RTX_2080, GPUSpec, profile_kernel
from repro.sparse import (
    CSRMatrix,
    csr_from_coo,
    csr_from_dense,
    csr_from_scipy,
    power_law,
    reference_spmm,
    reference_spmm_like,
    rmat,
    uniform_random,
)

__version__ = "1.0.0"

__all__ = [
    "GESpMM",
    "SimpleSpMM",
    "CRCSpMM",
    "CWMSpMM",
    "gespmm",
    "gespmm_like",
    "Semiring",
    "PLUS_TIMES",
    "MAX_TIMES",
    "MIN_TIMES",
    "MEAN_TIMES",
    "GPUSpec",
    "GTX_1080TI",
    "RTX_2080",
    "profile_kernel",
    "CSRMatrix",
    "csr_from_coo",
    "csr_from_dense",
    "csr_from_scipy",
    "uniform_random",
    "power_law",
    "rmat",
    "reference_spmm",
    "reference_spmm_like",
    "__version__",
]

"""Algorithm 3 — CRC plus Coarse-grained Warp Merging (CWM).

CWM merges the workloads of CF ("coarsening factor") column-adjacent
warps into one: each thread keeps CF accumulators and produces CF output
elements spaced ``warp_size`` columns apart.  The merged warp loads each
sparse tile once instead of CF times, and the CF dense loads per consumed
nonzero are *independent* instructions, raising memory-level parallelism
(paper Section III-C: "improve bandwidth throughput with instruction-
level parallelism").  The costs: CF times fewer warps in flight and
roughly ``5*CF`` extra registers per thread for accumulators and
addresses, which erodes occupancy at large CF — the trade-off behind the
paper's empirical choice of CF=2 (Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.core import _counting as cnt
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.batchtrace import (
    BatchTraceMemory,
    fold_spmm_rows,
    ragged_arange,
    tile_shared_accounting,
)
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats, TraceMemory, TraceSharedMemory
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import reference_spmm_like

__all__ = ["CWMSpMM"]

_WARPS_PER_BLOCK = 4
_THREADS_PER_BLOCK = 32 * _WARPS_PER_BLOCK
_TILE = 32
_SHARED_PER_WARP = _TILE * 8


class CWMSpMM(SpMMKernel):
    """CSR SpMM with Coalesced Row Caching + Coarse-grained Warp Merging
    (paper Algorithm 3, generalized to arbitrary coarsening factor)."""

    supports_general_semiring = True

    def __init__(self, cf: int = 2):
        super().__init__()
        if cf < 1:
            raise ValueError("coarsening factor must be >= 1")
        self.cf = int(cf)
        self.name = f"crc+cwm(cf={self.cf})"

    @property
    def regs_per_thread(self) -> int:
        # Base CRC footprint plus one accumulator and one address pair per
        # extra output element.
        return 26 + 5 * self.cf

    def mlp_for(self, n: int) -> float:
        """CRC's single stream widened by one independent dense load per
        *active* accumulator: column segments beyond ``n`` are predicated
        off and contribute no outstanding requests (why CWM is pointless
        for N <= 32, paper Fig. 7c)."""
        active_cf = min(self.cf, max((n + 31) // 32, 1))
        return 1.4 + 0.7 * active_cf if active_cf >= 2 else 1.4

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        self.check_semiring(semiring)
        return reference_spmm_like(a, b, semiring)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        stats = KernelStats()
        cf = self.cf
        wpr = cnt.warps_per_row(n, cf)
        m, nnz = a.nrows, a.nnz

        # Dense loads: each merged warp issues CF segment loads per
        # consumed nonzero, so the totals over the row are exactly the
        # CF=1 totals (the union of segments covers the same N columns).
        b_loads = cnt.count_b_loads(a, n)
        stats.global_load.instructions += b_loads.instructions
        stats.global_load.transactions += b_loads.sectors
        stats.global_load.requested_bytes += b_loads.requested_bytes
        stats.global_load.l1_filtered_transactions += b_loads.sectors

        tiles = cnt.count_tile_loads(a, _TILE)
        stats.global_load.instructions += 2 * wpr * tiles.instructions
        stats.global_load.transactions += 2 * wpr * tiles.sectors
        stats.global_load.requested_bytes += 2 * wpr * tiles.requested_bytes
        stats.global_load.l1_filtered_transactions += 2 * wpr * tiles.sectors

        rp_insts = 2 * m * wpr
        stats.global_load.instructions += rp_insts
        stats.global_load.transactions += rp_insts
        stats.global_load.requested_bytes += 4 * rp_insts
        stats.global_load.l1_filtered_transactions += max(rp_insts // 8, 1) if m else 0

        c_stores = cnt.count_c_stores(a, n)
        stats.global_store.instructions += c_stores.instructions
        stats.global_store.transactions += c_stores.sectors
        stats.global_store.requested_bytes += c_stores.requested_bytes

        stats.shared_store.instructions = 2 * wpr * tiles.instructions
        stats.shared_store.transactions = stats.shared_store.instructions
        stats.shared_store.requested_bytes = 2 * wpr * tiles.requested_bytes
        stats.shared_load.instructions = 2 * nnz * wpr
        stats.shared_load.transactions = stats.shared_load.instructions
        stats.shared_load.requested_bytes = 4 * stats.shared_load.instructions
        stats.warp_syncs = wpr * tiles.instructions

        tr = stats.traffic("colind")
        tr.sectors = wpr * tiles.sectors
        tr.unique_bytes = 4 * nnz
        tr.reuse_is_local = True
        tv = stats.traffic("values")
        tv.sectors = wpr * tiles.sectors
        tv.unique_bytes = 4 * nnz
        tv.reuse_is_local = True
        tb = stats.traffic("B")
        tb.sectors = b_loads.sectors
        tb.unique_bytes = cnt.unique_b_columns(a) * n * 4
        tb.reuse_is_local = False
        tp = stats.traffic("rowptr")
        tp.sectors = rp_insts
        tp.unique_bytes = 4 * (m + 1)
        tp.reuse_is_local = True

        stats.flops = 2 * nnz * n
        # Per consumed nonzero: the shared broadcast and loop control are
        # amortized over CF outputs; the CF FMAs are counted in `flops`.
        stats.alu_instructions = (
            (2 + 2 * cf) * nnz * wpr + 8 * wpr * tiles.instructions + (10 + 2 * cf) * m * wpr
        )

        tasks = m * wpr
        launch = LaunchConfig(
            blocks=(tasks + _WARPS_PER_BLOCK - 1) // _WARPS_PER_BLOCK,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=_WARPS_PER_BLOCK * _SHARED_PER_WARP,
        )
        # Warp-per-row drain tail (see CRCSpMM.count): the merged warp's
        # serial chain covers its ``ac`` active column segments per
        # consumed element of the longest row.
        l_max = int(a.row_lengths().max()) if m else 0
        ac = min(cf, max((n + 31) // 32, 1))
        per_elem = sum((min(32, n - 32 * c) + 7) // 8 for c in range(ac))
        tail = float(l_max * per_elem + 2 * ((l_max + 7) // 8) + 2) if l_max else 0.0
        return stats, launch, ExecHints(mlp=self.mlp_for(n), tail_sectors=tail)

    def trace(self, a, b, gpu, semiring: Semiring = PLUS_TIMES):
        """Batched trace replay — bit-identical stats and output to
        :meth:`trace_loop` (see ``repro.gpusim.batchtrace``).

        Warp task ``(row i, superseg s)`` covers ``ac`` active 32-column
        segments (``ac = min(cf, ceil((n - s)/32))``; fully-predicated
        segments issue nothing).  Program order: two rowptr broadcasts;
        per staging tile ``t`` (step base ``2 + t (2 + 32 ac)``) colind +
        values loads, shared stores, a sync; per consumed element ``e``
        two shared broadcasts then ``ac`` independent contiguous B loads
        at steps ``base + 2 + e*ac + c``; finally ``ac`` C stores.
        """
        self.check_semiring(semiring)
        b = np.ascontiguousarray(b, dtype=np.float32)
        m, n = a.nrows, b.shape[1]
        cf = self.cf
        span = 32 * cf
        nss = (n + span - 1) // span
        mem = BatchTraceMemory(l1_caches_global=gpu.l1_caches_global)
        mem.register("rowptr", a.rowptr)
        mem.register("colind", a.colind)
        mem.register("values", a.values)
        mem.register("B", b.ravel())
        mem.register("C", np.full(m * n, semiring.init, dtype=np.float32))

        rowptr = a.rowptr64()
        lengths = rowptr[1:] - rowptr[:-1]
        tasks = np.arange(m * nss, dtype=np.int64)
        row_of_task = tasks // nss
        ss_of_task = (tasks % nss) * span
        ac_task = np.minimum(cf, (n - ss_of_task + 31) // 32)
        len_of_task = lengths[row_of_task]

        mem.load_contiguous("rowptr", row_of_task, 1, task=tasks, step=0)
        mem.load_contiguous("rowptr", row_of_task + 1, 1, task=tasks, step=1)

        ntiles_task = (len_of_task + 31) // 32
        tile_task = np.repeat(tasks, ntiles_task)
        tt = ragged_arange(ntiles_task)
        tile_ptr = rowptr[row_of_task[tile_task]] + 32 * tt
        tile_len = np.minimum(32, len_of_task[tile_task] - 32 * tt)
        tile_stride = 2 + 32 * ac_task[tile_task]
        mem.load_contiguous("colind", tile_ptr, tile_len, task=tile_task, step=2 + tt * tile_stride)
        mem.load_contiguous("values", tile_ptr, tile_len, task=tile_task, step=3 + tt * tile_stride)
        tile_shared_accounting(mem, tile_len)

        # Element-level records, expanded by the task's active segment
        # count: CF independent B loads per consumed nonzero.
        nz_task = np.repeat(tasks, len_of_task)
        t = ragged_arange(len_of_task)
        ptr = rowptr[row_of_task[nz_task]] + t
        k = a.colind64()[ptr]
        ac_nz = ac_task[nz_task]
        rep_task = np.repeat(nz_task, ac_nz)
        c = ragged_arange(ac_nz)
        t_rep = np.repeat(t, ac_nz)
        k_rep = np.repeat(k, ac_nz)
        ac_rep = ac_task[rep_task]
        col0 = ss_of_task[rep_task] + 32 * c
        base = 2 + (t_rep // 32) * (2 + 32 * ac_rep)
        mem.load_contiguous(
            "B",
            k_rep * n + col0,
            np.minimum(32, n - col0),
            task=rep_task,
            step=base + 2 + (t_rep % 32) * ac_rep + c,
        )
        store_task = np.repeat(tasks, ac_task)
        cs = ragged_arange(ac_task)
        store_col0 = ss_of_task[store_task] + 32 * cs
        mem.store_contiguous(
            "C",
            row_of_task[store_task] * n + store_col0,
            np.minimum(32, n - store_col0),
            task=store_task,
        )

        acc = fold_spmm_rows(
            rowptr, a.colind, mem.buffer("values"), mem.buffer("B").reshape(-1, n),
            semiring.init, semiring.reduce_pair, semiring.combine,
        )
        c_out = acc.astype(np.float32)
        stats = mem.finalize()
        return (
            semiring.finalize(c_out.astype(np.float64), a.row_lengths()).astype(np.float32),
            stats,
        )

    def trace_loop(self, a, b, gpu, semiring: Semiring = PLUS_TIMES):
        """Reference per-warp loop replay (exact but slow); kept as the
        parity oracle for the batched :meth:`trace`."""
        self.check_semiring(semiring)
        b = np.ascontiguousarray(b, dtype=np.float32)
        m, n = a.nrows, b.shape[1]
        cf = self.cf
        span = 32 * cf
        mem = TraceMemory(l1_caches_global=gpu.l1_caches_global)
        mem.register("rowptr", a.rowptr)
        mem.register("colind", a.colind)
        mem.register("values", a.values)
        mem.register("B", b.ravel())
        mem.register("C", np.full(m * n, semiring.init, dtype=np.float32))
        lanes = np.arange(32)
        for i in range(m):
            for seg in range(0, n, span):
                shared = TraceSharedMemory(64, mem.stats)
                row_start = int(mem.load("rowptr", np.full(32, i))[0])
                row_end = int(mem.load("rowptr", np.full(32, i + 1))[0])
                cols = [seg + 32 * c + lanes for c in range(cf)]
                masks = [col < n for col in cols]
                accs = [np.full(32, semiring.init, dtype=np.float64) for _ in range(cf)]
                for ptr in range(row_start, row_end, _TILE):
                    tile_len = min(_TILE, row_end - ptr)
                    tile_mask = lanes < tile_len
                    act = lanes[:tile_len]
                    ks = mem.load("colind", ptr + lanes, mask=tile_mask)
                    vs = mem.load("values", ptr + lanes, mask=tile_mask)
                    shared.store(act, ks.astype(np.float64))
                    shared.store(32 + act, vs.astype(np.float64))
                    mem.stats.warp_syncs += 1
                    for kk in range(tile_len):
                        k = int(shared.load(np.full(32, kk))[0])
                        v = float(shared.load(np.full(32, 32 + kk))[0])
                        for c in range(cf):
                            if not masks[c].any():
                                # Fully-predicated segment: no request issued.
                                continue
                            bv = np.zeros(32)
                            bv[masks[c]] = mem.load("B", k * n + cols[c], mask=masks[c])
                            accs[c][masks[c]] = semiring.reduce_pair(
                                accs[c][masks[c]],
                                semiring.combine(v, bv[masks[c]]),
                            )
                for c in range(cf):
                    if masks[c].any():
                        mem.store("C", i * n + cols[c], accs[c].astype(np.float32), mask=masks[c])
        c_out = mem.buffer("C").reshape(m, n)
        lengths = a.row_lengths()
        return (
            semiring.finalize(c_out.astype(np.float64), lengths).astype(np.float32),
            mem.stats,
        )

"""The paper's primary contribution: GE-SpMM and its two techniques
(Coalesced Row Caching and Coarse-grained Warp Merging)."""

from repro.core.access_profile import (
    AccessProfile,
    access_profile,
    clear_access_profile,
)
from repro.core.crc import CRCSpMM
from repro.core.cwm import CWMSpMM
from repro.core.gespmm import ADAPTIVE_THRESHOLD, DEFAULT_CF, GESpMM, gespmm, gespmm_like
from repro.core.mergepath import MergePartition, MergePathSpMM, merge_path_partition
from repro.core.semiring import (
    MAX_TIMES,
    MEAN_TIMES,
    MIN_TIMES,
    PLUS_TIMES,
    Semiring,
    builtin_semirings,
)
from repro.core.sddmm import GESDDMM, edge_softmax, reference_sddmm
from repro.core.simple import SimpleSpMM
from repro.core.fused import Epilogue, FusedGESpMM, RELU_EPILOGUE, bias_relu_epilogue
from repro.core.tuning import TunedSpMM, TuneResult, oracle_gap, tune_cf

__all__ = [
    "AccessProfile",
    "access_profile",
    "clear_access_profile",
    "SimpleSpMM",
    "CRCSpMM",
    "CWMSpMM",
    "GESpMM",
    "gespmm",
    "gespmm_like",
    "ADAPTIVE_THRESHOLD",
    "DEFAULT_CF",
    "MergePathSpMM",
    "MergePartition",
    "merge_path_partition",
    "Semiring",
    "PLUS_TIMES",
    "MAX_TIMES",
    "MIN_TIMES",
    "MEAN_TIMES",
    "builtin_semirings",
    "TunedSpMM",
    "TuneResult",
    "tune_cf",
    "oracle_gap",
    "FusedGESpMM",
    "Epilogue",
    "RELU_EPILOGUE",
    "bias_relu_epilogue",
    "GESDDMM",
    "edge_softmax",
    "reference_sddmm",
]

"""Algorithm 2 — SpMM with Coalesced Row Caching (CRC).

The warp partially unrolls the sparse-row walk by ``warp_size``: in phase
one all 32 lanes cooperatively load a 32-element *tile* of
``colind``/``val`` into shared memory with one coalesced request each; in
phase two the warp consumes the tile element-by-element from shared
memory while streaming the matching coalesced rows of ``B``.  Only a
cheap ``__syncwarp`` separates the phases — the paper deliberately limits
sharing to one warp to avoid block-level synchronization (Section III-C).

Net effect versus Algorithm 1: the 2 broadcast transactions per nonzero
become ~8 wide transactions per 32 nonzeros, raising ``gld_efficiency``
from ~69% to ~92% on the paper's profiling matrices (Table V).
"""

from __future__ import annotations

import numpy as np

from repro.core import _counting as cnt
from repro.core.semiring import PLUS_TIMES, Semiring
from repro.gpusim.batchtrace import (
    BatchTraceMemory,
    fold_spmm_rows,
    ragged_arange,
    tile_shared_accounting,
)
from repro.gpusim.config import GPUSpec
from repro.gpusim.kernel import KernelCounts, SpMMKernel
from repro.gpusim.memory import KernelStats, TraceMemory, TraceSharedMemory
from repro.gpusim.occupancy import LaunchConfig
from repro.gpusim.timing import ExecHints
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import reference_spmm_like

__all__ = ["CRCSpMM"]

_WARPS_PER_BLOCK = 4
_THREADS_PER_BLOCK = 32 * _WARPS_PER_BLOCK
_TILE = 32  # default elements staged per warp per phase


class CRCSpMM(SpMMKernel):
    """CSR SpMM with Coalesced Row Caching (paper Algorithm 2)."""

    name = "crc"
    supports_general_semiring = True

    regs_per_thread = 30
    #: one dense load per consumed element; the shared-memory walk between
    #: loads keeps little more than one request outstanding.
    mlp = 1.4

    def __init__(self, tile: int = _TILE):
        """``tile``: elements staged per load phase (ablation knob; the
        paper's kernel uses warp_size = 32)."""
        super().__init__()
        if tile < 32 or tile % 32:
            raise ValueError("tile must be a positive multiple of the warp size")
        self.tile = int(tile)
        if tile != _TILE:
            self.name = f"crc(tile={tile})"

    def run(self, a: CSRMatrix, b: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        self.check_semiring(semiring)
        return reference_spmm_like(a, b, semiring)

    def count(self, a: CSRMatrix, n: int, gpu: GPUSpec) -> KernelCounts:
        stats = KernelStats()
        wpr = cnt.warps_per_row(n, 1)
        m, nnz = a.nrows, a.nnz

        b_loads = cnt.count_b_loads(a, n)
        stats.global_load.instructions += b_loads.instructions
        stats.global_load.transactions += b_loads.sectors
        stats.global_load.requested_bytes += b_loads.requested_bytes
        stats.global_load.l1_filtered_transactions += b_loads.sectors

        # Coalesced tile loads of colind and val (already near-minimal,
        # so the Turing L1 filter leaves them unchanged).  Loads are
        # warp-wide regardless of the staging tile; a larger tile only
        # amortizes synchronization and loop control.
        tiles = cnt.count_tile_loads(a, 32)
        big_tiles = tiles if self.tile == 32 else cnt.count_tile_loads(a, self.tile)
        stats.global_load.instructions += 2 * wpr * tiles.instructions
        stats.global_load.transactions += 2 * wpr * tiles.sectors
        stats.global_load.requested_bytes += 2 * wpr * tiles.requested_bytes
        stats.global_load.l1_filtered_transactions += 2 * wpr * tiles.sectors

        rp_insts = 2 * m * wpr
        stats.global_load.instructions += rp_insts
        stats.global_load.transactions += rp_insts
        stats.global_load.requested_bytes += 4 * rp_insts
        stats.global_load.l1_filtered_transactions += max(rp_insts // 8, 1) if m else 0

        c_stores = cnt.count_c_stores(a, n)
        stats.global_store.instructions += c_stores.instructions
        stats.global_store.transactions += c_stores.sectors
        stats.global_store.requested_bytes += c_stores.requested_bytes

        # Shared memory: 2 contiguous stores per tile (conflict free), and
        # 2 broadcast reads per consumed nonzero (conflict free).
        stats.shared_store.instructions = 2 * wpr * tiles.instructions
        stats.shared_store.transactions = stats.shared_store.instructions
        stats.shared_store.requested_bytes = 2 * wpr * tiles.requested_bytes
        stats.shared_load.instructions = 2 * nnz * wpr
        stats.shared_load.transactions = stats.shared_load.instructions
        stats.shared_load.requested_bytes = 4 * stats.shared_load.instructions
        stats.warp_syncs = wpr * big_tiles.instructions

        tr = stats.traffic("colind")
        tr.sectors = wpr * tiles.sectors
        tr.unique_bytes = 4 * nnz
        tr.reuse_is_local = True
        tv = stats.traffic("values")
        tv.sectors = wpr * tiles.sectors
        tv.unique_bytes = 4 * nnz
        tv.reuse_is_local = True
        tb = stats.traffic("B")
        tb.sectors = b_loads.sectors
        tb.unique_bytes = cnt.unique_b_columns(a) * n * 4
        tb.reuse_is_local = False
        tp = stats.traffic("rowptr")
        tp.sectors = rp_insts
        tp.unique_bytes = 4 * (m + 1)
        tp.reuse_is_local = True

        stats.flops = 2 * nnz * n
        # Inner-loop bookkeeping per consumed nonzero plus per-tile and
        # per-warp control overhead.
        stats.alu_instructions = 4 * nnz * wpr + 8 * wpr * big_tiles.instructions + 12 * m * wpr

        tasks = m * wpr
        launch = LaunchConfig(
            blocks=(tasks + _WARPS_PER_BLOCK - 1) // _WARPS_PER_BLOCK,
            threads_per_block=_THREADS_PER_BLOCK,
            regs_per_thread=self.regs_per_thread,
            shared_mem_per_block=_WARPS_PER_BLOCK * self.tile * 8,
        )
        # Warp-per-row drain tail: the launch retires when the warp that
        # owns the longest row finishes streaming it alone — its serial
        # chain is that row's B segments plus its staged tiles.  Only
        # binds when one hub row holds a large share of the nonzeros
        # (power-law graphs); merge-path bounds this by the segment size.
        l_max = int(a.row_lengths().max()) if m else 0
        seg_sec = (min(32, n) + 7) // 8
        tail = float(l_max * seg_sec + 2 * ((l_max + 7) // 8) + 2) if l_max else 0.0
        return stats, launch, ExecHints(mlp=self.mlp, tail_sectors=tail)

    def trace(self, a, b, gpu, semiring: Semiring = PLUS_TIMES):
        """Batched trace replay — bit-identical stats and output to
        :meth:`trace_loop` (see ``repro.gpusim.batchtrace``).

        Warp task ``(row i, segment s)``, in program order: two rowptr
        broadcasts (steps 0, 1); per staging tile ``t`` (all earlier
        tiles are full, so its step base is ``2 + 34 t``) one contiguous
        colind load, one contiguous values load, two shared stores and a
        sync; per consumed element ``e`` of the tile two shared
        broadcasts and one contiguous B segment load at step
        ``2 + 34 t + 2 + e``; finally one C segment store.
        """
        self.check_semiring(semiring)
        if self.tile != 32:
            raise NotImplementedError("trace mode implements the paper's tile == warp_size")
        b = np.ascontiguousarray(b, dtype=np.float32)
        m, n = a.nrows, b.shape[1]
        nseg = cnt.warps_per_row(n, 1)
        mem = BatchTraceMemory(l1_caches_global=gpu.l1_caches_global)
        mem.register("rowptr", a.rowptr)
        mem.register("colind", a.colind)
        mem.register("values", a.values)
        mem.register("B", b.ravel())
        mem.register("C", np.full(m * n, semiring.init, dtype=np.float32))

        rowptr = a.rowptr64()
        lengths = rowptr[1:] - rowptr[:-1]
        tasks = np.arange(m * nseg, dtype=np.int64)
        row_of_task = tasks // nseg
        seg_of_task = (tasks % nseg) * 32
        seg_len_task = np.minimum(32, n - seg_of_task)
        len_of_task = lengths[row_of_task]

        mem.load_contiguous("rowptr", row_of_task, 1, task=tasks, step=0)
        mem.load_contiguous("rowptr", row_of_task + 1, 1, task=tasks, step=1)

        # Tile-level records: coalesced colind/values staging loads.
        ntiles_task = (len_of_task + 31) // 32
        tile_task = np.repeat(tasks, ntiles_task)
        tt = ragged_arange(ntiles_task)
        tile_ptr = rowptr[row_of_task[tile_task]] + 32 * tt
        tile_len = np.minimum(32, len_of_task[tile_task] - 32 * tt)
        mem.load_contiguous("colind", tile_ptr, tile_len, task=tile_task, step=2 + 34 * tt)
        mem.load_contiguous("values", tile_ptr, tile_len, task=tile_task, step=3 + 34 * tt)
        tile_shared_accounting(mem, tile_len)

        # Element-level records: one contiguous B segment per consumed
        # nonzero, at step 4 + 34*(t // 32) + (t % 32).
        nz_task = np.repeat(tasks, len_of_task)
        t = ragged_arange(len_of_task)
        ptr = rowptr[row_of_task[nz_task]] + t
        k = a.colind64()[ptr]
        mem.load_contiguous(
            "B",
            k * n + seg_of_task[nz_task],
            seg_len_task[nz_task],
            task=nz_task,
            step=4 + 2 * (t // 32) + t,
        )
        mem.store_contiguous("C", row_of_task * n + seg_of_task, seg_len_task, task=tasks)

        acc = fold_spmm_rows(
            rowptr, a.colind, mem.buffer("values"), mem.buffer("B").reshape(-1, n),
            semiring.init, semiring.reduce_pair, semiring.combine,
        )
        c = acc.astype(np.float32)
        stats = mem.finalize()
        return (
            semiring.finalize(c.astype(np.float64), a.row_lengths()).astype(np.float32),
            stats,
        )

    def trace_loop(self, a, b, gpu, semiring: Semiring = PLUS_TIMES):
        """Reference per-warp loop replay (exact but slow); kept as the
        parity oracle for the batched :meth:`trace`."""
        self.check_semiring(semiring)
        b = np.ascontiguousarray(b, dtype=np.float32)
        m, n = a.nrows, b.shape[1]
        mem = TraceMemory(l1_caches_global=gpu.l1_caches_global)
        mem.register("rowptr", a.rowptr)
        mem.register("colind", a.colind)
        mem.register("values", a.values)
        mem.register("B", b.ravel())
        mem.register("C", np.full(m * n, semiring.init, dtype=np.float32))
        if self.tile != 32:
            raise NotImplementedError("trace mode implements the paper's tile == warp_size")
        lanes = np.arange(32)
        # Two shared words per lane: sm_k at [0:32), sm_v at [32:64).
        for i in range(m):
            for seg in range(0, n, 32):
                j = seg + lanes
                active = j < n
                shared = TraceSharedMemory(64, mem.stats)
                row_start = int(mem.load("rowptr", np.full(32, i))[0])
                row_end = int(mem.load("rowptr", np.full(32, i + 1))[0])
                acc = np.full(32, semiring.init, dtype=np.float64)
                for ptr in range(row_start, row_end, _TILE):
                    tile_len = min(_TILE, row_end - ptr)
                    tile_mask = lanes < tile_len
                    act = lanes[:tile_len]
                    ks = mem.load("colind", ptr + lanes, mask=tile_mask)
                    vs = mem.load("values", ptr + lanes, mask=tile_mask)
                    shared.store(act, ks.astype(np.float64))
                    shared.store(32 + act, vs.astype(np.float64))
                    mem.stats.warp_syncs += 1
                    for kk in range(tile_len):
                        k = int(shared.load(np.full(32, kk))[0])
                        v = float(shared.load(np.full(32, 32 + kk))[0])
                        bv = np.zeros(32)
                        bv[active] = mem.load("B", k * n + j, mask=active)
                        acc[active] = semiring.reduce_pair(
                            acc[active], semiring.combine(v, bv[active])
                        )
                mem.store("C", i * n + j, acc.astype(np.float32), mask=active)
        c = mem.buffer("C").reshape(m, n)
        lengths = a.row_lengths()
        return semiring.finalize(c.astype(np.float64), lengths).astype(np.float32), mem.stats
